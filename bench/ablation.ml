(* Ablations over the design choices DESIGN.md calls out:

   1. OSR on/off — how many of the experience updates still reach a safe
      point if category-(2) frames cannot be replaced on stack;
   2. return barriers on/off — how long an update with a restricted
      method on stack waits before applying;
   3. eager (Jvolve) vs lazy (indirection) object updating — pause time
      versus spread-out migration cost;
   4. post-update warm-up — adaptive recompilation after invalidation
      (paper §3.3: invalidated methods are base-compiled and then
      re-optimized "in its usual fashion"). *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

(* --- 1: OSR --------------------------------------------------------------- *)

let osr_cases =
  [
    (A.Experience.web_desc, "5.1.4", "5.1.5");
    (A.Experience.mail_desc, "1.3.1", "1.3.2");
    (A.Experience.mail_desc, "1.3.3", "1.3.4");
    (A.Experience.ftp_desc, "1.06", "1.07");
  ]

let try_update ?(use_osr = true) ?(use_barriers = true) desc ~from_version
    ~to_version =
  let vm = A.Experience.boot_version desc ~version:from_version in
  let loads = A.Experience.attach_loads vm desc ~concurrency:4 in
  VM.Vm.run vm ~rounds:40;
  let spec =
    A.Common.spec
      ~overrides:(desc.A.Experience.d_overrides ~to_version)
      ~version_tag:(A.Common.version_tag from_version)
      ~old_program:(Support.compile_version desc.A.Experience.d_versioned ~version:from_version)
      ~new_program:(Support.compile_version desc.A.Experience.d_versioned ~version:to_version)
      ()
  in
  let t_req = vm.VM.State.ticks in
  let h = J.Jvolve.update_now ~use_osr ~use_barriers ~timeout_rounds:120 vm spec in
  List.iter (fun w -> A.Workload.detach vm w) loads;
  (h, vm.VM.State.ticks - t_req)

let rec osr_ablation () =
  Support.section "Ablation 1: safe-point reachability with and without OSR";
  Printf.printf "%-34s %-24s %-24s\n" "update" "with OSR" "without OSR";
  List.iter
    (fun (desc, f, t) ->
      let on, _ = try_update desc ~from_version:f ~to_version:t in
      let off, _ =
        try_update ~use_osr:false desc ~from_version:f ~to_version:t
      in
      let s h =
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied tt ->
            Printf.sprintf "applied (%d OSR)" tt.J.Updater.u_osr
        | J.Jvolve.Aborted _ -> "ABORTED"
        | J.Jvolve.Reverted _ -> "reverted"
        | J.Jvolve.Pending -> "pending"
      in
      Printf.printf "%-34s %-24s %-24s\n"
        (Printf.sprintf "%s %s->%s" desc.A.Experience.d_name f t)
        (s on) (s off))
    osr_cases;
  Printf.printf
    "\n(paper §3.2: without OSR, updates touching classes referenced by \
     always-running\nloops could never be applied)\n";
  (* the opt-OSR extension (paper future work): an opt-compiled
     category-(2) frame permanently on stack *)
  opt_osr_extension ()

and opt_osr_extension () =
  Printf.printf
    "\nExtension: OSR of opt-compiled frames (paper future work, cf. \
     UpStare)\n";
  let v1 =
    {|
class Data {
  int x;
  static int bump(int v) { return v + 1; }
}
class Registry { static Data d; }
class Main {
  static void work(Data dd, int n) {
    if (n == 0) {
      while (true) {
        dd.x = Data.bump(dd.x);
        Thread.yieldNow();
      }
    }
    dd.x = Data.bump(dd.x);
  }
  static void main() {
    Registry.d = new Data();
    Data dd = Registry.d;
    for (int i = 0; i < 10; i = i + 1) { work(dd, 1); }
    work(dd, 0);
  }
}
|}
  in
  let v2 =
    A.Patching.patch v1
      [ ( "class Data {\n  int x;", "class Data {\n  int pad;\n  int x;" ) ]
  in
  let run_mode ~opt_osr =
    let config =
      {
        A.Experience.default_config with
        VM.State.opt_threshold = 3;
        opt_osr;
      }
    in
    let old_program = Jv_lang.Compile.compile_program v1 in
    let new_program = Jv_lang.Compile.compile_program v2 in
    let vm = VM.Vm.create ~config () in
    VM.Vm.boot vm old_program;
    ignore (VM.Vm.spawn_main vm ~main_class:"Main");
    VM.Vm.run vm ~rounds:40;
    let spec = J.Spec.make ~version_tag:"1" ~old_program ~new_program () in
    match
      (J.Jvolve.update_now ~timeout_rounds:60 vm spec).J.Jvolve.h_outcome
    with
    | J.Jvolve.Applied t -> Printf.sprintf "applied (%d OSR)" t.J.Updater.u_osr
    | J.Jvolve.Aborted _ -> "ABORTED"
    | J.Jvolve.Reverted _ -> "reverted"
    | J.Jvolve.Pending -> "pending"
  in
  Printf.printf
    "hot opt-compiled loop referencing the updated class:\n\
    \  paper mode (base-only OSR): %s\n\
    \  with opt-OSR extension:     %s\n"
    (run_mode ~opt_osr:false) (run_mode ~opt_osr:true)

(* --- 2: return barriers ----------------------------------------------------- *)

let barrier_ablation () =
  Support.section
    "Ablation 2: return barriers (rounds from request to application)";
  (* miniweb 5.1.4 -> 5.1.5 changes HttpConnection.handle, which is on
     stack in every busy pool thread.  Return barriers park each thread as
     its handle() returns, ratcheting the system toward the safe point;
     without them the update needs every thread clear *simultaneously*,
     which staggered load never offers *)
  let case = (A.Experience.web_desc, "5.1.4", "5.1.5") in
  let desc, f, t = case in
  let h_on, rounds_on = try_update desc ~from_version:f ~to_version:t in
  let h_off, rounds_off =
    try_update ~use_barriers:false desc ~from_version:f ~to_version:t
  in
  let s h =
    match h.J.Jvolve.h_outcome with
    | J.Jvolve.Applied _ -> "applied"
    | J.Jvolve.Aborted _ -> "ABORTED (timeout)"
    | J.Jvolve.Reverted _ -> "reverted"
    | J.Jvolve.Pending -> "pending"
  in
  Printf.printf
    "with barriers:    %s after %d rounds, %d attempts, %d barriers\n"
    (s h_on) rounds_on h_on.J.Jvolve.h_attempts
    h_on.J.Jvolve.h_barriers_installed;
  Printf.printf "without barriers: %s after %d rounds, %d attempts\n"
    (s h_off) rounds_off h_off.J.Jvolve.h_attempts;
  Printf.printf
    "(a fired barrier parks its thread at the safe point — paper §3.2 — so \
     threads\nratchet into quiescence instead of having to clear \
     simultaneously)\n"

(* --- 3: eager vs lazy -------------------------------------------------------- *)

let eager_vs_lazy () =
  Support.section
    "Ablation 3: eager (GC-based) vs lazy (indirection) object updating";
  let objects = if Support.quick then 20_000 else 200_000 in
  (* eager: the table-1 microbenchmark machinery at 50% updated *)
  let cell = Table1.run_cell ~objects ~fraction:50 in
  Printf.printf
    "eager (Jvolve): one pause of %.1f ms migrates all %d changed objects \
     (gc %.1f ms + transformers %.1f ms)\n"
    cell.Table1.total_ms (objects / 2) cell.Table1.gc_ms
    cell.Table1.transform_ms;
  Printf.printf
    "lazy (JDrums-style): no pause, but every dereference pays a check \
     forever\n(see the steady-state overhead table) and transformers run \
     against live state\n(paper §3.5: stateful actions after the update can \
     invalidate transformer\nassumptions, so lazy customized transformers \
     are unsound in general).\n"

(* --- 4: warm-up --------------------------------------------------------------- *)

let warmup () =
  Support.section
    "Ablation 4: post-update recompilation warm-up (adaptive system)";
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:"5.1.5" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:6 ()
  in
  VM.Vm.run vm ~rounds:300;
  let spec =
    J.Spec.make ~version_tag:"515"
      ~old_program:(Support.compile_version A.Miniweb.app ~version:"5.1.5")
      ~new_program:(Support.compile_version A.Miniweb.app ~version:"5.1.6")
      ()
  in
  let base0 = vm.VM.State.compile_count
  and opt0 = vm.VM.State.opt_compile_count in
  let h = J.Jvolve.update_now vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ -> ()
  | o -> failwith (J.Jvolve.outcome_to_string o));
  Printf.printf "%-10s %-12s %-12s %-12s\n" "window" "requests" "base-compiles"
    "opt-compiles";
  let windows = 6 in
  let per_window = 100 in
  for i = 1 to windows do
    let r0 = w.A.Workload.completed_requests in
    let b0 = vm.VM.State.compile_count and o0 = vm.VM.State.opt_compile_count in
    VM.Vm.run vm ~rounds:per_window;
    Printf.printf "%-10d %-12d %-12d %-12d\n" i
      (w.A.Workload.completed_requests - r0)
      (vm.VM.State.compile_count - b0)
      (vm.VM.State.opt_compile_count - o0)
  done;
  Printf.printf
    "(total recompilation after the update: %d base, %d opt; compilation \
     activity dies\nout as the updated methods re-optimize — paper §3.3)\n"
    (vm.VM.State.compile_count - base0)
    (vm.VM.State.opt_compile_count - opt0);
  A.Workload.detach vm w

let run () =
  osr_ablation ();
  barrier_ablation ();
  eager_vs_lazy ();
  warmup ()
