(* ministore benchmarks: schema-migration transformers against a large
   stateful heap — the stressor the connection-oriented apps never apply
   to the update machinery (their live heaps are a few hundred objects).

   Four sections:
   - the full migration ladder (field split, index re-key, value
     re-encoding) applied end-to-end on one loaded VM, heap verifier
     green between rungs;
   - transformer throughput and update pause vs store size: a heap
     populated up to millions of records, the 1.0 -> 1.1 field-split
     migration timed as (GC ms, transformer ms, objects/sec) — the
     pause-vs-heap baseline the lazy-update roadmap item compares
     against;
   - guard-revert cost vs retained-log size: trip the window after a
     committed migration and time the inverse update that re-packs
     every record;
   - a 16-instance gossip rollout of a schema migration, proving the
     stateful app slots into the decentralized control plane unchanged. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module F = Jv_fleet
module G = Jv_gossip
module Faults = Jv_faults.Faults

let compile ~version =
  Jv_lang.Compile.compile_program (A.Patching.source A.Ministore.app ~version)

let spec_for ~from_version ~to_version =
  A.Common.spec
    ~overrides:(A.Ministore.overrides ~to_version)
    ~version_tag:(A.Common.version_tag from_version)
    ~old_program:(compile ~version:from_version)
    ~new_program:(compile ~version:to_version)
    ()

let ladder = [ ("1.0", "1.1"); ("1.1", "1.2"); ("1.2", "1.3") ]

(* --- section 1: the ladder end-to-end on one loaded VM ------------------- *)

let run_ladder () =
  Support.section
    "STORE: schema-migration ladder (1.0 -> 1.1 -> 1.2 -> 1.3) on one \
     loaded VM";
  let d = A.Experience.store_desc in
  let vm = A.Experience.boot_version d ~version:"1.0" in
  let loads = A.Experience.attach_loads vm d ~concurrency:3 in
  VM.Vm.run vm ~rounds:60;
  Printf.printf "    %-12s %10s %12s %12s %8s %8s\n" "migration" "objects"
    "pause ms" "served" "heap" "drops";
  List.iter
    (fun (from_v, to_v) ->
      let before = A.Experience.total_requests loads in
      let h =
        J.Jvolve.update_now ~timeout_rounds:400 vm
          (spec_for ~from_version:from_v ~to_version:to_v)
      in
      match h.J.Jvolve.h_outcome with
      | J.Jvolve.Applied t ->
          VM.Vm.run vm ~rounds:120;
          (* the dropped log's superseded old copies linger until a
             collection reclaims them; collect so the verifier sees the
             steady state *)
          ignore (VM.Gc.collect vm : VM.Gc.result);
          let hv = VM.Heapverify.run vm in
          let dropped =
            List.fold_left (fun n w -> n + w.A.Workload.dropped) 0 loads
          in
          Printf.printf "    %-12s %10d %12.3f %12d %8s %8d\n"
            (from_v ^ "->" ^ to_v)
            t.J.Updater.u_transformed_objects t.J.Updater.u_total_ms
            (A.Experience.total_requests loads - before)
            (if hv.VM.Heapverify.hv_ok then "green" else "DIRTY")
            dropped
      | o ->
          Printf.printf "    %-12s !! did not apply: %s\n"
            (from_v ^ "->" ^ to_v)
            (J.Jvolve.outcome_to_string o))
    ladder

(* --- direct population: a store of n records without the wire ------------ *)

(* Records go straight into [Store.buckets] hash chains (how they got
   there is immaterial to the measured pause, exactly as in table1).
   Rec layout: 2 header words, then key, meta, val, next.  All records
   share one interned payload string: the transformer copies the
   reference, so the payload's size does not scale the measurement. *)
let populate vm ~n =
  let reg = vm.VM.State.reg in
  let rec_cls = VM.Rt.require_class reg "Rec" in
  let store_cls = VM.Rt.require_class reg "Store" in
  let slot_of name =
    match VM.Rt.find_static_info reg store_cls name with
    | Some si -> si.VM.Rt.si_slot
    | None -> failwith ("no static Store." ^ name)
  in
  let buckets_slot = slot_of "buckets" in
  let count_slot = slot_of "count" in
  let payload = VM.State.alloc_string vm "bench-payload" in
  let heap = vm.VM.State.heap in
  let buckets = VM.Value.to_ref (VM.State.jtoc_get vm buckets_slot) in
  let nb = VM.Value.to_int (VM.Heap.array_length heap buckets) in
  for i = 0 to n - 1 do
    let key = 1_000_000 + i in
    let o = VM.State.alloc_object vm rec_cls in
    VM.Heap.set heap ~addr:o ~off:2 (VM.Value.of_int key);
    (* meta packs flags=i mod 7, size=i mod 65536: the split transformer
       must unpack it, the inverse must re-pack it *)
    VM.Heap.set heap ~addr:o ~off:3
      (VM.Value.of_int (((i mod 7) * 65536) + (i mod 65536)));
    VM.Heap.set heap ~addr:o ~off:4 (VM.Value.of_ref payload);
    let b = key mod nb in
    let head = VM.Heap.get heap ~addr:buckets ~off:(VM.Heap.array_header_words + b) in
    VM.Heap.set heap ~addr:o ~off:5 head;
    VM.Heap.set heap ~addr:buckets
      ~off:(VM.Heap.array_header_words + b)
      (VM.Value.of_ref o)
  done;
  let count = VM.Value.to_int (VM.State.jtoc_get vm count_slot) in
  VM.State.jtoc_set vm count_slot (VM.Value.of_int (count + n))

(* Boot a ministore 1.0 sized for [n] records: ~6 words per record in
   from-space, 7 (new layout) + 6 (retained old copy) in to-space, plus
   strings and server headroom.  A guarded update then revert needs
   about double that again — the retained log stays live across the
   inverse update's own transforming collection — so the revert section
   passes a larger [words_per_rec]. *)
let boot_store ?(words_per_rec = 18) ?(lazy_mode = false) ~n () =
  let config =
    {
      A.Experience.default_config with
      VM.State.heap_words = max (1 lsl 18) (n * words_per_rec);
      VM.State.lazy_update = lazy_mode;
      VM.State.lazy_sweep_budget = 256;
    }
  in
  let vm = A.Experience.boot_version ~config A.Experience.store_desc ~version:"1.0" in
  VM.Vm.run vm ~rounds:20;
  populate vm ~n;
  (* warm both semi-spaces and quiesce the host GC so neither pollutes
     the measured pause *)
  ignore (VM.Vm.gc vm);
  Stdlib.Gc.compact ();
  vm

(* --- section 2: transformer throughput and pause vs store size ----------- *)

let scale_sizes =
  if Support.quick then [ 10_000; 50_000 ]
  else [ 100_000; 300_000; 1_000_000 ]

let run_scale () =
  Support.section
    "STORE: transformer throughput and update pause vs store size (1.0 -> \
     1.1 field split, custom transformer per record)";
  Printf.printf "    %10s %10s %12s %12s %14s\n" "records" "gc ms"
    "transform ms" "total ms" "objects/sec";
  List.iter
    (fun n ->
      let vm = boot_store ~n () in
      let h =
        J.Jvolve.update_now ~timeout_rounds:400 vm
          (spec_for ~from_version:"1.0" ~to_version:"1.1")
      in
      match h.J.Jvolve.h_outcome with
      | J.Jvolve.Applied t ->
          let objs = t.J.Updater.u_transformed_objects in
          let per_sec =
            if t.J.Updater.u_transform_ms > 0.0 then
              float_of_int objs /. t.J.Updater.u_transform_ms *. 1000.0
            else 0.0
          in
          Printf.printf "    %10d %10.1f %12.1f %12.1f %14.0f\n" objs
            t.J.Updater.u_gc_ms t.J.Updater.u_transform_ms
            t.J.Updater.u_total_ms per_sec
      | o ->
          Printf.printf "    %10d !! did not apply: %s\n" n
            (J.Jvolve.outcome_to_string o))
    scale_sizes

(* --- section 3: guard-revert cost vs retained-log size ------------------- *)

(* A budget nothing trips: the window closes only via the [guard.trip]
   fault point, so the revert is timed, not provoked by traffic. *)
let lenient ~rounds =
  {
    J.Guard.default_budget with
    J.Guard.b_rounds = rounds;
    b_max_traps = max_int;
    b_max_app_errors = max_int;
    b_max_probe_failures = max_int;
    b_latency_factor = 1e9;
  }

let revert_sizes =
  if Support.quick then [ 2_000; 8_000 ]
  else [ 10_000; 40_000; 160_000 ]

let run_revert () =
  Support.section
    "STORE: guard-revert cost vs retained-log size (committed 1.0 -> 1.1, \
     window tripped, inverse transformer re-packs every record)";
  Printf.printf "    %10s %12s %12s %16s\n" "log pairs" "apply ms"
    "revert ms" "revert / 10k";
  List.iter
    (fun n ->
      let vm = boot_store ~words_per_rec:40 ~n () in
      let guard = J.Guard.config ~budget:(lenient ~rounds:400) () in
      let h =
        J.Jvolve.update_now ~timeout_rounds:400 ~guard vm
          (spec_for ~from_version:"1.0" ~to_version:"1.1")
      in
      let apply_ms =
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied t -> t.J.Updater.u_total_ms
        | o ->
            Printf.printf "    !! apply failed: %s\n"
              (J.Jvolve.outcome_to_string o);
            0.0
      in
      let plan = Faults.create ~seed:7 () in
      Faults.arm plan ~point:"guard.trip" ~max_fires:1 Faults.Raise;
      VM.Vm.set_faults vm (Some plan);
      let final = J.Jvolve.run_to_guard_close vm h in
      VM.Vm.set_faults vm None;
      match final with
      | J.Jvolve.Reverted v ->
          Printf.printf "    %10d %12.3f %12.3f %16.4f\n" n apply_ms
            v.J.Guard.v_revert_ms
            (v.J.Guard.v_revert_ms /. float_of_int n *. 10_000.0)
      | o ->
          Printf.printf "    %10d !! expected a revert, got %s\n" n
            (J.Jvolve.outcome_to_string o))
    revert_sizes

(* --- section 4: 16-instance gossip rollout of a schema migration --------- *)

let run_gossip_rollout () =
  let size = 16 in
  Support.section
    (Printf.sprintf
       "STORE: decentralized gossip rollout of a schema migration \
        (ministore 1.0 -> 1.1, %d instances, 10%% control-plane drop)"
       size);
  let profile = F.Profile.ministore in
  let config =
    { F.Instance.default_config with Jv_vm.State.heap_words = 1 lsl 17 }
  in
  let fleet =
    F.Fleet.create ~config ~policy:F.Lb.Round_robin ~profile ~version:"1.0"
      ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  let d = F.Fleet.attach_load ~concurrency:8 ~request_timeout:60 fleet in
  F.Fleet.run fleet ~rounds:120;
  let chaos =
    match Faults.parse ~seed:11 "net.link=drop@0.10" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let g = G.Gossip.create ~chaos ~fleet () in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"1.1");
  let rounds = G.Gossip.run g ~max_rounds:6000 () in
  F.Fleet.run fleet ~rounds:60;
  let r = G.Gossip.report g ~rounds in
  Printf.printf "    %-28s %s\n" "gossip:" (Fmt.str "%a" G.Gossip.pp_report r);
  Printf.printf "    %-28s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  let greens =
    List.fold_left
      (fun acc (i : F.Instance.t) ->
        let vm = i.F.Instance.i_vm in
        ignore (VM.Gc.collect vm : VM.Gc.result);
        if (VM.Heapverify.run vm).VM.Heapverify.hv_ok then acc + 1 else acc)
      0 (F.Fleet.instances fleet)
  in
  Printf.printf "    %-28s %d of %d instances green\n" "heap verifier:" greens
    size;
  Printf.printf
    "    %-28s %d sessions, %d requests, %d errors, %d dropped in flight, \
     %d timed out\n"
    "closed-loop load:" d.F.Driver.completed_sessions
    d.F.Driver.completed_requests d.F.Driver.errors
    (F.Fleet.dropped_in_flight fleet)
    d.F.Driver.timed_out_requests;
  F.Fleet.detach_loads fleet

(* --- section 5: lazy commit pause vs store size --------------------------- *)

(* The roadmap claim the eager scale section sets up: under
   [config.lazy_update] the commit pause stops scaling with the store,
   because commit only swaps metadata, reinitializes statics, and bumps
   the heap epoch — every record migrates later, on first access or by
   the background sweeper.  The drain column prices that deferred work
   (forced synchronously here to time it; in production it amortizes
   over the sweeper's budget per scheduler round). *)

let lazy_sizes = [ 10_000; 1_000_000 ]

let run_lazy () =
  Support.section
    "STORE --lazy: commit pause vs store size (1.0 -> 1.1, metadata-only \
     commit, records transform on access)";
  Printf.printf "    %10s %12s %12s %14s %10s\n" "records" "commit ms"
    "drain ms" "objects/sec" "window";
  let pauses =
    List.map
      (fun n ->
        let vm = boot_store ~lazy_mode:true ~n () in
        let h =
          J.Jvolve.update_now ~timeout_rounds:400 vm
            (spec_for ~from_version:"1.0" ~to_version:"1.1")
        in
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied t ->
            let commit_ms = t.J.Updater.u_total_ms in
            (* quick mode (CI) skips draining the big store: the smoke
               criterion is the commit pause, and the window can stay
               open across process exit *)
            if Support.quick && n > 100_000 then begin
              Printf.printf "    %10d %12.3f %12s %14s %10s\n" n commit_ms
                "-" "-" "open";
              commit_ms
            end
            else begin
              let t0 = Unix.gettimeofday () in
              let drained =
                match vm.VM.State.lazy_drain with
                | Some d -> d vm
                | None -> true
              in
              let drain_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
              Printf.printf "    %10d %12.3f %12.1f %14.0f %10s\n" n
                commit_ms drain_ms
                (float_of_int n /. Float.max 0.001 drain_ms *. 1000.0)
                (if drained then "drained" else "ROLLBACK");
              commit_ms
            end
        | o ->
            Printf.printf "    %10d !! did not apply: %s\n" n
              (J.Jvolve.outcome_to_string o);
            Float.infinity)
      lazy_sizes
  in
  match pauses with
  | [ small; large ] ->
      (* floor the denominator at 0.1 ms: both pauses are sub-millisecond
         and the ratio must price scaling, not scheduler jitter *)
      let ratio = large /. Float.max 0.1 small in
      Printf.printf "    lazy pause flat: %s (ratio %.2f <= 2)\n"
        (if ratio <= 2.0 then "PASS" else "FAIL")
        ratio
  | _ -> ()

let run () =
  run_ladder ();
  run_scale ();
  run_revert ();
  run_gossip_rollout ()
