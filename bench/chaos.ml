(* Chaos benchmarks (lib/faults): what a failed update costs and how the
   fleet behaves when updates keep failing.

   Two sections:
   - abort-rollback pause cost: inject a fault into each update phase of
     a loaded miniweb VM, report the rollback's share of the pause next
     to a clean update's, and audit that every abort left zero
     half-installed class tables (the transaction's post-rollback
     metadata audit);
   - rollout convergence under fault rates 0..20%: rolling updates with
     retry/backoff across a fleet, asserting every per-instance abort
     rolled back and the fleet converged to one version (or quarantined
     the stragglers). *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module F = Jv_fleet
module Faults = Jv_faults.Faults

let compile = Jv_lang.Compile.compile_program

(* --- section 1: abort-rollback pause cost ------------------------------ *)

let phases =
  [
    ("updater.load", "load");
    ("updater.gc", "gc");
    ("updater.transform", "transform");
  ]

(* run the whole suite with the post-transform / post-rollback heap
   verifier on: a fault-induced rollback that corrupts the heap fails
   the abort audit instead of passing silently *)
let chaos_config =
  { A.Experience.default_config with VM.State.verify_heap = true }

let boot_web_loaded () =
  let d = A.Experience.web_desc in
  let vm = A.Experience.boot_version ~config:chaos_config d ~version:"5.1.1" in
  let loads = A.Experience.attach_loads vm d ~concurrency:4 in
  VM.Vm.run vm ~rounds:80;
  (vm, loads)

let web_spec ~tag =
  J.Spec.make ~version_tag:tag
    ~old_program:(Support.compile_version A.Miniweb.app ~version:"5.1.1")
    ~new_program:(Support.compile_version A.Miniweb.app ~version:"5.1.2")
    ()

let abort_cost () =
  Support.section
    "CHAOS: abort-rollback pause cost (miniweb 5.1.1 -> 5.1.2, fault per \
     phase)";
  (* the clean update, for scale *)
  let vm, _ = boot_web_loaded () in
  let h = J.Jvolve.update_now ~timeout_rounds:400 vm (web_spec ~tag:"511") in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Printf.printf "    %-24s total %7.3f ms (load %.3f, gc %.3f, \
                     transform %.3f)\n"
        "clean update:" t.J.Updater.u_total_ms t.J.Updater.u_load_ms
        t.J.Updater.u_gc_ms t.J.Updater.u_transform_ms
  | o ->
      Printf.printf "    clean update did not apply: %s\n"
        (J.Jvolve.outcome_to_string o));
  let dirty = ref 0 in
  List.iter
    (fun (point, label) ->
      let vm, _ = boot_web_loaded () in
      let plan = Faults.create ~seed:11 () in
      Faults.arm plan ~point ~max_fires:1 Faults.Raise;
      VM.Vm.set_faults vm (Some plan);
      let h =
        J.Jvolve.update_now ~timeout_rounds:400 vm (web_spec ~tag:"511")
      in
      (match h.J.Jvolve.h_outcome with
      | J.Jvolve.Aborted a ->
          if not a.J.Updater.a_rolled_back then incr dirty;
          Printf.printf
            "    abort in %-10s rollback %7.3f ms, audit %s\n" label
            a.J.Updater.a_rollback_ms
            (if a.J.Updater.a_rolled_back then "clean" else "DIRTY")
      | o ->
          incr dirty;
          Printf.printf "    abort in %-10s UNEXPECTED: %s\n" label
            (J.Jvolve.outcome_to_string o));
      (* the VM must still serve the old version afterwards *)
      VM.Vm.run vm ~rounds:60)
    phases;
  Printf.printf "    %-24s %d\n" "half-installed tables:" !dirty

(* --- section 2: rollout convergence under fault rates ------------------ *)

let rates = if Support.quick then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.1; 0.2 ]

let boot_fleet ~size =
  let fleet =
    F.Fleet.create
      ~config:{ F.Instance.default_config with VM.State.verify_heap = true }
      ~policy:F.Lb.Round_robin ~profile:F.Profile.miniweb ~version:"5.1.1"
      ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  ignore (F.Fleet.attach_load ~concurrency:(2 * size) fleet);
  F.Fleet.run fleet ~rounds:100;
  fleet

(* Every committed instance serves through a short guard window (traffic
   budgets disabled so only the faults under test can trip it): the
   rollout must converge with the watchdog and retained logs in the
   pipeline. *)
let chaos_guard =
  J.Guard.config
    ~budget:
      {
        J.Guard.default_budget with
        J.Guard.b_rounds = 60;
        b_max_app_errors = max_int;
        b_latency_factor = 1e9;
      }
    ()

let chaos_params =
  {
    (F.Orchestrator.default_params (F.Orchestrator.Rolling { batch_size = 1 }))
    with
    F.Orchestrator.update_timeout = 250;
    max_retries = 3;
    backoff_base = 20;
    on_exhausted = `Quarantine;
    guard = Some chaos_guard;
  }

(* Every per-instance abort in the rollout must have rolled its VM back
   (a_rolled_back: the transaction restored the snapshot and the
   metadata audit passed). *)
let unclean_aborts (r : F.Orchestrator.result) =
  List.fold_left
    (fun n (_, (ar : J.Jvolve.attempt_report)) ->
      match ar.J.Jvolve.ar_outcome with
      | J.Jvolve.Aborted a when not a.J.Updater.a_rolled_back -> n + 1
      | _ -> n)
    0 r.F.Orchestrator.r_reports

let convergence () =
  Support.section
    "CHAOS: rollout convergence vs fault rate (miniweb fleet of 4, \
     updater.* = raise, retries = 3, quarantine on exhaustion)";
  List.iter
    (fun rate ->
      let fleet = boot_fleet ~size:4 in
      let plan = Faults.create ~seed:1234 () in
      if rate > 0.0 then
        Faults.arm plan ~point:"updater.*" ~rate Faults.Raise;
      F.Fleet.set_faults fleet (Some plan);
      let r =
        F.Orchestrator.run ~params:chaos_params ~fleet ~to_version:"5.1.2" ()
      in
      F.Fleet.set_faults fleet None;
      F.Fleet.run fleet ~rounds:30;
      let converged =
        match F.Fleet.uniform_version fleet with
        | Some v -> Printf.sprintf "converged on %s" v
        | None ->
            if
              List.for_all
                (fun (i : F.Instance.t) ->
                  i.F.Instance.i_status = F.Instance.Out_of_service)
                (F.Fleet.instances fleet)
            then "all instances quarantined"
            else "MIXED VERSIONS"
      in
      Printf.printf
        "    rate %3.0f%%: %-22s %5d rounds, %d faults fired, %d retries, \
         %d aborts (%d unclean), %d quarantined, %d dropped conns\n"
        (rate *. 100.0) converged r.F.Orchestrator.r_rounds
        (Faults.fired plan) r.F.Orchestrator.r_retries
        (List.length r.F.Orchestrator.r_aborted)
        (unclean_aborts r)
        (List.length r.F.Orchestrator.r_quarantined)
        (F.Fleet.dropped_in_flight fleet))
    rates

(* Kills enabled: the storm now takes whole VMs down mid-rollout, and the
   supervisor must restart, catch up and readmit every corpse — the
   fleet has to return to full strength on one version, with zero
   instances lost for good. *)
let kill_convergence () =
  Support.section
    "CHAOS: kill-storm convergence (vm.crash kills mid-rollout, \
     supervisor restarts + ladder catch-up, quarantine on exhaustion)";
  let kill_counts = if Support.quick then [ 0; 1 ] else [ 0; 1; 2; 4 ] in
  List.iter
    (fun kills ->
      let fleet = boot_fleet ~size:4 in
      let plan = Faults.create ~seed:77 () in
      if kills > 0 then
        Faults.arm plan ~point:"vm.crash" ~rate:0.002 ~max_fires:kills
          Faults.Kill;
      F.Fleet.set_faults fleet (Some plan);
      let orch =
        F.Orchestrator.create ~params:chaos_params ~fleet
          ~to_version:"5.1.2" ()
      in
      let sup =
        F.Supervisor.create
          ~params:
            {
              F.Supervisor.default_params with
              F.Supervisor.s_backoff_base = 20;
            }
          ~fleet ()
      in
      let rec drive n =
        if n > 30_000 then None
        else
          match F.Orchestrator.result orch with
          | Some r when F.Supervisor.settled sup -> Some r
          | _ ->
              F.Fleet.round fleet;
              F.Orchestrator.step orch;
              F.Supervisor.step sup;
              drive (n + 1)
      in
      let r = drive 0 in
      F.Fleet.set_faults fleet None;
      F.Fleet.run fleet ~rounds:30;
      let alive = F.Supervisor.alive sup in
      let verdict =
        match (F.Fleet.uniform_version fleet, alive) with
        | Some v, a when a = 4 -> Printf.sprintf "full strength on %s" v
        | Some v, a -> Printf.sprintf "%d/4 alive on %s" a v
        | None, a -> Printf.sprintf "MIXED VERSIONS (%d/4 alive)" a
      in
      Printf.printf
        "    kills %d: %-26s %5d rounds, %d restarts, %d recovered, %d \
         parked, %d aborts (%d unclean)\n"
        kills verdict
        (match r with Some r -> r.F.Orchestrator.r_rounds | None -> -1)
        (F.Supervisor.restarts sup)
        (List.length (F.Supervisor.recovered sup))
        (List.length (F.Supervisor.parked sup))
        (match r with
        | Some r -> List.length r.F.Orchestrator.r_aborted
        | None -> -1)
        (match r with Some r -> unclean_aborts r | None -> -1))
    kill_counts

let run () =
  abort_cost ();
  convergence ();
  kill_convergence ()
