(* Safety benchmarks (admission control, transformer sandbox, heap
   verifier).

   Three sections:
   - verifier pause cost vs. live heap size: a full Heapverify walk over
     linked structures of growing size, reporting ms and ms per 10k
     objects (the per-10k column staying flat is the linearity claim);
   - admission latency: Admission.review over every update pair of the
     three benchmark apps, next to what the checks found;
   - fault gauntlet: on each app, a looping, throwing and heap-corrupting
     transformer (the transformer.* fault points) must abort the update
     with a clean, re-verified rollback while the VM keeps serving. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module Faults = Jv_faults.Faults

let compile = Jv_lang.Compile.compile_program

(* --- section 1: verifier pause vs. live heap size ----------------------- *)

let node_program n =
  Printf.sprintf
    {|
class Node { int v; Node next; int[] pad; }
class Keeper { static Node head; }
class Main {
  static void main() {
    for (int i = 0; i < %d; i = i + 1) {
      Node n = new Node();
      n.v = i;
      n.pad = new int[3];
      n.next = Keeper.head;
      Keeper.head = n;
    }
  }
}
|}
    n

let verifier_cost () =
  Support.section
    "SAFETY: heap-verifier pause cost vs. live heap size (full walk)";
  Printf.printf "    %10s %10s %10s %12s %14s\n" "nodes" "objects" "refs"
    "verify ms" "ms / 10k objs";
  let sizes =
    if Support.quick then [ 2_000; 4_000; 8_000 ]
    else [ 10_000; 20_000; 40_000; 80_000 ]
  in
  List.iter
    (fun n ->
      let config =
        { VM.State.default_config with VM.State.heap_words = 1 lsl 21 }
      in
      let vm = VM.Vm.create ~config () in
      VM.Vm.boot vm (compile (node_program n));
      ignore (VM.Vm.spawn_main vm ~main_class:"Main");
      ignore (VM.Vm.run_to_quiescence ~max_rounds:1_000_000 vm);
      (* collect first so the walk covers exactly the live heap *)
      ignore (VM.Gc.collect vm);
      (* median of 5 walks *)
      let reps = List.init 5 (fun _ -> VM.Heapverify.run vm) in
      let ms = Support.median (List.map (fun r -> r.VM.Heapverify.hv_ms) reps) in
      let r = List.hd reps in
      if not r.VM.Heapverify.hv_ok then
        Printf.printf "    !! verifier found issues on a healthy heap\n";
      Printf.printf "    %10d %10d %10d %12.3f %14.4f\n" n
        r.VM.Heapverify.hv_objects r.VM.Heapverify.hv_refs ms
        (ms /. float_of_int (max 1 r.VM.Heapverify.hv_objects) *. 10_000.0))
    sizes

(* --- section 2: admission latency over the apps' update chains ---------- *)

let admission_latency () =
  Support.section
    "SAFETY: admission-control latency (every update pair, three apps)";
  Printf.printf "    %-10s %-18s %8s %8s %8s %10s\n" "app" "update" "checks"
    "rejects" "warns" "review ms";
  List.iter
    (fun (d : A.Experience.app_desc) ->
      A.Patching.update_pairs d.A.Experience.d_versioned
      |> List.iter (fun ((from_v, _), (to_v, _)) ->
             let spec =
               A.Common.spec
                 ~overrides:(d.A.Experience.d_overrides ~to_version:to_v)
                 ~version_tag:(A.Common.version_tag to_v)
                 ~old_program:
                   (Support.compile_version d.A.Experience.d_versioned
                      ~version:from_v)
                 ~new_program:
                   (Support.compile_version d.A.Experience.d_versioned
                      ~version:to_v)
                 ()
             in
             let p = J.Transformers.prepare spec in
             let rep = J.Admission.review p in
             let count sev =
               List.length
                 (List.filter
                    (fun v -> v.J.Admission.v_severity = sev)
                    rep.J.Admission.a_verdicts)
             in
             Printf.printf "    %-10s %-18s %8d %8d %8d %10.3f\n"
               d.A.Experience.d_name
               (from_v ^ " -> " ^ to_v)
               rep.J.Admission.a_checks (count J.Admission.Reject)
               (count J.Admission.Warn) rep.J.Admission.a_ms))
    A.Experience.all_apps

(* --- section 3: the fault gauntlet -------------------------------------- *)

(* One update pair per app with a non-trivial layout closure, so object
   transformers actually run (same pairs the chaos suite uses). *)
let gauntlet_pairs =
  [
    (A.Experience.web_desc, "5.1.4", "5.1.5");
    (A.Experience.mail_desc, "1.3.1", "1.3.2");
    (A.Experience.ftp_desc, "1.06", "1.07");
  ]

let gauntlet_points = [ "transformer.loop"; "transformer.throw";
                        "transformer.badwrite" ]

let gauntlet () =
  Support.section
    "SAFETY: fault gauntlet (looping / throwing / bad-write transformers)";
  let contained = ref 0 and dirty = ref 0 and total = ref 0 in
  List.iter
    (fun ((d : A.Experience.app_desc), from_v, to_v) ->
      let config =
        { A.Experience.default_config with VM.State.verify_heap = true }
      in
      let vm = A.Experience.boot_version ~config d ~version:from_v in
      let loads = A.Experience.attach_loads vm d ~concurrency:3 in
      VM.Vm.run vm ~rounds:60;
      List.iteri
        (fun k point ->
          incr total;
          let plan = Faults.create ~seed:(11 + k) () in
          Faults.arm plan ~point ~max_fires:1 Faults.Raise;
          VM.Vm.set_faults vm (Some plan);
          let spec =
            A.Common.spec
              ~overrides:(d.A.Experience.d_overrides ~to_version:to_v)
              ~version_tag:(Printf.sprintf "g%d" k)
              ~old_program:
                (Support.compile_version d.A.Experience.d_versioned
                   ~version:from_v)
              ~new_program:
                (Support.compile_version d.A.Experience.d_versioned
                   ~version:to_v)
              ()
          in
          let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
          VM.Vm.set_faults vm None;
          (match h.J.Jvolve.h_outcome with
          | J.Jvolve.Aborted a ->
              let clean = a.J.Updater.a_rolled_back in
              if not clean then incr dirty;
              let rep = VM.Heapverify.run vm in
              let served_before = A.Experience.total_requests loads in
              VM.Vm.run vm ~rounds:120;
              let serving =
                A.Experience.total_requests loads > served_before
              in
              if clean && rep.VM.Heapverify.hv_ok && serving
                 && VM.Vm.killed vm = None
              then incr contained;
              Printf.printf
                "    %-10s %-22s -> aborted [%s] %s, heap %s, %s\n"
                d.A.Experience.d_name point
                (J.Updater.phase_to_string a.J.Updater.a_phase)
                (if clean then "rolled back" else "ROLLBACK DIRTY")
                (if rep.VM.Heapverify.hv_ok then "verified" else "CORRUPT")
                (if serving then "still serving" else "NOT SERVING")
          | o ->
              Printf.printf "    %-10s %-22s -> UNEXPECTED: %s\n"
                d.A.Experience.d_name point
                (J.Jvolve.outcome_to_string o)))
        gauntlet_points)
    gauntlet_pairs;
  Printf.printf "\n    gauntlet: %d/%d contained, %d dirty rollbacks\n"
    !contained !total !dirty

(* --- section 4: the heap verifier across an open guard window ----------- *)

(* A guarded commit keeps the update log (old-layout object copies) alive
   until the window closes; the verifier's [guard_pending] allowance must
   keep full-heap walks green the whole time, and the close must free the
   log. *)
let guard_window_verify () =
  Support.section
    "SAFETY: heap verifier across an open guard window (retained update log)";
  let d = A.Experience.web_desc in
  let config =
    { A.Experience.default_config with VM.State.verify_heap = true }
  in
  let vm = A.Experience.boot_version ~config d ~version:"5.1.4" in
  ignore (A.Experience.attach_loads vm d ~concurrency:3);
  VM.Vm.run vm ~rounds:60;
  let spec =
    J.Spec.make ~version_tag:"514"
      ~old_program:
        (Support.compile_version d.A.Experience.d_versioned ~version:"5.1.4")
      ~new_program:
        (Support.compile_version d.A.Experience.d_versioned ~version:"5.1.5")
      ()
  in
  let budget =
    {
      J.Guard.default_budget with
      J.Guard.b_rounds = 120;
      b_max_app_errors = max_int;
      b_latency_factor = 1e9;
    }
  in
  let h =
    J.Jvolve.update_now ~timeout_rounds:400
      ~guard:(J.Guard.config ~budget ())
      vm spec
  in
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ ->
      let retained =
        match vm.VM.State.guard_retained with
        | Some roots -> Array.length roots
        | None -> 0
      in
      let walks = ref 0 and spurious = ref 0 in
      for _ = 1 to 6 do
        VM.Vm.run vm ~rounds:20;
        incr walks;
        let r = VM.Heapverify.run vm in
        if not r.VM.Heapverify.hv_ok then incr spurious
      done;
      let final = J.Jvolve.run_to_guard_close vm h in
      Printf.printf
        "    %d retained log roots; %d verifier walks over the open window, \
         spurious failures: %d\n"
        retained !walks !spurious;
      (match (final, vm.VM.State.guard_retained) with
      | J.Jvolve.Applied _, None ->
          Printf.printf "    window closed clean, retained log freed\n"
      | J.Jvolve.Applied _, Some _ ->
          Printf.printf "    !! window closed but the log is still rooted\n"
      | o, _ ->
          Printf.printf "    !! window did not close clean: %s\n"
            (J.Jvolve.outcome_to_string o))
  | o ->
      Printf.printf "    !! guarded update did not apply: %s\n"
        (J.Jvolve.outcome_to_string o)

let run () =
  verifier_cost ();
  admission_latency ();
  gauntlet ();
  guard_window_verify ()
