(* Fleet orchestration benchmarks: DSU rollouts across a load-balanced
   multi-VM cluster (lib/fleet).

   Four scenarios:
   - rolling update vs. fleet size (2..16): rollout latency, dropped
     in-flight connections, mixed-version window
   - canary deployment: update K instances, observe against the stable
     pool, promote
   - automatic halt: the always-on-stack 5.1.3 update (paper §5.1.3
     analogue) aborts on every instance — rollout halts, fleet stays on
     the old version
   - automatic rollback: a mid-rollout abort (injected via a safe-point
     blacklist on one instance) reverts the already-updated instances
     with inverse specs *)

module F = Jv_fleet
module J = Jvolve_core
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics

let sizes = if Support.quick then [ 2; 4 ] else [ 2; 4; 8; 16 ]

let rolling_params =
  {
    (F.Orchestrator.default_params (F.Orchestrator.Rolling { batch_size = 1 })) with
    F.Orchestrator.probes_required = 2;
  }

let canary_params ~observe_rounds =
  F.Orchestrator.default_params
    (F.Orchestrator.Canary { canaries = 2; observe_rounds; promote_batch = 1 })

(* Boot the fleet, let every server reach its accept loop, then put it
   under steady scripted load before any rollout starts. *)
let boot_under_load ~profile ~version ~size =
  let fleet = F.Fleet.create ~policy:F.Lb.Round_robin ~profile ~version ~size () in
  F.Fleet.run fleet ~rounds:30;
  let _driver = F.Fleet.attach_load ~concurrency:(2 * size) fleet in
  F.Fleet.run fleet ~rounds:120;
  fleet

(* Every figure here is read back from the fleet's jv_obs sink — the
   orchestrator's gauges and the LB's counters — not from bench-local
   bookkeeping.  [r] stays only for the outcome line. *)
let show_result fleet (r : F.Orchestrator.result) ~req0 =
  let obs = F.Fleet.obs fleet in
  let counter = Obs.counter_value obs in
  let gauge name = int_of_float (Obs.gauge_value obs name) in
  let lat =
    match Obs.find_histogram obs "fleet.lb.request_latency_rounds" with
    | Some h when Metrics.count h > 0 ->
        Printf.sprintf " (request latency p50 %.0f p90 %.0f rounds)"
          (Metrics.quantile h 0.5) (Metrics.quantile h 0.9)
    | _ -> ""
  in
  Printf.printf
    "    %-44s %s\n    %-44s %d rounds (mixed-version window %d)\n\
    \    %-44s %d dropped, %d rejected, %d served during rollout%s\n"
    "outcome:"
    (Fmt.str "%a" F.Orchestrator.pp_result r)
    "latency:"
    (gauge "fleet.rollout.last_rounds")
    (gauge "fleet.rollout.last_mixed_window")
    "connections:"
    (counter "fleet.lb.dropped")
    (counter "fleet.lb.rejected")
    (F.Fleet.total_requests fleet - req0)
    lat

let rolling () =
  Support.section
    "FLEET: rolling update (miniweb 5.1.1 -> 5.1.2, batch = 1) vs fleet size";
  List.iter
    (fun size ->
      let fleet =
        boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.1" ~size
      in
      let req0 = F.Fleet.total_requests fleet in
      let r =
        F.Orchestrator.run ~params:rolling_params ~fleet ~to_version:"5.1.2" ()
      in
      F.Fleet.run fleet ~rounds:50;
      Printf.printf "  size %2d:\n" size;
      show_result fleet r ~req0;
      F.Fleet.detach_loads fleet)
    sizes

let canary () =
  Support.section
    "FLEET: canary deployment (miniweb 5.1.4 -> 5.1.5, 2 canaries)";
  let size = if Support.quick then 4 else 6 in
  let observe_rounds = if Support.quick then 150 else 300 in
  let fleet = boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.4" ~size in
  let req0 = F.Fleet.total_requests fleet in
  let r =
    F.Orchestrator.run
      ~params:(canary_params ~observe_rounds)
      ~fleet ~to_version:"5.1.5" ()
  in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d, observe %d rounds:\n" size observe_rounds;
  show_result fleet r ~req0;
  F.Fleet.detach_loads fleet

let halt_on_abort () =
  Support.section
    "FLEET: automatic halt (miniweb 5.1.2 -> 5.1.3, always-on-stack update)";
  let size = 4 in
  let fleet = boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.2" ~size in
  let req0 = F.Fleet.total_requests fleet in
  let params =
    { rolling_params with F.Orchestrator.update_timeout = 150 }
  in
  let r = F.Orchestrator.run ~params ~fleet ~to_version:"5.1.3" () in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d:\n" size;
  show_result fleet r ~req0;
  Printf.printf "    %-44s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  F.Fleet.detach_loads fleet

let rollback_mid_rollout () =
  Support.section
    "FLEET: automatic rollback (abort injected on instance 2 mid-rollout)";
  let size = 4 in
  let fleet = boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.1" ~size in
  let req0 = F.Fleet.total_requests fleet in
  (* instance 2's safe-point check is poisoned with a blacklist on
     ThreadedServer.run (the accept loop — always on stack), so
     instances 0 and 1 update first, then 2 aborts and the orchestrator
     reverts 0 and 1 with inverse specs *)
  let mutate_spec id spec =
    if id <> 2 then spec
    else
      {
        spec with
        J.Spec.blacklist =
          [
            {
              J.Diff.r_class = "ThreadedServer";
              r_name = "run";
              r_sig =
                {
                  Jv_classfile.Types.params = [];
                  ret = Jv_classfile.Types.TVoid;
                };
            };
          ];
      }
  in
  let params = { rolling_params with F.Orchestrator.update_timeout = 150 } in
  let r =
    F.Orchestrator.run ~mutate_spec ~params ~fleet ~to_version:"5.1.2" ()
  in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d:\n" size;
  show_result fleet r ~req0;
  Printf.printf "    %-44s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  F.Fleet.detach_loads fleet

let run () =
  rolling ();
  canary ();
  halt_on_abort ();
  rollback_mid_rollout ()
