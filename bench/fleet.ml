(* Fleet orchestration benchmarks: DSU rollouts across a load-balanced
   multi-VM cluster (lib/fleet).

   Four scenarios:
   - rolling update vs. fleet size (2..16): rollout latency, dropped
     in-flight connections, mixed-version window
   - canary deployment: update K instances, observe against the stable
     pool, promote
   - automatic halt: the always-on-stack 5.1.3 update (paper §5.1.3
     analogue, con-freeness analysis off) aborts on every instance —
     rollout halts, fleet stays on the old version
   - automatic rollback: a mid-rollout abort (injected via a safe-point
     blacklist on one instance) reverts the already-updated instances
     with inverse specs *)

module F = Jv_fleet
module G = Jv_gossip
module J = Jvolve_core
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics

let sizes = if Support.quick then [ 2; 4 ] else [ 2; 4; 8; 16 ]

let rolling_params =
  {
    (F.Orchestrator.default_params (F.Orchestrator.Rolling { batch_size = 1 })) with
    F.Orchestrator.probes_required = 2;
  }

let canary_params ~observe_rounds =
  F.Orchestrator.default_params
    (F.Orchestrator.Canary { canaries = 2; observe_rounds; promote_batch = 1 })

(* Boot the fleet, let every server reach its accept loop, then put it
   under steady scripted load before any rollout starts. *)
let boot_under_load ?config ~profile ~version ~size () =
  let fleet =
    F.Fleet.create ?config ~policy:F.Lb.Round_robin ~profile ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  let _driver = F.Fleet.attach_load ~concurrency:(2 * size) fleet in
  F.Fleet.run fleet ~rounds:120;
  fleet

(* Every figure here is read back from the fleet's jv_obs sink — the
   orchestrator's gauges and the LB's counters — not from bench-local
   bookkeeping.  [r] stays only for the outcome line. *)
let show_result fleet (r : F.Orchestrator.result) ~req0 =
  let obs = F.Fleet.obs fleet in
  let counter = Obs.counter_value obs in
  let gauge name = int_of_float (Obs.gauge_value obs name) in
  let lat =
    match Obs.find_histogram obs "fleet.lb.request_latency_rounds" with
    | Some h when Metrics.count h > 0 ->
        Printf.sprintf " (request latency p50 %.0f p90 %.0f rounds)"
          (Metrics.quantile h 0.5) (Metrics.quantile h 0.9)
    | _ -> ""
  in
  Printf.printf
    "    %-44s %s\n    %-44s %d rounds (mixed-version window %d)\n\
    \    %-44s %d dropped, %d rejected, %d served during rollout%s\n"
    "outcome:"
    (Fmt.str "%a" F.Orchestrator.pp_result r)
    "latency:"
    (gauge "fleet.rollout.last_rounds")
    (gauge "fleet.rollout.last_mixed_window")
    "connections:"
    (counter "fleet.lb.dropped")
    (counter "fleet.lb.rejected")
    (F.Fleet.total_requests fleet - req0)
    lat

let rolling () =
  Support.section
    "FLEET: rolling update (miniweb 5.1.1 -> 5.1.2, batch = 1) vs fleet size";
  List.iter
    (fun size ->
      let fleet =
        boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.1" ~size ()
      in
      let req0 = F.Fleet.total_requests fleet in
      let r =
        F.Orchestrator.run ~params:rolling_params ~fleet ~to_version:"5.1.2" ()
      in
      F.Fleet.run fleet ~rounds:50;
      Printf.printf "  size %2d:\n" size;
      show_result fleet r ~req0;
      F.Fleet.detach_loads fleet)
    sizes

let canary () =
  Support.section
    "FLEET: canary deployment (miniweb 5.1.4 -> 5.1.5, 2 canaries)";
  let size = if Support.quick then 4 else 6 in
  let observe_rounds = if Support.quick then 150 else 300 in
  let fleet = boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.4" ~size () in
  let req0 = F.Fleet.total_requests fleet in
  let r =
    F.Orchestrator.run
      ~params:(canary_params ~observe_rounds)
      ~fleet ~to_version:"5.1.5" ()
  in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d, observe %d rounds:\n" size observe_rounds;
  show_result fleet r ~req0;
  F.Fleet.detach_loads fleet

let halt_on_abort () =
  Support.section
    "FLEET: automatic halt (miniweb 5.1.2 -> 5.1.3, always-on-stack update, \
     con-freeness off)";
  let size = 4 in
  (* with con-freeness on (the default) this update is proven compatible
     and applies; the halt demo needs the analysis off *)
  let fleet =
    boot_under_load
      ~config:
        { F.Instance.default_config with Jv_vm.State.confree = false }
      ~profile:F.Profile.miniweb ~version:"5.1.2" ~size ()
  in
  let req0 = F.Fleet.total_requests fleet in
  let params =
    { rolling_params with F.Orchestrator.update_timeout = 150 }
  in
  let r = F.Orchestrator.run ~params ~fleet ~to_version:"5.1.3" () in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d:\n" size;
  show_result fleet r ~req0;
  Printf.printf "    %-44s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  F.Fleet.detach_loads fleet

let rollback_mid_rollout () =
  Support.section
    "FLEET: automatic rollback (abort injected on instance 2 mid-rollout)";
  let size = 4 in
  let fleet = boot_under_load ~profile:F.Profile.miniweb ~version:"5.1.1" ~size () in
  let req0 = F.Fleet.total_requests fleet in
  (* instance 2's safe-point check is poisoned with a blacklist on
     ThreadedServer.run (the accept loop — always on stack), so
     instances 0 and 1 update first, then 2 aborts and the orchestrator
     reverts 0 and 1 with inverse specs *)
  let mutate_spec id spec =
    if id <> 2 then spec
    else
      {
        spec with
        J.Spec.blacklist =
          [
            {
              J.Diff.r_class = "ThreadedServer";
              r_name = "run";
              r_sig =
                {
                  Jv_classfile.Types.params = [];
                  ret = Jv_classfile.Types.TVoid;
                };
            };
          ];
      }
  in
  let params = { rolling_params with F.Orchestrator.update_timeout = 150 } in
  let r =
    F.Orchestrator.run ~mutate_spec ~params ~fleet ~to_version:"5.1.2" ()
  in
  F.Fleet.run fleet ~rounds:50;
  Printf.printf "  size %d:\n" size;
  show_result fleet r ~req0;
  Printf.printf "    %-44s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  F.Fleet.detach_loads fleet

(* --- decentralized gossip rollouts (lib/gossip) ------------------------- *)

(* Many small heaps: 256 instances at the default 1 MiB semi-spaces
   would be 2 GiB of host arrays; miniweb under single-request sessions
   is comfortable in 64 K words. *)
let gossip_config =
  { F.Instance.default_config with Jv_vm.State.heap_words = 1 lsl 16 }

let gossip_params =
  {
    G.Gossip.default_params with
    G.Gossip.g_apply_jitter = 64 (* spread the post-quorum drain wave *);
  }

(* Boot a fleet on [version] and put it under open-loop load at
   [rate] arrivals per round; returns (fleet, driver). *)
let boot_open_loop ~version ~size ~rate =
  let profile = F.Profile.miniweb in
  let fleet =
    F.Fleet.create ~config:gossip_config ~policy:F.Lb.Round_robin ~profile
      ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  let ol =
    F.Openloop.create
      ~net:(F.Lb.front (F.Fleet.lb fleet))
      ~port:F.Fleet.default_lb_port
      ~line:(List.hd profile.F.Profile.pr_script)
      ~ok:profile.F.Profile.pr_ok ~rate
      ~obs:(F.Fleet.obs fleet) ()
  in
  for _ = 1 to 120 do
    F.Fleet.round fleet;
    F.Openloop.step ol ~tick:(F.Fleet.ticks fleet)
  done;
  (fleet, ol)

(* Drive the gossip runtime to convergence, keeping the open-loop
   arrival process running, then let the request tail drain. *)
let gossip_run g ol ~max_rounds =
  let fleet = g.G.Gossip.fleet in
  let rounds =
    G.Gossip.run g
      ~on_round:(fun _ -> F.Openloop.step ol ~tick:(F.Fleet.ticks fleet))
      ~max_rounds ()
  in
  let _drained =
    F.Openloop.drain ol
      ~tick:(F.Fleet.ticks fleet)
      ~round:(fun () -> F.Fleet.round fleet)
      ~patience:600
  in
  rounds

let show_gossip_result g ol ~rounds =
  let fleet = g.G.Gossip.fleet in
  let r = G.Gossip.report g ~rounds in
  let dropped =
    F.Openloop.dropped_in_flight ol + F.Lb.dropped (F.Fleet.lb fleet)
  in
  Printf.printf "    %-44s %s\n" "gossip:" (Fmt.str "%a" G.Gossip.pp_report r);
  Printf.printf "    %-44s %s\n" "fleet version:"
    (match F.Fleet.uniform_version fleet with
    | Some v -> v ^ " (uniform)"
    | None -> "MIXED");
  Printf.printf
    "    %-44s %d offered, %d served, %d errors (max %d in flight)\n"
    "open-loop load:" (F.Openloop.offered ol) (F.Openloop.served ol)
    (F.Openloop.errors ol)
    (F.Openloop.max_in_flight ol);
  Printf.printf "    %-44s p50 %.0f p99 %.0f rounds (mean %.1f)\n"
    "request latency:"
    (F.Openloop.latency_quantile ol 0.5)
    (F.Openloop.latency_quantile ol 0.99)
    (F.Openloop.mean_latency_rounds ol);
  Printf.printf "    %-44s %d dropped in flight, %d refused -- SLO %s\n"
    "connections:" dropped (F.Openloop.refused ol)
    (if dropped = 0 then "PASS" else "FAIL");
  r

(* A full-fleet decentralized rollout: one proposal injected at node 0
   spreads by rumor + anti-entropy over a control plane losing 10% of
   its packets; every apply decision is a local quorum read.  There is
   no orchestrator to halt or fence -- the SLOs are judged against the
   open-loop arrival process that never stops. *)
let gossip_rollout () =
  let size = if Support.quick then 64 else 256 in
  Support.section
    (Printf.sprintf
       "FLEET: decentralized gossip rollout (miniweb 5.1.1 -> 5.1.2, %d \
        instances, no orchestrator, 10%% control-plane drop)"
       size);
  let fleet, ol = boot_open_loop ~version:"5.1.1" ~size ~rate:4.0 in
  let chaos =
    match Jv_faults.Faults.parse ~seed:11 "net.link=drop@0.10" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let g = G.Gossip.create ~chaos ~params:gossip_params ~fleet () in
  let req0 = F.Openloop.served ol in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.2");
  let rounds = gossip_run g ol ~max_rounds:6000 in
  Printf.printf "  size %d, quorum %d votes:\n" size g.G.Gossip.quorum;
  let r = show_gossip_result g ol ~rounds in
  Printf.printf "    %-44s 0 (all %d applies were local quorum reads)\n"
    "central decisions:" r.G.Gossip.gr_applied;
  ignore req0

(* Mid-rollout guard trip, no orchestrator: 5.1.11 passes admission on
   every node but 404s real traffic, so the first guards to see app
   errors trip, their trip-votes reach the fence quorum by gossip, and
   the inverse-spec wave walks the fleet back to epoch 0. *)
let gossip_fence () =
  let size = if Support.quick then 16 else 64 in
  Support.section
    (Printf.sprintf
       "FLEET: gossip fence (miniweb 5.1.10 -> 5.1.11 bad update, %d \
        instances, guard trips reach quorum, peer-to-peer inverse wave)"
       size);
  let fleet, ol = boot_open_loop ~version:"5.1.10" ~size ~rate:4.0 in
  let params = { gossip_params with G.Gossip.g_guard = Some (J.Guard.config ()) } in
  let g = G.Gossip.create ~params ~fleet () in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.11");
  let rounds = gossip_run g ol ~max_rounds:8000 in
  Printf.printf "  size %d, fence quorum %d trip vote(s):\n" size
    g.G.Gossip.fence;
  let r = show_gossip_result g ol ~rounds in
  Printf.printf "    %-44s %s\n" "fence:"
    (if r.G.Gossip.gr_fenced && r.G.Gossip.gr_epoch = Some 0 then
       Printf.sprintf
         "tripped and converged back to epoch 0 (%d guard trip(s), %d \
          inverse updates)"
         r.G.Gossip.gr_guard_trips r.G.Gossip.gr_reverts
     else "DID NOT FENCE")

(* --- self-healing: supervised recovery under a kill storm --------------- *)

let heal_supervisor_params =
  {
    F.Supervisor.default_params with
    F.Supervisor.s_backoff_base = 20;
    s_snapshot_every = 40;
  }

let heal_orch_params ~batch =
  {
    (F.Orchestrator.default_params
       (F.Orchestrator.Rolling { batch_size = batch }))
    with
    F.Orchestrator.update_timeout = 250;
    max_retries = 1;
    backoff_base = 20;
    on_exhausted = `Quarantine;
  }

(* Drive rollout + supervisor (+ open-loop arrivals) until the rollout
   has a result AND every recovery has finished, or [max_rounds]
   elapse. *)
let drive_heal ~fleet ~orch ~sup ?ol ~max_rounds () =
  let tick () =
    F.Fleet.round fleet;
    F.Orchestrator.step orch;
    F.Supervisor.step sup;
    match ol with
    | None -> ()
    | Some ol -> F.Openloop.step ol ~tick:(F.Fleet.ticks fleet)
  in
  let rec go n =
    if n >= max_rounds then ()
    else
      match F.Orchestrator.result orch with
      | Some _ when F.Supervisor.settled sup -> ()
      | _ ->
          tick ();
          go (n + 1)
  in
  go 0

let mttr_line obs =
  match Obs.find_histogram obs "fleet.mttr_rounds" with
  | Some h when Metrics.count h > 0 ->
      Printf.sprintf "p50 %.0f max %.0f rounds over %d recoveries"
        (Metrics.quantile h 0.5) (Metrics.quantile h 1.0) (Metrics.count h)
  | _ -> "n/a (no recoveries)"

(* The supervisor's recovery transcript: the deterministic down -> up
   event arc, for byte-identical replay checks. *)
let heal_transcript fleet =
  let keep = function
    | "instance.down" | "restart.scheduled" | "restart.failed"
    | "instance.restart" | "instance.parked" | "instance.readmit"
    | "snapshot.failed" | "probe.unhealthy" ->
        true
    | _ -> false
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (ev : Obs.event) ->
      if keep ev.Obs.ev_name then begin
        Buffer.add_string buf
          (Printf.sprintf "[%d] %s %s" ev.Obs.ev_tick ev.Obs.ev_name
             (String.concat " "
                (List.map
                   (fun (k, v) ->
                     k ^ "="
                     ^
                     match v with
                     | Obs.Int i -> string_of_int i
                     | Obs.Float f -> Printf.sprintf "%.3f" f
                     | Obs.Str s -> s)
                   ev.Obs.ev_fields)));
        Buffer.add_char buf '\n'
      end)
    (Obs.events (F.Fleet.obs fleet));
  Buffer.contents buf

(* One supervised kill-storm rollout; returns (fleet, reconciled result
   option, supervisor, transcript).  [size/5] seeded kills (a 20% storm)
   fire while the rolling update is in flight; the supervisor restarts,
   restores, catches up and readmits each corpse. *)
let heal_storm_run ~size ~seed =
  let kills = max 1 (size / 5) in
  let fleet, ol = boot_open_loop ~version:"5.1.1" ~size ~rate:4.0 in
  let plan =
    match
      Jv_faults.Faults.parse ~seed
        (Printf.sprintf "vm.crash=kill@0.002x%d" kills)
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  F.Fleet.set_faults fleet (Some plan);
  let orch =
    F.Orchestrator.create
      ~params:(heal_orch_params ~batch:(max 1 (size / 8)))
      ~fleet ~to_version:"5.1.2" ()
  in
  let sup = F.Supervisor.create ~params:heal_supervisor_params ~fleet () in
  drive_heal ~fleet ~orch ~sup ~ol ~max_rounds:30_000 ();
  let r =
    Option.map
      (fun r ->
        F.Orchestrator.reconcile r ~recovered:(F.Supervisor.recovered sup))
      (F.Orchestrator.result orch)
  in
  (fleet, ol, r, sup, plan)

let heal_storm () =
  let size = if Support.quick then 4 else 64 in
  let kills = max 1 (size / 5) in
  Support.section
    (Printf.sprintf
       "FLEET: self-healing kill storm (miniweb 5.1.1 -> 5.1.2, %d \
        instances, %d seeded kills mid-rollout, supervisor on)"
       size kills);
  let fleet, ol, r, sup, plan = heal_storm_run ~size ~seed:7 in
  let obs = F.Fleet.obs fleet in
  (* storm over: measure residual errors on the healed fleet *)
  let errs0 = F.Openloop.errors ol in
  for _ = 1 to 300 do
    F.Fleet.round fleet;
    F.Supervisor.step sup;
    F.Openloop.step ol ~tick:(F.Fleet.ticks fleet)
  done;
  let _drained =
    F.Openloop.drain ol
      ~tick:(F.Fleet.ticks fleet)
      ~round:(fun () -> F.Fleet.round fleet)
      ~patience:600
  in
  let residual = F.Openloop.errors ol - errs0 in
  let alive = F.Supervisor.alive sup in
  (match r with
  | Some r ->
      Printf.printf "    %-44s %s\n" "outcome:"
        (Fmt.str "%a" F.Orchestrator.pp_result r)
  | None -> Printf.printf "    %-44s DID NOT FINISH\n" "outcome:");
  Printf.printf "    %-44s %d fired (%d kill budget)\n" "kill storm:"
    (Jv_faults.Faults.fired plan) kills;
  Printf.printf "    %-44s %d restart(s), %d recovered, %d parked\n"
    "supervisor:" (F.Supervisor.restarts sup)
    (List.length (F.Supervisor.recovered sup))
    (List.length (F.Supervisor.parked sup));
  Printf.printf "    %-44s %s\n" "MTTR:" (mttr_line obs);
  Printf.printf "    %-44s %d round(s)\n" "time below capacity:"
    (F.Supervisor.below_capacity_rounds sup);
  Printf.printf "    %-44s p50 %.0f p99 %.0f rounds, %d dropped in flight\n"
    "open-loop latency:"
    (F.Openloop.latency_quantile ol 0.5)
    (F.Openloop.latency_quantile ol 0.99)
    (F.Openloop.dropped_in_flight ol + F.Lb.dropped (F.Fleet.lb fleet));
  let uniform = F.Fleet.uniform_version fleet in
  Printf.printf "    %-44s %d/%d alive at %s -- %s\n" "full strength:" alive
    size
    (match uniform with Some v -> v ^ " (uniform)" | None -> "MIXED")
    (if alive = size && uniform <> None then "PASS" else "FAIL");
  Printf.printf "    %-44s %d -- %s\n" "residual errors:" residual
    (if residual = 0 then "PASS" else "FAIL")

(* A restarted ministore instance must come back serving its pre-crash
   records, migrated forward through the schema hop it missed: the
   fleet rolls 1.0 -> 1.1, writes stop, the supervisor snapshots, a
   seeded crash kills instance 0, and the recovered store's scrape must
   be bit-for-bit the pre-crash scrape. *)
let heal_durability () =
  Support.section
    "FLEET: durable ministore recovery (snapshot restore + schema \
     catch-up through a missed 1.0 -> 1.1 hop)";
  let size = 4 in
  let fleet =
    boot_under_load ~profile:F.Profile.ministore ~version:"1.0" ~size ()
  in
  let req0 = F.Fleet.total_requests fleet in
  let r =
    F.Orchestrator.run ~params:rolling_params ~fleet ~to_version:"1.1" ()
  in
  F.Fleet.detach_loads fleet;
  (* writes frozen: run to a snapshot boundary so the supervisor holds a
     current image of every store *)
  let sup = F.Supervisor.create ~params:heal_supervisor_params ~fleet () in
  for _ = 1 to 2 * heal_supervisor_params.F.Supervisor.s_snapshot_every do
    F.Fleet.round fleet;
    F.Supervisor.step sup
  done;
  let victim = 0 in
  let pre =
    match
      Jv_apps.Ministore.scrape (F.Fleet.instance fleet victim).F.Instance.i_vm
    with
    | Ok s -> s
    | Error e -> failwith ("pre-crash scrape failed: " ^ e)
  in
  (* the seeded crash: rate 1.0, one fire — instance 0 dies on the next
     consult (round order makes that deterministic) *)
  let plan =
    match Jv_faults.Faults.parse ~seed:3 "vm.crash=kill@1.0x1" with
    | Ok p -> p
    | Error e -> failwith e
  in
  F.Fleet.set_faults fleet (Some plan);
  let rounds = ref 0 in
  while (not (F.Supervisor.settled sup)) || !rounds < 5 do
    F.Fleet.round fleet;
    F.Supervisor.step sup;
    incr rounds;
    if !rounds > 20_000 then failwith "durability leg did not settle"
  done;
  let post =
    match
      Jv_apps.Ministore.scrape (F.Fleet.instance fleet victim).F.Instance.i_vm
    with
    | Ok s -> s
    | Error e -> failwith ("post-recovery scrape failed: " ^ e)
  in
  Printf.printf "    %-44s %s\n" "rollout:"
    (Fmt.str "%a" F.Orchestrator.pp_result r);
  Printf.printf "    %-44s %d restart(s), %d recovered\n" "supervisor:"
    (F.Supervisor.restarts sup)
    (List.length (F.Supervisor.recovered sup));
  Printf.printf "    %-44s %d records at schema %s\n" "pre-crash store:"
    (List.length pre.Jv_apps.Ministore.s_records)
    pre.Jv_apps.Ministore.s_version;
  Printf.printf "    %-44s %d records at schema %s\n" "recovered store:"
    (List.length post.Jv_apps.Ministore.s_records)
    post.Jv_apps.Ministore.s_version;
  let same =
    pre.Jv_apps.Ministore.s_records = post.Jv_apps.Ministore.s_records
    && pre.Jv_apps.Ministore.s_version = post.Jv_apps.Ministore.s_version
  in
  Printf.printf "    %-44s %s -- %s\n" "durability:"
    (if same then "pre-crash records served bit-for-bit after recovery"
     else "RECORDS DIVERGED")
    (if same then "PASS" else "FAIL");
  ignore req0

(* Same (plan, seed) must give the same recovery, byte for byte: two
   independent storms compared on their supervisor event transcripts. *)
let heal_determinism () =
  Support.section
    "FLEET: recovery determinism (same seeded kill plan, twice; \
     transcripts must be byte-identical)";
  let size = if Support.quick then 4 else 8 in
  let once () =
    let fleet, _ol, _r, _sup, _plan = heal_storm_run ~size ~seed:13 in
    heal_transcript fleet
  in
  let a = once () in
  let b = once () in
  let lines = List.length (String.split_on_char '\n' a) - 1 in
  Printf.printf "    %-44s %d transcript line(s)\n" "recovery events:" lines;
  Printf.printf "    %-44s %s -- %s\n" "replay:"
    (if a = b then "byte-identical across runs"
     else "TRANSCRIPTS DIVERGED")
    (if a = b && lines > 0 then "PASS" else "FAIL")

let run_heal () =
  heal_storm ();
  heal_durability ();
  heal_determinism ()

let run_gossip () =
  gossip_rollout ();
  gossip_fence ()

let run () =
  rolling ();
  canary ();
  halt_on_abort ();
  rollback_mid_rollout ()
