(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation (§4), plus the ablations DESIGN.md calls for.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe table1       # Table 1 + Figure 6
     dune exec bench/main.exe fig5         # Figure 5
     dune exec bench/main.exe experience   # Tables 2-5 + §4 summary
     dune exec bench/main.exe overhead     # steady-state / baseline costs
     dune exec bench/main.exe ablation     # design-choice ablations
     dune exec bench/main.exe micro        # Bechamel kernels
     dune exec bench/main.exe fleet        # multi-VM rollout orchestration
     dune exec bench/main.exe fleet --gossip  # decentralized gossip rollout:
                                           # 256-instance quorum epoch
                                           # agreement under open-loop load
                                           # (alias: gossip)
     dune exec bench/main.exe fleet --heal # self-healing: supervised
                                           # kill-storm recovery, ministore
                                           # snapshot/restore durability,
                                           # byte-identical replay
                                           # (alias: heal)
     dune exec bench/main.exe chaos        # fault injection: abort cost,
                                           # convergence under fault rates,
                                           # kill-storm heal convergence
     dune exec bench/main.exe safety       # admission latency, verifier
                                           # pause cost, fault gauntlet
     dune exec bench/main.exe guard        # guard window: revert pause,
                                           # watchdog overhead, bad-update
                                           # auto-revert demo
     dune exec bench/main.exe store        # ministore schema migrations:
                                           # transformer objects/sec and
                                           # pause vs store size, guard
                                           # revert vs log size, gossip
                                           # rollout of a migration
     dune exec bench/main.exe store --lazy # lazy-mode commit pause vs
                                           # store size (must stay flat)
     dune exec bench/main.exe guard --lazy # guarded lazy migration:
                                           # commit pause + tripped revert
     dune exec bench/main.exe confree      # con-freeness: restricted-set
                                           # size and time-to-safe-point
                                           # for the always-on-stack
                                           # miniweb 5.1.3 update, on vs off

   Set JVOLVE_BENCH_QUICK=1 to shrink the long experiments. *)

let usage () =
  print_endline
    "usage: main.exe [table1|fig5|experience|table2|table3|table4|overhead|\
     ablation|micro|fleet|fleet --gossip|gossip|fleet --heal|heal|chaos|\
     safety|guard|store|guard --lazy|store --lazy|confree|all]";
  exit 1

let run_one = function
  | "table1" | "fig6" -> Table1.run ()
  | "fig5" -> Fig5.run ()
  | "experience" | "table2" | "table3" | "table4" | "table5" ->
      Experience_bench.run ()
  | "overhead" -> Overhead.run ()
  | "ablation" -> Ablation.run ()
  | "micro" -> Micro.run ()
  | "fleet" -> Fleet.run ()
  | "gossip" -> Fleet.run_gossip ()
  | "heal" -> Fleet.run_heal ()
  | "chaos" -> Chaos.run ()
  | "safety" -> Safety.run ()
  | "guard" -> Guard_bench.run ()
  | "store" -> Store_bench.run ()
  | "confree" -> Table1.confree_section ()
  | "all" ->
      (* Table 1 first: its pause measurements are the most sensitive to
         host-heap churn from the other sections *)
      Table1.run ();
      Experience_bench.run ();
      Fig5.run ();
      Overhead.run ();
      Ablation.run ();
      Micro.run ();
      Fleet.run ();
      Fleet.run_gossip ();
      Fleet.run_heal ();
      Chaos.run ();
      Safety.run ();
      Guard_bench.run ();
      Store_bench.run ()
  | _ -> usage ()

let () =
  (* keep the host-language GC out of the measured pauses: large minor
     heap, relaxed major-collection pacing *)
  Stdlib.Gc.set
    {
      (Stdlib.Gc.get ()) with
      Stdlib.Gc.minor_heap_size = 1 lsl 22;
      space_overhead = 300;
    };
  let t0 = Unix.gettimeofday () in
  (match Array.to_list Sys.argv with
  | [ _ ] -> run_one "all"
  | [ _; "fleet"; "--gossip" ] -> run_one "gossip"
  | [ _; "fleet"; "--heal" ] -> run_one "heal"
  | [ _; "store"; "--lazy" ] -> Store_bench.run_lazy ()
  | [ _; "guard"; "--lazy" ] -> Guard_bench.run_lazy ()
  | [ _; cmd ] -> run_one cmd
  | _ -> usage ());
  Printf.printf "\n[bench completed in %.1f s%s]\n"
    (Unix.gettimeofday () -. t0)
    (if Support.quick then ", quick mode" else "")
