(* Guard-window benchmarks (lib/core/guard): what the post-commit
   watchdog costs and what an automatic revert buys.

   Three sections:
   - revert pause vs. live heap size: apply a field-adding update to a
     linked structure of growing size under a guard, force the window to
     trip ([guard.trip] fault point), and report the inverse update's
     pause (replaying the retained log) next to the forward apply's;
   - steady-state overhead: a loaded miniweb serving through an open
     guard window vs. an unguarded commit — the watchdog tick (epoch
     counters, windowed p99) must cost <= 2% of throughput;
   - the end-to-end bad update: miniweb 5.1.10 -> 5.1.11, a semantically
     wrong release that admission control cannot catch (it type-checks;
     it just 404s most static traffic).  The error-budget watchdog must
     trip on app errors and auto-revert with zero dropped connections. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module Faults = Jv_faults.Faults

let compile = Jv_lang.Compile.compile_program

(* A budget no real workload trips: for sections that need the window
   open (or tripped only by a fault point), never by traffic. *)
let lenient ~rounds =
  {
    J.Guard.default_budget with
    J.Guard.b_rounds = rounds;
    b_max_traps = max_int;
    b_max_app_errors = max_int;
    b_max_probe_failures = max_int;
    b_latency_factor = 1e9;
  }

(* --- section 1: revert pause vs. live heap size -------------------------- *)

(* [extra = true] adds a field to Node, so the forward update transforms
   every node (retaining n log pairs) and the revert replays them all. *)
let node_program ~extra n =
  Printf.sprintf
    {|
class Node { int v; %sNode next; int[] pad; }
class Keeper { static Node head; }
class Main {
  static void main() {
    for (int i = 0; i < %d; i = i + 1) {
      Node n = new Node();
      n.v = i;
      n.pad = new int[3];
      n.next = Keeper.head;
      Keeper.head = n;
    }
  }
}
|}
    (if extra then "int gen; " else "")
    n

let revert_pause () =
  Support.section
    "GUARD: revert pause vs. live heap size (window tripped by guard.trip)";
  Printf.printf "    %10s %12s %12s %16s\n" "nodes" "apply ms" "revert ms"
    "revert / 10k";
  let sizes =
    if Support.quick then [ 2_000; 4_000; 8_000 ]
    else [ 10_000; 20_000; 40_000; 80_000 ]
  in
  List.iter
    (fun n ->
      let config =
        { VM.State.default_config with VM.State.heap_words = 1 lsl 21 }
      in
      let vm = VM.Vm.create ~config () in
      VM.Vm.boot vm (compile (node_program ~extra:false n));
      ignore (VM.Vm.spawn_main vm ~main_class:"Main");
      ignore (VM.Vm.run_to_quiescence ~max_rounds:1_000_000 vm);
      let spec =
        J.Spec.make ~version_tag:"g1"
          ~old_program:(compile (node_program ~extra:false n))
          ~new_program:(compile (node_program ~extra:true n))
          ()
      in
      let guard = J.Guard.config ~budget:(lenient ~rounds:400) () in
      let h = J.Jvolve.update_now ~timeout_rounds:400 ~guard vm spec in
      let apply_ms =
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied t -> t.J.Updater.u_total_ms
        | o ->
            Printf.printf "    !! apply failed: %s\n"
              (J.Jvolve.outcome_to_string o);
            0.0
      in
      let plan = Faults.create ~seed:7 () in
      Faults.arm plan ~point:"guard.trip" ~max_fires:1 Faults.Raise;
      VM.Vm.set_faults vm (Some plan);
      let final = J.Jvolve.run_to_guard_close vm h in
      VM.Vm.set_faults vm None;
      match final with
      | J.Jvolve.Reverted v ->
          Printf.printf "    %10d %12.3f %12.3f %16.4f\n" n apply_ms
            v.J.Guard.v_revert_ms
            (v.J.Guard.v_revert_ms /. float_of_int n *. 10_000.0)
      | o ->
          Printf.printf "    %10d !! expected a revert, got %s\n" n
            (J.Jvolve.outcome_to_string o))
    sizes

(* --- section 2: steady-state overhead of an open window ------------------ *)

let overhead () =
  Support.section
    "GUARD: steady-state overhead of an open window (loaded miniweb, fig5 \
     conditions)";
  let rounds = if Support.quick then 400 else 1500 in
  let measure ~guarded =
    let d = A.Experience.web_desc in
    let vm = A.Experience.boot_version d ~version:"5.1.1" in
    let loads = A.Experience.attach_loads vm d ~concurrency:4 in
    VM.Vm.run vm ~rounds:80;
    let spec =
      J.Spec.make ~version_tag:"511"
        ~old_program:(Support.compile_version A.Miniweb.app ~version:"5.1.1")
        ~new_program:(Support.compile_version A.Miniweb.app ~version:"5.1.2")
        ()
    in
    let h =
      if guarded then
        J.Jvolve.update_now ~timeout_rounds:400
          ~guard:(J.Guard.config ~budget:(lenient ~rounds:(rounds + 200)) ())
          vm spec
      else J.Jvolve.update_now ~timeout_rounds:400 vm spec
    in
    (match h.J.Jvolve.h_outcome with
    | J.Jvolve.Applied _ -> ()
    | o ->
        Printf.printf "    !! update did not apply: %s\n"
          (J.Jvolve.outcome_to_string o));
    let before = A.Experience.total_requests loads in
    let t0 = Unix.gettimeofday () in
    VM.Vm.run vm ~rounds;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let served = A.Experience.total_requests loads - before in
    (float_of_int served /. ms, served)
  in
  let thr_plain, served_plain = measure ~guarded:false in
  let thr_guard, served_guard = measure ~guarded:true in
  let pct = (thr_plain -. thr_guard) /. thr_plain *. 100.0 in
  Printf.printf "    unguarded commit: %6d requests in %d rounds (%.1f req/ms)\n"
    served_plain rounds thr_plain;
  Printf.printf "    window open:      %6d requests in %d rounds (%.1f req/ms)\n"
    served_guard rounds thr_guard;
  Printf.printf "    guard overhead: %.2f%% (target <= 2%%)\n" (Float.max 0.0 pct)

(* --- section 3: the end-to-end bad update -------------------------------- *)

let bad_update () =
  Support.section
    (Printf.sprintf
       "GUARD: end-to-end bad update (miniweb 5.1.10 -> %s, auto-revert)"
       A.Miniweb.bad_update);
  let d = A.Experience.web_desc in
  let vm = A.Experience.boot_version d ~version:"5.1.10" in
  let w = List.hd (A.Experience.attach_loads vm d ~concurrency:4) in
  VM.Vm.run vm ~rounds:120;
  let spec =
    J.Spec.make ~version_tag:"5110"
      ~old_program:(Support.compile_version A.Miniweb.app ~version:"5.1.10")
      ~new_program:
        (Support.compile_version A.Miniweb.app ~version:A.Miniweb.bad_update)
      ()
  in
  let h =
    J.Jvolve.update_now ~timeout_rounds:400 ~guard:(J.Guard.config ()) vm spec
  in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Printf.printf
        "    update applied in %.3f ms (admission clean: the bug is semantic)\n"
        t.J.Updater.u_total_ms
  | o ->
      Printf.printf "    !! update did not apply: %s\n"
        (J.Jvolve.outcome_to_string o));
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Reverted v ->
      Printf.printf "    auto-reverted: %s\n" (J.Guard.verdict_to_string v)
  | o ->
      Printf.printf "    !! expected an auto-revert, got: %s\n"
        (J.Jvolve.outcome_to_string o));
  (* drain responses the bad epoch had already queued before the trip:
     they are its errors, not the restored version's *)
  VM.Vm.run vm ~rounds:10;
  let errors_at_revert = w.A.Workload.errors in
  let before = w.A.Workload.completed_requests in
  VM.Vm.run vm ~rounds:200;
  Printf.printf "    after revert: %d requests served, %d new errors\n"
    (w.A.Workload.completed_requests - before)
    (w.A.Workload.errors - errors_at_revert);
  Printf.printf "    dropped connections: %d\n" w.A.Workload.dropped

(* --- section 4 (--lazy): guarded lazy migration -------------------------- *)

(* The guard window riding on a lazy update: commit is metadata-only (the
   pause must not scale with the store), the watchdog trips while the
   sweeper is mid-heap, and the revert first drains the residual
   transforms, then replays the retained log inversely.  Store sizes
   reuse the ministore fixture so the 1M-record point is buildable in
   bench time. *)
let run_lazy () =
  Support.section
    "GUARD --lazy: guarded lazy migration (commit pause, trip mid-sweep, \
     revert over the half-transformed heap)";
  Printf.printf "    %10s %12s %12s %10s\n" "records" "commit ms"
    "revert ms" "outcome";
  (* outcome "reverted*" = the sweeper had already drained the window
     before the trip, so the revert was a plain eager log replay *)
  let sizes =
    if Support.quick then [ 2_000; 8_000 ] else [ 10_000; 1_000_000 ]
  in
  let pauses =
    List.map
      (fun n ->
        let vm = Store_bench.boot_store ~lazy_mode:true ~words_per_rec:30 ~n () in
        let guard = J.Guard.config ~budget:(lenient ~rounds:4000) () in
        let h =
          J.Jvolve.update_now ~timeout_rounds:400 ~guard vm
            (Store_bench.spec_for ~from_version:"1.0" ~to_version:"1.1")
        in
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied t ->
            let commit_ms = t.J.Updater.u_total_ms in
            (* a few rounds of sweeping, then trip mid-heap.  The wall
               clock brackets the trip: the revert first force-drains the
               residual transforms, then replays the retained log
               inversely, and both phases bill to the revert *)
            VM.Vm.run vm ~rounds:3;
            let mid_sweep = vm.VM.State.lazy_info <> None in
            let t0 = Unix.gettimeofday () in
            J.Jvolve.force_trip vm h ~reason:"bench: revert mid-sweep";
            let final = J.Jvolve.run_to_guard_close vm h in
            let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            Printf.printf "    %10d %12.3f %12.1f %10s\n" n commit_ms
              wall_ms
              (match final with
              | J.Jvolve.Reverted _ ->
                  if mid_sweep then "reverted" else "reverted*"
              | o -> J.Jvolve.outcome_to_string o);
            commit_ms
        | o ->
            Printf.printf "    %10d !! did not apply: %s\n" n
              (J.Jvolve.outcome_to_string o);
            Float.infinity)
      sizes
  in
  match pauses with
  | [ small; large ] ->
      let ratio = large /. Float.max 0.1 small in
      Printf.printf "    lazy pause flat: %s (ratio %.2f <= 2)\n"
        (if ratio <= 2.0 then "PASS" else "FAIL")
        ratio
  | _ -> ()

let run () =
  revert_pause ();
  overhead ();
  bad_update ()
