(* Tables 2-5 and the §4 experience results.

   For every release of miniweb (Jetty), minimail (JavaEmailServer),
   miniftp (CrossFTP) and ministore (the stateful KV store whose ladder
   is all schema migrations) we print the UPT change summary — the paper's
   per-release table row — and the outcome of actually applying the update
   to the running, loaded server.  Aborted updates are retried on an idle
   server, reproducing the paper's observation that CrossFTP 1.07->1.08
   applies only when "relatively idle".  The paper's two permanently
   stuck updates — Jetty 5.1.3 and JavaEmailServer 1.3, whose changed
   methods run in infinite loops regardless of load — now apply on the
   first attempt because the con-freeness analysis (on by default)
   proves those loops backward-compatible; run `bench confree` for the
   on/off contrast, or this bench with --no-confree semantics via
   test/test_apps.ml's off-pair tests. *)

module A = Jv_apps
module J = Jvolve_core

let table_for (desc : A.Experience.app_desc) ~title =
  Support.section title;
  let attempts =
    A.Experience.run_app ~loaded:true desc
    |> List.map (fun (a : A.Experience.attempt) ->
           match a.A.Experience.a_outcome with
           | A.Experience.Aborted _ ->
               (* retry idle, as the paper did for CrossFTP *)
               let idle =
                 A.Experience.run_one ~loaded:false ~timeout_rounds:120 desc
                   ~from_version:a.A.Experience.a_from
                   ~to_version:a.A.Experience.a_to
               in
               (a, Some idle)
           | _ -> (a, None))
  in
  A.Experience.print_table Fmt.stdout (List.map fst attempts);
  List.iter
    (fun ((a : A.Experience.attempt), idle) ->
      match idle with
      | Some (i : A.Experience.attempt) -> (
          match i.A.Experience.a_outcome with
          | A.Experience.Applied _ ->
              Printf.printf
                "  note: %s -> %s aborted under load but APPLIED when idle \
                 (paper: CrossFTP 1.07->1.08 behaviour)\n"
                a.A.Experience.a_from a.A.Experience.a_to
          | A.Experience.Aborted _ ->
              Printf.printf
                "  note: %s -> %s fails even when idle (always-running \
                 changed loop; paper: Jetty 5.1.3 / JavaEmailServer 1.3)\n"
                a.A.Experience.a_from a.A.Experience.a_to)
      | None -> ())
    attempts;
  attempts

let run () =
  let web =
    table_for A.Experience.web_desc
      ~title:"Table 2: summary of updates to miniweb (Jetty analogue)"
  in
  let mail =
    table_for A.Experience.mail_desc
      ~title:"Table 3: summary of updates to minimail (JavaEmailServer \
              analogue)"
  in
  let ftp =
    table_for A.Experience.ftp_desc
      ~title:"Table 4: summary of updates to miniftp (CrossFTP analogue)"
  in
  let store =
    table_for A.Experience.store_desc
      ~title:"Table 5: summary of updates to ministore (stateful KV store, \
              schema-migration ladder)"
  in
  Support.section "Experience summary (paper §4)";
  let all = List.map fst (web @ mail @ ftp @ store) in
  let idle_rescued =
    List.concat_map
      (fun (_, i) -> match i with
        | Some ({ A.Experience.a_outcome = A.Experience.Applied _; _ } as x) ->
            [ x ]
        | _ -> [])
      (web @ mail @ ftp @ store)
  in
  let applied, hotswap, total = A.Experience.summary all in
  let applied_counting_idle = applied + List.length idle_rescued in
  Printf.printf
    "Jvolve applied %d of %d updates under load; %d more applied when idle \
     -> %d of %d total (paper: 20 of 22).\n"
    applied total (List.length idle_rescued) applied_counting_idle total;
  Printf.printf
    "A method-body-only system (HotSwap / edit-and-continue) supports %d of \
     %d (paper: 9 of 22).\n"
    hotswap total;
  let osr_updates =
    List.filter (fun (a : A.Experience.attempt) -> a.A.Experience.a_osr > 0) all
  in
  Printf.printf "Updates that needed OSR to reach a safe point: %s\n"
    (String.concat ", "
       (List.map
          (fun (a : A.Experience.attempt) ->
            Printf.sprintf "%s %s->%s (%d frames)" a.A.Experience.a_app
              a.A.Experience.a_from a.A.Experience.a_to a.A.Experience.a_osr)
          osr_updates));
  let barriered =
    List.filter (fun (a : A.Experience.attempt) -> a.A.Experience.a_barriers > 0) all
  in
  Printf.printf "Updates that installed return barriers: %d of %d\n"
    (List.length barriered) total
