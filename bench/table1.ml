(* Table 1 / Figure 6: update pause-time microbenchmark.

   Recreates the paper's §4.1 microbenchmark: a heap full of [Change] and
   [NoChange] objects (three int fields, three always-null reference
   fields); the update adds an int field to [Change] and the (default)
   object transformer copies the existing fields and zeroes the new one.

   For each heap size (object count) and each fraction of updated objects
   we report the GC time, the transformer-execution time, and the total
   DSU pause — the three row groups of Table 1.  Figure 6 is the largest
   row printed as three series.

   The paper's absolute numbers came from a 2.4 GHz Core 2 Quad; ours come
   from this machine's OCaml implementation of the same algorithm.  The
   claims that must reproduce are the shapes: GC time linear in live
   objects, transformer time linear in the updated fraction and steeper
   than the GC slope, and the fully-updated total roughly 4x the
   0%-updated total. *)

module VM = Jv_vm
module J = Jvolve_core
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics

let v1_src =
  {|
class Holder { int x; }
class Change {
  int a; int b; int c;
  Holder r1; Holder r2; Holder r3;
}
class NoChange {
  int a; int b; int c;
  Holder r1; Holder r2; Holder r3;
}
class Root {
  static Change[] cs;
  static NoChange[] ns;
}
class Main {
  static void main() {
    while (true) { Thread.sleep(10); }
  }
}
|}

let v2_src =
  Jv_apps.Patching.patch v1_src
    [
      ( {|class Change {
  int a; int b; int c;|},
        {|class Change {
  int a; int b; int c; int d;|} );
    ]

(* Populate the heap directly from the harness (the objects' field values
   are what the update must preserve; how they got allocated is
   immaterial to the measured pause). *)
let populate vm ~n_change ~n_nochange =
  let reg = vm.VM.State.reg in
  let change_cls = VM.Rt.require_class reg "Change" in
  let nochange_cls = VM.Rt.require_class reg "NoChange" in
  let root = VM.Rt.require_class reg "Root" in
  let slot_of name =
    match VM.Rt.find_static_info reg root name with
    | Some si -> si.VM.Rt.si_slot
    | None -> failwith ("no static " ^ name)
  in
  let fill cls slot count =
    let arr = VM.State.alloc_array vm ~len:count in
    VM.State.jtoc_set vm slot (VM.Value.of_ref arr);
    for i = 0 to count - 1 do
      let o = VM.State.alloc_object vm cls in
      (* a=i, b=2i, c=3i; reference fields stay null *)
      VM.Heap.set vm.VM.State.heap ~addr:o ~off:2 (VM.Value.of_int i);
      VM.Heap.set vm.VM.State.heap ~addr:o ~off:3 (VM.Value.of_int (2 * i));
      VM.Heap.set vm.VM.State.heap ~addr:o ~off:4 (VM.Value.of_int (3 * i));
      (* re-read the array address: allocation never collects here because
         the heap is sized for the experiment, but stay defensive *)
      let arr = VM.Value.to_ref (VM.State.jtoc_get vm slot) in
      VM.Heap.set vm.VM.State.heap ~addr:arr
        ~off:(VM.Heap.array_header_words + i)
        (VM.Value.of_ref o)
    done
  in
  fill change_cls (slot_of "cs") n_change;
  fill nochange_cls (slot_of "ns") n_nochange

type cell = { gc_ms : float; transform_ms : float; total_ms : float }

let run_cell ~objects ~fraction : cell =
  let n_change = objects * fraction / 100 in
  let n_nochange = objects - n_change in
  (* ~8 words per object + holder arrays + headroom for the update's
     temporary duplicates *)
  let heap_words = max (1 lsl 16) (objects * 20) in
  let config = { VM.State.default_config with VM.State.heap_words } in
  let old_program = Jv_lang.Compile.compile_program v1_src in
  let new_program = Jv_lang.Compile.compile_program v2_src in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:2;
  populate vm ~n_change ~n_nochange;
  (* warm both semi-spaces (a throwaway collection touches every page) and
     quiesce the host-language GC so neither pollutes the measured pause *)
  ignore (VM.Vm.gc vm);
  Stdlib.Gc.compact ();
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program ~new_program ()
  in
  let h = J.Jvolve.update_now ~max_rounds:50 vm spec in
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      assert (t.J.Updater.u_transformed_objects = n_change);
      {
        gc_ms = t.J.Updater.u_gc_ms;
        transform_ms = t.J.Updater.u_transform_ms;
        total_ms = t.J.Updater.u_total_ms;
      }
  | o -> failwith ("table1 update failed: " ^ J.Jvolve.outcome_to_string o)

(* object counts follow the paper; "heap size" is the label the paper gave
   each count *)
let full_rows =
  [
    (280_000, "160 MB"); (770_000, "320 MB"); (1_760_000, "640 MB");
    (3_670_000, "1280 MB");
  ]

let quick_rows = [ (30_000, "~17 MB"); (120_000, "~70 MB") ]

let fractions = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

(* --- con-freeness: restricted-set size and time-to-safe-point ----------- *)

(* The paper's §5.1.3 update (miniweb 5.1.2 -> 5.1.3) body-updates the
   always-on-stack run() loops: without the con-freeness analysis the
   safe point is unreachable and the attempt times out.  Run the same
   update with the analysis on and off and read every figure back from
   the VM's metrics sink — the restricted-set gauge, the safe-point
   rounds histogram, the analysis-time histogram — not from bench-local
   timers. *)
let confree_row ~confree =
  let module A = Jv_apps in
  let config =
    { A.Experience.default_config with VM.State.confree }
  in
  let d = A.Experience.web_desc in
  let vm = A.Experience.boot_version ~config d ~version:"5.1.2" in
  let loads = A.Experience.attach_loads vm d ~concurrency:4 in
  VM.Vm.run vm ~rounds:60;
  let compile v =
    Jv_lang.Compile.compile_program
      (A.Patching.source d.A.Experience.d_versioned ~version:v)
  in
  let spec =
    A.Common.spec
      ~overrides:(d.A.Experience.d_overrides ~to_version:"5.1.3")
      ~version_tag:(A.Common.version_tag "5.1.2")
      ~old_program:(compile "5.1.2") ~new_program:(compile "5.1.3") ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds:150 vm spec in
  VM.Vm.run vm ~rounds:40;
  List.iter (fun w -> A.Workload.detach vm w) loads;
  let obs = VM.Vm.obs vm in
  let restricted = int_of_float (Obs.gauge_value obs "core.restricted_set.size") in
  let proven = int_of_float (Obs.gauge_value obs "core.confree.proven") in
  let analyze_ms =
    match Obs.find_histogram obs "core.confree.analyze_ms" with
    | Some hg when Metrics.count hg > 0 -> Printf.sprintf "%.2f" (Metrics.mean hg)
    | _ -> "-"
  in
  let to_safe =
    match Obs.find_histogram obs "core.safepoint.rounds" with
    | Some hg when Metrics.count hg > 0 ->
        Printf.sprintf "%.0f" (Metrics.mean hg)
    | _ -> "never"
  in
  let first_attempt =
    match h.J.Jvolve.h_outcome with
    | J.Jvolve.Applied _ when h.J.Jvolve.h_attempts = 1 -> "yes"
    | J.Jvolve.Applied _ -> Printf.sprintf "no (%d)" h.J.Jvolve.h_attempts
    | _ -> "no (timeout)"
  in
  Printf.printf "%-12s %12d %10d %12s %14s %15s   %s\n"
    (if confree then "on" else "off")
    restricted proven analyze_ms to_safe first_attempt
    (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome)

let confree_section () =
  Support.section
    "Con-freeness: restricted set and time-to-safe-point, miniweb 5.1.2 -> \
     5.1.3 (always-on-stack update)";
  Printf.printf "%-12s %12s %10s %12s %14s %15s   %s\n" "analysis"
    "restricted" "proven" "analyze_ms" "rounds_to_sp" "first_attempt"
    "outcome";
  confree_row ~confree:true;
  confree_row ~confree:false

let run () =
  Support.section
    "Table 1: Jvolve update pause time (ms) vs heap size and fraction of \
     updated objects";
  let rows = if Support.quick then quick_rows else full_rows in
  let data =
    List.map
      (fun (objects, label) ->
        let cells =
          List.map (fun f -> (f, run_cell ~objects ~fraction:f)) fractions
        in
        (objects, label, cells))
      rows
  in
  let print_group title get =
    Printf.printf "\n%s\n" title;
    Printf.printf "%10s %9s |" "# objects" "heap";
    List.iter (fun f -> Printf.printf " %7d%%" f) fractions;
    print_newline ();
    List.iter
      (fun (objects, label, cells) ->
        Printf.printf "%10d %9s |" objects label;
        List.iter (fun (_, c) -> Printf.printf " %8.1f" (get c)) cells;
        print_newline ())
      data
  in
  print_group "Garbage collection time (ms)" (fun c -> c.gc_ms);
  print_group "Running transformation functions (ms)" (fun c ->
      c.transform_ms);
  print_group "Total DSU pause time (ms)" (fun c -> c.total_ms);
  (* Figure 6: the largest heap as three series *)
  let objects, label, cells = List.nth data (List.length data - 1) in
  Support.section
    (Printf.sprintf
       "Figure 6: pause times, %d objects (%s heap), vs fraction updated"
       objects label);
  Printf.printf "%9s %12s %12s %12s\n" "fraction" "gc_ms" "transform_ms"
    "total_ms";
  List.iter
    (fun (f, c) ->
      Printf.printf "%8d%% %12.1f %12.1f %12.1f\n" f c.gc_ms c.transform_ms
        c.total_ms)
    cells;
  (* the shape claims *)
  let c0 = List.assoc 0 cells and c100 = List.assoc 100 cells in
  Printf.printf
    "\nShape check: total(100%%)/total(0%%) = %.2fx (paper: ~4x); transformer \
     slope steeper than GC slope: %b\n"
    (c100.total_ms /. c0.total_ms)
    (c100.transform_ms -. c0.transform_ms
    > c100.gc_ms -. c0.gc_ms);
  confree_section ()
