(* Figure 5: miniweb (Jetty) throughput and latency under saturating load,
   in three configurations:

     1. "stock VM"   — miniweb 5.1.6 on the VM with the DSU machinery
                       never engaged (the Jikes RVM baseline);
     2. "Jvolve"     — miniweb 5.1.6 on the same VM, DSU available
                       (in Jvolve the two differ only by VM build; here
                       they are the same code path, which *is* the point:
                       DSU support costs nothing until used);
     3. "Jvolve upd" — miniweb dynamically updated 5.1.5 -> 5.1.6 before
                       the measurement window.

   The paper's claim is that all three are statistically identical
   (overlapping interquartile ranges).  We run N trials per configuration
   and report median and quartiles of throughput (MB/s of response bytes
   over wall time) and per-request latency (ms). *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics

let from_version = "5.1.5"
let to_version = "5.1.6"

(* Update-cost numbers are not timed here: every updated trial merges its
   VM's metrics into this aggregate sink, and the report below reads the
   [core.update.*] histograms the DSU machinery itself recorded. *)
let agg = Obs.create ()

type trial = { mbps : float; lat_ms : float }

let measure_window vm ~rounds : trial =
  Jv_simnet.Simnet.reset_stats vm.VM.State.net;
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:8 ()
  in
  let t0 = Support.now () in
  VM.Vm.run vm ~rounds;
  let wall = Support.now () -. t0 in
  let _, to_client = Jv_simnet.Simnet.stats vm.VM.State.net in
  let reqs = w.A.Workload.completed_requests in
  A.Workload.detach vm w;
  {
    mbps = float_of_int to_client /. 1.0e6 /. wall;
    lat_ms =
      (if reqs = 0 then 0.0
       else
         A.Workload.mean_latency_rounds w
         *. (wall *. 1000.0 /. float_of_int rounds));
  }

let trial_stock ~rounds () =
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:to_version in
  measure_window vm ~rounds

let trial_updated ~rounds () =
  let vm =
    A.Experience.boot_version A.Experience.web_desc ~version:from_version
  in
  (* run under a warmup load, apply the dynamic update, then measure *)
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:8 ()
  in
  VM.Vm.run vm ~rounds:50;
  let spec =
    J.Spec.make ~version_tag:"515"
      ~old_program:(Support.compile_version A.Miniweb.app ~version:from_version)
      ~new_program:(Support.compile_version A.Miniweb.app ~version:to_version)
      ()
  in
  let h = J.Jvolve.update_now vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ -> ()
  | o -> failwith ("fig5: update failed: " ^ J.Jvolve.outcome_to_string o));
  Obs.merge_metrics ~into:agg (VM.Vm.obs vm);
  A.Workload.detach vm w;
  (* short settling period for recompilation, as after any update *)
  VM.Vm.run vm ~rounds:50;
  measure_window vm ~rounds

(* Update pause / stack-scan costs, sourced from the jv_obs histograms the
   DSU machinery recorded during the updated trials (no bench-local
   timing).  An empty pause histogram means the instrumentation came
   unwired — fail loudly rather than print a hollow table. *)
let update_cost_report () =
  Support.section "Update cost (from jv_obs histograms, all updated trials)";
  let hist name =
    match Obs.find_histogram agg name with
    | Some h when Metrics.count h > 0 -> h
    | _ -> failwith ("fig5: no observations recorded in " ^ name)
  in
  ignore (hist "core.update.pause_ms");
  Printf.printf "%-28s | %5s | %9s %9s %9s %9s\n" "histogram" "n" "mean"
    "p50" "p90" "max";
  List.iter
    (fun name ->
      let h = hist name in
      Printf.printf "%-28s | %5d | %9.3f %9.3f %9.3f %9.3f\n" name
        (Metrics.count h) (Metrics.mean h)
        (Metrics.quantile h 0.5)
        (Metrics.quantile h 0.9)
        (Metrics.hist_max h))
    [
      "core.update.pause_ms";
      "core.update.stack_scan_ms";
      "core.update.load_ms";
      "core.update.gc_ms";
      "core.update.transform_ms";
    ];
  (* machine-readable snapshot: `make bench-smoke` greps this for
     core_update_pause_ms_count *)
  Printf.printf "\nmetrics snapshot (core.update.*):\n";
  String.split_on_char '\n' (Jv_obs.Export.prometheus agg)
  |> List.iter (fun line ->
         let has_prefix p =
           String.length line >= String.length p
           && String.sub line 0 (String.length p) = p
         in
         if has_prefix "core_update_" || has_prefix "# TYPE core_update_"
         then print_endline line)

let run () =
  Support.section
    "Figure 5: miniweb throughput and latency (median [q1, q3])";
  let trials = if Support.quick then 5 else 21 in
  let rounds = if Support.quick then 300 else 800 in
  let configs =
    [
      ("stock VM   (5.1.6)", fun () -> trial_stock ~rounds ());
      ("Jvolve     (5.1.6)", fun () -> trial_stock ~rounds ());
      ("Jvolve upd (5.1.5->5.1.6)", fun () -> trial_updated ~rounds ());
    ]
  in
  Printf.printf "%-28s | %-28s | %-28s\n" "configuration"
    "throughput (MB/s)" "latency (ms/request)";
  List.iter
    (fun (name, f) ->
      let ts = List.init trials (fun _ -> f ()) in
      let q1t, mt, q3t = Support.quartiles (List.map (fun t -> t.mbps) ts) in
      let q1l, ml, q3l = Support.quartiles (List.map (fun t -> t.lat_ms) ts) in
      Printf.printf "%-28s | %8.3f [%8.3f, %8.3f] | %8.4f [%8.4f, %8.4f]\n"
        name mt q1t q3t ml q1l q3l)
    configs;
  Printf.printf
    "\nShape check (paper): the three configurations' interquartile ranges \
     largely overlap;\nthe dynamically-updated server matches a \
     freshly-started one.\n";
  update_cost_report ()
