# Convenience targets; everything is plain dune underneath.

.PHONY: all check test bench bench-smoke clean

all:
	dune build @all

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# A fast end-to-end probe: boot a tiny fleet, roll an update across it.
bench-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe fleet

clean:
	dune clean
