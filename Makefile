# Convenience targets; everything is plain dune underneath.

.PHONY: all check test bench bench-smoke chaos-smoke safety-smoke guard-smoke gossip-smoke store-smoke lazy-smoke confree-smoke heal-smoke clean

all:
	dune build @all

check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

# A fast end-to-end probe: boot a tiny fleet, roll an update across it,
# then check that fig5 publishes a non-empty update-cost metrics snapshot
# (the jv_obs instrumentation is wired end to end).
bench-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe fleet
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe fig5 \
	  | grep -q "core_update_pause_ms_count"

# Fixed-seed chaos probe: inject a fault into every update phase and a
# 20% fault rate into a rolling rollout, then check that every abort
# rolled back (zero half-installed class tables) and the fleet converged.
# Runs with the heap verifier on, so a rollback that corrupted the heap
# would show up as a dirty abort.
chaos-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe chaos | tee _build/chaos-smoke.out
	grep -q "half-installed tables:   0" _build/chaos-smoke.out
	grep -q "rate  20%: converged" _build/chaos-smoke.out

# Safety probe: looping / throwing / heap-corrupting transformers on all
# three apps must abort with a clean, re-verified rollback while the VM
# keeps serving.
safety-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe safety | tee _build/safety-smoke.out
	grep -q "gauntlet: 9/9 contained" _build/safety-smoke.out
	grep -q "0 dirty rollbacks" _build/safety-smoke.out
	grep -q "spurious failures: 0" _build/safety-smoke.out
	grep -q "window closed clean, retained log freed" _build/safety-smoke.out

# Guard-window probe: a forced revert replays the retained log, an open
# window costs <= 2% of steady-state throughput, and the semantically-bad
# miniweb 5.1.11 release is auto-reverted by the error-budget watchdog
# with zero dropped connections.
guard-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe guard | tee _build/guard-smoke.out
	grep -q "auto-reverted: guard tripped on app-errors" _build/guard-smoke.out
	grep -q "dropped connections: 0" _build/guard-smoke.out
	grep -q "guard overhead" _build/guard-smoke.out

# Decentralized-rollout probe: a 64-instance gossip rollout (no
# orchestrator) under a 10% control-plane drop plan must reach one
# epoch by local quorum reads alone, and the open-loop load it runs
# under must see zero dropped connections; the bad-update scenario must
# fence by trip-vote quorum and converge back to epoch 0.
gossip-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe -- fleet --gossip \
	  | tee _build/gossip-smoke.out
	grep -q "CONVERGED in" _build/gossip-smoke.out
	! grep -q "NOT CONVERGED" _build/gossip-smoke.out
	! grep -q "SLO FAIL" _build/gossip-smoke.out
	! grep -q "DID NOT FENCE" _build/gossip-smoke.out
	grep -q "central decisions:.*0 (all" _build/gossip-smoke.out
	grep -q "tripped and converged back to epoch 0" _build/gossip-smoke.out

# Stateful-workload probe: ministore's schema-migration ladder (field
# split, index re-key, value re-encoding) walks end to end on a loaded
# VM with the heap verifier green after every rung, a tripped guard
# window reverts a committed migration by inverse transformers, and a
# 16-instance gossip rollout of a migration converges with every
# instance heap green and zero dropped connections.
store-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe store | tee _build/store-smoke.out
	grep -q "1.0->1.1" _build/store-smoke.out
	grep -q "1.2->1.3" _build/store-smoke.out
	! grep -q "DIRTY" _build/store-smoke.out
	! grep -q "did not apply" _build/store-smoke.out
	! grep -q "expected a revert" _build/store-smoke.out
	grep -q "CONVERGED in" _build/store-smoke.out
	grep -q "16 of 16 instances green" _build/store-smoke.out
	grep -q "0 dropped in flight" _build/store-smoke.out

# Lazy-update probe: under config.lazy_update the commit pause must not
# scale with the heap — the 1M-record ministore migration must commit
# within 2x the 10k-record pause (records migrate on first access and by
# the background sweeper instead of inside the pause).
lazy-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe -- store --lazy | tee _build/lazy-smoke.out
	grep -q "lazy pause flat: PASS" _build/lazy-smoke.out
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe -- guard --lazy | tee _build/lazy-guard-smoke.out
	grep -q "lazy pause flat: PASS" _build/lazy-guard-smoke.out

# Con-freeness probe: the §5.1.3 always-on-stack update (miniweb
# 5.1.2 -> 5.1.3 body-updates every run() loop) must apply on the
# first attempt with the static backward-compatibility analysis on,
# and must time out with it off — and the analysis must shrink the
# restricted set (6 changed methods, 5 proven, 1 left restricted).
confree-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe confree | tee _build/confree-smoke.out
	grep -Eq "^on +1 +5 " _build/confree-smoke.out
	grep -E "^on " _build/confree-smoke.out | grep -q " yes "
	grep -E "^off " _build/confree-smoke.out | grep -q "no (timeout)"
	grep -Eq "^off +6 " _build/confree-smoke.out

# Self-healing probe: a seeded kill plan takes instances down
# mid-rollout and the supervisor must restart, restore, catch up and
# readmit every corpse — full strength on one version with zero
# residual errors, a restarted ministore serving its pre-crash records
# bit-for-bit at the current schema, and the whole recovery transcript
# byte-identical across two runs of the same (plan, seed).
heal-smoke:
	JVOLVE_BENCH_QUICK=1 dune exec bench/main.exe -- fleet --heal \
	  | tee _build/heal-smoke.out
	grep -q "full strength:" _build/heal-smoke.out
	grep -q "residual errors:.*PASS" _build/heal-smoke.out
	grep -q "pre-crash records served bit-for-bit after recovery" _build/heal-smoke.out
	grep -q "byte-identical across runs" _build/heal-smoke.out
	! grep -q "FAIL" _build/heal-smoke.out

clean:
	dune clean
