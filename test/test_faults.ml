(* Deterministic chaos suite (lib/faults + the transactional updater).

   For each benchmark app: inject a fault into every update phase (load,
   GC, transform) and check that the abort is typed with the right
   phase, the transaction rolled back with a passing metadata audit, the
   VM keeps serving the old version without protocol errors, and a full
   collection afterwards finds a stable heap.  Then, faults disarmed,
   the same update applies cleanly.

   Plus: a kill fault takes the VM down only after the rollback; the
   plan parser round-trips; and a body-only update chain applied via
   Jvolve, hotswap and lazy indirection yields the same app-visible
   responses when no fault fires. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module B = Jv_baseline
module Faults = Jv_faults.Faults

let compile = Jv_lang.Compile.compile_program

(* --- seeded per-phase aborts on the benchmark apps --------------------- *)

let boot_loaded (d : A.Experience.app_desc) ~version =
  let vm = A.Experience.boot_version d ~version in
  let loads = A.Experience.attach_loads vm d ~concurrency:3 in
  VM.Vm.run vm ~rounds:60;
  (vm, loads)

let spec_of (d : A.Experience.app_desc) ~from_v ~to_v ~tag =
  A.Common.spec
    ~overrides:(d.A.Experience.d_overrides ~to_version:to_v)
    ~version_tag:tag
    ~old_program:
      (compile (A.Patching.source d.A.Experience.d_versioned ~version:from_v))
    ~new_program:
      (compile (A.Patching.source d.A.Experience.d_versioned ~version:to_v))
    ()

let live_count vm = (VM.Gc.collect vm).VM.Gc.copied_objects

let phases =
  [
    ("updater.load", J.Updater.P_load);
    ("updater.gc", J.Updater.P_gc);
    ("updater.transform", J.Updater.P_transform);
  ]

let chaos_app (d : A.Experience.app_desc) ~from_v ~to_v () =
  let vm, loads = boot_loaded d ~version:from_v in
  List.iteri
    (fun k (point, want_phase) ->
      let plan = Faults.create ~seed:(7 + k) () in
      Faults.arm plan ~point ~max_fires:1 Faults.Raise;
      VM.Vm.set_faults vm (Some plan);
      let spec = spec_of d ~from_v ~to_v ~tag:(Printf.sprintf "f%d" k) in
      let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
      (match h.J.Jvolve.h_outcome with
      | J.Jvolve.Aborted a ->
          Alcotest.(check string)
            (point ^ ": abort phase")
            (J.Updater.phase_to_string want_phase)
            (J.Updater.phase_to_string a.J.Updater.a_phase);
          Alcotest.(check bool)
            (point ^ ": rolled back, audit passed")
            true a.J.Updater.a_rolled_back
      | o ->
          Alcotest.failf "%s %s: expected injected abort, got %s"
            d.A.Experience.d_name point
            (J.Jvolve.outcome_to_string o));
      Alcotest.(check int) (point ^ ": fired once") 1 (Faults.fired plan);
      (* the VM still answers requests on the old version *)
      let before = A.Experience.total_requests loads in
      VM.Vm.run vm ~rounds:150;
      if A.Experience.total_requests loads <= before then
        Alcotest.failf "%s %s: server stopped serving after abort"
          d.A.Experience.d_name point;
      Alcotest.(check int)
        (point ^ ": no protocol errors")
        0
        (A.Experience.total_errors loads);
      (* heap intact: two back-to-back full collections agree on the
         number of live objects *)
      let n1 = live_count vm in
      let n2 = live_count vm in
      Alcotest.(check int) (point ^ ": stable live count") n1 n2;
      Alcotest.(check int)
        (point ^ ": no traps")
        0
        (List.length (VM.Vm.stats vm).VM.Vm.traps))
    phases;
  (* faults disarmed: the very update that kept aborting applies *)
  VM.Vm.set_faults vm None;
  let spec =
    spec_of d ~from_v ~to_v
      ~tag:(String.concat "" (String.split_on_char '.' from_v))
  in
  let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ -> ()
  | o ->
      Alcotest.failf "%s: clean update should apply, got %s"
        d.A.Experience.d_name
        (J.Jvolve.outcome_to_string o));
  let before = A.Experience.total_requests loads in
  VM.Vm.run vm ~rounds:150;
  if A.Experience.total_requests loads <= before then
    Alcotest.failf "%s: server stopped serving after the applied update"
      d.A.Experience.d_name;
  Alcotest.(check int)
    "no protocol errors after applied update" 0
    (A.Experience.total_errors loads);
  List.iter (fun w -> A.Workload.detach vm w) loads

let web_chaos () =
  chaos_app A.Experience.web_desc ~from_v:"5.1.1" ~to_v:"5.1.2" ()

let mail_chaos () =
  chaos_app A.Experience.mail_desc ~from_v:"1.3.1" ~to_v:"1.3.2" ()

(* 1.07 -> 1.08 reworks RequestHandler.run, which is always on stack
   under load (the paper's restricted-method timeout, exercised in
   test_apps); chaos-test the field-adding 1.06 -> 1.07 instead so every
   injection reaches its phase. *)
let ftp_chaos () =
  chaos_app A.Experience.ftp_desc ~from_v:"1.06" ~to_v:"1.07" ()

(* --- kill: rollback first, then the VM dies ---------------------------- *)

let kill_takes_vm_down () =
  let d = A.Experience.web_desc in
  let vm, loads = boot_loaded d ~version:"5.1.1" in
  let plan = Faults.create ~seed:3 () in
  Faults.arm plan ~point:"updater.gc" ~max_fires:1 Faults.Kill;
  VM.Vm.set_faults vm (Some plan);
  let spec = spec_of d ~from_v:"5.1.1" ~to_v:"5.1.2" ~tag:"k1" in
  let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      Alcotest.(check bool)
        "abort mentions the kill" true
        (Helpers.contains a.J.Updater.a_reason "killed");
      Alcotest.(check bool)
        "rolled back before dying" true a.J.Updater.a_rolled_back
  | o ->
      Alcotest.failf "kill should abort the update, got %s"
        (J.Jvolve.outcome_to_string o));
  Alcotest.(check (option string))
    "VM marked killed"
    (Some "updater.gc")
    (VM.Vm.killed vm);
  (* a killed VM makes no progress: the scheduler refuses to run it *)
  let t0 = (VM.Vm.stats vm).VM.Vm.instr_count in
  VM.Vm.run vm ~rounds:50;
  Alcotest.(check int)
    "no instructions after the kill" t0
    (VM.Vm.stats vm).VM.Vm.instr_count;
  List.iter (fun w -> A.Workload.detach vm w) loads

(* --- plan parser ------------------------------------------------------- *)

let parse_roundtrip () =
  let plan_s =
    "updater.transform=raise@0.2,updater.gc=killx1,net.link=delay:3@0.1x5,\
     net.connect=drop"
  in
  match Faults.parse ~seed:99 plan_s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check int) "seed kept" 99 (Faults.seed p);
      Alcotest.(check string) "round-trips" plan_s (Faults.to_string p);
      (match Faults.parse "updater.gc=explode" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad action should not parse");
      (match Faults.parse "nonsense" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "rule without '=' should not parse")

(* deterministic: the same (plan, seed) fires at the same consultations *)
let schedule_is_deterministic () =
  let schedule seed =
    let p = Faults.create ~seed () in
    Faults.arm p ~point:"x" ~rate:0.3 Faults.Raise;
    List.init 200 (fun _ ->
        match Faults.check (Some p) "x" with Some _ -> '1' | None -> '0')
  in
  Alcotest.(check bool)
    "same seed, same schedule" true
    (schedule 5 = schedule 5);
  Alcotest.(check bool)
    "different seed, different schedule" true
    (schedule 5 <> schedule 6)

(* --- differential: Jvolve vs hotswap vs indirection -------------------- *)

(* A body-only update chain: every mechanism supports it, and with no
   fault armed the app-visible responses must agree.  The updates land at
   deterministic scheduler rounds; Jvolve applies at the END of a round
   (all threads parked at safe points), so the synchronous baselines are
   applied after one extra round to align the switch point. *)

let speaker v =
  Printf.sprintf
    {|
class Speaker { String say(int i) { return "" + i + ":%s"; } }
class Main {
  static void main() {
    Speaker s = new Speaker();
    for (int i = 0; i < 30; i = i + 1) {
      Sys.println(s.say(i));
      Thread.yieldNow();
    }
  }
}
|}
    v

let chain = [ ("v1", "v2", 10); ("v2", "v3", 20) ]

let diff_spec ~from_v ~to_v ~tag =
  J.Spec.make ~version_tag:tag ~old_program:(compile (speaker from_v))
    ~new_program:(compile (speaker to_v))
    ()

let boot_speaker ?(config = Helpers.test_config) () =
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (compile (speaker "v1"));
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  vm

let run_jvolve () =
  let vm = boot_speaker () in
  let at = ref 0 in
  List.iter
    (fun (from_v, to_v, round) ->
      VM.Vm.run vm ~rounds:(round - !at);
      at := round;
      let h =
        J.Jvolve.update_now ~timeout_rounds:50
          vm (diff_spec ~from_v ~to_v ~tag:to_v)
      in
      incr at;
      (* update_now drove one round before the end-of-round apply *)
      match h.J.Jvolve.h_outcome with
      | J.Jvolve.Applied _ -> ()
      | o ->
          Alcotest.failf "jvolve %s->%s: %s" from_v to_v
            (J.Jvolve.outcome_to_string o))
    chain;
  ignore (VM.Vm.run_to_quiescence vm);
  VM.Vm.output vm

let run_hotswap () =
  let vm = boot_speaker () in
  let at = ref 0 in
  List.iter
    (fun (from_v, to_v, round) ->
      VM.Vm.run vm ~rounds:(round + 1 - !at);
      at := round + 1;
      match B.Hotswap.apply vm (diff_spec ~from_v ~to_v ~tag:to_v) with
      | B.Hotswap.Applied _ -> ()
      | B.Hotswap.Unsupported e ->
          Alcotest.failf "hotswap %s->%s unsupported: %s" from_v to_v e)
    chain;
  ignore (VM.Vm.run_to_quiescence vm);
  VM.Vm.output vm

let run_indirection () =
  let config =
    { Helpers.test_config with VM.State.indirection_mode = true }
  in
  let vm = boot_speaker ~config () in
  let at = ref 0 in
  List.iter
    (fun (from_v, to_v, round) ->
      VM.Vm.run vm ~rounds:(round + 1 - !at);
      at := round + 1;
      match
        B.Indirection.apply vm
          (J.Transformers.prepare (diff_spec ~from_v ~to_v ~tag:to_v))
      with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "indirection %s->%s: %s" from_v to_v e)
    chain;
  ignore (VM.Vm.run_to_quiescence vm);
  VM.Vm.output vm

let lines s = String.split_on_char '\n' (String.trim s)

(* every mechanism prints 0..29 in order, with version markers moving
   monotonically v1 -> v2 -> v3 along the chain *)
let check_shape name out =
  let ls = lines out in
  Alcotest.(check int) (name ^ ": 30 responses") 30 (List.length ls);
  List.iteri
    (fun i l ->
      match String.index_opt l ':' with
      | None -> Alcotest.failf "%s: malformed line %S" name l
      | Some c ->
          Alcotest.(check string)
            (name ^ ": request order")
            (string_of_int i)
            (String.sub l 0 c))
    ls;
  let rank v =
    match v with
    | "v1" -> 1
    | "v2" -> 2
    | "v3" -> 3
    | _ -> Alcotest.failf "%s: unknown version %S" name v
  in
  ignore
    (List.fold_left
       (fun prev l ->
         let c = String.index l ':' in
         let r = rank (String.sub l (c + 1) (String.length l - c - 1)) in
         if r < prev then
           Alcotest.failf "%s: version went backwards at %S" name l;
         r)
       1 ls)

let differential_no_fault () =
  let j = run_jvolve () in
  let h = run_hotswap () in
  let i = run_indirection () in
  check_shape "jvolve" j;
  check_shape "hotswap" h;
  check_shape "indirection" i;
  (* jvolve and hotswap run identical VM configurations: byte-identical *)
  Alcotest.(check string) "jvolve = hotswap responses" j h;
  (* indirection pays per-dereference checks but must answer the same *)
  Alcotest.(check string) "jvolve = indirection responses" j i

let suite =
  [
    Alcotest.test_case "miniweb: per-phase aborts roll back" `Quick web_chaos;
    Alcotest.test_case "minimail: per-phase aborts roll back" `Quick
      mail_chaos;
    Alcotest.test_case "miniftp: per-phase aborts roll back" `Quick ftp_chaos;
    Alcotest.test_case "kill: rollback, then the VM is down" `Quick
      kill_takes_vm_down;
    Alcotest.test_case "plan parser round-trips" `Quick parse_roundtrip;
    Alcotest.test_case "schedules are seed-deterministic" `Quick
      schedule_is_deterministic;
    Alcotest.test_case "differential: jvolve = hotswap = indirection" `Quick
      differential_no_fault;
  ]
