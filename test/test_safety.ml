(* The update-safety pipeline (admission control, the transformer
   sandbox, the heap integrity verifier).

   - admission: a field silently changing type is a Warn (admitted by
     default, rejected under --admit-strict before the VM ever pauses);
     a transformer bundle missing its entry points is a hard Reject;
   - sandbox: a looping transformer aborts at the fuel budget, a stray
     write outside the transformed object set and a throwing transformer
     both trap — every abort is typed with the transformer site, rolls
     back cleanly and re-verifies;
   - verifier: a deliberately corrupted reference field is caught by a
     standalone walk, sinks an otherwise-benign update in P_verify, and
     (since the corruption predates the update) fails the post-rollback
     verify too, marking the abort unreliable;
   - fleet: that unreliable abort quarantines the corrupted instance in
     a 4-VM rolling rollout while the healthy survivors update. *)

module VM = Jv_vm
module J = Jvolve_core
module F = Jv_fleet
module CF = Jv_classfile

let compile = Jv_lang.Compile.compile_program

(* --- heap spelunking helpers ------------------------------------------- *)

(* Linear walk (the verifier's pass-1 traversal) to find an instance of
   [cls_name]; tests corrupt its fields in place. *)
let find_instance vm cls_name =
  let reg = vm.VM.State.reg in
  let heap = vm.VM.State.heap in
  let target =
    match VM.Rt.find_class reg cls_name with
    | Some c -> c.VM.Rt.cid
    | None -> Alcotest.failf "class %s not loaded" cls_name
  in
  let rec go addr =
    if addr >= heap.VM.Heap.free then
      Alcotest.failf "no live instance of %s" cls_name
    else
      let cid = VM.Heap.class_id heap addr in
      let cls = reg.VM.Rt.classes.(cid) in
      let size =
        if cls.VM.Rt.is_array then
          VM.Heap.array_header_words + VM.Heap.array_length heap addr
        else cls.VM.Rt.size_words
      in
      if cid = target then addr else go (addr + size)
  in
  go 1

let field_off vm cls_name fname =
  match VM.Rt.find_class vm.VM.State.reg cls_name with
  | None -> Alcotest.failf "class %s not loaded" cls_name
  | Some c -> (
      match
        Array.find_opt
          (fun (fi : VM.Rt.field_info) -> String.equal fi.VM.Rt.fi_name fname)
          c.VM.Rt.instance_fields
      with
      | Some fi -> fi.VM.Rt.fi_offset
      | None -> Alcotest.failf "%s has no field %s" cls_name fname)

let live_count vm = (VM.Gc.collect vm).VM.Gc.copied_objects

(* --- admission control -------------------------------------------------- *)

let payload_v1 =
  {|
class Payload { int x; int y; }
class Keeper { static Payload it; }
class Main {
  static void main() {
    Keeper.it = new Payload();
    Keeper.it.x = 7;
    for (int i = 0; i < 400; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

(* same shape, but Payload.x silently changes type int -> String *)
let payload_retyped =
  {|
class Payload { String x; int y; }
class Keeper { static Payload it; }
class Main {
  static void main() {
    Keeper.it = new Payload();
    Keeper.it.x = "seven";
    for (int i = 0; i < 400; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

let boot_payload ?(config = Helpers.test_config) src =
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (compile src);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:5;
  vm

let retyped_field_warns () =
  let old_program = compile payload_v1 in
  let new_program = compile payload_retyped in
  let spec = J.Spec.make ~version_tag:"a1" ~old_program ~new_program () in
  let p = J.Transformers.prepare spec in
  let rep = J.Admission.review p in
  Alcotest.(check (list string))
    "no rejections by default" []
    (J.Admission.rejections ~strict:false rep);
  (match
     List.filter
       (fun v -> v.J.Admission.v_severity = J.Admission.Warn)
       rep.J.Admission.a_verdicts
   with
  | [ w ] ->
      Alcotest.(check string) "field-map check" "field-map" w.J.Admission.v_check;
      Alcotest.(check bool)
        "warn names the field" true
        (Helpers.contains w.J.Admission.v_detail "Payload.x")
  | ws ->
      Alcotest.failf "expected exactly the field-map warn, got %d warns"
        (List.length ws));
  (* strict mode: the warn sinks the update before the VM pauses *)
  let vm = boot_payload payload_v1 in
  let h = J.Jvolve.request ~admit_strict:true vm p in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      Alcotest.(check string)
        "rejected at admission" "admit"
        (J.Updater.phase_to_string a.J.Updater.a_phase);
      Alcotest.(check bool)
        "nothing to roll back" true a.J.Updater.a_rolled_back;
      Alcotest.(check bool)
        "reason names the field" true
        (Helpers.contains a.J.Updater.a_reason "Payload.x");
      (match a.J.Updater.a_cause with
      | J.Updater.C_admission _ -> ()
      | c ->
          Alcotest.failf "expected C_admission, got %s"
            (J.Updater.cause_to_string c))
  | o ->
      Alcotest.failf "strict admission should abort, got %s"
        (J.Jvolve.outcome_to_string o));
  (* the VM never paused: the thread keeps running *)
  let t0 = (VM.Vm.stats vm).VM.Vm.instr_count in
  VM.Vm.run vm ~rounds:20;
  Alcotest.(check bool)
    "VM still running after rejection" true
    ((VM.Vm.stats vm).VM.Vm.instr_count > t0);
  (* without strict, the same prepared update is admitted *)
  let h2 = J.Jvolve.request vm p in
  Alcotest.(check bool) "admitted without strict" false (J.Jvolve.resolved h2)

let gutted_transformer_rejected () =
  let old_program = compile payload_v1 in
  let new_program = compile payload_retyped in
  let spec = J.Spec.make ~version_tag:"a2" ~old_program ~new_program () in
  let p = J.Transformers.prepare spec in
  (* strip the transformer bundle: admission must catch the missing
     jvolveClass/jvolveObject entry points even in non-strict mode *)
  let bad =
    {
      p with
      J.Transformers.p_transformer =
        { p.J.Transformers.p_transformer with CF.Cls.c_methods = [] };
    }
  in
  let rep = J.Admission.review bad in
  let rejected = J.Admission.rejections ~strict:false rep in
  Alcotest.(check bool) "rejected" true (rejected <> []);
  Alcotest.(check bool)
    "rejection names the missing entry point" true
    (Helpers.contains (String.concat "; " rejected) "jvolveObject");
  let vm = boot_payload payload_v1 in
  match (J.Jvolve.request vm bad).J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      Alcotest.(check string)
        "aborted at admission" "admit"
        (J.Updater.phase_to_string a.J.Updater.a_phase)
  | o ->
      Alcotest.failf "gutted transformer should be rejected, got %s"
        (J.Jvolve.outcome_to_string o)

(* --- the transformer sandbox -------------------------------------------- *)

let sandbox_v1 =
  {|
class Payload { int x; }
class Holder { int h; }
class Keeper { static Payload it; static Holder hold; }
class Main {
  static void main() {
    Keeper.it = new Payload();
    Keeper.it.x = 41;
    Keeper.hold = new Holder();
    for (int i = 0; i < 2000; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

(* v2 adds a field, so Payload has a layout update and its object
   transformer actually runs *)
let sandbox_v2 =
  {|
class Payload { int x; int y; }
class Holder { int h; }
class Keeper { static Payload it; static Holder hold; }
class Main {
  static void main() {
    Keeper.it = new Payload();
    Keeper.it.x = 41;
    Keeper.hold = new Holder();
    for (int i = 0; i < 2000; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

(* Run a v1 -> v2 update whose Payload object transformer has [body];
   return the typed abort plus the VM for post-mortem checks. *)
let bad_transformer ~tag ~body =
  let config =
    {
      Helpers.test_config with
      VM.State.transformer_fuel = 20_000;
      verify_heap = true;
    }
  in
  let vm = boot_payload ~config sandbox_v1 in
  VM.Vm.run vm ~rounds:10;
  let spec =
    J.Spec.make
      ~object_overrides:[ ("Payload", body) ]
      ~version_tag:tag
      ~old_program:(compile sandbox_v1)
      ~new_program:(compile sandbox_v2)
      ()
  in
  let before = live_count vm in
  let h = J.Jvolve.update_now ~timeout_rounds:200 vm spec in
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a -> (vm, before, a)
  | o ->
      Alcotest.failf "transformer %s should abort the update, got %s" tag
        (J.Jvolve.outcome_to_string o)

(* Shared post-mortem: clean rollback, intact heap, VM still running. *)
let check_contained what vm before (a : J.Updater.abort) =
  Alcotest.(check string)
    (what ^ ": aborted in transform") "transform"
    (J.Updater.phase_to_string a.J.Updater.a_phase);
  Alcotest.(check bool) (what ^ ": rolled back") true a.J.Updater.a_rolled_back;
  Alcotest.(check bool)
    (what ^ ": heap verifies after rollback")
    true
    (VM.Heapverify.run vm).VM.Heapverify.hv_ok;
  Alcotest.(check int) (what ^ ": live objects preserved") before (live_count vm);
  let payload = find_instance vm "Payload" in
  Alcotest.(check int)
    (what ^ ": field value preserved") 41
    (VM.Value.to_int
       (VM.Heap.get vm.VM.State.heap ~addr:payload
          ~off:(field_off vm "Payload" "x")));
  let t0 = (VM.Vm.stats vm).VM.Vm.instr_count in
  VM.Vm.run vm ~rounds:30;
  Alcotest.(check bool)
    (what ^ ": VM still running") true
    ((VM.Vm.stats vm).VM.Vm.instr_count > t0);
  Alcotest.(check int)
    (what ^ ": no thread traps") 0
    (List.length (VM.Vm.stats vm).VM.Vm.traps)

let looping_transformer_aborts_at_fuel () =
  let vm, before, a =
    bad_transformer ~tag:"s1"
      ~body:"    to.x = from.x;\n    while (true) { to.y = to.y + 1; }"
  in
  Alcotest.(check bool)
    "reason mentions fuel" true
    (Helpers.contains a.J.Updater.a_reason "fuel");
  (match a.J.Updater.a_cause with
  | J.Updater.C_fuel_exhausted (site, steps) ->
      Alcotest.(check string)
        "site names the class" "Payload" site.J.Updater.ts_class;
      Alcotest.(check bool)
        "site names an object" true (site.J.Updater.ts_object > 0);
      Alcotest.(check bool) "steps reached the budget" true (steps >= 20_000)
  | c ->
      Alcotest.failf "expected C_fuel_exhausted, got %s"
        (J.Updater.cause_to_string c));
  check_contained "fuel" vm before a

let stray_write_is_trapped () =
  (* Keeper.hold is live but not part of the update: writing it from the
     transformer violates the sandbox *)
  let vm, before, a =
    bad_transformer ~tag:"s2"
      ~body:"    to.x = from.x;\n    Keeper.hold.h = 5;"
  in
  Alcotest.(check bool)
    "reason mentions the sandbox" true
    (Helpers.contains a.J.Updater.a_reason "sandbox");
  (match a.J.Updater.a_cause with
  | J.Updater.C_sandbox_violation (site, _) ->
      Alcotest.(check string)
        "site names the class" "Payload" site.J.Updater.ts_class
  | c ->
      Alcotest.failf "expected C_sandbox_violation, got %s"
        (J.Updater.cause_to_string c));
  check_contained "stray write" vm before a;
  (* the victim object was never written *)
  let hold = find_instance vm "Holder" in
  Alcotest.(check int) "victim untouched" 0
    (VM.Value.to_int
       (VM.Heap.get vm.VM.State.heap ~addr:hold
          ~off:(field_off vm "Holder" "h")))

let throwing_transformer_aborts () =
  let vm, before, a =
    bad_transformer ~tag:"s3"
      ~body:"    Payload p = null;\n    to.x = p.x;"
  in
  (match a.J.Updater.a_cause with
  | J.Updater.C_transformer_trap (site, _) ->
      Alcotest.(check string)
        "site names the class" "Payload" site.J.Updater.ts_class;
      Alcotest.(check bool)
        "site carries the method" true
        (Helpers.contains site.J.Updater.ts_method "jvolveObject")
  | c ->
      Alcotest.failf "expected C_transformer_trap, got %s"
        (J.Updater.cause_to_string c));
  check_contained "trap" vm before a

(* --- the heap integrity verifier ----------------------------------------- *)

let boxes_v1 =
  {|
class Node { int v; }
class Other { int o; }
class Box { Node ref; }
class Keeper { static Box box; static Other oth; }
class Main {
  static void main() {
    Keeper.box = new Box();
    Keeper.box.ref = new Node();
    Keeper.oth = new Other();
    for (int i = 0; i < 2000; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

(* v2 grows Node so the update is a real layout update *)
let boxes_v2 =
  {|
class Node { int v; int w; }
class Other { int o; }
class Box { Node ref; }
class Keeper { static Box box; static Other oth; }
class Main {
  static void main() {
    Keeper.box = new Box();
    Keeper.box.ref = new Node();
    Keeper.oth = new Other();
    for (int i = 0; i < 2000; i = i + 1) { Thread.yieldNow(); }
  }
}
|}

let verifier_catches_corruption () =
  let config = { Helpers.test_config with VM.State.verify_heap = true } in
  let vm = boot_payload ~config boxes_v1 in
  VM.Vm.run vm ~rounds:10;
  Alcotest.(check bool)
    "healthy heap verifies" true (VM.Heapverify.run vm).VM.Heapverify.hv_ok;
  (* point Box.ref (declared Node) at an Other instance *)
  let box = find_instance vm "Box" in
  let off = field_off vm "Box" "ref" in
  let other = find_instance vm "Other" in
  VM.Heap.set vm.VM.State.heap ~addr:box ~off (VM.Value.of_ref other);
  let rep = VM.Heapverify.run vm in
  Alcotest.(check bool) "corruption detected" false rep.VM.Heapverify.hv_ok;
  (match rep.VM.Heapverify.hv_issues with
  | i :: _ ->
      Alcotest.(check bool)
        "issue names the field" true
        (Helpers.contains (VM.Heapverify.issue_to_string i) "ref")
  | [] -> Alcotest.fail "no issue reported");
  (* a benign update on the corrupted VM: the post-transform verify sinks
     it, and — the corruption predating the snapshot — the post-rollback
     verify fails too, so the abort is marked unreliable *)
  let spec =
    J.Spec.make ~version_tag:"v1"
      ~old_program:(compile boxes_v1)
      ~new_program:(compile boxes_v2)
      ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds:200 vm spec in
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      Alcotest.(check string)
        "aborted in verify" "verify"
        (J.Updater.phase_to_string a.J.Updater.a_phase);
      (match a.J.Updater.a_cause with
      | J.Updater.C_heap_verify (msg :: _) ->
          Alcotest.(check bool)
            "cause carries the issue" true (Helpers.contains msg "ref")
      | c ->
          Alcotest.failf "expected C_heap_verify, got %s"
            (J.Updater.cause_to_string c));
      Alcotest.(check bool)
        "rollback marked unreliable" false a.J.Updater.a_rolled_back;
      Alcotest.(check bool)
        "reason mentions the post-rollback verify" true
        (Helpers.contains a.J.Updater.a_reason "post-rollback")
  | o ->
      Alcotest.failf "update on a corrupted heap should abort, got %s"
        (J.Jvolve.outcome_to_string o)

(* --- quarantine in a fleet ----------------------------------------------- *)

let fleet_quarantines_corrupted_instance () =
  let fleet =
    F.Fleet.create
      ~config:{ F.Instance.default_config with Jv_vm.State.verify_heap = true }
      ~policy:F.Lb.Round_robin ~profile:F.Profile.miniweb ~version:"5.1.1"
      ~size:4 ()
  in
  F.Fleet.run fleet ~rounds:30;
  ignore (F.Fleet.attach_load ~concurrency:8 fleet);
  F.Fleet.run fleet ~rounds:100;
  (* corrupt instance 0: a worker's int-typed id field gets a reference
     word (a field miniweb never reads back, so only the verifier can
     tell) *)
  let i0 = List.hd (F.Fleet.instances fleet) in
  let vm0 = i0.F.Instance.i_vm in
  let worker = find_instance vm0 "PoolThread" in
  VM.Heap.set vm0.VM.State.heap ~addr:worker
    ~off:(field_off vm0 "PoolThread" "id")
    (VM.Value.of_ref worker);
  Alcotest.(check bool)
    "corruption visible to the verifier" false
    (VM.Heapverify.run vm0).VM.Heapverify.hv_ok;
  let params =
    {
      (F.Orchestrator.default_params
         (F.Orchestrator.Rolling { batch_size = 1 }))
      with
      F.Orchestrator.update_timeout = 250;
      max_retries = 2;
      backoff_base = 20;
      on_exhausted = `Quarantine;
    }
  in
  let r = F.Orchestrator.run ~params ~fleet ~to_version:"5.1.2" () in
  Alcotest.(check bool)
    "instance 0 quarantined" true
    (List.mem_assoc 0 r.F.Orchestrator.r_quarantined);
  Alcotest.(check (list int))
    "healthy instances updated" [ 1; 2; 3 ]
    (List.sort compare r.F.Orchestrator.r_updated);
  (match List.assoc_opt 0 r.F.Orchestrator.r_reports with
  | Some ar -> (
      match ar.J.Jvolve.ar_outcome with
      | J.Jvolve.Aborted a ->
          Alcotest.(check string)
            "instance 0 aborted in verify" "verify"
            (J.Updater.phase_to_string a.J.Updater.a_phase);
          Alcotest.(check bool)
            "instance 0's rollback is unreliable" false
            a.J.Updater.a_rolled_back
      | o ->
          Alcotest.failf "instance 0 should have aborted, got %s"
            (J.Jvolve.outcome_to_string o))
  | None -> Alcotest.fail "no attempt report for instance 0");
  List.iter
    (fun (i : F.Instance.t) ->
      if i.F.Instance.i_id = 0 then
        Alcotest.(check string)
          "instance 0 out of service" "out-of-service"
          (F.Instance.status_to_string i.F.Instance.i_status)
      else begin
        Alcotest.(check string)
          (Printf.sprintf "instance %d on 5.1.2" i.F.Instance.i_id)
          "5.1.2" i.F.Instance.i_version;
        Alcotest.(check string)
          (Printf.sprintf "instance %d in service" i.F.Instance.i_id)
          "in-service"
          (F.Instance.status_to_string i.F.Instance.i_status)
      end)
    (F.Fleet.instances fleet)

let suite =
  [
    Alcotest.test_case "admission: retyped field warns, strict rejects" `Quick
      retyped_field_warns;
    Alcotest.test_case "admission: gutted transformer bundle is rejected"
      `Quick gutted_transformer_rejected;
    Alcotest.test_case "sandbox: looping transformer aborts at fuel" `Quick
      looping_transformer_aborts_at_fuel;
    Alcotest.test_case "sandbox: stray write is trapped" `Quick
      stray_write_is_trapped;
    Alcotest.test_case "sandbox: throwing transformer aborts" `Quick
      throwing_transformer_aborts;
    Alcotest.test_case "verifier: corrupted ref field sinks the update"
      `Quick verifier_catches_corruption;
    Alcotest.test_case "fleet: unreliable rollback is quarantined" `Quick
      fleet_quarantines_corrupted_instance;
  ]
