(* Property-based tests (QCheck):

   - compiled arithmetic/boolean expressions agree with a reference
     evaluator (compiler + JIT + interpreter correctness);
   - dynamic updates with default transformers preserve exactly the
     same-name same-type fields, over randomized class shapes;
   - UPT classification matches randomly chosen edit kinds. *)

module VM = Jv_vm
module J = Jvolve_core

(* --- random integer expressions --------------------------------------------- *)

type iexpr =
  | I_const of int
  | I_var of int (* one of 3 variables *)
  | I_add of iexpr * iexpr
  | I_sub of iexpr * iexpr
  | I_mul of iexpr * iexpr
  | I_neg of iexpr

let rec gen_iexpr depth st =
  if depth = 0 then
    if QCheck.Gen.bool st then I_const (QCheck.Gen.int_range (-100) 100 st)
    else I_var (QCheck.Gen.int_range 0 2 st)
  else
    match QCheck.Gen.int_range 0 5 st with
    | 0 -> I_const (QCheck.Gen.int_range (-100) 100 st)
    | 1 -> I_var (QCheck.Gen.int_range 0 2 st)
    | 2 -> I_add (gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
    | 3 -> I_sub (gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
    | 4 -> I_mul (gen_iexpr (depth - 1) st, gen_iexpr (depth - 1) st)
    | _ -> I_neg (gen_iexpr (depth - 1) st)

let rec eval_iexpr env = function
  | I_const k -> k
  | I_var i -> env.(i)
  | I_add (a, b) -> eval_iexpr env a + eval_iexpr env b
  | I_sub (a, b) -> eval_iexpr env a - eval_iexpr env b
  | I_mul (a, b) -> eval_iexpr env a * eval_iexpr env b
  | I_neg a -> -eval_iexpr env a

let rec print_iexpr = function
  | I_const k -> if k < 0 then Printf.sprintf "(0 - %d)" (-k) else string_of_int k
  | I_var i -> Printf.sprintf "v%d" i
  | I_add (a, b) -> Printf.sprintf "(%s + %s)" (print_iexpr a) (print_iexpr b)
  | I_sub (a, b) -> Printf.sprintf "(%s - %s)" (print_iexpr a) (print_iexpr b)
  | I_mul (a, b) -> Printf.sprintf "(%s * %s)" (print_iexpr a) (print_iexpr b)
  | I_neg a -> Printf.sprintf "(-%s)" (print_iexpr a)

let arith_agrees =
  QCheck.Test.make ~name:"compiled arithmetic agrees with reference"
    ~count:40
    QCheck.(
      make
        Gen.(
          tup4 (gen_iexpr 4)
            (int_range (-50) 50)
            (int_range (-50) 50)
            (int_range (-50) 50)))
    (fun (e, v0, v1, v2) ->
      let env = [| v0; v1; v2 |] in
      let expected = eval_iexpr env e in
      let src =
        Printf.sprintf
          {|
class Main {
  static int f(int v0, int v1, int v2) { return %s; }
  static void main() { Sys.println("" + f(%d, %d, %d)); }
}
|}
          (print_iexpr e) v0 v1 v2
      in
      String.equal
        (Printf.sprintf "%d\n" expected)
        (Helpers.output_of src))

(* --- random boolean expressions ------------------------------------------------ *)

type bexpr =
  | B_cmp of string * iexpr * iexpr
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr
  | B_not of bexpr

let rec gen_bexpr depth st =
  if depth = 0 then
    B_cmp
      ( List.nth [ "<"; "<="; ">"; ">="; "=="; "!=" ] (QCheck.Gen.int_range 0 5 st),
        gen_iexpr 2 st,
        gen_iexpr 2 st )
  else
    match QCheck.Gen.int_range 0 3 st with
    | 0 ->
        B_cmp
          ( List.nth [ "<"; "<="; ">"; ">="; "=="; "!=" ]
              (QCheck.Gen.int_range 0 5 st),
            gen_iexpr 2 st,
            gen_iexpr 2 st )
    | 1 -> B_and (gen_bexpr (depth - 1) st, gen_bexpr (depth - 1) st)
    | 2 -> B_or (gen_bexpr (depth - 1) st, gen_bexpr (depth - 1) st)
    | _ -> B_not (gen_bexpr (depth - 1) st)

let rec eval_bexpr env = function
  | B_cmp (op, a, b) -> (
      let x = eval_iexpr env a and y = eval_iexpr env b in
      match op with
      | "<" -> x < y
      | "<=" -> x <= y
      | ">" -> x > y
      | ">=" -> x >= y
      | "==" -> x = y
      | _ -> x <> y)
  | B_and (a, b) -> eval_bexpr env a && eval_bexpr env b
  | B_or (a, b) -> eval_bexpr env a || eval_bexpr env b
  | B_not a -> not (eval_bexpr env a)

let rec print_bexpr = function
  | B_cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (print_iexpr a) op (print_iexpr b)
  | B_and (a, b) -> Printf.sprintf "(%s && %s)" (print_bexpr a) (print_bexpr b)
  | B_or (a, b) -> Printf.sprintf "(%s || %s)" (print_bexpr a) (print_bexpr b)
  | B_not a -> Printf.sprintf "(!%s)" (print_bexpr a)

let bool_agrees =
  QCheck.Test.make ~name:"compiled booleans agree with reference" ~count:40
    QCheck.(
      make Gen.(tup3 (gen_bexpr 3) (int_range (-20) 20) (int_range (-20) 20)))
    (fun (e, v0, v1) ->
      let env = [| v0; v1; 0 |] in
      let expected = if eval_bexpr env e then "T" else "F" in
      let src =
        Printf.sprintf
          {|
class Main {
  static void main() {
    int v0 = %d; int v1 = %d; int v2 = 0;
    if (%s) { Sys.println("T"); } else { Sys.println("F"); }
  }
}
|}
          v0 v1 (print_bexpr e)
      in
      String.equal (expected ^ "\n") (Helpers.output_of src))

(* --- randomized update preservation ---------------------------------------------- *)

(* Field universe: names f0..f5, each int or String.  v1 and v2 draw random
   subsets with random types; the default transformer must preserve
   exactly the same-name same-type intersection. *)

let field_names = [| "f0"; "f1"; "f2"; "f3"; "f4"; "f5" |]

type fspec = (int * bool) list (* (field index, is_int) *)

let gen_fspec : fspec QCheck.Gen.t =
  QCheck.Gen.(
    List.init 6 (fun i -> i) |> fun idxs st ->
    List.filter_map
      (fun i -> if bool st then Some (i, bool st) else None)
      idxs)

let class_src name (fs : fspec) =
  Printf.sprintf "class %s {\n%s}\n" name
    (String.concat ""
       (List.map
          (fun (i, is_int) ->
            Printf.sprintf "  %s %s;\n"
              (if is_int then "int" else "String")
              field_names.(i))
          fs))

let setter_src (fs : fspec) =
  String.concat ""
    (List.map
       (fun (i, is_int) ->
         if is_int then
           Printf.sprintf "    Keeper.it.%s = %d;\n" field_names.(i)
             (100 + i)
         else
           Printf.sprintf "    Keeper.it.%s = \"s%d\";\n" field_names.(i) i)
       fs)

let printer_src (fs : fspec) =
  let parts =
    List.map
      (fun (i, is_int) ->
        if is_int then
          Printf.sprintf "\" %s=\" + Keeper.it.%s" field_names.(i)
            field_names.(i)
        else
          Printf.sprintf "\" %s=\" + ns(Keeper.it.%s)" field_names.(i)
            field_names.(i))
      fs
  in
  match parts with [] -> "\"empty\"" | _ -> String.concat " + " parts

let program_src (fs : fspec) ~set =
  class_src "Payload" fs
  ^ Printf.sprintf
      {|
class Keeper { static Payload it; }
class Probe {
  static String ns(String s) { if (s == null) { return "-"; } return s; }
  static String describe() { return %s; }
  static void init() {
    Keeper.it = new Payload();
%s  }
}
class Main {
  static void main() {
    Probe.init();
    for (int i = 0; i < 40; i = i + 1) {
      Sys.println(Probe.describe());
      Thread.yieldNow();
    }
  }
}
|}
      (printer_src fs) (if set then setter_src fs else "")

let expected_line (v1 : fspec) (v2 : fspec) =
  (* after the update, v2's describe prints: common same-type fields keep
     v1's values, everything else is default *)
  let parts =
    List.map
      (fun (i, is_int) ->
        let preserved = List.mem (i, is_int) v1 in
        if is_int then
          Printf.sprintf " %s=%d" field_names.(i)
            (if preserved then 100 + i else 0)
        else
          Printf.sprintf " %s=%s" field_names.(i)
            (if preserved then Printf.sprintf "s%d" i else "-"))
      v2
  in
  match parts with [] -> "empty" | _ -> String.concat "" parts

let default_transformer_preserves =
  QCheck.Test.make
    ~name:"default transformer preserves same-name same-type fields"
    ~count:15
    QCheck.(make Gen.(tup2 gen_fspec gen_fspec))
    (fun (v1, v2) ->
      QCheck.assume (v1 <> v2);
      let old_src = program_src v1 ~set:true in
      let new_src = program_src v2 ~set:true in
      let old_program = Jv_lang.Compile.compile_program old_src in
      let new_program = Jv_lang.Compile.compile_program new_src in
      let vm = VM.Vm.create ~config:Helpers.test_config () in
      VM.Vm.boot vm old_program;
      ignore (VM.Vm.spawn_main vm ~main_class:"Main");
      VM.Vm.run vm ~rounds:5;
      let spec =
        J.Spec.make ~version_tag:"7" ~old_program ~new_program ()
      in
      let h = J.Jvolve.update_now vm spec in
      (match h.J.Jvolve.h_outcome with
      | J.Jvolve.Applied _ -> ()
      | o -> QCheck.Test.fail_reportf "update: %s" (J.Jvolve.outcome_to_string o));
      ignore (VM.Vm.run_to_quiescence ~max_rounds:100 vm);
      let out = VM.Vm.output vm in
      let want = expected_line v1 v2 ^ "\n" in
      if Helpers.contains out want then true
      else
        QCheck.Test.fail_reportf "expected %S in output %S (v1=%s v2=%s)"
          want out
          (String.concat ","
             (List.map (fun (i, b) -> Printf.sprintf "%d%c" i (if b then 'i' else 's')) v1))
          (String.concat ","
             (List.map (fun (i, b) -> Printf.sprintf "%d%c" i (if b then 'i' else 's')) v2)))

(* --- Spec.inverse round-trips ------------------------------------------------------ *)

(* The rollback of a rollback is the forward update again: programs are
   the same values, the recomputed diff matches, and the blacklist rides
   along unchanged.  (The version tag differs — it accumulates "rb"
   suffixes so renamed old classes never collide.) *)
let inverse_roundtrip =
  QCheck.Test.make ~name:"Spec.inverse round-trips" ~count:10
    QCheck.(make Gen.(tup2 gen_fspec gen_fspec))
    (fun (v1, v2) ->
      let old_program = Jv_lang.Compile.compile_program (program_src v1 ~set:true) in
      let new_program = Jv_lang.Compile.compile_program (program_src v2 ~set:true) in
      let blacklist =
        [
          {
            J.Diff.r_class = "Probe";
            r_name = "describe";
            r_sig = { Jv_classfile.Types.params = []; ret = Jv_classfile.Types.TVoid };
          };
        ]
      in
      let s = J.Spec.make ~blacklist ~version_tag:"9" ~old_program ~new_program () in
      let s' = J.Spec.inverse (J.Spec.inverse s) in
      s'.J.Spec.old_program == s.J.Spec.old_program
      && s'.J.Spec.new_program == s.J.Spec.new_program
      && s'.J.Spec.diff = s.J.Spec.diff
      && s'.J.Spec.blacklist = s.J.Spec.blacklist)

(* The inverse is not just a layout flip: tripping a guard window after a
   field-dropping update must restore the dropped fields' {e values} by
   replaying the retained update log (the forward transformer discarded
   them from the live object; only the log's old copies still hold them). *)
let inverse_restores_field_values =
  QCheck.Test.make
    ~name:"guard revert restores old-layout field values from the update log"
    ~count:10
    QCheck.(make Gen.(tup2 gen_fspec gen_fspec))
    (fun (v1, v2) ->
      QCheck.assume (v1 <> v2);
      let line1 = expected_line v1 v1 ^ "\n" in
      let line2 = expected_line v1 v2 ^ "\n" in
      QCheck.assume (line1 <> line2);
      let old_program =
        Jv_lang.Compile.compile_program (program_src v1 ~set:true)
      in
      let new_program =
        Jv_lang.Compile.compile_program (program_src v2 ~set:true)
      in
      let vm = VM.Vm.create ~config:Helpers.test_config () in
      VM.Vm.boot vm old_program;
      ignore (VM.Vm.spawn_main vm ~main_class:"Main");
      VM.Vm.run vm ~rounds:5;
      let spec = J.Spec.make ~version_tag:"8" ~old_program ~new_program () in
      let h = J.Jvolve.update_now ~guard:(J.Guard.config ()) vm spec in
      (match h.J.Jvolve.h_outcome with
      | J.Jvolve.Applied _ -> ()
      | o ->
          QCheck.Test.fail_reportf "update: %s" (J.Jvolve.outcome_to_string o));
      (* let the new version print a few lines, then trip the window *)
      VM.Vm.run vm ~rounds:6;
      let plan = Jv_faults.Faults.create ~seed:17 () in
      Jv_faults.Faults.arm plan ~point:"guard.trip" ~max_fires:1
        Jv_faults.Faults.Raise;
      VM.Vm.set_faults vm (Some plan);
      (match J.Jvolve.run_to_guard_close vm h with
      | J.Jvolve.Reverted _ -> ()
      | o ->
          QCheck.Test.fail_reportf "expected a revert, got %s"
            (J.Jvolve.outcome_to_string o));
      VM.Vm.set_faults vm None;
      ignore (VM.Vm.run_to_quiescence ~max_rounds:200 vm);
      let out = VM.Vm.output vm in
      (* the updated code demonstrably ran ... *)
      if not (Helpers.contains out line2) then
        QCheck.Test.fail_reportf "no post-update line %S in %S" line2 out;
      (* ... and after the revert the last line is the original one,
         dropped-field values included *)
      let last =
        match List.rev (String.split_on_char '\n' (String.trim out)) with
        | l :: _ -> l ^ "\n"
        | [] -> ""
      in
      if last <> line1 then
        QCheck.Test.fail_reportf
          "expected restored line %S at the end, got %S (full output %S)"
          line1 last out;
      true)

(* --- randomized UPT classification ------------------------------------------------- *)

type edit = E_add_field | E_del_field | E_chg_body | E_add_method

let edit_gen = QCheck.Gen.oneofl [ E_add_field; E_del_field; E_chg_body; E_add_method ]

let classification_matches =
  QCheck.Test.make ~name:"UPT classifies random edits correctly" ~count:20
    (QCheck.make edit_gen)
    (fun edit ->
      let v1 =
        {|class A { int kept; int doomed; int f() { return kept; } }|}
      in
      let v2 =
        match edit with
        | E_add_field ->
            {|class A { int kept; int doomed; int added; int f() { return kept; } }|}
        | E_del_field -> {|class A { int kept; int f() { return kept; } }|}
        | E_chg_body ->
            {|class A { int kept; int doomed; int f() { return kept + 1; } }|}
        | E_add_method ->
            {|class A { int kept; int doomed; int f() { return kept; } int g() { return 0; } }|}
      in
      let d =
        J.Diff.compute
          ~old_program:(Jv_lang.Compile.compile_program v1)
          ~new_program:(Jv_lang.Compile.compile_program v2)
      in
      match edit with
      | E_chg_body ->
          d.J.Diff.class_updates = [] && List.length d.J.Diff.body_updates = 1
      | E_add_field ->
          d.J.Diff.class_updates = [ "A" ]
          && d.J.Diff.stats.J.Diff.s_fields_added = 1
      | E_del_field ->
          d.J.Diff.class_updates = [ "A" ]
          && d.J.Diff.stats.J.Diff.s_fields_deleted = 1
      | E_add_method ->
          d.J.Diff.class_updates = [ "A" ]
          && d.J.Diff.stats.J.Diff.s_methods_added = 1)

(* --- admission soundness vs. the heap verifier ------------------------------ *)

(* Over randomized class shapes: a spec that survives admission control
   either applies with a clean post-transform heap walk, or aborts for a
   reason other than heap verification with a trustworthy rollback.
   Admission rejecting the spec is vacuously safe (it never pauses the
   VM, so there is nothing to verify). *)
let admitted_specs_verify =
  QCheck.Test.make
    ~name:"specs surviving admission never fail the heap verifier" ~count:15
    QCheck.(make Gen.(tup2 gen_fspec gen_fspec))
    (fun (v1, v2) ->
      QCheck.assume (v1 <> v2);
      let old_program =
        Jv_lang.Compile.compile_program (program_src v1 ~set:true)
      in
      let new_program =
        Jv_lang.Compile.compile_program (program_src v2 ~set:true)
      in
      let config =
        { Helpers.test_config with VM.State.verify_heap = true }
      in
      let vm = VM.Vm.create ~config () in
      VM.Vm.boot vm old_program;
      ignore (VM.Vm.spawn_main vm ~main_class:"Main");
      VM.Vm.run vm ~rounds:5;
      let spec = J.Spec.make ~version_tag:"13" ~old_program ~new_program () in
      let p = J.Transformers.prepare spec in
      if J.Admission.rejections ~strict:false (J.Admission.review p) <> []
      then true (* rejected: the VM never pauses *)
      else begin
        let h = J.Jvolve.request vm p in
        let budget = ref 300 in
        while (not (J.Jvolve.resolved h)) && !budget > 0 do
          ignore (VM.Sched.round vm);
          decr budget
        done;
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied _ ->
            (* P_verify already passed inside apply with the update log's
               old copies allowed; collect once so the dead copies are
               gone, then the committed heap re-verifies with no
               allowance at all *)
            ignore (VM.Gc.collect vm);
            let rep = VM.Heapverify.run vm in
            if rep.VM.Heapverify.hv_ok then true
            else
              QCheck.Test.fail_reportf "committed heap fails verify: %s"
                (match rep.VM.Heapverify.hv_issues with
                | i :: _ -> VM.Heapverify.issue_to_string i
                | [] -> "?")
        | J.Jvolve.Aborted a ->
            if
              a.J.Updater.a_phase <> J.Updater.P_verify
              && a.J.Updater.a_rolled_back
            then true
            else
              QCheck.Test.fail_reportf "admitted spec aborted: %s"
                (J.Updater.abort_to_string a)
        | J.Jvolve.Reverted v ->
            QCheck.Test.fail_reportf "unguarded update reverted: %s"
              (J.Guard.verdict_to_string v)
        | J.Jvolve.Pending ->
            QCheck.Test.fail_reportf "update never resolved"
      end)

(* --- fault schedules never leave the fleet permanently mixed --------------- *)

(* Arbitrary fault schedule over a rolling rollout with retry/backoff:
   whatever fires, the fleet converges — every in-service instance ends
   on one version (all-old after a coherent halt, all-new after retries
   succeed), with incoherent survivors quarantined, and the dropped
   in-flight connection count stays bounded by the work the rollout
   actually attempted. *)

module F = Jv_fleet
module Faults = Jv_faults.Faults

let gen_schedule =
  QCheck.Gen.(
    tup4 (int_range 0 30) (int_bound 1000)
      (oneofl [ "updater.transform"; "updater.gc"; "updater.load"; "updater.*" ])
      bool)

let print_schedule (rate_pct, seed, point, quarantine) =
  Printf.sprintf "{rate=%d%%; seed=%d; point=%s; on_exhausted=%s}" rate_pct
    seed point
    (if quarantine then "Quarantine" else "Halt")

let fleet_config =
  { VM.State.default_config with VM.State.heap_words = 1 lsl 18 }

let rollout_converges =
  QCheck.Test.make ~count:6
    ~name:"faulty rollouts converge to one version (or quarantine)"
    (QCheck.make ~print:print_schedule gen_schedule)
    (fun (rate_pct, seed, point, quarantine) ->
      let size = 3 in
      let fleet =
        F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin
          ~profile:F.Profile.miniweb ~version:"5.1.1" ~size ()
      in
      F.Fleet.run fleet ~rounds:30;
      ignore (F.Fleet.attach_load ~concurrency:(2 * size) fleet);
      F.Fleet.run fleet ~rounds:60;
      let plan = Faults.create ~seed () in
      if rate_pct > 0 then
        Faults.arm plan ~point ~rate:(float_of_int rate_pct /. 100.0)
          Faults.Raise;
      F.Fleet.set_faults fleet (Some plan);
      let params =
        {
          (F.Orchestrator.default_params
             (F.Orchestrator.Rolling { batch_size = 1 }))
          with
          F.Orchestrator.update_timeout = 200;
          max_retries = 2;
          backoff_base = 10;
          on_exhausted = (if quarantine then `Quarantine else `Halt);
        }
      in
      let r = F.Orchestrator.run ~params ~fleet ~to_version:"5.1.2" () in
      F.Fleet.set_faults fleet None;
      F.Fleet.run fleet ~rounds:30;
      let in_service =
        List.filter
          (fun (i : F.Instance.t) ->
            i.F.Instance.i_status <> F.Instance.Out_of_service)
          (F.Fleet.instances fleet)
      in
      let converged =
        match F.Fleet.uniform_version fleet with
        | Some ("5.1.1" | "5.1.2") -> true
        | Some v -> QCheck.Test.fail_reportf "stray version %s" v
        | None ->
            if in_service = [] then true (* everything quarantined *)
            else
              QCheck.Test.fail_reportf
                "permanently mixed: %s"
                (String.concat ","
                   (List.map
                      (fun (i : F.Instance.t) -> i.F.Instance.i_version)
                      in_service))
      in
      let attempts =
        List.length r.F.Orchestrator.r_updated
        + List.length r.F.Orchestrator.r_rolled_back
        + List.length r.F.Orchestrator.r_aborted
        + List.length r.F.Orchestrator.r_quarantined
        + r.F.Orchestrator.r_retries
      in
      let dropped = F.Fleet.dropped_in_flight fleet in
      (* each attempt drains at most the instance's in-flight window *)
      let bound = (attempts + size) * 2 * size in
      if dropped > bound then
        QCheck.Test.fail_reportf "dropped %d conns > bound %d" dropped bound;
      converged)

(* --- lazy/eager differential over the app ladders --------------------------

   For every rung of every app's update ladder, two fresh VMs — one
   updating eagerly (stop-the-world transform), one lazily (metadata-only
   commit, read-barrier + sweeper) — are driven through the exact same
   scripted sessions before and after the update.  The transcripts must
   be byte-identical: laziness is an implementation strategy, never an
   observable one.  Afterwards the lazy VM drains its window, collects,
   and must show a verified heap with zero mixed-epoch residue. *)

module A = Jv_apps

let diff_session vm ~port lines : string list =
  let module Simnet = Jv_simnet.Simnet in
  let net = vm.VM.State.net in
  match Simnet.connect net ~port with
  | None -> QCheck.Test.fail_reportf "differential: port %d refused" port
  | Some cid ->
      let recv_one sent =
        let resp = ref None in
        let budget = ref 500 in
        while !resp = None && !budget > 0 do
          VM.Vm.run vm ~rounds:1;
          decr budget;
          match Simnet.client_recv net ~conn_id:cid with
          | `Line l -> resp := Some l
          | `Eof -> QCheck.Test.fail_reportf "differential: EOF after %S" sent
          | `Wait -> ()
        done;
        match !resp with
        | Some l -> l
        | None -> QCheck.Test.fail_reportf "differential: no reply to %S" sent
      in
      let resps =
        List.map
          (fun line ->
            Simnet.client_send net ~conn_id:cid line;
            recv_one line)
          lines
      in
      Simnet.client_close net ~conn_id:cid;
      Simnet.reap net ~conn_id:cid;
      resps

let diff_drive vm (d : A.Experience.app_desc) buf =
  List.iter
    (fun (port, script, _) ->
      List.iter
        (fun r ->
          Buffer.add_string buf r;
          Buffer.add_char buf '\n')
        (diff_session vm ~port script))
    d.A.Experience.d_loads

(* One rung, one mode: boot at [from_version], drive, update, drive. *)
let diff_rung ?(confree = true) ~lazy_mode ~warmup (d : A.Experience.app_desc)
    (from_version, to_version) : string =
  let config =
    if lazy_mode then
      {
        A.Experience.default_config with
        VM.State.lazy_update = true;
        VM.State.lazy_sweep_budget = 16;
        confree;
      }
    else { A.Experience.default_config with VM.State.confree = confree }
  in
  let vm = A.Experience.boot_version ~config d ~version:from_version in
  VM.Vm.run vm ~rounds:warmup;
  let buf = Buffer.create 1024 in
  diff_drive vm d buf;
  let spec =
    A.Common.spec
      ~overrides:(d.A.Experience.d_overrides ~to_version)
      ~version_tag:(A.Common.version_tag from_version)
      ~old_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source d.A.Experience.d_versioned ~version:from_version))
      ~new_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source d.A.Experience.d_versioned ~version:to_version))
      ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
  Buffer.add_string buf
    (if J.Jvolve.succeeded h then "update: applied\n" else "update: refused\n");
  (* these sessions run against the half-transformed heap in lazy mode:
     the barrier must make that invisible *)
  diff_drive vm d buf;
  if lazy_mode then begin
    (match vm.VM.State.lazy_drain with
    | Some drain ->
        if not (drain vm) then
          QCheck.Test.fail_reportf "%s %s->%s: lazy drain rolled back"
            d.A.Experience.d_name from_version to_version
    | None -> ());
    ignore (VM.Gc.collect vm);
    let residue = Test_lazy.residue_count vm in
    if residue <> 0 then
      QCheck.Test.fail_reportf "%s %s->%s: %d lazy-residue objects"
        d.A.Experience.d_name from_version to_version residue;
    let rep = VM.Heapverify.run vm in
    if not rep.VM.Heapverify.hv_ok then
      QCheck.Test.fail_reportf "%s %s->%s: lazy heap fails verification"
        d.A.Experience.d_name from_version to_version
  end;
  Buffer.contents buf

let lazy_eager_differential =
  QCheck.Test.make ~name:"lazy and eager updates are indistinguishable"
    ~count:2
    QCheck.(make Gen.(int_range 0 10))
    (fun warmup ->
      List.iter
        (fun d ->
          List.iter
            (fun rung ->
              let eager = diff_rung ~lazy_mode:false ~warmup d rung in
              let lz = diff_rung ~lazy_mode:true ~warmup d rung in
              if not (String.equal eager lz) then
                QCheck.Test.fail_reportf
                  "%s %s->%s: transcripts diverge\n--- eager ---\n%s\n--- lazy ---\n%s"
                  d.A.Experience.d_name (fst rung) (snd rung) eager lz)
            (List.map
               (fun ((fv, _), (tv, _)) -> (fv, tv))
               (A.Patching.update_pairs d.A.Experience.d_versioned)))
        A.Experience.all_apps;
      true)

(* --- con-freeness differential over the app ladders --------------------------

   For every rung of every app's update ladder, two fresh VMs — one with
   the con-freeness analysis on, one with it off — run the exact same
   scripted sessions before and after the update attempt.  The analysis
   may only *relax* the safe-point condition, never break an update or
   change observable behaviour:

   - if the rung applies with the analysis off, it must also apply with
     it on (the proven set only shrinks the restricted set);
   - when both apply, the transcripts must be byte-identical (a proof
     lets old code keep running, it never changes what that code does);
   - rungs the analysis newly unlocks (off times out, on applies) are
     the win this feature exists for — counted, and at least one must
     appear across the four ladders (miniweb 5.1.3 at minimum). *)

let confree_differential =
  QCheck.Test.make ~name:"con-freeness only relaxes the safe point"
    ~count:1
    QCheck.(make Gen.(int_range 0 10))
    (fun warmup ->
      let unlocked = ref 0 in
      List.iter
        (fun d ->
          List.iter
            (fun rung ->
              let on = diff_rung ~confree:true ~lazy_mode:false ~warmup d rung in
              let off = diff_rung ~confree:false ~lazy_mode:false ~warmup d rung in
              let applied t = Helpers.contains t "update: applied\n" in
              match (applied on, applied off) with
              | false, true ->
                  QCheck.Test.fail_reportf
                    "%s %s->%s: applies without con-freeness but not with it"
                    d.A.Experience.d_name (fst rung) (snd rung)
              | true, true ->
                  if not (String.equal on off) then
                    QCheck.Test.fail_reportf
                      "%s %s->%s: transcripts diverge\n--- on ---\n%s\n--- \
                       off ---\n%s"
                      d.A.Experience.d_name (fst rung) (snd rung) on off
              | true, false -> incr unlocked
              | false, false -> ())
            (List.map
               (fun ((fv, _), (tv, _)) -> (fv, tv))
               (A.Patching.update_pairs d.A.Experience.d_versioned)))
        A.Experience.all_apps;
      if !unlocked < 1 then
        QCheck.Test.fail_reportf
          "expected at least one rung only the analysis unlocks, found none";
      true)

(* --- the verifier collects stale update-log copies itself -------------------

   Regression for the observability footgun: after an *unguarded* eager
   commit the update log's pristine old copies linger as unreferenced
   garbage until some collection erases them, and [Heapverify.run] used
   to report them as corruption.  It now recognizes the
   all-issues-are-unreferenced-stale-copies shape, collects once, and
   re-verifies. *)
let verifier_autocollects_stale_copies () =
  let vm = Test_lazy.boot_boxes ~config:Helpers.test_config () in
  let h =
    J.Jvolve.update_now ~timeout_rounds:100 vm (Test_lazy.boxes_spec ())
  in
  if not (J.Jvolve.succeeded h) then Alcotest.fail "eager update refused";
  (* no manual Gc.collect here: that was the workaround *)
  let rep = VM.Heapverify.run vm in
  Alcotest.(check bool) "verdict is green" true rep.VM.Heapverify.hv_ok;
  Alcotest.(check bool) "a stale-copy collection ran" true
    rep.VM.Heapverify.hv_collected;
  (* and the collection is not re-run once the heap is actually clean *)
  let rep2 = VM.Heapverify.run vm in
  Alcotest.(check bool) "second verdict green" true rep2.VM.Heapverify.hv_ok;
  Alcotest.(check bool) "no second collection" false
    rep2.VM.Heapverify.hv_collected

let suite =
  [
    QCheck_alcotest.to_alcotest arith_agrees;
    QCheck_alcotest.to_alcotest bool_agrees;
    QCheck_alcotest.to_alcotest default_transformer_preserves;
    QCheck_alcotest.to_alcotest inverse_roundtrip;
    QCheck_alcotest.to_alcotest inverse_restores_field_values;
    QCheck_alcotest.to_alcotest classification_matches;
    QCheck_alcotest.to_alcotest admitted_specs_verify;
    QCheck_alcotest.to_alcotest rollout_converges;
    QCheck_alcotest.to_alcotest lazy_eager_differential;
    QCheck_alcotest.to_alcotest confree_differential;
    Alcotest.test_case "heapverify auto-collects stale copies" `Quick
      verifier_autocollects_stale_copies;
  ]
