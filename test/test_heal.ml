(* Self-healing fleet (lib/fleet/supervisor): crash detection, backoff
   restart, snapshot restore, epoch catch-up and LB readmission.

   Three directed arcs plus a property:
   - steady-state crash: a kill outside any rollout heals back to full
     strength on the same version, with the readmit event mirroring the
     quarantine edge;
   - mid-update crash: the orchestrator quarantines the corpse, the
     supervisor revives it, and [reconcile] moves it from quarantined to
     recovered — capacity is not double-counted;
   - mid-guard-window crash: the watchdog force-closes the window,
     fences the rollout, survivors revert, and the restarted instance
     catches up to the *reverted* epoch, not the suspect one;
   - property: any seeded kill schedule on a ministore fleet converges
     back to N alive on one version, with every store bit-for-bit equal
     to a never-killed control fleet. *)

module F = Jv_fleet
module J = Jvolve_core
module VM = Jv_vm
module Ms = Jv_apps.Ministore
module Faults = Jv_faults.Faults
module Obs = Jv_obs.Obs

(* small per-instance heap: these tests boot several VMs each *)
let fleet_config =
  { VM.State.default_config with VM.State.heap_words = 1 lsl 18 }

(* request timeouts on the closed-loop drivers: a kill severs that VM's
   in-flight lines and the sessions must recycle, not wedge *)
let boot_under_load ?(size = 3) ?(version = "5.1.1")
    ?(profile = F.Profile.miniweb) () =
  let fleet =
    F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin ~profile
      ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  ignore (F.Fleet.attach_load ~concurrency:6 ~request_timeout:40 fleet);
  F.Fleet.run fleet ~rounds:100;
  fleet

let heal_params =
  {
    F.Supervisor.default_params with
    F.Supervisor.s_backoff_base = 20;
    s_snapshot_every = 40;
  }

let kill_plan ?(seed = 5) spec =
  match Faults.parse ~seed spec with Ok p -> p | Error e -> failwith e

(* drive fleet + supervisor (no rollout) until every recovery is done *)
let heal ~fleet ~sup =
  let rounds = ref 0 in
  while (not (F.Supervisor.settled sup)) || !rounds < 5 do
    F.Fleet.round fleet;
    F.Supervisor.step sup;
    incr rounds;
    if !rounds > 20_000 then failwith "supervisor never settled"
  done

(* drive fleet + rollout + supervisor until the rollout has a result AND
   every recovery is done *)
let drive ~fleet ~orch ~sup =
  let rec go n =
    if n > 30_000 then failwith "rollout + heal did not finish"
    else
      match F.Orchestrator.result orch with
      | Some r when F.Supervisor.settled sup -> r
      | _ ->
          F.Fleet.round fleet;
          F.Orchestrator.step orch;
          F.Supervisor.step sup;
          go (n + 1)
  in
  go 0

(* step everything until [pred] holds (used to arm a kill at a precise
   point in the rollout) *)
let drive_until ~fleet ~orch ~sup pred =
  let rec go n =
    if n > 30_000 then failwith "drive_until: condition never reached"
    else if pred () then ()
    else begin
      F.Fleet.round fleet;
      F.Orchestrator.step orch;
      F.Supervisor.step sup;
      go (n + 1)
    end
  in
  go 0

let heal_orch_params ?guard () =
  {
    (F.Orchestrator.default_params (F.Orchestrator.Rolling { batch_size = 1 }))
    with
    F.Orchestrator.update_timeout = 250;
    max_retries = 1;
    backoff_base = 20;
    on_exhausted = `Quarantine;
    guard;
  }

(* --- steady state ------------------------------------------------------- *)

let test_steady_state_crash () =
  let fleet = boot_under_load ~size:3 () in
  let sup = F.Supervisor.create ~params:heal_params ~fleet () in
  (* rate 1.0, one fire: instance 0 dies on the very next consult *)
  F.Fleet.set_faults fleet (Some (kill_plan "vm.crash=kill@1.0x1"));
  heal ~fleet ~sup;
  Alcotest.(check int) "one restart" 1 (F.Supervisor.restarts sup);
  Alcotest.(check (list int)) "victim recovered" [ 0 ]
    (F.Supervisor.recovered sup);
  Alcotest.(check int) "nobody parked" 0 (List.length (F.Supervisor.parked sup));
  Alcotest.(check int) "full strength" 3 (F.Supervisor.alive sup);
  Alcotest.(check (option string)) "still on the old version" (Some "5.1.1")
    (F.Fleet.uniform_version fleet);
  (* the readmit edge mirrors instance.quarantine: event + counter *)
  Alcotest.(check int) "readmission counted" 1
    (Obs.counter_value (F.Fleet.obs fleet) "fleet.rollout.readmitted");
  let readmits =
    List.filter
      (fun (ev : Obs.event) -> ev.Obs.ev_name = "instance.readmit")
      (Obs.events (F.Fleet.obs fleet))
  in
  Alcotest.(check int) "one readmit event" 1 (List.length readmits);
  Alcotest.(check bool) "readmit event carries MTTR" true
    (List.exists
       (fun (ev : Obs.event) ->
         List.mem_assoc "mttr_rounds" ev.Obs.ev_fields)
       readmits);
  Alcotest.(check bool) "outage was measured" true
    (F.Supervisor.below_capacity_rounds sup > 0)

(* --- mid-update crash --------------------------------------------------- *)

let test_mid_update_crash_reconciled () =
  let fleet = boot_under_load ~size:3 () in
  let orch =
    F.Orchestrator.create
      ~params:(heal_orch_params ())
      ~fleet ~to_version:"5.1.2" ()
  in
  let sup = F.Supervisor.create ~params:heal_params ~fleet () in
  (* kill instance 0 the moment its update transaction is in flight *)
  drive_until ~fleet ~orch ~sup (fun () ->
      (F.Fleet.instance fleet 0).F.Instance.i_status = F.Instance.Updating);
  F.Fleet.set_faults fleet (Some (kill_plan "vm.crash=kill@1.0x1"));
  let r = drive ~fleet ~orch ~sup in
  let r = F.Orchestrator.reconcile r ~recovered:(F.Supervisor.recovered sup) in
  Alcotest.(check bool) "victim recovered in the result" true
    (List.mem 0 r.F.Orchestrator.r_recovered);
  Alcotest.(check bool) "victim no longer counted quarantined" false
    (List.mem_assoc 0 r.F.Orchestrator.r_quarantined);
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check (option string)) "fleet uniform on the new version"
    (Some "5.1.2")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "full strength" 3 (F.Supervisor.alive sup)

(* --- mid-guard-window crash --------------------------------------------- *)

(* traffic budgets disabled: only the crash can trip the window *)
let heal_guard =
  J.Guard.config
    ~budget:
      {
        J.Guard.default_budget with
        J.Guard.b_rounds = 150;
        b_max_app_errors = max_int;
        b_latency_factor = 1e9;
      }
    ()

let test_mid_guard_window_crash () =
  let fleet = boot_under_load ~size:3 () in
  let orch =
    F.Orchestrator.create
      ~params:(heal_orch_params ~guard:heal_guard ())
      ~fleet ~to_version:"5.1.2" ()
  in
  let sup = F.Supervisor.create ~params:heal_params ~fleet () in
  (* wait until instance 0 is serving the new version inside its guard
     window, then kill it: the watchdog must force-close the window,
     fence the rollout and revert the survivors *)
  drive_until ~fleet ~orch ~sup (fun () ->
      let i = F.Fleet.instance fleet 0 in
      i.F.Instance.i_version = "5.1.2"
      && i.F.Instance.i_status = F.Instance.In_service);
  F.Fleet.set_faults fleet (Some (kill_plan "vm.crash=kill@1.0x1"));
  let r = drive ~fleet ~orch ~sup in
  Alcotest.(check bool) "rollout fenced" true (r.F.Orchestrator.r_halted <> None);
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check (option string)) "fleet back on the reverted epoch"
    (Some "5.1.1")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check string) "restarted victim on the reverted epoch, too"
    "5.1.1"
    (F.Fleet.instance fleet 0).F.Instance.i_version;
  Alcotest.(check bool) "victim recovered" true
    (List.mem 0 (F.Supervisor.recovered sup));
  Alcotest.(check int) "full strength" 3 (F.Supervisor.alive sup)

(* --- snapshot format ---------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let fleet =
    F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin
      ~profile:F.Profile.ministore ~version:"1.0" ~size:1 ()
  in
  F.Fleet.run fleet ~rounds:30;
  let vm = (F.Fleet.instance fleet 0).F.Instance.i_vm in
  let boot_records =
    match Ms.scrape vm with
    | Ok s -> List.length s.Ms.s_records
    | Error e -> failwith e
  in
  (* fresh keys well above the seeded range *)
  List.iter
    (fun reply ->
      Alcotest.(check bool) "write accepted" true
        (String.length reply >= 3 && String.sub reply 0 3 = "+OK"))
    (Ms.wire_session vm
       [ "PUT 9001 7 alpha"; "PUT 9002 9 beta gamma"; "PUT 9003 0 d" ]);
  let snap =
    match Ms.scrape vm with Ok s -> s | Error e -> failwith e
  in
  Alcotest.(check int) "scrape saw the writes" (boot_records + 3)
    (List.length snap.Ms.s_records);
  let wire = Ms.snapshot_to_string snap in
  (match Ms.snapshot_of_string wire with
  | Ok back ->
      Alcotest.(check bool) "records survive the round-trip" true
        (back.Ms.s_records = snap.Ms.s_records
        && back.Ms.s_version = snap.Ms.s_version)
  | Error e -> Alcotest.failf "round-trip rejected: %s" e);
  (* a flipped byte in the body must fail the checksum *)
  let tampered =
    String.mapi (fun i c -> if i = 10 then Char.chr (Char.code c lxor 1) else c) wire
  in
  match Ms.snapshot_of_string tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered snapshot accepted"

(* --- durable recovery through a missed schema hop ----------------------- *)

let test_ministore_durable_recovery () =
  let fleet = boot_under_load ~size:2 ~profile:F.Profile.ministore ~version:"1.0" () in
  let r =
    F.Orchestrator.run
      ~params:
        {
          (F.Orchestrator.default_params
             (F.Orchestrator.Rolling { batch_size = 1 }))
          with
          F.Orchestrator.update_timeout = 250;
        }
      ~fleet ~to_version:"1.1" ()
  in
  Alcotest.(check bool) "schema rollout ok" true r.F.Orchestrator.r_ok;
  (* freeze writes, then let the supervisor reach a snapshot boundary *)
  F.Fleet.detach_loads fleet;
  let sup = F.Supervisor.create ~params:heal_params ~fleet () in
  for _ = 1 to 2 * heal_params.F.Supervisor.s_snapshot_every do
    F.Fleet.round fleet;
    F.Supervisor.step sup
  done;
  let scrape () =
    match Ms.scrape (F.Fleet.instance fleet 0).F.Instance.i_vm with
    | Ok s -> s
    | Error e -> failwith ("scrape failed: " ^ e)
  in
  let pre = scrape () in
  Alcotest.(check string) "store serving the new schema" "1.1"
    pre.Ms.s_version;
  F.Fleet.set_faults fleet (Some (kill_plan ~seed:3 "vm.crash=kill@1.0x1"));
  heal ~fleet ~sup;
  let post = scrape () in
  Alcotest.(check bool) "pre-crash records served bit-for-bit" true
    (post.Ms.s_records = pre.Ms.s_records);
  Alcotest.(check string) "recovered at the current schema" "1.1"
    post.Ms.s_version;
  Alcotest.(check (option string)) "fleet uniform" (Some "1.1")
    (F.Fleet.uniform_version fleet)

(* --- property: seeded kill schedules always heal ------------------------ *)

(* Direct per-instance write batches (not LB-routed): both fleets hold
   identical stores regardless of how kills skew routing. *)
let write_batches fleet ~seed =
  for id = 0 to F.Fleet.size fleet - 1 do
    let vm = (F.Fleet.instance fleet id).F.Instance.i_vm in
    ignore
      (Ms.wire_session vm
         (List.init 6 (fun j ->
              Printf.sprintf "PUT %d %d v%d_%d" ((id * 100) + j)
                ((seed + j) mod 16)
                seed j)))
  done

let prop_kill_schedule_heals =
  QCheck.Test.make
    ~name:"any seeded kill schedule heals: full strength, stores intact"
    ~count:3
    QCheck.(pair (int_range 1 1000) (int_range 1 2))
    (fun (seed, kills) ->
      let seed = max 1 (min 1000 seed) in
      let kills = max 1 (min 2 kills) in
      let size = 2 in
      let boot () =
        let fleet =
          F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin
            ~profile:F.Profile.ministore ~version:"1.0" ~size ()
        in
        F.Fleet.run fleet ~rounds:30;
        write_batches fleet ~seed;
        F.Fleet.run fleet ~rounds:20;
        fleet
      in
      let control = boot () in
      let fleet = boot () in
      let params =
        { heal_params with F.Supervisor.s_snapshot_every = 20 }
      in
      let sup = F.Supervisor.create ~params ~fleet () in
      (* every instance gets a snapshot before the storm opens *)
      for _ = 1 to 2 * params.F.Supervisor.s_snapshot_every do
        F.Fleet.round fleet;
        F.Supervisor.step sup
      done;
      let plan =
        kill_plan ~seed (Printf.sprintf "vm.crash=kill@0.05x%d" kills)
      in
      F.Fleet.set_faults fleet (Some plan);
      (* long enough that a 5% per-consult rate has certainly fired *)
      for _ = 1 to 600 do
        F.Fleet.round fleet;
        F.Supervisor.step sup
      done;
      let rounds = ref 0 in
      while not (F.Supervisor.settled sup) do
        F.Fleet.round fleet;
        F.Supervisor.step sup;
        incr rounds;
        if !rounds > 20_000 then
          QCheck.Test.fail_reportf "seed %d: never settled" seed
      done;
      if Faults.fired plan = 0 then
        QCheck.Test.fail_reportf "seed %d: kill schedule never fired" seed;
      if F.Supervisor.alive sup <> size then
        QCheck.Test.fail_reportf "seed %d: %d/%d alive" seed
          (F.Supervisor.alive sup) size;
      if F.Fleet.uniform_version fleet <> Some "1.0" then
        QCheck.Test.fail_reportf "seed %d: fleet not on one epoch" seed;
      for id = 0 to size - 1 do
        let s fleet =
          match Ms.scrape (F.Fleet.instance fleet id).F.Instance.i_vm with
          | Ok s -> (s.Ms.s_version, s.Ms.s_records)
          | Error e -> QCheck.Test.fail_reportf "scrape %d: %s" id e
        in
        if s fleet <> s control then
          QCheck.Test.fail_reportf
            "seed %d: store %d diverged from never-killed control" seed id
      done;
      true)

let suite =
  [
    Alcotest.test_case "steady-state crash heals to full strength" `Quick
      test_steady_state_crash;
    Alcotest.test_case "mid-update crash: quarantined then reconciled" `Quick
      test_mid_update_crash_reconciled;
    Alcotest.test_case "mid-guard-window crash: catch-up to reverted epoch"
      `Quick test_mid_guard_window_crash;
    Alcotest.test_case "ministore snapshot round-trip + checksum" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "ministore durable recovery across a schema hop"
      `Quick test_ministore_durable_recovery;
    QCheck_alcotest.to_alcotest prop_kill_schedule_heals;
  ]
