(* The opt-OSR extension (paper future work, §3.2/§5): on-stack
   replacement of opt-compiled category-(2) frames when they are parked
   outside inlined regions.  Off by default — the paper's Jvolve only OSRs
   base-compiled code — and enabled via [config.opt_osr]. *)

module VM = Jv_vm
module J = Jvolve_core

(* [Main.work] is made hot by 10 warm-up invocations (opt-compiled,
   inlining [Data.bump]), then invoked one final time with [n = 0], where
   it loops forever — an opt-compiled frame permanently on stack.  It
   references Data, which the update widens: a category-(2) method whose
   active frame is opt-compiled, the exact case the paper leaves to
   future work. *)
let v1 =
  {|
class Data {
  int x;
  static int bump(int v) { return v + 1; }
}
class Registry { static Data d; }
class Main {
  static void work(Data dd, int n) {
    if (n == 0) {
      while (true) {
        dd.x = Data.bump(dd.x);
        Sys.println("x=" + dd.x);
        Thread.yieldNow();
      }
    }
    dd.x = Data.bump(dd.x);
  }
  static void main() {
    Registry.d = new Data();
    Data dd = Registry.d;
    for (int i = 0; i < 10; i = i + 1) { work(dd, 1); }
    work(dd, 0);
  }
}
|}

(* pad0/pad1 shift x's offset: stale offsets in work()'s compiled code *)
let v2 =
  Jv_apps.Patching.patch v1
    [
      ( {|class Data {
  int x;|},
        {|class Data {
  int pad0;
  int pad1;
  int x;|} );
    ]

let run_case ~opt_osr =
  let config =
    {
      Helpers.test_config with
      VM.State.opt_threshold = 3 (* work() opt-compiles almost immediately *);
      opt_osr;
    }
  in
  let old_program = Jv_lang.Compile.compile_program v1 in
  let new_program = Jv_lang.Compile.compile_program v2 in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm old_program;
  let t = VM.Vm.spawn_main vm ~main_class:"Main" in
  VM.Vm.run vm ~rounds:40;
  (* sanity: the parked work() frame must be opt-compiled by now *)
  (match t.VM.State.frames with
  | fr :: _ ->
      let m = VM.Rt.method_by_uid vm.VM.State.reg fr.VM.State.f_method in
      Alcotest.(check string) "top frame" "work" m.VM.Rt.m_name;
      Alcotest.(check string) "opt-compiled" "opt"
        (VM.Machine.level_to_string fr.VM.State.code.VM.Machine.level)
  | [] -> Alcotest.fail "no frames");
  let spec =
    J.Spec.make ~version_tag:"1" ~old_program ~new_program ()
  in
  (J.Jvolve.update_now ~timeout_rounds:60 vm spec, vm)

let without_extension_blocks () =
  (* paper behaviour: the opt-compiled cat-2 frame cannot be replaced and
     never leaves the stack -> timeout *)
  let h, _ = run_case ~opt_osr:false in
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      let e = J.Updater.abort_to_string a in
      if not (Helpers.contains e "work") then
        Alcotest.failf "abort should blame Main.work: %s" e
  | o -> Alcotest.failf "expected abort, got %s" (J.Jvolve.outcome_to_string o)

let with_extension_applies () =
  let h, vm = run_case ~opt_osr:true in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Alcotest.(check bool) "OSR happened" true (t.J.Updater.u_osr >= 1)
  | o -> Alcotest.failf "expected applied, got %s" (J.Jvolve.outcome_to_string o));
  (* the update shifted x's offset; the OSR'd opt frame must keep reading
     and writing the right slot — x keeps incrementing smoothly *)
  ignore (VM.Vm.run vm ~rounds:60);
  let out = VM.Vm.output vm in
  let xs =
    String.split_on_char '\n' out
    |> List.filter_map (fun l ->
           if String.length l > 2 && String.sub l 0 2 = "x=" then
             int_of_string_opt (String.sub l 2 (String.length l - 2))
           else None)
  in
  let rec monotone = function
    | a :: (b :: _ as r) -> b - a = 1 && monotone r
    | _ -> true
  in
  Alcotest.(check bool) "x increments by 1 per iteration across the update"
    true
    (List.length xs > 5 && monotone xs);
  Alcotest.(check int) "no traps" 0
    (List.length (VM.Vm.stats vm).VM.Vm.traps)

(* parked INSIDE an inlined region: even the extension must refuse *)
let inside_inlined_region_blocks () =
  let v1' =
    {|
class Data {
  int x;
  static int slowbump(Data d) {
    for (int i = 0; i < 3; i = i + 1) { Thread.yieldNow(); }
    return d.x + 1;
  }
}
class Registry { static Data d; }
class Main {
  static void work() {
    Data dd = Registry.d;
    dd.x = Data.slowbump(dd);
  }
  static void main() {
    Registry.d = new Data();
    while (true) { work(); }
  }
}
|}
  in
  ignore v1';
  (* slowbump yields inside its loop; if work() inlines it, the parked pc
     sits inside the inlined span.  eligible must be false there. *)
  let config =
    { Helpers.test_config with VM.State.opt_threshold = 3; opt_osr = true }
  in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program v1');
  let t = VM.Vm.spawn_main vm ~main_class:"Main" in
  VM.Vm.run vm ~rounds:50;
  match t.VM.State.frames with
  | fr :: _ ->
      let m = VM.Rt.method_by_uid vm.VM.State.reg fr.VM.State.f_method in
      if
        m.VM.Rt.m_name = "work"
        && fr.VM.State.code.VM.Machine.level = VM.Machine.Opt
        && VM.Machine.pc_in_inlined_span fr.VM.State.code fr.VM.State.pc
      then
        Alcotest.(check bool) "not eligible inside span" false
          (VM.Osr.eligible vm fr)
      else
        (* parked in slowbump's own (non-inlined) frame or base code: the
           span case did not materialize this round; still fine *)
        ()
  | [] -> Alcotest.fail "no frames"

let spans_recorded () =
  let config = { Helpers.test_config with VM.State.opt_threshold = 1 } in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm
    (Jv_lang.Compile.compile_program
       {|
class F {
  static int tiny(int x) { return x + 1; }
  static int host(int x) { return tiny(x) + tiny(x + 2); }
}
class Main { static void main() { Sys.println("" + F.host(1)); } }
|});
  let cls = VM.Rt.require_class vm.VM.State.reg "F" in
  let host =
    match
      VM.Rt.resolve_method vm.VM.State.reg cls "host"
        { Jv_classfile.Types.params = [ Jv_classfile.Types.TInt ];
          ret = Jv_classfile.Types.TInt }
    with
    | Some m -> m
    | None -> Alcotest.fail "no host"
  in
  let opt = VM.Jit.compile vm host VM.Machine.Opt in
  Alcotest.(check int) "two inline spans" 2
    (List.length opt.VM.Machine.inline_spans);
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool) "span well formed" true (0 <= lo && lo < hi);
      Alcotest.(check bool) "span pc detection" true
        (VM.Machine.pc_in_inlined_span opt lo
        && VM.Machine.pc_in_inlined_span opt (hi - 1)
        && not (VM.Machine.pc_in_inlined_span opt hi)))
    opt.VM.Machine.inline_spans

let suite =
  [
    Alcotest.test_case "spans recorded" `Quick spans_recorded;
    Alcotest.test_case "without extension: blocks" `Quick
      without_extension_blocks;
    Alcotest.test_case "with extension: applies and stays correct" `Quick
      with_extension_applies;
    Alcotest.test_case "inside inlined region: refuses" `Quick
      inside_inlined_region_blocks;
  ]
