(* Decentralized update distribution (lib/gossip): the locked update
   mempool, the wire codec, push/pull anti-entropy dissemination, quorum
   epoch agreement, and the peer-to-peer fence wave — no orchestrator
   anywhere in this file. *)

module F = Jv_fleet
module G = Jv_gossip
module J = Jvolve_core
module A = Jv_apps
module Faults = Jv_faults.Faults

let fleet_config =
  { Jv_vm.State.default_config with Jv_vm.State.heap_words = 1 lsl 18 }

let boot_fleet ?(size = 4) ?(version = "5.1.1") () =
  let fleet =
    F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin
      ~profile:F.Profile.miniweb ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  fleet

(* fast-converging settings for small test fleets *)
let test_params =
  {
    G.Gossip.default_params with
    G.Gossip.g_digest_every = 8;
    g_apply_jitter = 4;
    g_drain_timeout = 60;
    g_update_timeout = 200;
  }

(* --- mempool: dedup, orphan votes, con-sticky, lock discipline ---------- *)

let prop ?(epoch = 1) ?(origin = 0) id =
  {
    G.Mempool.p_id = id;
    p_epoch = epoch;
    p_from_version = "5.1.1";
    p_to_version = "5.1.2";
    p_digest = "d34db33f";
    p_origin = origin;
  }

let vote ?(stance = G.Mempool.Pro) ?(why = "ok") ~voter prop_id =
  { G.Mempool.v_prop = prop_id; v_voter = voter; v_stance = stance; v_why = why }

let test_mempool_dedup () =
  let m = G.Mempool.create () in
  G.Mempool.with_lock m (fun () ->
      Alcotest.(check bool) "first insert is fresh" true
        (G.Mempool.add_proposal m (prop "a") = `Fresh);
      Alcotest.(check bool) "re-delivery is a duplicate" true
        (G.Mempool.add_proposal m (prop "a") = `Duplicate);
      Alcotest.(check bool) "orphan vote accepted" true
        (G.Mempool.add_vote m (vote ~voter:7 "zzz") = `Fresh);
      Alcotest.(check bool) "same vote re-delivered is stale" true
        (G.Mempool.add_vote m (vote ~voter:7 "zzz") = `Stale);
      ignore (G.Mempool.add_vote m (vote ~voter:1 "a"));
      ignore (G.Mempool.add_vote m (vote ~voter:2 "a"));
      let pro, con, trip = G.Mempool.tally m ~prop:"a" in
      Alcotest.(check (triple int int int)) "tally counts voters once"
        (2, 0, 0) (pro, con, trip))

let test_mempool_con_sticky () =
  let m = G.Mempool.create () in
  G.Mempool.with_lock m (fun () ->
      ignore (G.Mempool.add_proposal m (prop "a"));
      ignore (G.Mempool.add_vote m (vote ~voter:1 "a"));
      (* hardening Pro -> Con (a guard trip) replaces the vote *)
      Alcotest.(check bool) "pro hardens to con" true
        (G.Mempool.add_vote m
           (vote ~voter:1 ~stance:G.Mempool.Con ~why:"trip:app-errors" "a")
        = `Hardened);
      (* a stale re-delivered Pro must NOT talk the voter back *)
      Alcotest.(check bool) "con is sticky" true
        (G.Mempool.add_vote m (vote ~voter:1 "a") = `Stale);
      let pro, con, trip = G.Mempool.tally m ~prop:"a" in
      Alcotest.(check (triple int int int)) "trip vote counted" (0, 1, 1)
        (pro, con, trip))

let test_mempool_lock_discipline () =
  let m = G.Mempool.create () in
  Alcotest.check_raises "mutation outside the lock" G.Mempool.Not_locked
    (fun () -> ignore (G.Mempool.add_proposal m (prop "a")));
  Alcotest.check_raises "read outside the lock" G.Mempool.Not_locked
    (fun () -> ignore (G.Mempool.proposals m));
  G.Mempool.with_lock m (fun () ->
      Alcotest.check_raises "with_lock is non-reentrant"
        (Invalid_argument "Mempool.with_lock: non-reentrant") (fun () ->
          G.Mempool.with_lock m (fun () -> ())));
  (* the lock is released even when the body raises *)
  (try G.Mempool.with_lock m (fun () -> failwith "boom") with _ -> ());
  G.Mempool.with_lock m (fun () ->
      Alcotest.(check int) "lock released after an exception" 0
        (G.Mempool.size m))

(* --- wire codec --------------------------------------------------------- *)

let test_wire_roundtrip () =
  let check_rt m =
    match G.Wire.decode (G.Wire.encode m) with
    | Error e -> Alcotest.failf "decode failed: %s" e
    | Ok m' ->
        Alcotest.(check string) "round-trips" (G.Wire.encode m)
          (G.Wire.encode m')
  in
  check_rt (G.Wire.Prop (prop ~epoch:3 ~origin:17 "deadbeef"));
  check_rt
    (G.Wire.Vote
       (vote ~voter:42 ~stance:G.Mempool.Con
          ~why:"trip:app-errors 5% over budget" "deadbeef"));
  check_rt
    (G.Wire.Digest
       { d_sender = 3; d_epoch = 1; d_keys = [ "P:a"; "V:a:1:P"; "V:a:2:C" ] });
  check_rt (G.Wire.Digest { d_sender = 0; d_epoch = 0; d_keys = [] });
  check_rt (G.Wire.Want [ "P:a" ]);
  check_rt G.Wire.Bye;
  (* the escaped why survives with its spaces *)
  (match G.Wire.decode (G.Wire.encode (G.Wire.Vote (vote ~voter:1 ~why:"a b %c" "x"))) with
  | Ok (G.Wire.Vote v) ->
      Alcotest.(check string) "why unescaped" "a b %c" v.G.Mempool.v_why
  | _ -> Alcotest.fail "vote did not round-trip");
  match G.Wire.decode "FROB x y" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

(* --- quorum apply ------------------------------------------------------- *)

let test_quorum_apply_and_convergence () =
  let fleet = boot_fleet ~size:4 () in
  let g = G.Gossip.create ~params:test_params ~fleet () in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.2");
  let rounds = G.Gossip.run g ~max_rounds:3_000 () in
  let r = G.Gossip.report g ~rounds in
  Alcotest.(check bool) "converged" true r.G.Gossip.gr_converged;
  Alcotest.(check (option int)) "on epoch 1" (Some 1) r.G.Gossip.gr_epoch;
  Alcotest.(check int) "all four applied" 4 r.G.Gossip.gr_applied;
  Alcotest.(check (option string)) "uniform on the new version"
    (Some "5.1.2")
    (F.Fleet.uniform_version fleet);
  (* quorum means at least ceil(0.51 * 4) = 3 Pro votes at every node *)
  Array.iter
    (fun id ->
      let pool = G.Node.pool (G.Gossip.node g id) in
      let pro, _, _ =
        G.Mempool.with_lock pool (fun () ->
            match G.Mempool.proposals pool with
            | [ p ] -> G.Mempool.tally pool ~prop:p.G.Mempool.p_id
            | _ -> Alcotest.fail "expected exactly one proposal")
      in
      Alcotest.(check bool) "apply quorum seen locally" true (pro >= 3))
    [| 0; 1; 2; 3 |]

(* A node refuses a proposal that does not start from its own version:
   the Con vote spreads, but quorum still forms among the others. *)
let test_quorum_counts_only_pro () =
  let fleet = boot_fleet ~size:3 () in
  let g =
    G.Gossip.create
      ~params:{ test_params with G.Gossip.g_quorum = 1.0 }
      ~fleet ()
  in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.2");
  (* with q = 1.0 every node must vote Pro before anyone applies; run a
     few rounds and check nobody jumped early *)
  for _ = 1 to 40 do
    G.Gossip.step g
  done;
  let any_applied =
    List.exists
      (fun id -> G.Node.epoch (G.Gossip.node g id) > 0)
      [ 0; 1; 2 ]
  in
  let pools_agree =
    List.for_all
      (fun id ->
        let pool = G.Node.pool (G.Gossip.node g id) in
        G.Mempool.with_lock pool (fun () ->
            List.length (G.Mempool.proposals pool) = 1))
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "proposal reached every pool" true pools_agree;
  ignore any_applied;
  let rounds = G.Gossip.run g ~max_rounds:3_000 () in
  let r = G.Gossip.report g ~rounds in
  Alcotest.(check bool) "unanimous quorum converges" true
    r.G.Gossip.gr_converged;
  Alcotest.(check int) "all applied" 3 r.G.Gossip.gr_applied

(* --- guard trip -> fence quorum -> inverse wave ------------------------- *)

let test_guard_trip_quorum_revert () =
  let fleet = boot_fleet ~size:4 ~version:"5.1.10" () in
  (* app traffic so the bad version's 404s feed the guard budgets *)
  ignore (F.Fleet.attach_load ~concurrency:6 fleet);
  F.Fleet.run fleet ~rounds:100;
  let params =
    { test_params with G.Gossip.g_guard = Some (J.Guard.config ()) }
  in
  let g = G.Gossip.create ~params ~fleet () in
  ignore (G.Gossip.propose g ~origin:1 ~to_version:A.Miniweb.bad_update);
  let rounds = G.Gossip.run g ~max_rounds:8_000 () in
  let r = G.Gossip.report g ~rounds in
  Alcotest.(check bool) "a guard tripped somewhere" true
    (r.G.Gossip.gr_guard_trips > 0);
  Alcotest.(check bool) "the fence was enforced" true r.G.Gossip.gr_fenced;
  Alcotest.(check bool) "fleet converged" true r.G.Gossip.gr_converged;
  Alcotest.(check (option int)) "back on the old epoch" (Some 0)
    r.G.Gossip.gr_epoch;
  Alcotest.(check (option string)) "back on the old version" (Some "5.1.10")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped connections" 0
    (F.Fleet.dropped_in_flight fleet)

(* --- properties --------------------------------------------------------- *)

(* One full decentralized rollout under a random chaos schedule on the
   control net; returns (report, per-node epochs). *)
let run_under_chaos ~seed ~plan ~size ~rounds_budget =
  let fleet = boot_fleet ~size () in
  let chaos =
    match Faults.parse ~seed plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "bad plan %S: %s" plan e
  in
  let g = G.Gossip.create ~chaos ~params:test_params ~fleet () in
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.2");
  let rounds = G.Gossip.run g ~max_rounds:rounds_budget () in
  let r = G.Gossip.report g ~rounds in
  let epochs =
    List.init size (fun id -> G.Node.epoch (G.Gossip.node g id))
  in
  (r, epochs)

(* Convergence: under random drop/delay/partition-then-heal schedules the
   fleet still reaches one epoch — never left permanently mixed. *)
let prop_convergence_under_chaos =
  QCheck.Test.make ~name:"gossip converges under drop/delay/partition chaos"
    ~count:6
    QCheck.(
      triple (int_range 1 1_000) (int_range 0 2) (int_range 2 10))
    (fun (seed, kind, pct) ->
      let plan =
        match kind with
        | 0 -> Printf.sprintf "net.link=drop@0.%02d" pct
        | 1 -> Printf.sprintf "net.link=delay:2@0.%02d" pct
        | _ ->
            Printf.sprintf
              "simnet.partition=delay:40@0.%02d x2,net.link=drop@0.05" pct
      in
      let r, epochs = run_under_chaos ~seed ~plan ~size:3 ~rounds_budget:6_000 in
      if not r.G.Gossip.gr_converged then
        QCheck.Test.fail_reportf
          "not converged under %s (seed %d): epochs %s after %d rounds" plan
          seed
          (String.concat "," (List.map string_of_int epochs))
          r.G.Gossip.gr_rounds
      else
        List.for_all (fun e -> e = List.hd epochs) epochs)

(* Determinism: a fixed (plan, seed) pair replays the same rollout —
   same rounds, same pushes, same bytes, same epochs. *)
let prop_seed_determinism =
  QCheck.Test.make ~name:"fixed seed replays the rollout byte-identically"
    ~count:4
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let plan = "net.link=drop@0.05,simnet.partition=delay:30@0.01 x1" in
      let run () = run_under_chaos ~seed ~plan ~size:3 ~rounds_budget:6_000 in
      let r1, e1 = run () in
      let r2, e2 = run () in
      let fp (r : G.Gossip.report) =
        ( r.G.Gossip.gr_rounds,
          r.G.Gossip.gr_pushes,
          r.G.Gossip.gr_rumor_bytes,
          r.G.Gossip.gr_digest_recons,
          r.G.Gossip.gr_votes_seen )
      in
      if fp r1 <> fp r2 || e1 <> e2 then
        QCheck.Test.fail_reportf
          "seed %d diverged: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)" seed
          r1.G.Gossip.gr_rounds r1.G.Gossip.gr_pushes
          r1.G.Gossip.gr_rumor_bytes r1.G.Gossip.gr_digest_recons
          r1.G.Gossip.gr_votes_seen r2.G.Gossip.gr_rounds
          r2.G.Gossip.gr_pushes r2.G.Gossip.gr_rumor_bytes
          r2.G.Gossip.gr_digest_recons r2.G.Gossip.gr_votes_seen
      else true)

(* --- partition then heal (directed) ------------------------------------- *)

let test_partition_heals_and_converges () =
  let fleet = boot_fleet ~size:4 () in
  let g = G.Gossip.create ~params:test_params ~fleet () in
  (* cut nodes {0,1} off from {2,3} before proposing at 0 *)
  let net = g.G.Gossip.net in
  Jv_simnet.Simnet.set_partition net
    ~groups:
      [
        [ G.Gossip.default_base_port; G.Gossip.default_base_port + 1 ];
        [ G.Gossip.default_base_port + 2; G.Gossip.default_base_port + 3 ];
      ];
  ignore (G.Gossip.propose g ~origin:0 ~to_version:"5.1.2");
  (* quorum is 3 of 4: the island of two can never apply *)
  for _ = 1 to 300 do
    G.Gossip.step g
  done;
  Alcotest.(check bool) "no apply across the partition" true
    (List.for_all
       (fun id -> G.Node.epoch (G.Gossip.node g id) = 0)
       [ 0; 1; 2; 3 ]);
  Jv_simnet.Simnet.heal net;
  let rounds = G.Gossip.run g ~max_rounds:4_000 () in
  let r = G.Gossip.report g ~rounds in
  Alcotest.(check bool) "converged after heal" true r.G.Gossip.gr_converged;
  Alcotest.(check (option int)) "on the new epoch" (Some 1)
    r.G.Gossip.gr_epoch;
  Alcotest.(check bool) "anti-entropy did real work" true
    (r.G.Gossip.gr_digest_recons > 0)

let suite =
  [
    Alcotest.test_case "mempool: dedup of proposals and votes" `Quick
      test_mempool_dedup;
    Alcotest.test_case "mempool: con-sticky vote replacement" `Quick
      test_mempool_con_sticky;
    Alcotest.test_case "mempool: lock discipline" `Quick
      test_mempool_lock_discipline;
    Alcotest.test_case "wire: codec round-trips" `Quick test_wire_roundtrip;
    Alcotest.test_case "quorum: fleet applies at ceil(qN) pro votes" `Slow
      test_quorum_apply_and_convergence;
    Alcotest.test_case "quorum: unanimous threshold still converges" `Slow
      test_quorum_counts_only_pro;
    Alcotest.test_case "fence: guard trip reverts the fleet by quorum" `Slow
      test_guard_trip_quorum_revert;
    Alcotest.test_case "partition: no quorum across, converges after heal"
      `Slow test_partition_heals_and_converges;
    QCheck_alcotest.to_alcotest prop_convergence_under_chaos;
    QCheck_alcotest.to_alcotest prop_seed_determinism;
  ]
