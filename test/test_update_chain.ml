(* Long-haul DSU scenarios:
   - chains of sequential updates applied to ONE running VM (the paper
     applies each release to a fresh server; a real deployment would roll
     through many),
   - transformers that allocate enough to force a nested collection while
     the update log is live (exercising the extra-roots protocol),
   - update attempts racing with allocation-triggered collections. *)

module VM = Jv_vm
module J = Jvolve_core

let compile = Jv_lang.Compile.compile_program

(* --- sequential updates on one VM ------------------------------------------- *)

(* Main.main is byte-identical across all versions (it only calls Counter
   methods); each version is a class update of Counter, so main is lifted
   by OSR every time. *)
let counter_version n =
  Printf.sprintf
    {|
class Counter {
  int value;
  %s
  void tick() { value = value + %d; }
  int read() { return value; }
  String label() { return "v%d"; }
}
class Keeper { static Counter c; }
class Main {
  static void main() {
    Keeper.c = new Counter();
    while (true) {
      Keeper.c.tick();
      Sys.println(Keeper.c.label() + ":" + Keeper.c.read());
      Thread.yieldNow();
    }
  }
}
|}
    (* each version adds another field, so every step is a class update *)
    (String.concat " "
       (List.init n (fun i -> Printf.sprintf "int extra%d;" i)))
    (n + 1) n

let sequential_updates () =
  let v0 = counter_version 0 in
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm (compile v0);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:5;
  let prev = ref v0 in
  for n = 1 to 5 do
    let next = counter_version n in
    let spec =
      J.Spec.make
        ~version_tag:(string_of_int n)
        ~old_program:(compile !prev) ~new_program:(compile next) ()
    in
    let h = J.Jvolve.update_now ~timeout_rounds:100 vm spec in
    (match h.J.Jvolve.h_outcome with
    | J.Jvolve.Applied t ->
        Alcotest.(check int)
          (Printf.sprintf "update %d transforms the counter" n)
          1 t.J.Updater.u_transformed_objects
    | o ->
        Alcotest.failf "update %d failed: %s" n
          (J.Jvolve.outcome_to_string o));
    VM.Vm.run vm ~rounds:6
  done;
  let out = VM.Vm.output vm in
  (* every version's output style must appear, and the counter value must
     be continuous (preserved across all five layout changes) *)
  for n = 0 to 5 do
    if not (Helpers.contains out (Printf.sprintf "v%d:" n)) then
      Alcotest.failf "no output from version %d: %s" n out
  done;
  let values =
    String.split_on_char '\n' out
    |> List.filter_map (fun l ->
           match String.index_opt l ':' with
           | Some i ->
               int_of_string_opt
                 (String.sub l (i + 1) (String.length l - i - 1))
           | None -> None)
  in
  let rec increasing = function
    | a :: (b :: _ as r) -> a < b && increasing r
    | _ -> true
  in
  Alcotest.(check bool) "counter never reset" true (increasing values);
  Alcotest.(check int) "no traps" 0
    (List.length (VM.Vm.stats vm).VM.Vm.traps)

(* the whole miniweb release history rolled through one living server *)
let miniweb_rolling_upgrade () =
  let module A = Jv_apps in
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:"5.1.0" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:4 ()
  in
  VM.Vm.run vm ~rounds:30;
  let pairs = A.Patching.update_pairs A.Miniweb.app in
  let applied = ref 0 and skipped = ref [] in
  let current = ref "5.1.0" in
  List.iter
    (fun ((from_v, from_src), (to_v, to_src)) ->
      if String.equal from_v !current then begin
        let spec =
          J.Spec.make
            ~version_tag:(String.concat "" (String.split_on_char '.' from_v))
            ~old_program:(compile from_src) ~new_program:(compile to_src) ()
        in
        match
          (J.Jvolve.update_now ~timeout_rounds:120 vm spec).J.Jvolve.h_outcome
        with
        | J.Jvolve.Applied _ ->
            incr applied;
            current := to_v;
            VM.Vm.run vm ~rounds:20
        | J.Jvolve.Aborted _ | J.Jvolve.Reverted _ | J.Jvolve.Pending ->
            (* a hop that cannot apply would force a restart on a real
               deployment; record it so the assertions below see it *)
            skipped := (from_v, to_v) :: !skipped;
            current := from_v
      end)
    pairs;
  (* with con-freeness on (the default), 5.1.2 -> 5.1.3 is proven
     backward-compatible, so the whole release history rolls through —
     no hop requires a restart *)
  Alcotest.(check int) "every release applied" 11 !applied;
  Alcotest.(check (list (pair string string))) "no hop skipped" [] !skipped;
  Alcotest.(check string) "ends at the newest release" "5.1.11" !current;
  Alcotest.(check bool) "server still serving" true
    (w.A.Workload.completed_requests > 50);
  Alcotest.(check int) "no protocol errors" 0 w.A.Workload.errors

(* --- allocation inside transformers ------------------------------------------- *)

let nested_gc_in_transformer () =
  (* the transformer builds a big fresh structure per object, forcing
     collections while the update log is the only thing keeping old
     copies alive *)
  let v1 =
    {|
class Item { int seed; String blob; }
class Keeper { static Item[] all; }
class Main {
  static void main() {
    Keeper.all = new Item[40];
    for (int i = 0; i < 40; i = i + 1) {
      Item it = new Item();
      it.seed = i;
      Keeper.all[i] = it;
    }
    while (true) { Thread.yieldNow(); }
  }
}
|}
  in
  let v2 =
    {|
class Item { int seed; String blob; int gen; }
class Keeper { static Item[] all; }
class Main {
  static void main() {
    Keeper.all = new Item[40];
    for (int i = 0; i < 40; i = i + 1) {
      Item it = new Item();
      it.seed = i;
      Keeper.all[i] = it;
    }
    while (true) { Thread.yieldNow(); }
  }
}
|}
  in
  (* each transformer call allocates ~100 strings; with a small heap this
     forces several nested collections during the transform phase *)
  let transformer_body =
    {|
    to.seed = from.seed;
    to.gen = 2;
    String b = "";
    for (int i = 0; i < 100; i = i + 1) {
      int[] scratch = new int[80];
      scratch[0] = i;
      b = b + from.seed;
    }
    to.blob = b;
|}
  in
  let config =
    { VM.State.default_config with VM.State.heap_words = 1 lsl 14 }
  in
  let old_program = compile v1 and new_program = compile v2 in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:5;
  let gc_before = (VM.Vm.stats vm).VM.Vm.gc_count in
  let spec =
    J.Spec.make
      ~object_overrides:[ ("Item", transformer_body) ]
      ~version_tag:"1" ~old_program ~new_program ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds:100 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Alcotest.(check int) "all items transformed" 40
        t.J.Updater.u_transformed_objects
  | o -> Alcotest.failf "update failed: %s" (J.Jvolve.outcome_to_string o));
  let gc_after = (VM.Vm.stats vm).VM.Vm.gc_count in
  Alcotest.(check bool)
    (Printf.sprintf "nested collections ran during transform (%d -> %d)"
       gc_before gc_after)
    true
    (gc_after - gc_before >= 3);
  (* every item must have the right blob: seed repeated 100 times *)
  let keeper = VM.Rt.require_class vm.VM.State.reg "Keeper" in
  let slot =
    match VM.Rt.find_static_info vm.VM.State.reg keeper "all" with
    | Some si -> si.VM.Rt.si_slot
    | None -> Alcotest.fail "no static all"
  in
  let arr = VM.Value.to_ref (VM.State.jtoc_get vm slot) in
  for i = 0 to 39 do
    let itw =
      VM.Heap.get vm.VM.State.heap ~addr:arr
        ~off:(VM.Heap.array_header_words + i)
    in
    let it = VM.Value.to_ref itw in
    let blob_w = VM.Heap.get vm.VM.State.heap ~addr:it ~off:3 in
    let blob = VM.State.string_of_obj vm (VM.Value.to_ref blob_w) in
    let expect = String.concat "" (List.init 100 (fun _ -> string_of_int i)) in
    if not (String.equal blob expect) then
      Alcotest.failf "item %d has corrupt blob (len %d)" i
        (String.length blob)
  done

let suite =
  [
    Alcotest.test_case "five sequential class updates" `Quick
      sequential_updates;
    Alcotest.test_case "miniweb rolling upgrade" `Slow
      miniweb_rolling_upgrade;
    Alcotest.test_case "nested GC inside transformers" `Quick
      nested_gc_in_transformer;
  ]
