(* Heap, value encoding, and collector tests — including the property that
   a collection preserves the reachable object graph exactly, and that the
   transforming collection implements the paper's update-log protocol. *)

module VM = Jv_vm
module CF = Jv_classfile

(* --- value encoding -------------------------------------------------------- *)

let encoding_basics () =
  Alcotest.(check bool) "null" true (VM.Value.is_null VM.Value.null);
  Alcotest.(check int) "int round trip" (-42)
    (VM.Value.to_int (VM.Value.of_int (-42)));
  Alcotest.(check bool) "true" true (VM.Value.to_bool (VM.Value.of_bool true));
  Alcotest.(check int) "ref round trip" 17
    (VM.Value.to_ref (VM.Value.of_ref 17));
  Alcotest.(check bool) "ref is not int" false
    (VM.Value.is_int (VM.Value.of_ref 8));
  Alcotest.(check bool) "int is not ref" false
    (VM.Value.is_ref (VM.Value.of_int 8));
  Alcotest.check_raises "ref 0 rejected"
    (Invalid_argument "Value.of_ref: non-positive address") (fun () ->
      ignore (VM.Value.of_ref 0))

let encoding_qcheck =
  QCheck.Test.make ~name:"int encoding is invertible and tagged"
    ~count:1000
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun i ->
      let w = VM.Value.of_int i in
      VM.Value.is_int w
      && (not (VM.Value.is_ref w))
      && VM.Value.to_int w = i)

let ref_qcheck =
  QCheck.Test.make ~name:"ref encoding is invertible and tagged" ~count:1000
    QCheck.(int_range 1 1_000_000_000)
    (fun a ->
      let w = VM.Value.of_ref a in
      VM.Value.is_ref w
      && (not (VM.Value.is_int w))
      && (not (VM.Value.is_null w))
      && VM.Value.to_ref w = a)

(* --- a VM with two tiny classes for heap games ----------------------------- *)

let node_prog =
  {|
class Node {
  int tag;
  Node left;
  Node right;
}
class Main { static void main() { } }
|}

let fresh_vm ?(heap_words = 1 lsl 16) () =
  let vm =
    VM.Vm.create
      ~config:{ VM.State.default_config with VM.State.heap_words }
      ()
  in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program node_prog);
  vm

let node_cls vm = VM.Rt.require_class vm.VM.State.reg "Node"

let set_field vm addr i v = VM.Heap.set vm.VM.State.heap ~addr ~off:(2 + i) v
let get_field vm addr i = VM.Heap.get vm.VM.State.heap ~addr ~off:(2 + i)

(* --- layout ------------------------------------------------------------------ *)

let object_layout () =
  let vm = fresh_vm () in
  let cls = node_cls vm in
  Alcotest.(check int) "size" 5 cls.VM.Rt.size_words;
  let a = VM.State.alloc_object vm cls in
  Alcotest.(check int) "class id" cls.VM.Rt.cid
    (VM.Heap.class_id vm.VM.State.heap a);
  (* fields default to null/zero *)
  Alcotest.(check int) "tag default" 0 (get_field vm a 0);
  Alcotest.(check int) "left default" 0 (get_field vm a 1)

let array_layout () =
  let vm = fresh_vm () in
  let a = VM.State.alloc_array vm ~len:7 in
  Alcotest.(check int) "length" 7 (VM.Heap.array_length vm.VM.State.heap a);
  Alcotest.(check int) "array class" vm.VM.State.array_cid
    (VM.Heap.class_id vm.VM.State.heap a)

let string_objects () =
  let vm = fresh_vm () in
  let a = VM.State.alloc_string vm "hello" in
  Alcotest.(check string) "content" "hello" (VM.State.string_of_obj vm a);
  (* interning: same sid for equal strings *)
  let b = VM.State.alloc_string vm "hello" in
  Alcotest.(check int) "same sid"
    (VM.Heap.get vm.VM.State.heap ~addr:a ~off:2)
    (VM.Heap.get vm.VM.State.heap ~addr:b ~off:2)

(* --- plain collection --------------------------------------------------------- *)

(* Build a random object graph from OCaml, collect, and check isomorphism
   by structural walk. *)
let build_graph vm n seed =
  let cls = node_cls vm in
  let rng = ref seed in
  let next m =
    rng := (!rng * 1103515245) + 12345;
    abs !rng mod m
  in
  let addrs = Array.init n (fun _ -> VM.State.alloc_object vm cls) in
  Array.iteri
    (fun i a ->
      set_field vm a 0 (VM.Value.of_int i);
      if next 4 > 0 then
        set_field vm a 1 (VM.Value.of_ref addrs.(next n));
      if next 4 > 0 then
        set_field vm a 2 (VM.Value.of_ref addrs.(next n)))
    addrs;
  (* root: a static slot pointing at node 0, plus an extra-roots array
     covering a few others *)
  let root_arr = Array.map (fun a -> VM.Value.of_ref a) addrs in
  vm.VM.State.extra_roots <- [ root_arr ];
  root_arr

(* structural signature of the reachable graph: DFS with visit order *)
let signature vm root_arr =
  let visited = Hashtbl.create 64 in
  let out = Buffer.create 256 in
  let rec go w =
    if VM.Value.is_null w then Buffer.add_string out "_"
    else begin
      let a = VM.Value.to_ref w in
      match Hashtbl.find_opt visited a with
      | Some id -> Buffer.add_string out (Printf.sprintf "#%d" id)
      | None ->
          let id = Hashtbl.length visited in
          Hashtbl.add visited a id;
          Buffer.add_string out
            (Printf.sprintf "(%d:" (VM.Value.to_int (get_field vm a 0)));
          go (get_field vm a 1);
          Buffer.add_char out ',';
          go (get_field vm a 2);
          Buffer.add_char out ')'
    end
  in
  Array.iter go root_arr;
  Buffer.contents out

let gc_preserves_graph () =
  let vm = fresh_vm () in
  let roots = build_graph vm 200 42 in
  let before = signature vm roots in
  let r1 = VM.Gc.collect vm in
  let mid = signature vm roots in
  Alcotest.(check string) "after one GC" before mid;
  Alcotest.(check int) "no transforms" 0 r1.VM.Gc.transformed_objects;
  ignore (VM.Gc.collect vm);
  Alcotest.(check string) "after two GCs" before (signature vm roots)

let gc_preserves_graph_qcheck =
  QCheck.Test.make ~name:"GC preserves random object graphs" ~count:25
    QCheck.(pair (int_range 1 300) (int_range 0 10_000))
    (fun (n, seed) ->
      let vm = fresh_vm () in
      let roots = build_graph vm n seed in
      let before = signature vm roots in
      ignore (VM.Gc.collect vm);
      String.equal before (signature vm roots))

let gc_reclaims_garbage () =
  let vm = fresh_vm () in
  let cls = node_cls vm in
  (* allocate unreachable objects *)
  for _ = 1 to 1000 do
    ignore (VM.State.alloc_object vm cls)
  done;
  let used_before = VM.Heap.words_used vm.VM.State.heap in
  ignore (VM.Gc.collect vm);
  let used_after = VM.Heap.words_used vm.VM.State.heap in
  Alcotest.(check bool) "reclaimed" true (used_after < used_before / 10)

let gc_rewrites_thread_roots () =
  (* a local variable holding a reference must still point at the moved
     object after collection *)
  let vm =
    Helpers.run_source ~rounds:30
      {|
class Box { int v; }
class Main {
  static void main() {
    Box b = new Box();
    b.v = 99;
    int i = 0;
    while (i < 2000) { String s = "x" + i; i = i + 1; }
    Sys.println("v=" + b.v);
  }
}
|}
  in
  let stats = VM.Vm.stats vm in
  Alcotest.(check bool) "collected at least once" true
    (stats.VM.Vm.gc_count >= 0);
  if not (Helpers.contains (VM.Vm.output vm) "v=99") then
    Alcotest.fail "reference broken across GC"

(* --- transforming collection ---------------------------------------------------- *)

let transform_plan_log () =
  let vm = fresh_vm () in
  let cls = node_cls vm in
  (* a second class to transmute into, with one extra field *)
  let wide =
    VM.Rt.install_class vm.VM.State.reg
      ~defn:
        {
          CF.Cls.c_name = "WideNode";
          c_super = CF.Types.object_class;
          c_fields =
            [
              { CF.Cls.fd_name = "tag"; fd_ty = CF.Types.TInt;
                fd_access = CF.Access.make () };
              { CF.Cls.fd_name = "left"; fd_ty = CF.Types.TRef "WideNode";
                fd_access = CF.Access.make () };
              { CF.Cls.fd_name = "right"; fd_ty = CF.Types.TRef "WideNode";
                fd_access = CF.Access.make () };
              { CF.Cls.fd_name = "extra"; fd_ty = CF.Types.TInt;
                fd_access = CF.Access.make () };
            ];
          c_methods = [];
        }
      ~alloc_static:(fun () -> VM.State.alloc_jtoc_slot vm)
      ~replace:false
  in
  let roots = build_graph vm 50 7 in
  let plan = Hashtbl.create 4 in
  Hashtbl.replace plan cls.VM.Rt.cid wide.VM.Rt.cid;
  let r = VM.Gc.collect ~plan vm in
  Alcotest.(check int) "all 50 transformed" 50 r.VM.Gc.transformed_objects;
  Alcotest.(check int) "log has 50 pairs" 100
    (Array.length r.VM.Gc.update_log);
  (* every root now points at a zeroed new-class object; the old copies in
     the log still carry the data *)
  Array.iter
    (fun w ->
      let a = VM.Value.to_ref w in
      Alcotest.(check int) "new class" wide.VM.Rt.cid
        (VM.Heap.class_id vm.VM.State.heap a);
      Alcotest.(check int) "fields zeroed" 0 (get_field vm a 0))
    roots;
  for i = 0 to (Array.length r.VM.Gc.update_log / 2) - 1 do
    (* the log holds encoded reference words *)
    let old_copy = VM.Value.to_ref r.VM.Gc.update_log.(2 * i) in
    let nw = VM.Value.to_ref r.VM.Gc.update_log.((2 * i) + 1) in
    Alcotest.(check int) "old copy keeps class" cls.VM.Rt.cid
      (VM.Heap.class_id vm.VM.State.heap old_copy);
    Alcotest.(check int) "pair linked" wide.VM.Rt.cid
      (VM.Heap.class_id vm.VM.State.heap nw);
    (* old copies' reference fields were forwarded to the NEW versions *)
    let l = get_field vm old_copy 1 in
    if VM.Value.is_ref l then
      Alcotest.(check int) "old field points at transformed peer"
        wide.VM.Rt.cid
        (VM.Heap.class_id vm.VM.State.heap (VM.Value.to_ref l))
  done

let heap_exhaustion () =
  let vm = fresh_vm ~heap_words:256 () in
  let cls = node_cls vm in
  (* keep everything alive via extra roots so the collection cannot help *)
  let keep = Array.make 64 0 in
  vm.VM.State.extra_roots <- [ keep ];
  match
    for i = 0 to 63 do
      keep.(i) <- VM.Value.of_ref (VM.State.alloc_object vm cls)
    done
  with
  | () -> Alcotest.fail "expected out-of-memory"
  | exception VM.State.Vm_fatal msg ->
      if not (Helpers.contains msg "out of memory") then
        Alcotest.failf "unexpected fatal: %s" msg

(* --- mixed-epoch collection ---------------------------------------------------

   During a lazy update window the heap holds objects of two epochs plus
   the window's own bookkeeping (lazy-forward markers, pristine-copy
   tags), and allocation does not stop.  A collection in that state must
   preserve every epoch tag verbatim, forward objects of both epochs,
   chase lazy-forward markers out of every surviving reference, and keep
   copy tags on retained copies. *)
let mixed_epoch_collection () =
  let vm = fresh_vm () in
  let cls = node_cls vm in
  let heap = vm.VM.State.heap in
  let gcw a = VM.Heap.get heap ~addr:a ~off:VM.Heap.off_gc in
  (* two objects born before the epoch bump, one after *)
  let old1 = VM.State.alloc_object vm cls in
  let old2 = VM.State.alloc_object vm cls in
  heap.VM.Heap.epoch <- 7;
  let fresh = VM.State.alloc_object vm cls in
  Alcotest.(check int) "pre-bump tag" 0 (gcw old1);
  Alcotest.(check int) "post-bump tag" 7 (gcw fresh);
  set_field vm old1 0 (VM.Value.of_int 1);
  set_field vm old2 0 (VM.Value.of_int 2);
  set_field vm fresh 0 (VM.Value.of_int 3);
  (* cross-epoch edges both ways *)
  set_field vm fresh 1 (VM.Value.of_ref old1);
  set_field vm old1 1 (VM.Value.of_ref fresh);
  set_field vm old1 2 (VM.Value.of_ref old2);
  (* old2 has been lazily transformed: its replacement is current-epoch,
     the original carries a forward marker, the pristine copy its tag *)
  let repl = VM.State.alloc_object vm cls in
  set_field vm repl 0 (VM.Value.of_int 99);
  let copy = VM.State.alloc_object vm cls in
  set_field vm copy 0 (VM.Value.of_int 2);
  VM.Heap.set heap ~addr:copy ~off:VM.Heap.off_gc
    (VM.Heap.make_copy_tag (gcw old2));
  VM.Heap.set heap ~addr:old2 ~off:VM.Heap.off_gc
    (VM.Heap.make_lazy_fwd repl);
  let roots =
    [|
      VM.Value.of_ref old1;
      VM.Value.of_ref fresh;
      VM.Value.of_ref copy;
      VM.Value.of_ref old2 (* a root that still aims at the marker *);
    |]
  in
  vm.VM.State.extra_roots <- [ roots ];
  ignore (VM.Gc.collect vm);
  let old1' = VM.Value.to_ref roots.(0) in
  let fresh' = VM.Value.to_ref roots.(1) in
  let copy' = VM.Value.to_ref roots.(2) in
  let via_marker = VM.Value.to_ref roots.(3) in
  (* epoch tags survive the copy verbatim, for both epochs *)
  Alcotest.(check int) "old epoch tag preserved" 0 (gcw old1');
  Alcotest.(check int) "new epoch tag preserved" 7 (gcw fresh');
  (* values and cross-epoch edges intact *)
  Alcotest.(check int) "old payload" 1 (VM.Value.to_int (get_field vm old1' 0));
  Alcotest.(check int) "new payload" 3
    (VM.Value.to_int (get_field vm fresh' 0));
  Alcotest.(check int) "new->old edge" old1'
    (VM.Value.to_ref (get_field vm fresh' 1));
  Alcotest.(check int) "old->new edge" fresh'
    (VM.Value.to_ref (get_field vm old1' 1));
  (* every route to the marked object now lands on its replacement: the
     collection chased the marker out of the field and the root alike *)
  Alcotest.(check int) "field chased to replacement" 99
    (VM.Value.to_int (get_field vm (VM.Value.to_ref (get_field vm old1' 2)) 0));
  Alcotest.(check int) "root chased to replacement" 99
    (VM.Value.to_int (get_field vm via_marker 0));
  Alcotest.(check int) "replacement is current-epoch" 7 (gcw via_marker);
  (* the retained pristine copy keeps its tag (and the epoch under it) *)
  Alcotest.(check bool) "copy tag preserved" true
    (VM.Heap.is_copy_tag (gcw copy'));
  Alcotest.(check int) "copy tag epoch" 0
    (VM.Heap.copy_tag_epoch (gcw copy'));
  (* no marker survived the collection anywhere in the heap *)
  let scan = ref 1 in
  let markers = ref 0 in
  while !scan < heap.VM.Heap.free do
    let addr = !scan in
    let c = VM.Rt.class_by_id vm.VM.State.reg (VM.Heap.class_id heap addr) in
    let size =
      if c.VM.Rt.is_array then
        VM.Heap.array_header_words + VM.Heap.array_length heap addr
      else c.VM.Rt.size_words
    in
    if VM.Heap.is_lazy_fwd (gcw addr) then incr markers;
    scan := addr + size
  done;
  Alcotest.(check int) "zero surviving markers" 0 !markers

let suite =
  [
    Alcotest.test_case "value encoding" `Quick encoding_basics;
    QCheck_alcotest.to_alcotest encoding_qcheck;
    QCheck_alcotest.to_alcotest ref_qcheck;
    Alcotest.test_case "object layout" `Quick object_layout;
    Alcotest.test_case "array layout" `Quick array_layout;
    Alcotest.test_case "string objects" `Quick string_objects;
    Alcotest.test_case "gc preserves graph" `Quick gc_preserves_graph;
    QCheck_alcotest.to_alcotest gc_preserves_graph_qcheck;
    Alcotest.test_case "gc reclaims garbage" `Quick gc_reclaims_garbage;
    Alcotest.test_case "gc rewrites thread roots" `Quick
      gc_rewrites_thread_roots;
    Alcotest.test_case "transform plan and update log" `Quick
      transform_plan_log;
    Alcotest.test_case "mixed-epoch collection" `Quick mixed_epoch_collection;
    Alcotest.test_case "heap exhaustion" `Quick heap_exhaustion;
  ]
