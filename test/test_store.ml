(* ministore: the stateful workload's schema-migration ladder.

   Every rung is a representation change (field split, index re-key,
   value re-encoding) with a custom forward transformer and a custom
   inverse, so these tests check the property the connection-oriented
   apps never exercise: the *data* survives — migrate-then-inverse must
   restore every record value bit-for-bit, and a guard revert of a
   committed migration must leave the store answering exactly as before
   the update. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module Simnet = Jv_simnet.Simnet

let store = A.Experience.store_desc

let boot ~version = A.Experience.boot_version store ~version

let compile ~version =
  Jv_lang.Compile.compile_program (A.Patching.source A.Ministore.app ~version)

let spec_for ~from_version ~to_version =
  A.Common.spec
    ~overrides:(A.Ministore.overrides ~to_version)
    ~version_tag:(A.Common.version_tag from_version)
    ~old_program:(compile ~version:from_version)
    ~new_program:(compile ~version:to_version)
    ()

let ladder = [ ("1.0", "1.1"); ("1.1", "1.2"); ("1.2", "1.3") ]

(* Drive one client session against the in-VM server: send each line,
   run scheduler rounds until its response arrives, return all responses
   in order. *)
let session vm lines : string list =
  let net = vm.VM.State.net in
  match Simnet.connect net ~port:A.Ministore.port with
  | None -> Alcotest.fail "ministore: connect refused"
  | Some cid ->
      let recv_one sent =
        let resp = ref None in
        let budget = ref 500 in
        while !resp = None && !budget > 0 do
          VM.Vm.run vm ~rounds:1;
          decr budget;
          match Simnet.client_recv net ~conn_id:cid with
          | `Line l -> resp := Some l
          | `Eof -> Alcotest.failf "ministore: EOF awaiting reply to %S" sent
          | `Wait -> ()
        done;
        match !resp with
        | Some l -> l
        | None -> Alcotest.failf "ministore: no reply to %S" sent
      in
      let resps =
        List.map
          (fun line ->
            Simnet.client_send net ~conn_id:cid line;
            recv_one line)
          lines
      in
      Simnet.client_close net ~conn_id:cid;
      Simnet.reap net ~conn_id:cid;
      resps

(* The dropped update log leaves the superseded old copies physically in
   the heap until the next collection reclaims them (gc.ml); collect
   first so the verifier sees the steady state. *)
let verify_green vm label =
  ignore (VM.Gc.collect vm : VM.Gc.result);
  let r = VM.Heapverify.run vm in
  Alcotest.(check bool) label true r.VM.Heapverify.hv_ok

let apply vm spec label =
  let h = J.Jvolve.update_now ~timeout_rounds:400 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ -> ()
  | o ->
      Alcotest.failf "%s did not apply: %s" label
        (J.Jvolve.outcome_to_string o));
  h

(* --- the ladder applies end to end under load --------------------------- *)

(* Walk 1.0 -> 1.1 -> 1.2 -> 1.3 on ONE VM under continuous load: each
   migration transforms the live store (seed records + index pages), the
   server keeps answering, and the heap verifies between rungs — the
   mixed-schema states the verifier must accept are exactly the renamed
   old copies in each retained update log. *)
let ladder_walks_under_load () =
  let vm = boot ~version:"1.0" in
  let w =
    A.Workload.attach vm ~port:A.Ministore.port
      ~script:A.Workload.store_script ~ok:A.Workload.store_ok ~concurrency:3
      ()
  in
  VM.Vm.run vm ~rounds:60;
  List.iter
    (fun (from_v, to_v) ->
      let before = w.A.Workload.completed_requests in
      let h = apply vm (spec_for ~from_version:from_v ~to_version:to_v)
          (Printf.sprintf "ministore %s->%s" from_v to_v) in
      ignore h;
      VM.Vm.run vm ~rounds:120;
      verify_green vm (Printf.sprintf "heap green after %s->%s" from_v to_v);
      Alcotest.(check bool)
        (Printf.sprintf "still serving after %s->%s" from_v to_v)
        true
        (w.A.Workload.completed_requests > before))
    ladder;
  (* the whole ladder ran against live traffic without a protocol error
     or a severed session *)
  Alcotest.(check int) "protocol errors" 0 w.A.Workload.errors;
  Alcotest.(check int) "dropped connections" 0 w.A.Workload.dropped;
  (* and the store now runs the final schema *)
  match session vm [ "STAT"; "GET 1000"; "QUIT" ] with
  | [ stat; g; _ ] ->
      Alcotest.(check bool) "STAT reports 1.3" true
        (Helpers.contains stat "v=1.3");
      Alcotest.(check string) "seed record survived three migrations"
        "+OK rec 1000 m=65536 v=seed-0" g
  | other ->
      Alcotest.failf "unexpected session shape (%d lines)" (List.length other)

(* --- migrate-then-inverse restores values bit-for-bit ------------------- *)

let gen_records =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (triple (int_range 0 99_999)
         (int_range 0 ((1 lsl 30) - 1))
         (string_size (int_range 1 10) ~gen:(char_range 'a' 'z'))))

let arb_records =
  QCheck.make
    ~print:
      (QCheck.Print.list
         (QCheck.Print.triple string_of_int string_of_int Fun.id))
    gen_records

(* For every rung: seed a fresh store over the wire, apply the forward
   migration, then apply its inverse ([Spec.inverse] — the same spec a
   guard trip would use), and check every record's rendered value — key,
   meta word, payload — and the page index come back identical.  The
   inverse transformers recompute the old representation from live state,
   so the values must match exactly, not default-map. *)
let inverse_roundtrip_prop records =
  List.for_all
    (fun (from_v, to_v) ->
      let vm = boot ~version:from_v in
      let puts =
        List.map
          (fun (k, m, p) -> Printf.sprintf "PUT %d %d %s" k m p)
          records
      in
      ignore (session vm (puts @ [ "QUIT" ]));
      let reads =
        List.map (fun (k, _, _) -> Printf.sprintf "GET %d" k) records
        @ [ "SCAN 0"; "STAT"; "QUIT" ]
      in
      let before = session vm reads in
      let spec = spec_for ~from_version:from_v ~to_version:to_v in
      ignore (apply vm spec (Printf.sprintf "forward %s->%s" from_v to_v));
      verify_green vm "heap green after forward migration";
      ignore
        (apply vm (J.Spec.inverse spec)
           (Printf.sprintf "inverse %s->%s" to_v from_v));
      verify_green vm "heap green after inverse migration";
      let after = session vm reads in
      if before <> after then
        Alcotest.failf "%s->%s->%s changed state:\n  before: %s\n  after:  %s"
          from_v to_v from_v
          (String.concat " | " before)
          (String.concat " | " after);
      true)
    ladder

let inverse_roundtrip =
  QCheck.Test.make
    ~name:"migrate-then-inverse restores record values bit-for-bit" ~count:4
    arb_records inverse_roundtrip_prop

(* --- guard auto-revert of a committed migration under load -------------- *)

(* Commit the 1.0 -> 1.1 field split under live traffic with a guard
   window open, trip the window, and check the automatic inverse update
   put every packed meta word back — including the session-written record
   — with zero dropped connections and a green heap. *)
let guard_revert_restores_store () =
  let vm = boot ~version:"1.0" in
  let w =
    A.Workload.attach vm ~port:A.Ministore.port
      ~script:A.Workload.store_script ~ok:A.Workload.store_ok ~concurrency:3
      ()
  in
  VM.Vm.run vm ~rounds:60;
  let reads = [ "GET 1000"; "GET 1013"; "GET 5"; "SCAN 0"; "QUIT" ] in
  let before = session vm reads in
  let spec = spec_for ~from_version:"1.0" ~to_version:"1.1" in
  let h =
    J.Jvolve.update_now ~timeout_rounds:400 ~guard:(J.Guard.config ()) vm
      spec
  in
  Alcotest.(check bool) "migration committed" true (J.Jvolve.succeeded h);
  (* mutate the store inside the window: in-window writes go through the
     1.1 schema and must survive the revert via the inverse transformer *)
  let in_window = session vm [ "PUT 77 131075 window-write"; "QUIT" ] in
  Alcotest.(check (list string)) "in-window write accepted" [ "+OK put 77"; "+OK bye" ]
    in_window;
  J.Jvolve.force_trip vm h ~reason:"test: coordinated revert";
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Reverted _ -> ()
  | o ->
      Alcotest.failf "expected a revert, got %s"
        (J.Jvolve.outcome_to_string o));
  VM.Vm.run vm ~rounds:120;
  Alcotest.(check bool) "retained log freed" true
    (vm.VM.State.guard_retained = None);
  verify_green vm "heap green after guard revert";
  Alcotest.(check int) "dropped connections" 0 w.A.Workload.dropped;
  let after = session vm reads in
  Alcotest.(check (list string))
    "store answers exactly as before the migration" before after;
  (* the in-window record survived the revert with its 1.1-written value
     re-packed into the 1.0 meta word (131075 = 2<<16 | 3) *)
  match session vm [ "GET 77"; "STAT"; "QUIT" ] with
  | [ g; stat; _ ] ->
      Alcotest.(check string) "in-window record re-packed"
        "+OK rec 77 m=131075 v=window-write" g;
      Alcotest.(check bool) "STAT reports 1.0 again" true
        (Helpers.contains stat "v=1.0")
  | other ->
      Alcotest.failf "unexpected session shape (%d lines)" (List.length other)

let suite =
  [
    Alcotest.test_case "ladder walks under load, heap green" `Quick
      ladder_walks_under_load;
    QCheck_alcotest.to_alcotest inverse_roundtrip;
    Alcotest.test_case "guard revert restores the store" `Quick
      guard_revert_restores_store;
  ]
