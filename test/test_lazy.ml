(* The lazy update window (lib/core/updater, lazy section): epoch-tagged
   heap, read-barrier transformation, background sweeper, and the
   whole-window rollback when a residual transformer traps.

   The fixture is a deliberately tiny program: one changed class ([Box])
   with a known instance count, one *unchanged* reader method that
   touches every instance per iteration, so barrier-once and
   chase-vs-retransform behaviour are exactly countable — and so a
   window rollback always finds the running thread parked in an
   unrestricted frame. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module Faults = Jv_faults.Faults
module Obs = Jv_obs.Obs
module Simnet = Jv_simnet.Simnet

let n_boxes = 50

(* the reader only touches the first [hot] boxes: the rest are cold,
   reachable only by the background sweeper *)
let hot_sum hot = hot * (hot - 1) / 2

let boxes_src ~hot ~extra =
  Printf.sprintf
    {|
class Box { int a; %s}
class Keeper { static Box[] all; }
class Reader {
  static int sum() {
    int s = 0;
    for (int i = 0; i < %d; i = i + 1) { s = s + Keeper.all[i].a; }
    return s;
  }
}
class Main {
  static void main() {
    Keeper.all = new Box[%d];
    for (int i = 0; i < %d; i = i + 1) {
      Box b = new Box();
      b.a = i;
      Keeper.all[i] = b;
    }
    for (int j = 0; j < 100000; j = j + 1) {
      Sys.println("s=" + Reader.sum());
      Thread.yieldNow();
    }
  }
}
|}
    (if extra then "int b; " else "")
    hot n_boxes n_boxes

let lazy_config ?(budget = 64) () =
  {
    Helpers.test_config with
    VM.State.lazy_update = true;
    VM.State.lazy_sweep_budget = budget;
  }

let boot_boxes ?(hot = n_boxes) ~config () =
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm
    (Jv_lang.Compile.compile_program (boxes_src ~hot ~extra:false));
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:5;
  vm

let boxes_spec ?(hot = n_boxes) () =
  J.Spec.make ~version_tag:"lz"
    ~old_program:
      (Jv_lang.Compile.compile_program (boxes_src ~hot ~extra:false))
    ~new_program:(Jv_lang.Compile.compile_program (boxes_src ~hot ~extra:true))
    ()

let apply_lazy ?hot vm =
  let h = J.Jvolve.update_now ~timeout_rounds:100 vm (boxes_spec ?hot ()) in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied _ -> ()
  | o ->
      Alcotest.failf "lazy update did not apply: %s"
        (J.Jvolve.outcome_to_string o));
  h

let lazy_info vm =
  match vm.VM.State.lazy_info with
  | Some li -> li
  | None -> Alcotest.fail "lazy window closed earlier than the test expects"

(* Count heap words whose gc slot still carries lazy machinery: forward
   markers or pristine-copy tags.  Zero residue is the post-drain (and
   post-rollback) steady state. *)
let residue_count vm =
  let heap = vm.VM.State.heap in
  let reg = vm.VM.State.reg in
  let n = ref 0 in
  let scan = ref 1 in
  while !scan < heap.VM.Heap.free do
    let addr = !scan in
    let cls = VM.Rt.class_by_id reg (VM.Heap.class_id heap addr) in
    let size =
      if cls.VM.Rt.is_array then
        VM.Heap.array_header_words + VM.Heap.array_length heap addr
      else cls.VM.Rt.size_words
    in
    let gcw = VM.Heap.get heap ~addr ~off:VM.Heap.off_gc in
    if VM.Heap.is_lazy_fwd gcw || VM.Heap.is_copy_tag gcw then incr n;
    scan := addr + size
  done;
  !n

let drain vm =
  match vm.VM.State.lazy_drain with
  | Some d -> d vm
  | None -> true

let check_clean vm label =
  Alcotest.(check int) (label ^ ": zero lazy residue") 0 (residue_count vm);
  let r = VM.Heapverify.run vm in
  Alcotest.(check bool) (label ^ ": heap verifies") true r.VM.Heapverify.hv_ok

(* --- the commit is metadata-only; the barrier transforms exactly once --- *)

let barrier_fires_once () =
  (* budget 1: the sweeper crawls, so the reader's accesses dominate and
     the window demonstrably stays open across many iterations *)
  let vm = boot_boxes ~config:(lazy_config ~budget:1 ()) () in
  let h = apply_lazy vm in
  ignore h;
  Alcotest.(check bool) "window open after commit" true
    (vm.VM.State.lazy_info <> None);
  (* several full passes of Reader.sum over all 50 boxes *)
  VM.Vm.run vm ~rounds:30;
  let li = lazy_info vm in
  Alcotest.(check bool) "barrier transformed something" true
    (li.VM.State.li_barrier_hits > 0);
  (* exactly-once: every access after the first chases a forward marker
     instead of re-transforming, so the count never exceeds the number
     of Box instances no matter how often the reader loops *)
  Alcotest.(check bool)
    (Printf.sprintf "transforms (%d) bounded by instances (%d)"
       li.VM.State.li_transformed n_boxes)
    true
    (li.VM.State.li_transformed <= n_boxes);
  let b1 = li.VM.State.li_barrier_hits in
  let t1 = li.VM.State.li_transformed in
  let s1 = li.VM.State.li_swept in
  VM.Vm.run vm ~rounds:30;
  let li = lazy_info vm in
  (* all reader-reachable boxes were transformed in the first passes:
     every later transform is the sweeper's, never a barrier re-fire *)
  Alcotest.(check int) "no barrier re-transform on re-access" b1
    li.VM.State.li_barrier_hits;
  Alcotest.(check int) "later transforms all come from the sweeper"
    (li.VM.State.li_transformed - t1)
    (li.VM.State.li_swept - s1);
  Alcotest.(check bool) "re-accesses chase forward markers" true
    (li.VM.State.li_chases > 0);
  (* the program never observed a torn heap *)
  let out = VM.Vm.output vm in
  String.split_on_char '\n' (String.trim out)
  |> List.iter (fun l ->
         if l <> "" && l <> Printf.sprintf "s=%d" (hot_sum n_boxes) then
           Alcotest.failf "reader saw a wrong sum: %S" l);
  (* drain the remainder synchronously and check steady state *)
  Alcotest.(check bool) "drain completes" true (drain vm);
  Alcotest.(check bool) "window closed" true (vm.VM.State.lazy_info = None);
  check_clean vm "after drain"

(* --- the background sweeper alone reaches quiescence -------------------- *)

let sweeper_converges () =
  let vm = boot_boxes ~config:(lazy_config ~budget:128 ()) () in
  ignore (apply_lazy vm);
  (* no help from the drain hook: scheduler rounds only *)
  let budget = ref 3000 in
  while vm.VM.State.lazy_info <> None && !budget > 0 do
    VM.Vm.run vm ~rounds:1;
    decr budget
  done;
  Alcotest.(check bool) "sweeper drained the window" true
    (vm.VM.State.lazy_info = None);
  Alcotest.(check int) "one window drained" 1
    (Obs.counter_value vm.VM.State.obs "core.lazy.drained");
  Alcotest.(check int) "no rollback" 0
    (Obs.counter_value vm.VM.State.obs "core.lazy.rollbacks");
  (* the finalize collection already chased every marker *)
  check_clean vm "after sweeper quiescence";
  (* every Box instance went through its transformer exactly once *)
  match Obs.find_histogram vm.VM.State.obs "core.lazy.transformed" with
  | None -> Alcotest.fail "core.lazy.transformed not recorded"
  | Some hist ->
      Alcotest.(check int) "all boxes transformed exactly once" n_boxes
        (int_of_float (Jv_obs.Metrics.hist_max hist))

(* --- a residual transformer trap rolls the whole window back ------------ *)

let residual_trap_rolls_back () =
  (* half the boxes are cold: only the crawling sweeper (budget 1)
     reaches them, so arming the trap after the hot set has migrated
     guarantees the failure lands on a genuinely half-transformed heap *)
  let hot = 25 in
  let vm = boot_boxes ~hot ~config:(lazy_config ~budget:1 ()) () in
  ignore (apply_lazy ~hot vm);
  VM.Vm.run vm ~rounds:10;
  let li = lazy_info vm in
  Alcotest.(check bool) "hot set migrated, cold set pending" true
    (li.VM.State.li_transformed >= hot && li.VM.State.li_transformed < n_boxes);
  (* arm a one-shot transformer trap: the next transform — a sweeper
     visit to a cold box — fails, which must abort the whole window *)
  let plan = Faults.create ~seed:11 () in
  Faults.arm plan ~point:"transformer.throw" ~max_fires:1 Faults.Raise;
  VM.Vm.set_faults vm (Some plan);
  let budget = ref 3000 in
  while vm.VM.State.lazy_info <> None && !budget > 0 do
    VM.Vm.run vm ~rounds:1;
    decr budget
  done;
  VM.Vm.set_faults vm None;
  Alcotest.(check bool) "window resolved" true (vm.VM.State.lazy_info = None);
  Alcotest.(check int) "rolled back, not drained" 1
    (Obs.counter_value vm.VM.State.obs "core.lazy.rollbacks");
  Alcotest.(check int) "no drain" 0
    (Obs.counter_value vm.VM.State.obs "core.lazy.drained");
  check_clean vm "after rollback";
  (* the old version is demonstrably serving again, values intact: let
     the reader run on and require every line (including those printed
     mid-window against the half-transformed heap) to show the seeded
     sum *)
  VM.Vm.run vm ~rounds:40;
  let lines =
    String.split_on_char '\n' (String.trim (VM.Vm.output vm))
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "reader kept printing" true (List.length lines > 20);
  List.iter
    (fun l ->
      if l <> Printf.sprintf "s=%d" (hot_sum hot) then
        Alcotest.failf "wrong sum after rollback: %S" l)
    lines;
  (* the metadata snapshot restored exactly: a fresh update of the same
     spec applies cleanly on top *)
  let vm_ok =
    let h = J.Jvolve.update_now ~timeout_rounds:100 vm (boxes_spec ~hot ()) in
    match h.J.Jvolve.h_outcome with
    | J.Jvolve.Applied _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "same spec re-applies after rollback" true vm_ok

(* --- guard revert over a half-transformed ministore heap ---------------- *)

let store = A.Experience.store_desc

let store_config =
  {
    A.Experience.default_config with
    VM.State.lazy_update = true;
    VM.State.lazy_sweep_budget = 4;
  }

let store_spec ~from_version ~to_version =
  A.Common.spec
    ~overrides:(A.Ministore.overrides ~to_version)
    ~version_tag:(A.Common.version_tag from_version)
    ~old_program:
      (Jv_lang.Compile.compile_program
         (A.Patching.source A.Ministore.app ~version:from_version))
    ~new_program:
      (Jv_lang.Compile.compile_program
         (A.Patching.source A.Ministore.app ~version:to_version))
    ()

let session vm lines : string list =
  let net = vm.VM.State.net in
  match Simnet.connect net ~port:A.Ministore.port with
  | None -> Alcotest.fail "ministore: connect refused"
  | Some cid ->
      let recv_one sent =
        let resp = ref None in
        let budget = ref 500 in
        while !resp = None && !budget > 0 do
          VM.Vm.run vm ~rounds:1;
          decr budget;
          match Simnet.client_recv net ~conn_id:cid with
          | `Line l -> resp := Some l
          | `Eof -> Alcotest.failf "ministore: EOF awaiting reply to %S" sent
          | `Wait -> ()
        done;
        match !resp with
        | Some l -> l
        | None -> Alcotest.failf "ministore: no reply to %S" sent
      in
      let resps =
        List.map
          (fun line ->
            Simnet.client_send net ~conn_id:cid line;
            recv_one line)
          lines
      in
      Simnet.client_close net ~conn_id:cid;
      Simnet.reap net ~conn_id:cid;
      resps

(* A guarded lazy migration trips while the heap is still mixed-epoch:
   the revert must first force the residual transforms (so the inverse
   update sees a uniformly new-layout heap), then restore every record
   bit-for-bit. *)
let guard_revert_half_transformed () =
  let vm = A.Experience.boot_version ~config:store_config store ~version:"1.0" in
  let reads = [ "GET 1000"; "GET 1013"; "GET 5"; "SCAN 0"; "STAT"; "QUIT" ] in
  let before = session vm reads in
  let spec = store_spec ~from_version:"1.0" ~to_version:"1.1" in
  let h =
    J.Jvolve.update_now ~timeout_rounds:400 ~guard:(J.Guard.config ()) vm spec
  in
  Alcotest.(check bool) "migration committed" true (J.Jvolve.succeeded h);
  (* touch a couple of records so part of the heap migrates, then trip
     while the sweeper (budget 4) is still far from done *)
  ignore (session vm [ "GET 1000"; "GET 5"; "QUIT" ]);
  Alcotest.(check bool) "window still open at the trip" true
    (vm.VM.State.lazy_info <> None);
  J.Jvolve.force_trip vm h ~reason:"test: trip over mixed-epoch heap";
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Reverted _ -> ()
  | o ->
      Alcotest.failf "expected a revert, got %s"
        (J.Jvolve.outcome_to_string o));
  VM.Vm.run vm ~rounds:120;
  Alcotest.(check bool) "lazy window resolved by the revert" true
    (vm.VM.State.lazy_info = None);
  Alcotest.(check bool) "retained log freed" true
    (vm.VM.State.guard_retained = None);
  ignore (VM.Gc.collect vm : VM.Gc.result);
  check_clean vm "after guard revert";
  let after = session vm reads in
  Alcotest.(check (list string))
    "store answers bit-for-bit as before the migration" before after

let suite =
  [
    Alcotest.test_case "lazy barrier transforms exactly once" `Quick
      barrier_fires_once;
    Alcotest.test_case "sweeper converges to quiescence" `Quick
      sweeper_converges;
    Alcotest.test_case "residual transformer trap rolls the window back"
      `Quick residual_trap_rolls_back;
    Alcotest.test_case "guard revert over a half-transformed heap" `Quick
      guard_revert_half_transformed;
  ]
