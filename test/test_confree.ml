(* Directed tests for the static con-freeness analysis (lib/core/confree).

   Each case builds a two-version program pair, runs [Confree.analyze] on
   the spec, and checks the verdict (and its machine-checkable reason)
   for one particular method:

   - identical body in a class that only gains an appended field
   - "renumber-only" change: the class gains a method, which historically
     renumbers the constant pool; the symbolic ISA makes the untouched
     body structurally equal, so it stays provable
   - a body reading a field whose word offset shifts -> restricted
   - a body calling into a layout-updated class -> restricted
   - a blacklist pin shadowing a proof: the pin wins at the safe point
     and admission surfaces the conflict
   - mutually recursive changed bodies prove each other (the greatest
     fixpoint keeps clean cycles proven) *)

module CF = Jv_classfile
module VM = Jv_vm
module J = Jvolve_core

let compile = Jv_lang.Compile.compile_program

let mref_of program cname mname : J.Diff.mref =
  let p = CF.Cls.program_of_list program in
  match CF.Cls.find_class p cname with
  | None -> Alcotest.failf "no class %s" cname
  | Some c -> (
      match
        List.find_opt
          (fun (m : CF.Cls.meth) -> String.equal m.CF.Cls.md_name mname)
          c.CF.Cls.c_methods
      with
      | None -> Alcotest.failf "no method %s.%s" cname mname
      | Some m ->
          {
            J.Diff.r_class = cname;
            r_name = m.CF.Cls.md_name;
            r_sig = m.CF.Cls.md_sig;
          })

let spec_of ?blacklist v1 v2 =
  let old_program = compile v1 and new_program = compile v2 in
  (J.Spec.make ?blacklist ~version_tag:"1" ~old_program ~new_program (),
   old_program)

let verdict_of spec old_program cname mname =
  let t = J.Confree.analyze spec in
  match J.Confree.find t (mref_of old_program cname mname) with
  | Some r -> r
  | None ->
      Alcotest.failf "%s.%s is not in the changed-method universe" cname mname

let check_verdict what expected (r : J.Confree.result) =
  if r.J.Confree.cr_verdict <> expected then
    Alcotest.failf "%s: expected %s, got %s" what
      (J.Confree.verdict_to_string expected)
      (J.Confree.result_to_string r)

(* --- 1. identical body, appended field ------------------------------------ *)

let identical_body () =
  let v1 =
    {|
class Box { int a; int b; int get() { return a + b; } }
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  let v2 =
    {|
class Box { int a; int b; int c; int get() { return a + b; } }
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  let spec, oldp = spec_of v1 v2 in
  let r = verdict_of spec oldp "Box" "get" in
  check_verdict "appended field, untouched body" J.Confree.Identical r;
  (match r.J.Confree.cr_reason with
  | J.Confree.R_bytecode_identical n when n > 0 -> ()
  | _ ->
      Alcotest.failf "expected stable-resolution count, got %s"
        (J.Confree.result_to_string r))

(* --- 2. renumber-only: an added method leaves the body provable ----------- *)

let renumber_only () =
  let v1 =
    {|
class Box { int a; int get() { return a; } }
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  (* adding twice() renumbers the class's constant pool and method table;
     get() itself is untouched and its burned resolutions are stable *)
  let v2 =
    {|
class Box {
  int a;
  int get() { return a; }
  int twice() { return a * 2; }
}
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  let spec, oldp = spec_of v1 v2 in
  check_verdict "added sibling method" J.Confree.Identical
    (verdict_of spec oldp "Box" "get")

(* --- 3. field whose offset shifts ----------------------------------------- *)

let field_offset_shift () =
  let v1 =
    {|
class Box { int a; int get() { return a; } }
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  (* pad is *prepended*, shifting a's word offset: the old body's burned
     offset is wrong in the new world *)
  let v2 =
    {|
class Box { int pad; int a; int get() { return a; } }
class Main { static void main() { Sys.println("" + new Box().get()); } }
|}
  in
  let spec, oldp = spec_of v1 v2 in
  let r = verdict_of spec oldp "Box" "get" in
  check_verdict "prepended field" J.Confree.Restricted r;
  (match r.J.Confree.cr_reason with
  | J.Confree.R_field_unstable _ -> ()
  | _ ->
      Alcotest.failf "expected a field-unstable reason, got %s"
        (J.Confree.result_to_string r))

(* --- 4. call into a layout-updated class ---------------------------------- *)

let call_into_changed () =
  let v1 =
    {|
class Data { int x; static int make() { return 7; } }
class Caller { int use() { return Data.make(); } }
class Main { static void main() { Sys.println("" + new Caller().use()); } }
|}
  in
  (* Data's layout changes (appended field), so every Data method's uid is
     invalidated at commit; Caller.use's body also changes so it enters
     the universe — and its burned Data.make uid sinks it *)
  let v2 =
    {|
class Data { int x; int y; static int make() { return 7; } }
class Caller { int use() { return Data.make() + 0; } }
class Main { static void main() { Sys.println("" + new Caller().use()); } }
|}
  in
  let spec, oldp = spec_of v1 v2 in
  let r = verdict_of spec oldp "Caller" "use" in
  check_verdict "call into updated class" J.Confree.Restricted r;
  (match r.J.Confree.cr_reason with
  | J.Confree.R_callee_restricted _ -> ()
  | _ ->
      Alcotest.failf "expected a callee-restricted reason, got %s"
        (J.Confree.result_to_string r))

(* --- 5. blacklist overrides a proof ---------------------------------------- *)

let spinner_v1 =
  {|
class Worker {
  int n;
  void run() { while (true) { n = n + 1; Thread.yieldNow(); } }
}
class Main { static void main() { Thread.spawn(new Worker()); } }
|}

let spinner_v2 =
  {|
class Worker {
  int n;
  void run() { while (true) { n = n + 2; Thread.yieldNow(); } }
}
class Main { static void main() { Thread.spawn(new Worker()); } }
|}

let blacklist_overrides_proof () =
  let old_program = compile spinner_v1 in
  let blacklist = [ mref_of old_program "Worker" "run" ] in
  let spec, oldp = spec_of ~blacklist spinner_v1 spinner_v2 in
  (* the analysis itself still proves the body compatible... *)
  let r = verdict_of spec oldp "Worker" "run" in
  check_verdict "provable body" J.Confree.Compatible r;
  (* ...and reports the pin shadowing the proof *)
  let t = J.Confree.analyze spec in
  (match J.Confree.shadowed_by_blacklist t spec with
  | [ s ] when J.Diff.mref_to_string s.J.Confree.cr_ref = "Worker.run()V" -> ()
  | l -> Alcotest.failf "expected Worker.run shadowed, got %d entries"
           (List.length l));
  (* end to end: with run() pinned and always on stack, the update still
     aborts even though the analysis is on *)
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:10;
  let h = J.Jvolve.update_now ~timeout_rounds:50 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      let e = J.Updater.abort_to_string a in
      if not (Helpers.contains e "Worker.run") then
        Alcotest.failf "abort does not name the pinned frame: %s" e;
      if not (Helpers.contains e "blacklisted (overrides its compatible proof)")
      then Alcotest.failf "abort does not explain the shadowed proof: %s" e
  | o ->
      Alcotest.failf "pinned update should abort, got %s"
        (J.Jvolve.outcome_to_string o))

(* --- 6. mutually recursive clean cycle ------------------------------------- *)

let fixpoint_cycle () =
  let v1 =
    {|
class M {
  int f(int n) { if (n < 1) { return 0; } return g(n - 1); }
  int g(int n) { if (n < 1) { return 1; } return f(n - 1); }
}
class Main { static void main() { Sys.println("" + new M().f(5)); } }
|}
  in
  (* both bodies change, each calls the other: the optimistic fixpoint
     must keep the clean cycle proven instead of demoting both *)
  let v2 =
    {|
class M {
  int f(int n) { if (n < 1) { return 5; } return g(n - 1); }
  int g(int n) { if (n < 1) { return 6; } return f(n - 1); }
}
class Main { static void main() { Sys.println("" + new M().f(5)); } }
|}
  in
  let spec, oldp = spec_of v1 v2 in
  check_verdict "cycle member f" J.Confree.Compatible
    (verdict_of spec oldp "M" "f");
  check_verdict "cycle member g" J.Confree.Compatible
    (verdict_of spec oldp "M" "g")

(* --- 7. the proof set certifies (audit) ------------------------------------ *)

let audit_certifies () =
  let spec, _ = spec_of spinner_v1 spinner_v2 in
  let t = J.Confree.analyze spec in
  Alcotest.(check (list string)) "audit is clean" [] (J.Confree.audit t spec)

let suite =
  [
    Alcotest.test_case "identical body, appended field" `Quick identical_body;
    Alcotest.test_case "renumber-only change stays provable" `Quick
      renumber_only;
    Alcotest.test_case "shifted field offset restricts" `Quick
      field_offset_shift;
    Alcotest.test_case "call into updated class restricts" `Quick
      call_into_changed;
    Alcotest.test_case "blacklist overrides a proof" `Quick
      blacklist_overrides_proof;
    Alcotest.test_case "mutually recursive cycle stays proven" `Quick
      fixpoint_cycle;
    Alcotest.test_case "proof set certifies under audit" `Quick
      audit_certifies;
  ]
