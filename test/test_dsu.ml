(* End-to-end dynamic software updating tests: the heart of the repo.
   Each test boots version 1 of a program, runs it, applies an update to
   version 2 through the full Jvolve pipeline (UPT diff -> transformer
   generation -> safe point -> GC transform), and checks behaviour. *)

module VM = Jv_vm
module J = Jvolve_core

let compile src = Jv_lang.Compile.compile_program src

(* Boot v1, run [warmup] rounds, request the update, drive to resolution,
   then run [cooldown] more rounds.  Returns (vm, handle). *)
let run_update ?(config = Helpers.test_config) ?(warmup = 10)
    ?(cooldown = 200) ?(timeout_rounds = 300) ?object_overrides
    ?class_overrides ?blacklist ?transformer_src ~tag ~v1 ~v2 () =
  let old_program = compile v1 in
  let new_program = compile v2 in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm old_program;
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:warmup;
  let spec =
    J.Spec.make ?object_overrides ?class_overrides ?blacklist
      ~transformer_src ~version_tag:tag ~old_program ~new_program ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds vm spec in
  ignore (VM.Vm.run_to_quiescence ~max_rounds:cooldown vm);
  (vm, h)

let check_applied (h : J.Jvolve.handle) =
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t -> t
  | o -> Alcotest.failf "update did not apply: %s" (J.Jvolve.outcome_to_string o)

let check_aborted (h : J.Jvolve.handle) ~substr =
  match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      let e = J.Updater.abort_to_string a in
      if not (Helpers.contains e substr) then
        Alcotest.failf "abort reason %S does not mention %S" e substr
  | o -> Alcotest.failf "expected abort, got %s" (J.Jvolve.outcome_to_string o)

(* --- 1. method body update ----------------------------------------------- *)

let greeter v =
  Printf.sprintf
    {|
class Greeter { String greet() { return "%s"; } }
class Main {
  static void main() {
    Greeter g = new Greeter();
    for (int i = 0; i < 40; i = i + 1) {
      Sys.println(g.greet());
      Thread.yieldNow();
    }
  }
}
|}
    v

let body_update () =
  let vm, h = run_update ~tag:"1" ~v1:(greeter "v1") ~v2:(greeter "v2") () in
  ignore (check_applied h);
  let out = VM.Vm.output vm in
  if not (Helpers.contains out "v1\n") then Alcotest.fail "no v1 output";
  if not (Helpers.contains out "v2\n") then Alcotest.fail "no v2 output";
  (* after the update no v1 line may follow a v2 line *)
  let last_v1 = ref (-1) and first_v2 = ref max_int in
  String.split_on_char '\n' out
  |> List.iteri (fun i line ->
         if line = "v1" then last_v1 := i
         else if line = "v2" && i < !first_v2 then first_v2 := i);
  if !last_v1 > !first_v2 then
    Alcotest.fail "old code ran after the update"

(* --- 2. field addition with default transformer -------------------------- *)

let box_v1 =
  {|
class Box {
  int a; int b;
  int sum() { return a + b; }
}
class Keeper {
  static Box box;
}
class Main {
  static void main() {
    Keeper.box = new Box();
    Keeper.box.a = 7;
    Keeper.box.b = 9;
    for (int i = 0; i < 60; i = i + 1) {
      Sys.println("sum=" + Keeper.box.sum());
      Thread.yieldNow();
    }
  }
}
|}

let box_v2 =
  {|
class Box {
  int a; int b; int c;
  int sum() { return a + b + c + 100; }
}
class Keeper {
  static Box box;
}
class Main {
  static void main() {
    Keeper.box = new Box();
    Keeper.box.a = 7;
    Keeper.box.b = 9;
    for (int i = 0; i < 60; i = i + 1) {
      Sys.println("sum=" + Keeper.box.sum());
      Thread.yieldNow();
    }
  }
}
|}

let field_addition () =
  let vm, h = run_update ~tag:"2" ~v1:box_v1 ~v2:box_v2 () in
  let t = check_applied h in
  (* the one Box instance must have been transformed *)
  if t.J.Updater.u_transformed_objects < 1 then
    Alcotest.fail "no objects transformed";
  let out = VM.Vm.output vm in
  (* old fields preserved (7 + 9), new field defaults to 0, new body: +100 *)
  if not (Helpers.contains out "sum=16\n") then
    Alcotest.fail "old behaviour missing before update";
  if not (Helpers.contains out "sum=116\n") then
    Alcotest.failf "new behaviour missing after update: %s" out

(* --- 3. the paper's running example (Figures 2 and 3) --------------------- *)

(* Main.main is identical in both versions (it only mentions stable
   classes), so the running loop never blocks the update; all changes live
   in User / ConfigurationManager / Printer, exactly like the paper's
   example where the server loop survives while User instances change. *)
let mail_main =
  {|
class Registry { static User current; }
class Main {
  static void main() {
    Registry.current = ConfigurationManager.loadUser();
    for (int i = 0; i < 60; i = i + 1) {
      Sys.println(Printer.describe());
      Thread.yieldNow();
    }
  }
}
|}

let mail_v1 =
  {|
class User {
  String username; String domain; String password;
  String[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new String[0];
  }
  String[] getForwardedAddresses() { return forwardAddresses; }
  void setForwardedAddresses(String[] f) { forwardAddresses = f; }
}
class ConfigurationManager {
  static User loadUser() {
    User user = new User("alice", "example.com", "pw");
    String[] f = new String[2];
    f[0] = "bob@dest.org";
    f[1] = "carol@other.net";
    user.setForwardedAddresses(f);
    return user;
  }
}
class Printer {
  static String describe() {
    User u = Registry.current;
    return u.username + " fwd:" + u.getForwardedAddresses().length;
  }
}
|}
  ^ mail_main

let mail_v2 =
  {|
class EmailAddress {
  String user; String host;
  EmailAddress(String u, String h) { user = u; host = h; }
  String render() { return user + "@" + host; }
}
class User {
  String username; String domain; String password;
  EmailAddress[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new EmailAddress[0];
  }
  EmailAddress[] getForwardedAddresses() { return forwardAddresses; }
  void setForwardedAddresses(EmailAddress[] f) { forwardAddresses = f; }
}
class ConfigurationManager {
  static User loadUser() {
    User user = new User("alice", "example.com", "pw");
    EmailAddress[] f = new EmailAddress[2];
    f[0] = new EmailAddress("bob", "dest.org");
    f[1] = new EmailAddress("carol", "other.net");
    user.setForwardedAddresses(f);
    return user;
  }
}
class Printer {
  static String describe() {
    User u = Registry.current;
    EmailAddress[] f = u.getForwardedAddresses();
    String line = u.username + " fwd:" + f.length;
    for (int j = 0; j < f.length; j = j + 1) { line = line + " " + f[j].render(); }
    return line;
  }
}
|}
  ^ mail_main

(* the customized transformer from the paper's Figure 3 *)
let user_transformer_body =
  {|
    to.username = from.username;
    to.domain = from.domain;
    to.password = from.password;
    int len = from.forwardAddresses.length;
    to.forwardAddresses = new EmailAddress[len];
    for (int i = 0; i < len; i = i + 1) {
      String[] parts = from.forwardAddresses[i].split("@", 2);
      to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
    }
|}

let paper_example () =
  let vm, h =
    run_update ~tag:"131"
      ~object_overrides:[ ("User", user_transformer_body) ]
      ~v1:mail_v1 ~v2:mail_v2 ()
  in
  let t = check_applied h in
  if t.J.Updater.u_transformed_objects < 1 then
    Alcotest.fail "User object not transformed";
  let out = VM.Vm.output vm in
  if not (Helpers.contains out "alice fwd:2\n") then
    Alcotest.failf "v1 behaviour missing: %s" out;
  (* after the update, the forwarded addresses must have been rebuilt as
     EmailAddress objects from the old strings *)
  if not (Helpers.contains out "alice fwd:2 bob@dest.org carol@other.net") then
    Alcotest.failf "custom transformer output missing: %s" out

(* with the *default* transformer the changed-type field resets to null,
   exactly like the paper's default (to.forwardAddresses = null) *)
let paper_example_default_transformer () =
  let vm, h = run_update ~tag:"131" ~v1:mail_v1 ~v2:mail_v2 () in
  ignore (check_applied h);
  (* the loop dereferences f.length on the null array -> the thread traps *)
  let stats = VM.Vm.stats vm in
  match stats.VM.Vm.traps with
  | [] ->
      (* main may also have finished its loop before dereferencing *)
      let out = VM.Vm.output vm in
      if Helpers.contains out "bob@dest.org" then
        Alcotest.fail "default transformer should not rebuild addresses"
  | (_, msg) :: _ ->
      if not (Helpers.contains msg "null dereference") then
        Alcotest.failf "unexpected trap: %s" msg

(* --- 4. infinite loop blocks the update (paper §4.2, Jetty 5.1.3) --------- *)

let spinner_v1 =
  {|
class Worker {
  int n;
  void run() {
    while (true) { n = n + 1; Thread.yieldNow(); }
  }
}
class Main {
  static void main() { Thread.spawn(new Worker()); }
}
|}

let spinner_v2 =
  {|
class Worker {
  int n;
  void run() {
    while (true) { n = n + 2; Thread.yieldNow(); }
  }
}
class Main {
  static void main() { Thread.spawn(new Worker()); }
}
|}

let infinite_loop_blocks () =
  (* con-freeness would prove this body-only change compatible and skip
     the barrier entirely; this test pins the barrier machinery itself,
     so run it with the analysis off *)
  let _vm, h =
    run_update
      ~config:{ Helpers.test_config with VM.State.confree = false }
      ~tag:"3" ~timeout_rounds:50 ~cooldown:10 ~v1:spinner_v1 ~v2:spinner_v2 ()
  in
  check_aborted h ~substr:"Worker.run";
  (* a return barrier was installed on the stuck frame *)
  if h.J.Jvolve.h_barriers_installed < 1 then
    Alcotest.fail "expected a return barrier installation"

(* the same spinner with the con-freeness analysis on: the changed body
   touches only its own (unchanged-layout) field, so the analysis proves
   it compatible and the update lands first attempt, no barrier *)
let infinite_loop_proven_compatible () =
  let _vm, h =
    run_update ~tag:"3" ~timeout_rounds:50 ~cooldown:10 ~v1:spinner_v1
      ~v2:spinner_v2 ()
  in
  ignore (check_applied h);
  if h.J.Jvolve.h_attempts <> 1 then
    Alcotest.failf "expected first-attempt success, took %d"
      h.J.Jvolve.h_attempts;
  if h.J.Jvolve.h_barriers_installed <> 0 then
    Alcotest.fail "no barrier should be needed under a con-freeness proof"

(* --- 5. return barrier lets the update through ----------------------------- *)

let barrier_v1 =
  {|
class Task {
  int work() {
    int acc = 0;
    for (int i = 0; i < 200; i = i + 1) { acc = acc + i; Thread.yieldNow(); }
    return acc;
  }
}
class Main {
  static void main() {
    Task t = new Task();
    Sys.println("a=" + t.work());
    Sys.println("b=" + t.work());
  }
}
|}

let barrier_v2 =
  {|
class Task {
  int work() {
    int acc = 1000000;
    for (int i = 0; i < 200; i = i + 1) { acc = acc + i; Thread.yieldNow(); }
    return acc;
  }
}
class Main {
  static void main() {
    Task t = new Task();
    Sys.println("a=" + t.work());
    Sys.println("b=" + t.work());
  }
}
|}

let return_barrier_applies () =
  (* request while work() (a changed method) is on stack: Jvolve must
     install a return barrier and apply the update when work() returns.
     Run with con-freeness off — the analysis would prove this body-only
     change compatible and bypass the barrier this test pins. *)
  let vm, h =
    run_update
      ~config:{ Helpers.test_config with VM.State.confree = false }
      ~tag:"4" ~warmup:20 ~cooldown:600 ~timeout_rounds:500 ~v1:barrier_v1
      ~v2:barrier_v2 ()
  in
  ignore (check_applied h);
  if h.J.Jvolve.h_barriers_installed < 1 then
    Alcotest.fail "expected a return barrier";
  let out = VM.Vm.output vm in
  (* first call ran old code, second ran new code *)
  if not (Helpers.contains out "a=19900\n") then
    Alcotest.failf "old result missing: %s" out;
  if not (Helpers.contains out "b=1019900\n") then
    Alcotest.failf "new result missing: %s" out

(* --- 6. OSR lifts category-(2) restrictions -------------------------------- *)

let osr_v1 =
  {|
class Data { int x; }
class Registry { static Data d; }
class Main {
  static void main() {
    Registry.d = new Data();
    Registry.d.x = 5;
    for (int i = 0; i < 80; i = i + 1) {
      Sys.println("x=" + Registry.d.x);
      Thread.yieldNow();
    }
  }
}
|}

(* Data gains a field before x, shifting x's offset: Main.main is an
   indirect (category-2) method that is permanently on stack -> only OSR
   can make this update applicable *)
let osr_v2 =
  {|
class Data { int pad0; int pad1; int x; }
class Registry { static Data d; }
class Main {
  static void main() {
    Registry.d = new Data();
    Registry.d.x = 5;
    for (int i = 0; i < 80; i = i + 1) {
      Sys.println("x=" + Registry.d.x);
      Thread.yieldNow();
    }
  }
}
|}

let osr_lifts_category2 () =
  let vm, h = run_update ~tag:"5" ~v1:osr_v1 ~v2:osr_v2 () in
  let t = check_applied h in
  if t.J.Updater.u_osr < 1 then Alcotest.fail "expected an OSR replacement";
  let out = VM.Vm.output vm in
  (* x keeps its value 5 across the layout change: printed before and after *)
  String.split_on_char '\n' out
  |> List.iter (fun l -> if l <> "" && l <> "x=5" then
                  Alcotest.failf "wrong line %S (offset bug?)" l)

(* --- 7. class addition and deletion ---------------------------------------- *)

(* Main calls through the stable dispatcher Calc; the v2 Calc delegates to
   a brand-new class while the old Helper disappears. *)
let adddel_main =
  {|
class Main {
  static void main() {
    for (int i = 0; i < 40; i = i + 1) {
      Sys.println("r=" + Calc.apply(i));
      Thread.yieldNow();
    }
  }
}
|}

let adddel_v1 =
  {|
class Helper { static int calc(int n) { return n * 2; } }
class Calc { static int apply(int n) { return Helper.calc(n); } }
|}
  ^ adddel_main

let adddel_v2 =
  {|
class NewMath { static int triple(int n) { return n * 3; } }
class Calc { static int apply(int n) { return NewMath.triple(n); } }
|}
  ^ adddel_main

let class_add_delete () =
  let vm, h = run_update ~tag:"6" ~v1:adddel_v1 ~v2:adddel_v2 () in
  ignore (check_applied h);
  let d = h.J.Jvolve.h_prepared.J.Transformers.p_spec.J.Spec.diff in
  Alcotest.(check (list string)) "added" [ "NewMath" ] d.J.Diff.added_classes;
  Alcotest.(check (list string)) "deleted" [ "Helper" ] d.J.Diff.deleted_classes;
  let out = VM.Vm.output vm in
  if not (Helpers.contains out "r=2\n") then Alcotest.fail "v1 output missing";
  (* after update, values triple: r=3i for some i not a multiple pattern of
     doubling; look for an odd triple like r=33 (i=11) or r=39 *)
  let has_triple =
    List.exists
      (fun i -> Helpers.contains out (Printf.sprintf "r=%d\n" (3 * i)))
      [ 11; 13; 17; 19; 21; 23; 25 ]
  in
  if not has_triple then Alcotest.failf "v2 output missing: %s" out

(* --- 8. static field carry-over -------------------------------------------- *)

(* Stats is a class update (new static field); Main.main is identical in
   both versions but references Stats, making it a category-(2) method that
   gets OSR'd. *)
let statics_main =
  {|
class Main {
  static void main() {
    for (int i = 0; i < 60; i = i + 1) {
      Stats.bump();
      Sys.println(Report.line());
      Thread.yieldNow();
    }
  }
}
|}

let statics_v1 =
  {|
class Stats {
  static int served = 0;
  static String motd = "hello";
  static void bump() { served = served + 1; }
}
class Report {
  static String line() { return "served=" + Stats.served + " motd=" + Stats.motd; }
}
|}
  ^ statics_main

let statics_v2 =
  {|
class Stats {
  static int served = 0;
  static String motd = "hello";
  static int errors = 0;
  static void bump() { served = served + 1; }
}
class Report {
  static String line() {
    return "served=" + Stats.served + " motd=" + Stats.motd
      + " errors=" + Stats.errors;
  }
}
|}
  ^ statics_main

let statics_carry_over () =
  let vm, h = run_update ~tag:"7" ~v1:statics_v1 ~v2:statics_v2 () in
  ignore (check_applied h);
  let out = VM.Vm.output vm in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  (* counters must be strictly increasing across the update: no reset *)
  let values =
    List.map
      (fun l ->
        match String.index_opt l ' ' with
        | Some sp -> int_of_string (String.sub l 7 (sp - 7))
        | None -> -1)
      lines
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  if not (monotone values) then
    Alcotest.failf "served counter reset across update: %s" out;
  if not (Helpers.contains out "errors=0") then
    Alcotest.fail "new static missing"

(* --- 9. blacklisted methods (category 3) ----------------------------------- *)

let forever_greeter v =
  Printf.sprintf
    {|
class Greeter { String greet() { return "%s"; } }
class Main {
  static void main() {
    Greeter g = new Greeter();
    while (true) { Sys.print(g.greet()); Thread.yieldNow(); }
  }
}
|}
    v

let blacklist_blocks () =
  (* Main.main is NOT restricted by the diff (only Greeter.greet changed),
     so the update applies even though main never exits... *)
  let _vm, h0 =
    run_update ~tag:"8a" ~timeout_rounds:40 ~cooldown:10
      ~v1:(forever_greeter "v1") ~v2:(forever_greeter "v2") ()
  in
  ignore (check_applied h0);
  (* ...but blacklisting main (category 3, version consistency) makes the
     very same update time out *)
  let _vm, h =
    run_update ~tag:"8b" ~timeout_rounds:40 ~cooldown:10
      ~blacklist:
        [
          {
            J.Diff.r_class = "Main";
            r_name = "main";
            r_sig =
              { Jv_classfile.Types.params = []; ret = Jv_classfile.Types.TVoid };
          };
        ]
      ~v1:(forever_greeter "v1") ~v2:(forever_greeter "v2") ()
  in
  check_aborted h ~substr:"Main.main"

(* --- 10. transformer cycle detection ---------------------------------------- *)

(* [wiring] controls the peer graph: symmetric for the cycle test,
   acyclic for the well-founded forced-transform test. *)
let node_prog ~extra_field ~wiring =
  Printf.sprintf
    {|
class Node {
  int tag;%s
  Node peer;
}
class Registry { static Node a; }
class Main {
  static void main() {
    Node a = new Node(); Node b = new Node();
    a.tag = 1; b.tag = 2;
    a.peer = b;
    %s
    Registry.a = a;
    for (int i = 0; i < 60; i = i + 1) { Thread.yieldNow(); }
  }
}
|}
    (if extra_field then " int extra;" else "")
    wiring

(* an ill-defined transformer that force-transforms its peer, which in turn
   force-transforms it back: must be detected and abort the update *)
let cyclic_transformer_body =
  {|
    if (from.peer != null) { Jvolve.transform(from.peer); }
    to.tag = from.tag;
    to.peer = from.peer;
    to.extra = 0;
|}

let cycle_detection () =
  let _vm, h =
    run_update ~tag:"9" ~cooldown:10
      ~object_overrides:[ ("Node", cyclic_transformer_body) ]
      ~v1:(node_prog ~extra_field:false ~wiring:"b.peer = a;")
      ~v2:(node_prog ~extra_field:true ~wiring:"b.peer = a;")
      ()
  in
  check_aborted h ~substr:"cyclic"

(* a well-founded use of Jvolve.transform (paper §3.4): force the referent's
   transformer, then read the *transformed* referent's new field *)
let forced_transform_ok () =
  let order_body =
    {|
    to.tag = from.tag;
    to.peer = from.peer;
    if (from.peer != null) {
      Jvolve.transform(from.peer);
      to.extra = from.peer.extra * 100 + from.tag * 10;
    } else {
      to.extra = from.tag * 10;
    }
|}
  in
  let vm, h =
    run_update ~tag:"10"
      ~object_overrides:[ ("Node", order_body) ]
      ~v1:(node_prog ~extra_field:false ~wiring:"")
      ~v2:(node_prog ~extra_field:true ~wiring:"")
      ()
  in
  let t = check_applied h in
  Alcotest.(check bool) "transformed both nodes" true
    (t.J.Updater.u_transformed_objects >= 2);
  ignore vm

(* --- 11. diff statistics ----------------------------------------------------- *)

let diff_stats () =
  let old_program = compile mail_v1 in
  let new_program = compile mail_v2 in
  let d = J.Diff.compute ~old_program ~new_program in
  Alcotest.(check (list string)) "added" [ "EmailAddress" ] d.J.Diff.added_classes;
  Alcotest.(check (list string)) "deleted" [] d.J.Diff.deleted_classes;
  (* User's field and method types changed -> class update;
     ConfigurationManager.loadUser only changed its body -> but it
     references User (class update), so it is indirect; actually its
     bytecode changed too (new EmailAddress[...]) -> body update *)
  Alcotest.(check bool) "User is a class update" true
    (List.mem "User" d.J.Diff.class_updates);
  Alcotest.(check bool) "no method-body-only support" false
    (J.Diff.method_body_only_supported d);
  let d2 =
    J.Diff.compute ~old_program:(compile (greeter "v1"))
      ~new_program:(compile (greeter "v2"))
  in
  Alcotest.(check bool) "greeter is body-only" true
    (J.Diff.method_body_only_supported d2)

let suite =
  [
    Alcotest.test_case "method body update" `Quick body_update;
    Alcotest.test_case "field addition (default transformer)" `Quick
      field_addition;
    Alcotest.test_case "paper example (custom transformer)" `Quick
      paper_example;
    Alcotest.test_case "paper example (default transformer)" `Quick
      paper_example_default_transformer;
    Alcotest.test_case "infinite loop blocks update" `Quick
      infinite_loop_blocks;
    Alcotest.test_case "infinite loop proven compatible" `Quick
      infinite_loop_proven_compatible;
    Alcotest.test_case "return barrier applies update" `Quick
      return_barrier_applies;
    Alcotest.test_case "OSR lifts category 2" `Quick osr_lifts_category2;
    Alcotest.test_case "class add and delete" `Quick class_add_delete;
    Alcotest.test_case "statics carry over" `Quick statics_carry_over;
    Alcotest.test_case "blacklist (category 3)" `Quick blacklist_blocks;
    Alcotest.test_case "transformer cycle detection" `Quick cycle_detection;
    Alcotest.test_case "forced transform ok" `Quick forced_transform_ok;
    Alcotest.test_case "diff statistics" `Quick diff_stats;
  ]
