(* Fleet orchestration: rolling and canary DSU rollouts across a
   load-balanced multi-VM cluster, with health checks and automatic
   rollback (lib/fleet). *)

module F = Jv_fleet
module J = Jvolve_core
module Apps = Jv_apps

(* small per-instance heap: fleets boot several VMs per test *)
let fleet_config =
  { Jv_vm.State.default_config with Jv_vm.State.heap_words = 1 lsl 18 }

let boot_under_load ?(policy = F.Lb.Round_robin) ?(size = 4)
    ?(version = "5.1.1") ?(profile = F.Profile.miniweb) () =
  let fleet =
    F.Fleet.create ~config:fleet_config ~policy ~profile ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  ignore (F.Fleet.attach_load ~concurrency:6 fleet);
  F.Fleet.run fleet ~rounds:100;
  fleet

let rolling_params ?(update_timeout = 200) ?(batch_size = 1) () =
  {
    (F.Orchestrator.default_params (F.Orchestrator.Rolling { batch_size })) with
    F.Orchestrator.update_timeout;
  }

(* No proxied connection left behind: once the drivers are detached and
   the routes settle, every balancer backend must be back to zero live
   connections. *)
let check_no_leaked_conns fleet =
  F.Fleet.detach_loads fleet;
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check int)
    "no leaked balancer connections" 0
    (F.Lb.total_in_flight (F.Fleet.lb fleet))

let blacklist_accept_loop =
  [
    {
      J.Diff.r_class = "ThreadedServer";
      r_name = "run";
      r_sig = { Jv_classfile.Types.params = []; ret = Jv_classfile.Types.TVoid };
    };
  ]

(* --- rolling ----------------------------------------------------------- *)

let test_rolling_happy_path () =
  let fleet = boot_under_load ~size:4 () in
  let r =
    F.Orchestrator.run ~params:(rolling_params ()) ~fleet ~to_version:"5.1.2"
      ()
  in
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check bool) "rollout ok" true r.F.Orchestrator.r_ok;
  Alcotest.(check (list int)) "all updated" [ 0; 1; 2; 3 ]
    r.F.Orchestrator.r_updated;
  Alcotest.(check (option string)) "uniform on new version" (Some "5.1.2")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet);
  Alcotest.(check bool) "served traffic" true (F.Fleet.total_requests fleet > 0);
  Alcotest.(check bool) "mixed window bounded by rollout" true
    (r.F.Orchestrator.r_mixed_window <= r.F.Orchestrator.r_rounds);
  check_no_leaked_conns fleet

let test_rolling_least_conns_batch2 () =
  let fleet = boot_under_load ~policy:F.Lb.Least_conns ~size:5 () in
  let r =
    F.Orchestrator.run
      ~params:(rolling_params ~batch_size:2 ())
      ~fleet ~to_version:"5.1.2" ()
  in
  Alcotest.(check bool) "rollout ok" true r.F.Orchestrator.r_ok;
  Alcotest.(check (option string)) "uniform on new version" (Some "5.1.2")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet);
  check_no_leaked_conns fleet

(* --- canary ------------------------------------------------------------ *)

let test_canary_promotion () =
  let fleet = boot_under_load ~size:4 ~version:"5.1.1" () in
  let params =
    {
      (F.Orchestrator.default_params
         (F.Orchestrator.Canary
            { canaries = 1; observe_rounds = 150; promote_batch = 1 }))
      with
      F.Orchestrator.update_timeout = 200;
    }
  in
  let r = F.Orchestrator.run ~params ~fleet ~to_version:"5.1.2" () in
  Alcotest.(check bool) "rollout ok" true r.F.Orchestrator.r_ok;
  Alcotest.(check (option string)) "promoted everywhere" (Some "5.1.2")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet);
  (* the observation window dominates the rollout *)
  Alcotest.(check bool) "observed before promoting" true
    (r.F.Orchestrator.r_rounds >= 150);
  check_no_leaked_conns fleet

(* --- rollback ---------------------------------------------------------- *)

(* An update abort mid-rollout (instance 2's safe point never arrives:
   its accept loop is blacklisted) halts the rollout and reverts the
   instances already updated. *)
let test_rollback_on_update_abort () =
  let fleet = boot_under_load ~size:4 () in
  let mutate_spec id spec =
    if id = 2 then { spec with J.Spec.blacklist = blacklist_accept_loop }
    else spec
  in
  let r =
    F.Orchestrator.run ~mutate_spec
      ~params:(rolling_params ~update_timeout:120 ())
      ~fleet ~to_version:"5.1.2" ()
  in
  Alcotest.(check bool) "rollout halted" false r.F.Orchestrator.r_ok;
  Alcotest.(check bool) "halt reason recorded" true
    (r.F.Orchestrator.r_halted <> None);
  Alcotest.(check (list int)) "aborted on the poisoned instance" [ 2 ]
    (List.map fst r.F.Orchestrator.r_aborted);
  Alcotest.(check (list int)) "earlier instances reverted" [ 0; 1 ]
    r.F.Orchestrator.r_rolled_back;
  Alcotest.(check (list int)) "nobody left updated" []
    r.F.Orchestrator.r_updated;
  Alcotest.(check (option string)) "fleet back on the old version"
    (Some "5.1.1")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet);
  check_no_leaked_conns fleet

(* A new version that applies cleanly but answers the health probe with
   an error never rejoins the pool: the failed probe rolls it back. *)
let test_rollback_on_failed_health_check () =
  let profile = F.Profile.miniweb in
  let fleet = boot_under_load ~profile ~size:3 () in
  let sick_program =
    let src = F.Profile.source profile ~version:"5.1.2" in
    let healthy = {|new HttpResponse(200, "OK", "text/plain", "healthy")|} in
    let sick = {|new HttpResponse(503, "Unavailable", "text/plain", "sick")|} in
    Jv_lang.Compile.compile_program
      (Apps.Patching.replace_once src ~old_frag:healthy ~new_frag:sick)
  in
  let mutate_spec id spec =
    if id = 0 then
      J.Spec.make
        ~version_tag:spec.J.Spec.version_tag
        ~old_program:spec.J.Spec.old_program ~new_program:sick_program ()
    else spec
  in
  let params =
    {
      (rolling_params ~update_timeout:200 ()) with
      F.Orchestrator.probe_deadline = 40;
    }
  in
  let r =
    F.Orchestrator.run ~mutate_spec ~params ~fleet ~to_version:"5.1.2" ()
  in
  Alcotest.(check bool) "rollout halted" false r.F.Orchestrator.r_ok;
  Alcotest.(check (list int)) "sick instance flagged unhealthy" [ 0 ]
    (List.map fst r.F.Orchestrator.r_unhealthy);
  Alcotest.(check (list int)) "sick instance rolled back" [ 0 ]
    r.F.Orchestrator.r_rolled_back;
  Alcotest.(check (option string)) "fleet back on the old version"
    (Some "5.1.1")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no instance out of service" 0
    (List.length r.F.Orchestrator.r_rollback_failed);
  check_no_leaked_conns fleet

(* --- health probes across apps ----------------------------------------- *)

let test_health_probes_all_apps () =
  List.iter
    (fun (profile : F.Profile.t) ->
      let version = List.hd (F.Profile.versions profile) in
      let fleet =
        F.Fleet.create ~config:fleet_config ~profile ~version ~size:1 ()
      in
      F.Fleet.run fleet ~rounds:30;
      let inst = F.Fleet.instance fleet 0 in
      let probe =
        F.Health.start
          ~net:(F.Instance.net inst)
          ~port:inst.F.Instance.i_port ~line:profile.F.Profile.pr_health_probe
          ~ok:profile.F.Profile.pr_health_ok ~now:(F.Fleet.ticks fleet)
          ~deadline_rounds:60
      in
      let rec drive n =
        F.Fleet.round fleet;
        F.Health.step probe ~now:(F.Fleet.ticks fleet);
        match F.Health.outcome probe with
        | F.Health.Pending when n > 0 -> drive (n - 1)
        | o -> o
      in
      match drive 80 with
      | F.Health.Healthy _ -> ()
      | F.Health.Pending -> Alcotest.failf "%s: probe still pending" profile.F.Profile.pr_name
      | F.Health.Unhealthy why ->
          Alcotest.failf "%s: probe unhealthy: %s" profile.F.Profile.pr_name why)
    F.Profile.all

(* --- lossy links must not wedge the closed-loop driver ------------------ *)

(* With [net.link=drop] armed on the instance nets, a forwarded request
   (or its response) silently vanishes on the LB-to-backend leg and the
   closed-loop session awaiting it would otherwise hang forever — by the
   time every conn slot has hit a lost line, the driver wedges at zero
   progress and a chaos run never terminates.  The driver's request
   timeout must keep recycling those sessions: progress in every window,
   timeouts actually observed, and nothing leaked once the link heals. *)
let test_driver_survives_lossy_links () =
  let fleet =
    F.Fleet.create ~config:fleet_config ~profile:F.Profile.miniweb
      ~version:"5.1.1" ~size:3 ()
  in
  F.Fleet.run fleet ~rounds:30;
  let d = F.Fleet.attach_load ~concurrency:6 ~request_timeout:40 fleet in
  F.Fleet.run fleet ~rounds:60;
  let chaos =
    match Jv_faults.Faults.parse ~seed:7 "net.link=drop@0.15" with
    | Ok p -> p
    | Error e -> failwith e
  in
  F.Fleet.set_faults fleet (Some chaos);
  let stalled = ref 0 in
  for _ = 1 to 5 do
    let before = d.F.Driver.completed_sessions in
    F.Fleet.run fleet ~rounds:150;
    if d.F.Driver.completed_sessions = before then incr stalled
  done;
  Alcotest.(check int) "sessions completed in every chaos window" 0 !stalled;
  Alcotest.(check bool) "lost lines were timed out, not awaited forever" true
    (d.F.Driver.timed_out_requests > 0);
  (* fault-induced loss is not an update-window sever: the zero-drop SLO
     counter stays untouched by the chaos *)
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet);
  F.Fleet.set_faults fleet None;
  F.Fleet.run fleet ~rounds:60;
  check_no_leaked_conns fleet

(* --- property: completed rollouts converge ----------------------------- *)

(* Whatever the fleet size, policy and batching, a completed rolling
   rollout leaves every instance on the same version and the balancer
   with zero leaked drained connections. *)
let prop_rollout_converges =
  QCheck.Test.make ~name:"completed rollout converges, nothing leaks"
    ~count:6
    QCheck.(
      triple (int_range 2 4) (int_range 1 3) bool)
    (fun (size, batch_size, least_conns) ->
      (* the stock int shrinker can wander outside int_range: clamp *)
      let size = max 2 (min 4 size) in
      let batch_size = max 1 (min 3 batch_size) in
      let policy = if least_conns then F.Lb.Least_conns else F.Lb.Round_robin in
      let fleet = boot_under_load ~policy ~size () in
      let r =
        F.Orchestrator.run
          ~params:(rolling_params ~batch_size ())
          ~fleet ~to_version:"5.1.2" ()
      in
      F.Fleet.run fleet ~rounds:30;
      let uniform = F.Fleet.uniform_version fleet = Some "5.1.2" in
      let dropped = F.Fleet.dropped_in_flight fleet in
      F.Fleet.detach_loads fleet;
      F.Fleet.run fleet ~rounds:30;
      let leaked = F.Lb.total_in_flight (F.Fleet.lb fleet) in
      if not r.F.Orchestrator.r_ok then
        QCheck.Test.fail_reportf "rollout not ok (size %d batch %d)" size
          batch_size;
      if not uniform then
        QCheck.Test.fail_reportf "fleet not uniform on 5.1.2";
      if dropped <> 0 then
        QCheck.Test.fail_reportf "%d dropped in-flight connections" dropped;
      if leaked <> 0 then
        QCheck.Test.fail_reportf "%d leaked balancer connections" leaked;
      true)

let suite =
  [
    Alcotest.test_case "rolling: happy path, zero drops" `Quick
      test_rolling_happy_path;
    Alcotest.test_case "rolling: least-conns, batch 2" `Quick
      test_rolling_least_conns_batch2;
    Alcotest.test_case "canary: observed then promoted" `Quick
      test_canary_promotion;
    Alcotest.test_case "rollback: update abort mid-rollout" `Quick
      test_rollback_on_update_abort;
    Alcotest.test_case "rollback: failed health check" `Quick
      test_rollback_on_failed_health_check;
    Alcotest.test_case "health probes answer on every app" `Quick
      test_health_probes_all_apps;
    Alcotest.test_case "lossy links do not wedge the driver" `Quick
      test_driver_survives_lossy_links;
    QCheck_alcotest.to_alcotest prop_rollout_converges;
  ]
