(* The post-commit guard window (lib/core/guard): error-budget trips on
   every signal, automatic in-VM reverts replaying the retained update
   log, roll-forward to a typed abort when the revert itself faults, and
   the fleet-wide fenced revert when a canary trips its guard. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps
module F = Jv_fleet
module Simnet = Jv_simnet.Simnet
module Faults = Jv_faults.Faults

(* A long-running main that keeps printing the state of one heap object:
   the forward update adds a field and changes the printed prefix, so
   both the code swap and the revert are visible in the output. *)
let box_src ~extra ~prefix =
  Printf.sprintf
    {|
class Box { int a; %s}
class Keeper { static Box it; }
class Probe {
  static String line() { return "%s" + Keeper.it.a; }
}
class Main {
  static void main() {
    Keeper.it = new Box();
    Keeper.it.a = 41;
    for (int i = 0; i < 300; i = i + 1) {
      Sys.println(Probe.line());
      Thread.yieldNow();
    }
  }
}
|}
    (if extra then "int b; " else "")
    prefix

let boot_box () =
  let vm = VM.Vm.create ~config:Helpers.test_config () in
  VM.Vm.boot vm (Jv_lang.Compile.compile_program (box_src ~extra:false ~prefix:"v"));
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  VM.Vm.run vm ~rounds:5;
  vm

let box_spec ~tag =
  J.Spec.make ~version_tag:tag
    ~old_program:
      (Jv_lang.Compile.compile_program (box_src ~extra:false ~prefix:"v"))
    ~new_program:
      (Jv_lang.Compile.compile_program (box_src ~extra:true ~prefix:"w"))
    ()

let last_line s =
  match List.rev (String.split_on_char '\n' (String.trim s)) with
  | l :: _ -> l
  | [] -> ""

let signal_str v = J.Guard.signal_to_string v.J.Guard.v_signal

(* --- budget trips, one test per synthetic signal ------------------------- *)

(* Arm a guard.* fault point on a freshly guarded commit and check the
   watchdog trips on the expected signal, reverts, and the old code is
   demonstrably back (output returns to the old version's prefix with the
   original field value). *)
let check_trip ~point ~fires ~want_signal () =
  let vm = boot_box () in
  let h =
    J.Jvolve.update_now ~guard:(J.Guard.config ()) vm (box_spec ~tag:"t1")
  in
  Alcotest.(check bool) "update applied" true (J.Jvolve.succeeded h);
  let plan = Faults.create ~seed:3 () in
  Faults.arm plan ~point ~max_fires:fires Faults.Raise;
  VM.Vm.set_faults vm (Some plan);
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Reverted v ->
      Alcotest.(check string) "trip signal" want_signal (signal_str v)
  | o ->
      Alcotest.failf "expected a revert, got %s" (J.Jvolve.outcome_to_string o));
  VM.Vm.set_faults vm None;
  ignore (VM.Vm.run_to_quiescence ~max_rounds:2_000 vm);
  Alcotest.(check string) "old code and field value restored" "v41"
    (last_line (VM.Vm.output vm));
  Alcotest.(check bool) "retained log freed" true
    (vm.VM.State.guard_retained = None);
  let r = VM.Heapverify.run vm in
  Alcotest.(check bool) "heap verifies after revert" true r.VM.Heapverify.hv_ok

let test_trip_on_traps () =
  check_trip ~point:"guard.trap" ~fires:1 ~want_signal:"trap-rate" ()

let test_trip_on_latency () =
  check_trip ~point:"guard.latency" ~fires:1 ~want_signal:"latency" ()

let test_trip_on_probe_failures () =
  (* default budget tolerates 2 probe failures; the third trips *)
  check_trip ~point:"guard.probe" ~fires:3 ~want_signal:"probe-failures" ()

(* --- the real error-budget signal: a semantically-bad release ------------ *)

(* miniweb 5.1.11 passes admission (it type-checks; the bug is a wrong
   loop bound) but 404s most static traffic.  Under load the app-error
   budget must trip and auto-revert with zero dropped connections. *)
let test_trip_on_app_errors () =
  let d = A.Experience.web_desc in
  let vm = A.Experience.boot_version d ~version:"5.1.10" in
  let w = List.hd (A.Experience.attach_loads vm d ~concurrency:4) in
  VM.Vm.run vm ~rounds:80;
  let spec =
    J.Spec.make ~version_tag:"5110"
      ~old_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Miniweb.app ~version:"5.1.10"))
      ~new_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Miniweb.app ~version:A.Miniweb.bad_update))
      ()
  in
  let h =
    J.Jvolve.update_now ~timeout_rounds:400 ~guard:(J.Guard.config ()) vm spec
  in
  Alcotest.(check bool) "bad update passes admission and applies" true
    (J.Jvolve.succeeded h);
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Reverted v ->
      Alcotest.(check string) "tripped on app errors" "app-errors"
        (signal_str v)
  | o ->
      Alcotest.failf "expected a revert, got %s" (J.Jvolve.outcome_to_string o));
  (* the restored version serves cleanly: no new errors once the bad
     epoch's queued responses have drained *)
  VM.Vm.run vm ~rounds:10;
  let errors = w.A.Workload.errors and before = w.A.Workload.completed_requests in
  VM.Vm.run vm ~rounds:150;
  Alcotest.(check bool) "still serving" true
    (w.A.Workload.completed_requests > before);
  Alcotest.(check int) "no errors after the revert" errors w.A.Workload.errors;
  Alcotest.(check int) "zero dropped connections" 0 w.A.Workload.dropped

(* --- clean close --------------------------------------------------------- *)

let test_clean_close_frees_log () =
  let vm = boot_box () in
  let budget = { J.Guard.default_budget with J.Guard.b_rounds = 25 } in
  let h =
    J.Jvolve.update_now
      ~guard:(J.Guard.config ~budget ())
      vm (box_spec ~tag:"t2")
  in
  Alcotest.(check bool) "update applied" true (J.Jvolve.succeeded h);
  Alcotest.(check bool) "window open" true (J.Jvolve.guard_active h);
  Alcotest.(check bool) "log retained while the window is open" true
    (vm.VM.State.guard_retained <> None);
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Applied _ -> ()
  | o ->
      Alcotest.failf "expected a clean close, got %s"
        (J.Jvolve.outcome_to_string o));
  Alcotest.(check bool) "window closed" false (J.Jvolve.guard_active h);
  Alcotest.(check bool) "retained log freed" true
    (vm.VM.State.guard_retained = None);
  ignore (VM.Vm.run_to_quiescence ~max_rounds:2_000 vm);
  Alcotest.(check string) "new version kept" "w41"
    (last_line (VM.Vm.output vm));
  let r = VM.Heapverify.run vm in
  Alcotest.(check bool) "heap verifies after close" true r.VM.Heapverify.hv_ok

(* --- a fault during the revert rolls forward to a typed abort ------------ *)

let test_revert_under_fault_rolls_forward () =
  let vm = boot_box () in
  let h =
    J.Jvolve.update_now ~guard:(J.Guard.config ()) vm (box_spec ~tag:"t3")
  in
  Alcotest.(check bool) "update applied" true (J.Jvolve.succeeded h);
  let plan = Faults.create ~seed:5 () in
  Faults.arm plan ~point:"guard.trip" ~max_fires:1 Faults.Raise;
  Faults.arm plan ~point:"guard.revert" ~max_fires:1 Faults.Raise;
  VM.Vm.set_faults vm (Some plan);
  (match J.Jvolve.run_to_guard_close vm h with
  | J.Jvolve.Aborted a ->
      Alcotest.(check string) "abort phase is the guard" "guard"
        (J.Updater.phase_to_string a.J.Updater.a_phase);
      Alcotest.(check bool) "reason names the failed revert" true
        (Helpers.contains a.J.Updater.a_reason "revert failed");
      Alcotest.(check bool) "the revert transaction rolled back" true
        a.J.Updater.a_rolled_back
  | o ->
      Alcotest.failf "expected a roll-forward abort, got %s"
        (J.Jvolve.outcome_to_string o));
  VM.Vm.set_faults vm None;
  Alcotest.(check bool) "retained log freed" true
    (vm.VM.State.guard_retained = None);
  Alcotest.(check bool) "VM alive" true (VM.Vm.killed vm = None);
  ignore (VM.Vm.run_to_quiescence ~max_rounds:2_000 vm);
  (* rolled forward: the VM stays on the (suspect) new version *)
  Alcotest.(check string) "still on the new version" "w41"
    (last_line (VM.Vm.output vm));
  let r = VM.Heapverify.run vm in
  Alcotest.(check bool) "heap verifies after roll-forward" true
    r.VM.Heapverify.hv_ok

(* --- fleet: a canary tripping its guard fences the rollout --------------- *)

let fleet_config =
  { Jv_vm.State.default_config with Jv_vm.State.heap_words = 1 lsl 18 }

let boot_fleet ~size ~version =
  let fleet =
    F.Fleet.create ~config:fleet_config ~policy:F.Lb.Round_robin
      ~profile:F.Profile.miniweb ~version ~size ()
  in
  F.Fleet.run fleet ~rounds:30;
  ignore (F.Fleet.attach_load ~concurrency:6 fleet);
  F.Fleet.run fleet ~rounds:100;
  fleet

let test_canary_guard_trip_fences_rollout () =
  let fleet = boot_fleet ~size:4 ~version:"5.1.10" in
  let params =
    {
      (F.Orchestrator.default_params
         (F.Orchestrator.Canary
            { canaries = 1; observe_rounds = 250; promote_batch = 1 }))
      with
      F.Orchestrator.update_timeout = 200;
      guard = Some (J.Guard.config ());
    }
  in
  let r =
    F.Orchestrator.run ~params ~fleet ~to_version:A.Miniweb.bad_update ()
  in
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check bool) "rollout fenced, not ok" false r.F.Orchestrator.r_ok;
  Alcotest.(check bool) "a guard trip is reported" true
    (r.F.Orchestrator.r_guard_tripped <> []);
  Alcotest.(check (list int)) "nobody left on the bad version" []
    r.F.Orchestrator.r_updated;
  Alcotest.(check (option string)) "fleet back on the old version"
    (Some "5.1.10")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no dropped in-flight connections" 0
    (F.Fleet.dropped_in_flight fleet)

(* A rolling rollout: by the time an early instance's guard trips, later
   instances have already committed — the fence must revert them all
   (open windows in-VM via a forced trip, closed ones by inverse spec). *)
let test_rolling_guard_trip_reverts_updated () =
  let fleet = boot_fleet ~size:3 ~version:"5.1.10" in
  let params =
    {
      (F.Orchestrator.default_params
         (F.Orchestrator.Rolling { batch_size = 1 }))
      with
      F.Orchestrator.update_timeout = 200;
      guard = Some (J.Guard.config ());
    }
  in
  let r =
    F.Orchestrator.run ~params ~fleet ~to_version:A.Miniweb.bad_update ()
  in
  F.Fleet.run fleet ~rounds:30;
  Alcotest.(check bool) "rollout fenced, not ok" false r.F.Orchestrator.r_ok;
  Alcotest.(check bool) "a guard trip is reported" true
    (r.F.Orchestrator.r_guard_tripped <> []);
  Alcotest.(check (list int)) "nobody left on the bad version" []
    r.F.Orchestrator.r_updated;
  Alcotest.(check (option string)) "fleet back on the old version"
    (Some "5.1.10")
    (F.Fleet.uniform_version fleet);
  Alcotest.(check int) "no instance stranded out of service" 0
    (List.length r.F.Orchestrator.r_rollback_failed)

(* --- property: apply + trip + revert == never updated -------------------- *)

(* Observational identity on a fresh client session: drive the app's own
   protocol script against (a) a server that never updated and (b) one
   that applied the update under guard, was force-tripped, and reverted.
   The response transcripts must be identical, for all three apps. *)

let probe_scripts (d : A.Experience.app_desc) =
  List.map (fun (port, script, _) -> (port, script)) d.A.Experience.d_loads

let collect_responses vm ~port ~script =
  let net = vm.Jv_vm.State.net in
  match Simnet.connect net ~port with
  | None -> [ "<no listener>" ]
  | Some cid ->
      let out = ref [] in
      let remaining = ref script in
      (match !remaining with
      | l :: rest ->
          Simnet.client_send net ~conn_id:cid l;
          remaining := rest
      | [] -> ());
      (* fixed round budget in both scenarios: each received line is
         recorded and triggers the next send *)
      for _ = 1 to 400 do
        VM.Sched.round vm;
        match Simnet.client_recv net ~conn_id:cid with
        | `Line resp -> (
            out := resp :: !out;
            match !remaining with
            | l :: rest ->
                Simnet.client_send net ~conn_id:cid l;
                remaining := rest
            | [] -> ())
        | `Eof | `Wait -> ()
      done;
      Simnet.client_close net ~conn_id:cid;
      Simnet.reap net ~conn_id:cid;
      List.rev !out

let app_pairs =
  [|
    (A.Experience.web_desc, "5.1.4", "5.1.5");
    (A.Experience.mail_desc, "1.3.1", "1.3.2");
    (A.Experience.ftp_desc, "1.06", "1.07");
  |]

let transcript ~updated (d, from_v, to_v) ~warm =
  (* no background load: both scenarios see a server whose state depends
     only on its code, not on how many rounds have elapsed *)
  let vm = A.Experience.boot_version d ~version:from_v in
  VM.Vm.run vm ~rounds:warm;
  if updated then begin
    let spec =
      A.Common.spec
        ~overrides:(d.A.Experience.d_overrides ~to_version:to_v)
        ~version_tag:(A.Common.version_tag from_v)
        ~old_program:
          (Jv_lang.Compile.compile_program
             (A.Patching.source d.A.Experience.d_versioned ~version:from_v))
        ~new_program:
          (Jv_lang.Compile.compile_program
             (A.Patching.source d.A.Experience.d_versioned ~version:to_v))
        ()
    in
    let h =
      J.Jvolve.update_now ~timeout_rounds:400 ~guard:(J.Guard.config ()) vm
        spec
    in
    if not (J.Jvolve.succeeded h) then
      QCheck.Test.fail_reportf "%s: update did not apply: %s"
        d.A.Experience.d_name
        (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome);
    let plan = Faults.create ~seed:9 () in
    Faults.arm plan ~point:"guard.trip" ~max_fires:1 Faults.Raise;
    VM.Vm.set_faults vm (Some plan);
    (match J.Jvolve.run_to_guard_close vm h with
    | J.Jvolve.Reverted _ -> ()
    | o ->
        QCheck.Test.fail_reportf "%s: expected a revert, got %s"
          d.A.Experience.d_name
          (J.Jvolve.outcome_to_string o));
    VM.Vm.set_faults vm None
  end;
  List.concat_map
    (fun (port, script) -> collect_responses vm ~port ~script)
    (probe_scripts d)

let prop_revert_observationally_identical =
  QCheck.Test.make
    ~name:"apply + guard trip + revert is observationally identical to \
           never updating"
    ~count:6
    QCheck.(pair (int_range 0 2) (int_range 0 30))
    (fun (app, warm) ->
      (* stock shrinkers wander outside int_range: clamp *)
      let app = max 0 (min 2 app) in
      let warm = 10 + max 0 (min 30 warm) in
      let pair = app_pairs.(app) in
      let baseline = transcript ~updated:false pair ~warm in
      let reverted = transcript ~updated:true pair ~warm in
      if baseline <> reverted then
        QCheck.Test.fail_reportf
          "transcripts diverge for %s:\n  never-updated: %s\n  reverted:      %s"
          (let d, _, _ = pair in
           d.A.Experience.d_name)
          (String.concat " | " baseline)
          (String.concat " | " reverted);
      true)

let suite =
  [
    Alcotest.test_case "trip on trap-rate, revert restores old code" `Quick
      test_trip_on_traps;
    Alcotest.test_case "trip on latency" `Quick test_trip_on_latency;
    Alcotest.test_case "trip on probe failures" `Quick
      test_trip_on_probe_failures;
    Alcotest.test_case "trip on app errors (bad miniweb release)" `Quick
      test_trip_on_app_errors;
    Alcotest.test_case "clean close keeps the update and frees the log"
      `Quick test_clean_close_frees_log;
    Alcotest.test_case "fault during revert rolls forward to a guard abort"
      `Quick test_revert_under_fault_rolls_forward;
    Alcotest.test_case "fleet: canary guard trip fences the rollout" `Quick
      test_canary_guard_trip_fences_rollout;
    Alcotest.test_case "fleet: rolling guard trip reverts updated instances"
      `Quick test_rolling_guard_trip_reverts_updated;
    QCheck_alcotest.to_alcotest prop_revert_observationally_identical;
  ]
