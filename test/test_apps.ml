(* Tests for the benchmark applications and the experience harness. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let all_apps =
  [ A.Miniweb.app; A.Minimail.app; A.Miniftp.app; A.Ministore.app ]

(* every version of every app compiles and verifies *)
let all_versions_compile () =
  List.iter
    (fun (v : A.Patching.versioned) ->
      List.iter
        (fun (ver, src) ->
          match Jv_lang.Compile.compile_program src with
          | _ -> ()
          | exception Jv_lang.Compile.Error e ->
              Alcotest.failf "%s %s does not compile: %s"
                v.A.Patching.app_name ver e)
        v.A.Patching.versions)
    all_apps

let expected_version_counts () =
  Alcotest.(check int) "miniweb versions" 12
    (List.length A.Miniweb.app.A.Patching.versions);
  Alcotest.(check int) "minimail versions" 10
    (List.length A.Minimail.app.A.Patching.versions);
  Alcotest.(check int) "miniftp versions" 4
    (List.length A.Miniftp.app.A.Patching.versions);
  Alcotest.(check int) "ministore versions" 4
    (List.length A.Ministore.app.A.Patching.versions)

(* boot each app's base version under load and watch sessions complete *)
let serve_app desc port_script_count () =
  let vm = A.Experience.boot_version desc ~version:(List.hd desc.A.Experience.d_versioned.A.Patching.versions |> fst) in
  let loads = A.Experience.attach_loads vm desc ~concurrency:3 in
  VM.Vm.run vm ~rounds:120;
  let sessions =
    List.fold_left (fun acc w -> acc + w.A.Workload.completed_sessions) 0 loads
  in
  let errors =
    List.fold_left (fun acc w -> acc + w.A.Workload.errors) 0 loads
  in
  if sessions < port_script_count then
    Alcotest.failf "%s served only %d sessions" desc.A.Experience.d_name
      sessions;
  Alcotest.(check int)
    (desc.A.Experience.d_name ^ " protocol errors")
    0 errors;
  (* no thread may have trapped *)
  Alcotest.(check int)
    (desc.A.Experience.d_name ^ " traps")
    0
    (List.length (VM.Vm.stats vm).VM.Vm.traps)

let web_serves () = serve_app A.Experience.web_desc 5 ()
let mail_serves () = serve_app A.Experience.mail_desc 5 ()
let ftp_serves () = serve_app A.Experience.ftp_desc 5 ()
let store_serves () = serve_app A.Experience.store_desc 5 ()

(* the per-update outcomes the paper reports *)

let check_applied (a : A.Experience.attempt) =
  match a.A.Experience.a_outcome with
  | A.Experience.Applied t -> t
  | A.Experience.Aborted e ->
      Alcotest.failf "%s %s->%s should apply, but: %s" a.A.Experience.a_app
        a.A.Experience.a_from a.A.Experience.a_to e

let check_aborted (a : A.Experience.attempt) =
  match a.A.Experience.a_outcome with
  | A.Experience.Aborted _ -> ()
  | A.Experience.Applied _ ->
      Alcotest.failf "%s %s->%s should abort but applied"
        a.A.Experience.a_app a.A.Experience.a_from a.A.Experience.a_to

(* the paper's 5.1.2 -> 5.1.3 update changes the pool threads' run()
   loops, which are always on stack.  Without con-freeness analysis the
   safe point is unreachable; with it (the default) the changed bodies
   are proven backward-compatible and the update lands first attempt. *)
let web_513_applies_with_confree () =
  let a =
    A.Experience.run_one ~timeout_rounds:80 A.Experience.web_desc
      ~from_version:"5.1.2" ~to_version:"5.1.3"
  in
  ignore (check_applied a);
  Alcotest.(check int) "no barriers under a proof" 0 a.A.Experience.a_barriers

let web_513_fails_without_confree () =
  let a =
    A.Experience.run_one
      ~config:{ A.Experience.default_config with VM.State.confree = false }
      ~timeout_rounds:80 A.Experience.web_desc ~from_version:"5.1.2"
      ~to_version:"5.1.3"
  in
  check_aborted a

let web_515_applies_with_osr () =
  let a =
    A.Experience.run_one A.Experience.web_desc ~from_version:"5.1.4"
      ~to_version:"5.1.5"
  in
  let t = check_applied a in
  (* PoolThread.run is category-2 (references HttpConnection) and always
     on stack: OSR must have fired *)
  if t.J.Updater.u_osr < 1 then Alcotest.fail "expected OSR of PoolThread.run";
  (* the server still serves after the update *)
  if a.A.Experience.a_requests_after <= a.A.Experience.a_requests_before then
    Alcotest.fail "server stopped serving after update"

(* mail 1.2.4 -> 1.3 body-updates the three always-on-stack run() loops;
   con-freeness proves them compatible (Main.main stays restricted — it
   references the deleted AdminTool — but it is never on stack) *)
let mail_13_applies_with_confree () =
  let a =
    A.Experience.run_one ~timeout_rounds:80 A.Experience.mail_desc
      ~from_version:"1.2.4" ~to_version:"1.3"
  in
  ignore (check_applied a);
  Alcotest.(check int) "no barriers under a proof" 0 a.A.Experience.a_barriers

let mail_13_fails_without_confree () =
  let a =
    A.Experience.run_one
      ~config:{ A.Experience.default_config with VM.State.confree = false }
      ~timeout_rounds:80 A.Experience.mail_desc ~from_version:"1.2.4"
      ~to_version:"1.3"
  in
  check_aborted a

let mail_132_paper_example () =
  let a =
    A.Experience.run_one A.Experience.mail_desc ~from_version:"1.3.1"
      ~to_version:"1.3.2"
  in
  let t = check_applied a in
  (* the User objects must have been transformed (3 users + arrays), and
     the always-running sender/POP loops OSR'd *)
  if t.J.Updater.u_transformed_objects < 3 then
    Alcotest.failf "expected >=3 transformed objects, got %d"
      t.J.Updater.u_transformed_objects;
  if t.J.Updater.u_osr < 2 then
    Alcotest.failf "expected OSR of SMTPSender.run and Pop3Processor.run, \
                    got %d" t.J.Updater.u_osr;
  if a.A.Experience.a_requests_after <= a.A.Experience.a_requests_before then
    Alcotest.fail "mail server stopped serving after update"

(* a long-lived FTP session: log in, then keep listing — the handler
   thread never leaves RequestHandler.run (paper: "with many active
   sessions, this method is essentially always on stack") *)
let persistent_ftp_script =
  [ "USER admin"; "PASS ftp" ]
  @ List.init 500 (fun _ -> "LIST")

let ftp_108_busy_vs_idle () =
  (* under load with long-lived sessions, RequestHandler.run frames block
     the update *)
  let vm = A.Experience.boot_version A.Experience.ftp_desc ~version:"1.07" in
  let w =
    A.Workload.attach vm ~port:A.Miniftp.port ~script:persistent_ftp_script
      ~concurrency:3 ()
  in
  VM.Vm.run vm ~rounds:40;
  let old_program =
    Jv_lang.Compile.compile_program
      (A.Patching.source A.Miniftp.app ~version:"1.07")
  in
  let new_program =
    Jv_lang.Compile.compile_program
      (A.Patching.source A.Miniftp.app ~version:"1.08")
  in
  let spec =
    J.Spec.make ~version_tag:"107" ~old_program ~new_program ()
  in
  let h = J.Jvolve.update_now ~timeout_rounds:80 vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Aborted a ->
      let e = J.Updater.abort_to_string a in
      if not (Helpers.contains e "RequestHandler.run") then
        Alcotest.failf "abort should blame RequestHandler.run: %s" e
  | o ->
      Alcotest.failf "busy update should abort, got %s"
        (J.Jvolve.outcome_to_string o));
  A.Workload.detach vm w;
  (* idle, it applies *)
  let idle =
    A.Experience.run_one ~loaded:false A.Experience.ftp_desc
      ~from_version:"1.07" ~to_version:"1.08"
  in
  ignore (check_applied idle)

let hotswap_counts () =
  (* which updates a method-body-only system supports, per app *)
  let count desc =
    A.Patching.update_pairs desc.A.Experience.d_versioned
    |> List.filter (fun ((_, s1), (_, s2)) ->
           let d =
             J.Diff.compute
               ~old_program:(Jv_lang.Compile.compile_program s1)
               ~new_program:(Jv_lang.Compile.compile_program s2)
           in
           J.Diff.method_body_only_supported d)
    |> List.length
  in
  (* 5.1.11 (the guard demo's bad release) is body-only too *)
  Alcotest.(check int) "miniweb body-only updates" 6
    (count A.Experience.web_desc);
  Alcotest.(check int) "minimail body-only updates" 4
    (count A.Experience.mail_desc);
  Alcotest.(check int) "miniftp body-only updates" 0
    (count A.Experience.ftp_desc);
  (* every ministore rung is a schema migration *)
  Alcotest.(check int) "ministore body-only updates" 0
    (count A.Experience.store_desc)

let suite =
  [
    Alcotest.test_case "all versions compile" `Quick all_versions_compile;
    Alcotest.test_case "version counts" `Quick expected_version_counts;
    Alcotest.test_case "miniweb serves" `Quick web_serves;
    Alcotest.test_case "minimail serves" `Quick mail_serves;
    Alcotest.test_case "miniftp serves" `Quick ftp_serves;
    Alcotest.test_case "ministore serves" `Quick store_serves;
    Alcotest.test_case "web 5.1.3 applies via con-freeness" `Slow
      web_513_applies_with_confree;
    Alcotest.test_case "web 5.1.3 cannot reach safe point without confree"
      `Slow web_513_fails_without_confree;
    Alcotest.test_case "web 5.1.5 applies with OSR" `Quick
      web_515_applies_with_osr;
    Alcotest.test_case "mail 1.3 applies via con-freeness" `Slow
      mail_13_applies_with_confree;
    Alcotest.test_case "mail 1.3 cannot reach safe point without confree"
      `Slow mail_13_fails_without_confree;
    Alcotest.test_case "mail 1.3.2 paper example" `Quick
      mail_132_paper_example;
    Alcotest.test_case "ftp 1.08 busy vs idle" `Slow ftp_108_busy_vs_idle;
    Alcotest.test_case "hotswap support counts" `Quick hotswap_counts;
  ]
