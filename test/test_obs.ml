(* lib/obs: the flight recorder ring, geometric histograms (checked
   against a naive sorted-sample reference), and the exporters (golden
   output tests). *)

module Ring = Jv_obs.Ring
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics
module Export = Jv_obs.Export

(* --- ring buffer ------------------------------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "partial fill" [ 1; 2 ] (Ring.to_list r);
  Alcotest.(check int) "no drops yet" 0 (Ring.dropped r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check int) "length clamped to capacity" 4 (Ring.length r);
  Alcotest.(check int) "dropped count" 6 (Ring.dropped r);
  Alcotest.(check (list int))
    "survivors are the last pushes, oldest first" [ 6; 7; 8; 9 ]
    (Ring.to_list r);
  let sum = Ring.fold r (fun acc x -> acc + x) 0 in
  Alcotest.(check int) "fold sees the same survivors" 30 sum;
  Ring.clear r;
  Alcotest.(check int) "clear resets length" 0 (Ring.length r);
  Alcotest.(check int) "clear resets drops" 0 (Ring.dropped r)

let test_ring_capacity_clamped () =
  let r = Ring.create ~capacity:0 in
  Ring.push r 41;
  Ring.push r 42;
  Alcotest.(check (list int)) "capacity 0 behaves as 1" [ 42 ] (Ring.to_list r)

(* --- histogram quantiles vs. a naive reference ------------------------- *)

(* Deterministic LCG so the test needs no seed plumbing. *)
let lcg_samples n =
  let state = ref 123456789 in
  List.init n (fun _ ->
      state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
      (float_of_int (!state mod 1_000_000) /. 100.0) +. 0.01)

let naive_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let test_histogram_quantiles () =
  let samples = lcg_samples 5000 in
  let h = Metrics.make_histogram "t" in
  List.iter (Metrics.observe h) samples;
  let sorted = Array.of_list (List.sort compare samples) in
  Alcotest.(check int) "count" 5000 (Metrics.count h);
  List.iter
    (fun q ->
      let want = naive_quantile sorted q in
      let got = Metrics.quantile h q in
      (* the geometric buckets guarantee <= sqrt(gamma)-1 ~ 4.4% relative
         error; allow 6% for boundary effects *)
      let rel = Float.abs (got -. want) /. want in
      if rel > 0.06 then
        Alcotest.failf "q=%.2f: estimate %.4f vs reference %.4f (%.1f%% off)"
          q got want (100.0 *. rel))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.(check (float 1e-6))
    "max is exact"
    (naive_quantile sorted 1.0)
    (Metrics.hist_max h)

let test_histogram_single_sample () =
  let h = Metrics.make_histogram "t" in
  Metrics.observe h 10.0;
  (* clamping into [min, max] makes single-sample quantiles exact *)
  Alcotest.(check (float 1e-9)) "p50" 10.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 10.0 (Metrics.quantile h 0.99)

let test_histogram_merge () =
  let a = Metrics.make_histogram "a" and b = Metrics.make_histogram "b" in
  let samples = lcg_samples 2000 in
  List.iteri
    (fun i v -> Metrics.observe (if i mod 2 = 0 then a else b) v)
    samples;
  Metrics.merge_into ~into:a b;
  let sorted = Array.of_list (List.sort compare samples) in
  Alcotest.(check int) "merged count" 2000 (Metrics.count a);
  Alcotest.(check (float 1e-6))
    "merged max" (naive_quantile sorted 1.0) (Metrics.hist_max a);
  let want = naive_quantile sorted 0.9 and got = Metrics.quantile a 0.9 in
  if Float.abs (got -. want) /. want > 0.06 then
    Alcotest.failf "merged p90: %.4f vs %.4f" got want

(* --- exporters (golden output) ----------------------------------------- *)

let test_prometheus_golden () =
  let sink = Obs.create () in
  Obs.incr ~by:3 sink "vm.reqs";
  Obs.set_gauge sink "lb.depth" 2.5;
  (* one sample: min = max, so even the quantile lines are deterministic *)
  Obs.observe sink "pause.ms" 10.0;
  let want =
    "# TYPE vm_reqs counter\n\
     vm_reqs 3\n\
     # TYPE lb_depth gauge\n\
     lb_depth 2.5\n\
     # TYPE pause_ms summary\n\
     pause_ms{quantile=\"0.5\"} 10\n\
     pause_ms{quantile=\"0.9\"} 10\n\
     pause_ms{quantile=\"0.99\"} 10\n\
     pause_ms_count 1\n\
     pause_ms_sum 10\n\
     pause_ms_min 10\n\
     pause_ms_max 10\n"
  in
  Alcotest.(check string) "prometheus snapshot" want (Export.prometheus sink)

let test_jsonl_golden () =
  let sink = Obs.create () in
  let tick = ref 0 in
  Obs.set_clock sink (fun () -> !tick);
  tick := 5;
  Obs.emit sink ~scope:"vm.gc" "gc.done"
    [ ("ms", Obs.Float 2.5); ("copied", Obs.Int 7) ];
  tick := 9;
  Obs.emit sink ~scope:"core.update" "update.applied"
    [ ("tag", Obs.Str "v\"2\"") ];
  let want =
    "{\"seq\":0,\"tick\":5,\"scope\":\"vm.gc\",\"name\":\"gc.done\",\
     \"fields\":{\"ms\":2.5,\"copied\":7}}\n\
     {\"seq\":1,\"tick\":9,\"scope\":\"core.update\",\
     \"name\":\"update.applied\",\"fields\":{\"tag\":\"v\\\"2\\\"\"}}\n"
  in
  Alcotest.(check string) "jsonl dump" want (Export.jsonl sink)

let test_timeline_filter_and_drops () =
  let sink = Obs.create ~capacity:2 () in
  Obs.emit sink ~scope:"vm.gc" "gc.done" [];
  Obs.emit sink ~scope:"fleet.rollout" "drain.done" [ ("ticks", Obs.Int 8) ];
  Obs.emit sink ~scope:"fleet.lb" "lb.drop" [];
  let out = Export.timeline ~scopes:[ "fleet.rollout" ] sink in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  if not (contains out "1 earlier events dropped") then
    Alcotest.failf "missing drop notice in %S" out;
  if not (contains out "drain.done") then
    Alcotest.failf "missing kept event in %S" out;
  if contains out "lb.drop" then
    Alcotest.failf "filtered scope leaked into %S" out

(* --- spans -------------------------------------------------------------- *)

let test_span () =
  let sink = Obs.create () in
  let tick = ref 100 and wall = ref 1.0 in
  Obs.set_clock sink (fun () -> !tick);
  Obs.set_wall sink (fun () -> !wall);
  let r =
    Obs.span sink ~scope:"core.update" "pause" (fun () ->
        tick := 107;
        wall := 1.25;
        42)
  in
  Alcotest.(check int) "span returns the body's value" 42 r;
  (match Obs.events sink with
  | [ b; e ] ->
      Alcotest.(check string) "begin event" "pause.begin" b.Obs.ev_name;
      Alcotest.(check string) "end event" "pause.end" e.Obs.ev_name;
      Alcotest.(check int) "begin tick" 100 b.Obs.ev_tick;
      assert (List.mem ("ticks", Obs.Int 7) e.Obs.ev_fields)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  match Obs.find_histogram sink "core.update.pause.ms" with
  | Some h ->
      Alcotest.(check int) "duration histogram count" 1 (Metrics.count h);
      Alcotest.(check (float 1e-6)) "duration ms" 250.0 (Metrics.sum h)
  | None -> Alcotest.fail "span did not record its duration histogram"

let suite =
  [
    Alcotest.test_case "ring basic" `Quick test_ring_basic;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring capacity clamp" `Quick test_ring_capacity_clamped;
    Alcotest.test_case "histogram quantiles vs reference" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "histogram single sample" `Quick
      test_histogram_single_sample;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
    Alcotest.test_case "timeline filter and drops" `Quick
      test_timeline_filter_and_drops;
    Alcotest.test_case "span" `Quick test_span;
  ]
