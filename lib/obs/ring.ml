(* A bounded ring buffer: the storage behind the flight recorder.

   Pushes never fail and never allocate beyond the fixed capacity; once
   full, the oldest element is overwritten.  [to_list] returns survivors
   oldest-first, and [dropped] says how many were evicted — so a reader
   always knows whether it is looking at a complete history or only the
   last N entries before the interesting moment. *)

type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable total : int; (* everything ever pushed *)
}

let create ~capacity =
  let cap = max 1 capacity in
  { buf = Array.make cap None; cap; total = 0 }

let capacity r = r.cap
let length r = min r.total r.cap
let dropped r = max 0 (r.total - r.cap)

let push r x =
  r.buf.(r.total mod r.cap) <- Some x;
  r.total <- r.total + 1

let clear r =
  Array.fill r.buf 0 r.cap None;
  r.total <- 0

(* Oldest first. *)
let iter r f =
  let n = length r in
  let first = r.total - n in
  for i = first to r.total - 1 do
    match r.buf.(i mod r.cap) with Some x -> f x | None -> ()
  done

let to_list r =
  let acc = ref [] in
  iter r (fun x -> acc := x :: !acc);
  List.rev !acc

let fold r f init =
  let acc = ref init in
  iter r (fun x -> acc := f !acc x);
  !acc
