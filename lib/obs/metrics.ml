(* Counters, gauges and histograms.

   Histograms are geometric (HdrHistogram-style): a value lands in bucket
   floor(log_gamma v), so quantile estimates carry a bounded *relative*
   error of sqrt(gamma) - 1 (~4.4% with the default gamma = 2^(1/8))
   regardless of the value range.  Memory is one int per occupied bucket
   band; recording is two float ops and an array increment, cheap enough
   for per-round VM instrumentation.  Same-gamma histograms merge exactly
   (bucket-wise addition), which is how the benches aggregate per-VM
   recordings across trials. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_gamma : float;
  h_log_gamma : float;
  h_offset : int; (* array index of the bucket holding values in [1, gamma) *)
  mutable h_counts : int array;
  mutable h_zero : int; (* values <= 0 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let default_gamma = 1.0905077326652577 (* 2^(1/8): <= ~4.4% relative error *)
let default_offset = 128 (* smallest representable band: gamma^-128 ~ 1.5e-5 *)

let counter_value c = c.c_value
let gauge_value g = g.g_value

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set g v = g.g_value <- v
let add g v = g.g_value <- g.g_value +. v

let make_histogram ?(gamma = default_gamma) name =
  {
    h_name = name;
    h_gamma = gamma;
    h_log_gamma = Float.log gamma;
    h_offset = default_offset;
    h_counts = Array.make 64 0;
    h_zero = 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let bucket_index h v =
  (* v > 0 *)
  h.h_offset + int_of_float (Float.floor (Float.log v /. h.h_log_gamma))

let ensure_bucket h i =
  if i >= Array.length h.h_counts then begin
    let a = Array.make (max (i + 1) (2 * Array.length h.h_counts)) 0 in
    Array.blit h.h_counts 0 a 0 (Array.length h.h_counts);
    h.h_counts <- a
  end

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v <= 0.0 then h.h_zero <- h.h_zero + 1
  else begin
    let i = max 0 (bucket_index h v) in
    ensure_bucket h i;
    h.h_counts.(i) <- h.h_counts.(i) + 1
  end

let observe_int h v = observe h (float_of_int v)

let count h = h.h_count
let sum h = h.h_sum
let mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count
let hist_min h = if h.h_count = 0 then 0.0 else h.h_min
let hist_max h = if h.h_count = 0 then 0.0 else h.h_max

(* Geometric midpoint of bucket [i]: gamma^(i - offset) * sqrt(gamma). *)
let representative h i =
  Float.exp (float_of_int (i - h.h_offset) *. h.h_log_gamma)
  *. Float.sqrt h.h_gamma

(* Estimate the [q]-quantile (0 < q <= 1).  The result is clamped into
   [min, max], so single-sample histograms report the sample exactly. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let v =
      if rank <= h.h_zero then 0.0
      else begin
        let cum = ref h.h_zero in
        let result = ref h.h_max in
        (try
           for i = 0 to Array.length h.h_counts - 1 do
             cum := !cum + h.h_counts.(i);
             if !cum >= rank then begin
               result := representative h i;
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end
    in
    Float.min (Float.max v h.h_min) h.h_max
  end

(* --- snapshots and windowed quantiles ----------------------------------

   Histograms are cumulative; a guard window needs "p99 since the update
   committed" compared against "p99 before it".  A [snap] freezes the
   bucket counts; [since] rebuilds the delta histogram (observations made
   after the snapshot) by bucket-wise subtraction.  Min/max cannot be
   recovered for a window, so the delta keeps the source's bounds — the
   quantile clamp stays sound, just looser. *)

type snap = {
  s_counts : int array;
  s_zero : int;
  s_count : int;
  s_sum : float;
}

let snapshot h =
  {
    s_counts = Array.copy h.h_counts;
    s_zero = h.h_zero;
    s_count = h.h_count;
    s_sum = h.h_sum;
  }

let since h (s : snap) =
  let d = make_histogram ~gamma:h.h_gamma h.h_name in
  d.h_counts <- Array.copy h.h_counts;
  Array.iteri
    (fun i n -> if i < Array.length d.h_counts then
        d.h_counts.(i) <- max 0 (d.h_counts.(i) - n))
    s.s_counts;
  d.h_zero <- max 0 (h.h_zero - s.s_zero);
  d.h_count <- max 0 (h.h_count - s.s_count);
  d.h_sum <- Float.max 0.0 (h.h_sum -. s.s_sum);
  if d.h_count > 0 then begin
    d.h_min <- h.h_min;
    d.h_max <- h.h_max
  end;
  d

(* The [q]-quantile of the observations recorded after [snap] was taken. *)
let quantile_since h s q = quantile (since h s) q

(* Bucket-wise merge; both histograms must share gamma (the default unless
   explicitly overridden). *)
let merge_into ~into src =
  if into.h_gamma <> src.h_gamma then
    invalid_arg "Metrics.merge_into: histograms with different gamma";
  ensure_bucket into (Array.length src.h_counts - 1);
  Array.iteri
    (fun i n -> if n > 0 then into.h_counts.(i) <- into.h_counts.(i) + n)
    src.h_counts;
  into.h_zero <- into.h_zero + src.h_zero;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum +. src.h_sum;
  if src.h_count > 0 then begin
    if src.h_min < into.h_min then into.h_min <- src.h_min;
    if src.h_max > into.h_max then into.h_max <- src.h_max
  end

(* --- the registry ------------------------------------------------------ *)

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type registry = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, reversed *)
}

let create_registry () = { tbl = Hashtbl.create 64; order = [] }

let register reg name m =
  Hashtbl.replace reg.tbl name m;
  reg.order <- name :: reg.order

let counter reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (M_counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register reg name (M_counter c);
      c

let gauge reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (M_gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      register reg name (M_gauge g);
      g

let histogram ?gamma reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (M_histogram h) -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let h = make_histogram ?gamma name in
      register reg name (M_histogram h);
      h

let find reg name = Hashtbl.find_opt reg.tbl name

(* Iterate in registration order. *)
let iter reg f =
  List.iter
    (fun name ->
      match Hashtbl.find_opt reg.tbl name with
      | Some m -> f name m
      | None -> ())
    (List.rev reg.order)

let is_empty reg = reg.order = []

(* Fold [src] into [into]: counters add, histograms merge bucket-wise,
   gauges take the source's latest value.  Used to aggregate the sinks of
   many VMs into one report. *)
let merge_registry ~into src =
  iter src (fun name m ->
      match m with
      | M_counter c -> incr ~by:c.c_value (counter into name)
      | M_gauge g -> set (gauge into name) g.g_value
      | M_histogram h ->
          merge_into ~into:(histogram ~gamma:h.h_gamma into name) h)
