(* Exporters over a sink: Prometheus-style text snapshot, JSON-lines event
   dump, and a human-readable timeline for --trace. *)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  We map every other
   character (the dots in "core.update.pause_ms") to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* --- Prometheus text snapshot ------------------------------------------ *)

let prometheus sink =
  let buf = Buffer.create 1024 in
  Metrics.iter (Obs.metrics sink) (fun name m ->
      let n = sanitize name in
      match m with
      | Metrics.M_counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" n (Metrics.counter_value c))
      | Metrics.M_gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" n (fmt_float (Metrics.gauge_value g)))
      | Metrics.M_histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
          List.iter
            (fun q ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n q
                   (fmt_float (Metrics.quantile h q))))
            [ 0.5; 0.9; 0.99 ];
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" n (Metrics.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" n (fmt_float (Metrics.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_min %s\n" n (fmt_float (Metrics.hist_min h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_max %s\n" n (fmt_float (Metrics.hist_max h))));
  Buffer.contents buf

(* --- JSON lines --------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value = function
  | Obs.Int i -> string_of_int i
  | Obs.Float f -> fmt_float f
  | Obs.Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let event_json (ev : Obs.event) =
  let fields =
    ev.Obs.ev_fields
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
    |> String.concat ","
  in
  Printf.sprintf "{\"seq\":%d,\"tick\":%d,\"scope\":\"%s\",\"name\":\"%s\",\"fields\":{%s}}"
    ev.Obs.ev_seq ev.Obs.ev_tick (json_escape ev.Obs.ev_scope)
    (json_escape ev.Obs.ev_name) fields

(* One JSON object per line, oldest event first. *)
let jsonl sink =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_char buf '\n')
    (Obs.events sink);
  Buffer.contents buf

(* --- human-readable timeline ------------------------------------------- *)

let field_str (k, v) =
  let s =
    match v with
    | Obs.Int i -> string_of_int i
    | Obs.Float f -> Printf.sprintf "%.3f" f
    | Obs.Str s -> s
  in
  k ^ "=" ^ s

(* [scopes] keeps only events whose scope starts with one of the given
   prefixes (all events when omitted). *)
let timeline ?scopes sink =
  let keep ev =
    match scopes with
    | None -> true
    | Some ps ->
        List.exists
          (fun p ->
            let lp = String.length p in
            String.length ev.Obs.ev_scope >= lp
            && String.sub ev.Obs.ev_scope 0 lp = p)
          ps
  in
  let buf = Buffer.create 1024 in
  let dropped = Obs.dropped_events sink in
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... (%d earlier events dropped by flight recorder)\n"
         dropped);
  List.iter
    (fun ev ->
      if keep ev then
        Buffer.add_string buf
          (Printf.sprintf "[%8d] %-14s %-24s %s\n" ev.Obs.ev_tick
             ev.Obs.ev_scope ev.Obs.ev_name
             (String.concat " " (List.map field_str ev.Obs.ev_fields))))
    (Obs.events sink);
  Buffer.contents buf
