(* The observability sink: one per VM (and one per fleet).

   A sink bundles three things:

   - a *flight recorder*: a bounded ring of structured events with
     monotonic tick timestamps, so the last N events before an update
     abort or health-check failure are always reconstructable;
   - a *metrics registry* (counters / gauges / histograms) that the
     instrumented layers record into and the exporters snapshot;
   - two injected clocks: [clock] returns the owner's logical tick
     (VM scheduler rounds, fleet rounds), [wall] returns seconds for
     pause-time histograms.

   The library itself depends on nothing; owners inject their clocks
   ([Jv_vm.State.create] wires the VM's tick counter and
   [Unix.gettimeofday]).  Emitting is cheap — a record allocation and a
   ring store — and recording a metric is a hash lookup plus an in-place
   mutation, so instrumentation can stay on in production. *)

type value = Int of int | Float of float | Str of string

type event = {
  ev_seq : int; (* per-sink, monotonically increasing *)
  ev_tick : int; (* owner's logical clock at emit time *)
  ev_scope : string; (* "vm.gc", "core.update", "fleet.rollout", ... *)
  ev_name : string;
  ev_fields : (string * value) list;
}

type t = {
  ring : event Ring.t;
  metrics : Metrics.registry;
  mutable seq : int;
  mutable clock : unit -> int;
  mutable wall : unit -> float;
}

let default_capacity = 2048

let create ?(capacity = default_capacity) () =
  {
    ring = Ring.create ~capacity;
    metrics = Metrics.create_registry ();
    seq = 0;
    clock = (fun () -> 0);
    wall = Sys.time;
  }

let set_clock t f = t.clock <- f
let set_wall t f = t.wall <- f
let now t = t.clock ()
let wall t = t.wall ()

(* --- events ------------------------------------------------------------ *)

let emit t ~scope name fields =
  let ev =
    {
      ev_seq = t.seq;
      ev_tick = t.clock ();
      ev_scope = scope;
      ev_name = name;
      ev_fields = fields;
    }
  in
  t.seq <- t.seq + 1;
  Ring.push t.ring ev

let events t = Ring.to_list t.ring
let dropped_events t = Ring.dropped t.ring

(* --- metrics conveniences ---------------------------------------------- *)

let metrics t = t.metrics
let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let histogram t name = Metrics.histogram t.metrics name

let incr ?by t name = Metrics.incr ?by (counter t name)
let set_gauge t name v = Metrics.set (gauge t name) v
let observe t name v = Metrics.observe (histogram t name) v
let observe_int t name v = Metrics.observe_int (histogram t name) v

let counter_value t name =
  match Metrics.find t.metrics name with
  | Some (Metrics.M_counter c) -> Metrics.counter_value c
  | _ -> 0

let gauge_value t name =
  match Metrics.find t.metrics name with
  | Some (Metrics.M_gauge g) -> Metrics.gauge_value g
  | _ -> 0.0

let find_histogram t name =
  match Metrics.find t.metrics name with
  | Some (Metrics.M_histogram h) -> Some h
  | _ -> None

(* Merge [src]'s metrics into [into]'s registry (events stay put). *)
let merge_metrics ~into src =
  Metrics.merge_registry ~into:into.metrics src.metrics

(* --- spans -------------------------------------------------------------- *)

(* Run [f], bracketing it with begin/end events carrying the tick and
   wall-clock durations, and record the duration into the
   "<scope>.<name>.ms" histogram.  The end event is emitted on exception
   too (with status "error"), so aborted updates still leave a complete
   timeline. *)
let span t ~scope ?(fields = []) name f =
  let t0 = t.clock () and w0 = t.wall () in
  emit t ~scope (name ^ ".begin") fields;
  let finish status =
    let dticks = t.clock () - t0 in
    let dms = (t.wall () -. w0) *. 1000.0 in
    emit t ~scope (name ^ ".end")
      (fields
      @ [ ("status", Str status); ("ticks", Int dticks); ("ms", Float dms) ]);
    Metrics.observe
      (Metrics.histogram t.metrics (scope ^ "." ^ name ^ ".ms"))
      dms
  in
  match f () with
  | v ->
      finish "ok";
      v
  | exception e ->
      finish "error";
      raise e
