(* Line codec for the gossip control plane.  One message per simnet
   line, space-separated fields, first token the message kind:

     PROP   <id> <epoch> <from-version> <to-version> <digest> <origin>
     VOTE   <proposal-id> <voter> P|C <why>
     DIGEST <sender> <epoch> <key,key,...>      (or "-" when empty)
     WANT   <key,key,...>                        (or "-")
     BYE

   PROP and VOTE are rumor payloads; DIGEST opens an anti-entropy
   reconciliation (the receiver answers with the full items the sender's
   key set lacks, plus a WANT for keys it lacks itself); BYE ends an
   exchange.  The free-text [why] of a vote is percent-escaped so it can
   carry spaces without breaking the token structure. *)

type msg =
  | Prop of Mempool.proposal
  | Vote of Mempool.vote
  | Digest of { d_sender : int; d_epoch : int; d_keys : string list }
  | Want of string list
  | Bye

(* why-field escaping: '%' and ' ' only, enough for verdict strings *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | ' ' -> Buffer.add_string b "%20"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       (match String.sub s (!i + 1) 2 with
       | "20" -> Buffer.add_char b ' '
       | "25" -> Buffer.add_char b '%'
       | other ->
           Buffer.add_char b '%';
           Buffer.add_string b other);
       i := !i + 2
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let keys_field = function [] -> "-" | ks -> String.concat "," ks
let parse_keys = function "-" -> [] | s -> String.split_on_char ',' s

let encode = function
  | Prop p ->
      Printf.sprintf "PROP %s %d %s %s %s %d" p.Mempool.p_id p.Mempool.p_epoch
        p.Mempool.p_from_version p.Mempool.p_to_version p.Mempool.p_digest
        p.Mempool.p_origin
  | Vote v ->
      Printf.sprintf "VOTE %s %d %s %s" v.Mempool.v_prop v.Mempool.v_voter
        (match v.Mempool.v_stance with Mempool.Pro -> "P" | Mempool.Con -> "C")
        (escape v.Mempool.v_why)
  | Digest { d_sender; d_epoch; d_keys } ->
      Printf.sprintf "DIGEST %d %d %s" d_sender d_epoch (keys_field d_keys)
  | Want ks -> Printf.sprintf "WANT %s" (keys_field ks)
  | Bye -> "BYE"

let decode line : (msg, string) result =
  match String.split_on_char ' ' line with
  | [ "PROP"; id; epoch; from_v; to_v; digest; origin ] -> (
      match (int_of_string_opt epoch, int_of_string_opt origin) with
      | Some e, Some o ->
          Ok
            (Prop
               {
                 Mempool.p_id = id;
                 p_epoch = e;
                 p_from_version = from_v;
                 p_to_version = to_v;
                 p_digest = digest;
                 p_origin = o;
               })
      | _ -> Error ("bad PROP: " ^ line))
  | [ "VOTE"; prop; voter; stance; why ] -> (
      match
        ( int_of_string_opt voter,
          match stance with
          | "P" -> Some Mempool.Pro
          | "C" -> Some Mempool.Con
          | _ -> None )
      with
      | Some voter, Some st ->
          Ok
            (Vote
               {
                 Mempool.v_prop = prop;
                 v_voter = voter;
                 v_stance = st;
                 v_why = unescape why;
               })
      | _ -> Error ("bad VOTE: " ^ line))
  | [ "DIGEST"; sender; epoch; keys ] -> (
      match (int_of_string_opt sender, int_of_string_opt epoch) with
      | Some s, Some e ->
          Ok (Digest { d_sender = s; d_epoch = e; d_keys = parse_keys keys })
      | _ -> Error ("bad DIGEST: " ^ line))
  | [ "WANT"; keys ] -> Ok (Want (parse_keys keys))
  | [ "BYE" ] -> Ok Bye
  | _ -> Error ("unparseable gossip line: " ^ line)
