(* One gossip participant: the decision loop that PR 5's orchestrator
   used to run centrally, re-homed onto each instance.  A node owns its
   instance's mempool and decides {e locally, from gossip alone} when to
   drain, when to apply, and when to revert:

   - it votes on every proposal it first learns (Pro when the proposal
     advances its own epoch from its own version, Con otherwise);
   - it applies a proposal only once its mempool holds the apply quorum
     of Pro votes — drain (stop admitting, wait for in-flight), then a
     guarded DSU through the ordinary [Jvolve.request_spec] pipeline;
   - a guard trip auto-reverts in-VM (the PR 5 machinery) and the node
     then broadcasts the verdict as a ["trip:"]-prefixed Con vote;
   - trip votes reaching the {e fence} quorum condemn the proposal
     everywhere: appliers force-trip their open guard (or apply the
     inverse spec if the window already closed) and non-appliers refuse
     the proposal forever — the peer-to-peer inverse wave, with no
     central coordinator anywhere.

   Epoch bookkeeping makes convergence checkable: applying proposal P
   sets the node's epoch to [P.p_epoch]; a fence revert sets it to
   [P.p_epoch - 1]; nodes that never applied stay put — so a fenced
   rollout converges with every live node back on the old epoch. *)

module J = Jvolve_core
module VM = Jv_vm
module Instance = Jv_fleet.Instance

type config = {
  nc_quorum : int; (* Pro votes required to apply (self included) *)
  nc_fence : int; (* trip votes required to condemn a proposal *)
  nc_drain_timeout : int;
  nc_update_timeout : int;
  nc_max_retries : int;
  nc_backoff_base : int;
  nc_guard : J.Guard.config option; (* per-node, probe already bound *)
}

type phase =
  | Idle
  | Draining of { prop : string; until : int }
  | Updating of { prop : string; handle : J.Jvolve.handle }
  | Guarded of { prop : string; handle : J.Jvolve.handle }
  | Reverting of { prop : string; handle : J.Jvolve.handle }
  | Backoff of { prop : string; until : int }
  | Stuck of string

let phase_to_string = function
  | Idle -> "idle"
  | Draining _ -> "draining"
  | Updating _ -> "updating"
  | Guarded _ -> "guarded"
  | Reverting _ -> "reverting"
  | Backoff _ -> "backoff"
  | Stuck why -> "stuck: " ^ why

type t = {
  n_id : int;
  n_inst : Instance.t;
  n_pool : Mempool.t;
  n_cfg : config;
  n_set_admit : bool -> unit; (* LB admission for this backend *)
  n_in_flight : unit -> int; (* this backend's live proxied sessions *)
  n_spec_for : Mempool.proposal -> (J.Spec.t, string) result;
  n_on_epoch : int -> int -> unit; (* old -> new, for fleet tallies *)
  n_obs : Jv_obs.Obs.t; (* the instance VM's own sink *)
  mutable n_epoch : int;
  mutable n_phase : phase;
  mutable n_applied : (string * J.Spec.t) option; (* live forward spec *)
  mutable n_fenced : string list; (* condemned proposal ids *)
  mutable n_attempts : (string * int) list; (* per-proposal aborts *)
  mutable n_out : Wire.msg list; (* fresh rumors, drained by the runtime *)
}

let epoch_gauge = "gossip.epoch"

let create ?(epoch = 0) ~id ~inst ~cfg ~set_admit ~in_flight ~spec_for
    ~on_epoch () =
  let obs = VM.Vm.obs inst.Instance.i_vm in
  Jv_obs.Obs.set_gauge obs epoch_gauge (float_of_int epoch);
  {
    n_id = id;
    n_inst = inst;
    n_pool = Mempool.create ();
    n_cfg = cfg;
    n_set_admit = set_admit;
    n_in_flight = in_flight;
    n_spec_for = spec_for;
    n_on_epoch = on_epoch;
    n_obs = obs;
    n_epoch = epoch;
    n_phase = Idle;
    n_applied = None;
    n_fenced = [];
    n_attempts = [];
    n_out = [];
  }

let epoch t = t.n_epoch
let phase t = t.n_phase
let pool t = t.n_pool
let live t = match t.n_phase with Stuck _ -> false | _ -> true
let take_out t =
  let out = List.rev t.n_out in
  t.n_out <- [];
  out

let set_epoch t e =
  if e <> t.n_epoch then begin
    let old = t.n_epoch in
    t.n_epoch <- e;
    Jv_obs.Obs.set_gauge t.n_obs epoch_gauge (float_of_int e);
    t.n_on_epoch old e
  end

(* --- voting (call under the pool lock) --------------------------------- *)

let cast t ~prop ~stance ~why =
  let v =
    { Mempool.v_prop = prop; v_voter = t.n_id; v_stance = stance; v_why = why }
  in
  match Mempool.add_vote t.n_pool v with
  | `Fresh | `Hardened -> t.n_out <- Wire.Vote v :: t.n_out
  | `Stale -> ()

(* --- ingesting gossip --------------------------------------------------- *)

(* Feed one decoded payload into the pool; anything fresh is queued for
   re-broadcast (rumor mongering) and a fresh proposal is voted on
   immediately: Pro iff it advances this node's own epoch starting from
   the version it actually runs. *)
let learn t msg =
  Mempool.with_lock t.n_pool (fun () ->
      match msg with
      | Wire.Prop p -> (
          match Mempool.add_proposal t.n_pool p with
          | `Duplicate -> ()
          | `Fresh ->
              t.n_out <- Wire.Prop p :: t.n_out;
              if
                p.Mempool.p_from_version = t.n_inst.Instance.i_version
                && p.Mempool.p_epoch = t.n_epoch + 1
              then cast t ~prop:p.Mempool.p_id ~stance:Mempool.Pro ~why:"ok"
              else
                cast t ~prop:p.Mempool.p_id ~stance:Mempool.Con
                  ~why:
                    (Printf.sprintf "base-mismatch:%s@e%d"
                       t.n_inst.Instance.i_version t.n_epoch))
      | Wire.Vote v -> (
          match Mempool.add_vote t.n_pool v with
          | `Fresh | `Hardened ->
              Jv_obs.Obs.incr t.n_obs "gossip.votes_seen";
              t.n_out <- Wire.Vote v :: t.n_out
          | `Stale -> ())
      | Wire.Digest _ | Wire.Want _ | Wire.Bye -> ())

(* --- the per-round decision step ---------------------------------------- *)

let attempts t prop =
  Option.value ~default:0 (List.assoc_opt prop t.n_attempts)

let note_attempt t prop =
  let n = attempts t prop + 1 in
  t.n_attempts <- (prop, n) :: List.remove_assoc prop t.n_attempts;
  n

let readmit t =
  t.n_inst.Instance.i_status <- Instance.In_service;
  t.n_set_admit true

(* A proposal this node should move on: targets our epoch + version, has
   the apply quorum of Pro votes, and is not condemned. *)
let actionable t =
  Mempool.with_lock t.n_pool (fun () ->
      List.find_opt
        (fun (p : Mempool.proposal) ->
          (not (List.mem p.Mempool.p_id t.n_fenced))
          && p.Mempool.p_epoch = t.n_epoch + 1
          && p.Mempool.p_from_version = t.n_inst.Instance.i_version
          && attempts t p.Mempool.p_id <= t.n_cfg.nc_max_retries
          &&
          let pro, _, trip = Mempool.tally t.n_pool ~prop:p.Mempool.p_id in
          pro >= t.n_cfg.nc_quorum && trip < t.n_cfg.nc_fence)
        (Mempool.proposals t.n_pool))

(* Proposals whose trip votes reached the fence quorum since we last
   looked: condemn them locally. *)
let newly_fenced t =
  Mempool.with_lock t.n_pool (fun () ->
      List.filter
        (fun (p : Mempool.proposal) ->
          (not (List.mem p.Mempool.p_id t.n_fenced))
          &&
          let _, _, trip = Mempool.tally t.n_pool ~prop:p.Mempool.p_id in
          trip >= t.n_cfg.nc_fence)
        (Mempool.proposals t.n_pool))

let start_update t ~prop ~now:_ =
  match
    Mempool.with_lock t.n_pool (fun () -> Mempool.find t.n_pool prop)
  with
  | None -> t.n_phase <- Idle (* cannot happen: pools never forget *)
  | Some p -> (
      match t.n_spec_for p with
      | Error e ->
          Mempool.with_lock t.n_pool (fun () ->
              cast t ~prop ~stance:Mempool.Con ~why:("prepare:" ^ e));
          readmit t;
          t.n_phase <- Stuck ("spec build failed: " ^ e)
      | Ok spec -> (
          t.n_inst.Instance.i_status <- Instance.Updating;
          match
            J.Jvolve.request_spec
              ~timeout_rounds:t.n_cfg.nc_update_timeout
              ?guard:t.n_cfg.nc_guard t.n_inst.Instance.i_vm spec
          with
          | handle ->
              t.n_applied <- Some (prop, spec);
              t.n_phase <- Updating { prop; handle }
          | exception J.Transformers.Prepare_error e ->
              Mempool.with_lock t.n_pool (fun () ->
                  cast t ~prop ~stance:Mempool.Con ~why:("prepare:" ^ e));
              readmit t;
              t.n_phase <- Stuck ("prepare error: " ^ e)))

(* The guard tripped (budget or force): the VM already reverted itself.
   Publish the verdict as a trip vote and fall back to the old epoch
   ([p_epoch - 1] — a no-op when the trip outran our own apply scan and
   the epoch was never bumped). *)
let guard_reverted t ~prop (v : J.Guard.verdict) =
  Jv_obs.Obs.incr t.n_obs "gossip.guard_trips";
  Mempool.with_lock t.n_pool (fun () ->
      cast t ~prop ~stance:Mempool.Con
        ~why:(Mempool.trip_prefix ^ J.Guard.verdict_to_string v));
  if not (List.mem prop t.n_fenced) then t.n_fenced <- prop :: t.n_fenced;
  (match
     ( Mempool.with_lock t.n_pool (fun () -> Mempool.find t.n_pool prop),
       t.n_applied )
   with
  | Some pr, Some (p, spec) when p = prop ->
      t.n_inst.Instance.i_version <- pr.Mempool.p_from_version;
      t.n_inst.Instance.i_program <- spec.J.Spec.old_program;
      t.n_applied <- None;
      set_epoch t (pr.Mempool.p_epoch - 1)
  | _ -> ());
  readmit t;
  t.n_phase <- Idle

(* The peer-to-peer inverse wave: this node applied [prop], the fence
   quorum condemned it, and the guard window is already closed — apply
   the inverse spec through the ordinary update pipeline (unguarded,
   like the orchestrator's rollbacks). *)
let start_inverse t ~prop =
  match t.n_applied with
  | Some (p, spec) when p = prop -> (
      t.n_inst.Instance.i_status <- Instance.Rolling_back;
      t.n_set_admit false;
      match
        J.Jvolve.request_spec ~timeout_rounds:t.n_cfg.nc_update_timeout
          t.n_inst.Instance.i_vm (J.Spec.inverse spec)
      with
      | handle -> t.n_phase <- Reverting { prop; handle }
      | exception J.Transformers.Prepare_error e ->
          t.n_inst.Instance.i_status <- Instance.Out_of_service;
          t.n_set_admit false;
          t.n_phase <- Stuck ("inverse prepare error: " ^ e))
  | _ -> t.n_phase <- Idle (* nothing applied: nothing to undo *)

(* Fence consequences for the node's own position on [prop].  A node
   mid-[Updating] is left alone — its DSU attempt must resolve first,
   and the resolution path re-checks [n_fenced]. *)
let enforce_fence t ~prop ~now:_ =
  if not (List.mem prop t.n_fenced) then t.n_fenced <- prop :: t.n_fenced;
  Jv_obs.Obs.incr t.n_obs "gossip.fences_enforced";
  match t.n_phase with
  | Draining { prop = p; _ } | Backoff { prop = p; _ } when p = prop ->
      (* never started: stand down and keep serving the old version *)
      readmit t;
      t.n_phase <- Idle
  | Guarded { prop = p; handle } when p = prop ->
      (* window still open: the in-VM revert replays the retained log;
         a window that already closed cleanly is caught at the Guarded
         resolution step via [n_fenced] *)
      if J.Jvolve.guard_active handle then
        J.Jvolve.force_trip t.n_inst.Instance.i_vm handle
          ~reason:"gossip fence quorum"
  | Idle -> (
      match t.n_applied with
      | Some (p, _) when p = prop -> start_inverse t ~prop
      | _ -> ())
  | _ -> ()

let resolve_update t ~prop ~(handle : J.Jvolve.handle) ~now =
  match handle.J.Jvolve.h_outcome with
  | J.Jvolve.Pending -> ()
  | J.Jvolve.Applied _ -> (
      let p =
        Mempool.with_lock t.n_pool (fun () -> Mempool.find t.n_pool prop)
      in
      (match (p, t.n_applied) with
      | Some pr, Some (_, spec) ->
          t.n_inst.Instance.i_version <- pr.Mempool.p_to_version;
          t.n_inst.Instance.i_program <- spec.J.Spec.new_program;
          set_epoch t pr.Mempool.p_epoch
      | _ -> ());
      Jv_obs.Obs.incr t.n_obs "gossip.applies";
      (* the fence may have arrived while our attempt was in flight *)
      if List.mem prop t.n_fenced then
        if J.Jvolve.guard_active handle then begin
          J.Jvolve.force_trip t.n_inst.Instance.i_vm handle
            ~reason:"gossip fence quorum";
          t.n_phase <- Guarded { prop; handle }
        end
        else start_inverse t ~prop
      else begin
        readmit t;
        if J.Jvolve.guard_active handle then
          t.n_phase <- Guarded { prop; handle }
        else t.n_phase <- Idle
      end)
  | J.Jvolve.Reverted v ->
      (* tripped before we ever saw the apply: already back on old code *)
      guard_reverted t ~prop v
  | J.Jvolve.Aborted a ->
      t.n_applied <- None;
      let e = J.Updater.abort_to_string a in
      let killed = VM.Vm.killed t.n_inst.Instance.i_vm <> None in
      if killed || not a.J.Updater.a_rolled_back then begin
        t.n_inst.Instance.i_status <- Instance.Out_of_service;
        t.n_set_admit false;
        t.n_phase <- Stuck ("abort without rollback: " ^ e)
      end
      else begin
        let n = note_attempt t prop in
        readmit t;
        if n <= t.n_cfg.nc_max_retries then
          t.n_phase <-
            Backoff { prop; until = now + (t.n_cfg.nc_backoff_base * (1 lsl (n - 1))) }
        else begin
          Mempool.with_lock t.n_pool (fun () ->
              cast t ~prop ~stance:Mempool.Con ~why:("abort:" ^ e));
          t.n_phase <- Stuck ("retries exhausted: " ^ e)
        end
      end

let resolve_revert t ~prop ~(handle : J.Jvolve.handle) =
  match handle.J.Jvolve.h_outcome with
  | J.Jvolve.Pending -> ()
  | J.Jvolve.Applied _ ->
      (match
         ( Mempool.with_lock t.n_pool (fun () -> Mempool.find t.n_pool prop),
           t.n_applied )
       with
      | Some pr, Some (_, spec) ->
          t.n_inst.Instance.i_version <- pr.Mempool.p_from_version;
          t.n_inst.Instance.i_program <- spec.J.Spec.old_program;
          set_epoch t (pr.Mempool.p_epoch - 1)
      | _ -> ());
      t.n_applied <- None;
      Jv_obs.Obs.incr t.n_obs "gossip.reverts";
      readmit t;
      t.n_phase <- Idle
  | J.Jvolve.Reverted _ | J.Jvolve.Aborted _ ->
      (* the inverse update failed: this VM's state is not trusted *)
      t.n_inst.Instance.i_status <- Instance.Out_of_service;
      t.n_set_admit false;
      t.n_phase <- Stuck "inverse update failed"

(* A crashed VM can never reach a safe point, so a pending update,
   guard window, or inverse attempt on it would wedge the node forever.
   Mark it Stuck instead: [note_stuck] then pulls it from the epoch
   tallies and a supervisor restart rebuilds the node via [rejoin]. *)
let wedge_if_killed t ~doing =
  if VM.Vm.killed t.n_inst.Instance.i_vm <> None then begin
    t.n_applied <- None;
    t.n_inst.Instance.i_status <- Instance.Out_of_service;
    t.n_set_admit false;
    t.n_phase <- Stuck ("vm killed " ^ doing);
    true
  end
  else false

(* One decision step per fleet round. *)
let tick t ~now =
  (* fences first: a condemnation must interrupt whatever we are doing *)
  List.iter
    (fun (p : Mempool.proposal) -> enforce_fence t ~prop:p.Mempool.p_id ~now)
    (newly_fenced t);
  match t.n_phase with
  | Stuck _ -> ()
  | Idle -> (
      match actionable t with
      | None -> ()
      | Some p ->
          t.n_inst.Instance.i_status <- Instance.Draining;
          t.n_set_admit false;
          t.n_phase <-
            Draining
              { prop = p.Mempool.p_id; until = now + t.n_cfg.nc_drain_timeout })
  | Draining { prop; until } ->
      if t.n_in_flight () = 0 || now >= until then start_update t ~prop ~now
  | Updating { prop; handle } ->
      if wedge_if_killed t ~doing:"mid-update" then ()
      else if J.Jvolve.resolved handle then resolve_update t ~prop ~handle ~now
  | Guarded { prop; handle } ->
      if wedge_if_killed t ~doing:"during guard window" then ()
      else if not (J.Jvolve.guard_active handle) then begin
        match handle.J.Jvolve.h_outcome with
        | J.Jvolve.Pending -> ()
        | J.Jvolve.Applied _ ->
            (* clean close: the commit is final — unless the fence
               quorum arrived between the close and this scan *)
            if List.mem prop t.n_fenced then start_inverse t ~prop
            else t.n_phase <- Idle
        | J.Jvolve.Reverted v -> guard_reverted t ~prop v
        | J.Jvolve.Aborted a ->
            (* trip whose in-VM revert rolled forward: not trusted *)
            Mempool.with_lock t.n_pool (fun () ->
                cast t ~prop ~stance:Mempool.Con
                  ~why:
                    (Mempool.trip_prefix ^ "revert-failed:"
                   ^ J.Updater.abort_to_string a));
            t.n_inst.Instance.i_status <- Instance.Out_of_service;
            t.n_set_admit false;
            t.n_phase <- Stuck "guard revert failed"
      end
  | Reverting { prop; handle } ->
      if wedge_if_killed t ~doing:"mid-revert" then ()
      else if J.Jvolve.resolved handle then resolve_revert t ~prop ~handle
  | Backoff { prop; until } ->
      if now >= until then begin
        t.n_inst.Instance.i_status <- Instance.Draining;
        t.n_set_admit false;
        t.n_phase <- Draining { prop; until = now + t.n_cfg.nc_drain_timeout }
      end
