(* The per-instance update mempool: every node's local view of the
   update proposals and health votes circulating in the fleet, in the
   shape of cardano-sl's update-system MemState — one shared pool,
   accessed only under its lock, deduplicating everything so gossip can
   re-deliver items any number of times.

   Two item kinds live here:

   - a {e proposal}: one requested epoch transition (spec digest, from-
     and to-version, proposed epoch, originating node);
   - a {e vote}: one node's signed stance on one proposal.  [Pro] votes
     feed the apply quorum; [Con] votes whose reason carries the
     ["trip:"] prefix are guard-trip verdicts and feed the fence quorum.

   Votes are keyed (proposal, voter) and {e con-sticky}: a voter may
   harden Pro -> Con (its guard tripped after it voted to apply) but a
   later Pro never overwrites a Con — a node that saw its guard trip
   must not be talked back into applying by a re-delivered stale vote.

   The lock is deliberately crude — a boolean plus [Not_locked] on every
   access outside [with_lock], non-reentrant — because what it checks is
   the discipline, not mutual exclusion: the simulation is single-
   threaded, but every code path must still tolerate the discipline a
   real concurrent pool would impose. *)

type proposal = {
  p_id : string; (* content id: digest of (epoch, versions, spec digest) *)
  p_epoch : int; (* the epoch this proposal advances the fleet to *)
  p_from_version : string;
  p_to_version : string;
  p_digest : string; (* digest of the new version's program source *)
  p_origin : int; (* proposing node *)
}

type stance = Pro | Con

type vote = {
  v_prop : string; (* proposal id *)
  v_voter : int;
  v_stance : stance;
  v_why : string; (* "trip:<verdict>" marks a guard-trip verdict *)
}

exception Not_locked

let trip_prefix = "trip:"

let is_trip_vote v =
  v.v_stance = Con
  && String.length v.v_why >= String.length trip_prefix
  && String.sub v.v_why 0 (String.length trip_prefix) = trip_prefix

let proposal_id ~epoch ~from_version ~to_version ~digest =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d|%s|%s|%s" epoch from_version to_version digest))

type t = {
  mutable locked : bool;
  mutable proposals : proposal list; (* insertion order, newest last *)
  by_id : (string, proposal) Hashtbl.t;
  votes : (string * int, vote) Hashtbl.t; (* (proposal, voter) *)
  mutable vote_keys : (string * int) list; (* insertion order *)
}

let create () =
  {
    locked = false;
    proposals = [];
    by_id = Hashtbl.create 8;
    votes = Hashtbl.create 32;
    vote_keys = [];
  }

let with_lock t f =
  if t.locked then invalid_arg "Mempool.with_lock: non-reentrant";
  t.locked <- true;
  Fun.protect ~finally:(fun () -> t.locked <- false) f

let require_lock t = if not t.locked then raise Not_locked

(* --- mutation (lock required) ------------------------------------------ *)

let add_proposal t p : [ `Fresh | `Duplicate ] =
  require_lock t;
  if Hashtbl.mem t.by_id p.p_id then `Duplicate
  else begin
    Hashtbl.replace t.by_id p.p_id p;
    t.proposals <- t.proposals @ [ p ];
    `Fresh
  end

(* A vote need not find its proposal first — gossip reorders freely —
   so orphan votes are kept and counted once the proposal arrives. *)
let add_vote t v : [ `Fresh | `Hardened | `Stale ] =
  require_lock t;
  let key = (v.v_prop, v.v_voter) in
  match Hashtbl.find_opt t.votes key with
  | None ->
      Hashtbl.replace t.votes key v;
      t.vote_keys <- t.vote_keys @ [ key ];
      `Fresh
  | Some old -> (
      match (old.v_stance, v.v_stance) with
      | Pro, Con ->
          Hashtbl.replace t.votes key v;
          `Hardened
      | _ -> `Stale (* same stance, or Pro after Con: con-sticky *))

(* --- reads (lock required) --------------------------------------------- *)

let find t id =
  require_lock t;
  Hashtbl.find_opt t.by_id id

let proposals t =
  require_lock t;
  t.proposals

let vote_for t ~prop ~voter =
  require_lock t;
  Hashtbl.find_opt t.votes (prop, voter)

let votes t ~prop =
  require_lock t;
  List.filter_map
    (fun ((p, _) as key) ->
      if p = prop then Hashtbl.find_opt t.votes key else None)
    t.vote_keys

(* (pro, con, trip) tallies for one proposal. *)
let tally t ~prop =
  let vs = votes t ~prop in
  List.fold_left
    (fun (pro, con, trip) v ->
      match v.v_stance with
      | Pro -> (pro + 1, con, trip)
      | Con -> (pro, con + 1, if is_trip_vote v then trip + 1 else trip))
    (0, 0, 0) vs

(* --- anti-entropy digests ---------------------------------------------- *)

(* Stable keys naming every item this pool holds, in insertion order, so
   two pools that saw the same items in the same order produce the same
   digest.  A vote's key carries its stance: a hardened Pro -> Con vote
   is a different item than the Pro it replaced, and reconciliation must
   move it. *)
let keys t =
  require_lock t;
  List.map (fun p -> "P:" ^ p.p_id) t.proposals
  @ List.filter_map
      (fun key ->
        match Hashtbl.find_opt t.votes key with
        | None -> None
        | Some v ->
            Some
              (Printf.sprintf "V:%s:%d:%s" v.v_prop v.v_voter
                 (match v.v_stance with Pro -> "P" | Con -> "C")))
      t.vote_keys

(* Items of [t] whose keys the remote digest lacks (what we should push
   back during reconciliation). *)
let missing_from t ~remote_keys =
  require_lock t;
  let remote = Hashtbl.create (List.length remote_keys) in
  List.iter (fun k -> Hashtbl.replace remote k ()) remote_keys;
  let props =
    List.filter (fun p -> not (Hashtbl.mem remote ("P:" ^ p.p_id))) t.proposals
  in
  let vs =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt t.votes key with
        | None -> None
        | Some v ->
            let k =
              Printf.sprintf "V:%s:%d:%s" v.v_prop v.v_voter
                (match v.v_stance with Pro -> "P" | Con -> "C")
            in
            if Hashtbl.mem remote k then None else Some v)
      t.vote_keys
  in
  (props, vs)

let size t =
  require_lock t;
  List.length t.proposals + List.length t.vote_keys
