(* The gossip runtime: a control plane for decentralized rollouts.

   Every fleet instance gets a [Node] and a listener on a shared control
   simnet (base port + id).  Dissemination is classic push rumor
   mongering plus periodic anti-entropy, both drawing every random
   choice from one [Jv_faults] stream so a (plan, seed) pair replays the
   whole rollout byte-for-byte:

   - {e rumor push}: an item a node just learned stays "hot" for
     [g_rumor_rounds] rounds; each round the node opens short-lived
     connections to [g_fanout] randomly drawn peers and pushes every hot
     line, fire-and-forget;
   - {e anti-entropy}: every [g_digest_every] rounds (staggered by node
     id) a node sends one random peer a digest of its mempool keys; the
     peer pushes back whatever the digest lacks and answers WANT for
     what it is missing itself — this pull half is what drags stragglers
     back after drops, delays and healed partitions.

   The chaos plan armed on the control net (net.connect / net.link /
   simnet.partition points) is the same [Faults.t] the peer chooser
   draws from, so faults and schedules stay aligned under one seed.

   No component here sees the whole fleet: the runtime moves bytes and
   steps nodes; every halt/fence/apply decision is taken inside a node
   from its own mempool. *)

module J = Jvolve_core
module VM = Jv_vm
module F = Jv_fleet
module Simnet = Jv_simnet.Simnet
module Faults = Jv_faults.Faults
module Obs = Jv_obs.Obs

let default_base_port = 7000

type params = {
  g_fanout : int;
  g_rumor_rounds : int; (* rounds an item stays hot *)
  g_digest_every : int; (* anti-entropy period per node *)
  g_quorum : float; (* apply at ceil(q * N) Pro votes *)
  g_fence_quorum : float; (* fence at max 1 (ceil(fq * N)) trip votes *)
  g_apply_jitter : int; (* max random per-node delay before draining *)
  g_drain_timeout : int;
  g_update_timeout : int;
  g_probe_deadline : int;
  g_max_retries : int;
  g_backoff_base : int;
  g_guard : J.Guard.config option; (* probe bound per node if absent *)
  g_seed : int;
}

let default_params =
  {
    g_fanout = 3;
    g_rumor_rounds = 4;
    g_digest_every = 16;
    g_quorum = 0.51;
    g_fence_quorum = 0.0; (* -> threshold 1: any trip verdict fences *)
    g_apply_jitter = 24;
    g_drain_timeout = 120;
    g_update_timeout = 400;
    g_probe_deadline = 80;
    g_max_retries = 2;
    g_backoff_base = 40;
    g_guard = None;
    g_seed = 42;
  }

type hot = { h_line : string; mutable h_ttl : int }

let is_settled_phase = function
  | Node.Idle | Node.Stuck _ -> true
  | _ -> false

type peer_state = {
  mutable ps_node : Node.t; (* replaced on supervisor rejoin *)
  ps_port : int;
  ps_listener : int;
  mutable ps_sconns : int list; (* server conns, accept order *)
  mutable ps_hot : hot list; (* newest last *)
  mutable ps_digests : (int * int) list; (* open digest conns: (cid, ttl) *)
}

type t = {
  fleet : F.Fleet.t;
  params : params;
  net : Simnet.t; (* the shared control plane *)
  rng : Faults.t; (* chaos plan AND schedule randomness *)
  mutable peers : peer_state array;
  base_port : int;
  quorum : int;
  fence : int;
  compiled : (string, Jv_classfile.Cls.t list) Hashtbl.t;
  epoch_counts : (int, int) Hashtbl.t; (* over live (counted) nodes *)
  counted : bool array; (* node still in the convergence tally *)
  mutable mixed_window : int;
  mutable last_net_bytes : int;
  mutable proposed_epoch : int option; (* highest epoch ever proposed *)
}

let obs t = F.Fleet.obs t.fleet

(* --- construction ------------------------------------------------------- *)

let count_epoch t ~old_epoch ~new_epoch =
  let get e = Option.value ~default:0 (Hashtbl.find_opt t.epoch_counts e) in
  (match old_epoch with
  | None -> ()
  | Some e ->
      let n = get e - 1 in
      if n <= 0 then Hashtbl.remove t.epoch_counts e
      else Hashtbl.replace t.epoch_counts e n);
  match new_epoch with
  | None -> ()
  | Some e -> Hashtbl.replace t.epoch_counts e (get e + 1)

let spec_digest profile ~to_version =
  Digest.to_hex (Digest.string (F.Profile.source profile ~version:to_version))

let compile_cached t ~version =
  match Hashtbl.find_opt t.compiled version with
  | Some p -> p
  | None ->
      let p = F.Profile.compile t.fleet.F.Fleet.profile ~version in
      Hashtbl.replace t.compiled version p;
      p

let guard_for params (profile : F.Profile.t) (inst : F.Instance.t) =
  match params.g_guard with
  | None -> None
  | Some cfg ->
      Some
        (match cfg.J.Guard.c_probe with
        | Some _ -> cfg
        | None ->
            {
              cfg with
              J.Guard.c_probe =
                Some
                  (J.Guard.probe_config ~every:20
                     ~deadline:params.g_probe_deadline
                     ~port:inst.F.Instance.i_port
                     ~line:profile.F.Profile.pr_health_probe
                     ~ok:profile.F.Profile.pr_health_ok ());
            })

(* Build the [Node] for instance [id], drawing its backoff jitter from
   the shared schedule stream.  Used by [create] for every instance and
   again by [rejoin] when the supervisor replaces a crashed VM — the
   closures capture the (mutable) [Instance.t] record, not the VM, so
   they stay valid across a reboot. *)
let node_for t ~id ~epoch =
  let profile = t.fleet.F.Fleet.profile in
  let inst = F.Fleet.instance t.fleet id in
  let lb = F.Fleet.lb t.fleet in
  let jitter =
    if t.params.g_apply_jitter > 0 then
      Faults.draw_int t.rng (t.params.g_apply_jitter + 1)
    else 0
  in
  let cfg =
    {
      Node.nc_quorum = t.quorum;
      nc_fence = t.fence;
      nc_drain_timeout = t.params.g_drain_timeout;
      nc_update_timeout = t.params.g_update_timeout;
      nc_max_retries = t.params.g_max_retries;
      nc_backoff_base = t.params.g_backoff_base + jitter;
      nc_guard = guard_for t.params profile inst;
    }
  in
  Node.create ~epoch ~id ~inst ~cfg
    ~set_admit:(fun admit -> F.Lb.set_admit lb ~id admit)
    ~in_flight:(fun () -> F.Lb.in_flight lb ~id)
    ~spec_for:(fun (p : Mempool.proposal) ->
      if p.Mempool.p_from_version <> inst.F.Instance.i_version then
        Error "base version mismatch"
      else
        Ok
          (Jv_apps.Common.spec
             ~overrides:
               (profile.F.Profile.pr_overrides
                  ~to_version:p.Mempool.p_to_version)
             ~version_tag:
               (F.Profile.version_tag
                  ~from_version:p.Mempool.p_from_version ~instance_id:id)
             ~old_program:inst.F.Instance.i_program
             ~new_program:(compile_cached t ~version:p.Mempool.p_to_version)
             ()))
    ~on_epoch:(fun old_e new_e ->
      count_epoch t ~old_epoch:(Some old_e) ~new_epoch:(Some new_e))
    ()

(* [chaos], when given, is armed on the control net (net.connect,
   net.link, simnet.partition) and replaces the plain seeded stream as
   the source of every schedule draw. *)
let create ?chaos ?(params = default_params) ~fleet () =
  let n = F.Fleet.size fleet in
  let net = Simnet.create () in
  Simnet.set_obs net (F.Fleet.obs fleet);
  let rng =
    match chaos with
    | Some p -> p
    | None -> Faults.create ~seed:params.g_seed ()
  in
  (match chaos with
  | Some p ->
      Simnet.set_faults net (Some p);
      Faults.set_obs p (F.Fleet.obs fleet)
  | None -> ());
  let quorum =
    max 1 (int_of_float (ceil (params.g_quorum *. float_of_int n)))
  in
  let fence =
    max 1 (int_of_float (ceil (params.g_fence_quorum *. float_of_int n)))
  in
  let t =
    {
      fleet;
      params;
      net;
      rng;
      peers = [||];
      base_port = default_base_port;
      quorum;
      fence;
      compiled = Hashtbl.create 4;
      epoch_counts = Hashtbl.create 4;
      counted = Array.make n true;
      mixed_window = 0;
      last_net_bytes = 0;
      proposed_epoch = None;
    }
  in
  Hashtbl.replace t.epoch_counts 0 n;
  let peers =
    Array.init n (fun id ->
        let port = t.base_port + id in
        let listener = Simnet.listen net ~port in
        {
          ps_node = node_for t ~id ~epoch:0;
          ps_port = port;
          ps_listener = listener;
          ps_sconns = [];
          ps_hot = [];
          ps_digests = [];
        })
  in
  t.peers <- peers;
  t

let node t id = t.peers.(id).ps_node
let size t = Array.length t.peers

(* Per-node jitter also spreads drain starts; see nc_backoff_base above.
   The first apply wave is additionally staggered by casting the initial
   quorum threshold per node... (kept simple: jitter on backoff only). *)

(* --- proposing ---------------------------------------------------------- *)

(* Inject a proposal at [origin]'s mempool, exactly as if it had arrived
   over the wire: the node votes and the rumor starts spreading from
   there.  Returns the proposal id. *)
let propose t ~origin ~to_version =
  let profile = t.fleet.F.Fleet.profile in
  let nd = node t origin in
  let inst = t.fleet |> fun f -> F.Fleet.instance f origin in
  let from_version = inst.F.Instance.i_version in
  let epoch = Node.epoch nd + 1 in
  let digest = spec_digest profile ~to_version in
  let id = Mempool.proposal_id ~epoch ~from_version ~to_version ~digest in
  let p =
    {
      Mempool.p_id = id;
      p_epoch = epoch;
      p_from_version = from_version;
      p_to_version = to_version;
      p_digest = digest;
      p_origin = origin;
    }
  in
  t.proposed_epoch <-
    Some (max epoch (Option.value ~default:0 t.proposed_epoch));
  Obs.emit (obs t) ~scope:"gossip" "propose"
    [
      ("origin", Obs.Int origin);
      ("epoch", Obs.Int epoch);
      ("to", Obs.Str to_version);
      ("id", Obs.Str id);
    ];
  Node.learn nd (Wire.Prop p);
  id

(* --- the wire ----------------------------------------------------------- *)

let key_item pool key : Wire.msg option =
  match String.split_on_char ':' key with
  | [ "P"; id ] ->
      Option.map (fun p -> Wire.Prop p) (Mempool.find pool id)
  | [ "V"; prop; voter; _stance ] -> (
      match int_of_string_opt voter with
      | None -> None
      | Some voter ->
          Option.map (fun v -> Wire.Vote v) (Mempool.vote_for pool ~prop ~voter))
  | _ -> None

(* Server side: ingest every line pending on [ps]'s accepted conns,
   answering digests in place. *)
let serve t (ps : peer_state) =
  (* accept everything pending *)
  let rec accept_all () =
    match Simnet.accept t.net ~listener_id:ps.ps_listener with
    | None -> ()
    | Some cid ->
        ps.ps_sconns <- ps.ps_sconns @ [ cid ];
        accept_all ()
  in
  accept_all ();
  let handle_line cid line =
    match Wire.decode line with
    | Error _ -> Obs.incr (obs t) "gossip.bad_lines"
    | Ok (Wire.Prop _ as m) | Ok (Wire.Vote _ as m) -> Node.learn ps.ps_node m
    | Ok (Wire.Digest { d_keys; _ }) ->
        let missing_props, missing_votes, want =
          Mempool.with_lock (Node.pool ps.ps_node) (fun () ->
              let pool = Node.pool ps.ps_node in
              let props, votes = Mempool.missing_from pool ~remote_keys:d_keys in
              let ours = Mempool.keys pool in
              let mine = Hashtbl.create 32 in
              List.iter (fun k -> Hashtbl.replace mine k ()) ours;
              let want =
                List.filter (fun k -> not (Hashtbl.mem mine k)) d_keys
              in
              (props, votes, want))
        in
        if missing_props <> [] || missing_votes <> [] || want <> [] then
          Obs.incr (obs t) "gossip.digest_reconciliations";
        List.iter
          (fun p -> Simnet.send t.net ~conn_id:cid (Wire.encode (Wire.Prop p)))
          missing_props;
        List.iter
          (fun v -> Simnet.send t.net ~conn_id:cid (Wire.encode (Wire.Vote v)))
          missing_votes;
        if want <> [] then
          Simnet.send t.net ~conn_id:cid (Wire.encode (Wire.Want want))
    | Ok (Wire.Want keys) ->
        List.iter
          (fun k ->
            match
              Mempool.with_lock (Node.pool ps.ps_node) (fun () ->
                  key_item (Node.pool ps.ps_node) k)
            with
            | Some m -> Simnet.send t.net ~conn_id:cid (Wire.encode m)
            | None -> ())
          keys
    | Ok Wire.Bye -> ()
  in
  ps.ps_sconns <-
    List.filter
      (fun cid ->
        let rec drain () =
          match Simnet.recv_line t.net ~conn_id:cid with
          | `Line l ->
              handle_line cid l;
              drain ()
          | `Wait -> true
          | `Eof ->
              Simnet.close_server t.net ~conn_id:cid;
              Simnet.reap t.net ~conn_id:cid;
              false
        in
        drain ())
      ps.ps_sconns

(* Draw a random peer other than [self]; [None] on a 1-node fleet. *)
let draw_peer t ~self =
  let n = size t in
  if n <= 1 then None
  else
    let j = Faults.draw_int t.rng (n - 1) in
    Some (if j >= self then j + 1 else j)

(* Fire-and-forget rumor push: all hot lines to [g_fanout] random peers.
   A refused connect (partition, net.connect fault) just loses this
   push; anti-entropy repairs later. *)
let push_rumors t ~self (ps : peer_state) =
  if ps.ps_hot <> [] then begin
    for _ = 1 to t.params.g_fanout do
      match draw_peer t ~self with
      | None -> ()
      | Some peer -> (
          match
            Simnet.connect ~from:ps.ps_port t.net
              ~port:(t.base_port + peer)
          with
          | None -> Obs.incr (obs t) "gossip.push_refused"
          | Some cid ->
              List.iter
                (fun h -> Simnet.client_send t.net ~conn_id:cid h.h_line)
                ps.ps_hot;
              Simnet.client_send t.net ~conn_id:cid (Wire.encode Wire.Bye);
              Simnet.client_close t.net ~conn_id:cid;
              Obs.incr (obs t) "gossip.pushes")
    done;
    List.iter (fun h -> h.h_ttl <- h.h_ttl - 1) ps.ps_hot;
    ps.ps_hot <- List.filter (fun h -> h.h_ttl > 0) ps.ps_hot
  end

(* Open one anti-entropy exchange: send our digest, keep the connection
   to read the peer's answer (missing items now, WANT answered next
   round). *)
let start_digest t ~self (ps : peer_state) =
  match draw_peer t ~self with
  | None -> ()
  | Some peer -> (
      match
        Simnet.connect ~from:ps.ps_port t.net ~port:(t.base_port + peer)
      with
      | None -> Obs.incr (obs t) "gossip.digest_refused"
      | Some cid ->
          let keys =
            Mempool.with_lock (Node.pool ps.ps_node) (fun () ->
                Mempool.keys (Node.pool ps.ps_node))
          in
          Simnet.client_send t.net ~conn_id:cid
            (Wire.encode
               (Wire.Digest
                  {
                    d_sender = self;
                    d_epoch = Node.epoch ps.ps_node;
                    d_keys = keys;
                  }));
          ps.ps_digests <-
            ps.ps_digests @ [ (cid, 2 * t.params.g_digest_every) ])

(* Pump open digest exchanges: learn pushed items, answer WANTs, expire
   exchanges a partition left hanging. *)
let pump_digests t (ps : peer_state) =
  ps.ps_digests <-
    List.filter_map
      (fun (cid, ttl) ->
        let finished = ref false in
        let rec drain () =
          match Simnet.client_recv t.net ~conn_id:cid with
          | `Wait -> ()
          | `Eof -> finished := true
          | `Line l ->
              (match Wire.decode l with
              | Ok (Wire.Prop _ as m) | Ok (Wire.Vote _ as m) ->
                  Node.learn ps.ps_node m
              | Ok (Wire.Want keys) ->
                  List.iter
                    (fun k ->
                      match
                        Mempool.with_lock (Node.pool ps.ps_node) (fun () ->
                            key_item (Node.pool ps.ps_node) k)
                      with
                      | Some m ->
                          Simnet.client_send t.net ~conn_id:cid
                            (Wire.encode m)
                      | None -> ())
                    keys;
                  Simnet.client_send t.net ~conn_id:cid
                    (Wire.encode Wire.Bye);
                  Simnet.client_close t.net ~conn_id:cid;
                  finished := true
              | Ok (Wire.Digest _ | Wire.Bye) | Error _ -> ());
              if not !finished then drain ()
        in
        drain ();
        if !finished then None
        else if ttl <= 1 then begin
          (* peer unreachable (partition?): give up on this exchange *)
          Simnet.client_close t.net ~conn_id:cid;
          None
        end
        else Some (cid, ttl - 1))
      ps.ps_digests

(* --- rejoin ------------------------------------------------------------- *)

(* Rebuild instance [id]'s gossip node after a supervisor restart.  The
   restarted VM carries no mempool and no epoch history, so the node:

   - adopts the {e mode} epoch of the surviving tally (tie -> higher:
     under-claiming would re-count an already-applied hop as progress);
   - is re-entered into the convergence tallies ([note_stuck] removed it
     when the crash wedged the old node);
   - bootstraps its empty mempool by opening an anti-entropy exchange
     immediately: the DIGEST/WANT pull brings back every proposal, vote
     and trip verdict the fleet holds, and the learned trip votes are
     what stop the rejoiner from re-applying a fenced update —
     [Node.actionable] refuses any proposal at or past the fence
     threshold.

   The listener and half-read server connections live on the shared
   control net, not the dead VM, so they survive; only the hot-rumor
   queue and open client exchanges of the old node are discarded. *)
let rejoin t id =
  let ps = t.peers.(id) in
  let epoch =
    let best =
      Hashtbl.fold
        (fun e n best ->
          match best with
          | Some (be, bn) when bn > n || (bn = n && be > e) -> best
          | _ -> Some (e, n))
        t.epoch_counts None
    in
    match best with Some (e, _) -> e | None -> Node.epoch ps.ps_node
  in
  let old_epoch =
    if t.counted.(id) then Some (Node.epoch ps.ps_node) else None
  in
  count_epoch t ~old_epoch ~new_epoch:(Some epoch);
  t.counted.(id) <- true;
  ps.ps_node <- node_for t ~id ~epoch;
  ps.ps_hot <- [];
  List.iter
    (fun (cid, _) -> Simnet.client_close t.net ~conn_id:cid)
    ps.ps_digests;
  ps.ps_digests <- [];
  Obs.incr (obs t) "gossip.rejoins";
  Obs.emit (obs t) ~scope:"gossip" "node.rejoin"
    [ ("node", Obs.Int id); ("epoch", Obs.Int epoch) ];
  start_digest t ~self:id ps

(* --- the round ---------------------------------------------------------- *)

let note_stuck t =
  Array.iteri
    (fun id ps ->
      if t.counted.(id) && not (Node.live ps.ps_node) then begin
        t.counted.(id) <- false;
        count_epoch t
          ~old_epoch:(Some (Node.epoch ps.ps_node))
          ~new_epoch:None;
        Obs.incr (obs t) "gossip.stuck_nodes"
      end)
    t.peers

let step t =
  F.Fleet.round t.fleet;
  let now = F.Fleet.ticks t.fleet in
  Obs.incr (obs t) "gossip.rounds";
  Simnet.tick_faults t.net;
  (* ingest, decide, then spread what this round produced *)
  Array.iter (fun ps -> serve t ps) t.peers;
  Array.iter (fun ps -> pump_digests t ps) t.peers;
  Array.iter (fun ps -> Node.tick ps.ps_node ~now) t.peers;
  note_stuck t;
  Array.iteri
    (fun _ ps ->
      List.iter
        (fun m ->
          ps.ps_hot <-
            ps.ps_hot
            @ [ { h_line = Wire.encode m; h_ttl = t.params.g_rumor_rounds } ])
        (Node.take_out ps.ps_node))
    t.peers;
  (* Anti-entropy runs only while there is something to reconcile:
     once every node settled on one epoch with no hot rumors left AND
     every mempool holds the same key set, a new digest exchange would
     carry nothing, and stopping them lets [run] detect quiescence
     instead of chasing a perpetually refreshed exchange.  The key-set
     check is what keeps a partitioned minority reachable: its nodes
     are settled on the old epoch with their rumors expired, but their
     pools lag, so digests keep flowing and the pull half rescues them
     after the heal.  The expensive comparison only runs once the
     cheap settled/uniform/no-hot prefix holds — i.e. at most a
     handful of rounds before [run] exits. *)
  let pools_synced () =
    let n = Array.length t.peers in
    n = 0
    ||
    let pool0 = Node.pool t.peers.(0).ps_node in
    let size0, keys0 =
      Mempool.with_lock pool0 (fun () ->
          (Mempool.size pool0, Mempool.keys pool0))
    in
    let set0 = Hashtbl.create (max 16 size0) in
    List.iter (fun k -> Hashtbl.replace set0 k ()) keys0;
    Array.for_all
      (fun ps ->
        let pool = Node.pool ps.ps_node in
        Mempool.with_lock pool (fun () ->
            Mempool.size pool = size0
            && List.for_all (Hashtbl.mem set0) (Mempool.keys pool)))
      t.peers
  in
  let quiet =
    Hashtbl.length t.epoch_counts = 1
    && Array.for_all
         (fun ps ->
           is_settled_phase (Node.phase ps.ps_node) && ps.ps_hot = [])
         t.peers
    && pools_synced ()
  in
  Array.iteri
    (fun id ps ->
      push_rumors t ~self:id ps;
      if (not quiet) && (now + id) mod t.params.g_digest_every = 0 then
        start_digest t ~self:id ps)
    t.peers;
  (* accounting *)
  let to_srv, to_cli = Simnet.stats t.net in
  let total = to_srv + to_cli in
  if total > t.last_net_bytes then begin
    Obs.incr (obs t) ~by:(total - t.last_net_bytes) "gossip.rumor_bytes";
    t.last_net_bytes <- total
  end;
  if Hashtbl.length t.epoch_counts > 1 then begin
    t.mixed_window <- t.mixed_window + 1;
    Obs.incr (obs t) "gossip.mixed_rounds"
  end

(* --- convergence -------------------------------------------------------- *)

(* All counted nodes share one epoch (incrementally maintained). *)
let uniform_epoch t =
  if Hashtbl.length t.epoch_counts = 1 then
    Hashtbl.fold (fun e _ _ -> Some e) t.epoch_counts None
  else None

(* No node is mid-protocol: every live node is Idle or Guarded-closed. *)
let settled t =
  Array.for_all (fun ps -> is_settled_phase (Node.phase ps.ps_node)) t.peers

let converged t = settled t && uniform_epoch t <> None
let mixed_window t = t.mixed_window

let run t ?(on_round = fun _ -> ()) ~max_rounds () =
  let rec go r =
    if r >= max_rounds then r
    else begin
      step t;
      on_round t;
      (* a rollout is done when dissemination has quiesced too: no hot
         rumors left anywhere, so convergence is not a lucky instant *)
      if
        converged t
        && Array.for_all
             (fun ps -> ps.ps_hot = [] && ps.ps_digests = [])
             t.peers
      then r + 1
      else go (r + 1)
    end
  in
  go 0

(* --- reporting ---------------------------------------------------------- *)

type report = {
  gr_rounds : int;
  gr_converged : bool;
  gr_epoch : int option; (* the common epoch, when converged *)
  gr_applied : int; (* live nodes above epoch 0 *)
  gr_stuck : int list;
  gr_fenced : bool; (* any node enforced a fence *)
  gr_mixed_window : int;
  gr_rumor_bytes : int;
  gr_pushes : int;
  gr_digest_recons : int;
  gr_votes_seen : int;
  gr_guard_trips : int;
  gr_reverts : int;
}

let fleet_counter t name = Obs.counter_value (obs t) name

let node_counter_sum t name =
  Array.fold_left
    (fun acc ps ->
      acc
      + Obs.counter_value (VM.Vm.obs ps.ps_node.Node.n_inst.F.Instance.i_vm)
          name)
    0 t.peers

let report t ~rounds =
  let stuck =
    Array.to_list t.peers
    |> List.filteri (fun _ ps -> not (Node.live ps.ps_node))
    |> List.map (fun ps -> ps.ps_node.Node.n_id)
  in
  let applied =
    Array.fold_left
      (fun acc ps ->
        if Node.live ps.ps_node && Node.epoch ps.ps_node > 0 then acc + 1
        else acc)
      0 t.peers
  in
  let votes_seen = node_counter_sum t "gossip.votes_seen" in
  let guard_trips = node_counter_sum t "gossip.guard_trips" in
  let reverts = node_counter_sum t "gossip.reverts" in
  let fences = node_counter_sum t "gossip.fences_enforced" in
  (* fleet-sink roll-ups so one export shows the whole story *)
  Obs.set_gauge (obs t) "gossip.fleet.votes_seen" (float_of_int votes_seen);
  Obs.set_gauge (obs t) "gossip.fleet.guard_trips" (float_of_int guard_trips);
  Obs.set_gauge (obs t) "gossip.fleet.reverts" (float_of_int reverts);
  {
    gr_rounds = rounds;
    gr_converged = converged t;
    gr_epoch = uniform_epoch t;
    gr_applied = applied;
    gr_stuck = stuck;
    gr_fenced = fences > 0;
    gr_mixed_window = t.mixed_window;
    gr_rumor_bytes = fleet_counter t "gossip.rumor_bytes";
    gr_pushes = fleet_counter t "gossip.pushes";
    gr_digest_recons = fleet_counter t "gossip.digest_reconciliations";
    gr_votes_seen = votes_seen;
    gr_guard_trips = guard_trips;
    gr_reverts = reverts;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "%s in %d rounds: epoch %s, %d applied, %d stuck%s | mixed window %d \
     rounds | %d pushes, %d reconciliations, %d votes seen, %d KiB gossiped"
    (if r.gr_converged then "CONVERGED" else "NOT CONVERGED")
    r.gr_rounds
    (match r.gr_epoch with None -> "mixed" | Some e -> string_of_int e)
    r.gr_applied
    (List.length r.gr_stuck)
    (if r.gr_fenced then
       Printf.sprintf " | FENCED (%d guard trip(s), %d inverse updates)"
         r.gr_guard_trips r.gr_reverts
     else "")
    r.gr_mixed_window r.gr_pushes r.gr_digest_recons r.gr_votes_seen
    (r.gr_rumor_bytes / 1024)
