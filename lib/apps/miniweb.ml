(* miniweb: the Jetty-analogue HTTP server (paper §4.2, Table 2).

   A multi-threaded line-protocol web server written in MiniJava: an
   acceptor thread ([ThreadedServer.run] / [acceptSocket]), a pool of
   worker threads ([PoolThread.run]) feeding off a shared connection
   queue, a handler chain with virtual dispatch, a static resource cache,
   and assorted config/log/stats plumbing.

   Twelve versions, 5.1.0 through 5.1.11, derived by source patches whose
   change mix mirrors the paper's Table 2:
   - 5.1.1, 5.1.2, 5.1.8, 5.1.9, 5.1.10, 5.1.11 are method-body-only
     releases (the ones an edit-and-continue system could also apply);
   - 5.1.11 is additionally {e semantically} broken (admission-clean but
     404s most static traffic) — the guard-window benchmarks' bad update;
   - 5.1.3 changes [ThreadedServer.acceptSocket] and [PoolThread.run],
     which are always on stack, so the dynamic update cannot reach a safe
     point and must abort — the paper's one Jetty failure;
   - 5.1.5 is the big release (field/method additions to classes the pool
     loop references, forcing OSR of [PoolThread.run]);
   - the rest add/delete fields and change signatures. *)

let protocol_port = 8080

let base_version = "5.1.0"

let base_src =
  {|
class Config {
  static int port = 8080;
  static int poolSize = 4;
  static String serverName = "MiniWeb/5.1";
}
class Log {
  static boolean verbose = false;
  static void info(String m) { if (verbose) { Sys.println("[web] " + m); } }
}
class Stats {
  static int requests = 0;
  static int errors = 0;
  static void request() { requests = requests + 1; }
  static void error() { errors = errors + 1; }
}
class ConnQueue {
  static int[] items;
  static int head;
  static int tail;
  static int count;
  static void init(int cap) { items = new int[cap]; head = 0; tail = 0; count = 0; }
  static void put(int c) {
    if (count >= items.length) { Net.close(c); return; }
    items[tail] = c;
    tail = (tail + 1) % items.length;
    count = count + 1;
  }
  static int take() {
    if (count == 0) { return 0; }
    int c = items[head];
    head = (head + 1) % items.length;
    count = count - 1;
    return c;
  }
}
class ThreadedServer {
  int listener;
  ThreadedServer(int port) { listener = Net.listen(port); }
  int acceptSocket() {
    return Net.accept(listener);
  }
  void run() {
    while (true) {
      int conn = acceptSocket();
      ConnQueue.put(conn);
    }
  }
}
class PoolThread {
  int id;
  PoolThread(int n) { id = n; }
  void run() {
    while (true) {
      int conn = ConnQueue.take();
      if (conn == 0) { Thread.yieldNow(); }
      else {
        HttpConnection h = new HttpConnection(conn);
        h.handle();
      }
    }
  }
}
class HttpRequest {
  String method;
  String path;
  boolean bad;
  HttpRequest(String line) {
    String[] parts = line.split(" ", 0);
    if (parts.length < 2) { bad = true; method = ""; path = ""; }
    else { bad = false; method = parts[0]; path = parts[1]; }
  }
}
class HttpResponse {
  int status;
  String reason;
  String ctype;
  String body;
  HttpResponse(int s, String r, String ct, String b) {
    status = s; reason = r; ctype = ct; body = b;
  }
  String render() {
    return "HTTP/1.0 " + status + " " + reason + " " + ctype + " " + body.length() + " " + body;
  }
}
class Handler {
  boolean matches(HttpRequest r) { return true; }
  HttpResponse handle(HttpRequest r) {
    return new HttpResponse(500, "Error", "text/plain", "unhandled");
  }
}
class StaticHandler extends Handler {
  boolean matches(HttpRequest r) {
    return ResourceCache.lookup(r.path) != null;
  }
  HttpResponse handle(HttpRequest r) {
    String body = ResourceCache.lookup(r.path);
    return new HttpResponse(200, "OK", Mime.typeOf(r.path), body);
  }
}
class NotFoundHandler extends Handler {
  boolean matches(HttpRequest r) { return true; }
  HttpResponse handle(HttpRequest r) {
    Stats.error();
    return new HttpResponse(404, "NotFound", "text/plain", ErrorPages.notFound(r.path));
  }
}
class StringUtil {
  static String pad(String s, int width) {
    String out = s;
    while (out.length() < width) { out = out + " "; }
    return out;
  }
  static String join(String[] parts, String sep) {
    String out = "";
    for (int i = 0; i < parts.length; i = i + 1) {
      if (i > 0) { out = out + sep; }
      out = out + parts[i];
    }
    return out;
  }
  static boolean isDigits(String s) {
    if (s.length() == 0) { return false; }
    for (int i = 0; i < s.length(); i = i + 1) {
      int c = s.charAt(i);
      if (c < 48 || c > 57) { return false; }
    }
    return true;
  }
}
class RequestTimer {
  static int marks = 0;
  static void mark() { marks = marks + 1; }
  static int count() { return marks; }
}
class ErrorPages {
  static String notFound(String path) {
    return "no such resource";
  }
  static String badRequest() { return "malformed request line"; }
}
class HealthHandler extends Handler {
  boolean matches(HttpRequest r) { return r.path.equals("/healthz"); }
  HttpResponse handle(HttpRequest r) {
    return new HttpResponse(200, "OK", "text/plain", "healthy");
  }
}
class StatusHandler extends Handler {
  boolean matches(HttpRequest r) { return r.path.equals("/status"); }
  HttpResponse handle(HttpRequest r) {
    String line = StringUtil.pad("marks=" + RequestTimer.count(), 12)
      + " uptime=" + Sys.time();
    return new HttpResponse(200, "OK", "text/plain", line);
  }
}
class HandlerChain {
  static Handler[] handlers;
  static void init() {
    handlers = new Handler[4];
    handlers[0] = new StaticHandler();
    handlers[1] = new StatusHandler();
    handlers[2] = new HealthHandler();
    handlers[3] = new NotFoundHandler();
  }
  static HttpResponse dispatch(HttpRequest r) {
    for (int i = 0; i < handlers.length; i = i + 1) {
      if (handlers[i].matches(r)) { return handlers[i].handle(r); }
    }
    return new HttpResponse(500, "Error", "text/plain", "no handler");
  }
}
class ResourceCache {
  static String[] names;
  static String[] contents;
  static int n;
  static void init(int cap) { names = new String[cap]; contents = new String[cap]; n = 0; }
  static void add(String name, String body) {
    names[n] = name; contents[n] = body; n = n + 1;
  }
  static String lookup(String name) {
    for (int i = 0; i < n; i = i + 1) {
      if (names[i].equals(name)) { return contents[i]; }
    }
    return null;
  }
}
class Mime {
  static String typeOf(String path) {
    if (path.endsWith(".html")) { return "text/html"; }
    if (path.endsWith(".txt")) { return "text/plain"; }
    return "application/octet-stream";
  }
}
class Pages {
  static String repeat(String s, int k) {
    String out = "";
    for (int i = 0; i < k; i = i + 1) { out = out + s; }
    return out;
  }
  static void install() {
    ResourceCache.add("/index.html", "<html>" + repeat("0123456789abcdef", 64) + "</html>");
    ResourceCache.add("/hello.txt", "hello from miniweb");
    ResourceCache.add("/big.html", "<html>" + repeat("payload-chunk-", 256) + "</html>");
  }
}
class HttpConnection {
  int conn;
  HttpConnection(int c) { conn = c; }
  void handle() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      HttpRequest req = new HttpRequest(line);
      if (req.bad) {
        Stats.error();
        Net.send(conn, "HTTP/1.0 400 Bad request");
      } else {
        Stats.request();
        HttpResponse resp = HandlerChain.dispatch(req);
        Net.send(conn, resp.render());
        Log.info(req.method + " " + req.path);
      }
    }
  }
}
class HttpServer {
  static void start() {
    ResourceCache.init(16);
    Pages.install();
    HandlerChain.init();
    ConnQueue.init(64);
    Thread.spawn(new ThreadedServer(Config.port));
    for (int i = 0; i < Config.poolSize; i = i + 1) {
      Thread.spawn(new PoolThread(i));
    }
    Log.info("started " + Config.serverName);
  }
}
class Main {
  static void main() { HttpServer.start(); }
}
|}

(* --- releases -------------------------------------------------------- *)

let releases =
  [
    (* 5.1.1: method-body-only maintenance release (several fixes) *)
    ( "5.1.1",
      [
        ( {|  static void info(String m) { if (verbose) { Sys.println("[web] " + m); } }|},
          {|  static void info(String m) { if (verbose) { Sys.println("[miniweb] " + m); } }|}
        );
        ( {|    if (path.endsWith(".html")) { return "text/html"; }
    if (path.endsWith(".txt")) { return "text/plain"; }
    return "application/octet-stream";|},
          {|    if (path.endsWith(".html")) { return "text/html"; }
    if (path.endsWith(".txt")) { return "text/plain"; }
    if (path.endsWith(".css")) { return "text/css"; }
    return "application/octet-stream";|}
        );
        ( {|  static String notFound(String path) {
    return "no such resource";
  }|},
          {|  static String notFound(String path) {
    return "no such resource: " + path;
  }|}
        );
        ( {|    if (parts.length < 2) { bad = true; method = ""; path = ""; }
    else { bad = false; method = parts[0]; path = parts[1]; }|},
          {|    if (parts.length < 2) { bad = true; method = ""; path = ""; }
    else {
      bad = false;
      method = parts[0];
      path = parts[1];
      int q = path.indexOf("?");
      if (q >= 0) { path = path.substring(0, q); }
    }|}
        );
      ] );
    (* 5.1.2: another body-only batch, touching different classes *)
    ( "5.1.2",
      [
        ( {|    return "HTTP/1.0 " + status + " " + reason + " " + ctype + " " + body.length() + " " + body;|},
          {|    return "HTTP/1.0 " + status + " " + reason + " " + ctype + " len=" + body.length() + " " + body;|}
        );
        ( {|    ResourceCache.add("/hello.txt", "hello from miniweb");|},
          {|    ResourceCache.add("/hello.txt", "hello from miniweb server");|}
        );
        ( {|    Log.info("started " + Config.serverName);|},
          {|    Log.info("listening on port " + Config.port + " as " + Config.serverName);|}
        );
        ( {|      if (handlers[i].matches(r)) { return handlers[i].handle(r); }
    }
    return new HttpResponse(500, "Error", "text/plain", "no handler");|},
          {|      if (handlers[i].matches(r)) { return handlers[i].handle(r); }
    }
    Stats.error();
    return new HttpResponse(500, "Error", "text/plain", "no handler");|}
        );
        ( {|  static String join(String[] parts, String sep) {
    String out = "";
    for (int i = 0; i < parts.length; i = i + 1) {
      if (i > 0) { out = out + sep; }
      out = out + parts[i];
    }
    return out;
  }|},
          {|  static String join(String[] parts, String sep) {
    if (parts.length == 0) { return ""; }
    String out = parts[0];
    for (int i = 1; i < parts.length; i = i + 1) {
      out = out + sep + parts[i];
    }
    return out;
  }|}
        );
      ] );
    (* 5.1.3: reworks the accept/dispatch path — adds connection
       accounting fields and classes and changes the always-on-stack
       acceptSocket/run loops.  Jvolve cannot reach a safe point: the
       paper's Jetty failure. *)
    ( "5.1.3",
      [
        ( {|class ThreadedServer {
  int listener;
  ThreadedServer(int port) { listener = Net.listen(port); }
  int acceptSocket() {
    return Net.accept(listener);
  }
  void run() {
    while (true) {
      int conn = acceptSocket();
      ConnQueue.put(conn);
    }
  }
}|},
          {|class AcceptStats {
  static int accepted = 0;
  static int rejected = 0;
  static void accept() { accepted = accepted + 1; }
}
class ThreadedServer {
  int listener;
  int acceptCount;
  ThreadedServer(int port) { listener = Net.listen(port); acceptCount = 0; }
  int acceptSocket() {
    int c = Net.accept(listener);
    acceptCount = acceptCount + 1;
    AcceptStats.accept();
    return c;
  }
  void run() {
    while (true) {
      int conn = acceptSocket();
      if (conn > 0) { ConnQueue.put(conn); }
    }
  }
}|}
        );
        ( {|class PoolThread {
  int id;
  PoolThread(int n) { id = n; }
  void run() {
    while (true) {
      int conn = ConnQueue.take();
      if (conn == 0) { Thread.yieldNow(); }
      else {
        HttpConnection h = new HttpConnection(conn);
        h.handle();
      }
    }
  }
}|},
          {|class PoolThread {
  int id;
  int handled;
  PoolThread(int n) { id = n; handled = 0; }
  void run() {
    while (true) {
      int conn = ConnQueue.take();
      if (conn == 0) { Thread.yieldNow(); }
      else {
        handled = handled + 1;
        HttpConnection h = new HttpConnection(conn);
        h.handle();
      }
    }
  }
}|}
        );
      ] );
    (* 5.1.4: signature changes and field deletions *)
    ( "5.1.4",
      [
        ( {|class Config {
  static int port = 8080;
  static int poolSize = 4;
  static String serverName = "MiniWeb/5.1";
}|},
          {|class Config {
  static int port = 8080;
  static int threads = 4;
  static String serverName = "MiniWeb/5.1";
}|}
        );
        ( {|    for (int i = 0; i < Config.poolSize; i = i + 1) {|},
          {|    for (int i = 0; i < Config.threads; i = i + 1) {|}
        );
        ( {|  static String typeOf(String path) {|},
          {|  static String typeOf(String path, String deflt) {|} );
        ( {|    if (path.endsWith(".css")) { return "text/css"; }
    return "application/octet-stream";|},
          {|    if (path.endsWith(".css")) { return "text/css"; }
    return deflt;|}
        );
        ( {|    return new HttpResponse(200, "OK", Mime.typeOf(r.path), body);|},
          {|    return new HttpResponse(200, "OK", Mime.typeOf(r.path, "application/octet-stream"), body);|}
        );
      ] );
    (* 5.1.5: the big release — keep-alive limits, byte accounting, new
       methods and fields on classes the pool loop references (OSR) *)
    ( "5.1.5",
      [
        ( {|class Stats {
  static int requests = 0;
  static int errors = 0;
  static void request() { requests = requests + 1; }
  static void error() { errors = errors + 1; }
}|},
          {|class Stats {
  static int requests = 0;
  static int errors = 0;
  static int bytesOut = 0;
  static void request() { requests = requests + 1; }
  static void error() { errors = errors + 1; }
  static void sent(int n) { bytesOut = bytesOut + n; }
}|}
        );
        ( {|class HttpResponse {
  int status;
  String reason;
  String ctype;
  String body;
  HttpResponse(int s, String r, String ct, String b) {
    status = s; reason = r; ctype = ct; body = b;
  }|},
          {|class HttpResponse {
  int status;
  String reason;
  String ctype;
  String body;
  int size;
  HttpResponse(int s, String r, String ct, String b) {
    status = s; reason = r; ctype = ct; body = b; size = b.length();
  }
  int length() { return size; }|}
        );
        ( {|    return "HTTP/1.0 " + status + " " + reason + " " + ctype + " len=" + body.length() + " " + body;|},
          {|    return "HTTP/1.0 " + status + " " + reason + " " + ctype + " len=" + size + " " + body;|}
        );
        ( {|class HttpConnection {
  int conn;
  HttpConnection(int c) { conn = c; }
  void handle() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }|},
          {|class HttpConnection {
  int conn;
  int served;
  HttpConnection(int c) { conn = c; served = 0; }
  void handle() {
    while (true) {
      if (served >= 100) { Net.close(conn); return; }
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      served = served + 1;
      RequestTimer.mark();|}
        );
        ( {|        Stats.request();
        HttpResponse resp = HandlerChain.dispatch(req);
        Net.send(conn, resp.render());
        Log.info(req.method + " " + req.path);|},
          {|        Stats.request();
        HttpResponse resp = HandlerChain.dispatch(req);
        String payload = resp.render();
        Stats.sent(payload.length());
        Net.send(conn, payload);
        Log.info(req.method + " " + req.path + " " + resp.length());|}
        );
      ] );
    (* 5.1.6: reworks the statistics fields *)
    ( "5.1.6",
      [
        ( {|class Stats {
  static int requests = 0;
  static int errors = 0;
  static int bytesOut = 0;
  static void request() { requests = requests + 1; }
  static void error() { errors = errors + 1; }
  static void sent(int n) { bytesOut = bytesOut + n; }
}|},
          {|class Stats {
  static int[] counters;
  static void request() { bump(0); }
  static void error() { bump(1); }
  static void sent(int n) { if (counters != null) { counters[2] = counters[2] + n; } }
  static void bump(int k) {
    if (counters == null) { counters = new int[4]; }
    counters[k] = counters[k] + 1;
  }
}|}
        );
      ] );
    (* 5.1.7: response headers and cache accounting — new methods and
       fields *)
    ( "5.1.7",
      [
        ( {|  int size;
  HttpResponse(int s, String r, String ct, String b) {
    status = s; reason = r; ctype = ct; body = b; size = b.length();
  }
  int length() { return size; }|},
          {|  int size;
  String server;
  boolean cacheable;
  HttpResponse(int s, String r, String ct, String b) {
    status = s; reason = r; ctype = ct; body = b; size = b.length();
    server = Config.serverName;
    cacheable = s == 200;
  }
  int length() { return size; }
  boolean isCacheable() { return cacheable; }|}
        );
        ( {|class ResourceCache {
  static String[] names;
  static String[] contents;
  static int n;
  static void init(int cap) { names = new String[cap]; contents = new String[cap]; n = 0; }
  static void add(String name, String body) {
    names[n] = name; contents[n] = body; n = n + 1;
  }|},
          {|class ResourceCache {
  static String[] names;
  static String[] contents;
  static int[] sizes;
  static int n;
  static void init(int cap) {
    names = new String[cap]; contents = new String[cap]; sizes = new int[cap]; n = 0;
  }
  static void add(String name, String body) {
    names[n] = name; contents[n] = body; sizes[n] = body.length(); n = n + 1;
  }
  static int totalBytes() {
    int t = 0;
    for (int i = 0; i < n; i = i + 1) { t = t + sizes[i]; }
    return t;
  }|}
        );
      ] );
    (* 5.1.8: one-line body fix *)
    ( "5.1.8",
      [
        ( {|    ResourceCache.add("/hello.txt", "hello from miniweb server");|},
          {|    ResourceCache.add("/hello.txt", "hello from the miniweb server");|}
        );
      ] );
    (* 5.1.9: one-line body fix *)
    ( "5.1.9",
      [
        ( {|  static void info(String m) { if (verbose) { Sys.println("[miniweb] " + m); } }|},
          {|  static void info(String m) { if (verbose) { Sys.println("[miniweb] info " + m); } }|}
        );
      ] );
    (* 5.1.10: small body-only batch *)
    ( "5.1.10",
      [
        ( {|        Stats.error();
        Net.send(conn, "HTTP/1.0 400 Bad request");|},
          {|        Stats.error();
        Net.send(conn, "HTTP/1.0 400 Bad malformed request line");|}
        );
        ( {|    if (path.endsWith(".css")) { return "text/css"; }
    return deflt;|},
          {|    if (path.endsWith(".css")) { return "text/css"; }
    if (path.endsWith(".js")) { return "text/javascript"; }
    return deflt;|}
        );
        ( {|    ResourceCache.add("/big.html", "<html>" + repeat("payload-chunk-", 256) + "</html>");|},
          {|    ResourceCache.add("/big.html", "<html>" + repeat("payload-chunk-", 256) + "</html>");
    ResourceCache.add("/status.txt", "ok");|}
        );
        ( {|  static String badRequest() { return "malformed request line"; }|},
          {|  static String badRequest() { return "malformed or empty request line"; }|}
        );
      ] );
    (* 5.1.11: a "cache lookup fast path" that is semantically wrong.
       Method-body-only, so admission control is clean and the update
       applies — but the broken loop start skips the first cached
       resource and 404s most static requests under load.  The
       post-commit guard window's app-error budget catches it.  The
       health endpoint does not go through the cache, so probes stay
       green: only real traffic exposes the bug. *)
    ( "5.1.11",
      [
        ( {|  static String lookup(String name) {
    for (int i = 0; i < n; i = i + 1) {
      if (names[i].equals(name)) { return contents[i]; }
    }
    return null;
  }|},
          {|  static String lookup(String name) {
    for (int i = 1; i < n; i = i + 1) {
      if (names[i].equals(name)) { return contents[i]; }
    }
    return null;
  }|}
        );
      ] );
  ]

let app : Patching.versioned =
  Patching.build ~app_name:"miniweb" ~base_version ~base_src ~releases

(* Health probe (fleet orchestration): present in every version, never
   touched by release patches, so it works across an update. *)
let health_probe = "GET /healthz"

let health_ok = Common.prefix_ok "HTTP/1.0 200"

(* The update the paper cannot apply. *)
let failing_update = "5.1.3"

(* The admission-clean but semantically-bad release: applies fine, then
   404s most static traffic.  The guard window auto-reverts it. *)
let bad_update = "5.1.11"
