(* ministore: the stateful fourth workload — a keyed record store with a
   page-indexed scan path, shaped after a block-explorer DB: batched
   writes (MPUT), point lookups (GET), and page-at-a-time scans (SCAN)
   over an append-ordered page index.

   Unlike the three connection-oriented servers, ministore's live heap is
   dominated by long-lived data — record chains and index pages — so its
   updates stress the transformer machinery rather than the safe-point
   logic: every version bump is a *data-schema* migration that must
   rewrite (part of) the persistent heap.

   Four versions, each update a representation change with a custom
   forward transformer AND a custom inverse, so a guard window can back a
   committed migration out by recomputing the old representation:

   - 1.0 -> 1.1  field split: the packed [Rec.meta] int becomes
     [flags] + [size] (meta = flags * 65536 + size);
   - 1.1 -> 1.2  index re-key: page size 16 -> 8 and [Page] gains a
     [firstKey] summary field; the jvolveClass(PageDir) transformer
     rebuilds the whole page chain at update time;
   - 1.2 -> 1.3  value re-encoding: the raw [Rec.val] string becomes a
     structured [Blob] record carrying the data and its length.

   The wire protocol is version-stable — GET always renders
   "+OK rec <k> m=<meta> v=<text>" with meta/text *derived* from
   whatever the current schema stores — so one workload script and one
   response classifier drive every rung of the ladder. *)

let port = 7070

let base_version = "1.0"

let base_src =
  {|
class Config {
  static int port = 7070;
  static int poolSize = 4;
}
class Version {
  static String name() { return "1.0"; }
}
class Stats {
  static int puts = 0;
  static int gets = 0;
  static int scans = 0;
  static int misses = 0;
}
class Rec {
  int key;
  int meta;
  String val;
  Rec next;
  Rec(int k, int m, String v) { key = k; meta = m; val = v; next = null; }
  int metaWord() { return meta; }
  String valText() { return val; }
}
class Store {
  static Rec[] buckets;
  static int count;
  static void init(int nb) { buckets = new Rec[nb]; count = 0; }
  static Rec find(int key) {
    Rec r = buckets[key % buckets.length];
    while (r != null) {
      if (r.key == key) { return r; }
      r = r.next;
    }
    return null;
  }
  static void put(int key, int m, String v) {
    Rec r = find(key);
    if (r != null) { r.meta = m; r.val = v; return; }
    Rec nr = new Rec(key, m, v);
    int b = key % buckets.length;
    nr.next = buckets[b];
    buckets[b] = nr;
    count = count + 1;
    PageDir.append(key);
  }
}
class Page {
  int id;
  int[] keys;
  int n;
  Page next;
  Page(int pid, int cap) { id = pid; keys = new int[cap]; n = 0; next = null; }
}
class PageDir {
  static int pageSize = 16;
  static Page head;
  static Page tail;
  static int pages;
  static void init(int psz) { pageSize = psz; head = null; tail = null; pages = 0; }
  static void append(int key) {
    if (tail == null || tail.n >= pageSize) {
      Page p = new Page(pages, pageSize);
      pages = pages + 1;
      if (tail == null) { head = p; } else { tail.next = p; }
      tail = p;
    }
    tail.keys[tail.n] = key;
    tail.n = tail.n + 1;
  }
  static Page find(int pid) {
    Page p = head;
    while (p != null) {
      if (p.id == pid) { return p; }
      p = p.next;
    }
    return null;
  }
}
class Render {
  static String rec(Rec r) {
    return "+OK rec " + r.key + " m=" + r.metaWord() + " v=" + r.valText();
  }
  static String page(Page p) {
    String ks = "";
    for (int i = 0; i < p.n; i = i + 1) {
      if (i > 0) { ks = ks + ","; }
      ks = ks + p.keys[i];
    }
    return "+OK page " + p.id + " n=" + p.n + " keys=" + ks;
  }
}
class Commands {
  static String dispatch(String line) {
    if (line.equals("HLTH")) { return "+OK healthy"; }
    if (line.equals("STAT")) {
      return "+OK stat v=" + Version.name() + " n=" + Store.count
        + " pages=" + PageDir.pages + " psz=" + PageDir.pageSize;
    }
    if (line.startsWith("GET ")) {
      Stats.gets = Stats.gets + 1;
      String[] parts = line.split(" ", 0);
      if (parts.length < 2) { return "-ERR usage: GET <key>"; }
      Rec r = Store.find(parts[1].toInt());
      if (r == null) { Stats.misses = Stats.misses + 1; return "-ERR no such key"; }
      return Render.rec(r);
    }
    if (line.startsWith("PUT ")) {
      Stats.puts = Stats.puts + 1;
      String[] parts = line.split(" ", 0);
      if (parts.length < 4) { return "-ERR usage: PUT <key> <meta> <payload>"; }
      int k = parts[1].toInt();
      Store.put(k, parts[2].toInt(), parts[3]);
      return "+OK put " + k;
    }
    if (line.startsWith("MPUT ")) {
      String[] parts = line.split(" ", 0);
      if (parts.length < 4) { return "-ERR usage: MPUT <base> <count> <meta>"; }
      int base = parts[1].toInt();
      int cnt = parts[2].toInt();
      int m = parts[3].toInt();
      if (cnt > 64) { cnt = 64; }
      for (int i = 0; i < cnt; i = i + 1) {
        Store.put(base + i, m + i, "v" + (base + i));
      }
      return "+OK mput " + cnt;
    }
    if (line.startsWith("SCAN ")) {
      Stats.scans = Stats.scans + 1;
      String[] parts = line.split(" ", 0);
      if (parts.length < 2) { return "-ERR usage: SCAN <page>"; }
      Page p = PageDir.find(parts[1].toInt());
      if (p == null) { return "-ERR no such page"; }
      return Render.page(p);
    }
    return "-ERR unknown command";
  }
}
class ConnQueue {
  static int[] items;
  static int head;
  static int tail;
  static int count;
  static void init(int cap) { items = new int[cap]; head = 0; tail = 0; count = 0; }
  static void put(int c) {
    if (count >= items.length) { Net.close(c); return; }
    items[tail] = c;
    tail = (tail + 1) % items.length;
    count = count + 1;
  }
  static int take() {
    if (count == 0) { return 0; }
    int c = items[head];
    head = (head + 1) % items.length;
    count = count - 1;
    return c;
  }
}
class Acceptor {
  int listener;
  Acceptor(int port) { listener = Net.listen(port); }
  void run() {
    while (true) {
      int conn = Net.accept(listener);
      ConnQueue.put(conn);
    }
  }
}
class StoreConn {
  int conn;
  StoreConn(int c) { conn = c; }
  void serve() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      if (line.equals("QUIT")) {
        Net.send(conn, "+OK bye");
        Net.close(conn);
        return;
      }
      Net.send(conn, Commands.dispatch(line));
    }
  }
}
class Worker {
  int id;
  Worker(int n) { id = n; }
  void run() {
    while (true) {
      int conn = ConnQueue.take();
      if (conn == 0) { Thread.yieldNow(); }
      else {
        StoreConn c = new StoreConn(conn);
        c.serve();
      }
    }
  }
}
class Seed {
  static void install() {
    for (int i = 0; i < 40; i = i + 1) {
      Store.put(1000 + i, 65536 + i, "seed-" + i);
    }
  }
}
class StoreServer {
  static void start() {
    Store.init(64);
    PageDir.init(16);
    ConnQueue.init(64);
    Seed.install();
    Thread.spawn(new Acceptor(Config.port));
    for (int i = 0; i < Config.poolSize; i = i + 1) {
      Thread.spawn(new Worker(i));
    }
  }
}
class Main {
  static void main() { StoreServer.start(); }
}
|}

(* --- releases -------------------------------------------------------- *)

let releases =
  [
    (* 1.1: schema migration (a) — split the packed [meta] word into
       [flags] and [size].  The wire format is unchanged: [metaWord]
       re-packs the pair, so GET renders the same integer. *)
    ( "1.1",
      [
        ( {|class Rec {
  int key;
  int meta;
  String val;
  Rec next;
  Rec(int k, int m, String v) { key = k; meta = m; val = v; next = null; }
  int metaWord() { return meta; }
  String valText() { return val; }
}|},
          {|class Rec {
  int key;
  int flags;
  int size;
  String val;
  Rec next;
  Rec(int k, int m, String v) {
    key = k;
    flags = m / 65536;
    size = m - (m / 65536) * 65536;
    val = v;
    next = null;
  }
  int metaWord() { return flags * 65536 + size; }
  String valText() { return val; }
}|}
        );
        ( {|    if (r != null) { r.meta = m; r.val = v; return; }|},
          {|    if (r != null) {
      r.flags = m / 65536;
      r.size = m - (m / 65536) * 65536;
      r.val = v;
      return;
    }|}
        );
        ( {|  static String name() { return "1.0"; }|},
          {|  static String name() { return "1.1"; }|} );
      ] );
    (* 1.2: schema migration (b) — re-key the page index: page size 16
       -> 8 and [Page] gains a [firstKey] summary.  The whole page chain
       is stale after the update; the jvolveClass(PageDir) transformer
       rebuilds it (see [pagedir_rekey_fwd]). *)
    ( "1.2",
      [
        ( {|class Page {
  int id;
  int[] keys;
  int n;
  Page next;
  Page(int pid, int cap) { id = pid; keys = new int[cap]; n = 0; next = null; }
}|},
          {|class Page {
  int id;
  int firstKey;
  int[] keys;
  int n;
  Page next;
  Page(int pid, int cap) {
    id = pid; firstKey = 0 - 1; keys = new int[cap]; n = 0; next = null;
  }
}|}
        );
        ( {|  static void append(int key) {
    if (tail == null || tail.n >= pageSize) {
      Page p = new Page(pages, pageSize);
      pages = pages + 1;
      if (tail == null) { head = p; } else { tail.next = p; }
      tail = p;
    }
    tail.keys[tail.n] = key;
    tail.n = tail.n + 1;
  }|},
          {|  static void append(int key) {
    if (tail == null || tail.n >= pageSize) {
      Page p = new Page(pages, pageSize);
      pages = pages + 1;
      if (tail == null) { head = p; } else { tail.next = p; }
      tail = p;
    }
    if (tail.n == 0) { tail.firstKey = key; }
    tail.keys[tail.n] = key;
    tail.n = tail.n + 1;
  }
  static void rebuild(int psz, Page oldHead) {
    init(psz);
    Page p = oldHead;
    while (p != null) {
      Jvolve.transform(p);
      for (int i = 0; i < p.n; i = i + 1) { append(p.keys[i]); }
      p = p.next;
    }
  }|}
        );
        ( {|  static void init(int psz) { pageSize = psz; head = null; tail = null; pages = 0; }|},
          {|  static void init(int psz) {
    pageSize = psz;
    head = null;
    tail = null;
    pages = 0;
  }|}
        );
        ( {|  static String name() { return "1.1"; }|},
          {|  static String name() { return "1.2"; }|} );
      ] );
    (* 1.3: schema migration (c) — re-encode the value: the raw string
       becomes a structured [Blob] carrying the data and its length.
       [valText] unwraps it, so GET output is unchanged. *)
    ( "1.3",
      [
        ( {|class Rec {
  int key;
  int flags;
  int size;
  String val;
  Rec next;
  Rec(int k, int m, String v) {
    key = k;
    flags = m / 65536;
    size = m - (m / 65536) * 65536;
    val = v;
    next = null;
  }
  int metaWord() { return flags * 65536 + size; }
  String valText() { return val; }
}|},
          {|class Blob {
  String data;
  int len;
  Blob(String d) { data = d; len = d.length(); }
}
class Rec {
  int key;
  int flags;
  int size;
  Blob val;
  Rec next;
  Rec(int k, int m, String v) {
    key = k;
    flags = m / 65536;
    size = m - (m / 65536) * 65536;
    val = new Blob(v);
    next = null;
  }
  int metaWord() { return flags * 65536 + size; }
  String valText() { return val.data; }
}|}
        );
        ( {|    if (r != null) {
      r.flags = m / 65536;
      r.size = m - (m / 65536) * 65536;
      r.val = v;
      return;
    }|},
          {|    if (r != null) {
      r.flags = m / 65536;
      r.size = m - (m / 65536) * 65536;
      r.val = new Blob(v);
      return;
    }|}
        );
        ( {|  static String name() { return "1.2"; }|},
          {|  static String name() { return "1.3"; }|} );
      ] );
  ]

let app : Patching.versioned =
  Patching.build ~app_name:"ministore" ~base_version ~base_src ~releases

(* Health probe (fleet orchestration): answered outside the versioned
   data path in every version. *)
let health_probe = Common.hlth_probe
let health_ok = Common.prefix_ok "+OK healthy"

(* --- custom transformers ---------------------------------------------- *)

(* 1.0 -> 1.1: unpack meta into flags + size (no bit ops in MiniJava, so
   divide/multiply by 2^16). *)
let rec_split_fwd =
  {|
    to.key = from.key;
    to.val = from.val;
    to.next = from.next;
    to.flags = from.meta / 65536;
    to.size = from.meta - (from.meta / 65536) * 65536;
|}

(* ... and its inverse: re-pack from live state, so records written
   during the guard window keep their in-window values across a revert. *)
let rec_split_inv =
  {|
    to.key = from.key;
    to.val = from.val;
    to.next = from.next;
    to.meta = from.flags * 65536 + from.size;
|}

(* 1.1 -> 1.2, per-object: carry a page and summarize its first key.
   (Pages reachable from the rebuilt directory are fresh allocations;
   this covers any old page still referenced elsewhere.) *)
let page_rekey_fwd =
  {|
    to.id = from.id;
    to.keys = from.keys;
    to.n = from.n;
    to.next = from.next;
    if (from.n > 0) { to.firstKey = from.keys[0]; } else { to.firstKey = 0 - 1; }
|}

(* 1.1 -> 1.2, class transformer: the index encoding changed, so carrying
   the static page chain over would leave a stale index.  Walk the old
   chain — forcing each page's object transformer before reading it,
   since class transformers run before the pair loop — and re-append
   every key under the new page size. *)
let pagedir_rekey_fwd =
  {|
    Page oldHead = PageDir.head;
    PageDir.rebuild(8, oldHead);
|}

(* Inverse of the re-key: 1.1's PageDir has no [rebuild], so the walk is
   inlined against the old program's API. *)
let pagedir_rekey_inv =
  {|
    Page oldHead = PageDir.head;
    PageDir.init(16);
    Page p = oldHead;
    while (p != null) {
      Jvolve.transform(p);
      for (int i = 0; i < p.n; i = i + 1) { PageDir.append(p.keys[i]); }
      p = p.next;
    }
|}

(* 1.2 -> 1.3: wrap each value string in a Blob ... *)
let rec_blob_fwd =
  {|
    to.key = from.key;
    to.flags = from.flags;
    to.size = from.size;
    to.next = from.next;
    to.val = new Blob(from.val);
|}

(* ... and unwrap it on revert (the Blob class is gone in 1.2, so [from]
   exposes it as a field-only stub). *)
let rec_blob_inv =
  {|
    to.key = from.key;
    to.flags = from.flags;
    to.size = from.size;
    to.next = from.next;
    to.val = from.val.data;
|}

(* Per-update transformers, keyed by the *target* version.  Every rung
   ships both directions: the forward migration and the inverse the
   guard window applies to back it out. *)
let overrides ~to_version =
  match to_version with
  | "1.1" ->
      {
        Common.no_overrides with
        Common.ov_object = [ ("Rec", rec_split_fwd) ];
        ov_inverse_object = [ ("Rec", rec_split_inv) ];
      }
  | "1.2" ->
      {
        Common.no_overrides with
        Common.ov_object = [ ("Page", page_rekey_fwd) ];
        ov_class = [ ("PageDir", pagedir_rekey_fwd) ];
        ov_inverse_class = [ ("PageDir", pagedir_rekey_inv) ];
      }
  | "1.3" ->
      {
        Common.no_overrides with
        Common.ov_object = [ ("Rec", rec_blob_fwd) ];
        ov_inverse_object = [ ("Rec", rec_blob_inv) ];
      }
  | _ -> Common.no_overrides

(* --- state snapshot / restore ----------------------------------------- *)

(* Durability for the stateful workload: a snapshot is a wire-level
   scrape of the live store — STAT for the shape, SCAN for every page
   (yielding the record set in page-append order), GET for each record —
   serialized with a checksum.  Restoring replays the records as PUTs
   into a freshly booted base-version VM; because the wire protocol is
   version-stable and [Store.put] only appends *new* keys to the page
   index, a replay in snapshot order reconstructs the page directory
   exactly, after which the normal update ladder migrates the recovered
   data forward through any schema hops the dead instance missed. *)

type snapshot = {
  s_version : string; (* schema the store was serving when scraped *)
  s_tick : int; (* VM tick at scrape time *)
  s_records : (int * int * string) list; (* key, meta word, value text *)
}

exception Wire_error of string

(* One synchronous client session against the in-VM server, driving the
   VM's own scheduler until each reply lands. *)
let wire_session vm (lines : string list) : string list =
  let net = vm.Jv_vm.State.net in
  match Jv_simnet.Simnet.connect net ~port with
  | None -> raise (Wire_error "connect refused")
  | Some cid ->
      let recv_one sent =
        let resp = ref None in
        let budget = ref 500 in
        while !resp = None && !budget > 0 do
          Jv_vm.Vm.run vm ~rounds:1;
          decr budget;
          match Jv_simnet.Simnet.client_recv net ~conn_id:cid with
          | `Line l -> resp := Some l
          | `Eof -> raise (Wire_error ("EOF awaiting reply to " ^ sent))
          | `Wait -> ()
        done;
        match !resp with
        | Some l -> l
        | None -> raise (Wire_error ("no reply to " ^ sent))
      in
      let resps =
        List.map
          (fun line ->
            Jv_simnet.Simnet.client_send net ~conn_id:cid line;
            recv_one line)
          lines
      in
      Jv_simnet.Simnet.client_close net ~conn_id:cid;
      resps

let field_after ~tag reply =
  let pat = " " ^ tag ^ "=" in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length reply then
      raise (Wire_error ("missing field " ^ tag ^ " in: " ^ reply))
    else if String.sub reply i plen = pat then i + plen
    else find (i + 1)
  in
  let start = find 0 in
  let stop =
    match String.index_from_opt reply start ' ' with
    | Some j -> j
    | None -> String.length reply
  in
  String.sub reply start (stop - start)

let int_field ~tag reply =
  match int_of_string_opt (field_after ~tag reply) with
  | Some n -> n
  | None -> raise (Wire_error ("bad integer field " ^ tag ^ " in: " ^ reply))

(* The value is the *rest of the line* after " v=", so it survives even
   if a payload ever contains '='. *)
let value_field reply =
  let pat = " v=" in
  let rec find i =
    if i + 3 > String.length reply then
      raise (Wire_error ("missing value in: " ^ reply))
    else if String.sub reply i 3 = pat then i + 3
    else find (i + 1)
  in
  let s = find 0 in
  String.sub reply s (String.length reply - s)

let scrape vm : (snapshot, string) result =
  try
    let stat =
      match wire_session vm [ "STAT" ] with
      | [ s ] -> s
      | _ -> raise (Wire_error "STAT: no reply")
    in
    if not (Common.prefix_ok "+OK stat" stat) then
      raise (Wire_error ("STAT failed: " ^ stat));
    let version = field_after ~tag:"v" stat in
    let pages = int_field ~tag:"pages" stat in
    let scans =
      wire_session vm (List.init pages (fun p -> Printf.sprintf "SCAN %d" p))
    in
    let keys =
      List.concat_map
        (fun reply ->
          if not (Common.prefix_ok "+OK page" reply) then
            raise (Wire_error ("SCAN failed: " ^ reply));
          match field_after ~tag:"keys" reply with
          | "" -> []
          | ks -> List.map int_of_string (String.split_on_char ',' ks))
        scans
    in
    let gets =
      wire_session vm (List.map (fun k -> Printf.sprintf "GET %d" k) keys)
    in
    let records =
      List.map2
        (fun k reply ->
          if not (Common.prefix_ok "+OK rec" reply) then
            raise (Wire_error ("GET failed: " ^ reply));
          (k, int_field ~tag:"m" reply, value_field reply))
        keys gets
    in
    Ok { s_version = version; s_tick = vm.Jv_vm.State.ticks;
         s_records = records }
  with
  | Wire_error m -> Error m
  | Failure m -> Error m

(* Serialized form: a header line, one line per record, and a trailing
   MD5 over everything above it.  Same scrape => byte-identical string,
   which is what the heal property tests compare. *)
let snapshot_to_string (s : snapshot) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "jvsnap1 v=%s tick=%d n=%d\n" s.s_version s.s_tick
       (List.length s.s_records));
  List.iter
    (fun (k, m, v) -> Buffer.add_string b (Printf.sprintf "%d %d %s\n" k m v))
    s.s_records;
  let body = Buffer.contents b in
  body ^ "sum=" ^ Digest.to_hex (Digest.string body) ^ "\n"

let snapshot_of_string (str : string) : (snapshot, string) result =
  match String.rindex_opt (String.trim str) '\n' with
  | None -> Error "snapshot: truncated"
  | Some cut -> (
      let body = String.sub str 0 (cut + 1) in
      let sum_line = String.trim (String.sub str (cut + 1)
                                    (String.length str - cut - 1)) in
      if sum_line <> "sum=" ^ Digest.to_hex (Digest.string body) then
        Error "snapshot: checksum mismatch"
      else
        match String.split_on_char '\n' (String.trim body) with
        | [] -> Error "snapshot: empty"
        | header :: rec_lines -> (
            try
              if not (String.length header >= 7
                      && String.sub header 0 7 = "jvsnap1") then
                raise (Wire_error "bad magic");
              let version = field_after ~tag:"v" header in
              let tick = int_field ~tag:"tick" header in
              let n = int_field ~tag:"n" header in
              let records =
                List.map
                  (fun line ->
                    match String.split_on_char ' ' line with
                    | k :: m :: rest when rest <> [] ->
                        (int_of_string k, int_of_string m,
                         String.concat " " rest)
                    | _ -> raise (Wire_error ("bad record line: " ^ line)))
                  rec_lines
              in
              if List.length records <> n then
                raise (Wire_error "record count mismatch");
              Ok { s_version = version; s_tick = tick; s_records = records }
            with
            | Wire_error m -> Error ("snapshot: " ^ m)
            | Failure m -> Error ("snapshot: " ^ m)))

(* Replay a snapshot into a (freshly booted, base-version) VM.  PUT is
   version-stable, so the snapshot restores regardless of which schema
   it was scraped under; catch-up migrations run afterwards. *)
let restore vm (s : snapshot) : (unit, string) result =
  try
    let cmds =
      List.map (fun (k, m, v) -> Printf.sprintf "PUT %d %d %s" k m v)
        s.s_records
    in
    let replies = wire_session vm cmds in
    List.iter
      (fun reply ->
        if not (Common.prefix_ok "+OK put" reply) then
          raise (Wire_error ("PUT failed: " ^ reply)))
      replies;
    Ok ()
  with Wire_error m -> Error m
