(* Shared helpers for the benchmark server apps. *)

(* Health/protocol reply check: does [resp] start with [prefix]?  Every
   app's health probe ("/healthz", "HLTH") succeeds iff the reply begins
   with the protocol's success code, so the three servers and the
   workload driver share this one implementation. *)
let prefix_ok prefix resp =
  let n = String.length prefix in
  String.length resp >= n && String.sub resp 0 n = prefix
