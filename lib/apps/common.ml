(* Shared helpers for the benchmark server apps. *)

module J = Jvolve_core

(* Health/protocol reply check: does [resp] start with [prefix]?  Every
   app's health probe ("/healthz", "HLTH") succeeds iff the reply begins
   with the protocol's success code, so the four servers and the
   workload driver share this one implementation. *)
let prefix_ok prefix resp =
  let n = String.length prefix in
  String.length resp >= n && String.sub resp 0 n = prefix

(* Version tag for renamed old classes: "5.1.4" -> "514".  Dots are
   illegal in class names, so every harness that builds a spec from an
   app version strips them the same way. *)
let version_tag version = String.concat "" (String.split_on_char '.' version)

(* The line-protocol health convention shared by the non-HTTP apps
   (minimail, miniftp, ministore): the probe line is "HLTH" and every
   version answers it outside the versioned handler path, so it works
   across an update. *)
let hlth_probe = "HLTH"

(* Transformer overrides an app ships for one update step: custom
   [jvolveObject]/[jvolveClass] bodies for the forward migration, plus
   the rollback direction's bodies so a guard revert recomputes the old
   representation instead of default-mapping it. *)
type overrides = {
  ov_object : (string * string) list;
  ov_class : (string * string) list;
  ov_inverse_object : (string * string) list;
  ov_inverse_class : (string * string) list;
}

let no_overrides =
  { ov_object = []; ov_class = []; ov_inverse_object = []; ov_inverse_class = [] }

let object_only pairs = { no_overrides with ov_object = pairs }

(* Build an update spec carrying all four override directions — the one
   place app harnesses (experience, fleet, gossip, benches) construct
   specs from app descriptors. *)
let spec ?blacklist ?(overrides = no_overrides) ~version_tag ~old_program
    ~new_program () =
  J.Spec.make ?blacklist ~object_overrides:overrides.ov_object
    ~class_overrides:overrides.ov_class
    ~inverse_object_overrides:overrides.ov_inverse_object
    ~inverse_class_overrides:overrides.ov_inverse_class ~version_tag
    ~old_program ~new_program ()
