(* Scripted workload driver: the httperf analogue (paper §4.1).

   A workload is a line script: the client sends one line, waits for one
   response line, then sends the next; after the last response it closes
   the connection and (up to [max_sessions]) opens a fresh one.  The
   driver runs as a VM poller — once per scheduler round it pumps every
   active connection — so client work interleaves with server execution
   exactly like external load against a real server.

   Latency is measured in scheduler rounds from send to response;
   throughput in bytes comes from the simnet byte counters. *)

module State = Jv_vm.State
module Simnet = Jv_simnet.Simnet

type conn_state = {
  cid : int;
  mutable remaining : string list;
  mutable sent_at : int;
  mutable awaiting : bool;
}

type t = {
  port : int;
  script : string list;
  ok : string -> bool;
  concurrency : int;
  max_sessions : int;
  mutable launched : int;
  mutable active : conn_state list;
  mutable completed_sessions : int;
  mutable completed_requests : int;
  mutable errors : int;
  mutable dropped : int; (* sessions severed with a request outstanding *)
  mutable latency_rounds : int; (* summed over completed requests *)
  mutable poller : (State.t -> unit) option;
}

let default_ok resp =
  String.length resp > 0
  && (match resp.[0] with '2' | '3' | '1' | '+' -> true | _ -> false)

let pump_conn vm t (c : conn_state) : bool (* keep? *) =
  let net = vm.State.net in
  if c.awaiting then begin
    match Simnet.client_recv net ~conn_id:c.cid with
    | `Wait -> true
    | `Eof ->
        (* awaiting = a request was outstanding: this is a dropped
           connection, the number an update (or revert) must keep at 0 *)
        t.dropped <- t.dropped + 1;
        Simnet.client_close net ~conn_id:c.cid;
        Simnet.reap net ~conn_id:c.cid;
        false
    | `Line resp -> (
        c.awaiting <- false;
        t.completed_requests <- t.completed_requests + 1;
        t.latency_rounds <- t.latency_rounds + (vm.State.ticks - c.sent_at);
        (* the guard window's latency signal reads this histogram *)
        Jv_obs.Obs.observe_int vm.State.obs "app.request_rounds"
          (vm.State.ticks - c.sent_at);
        if not (t.ok resp) then begin
          t.errors <- t.errors + 1;
          Jv_obs.Obs.incr vm.State.obs "app.request_errors"
        end;
        match c.remaining with
        | [] ->
            Simnet.client_close net ~conn_id:c.cid;
            Simnet.reap net ~conn_id:c.cid;
            t.completed_sessions <- t.completed_sessions + 1;
            false
        | line :: rest ->
            Simnet.client_send net ~conn_id:c.cid line;
            c.remaining <- rest;
            c.sent_at <- vm.State.ticks;
            c.awaiting <- true;
            true)
  end
  else true

let launch vm t =
  if
    t.launched < t.max_sessions
    && List.length t.active < t.concurrency
  then
    match Simnet.connect vm.State.net ~port:t.port with
    | None -> () (* server not listening yet *)
    | Some cid -> (
        t.launched <- t.launched + 1;
        match t.script with
        | [] -> Simnet.client_close vm.State.net ~conn_id:cid
        | line :: rest ->
            Simnet.client_send vm.State.net ~conn_id:cid line;
            t.active <-
              {
                cid;
                remaining = rest;
                sent_at = vm.State.ticks;
                awaiting = true;
              }
              :: t.active)

let step vm t =
  t.active <- List.filter (pump_conn vm t) t.active;
  (* open at most one new session per round: a staggered arrival process
     (like httperf's), so session lifetimes interleave instead of running
     in lockstep *)
  if List.length t.active < t.concurrency then launch vm t

let attach vm ~port ~script ?(ok = default_ok) ~concurrency
    ?(max_sessions = max_int) () : t =
  let t =
    {
      port;
      script;
      ok;
      concurrency;
      max_sessions;
      launched = 0;
      active = [];
      completed_sessions = 0;
      completed_requests = 0;
      errors = 0;
      dropped = 0;
      latency_rounds = 0;
      poller = None;
    }
  in
  let poller vm = step vm t in
  t.poller <- Some poller;
  vm.State.pollers <- vm.State.pollers @ [ poller ];
  t

let detach vm t =
  match t.poller with
  | None -> ()
  | Some p ->
      vm.State.pollers <- List.filter (fun q -> q != p) vm.State.pollers;
      List.iter
        (fun c ->
          Simnet.client_close vm.State.net ~conn_id:c.cid;
          Simnet.reap vm.State.net ~conn_id:c.cid)
        t.active;
      t.active <- [];
      t.poller <- None

(* Wait (by running scheduler rounds) until the workload becomes quiet:
   no active sessions, or [max_rounds] elapsed. *)
let drain vm t ~max_rounds =
  let n = ref 0 in
  while t.active <> [] && !n < max_rounds do
    Jv_vm.Sched.round vm;
    incr n
  done

let mean_latency_rounds t =
  if t.completed_requests = 0 then 0.0
  else float_of_int t.latency_rounds /. float_of_int t.completed_requests

(* --- canned scripts ----------------------------------------------------- *)

(* 5 serial requests per connection, like the paper's httperf setup *)
let web_script =
  [
    "GET /index.html";
    "GET /hello.txt";
    "GET /big.html";
    "GET /index.html";
    "GET /index.html";
  ]

let web_ok = Common.prefix_ok "HTTP/1.0 200"

let smtp_script =
  [
    "HELO bench-client";
    "MAIL alice@local";
    "RCPT alice@local";
    "BODY hello alice this is a benchmark message";
    "QUIT";
  ]

let pop_script = [ "USER alice"; "PASS pw1"; "STAT"; "LIST"; "QUIT" ]

(* FTP sessions are long-lived (as in the paper: a RequestHandler thread
   per session is "essentially always on stack" under load): log in, then
   a few dozen transfers before QUIT. *)
let ftp_script =
  [ "USER admin"; "PASS ftp" ]
  @ List.concat
      (List.init 8 (fun _ ->
           [
             "LIST";
             "RETR motd.txt";
             "STOR up.txt uploaded by the benchmark client";
             "RETR readme.txt";
           ]))
  @ [ "QUIT" ]

(* A block-explorer-ish session: one batched write, a point write, point
   reads of keys the session itself wrote, a page scan and a stat poll.
   Every response is version-stable ("+OK ...") across the whole schema-
   migration ladder, so the same script drives every rung. *)
let store_script =
  [
    "MPUT 100 8 131072";
    "PUT 5 196613 hello-world";
    "GET 5";
    "GET 103";
    "SCAN 0";
    "STAT";
    "QUIT";
  ]

let store_ok = Common.prefix_ok "+OK"
