(* minimail: the JavaEmailServer analogue (paper §4.3, Table 3, and the
   running example of Figures 2-3).

   An SMTP+POP3-ish server in MiniJava: an SMTP accept loop
   ([SMTPProcessor.run]), a POP3 accept loop ([Pop3Processor.run]), and a
   background delivery thread ([SMTPSender.run]) draining a queue — the
   three "infinite processing loop" threads the paper discusses.

   Ten versions, 1.2.1 through 1.4:
   - 1.2.2, 1.2.4, 1.3.1, 1.3.3 are method-body-only;
   - 1.3 reworks the configuration framework (deletes the AdminTool,
     adds FileConfig) and edits the always-running processor loops — the
     paper's JavaEmailServer failure: no safe point is ever reachable;
   - 1.3.2 is the paper's User/EmailAddress update (Figure 2): the
     forwardAddresses field changes type from String[] to EmailAddress[],
     setForwardedAddresses changes signature, and a customized object
     transformer (Figure 3) rebuilds the addresses.  The processor run()
     loops reference User, so they are category-(2) methods lifted by
     OSR, just as in the paper;
   - 1.3.4 adds quota fields to User (OSR again), 1.2.3 and 1.4 are mixed
     field/signature releases. *)

let smtp_port = 2525
let pop_port = 2110

let base_version = "1.2.1"

let base_src =
  {|
class Config {
  static int smtpPort = 2525;
  static int popPort = 2110;
  static String domain = "local";
}
class Log {
  static boolean verbose = false;
  static void info(String m) { if (verbose) { Sys.println("[mail] " + m); } }
}
class Stats {
  static int received = 0;
  static int delivered = 0;
  static int bounced = 0;
  static void receive() { received = received + 1; }
  static void deliver() { delivered = delivered + 1; }
  static void bounce() { bounced = bounced + 1; }
}
class User {
  String username;
  String domain;
  String password;
  String[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new String[0];
  }
  String[] getForwardedAddresses() { return forwardAddresses; }
  void setForwardedAddresses(String[] f) { forwardAddresses = f; }
  boolean auth(String pw) { return password.equals(pw); }
}
class UserStore {
  static User[] users;
  static int n;
  static void init(int cap) { users = new User[cap]; n = 0; }
  static void add(User u) { users[n] = u; n = n + 1; }
  static User lookup(String name) {
    for (int i = 0; i < n; i = i + 1) {
      if (users[i].username.equals(name)) { return users[i]; }
    }
    return null;
  }
}
class Message {
  String sender;
  String rcpt;
  String body;
  Message(String f, String r, String b) { sender = f; rcpt = r; body = b; }
}
class Mailbox {
  String owner;
  Message[] msgs;
  int n;
  Mailbox(String o) { owner = o; msgs = new Message[32]; n = 0; }
  void add(Message m) { if (n < msgs.length) { msgs[n] = m; n = n + 1; } }
  int count() { return n; }
  Message get(int i) {
    if (i < 0) { return null; }
    if (i >= n) { return null; }
    return msgs[i];
  }
}
class MailStore {
  static Mailbox[] boxes;
  static int n;
  static void init(int cap) { boxes = new Mailbox[cap]; n = 0; }
  static Mailbox boxFor(String owner) {
    for (int i = 0; i < n; i = i + 1) {
      if (boxes[i].owner.equals(owner)) { return boxes[i]; }
    }
    Mailbox b = new Mailbox(owner);
    boxes[n] = b;
    n = n + 1;
    return b;
  }
}
class QueueStats {
  static int peak = 0;
  static int enqueued = 0;
  static void note(int depth) {
    enqueued = enqueued + 1;
    if (depth > peak) { peak = depth; }
  }
}
class AddressUtil {
  static String localPart(String addr) {
    int at = addr.indexOf("@");
    if (at < 0) { return addr; }
    return addr.substring(0, at);
  }
  static String domainPart(String addr) {
    int at = addr.indexOf("@");
    if (at < 0) { return ""; }
    return addr.substring(at + 1, addr.length());
  }
  static boolean wellFormed(String addr) {
    int at = addr.indexOf("@");
    return at > 0 && at < addr.length() - 1;
  }
}
class DeliveryQueue {
  static Message[] items;
  static int head;
  static int tail;
  static int count;
  static void init(int cap) { items = new Message[cap]; head = 0; tail = 0; count = 0; }
  static void put(Message m) {
    if (count >= items.length) { return; }
    items[tail] = m;
    tail = (tail + 1) % items.length;
    count = count + 1;
    QueueStats.note(count);
  }
  static Message take() {
    if (count == 0) { return null; }
    Message m = items[head];
    head = (head + 1) % items.length;
    count = count - 1;
    return m;
  }
}
class SMTPCommands {
  static String execute(SMTPSession s, String line) {
    if (line.startsWith("HLTH")) { return "250 healthy"; }
    if (line.startsWith("HELO")) { return "250 hello"; }
    if (line.startsWith("MAIL ")) {
      s.sender = line.substring(5, line.length());
      return "250 sender ok";
    }
    if (line.startsWith("RCPT ")) {
      s.rcpt = line.substring(5, line.length());
      return "250 rcpt ok";
    }
    if (line.startsWith("BODY ")) {
      if (s.sender == null) { return "503 need MAIL"; }
      if (s.rcpt == null) { return "503 need RCPT"; }
      Message m = new Message(s.sender, s.rcpt, line.substring(5, line.length()));
      DeliveryQueue.put(m);
      Stats.receive();
      return "250 queued";
    }
    if (line.startsWith("QUIT")) { return "221 bye"; }
    return "500 unknown command";
  }
}
class SMTPSession {
  int conn;
  String sender;
  String rcpt;
  SMTPSession(int c) { conn = c; sender = null; rcpt = null; }
  void serve() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      String resp = SMTPCommands.execute(this, line);
      Net.send(conn, resp);
      if (resp.startsWith("221")) { Net.close(conn); return; }
    }
  }
}
class SMTPProcessor {
  int listener;
  SMTPProcessor() { listener = Net.listen(Config.smtpPort); }
  void run() {
    while (true) {
      int conn = Net.accept(listener);
      SMTPSession s = new SMTPSession(conn);
      s.serve();
    }
  }
}
class Router {
  static User resolve(String rcpt) {
    String[] parts = rcpt.split("@", 2);
    return UserStore.lookup(parts[0]);
  }
}
class SMTPSender {
  void deliverTo(User u, Message m) {
    Mailbox b = MailStore.boxFor(u.username);
    b.add(m);
    Stats.deliver();
  }
  void run() {
    while (true) {
      Message m = DeliveryQueue.take();
      if (m == null) { Thread.yieldNow(); }
      else {
        User u = Router.resolve(m.rcpt);
        if (u == null) { Stats.bounce(); }
        else { deliverTo(u, m); }
      }
    }
  }
}
class Pop3Commands {
  static String execute(Pop3Session s, String line) {
    if (line.startsWith("HLTH")) { return "+OK healthy"; }
    if (line.startsWith("USER ")) {
      s.username = line.substring(5, line.length());
      return "+OK user accepted";
    }
    if (line.startsWith("PASS ")) {
      if (s.username == null) { return "-ERR no USER"; }
      User u = UserStore.lookup(s.username);
      if (u == null) { return "-ERR no such user"; }
      if (u.auth(line.substring(5, line.length()))) {
        s.authed = true;
        return "+OK authed";
      }
      return "-ERR bad password";
    }
    if (line.startsWith("STAT")) {
      if (!s.authed) { return "-ERR not authed"; }
      Mailbox b = MailStore.boxFor(s.username);
      return "+OK " + b.count();
    }
    if (line.startsWith("LIST")) {
      if (!s.authed) { return "-ERR not authed"; }
      Mailbox b = MailStore.boxFor(s.username);
      String out = "+OK";
      for (int i = 0; i < b.count(); i = i + 1) {
        out = out + " " + i;
      }
      return out;
    }
    if (line.startsWith("RETR ")) {
      if (!s.authed) { return "-ERR not authed"; }
      Mailbox b = MailStore.boxFor(s.username);
      int i = line.substring(5, line.length()).toInt();
      Message m = b.get(i);
      if (m == null) { return "-ERR no such message"; }
      return "+OK " + m.body;
    }
    if (line.startsWith("QUIT")) { return "+OK bye"; }
    return "-ERR unknown command";
  }
}
class Pop3Session {
  int conn;
  String username;
  boolean authed;
  Pop3Session(int c) { conn = c; username = null; authed = false; }
  void serve() {
    while (true) {
      String line = Net.recvLine(conn);
      if (line == null) { Net.close(conn); return; }
      String resp = Pop3Commands.execute(this, line);
      Net.send(conn, resp);
      if (resp.startsWith("+OK bye")) { Net.close(conn); return; }
    }
  }
}
class Pop3Processor {
  int listener;
  Pop3Processor() { listener = Net.listen(Config.popPort); }
  void run() {
    while (true) {
      int conn = Net.accept(listener);
      User admin = UserStore.lookup("admin");
      if (admin == null) { Log.info("warning: no admin account"); }
      Pop3Session s = new Pop3Session(conn);
      s.serve();
    }
  }
}
class AdminTool {
  static String describeUser(String name) {
    User u = UserStore.lookup(name);
    if (u == null) { return "no such user"; }
    return u.username + "@" + u.domain + " fwd:" + u.getForwardedAddresses().length;
  }
  static String summary() {
    return "users=" + UserStore.n + " delivered=" + Stats.delivered;
  }
}
class ConfigurationManager {
  static void loadUsers() {
    UserStore.add(new User("admin", Config.domain, "adminpw"));
    User alice = new User("alice", Config.domain, "pw1");
    String[] f = new String[2];
    f[0] = "bob@dest.org";
    f[1] = "carol@other.net";
    alice.setForwardedAddresses(f);
    UserStore.add(alice);
    UserStore.add(new User("bob", Config.domain, "pw2"));
  }
}
class Main {
  static void main() {
    UserStore.init(16);
    MailStore.init(16);
    DeliveryQueue.init(64);
    ConfigurationManager.loadUsers();
    Thread.spawn(new SMTPProcessor());
    Thread.spawn(new Pop3Processor());
    Thread.spawn(new SMTPSender());
    Log.info(AdminTool.summary());
  }
}
|}

(* --- releases ---------------------------------------------------------- *)

let releases =
  [
    (* 1.2.2: body-only fixes *)
    ( "1.2.2",
      [
        ( {|  static void info(String m) { if (verbose) { Sys.println("[mail] " + m); } }|},
          {|  static void info(String m) { if (verbose) { Sys.println("[minimail] " + m); } }|}
        );
        ( {|    if (line.startsWith("HELO")) { return "250 hello"; }|},
          {|    if (line.startsWith("HELO")) { return "250 hello, pleased to meet you"; }|}
        );
        ( {|  Message get(int i) {
    if (i < 0) { return null; }
    if (i >= n) { return null; }
    return msgs[i];
  }|},
          {|  Message get(int i) {
    if (i < 0 || i >= n) { return null; }
    return msgs[i];
  }|}
        );
      ] );
    (* 1.2.3: message metadata and statistics fields, two signature
       changes *)
    ( "1.2.3",
      [
        ( {|class Message {
  String sender;
  String rcpt;
  String body;
  Message(String f, String r, String b) { sender = f; rcpt = r; body = b; }
}|},
          {|class Message {
  String sender;
  String rcpt;
  String body;
  int size;
  int arrivedAt;
  Message(String f, String r, String b) {
    sender = f; rcpt = r; body = b;
    size = b.length();
    arrivedAt = Sys.time();
  }
}|}
        );
        ( {|class Stats {
  static int received = 0;
  static int delivered = 0;
  static int bounced = 0;
  static void receive() { received = received + 1; }
  static void deliver() { delivered = delivered + 1; }
  static void bounce() { bounced = bounced + 1; }
}|},
          {|class Stats {
  static int received = 0;
  static int delivered = 0;
  static int bounced = 0;
  static int bytesIn = 0;
  static void receive() { received = received + 1; }
  static void deliver() { delivered = delivered + 1; }
  static void bounce() { bounced = bounced + 1; }
  static void bytes(int k) { bytesIn = bytesIn + k; }
}|}
        );
        ( {|      Message m = new Message(s.sender, s.rcpt, line.substring(5, line.length()));
      DeliveryQueue.put(m);
      Stats.receive();
      return "250 queued";|},
          {|      Message m = new Message(s.sender, s.rcpt, line.substring(5, line.length()));
      DeliveryQueue.put(m);
      Stats.receive();
      Stats.bytes(m.size);
      return "250 queued";|}
        );
        ( {|  void add(Message m) { if (n < msgs.length) { msgs[n] = m; n = n + 1; } }|},
          {|  void add(Message m, boolean front) {
    if (n >= msgs.length) { return; }
    if (front) {
      for (int i = n; i > 0; i = i - 1) { msgs[i] = msgs[i - 1]; }
      msgs[0] = m;
      n = n + 1;
    } else {
      msgs[n] = m;
      n = n + 1;
    }
  }|}
        );
        ( {|    Mailbox b = MailStore.boxFor(u.username);
    b.add(m);
    Stats.deliver();|},
          {|    Mailbox b = MailStore.boxFor(u.username);
    b.add(m, false);
    Stats.deliver();|}
        );
      ] );
    (* 1.2.4: body-only fixes *)
    ( "1.2.4",
      [
        ( {|    if (line.startsWith("QUIT")) { return "221 bye"; }
    return "500 unknown command";|},
          {|    if (line.startsWith("QUIT")) { return "221 bye"; }
    if (line.startsWith("NOOP")) { return "250 ok"; }
    return "500 unknown command";|}
        );
        ( {|    if (line.startsWith("QUIT")) { return "+OK bye"; }
    return "-ERR unknown command";|},
          {|    if (line.startsWith("NOOP")) { return "+OK"; }
    if (line.startsWith("QUIT")) { return "+OK bye"; }
    return "-ERR unknown command";|}
        );
        ( {|    return "users=" + UserStore.n + " delivered=" + Stats.delivered;|},
          {|    return "users=" + UserStore.n + " delivered=" + Stats.delivered + " bounced=" + Stats.bounced;|}
        );
      ] );
    (* 1.3: the configuration-framework rework the paper cannot apply —
       removes the AdminTool, adds a file-based configuration system, and
       modifies the always-running processor loops to consult it *)
    ( "1.3",
      [
        ( {|class AdminTool {
  static String describeUser(String name) {
    User u = UserStore.lookup(name);
    if (u == null) { return "no such user"; }
    return u.username + "@" + u.domain + " fwd:" + u.getForwardedAddresses().length;
  }
  static String summary() {
    return "users=" + UserStore.n + " delivered=" + Stats.delivered + " bounced=" + Stats.bounced;
  }
}|},
          {|class FileConfig {
  static String[] keys;
  static String[] vals;
  static int n;
  static int generation;
  static void init(int cap) { keys = new String[cap]; vals = new String[cap]; n = 0; generation = 0; }
  static void set(String k, String v) {
    for (int i = 0; i < n; i = i + 1) {
      if (keys[i].equals(k)) { vals[i] = v; generation = generation + 1; return; }
    }
    keys[n] = k; vals[n] = v; n = n + 1;
    generation = generation + 1;
  }
  static String get(String k, String deflt) {
    for (int i = 0; i < n; i = i + 1) {
      if (keys[i].equals(k)) { return vals[i]; }
    }
    return deflt;
  }
}
class ConfigWatcher {
  static int seen;
  static boolean changed() {
    if (FileConfig.generation != seen) { seen = FileConfig.generation; return true; }
    return false;
  }
}|}
        );
        ( {|  void run() {
    while (true) {
      int conn = Net.accept(listener);
      SMTPSession s = new SMTPSession(conn);
      s.serve();
    }
  }|},
          {|  void run() {
    while (true) {
      int conn = Net.accept(listener);
      if (ConfigWatcher.changed()) { Log.info("smtp config reloaded"); }
      SMTPSession s = new SMTPSession(conn);
      s.serve();
    }
  }|}
        );
        ( {|  void run() {
    while (true) {
      int conn = Net.accept(listener);
      User admin = UserStore.lookup("admin");
      if (admin == null) { Log.info("warning: no admin account"); }
      Pop3Session s = new Pop3Session(conn);
      s.serve();
    }
  }|},
          {|  void run() {
    while (true) {
      int conn = Net.accept(listener);
      if (ConfigWatcher.changed()) { Log.info("pop3 config reloaded"); }
      User admin = UserStore.lookup("admin");
      if (admin == null) { Log.info("warning: no admin account"); }
      Pop3Session s = new Pop3Session(conn);
      s.serve();
    }
  }|}
        );
        ( {|      Message m = DeliveryQueue.take();
      if (m == null) { Thread.yieldNow(); }|},
          {|      if (ConfigWatcher.changed()) { Log.info("sender config reloaded"); }
      Message m = DeliveryQueue.take();
      if (m == null) { Thread.yieldNow(); }|}
        );
        ( {|    UserStore.init(16);
    MailStore.init(16);
    DeliveryQueue.init(64);
    ConfigurationManager.loadUsers();|},
          {|    UserStore.init(16);
    MailStore.init(16);
    DeliveryQueue.init(64);
    FileConfig.init(16);
    FileConfig.set("domain", "local");
    ConfigurationManager.loadUsers();|}
        );
        ( {|    Log.info(AdminTool.summary());|}, {|    Log.info("mail server up");|} );
      ] );
    (* 1.3.1: body-only configuration loading fixes *)
    ( "1.3.1",
      [
        ( {|  static void loadUsers() {
    UserStore.add(new User("admin", Config.domain, "adminpw"));|},
          {|  static void loadUsers() {
    UserStore.add(new User("admin", FileConfig.get("domain", Config.domain), "adminpw"));|}
        );
        ( {|    return deflt;
  }
}|},
          {|    if (deflt == null) { return ""; }
    return deflt;
  }
}|}
        );
      ] );
    (* 1.3.2: the paper's Figure 2 update — EmailAddress replaces raw
       forwarding strings; User's field and setter change type; the
       always-running loops reference User and are lifted by OSR *)
    ( "1.3.2",
      [
        ( {|class User {
  String username;
  String domain;
  String password;
  String[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new String[0];
  }
  String[] getForwardedAddresses() { return forwardAddresses; }
  void setForwardedAddresses(String[] f) { forwardAddresses = f; }
  boolean auth(String pw) { return password.equals(pw); }
}|},
          {|class EmailAddress {
  String username;
  String host;
  EmailAddress(String u, String h) { username = u; host = h; }
  String render() { return username + "@" + host; }
}
class User {
  String username;
  String domain;
  String password;
  EmailAddress[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new EmailAddress[0];
  }
  EmailAddress[] getForwardedAddresses() { return forwardAddresses; }
  void setForwardedAddresses(EmailAddress[] f) { forwardAddresses = f; }
  boolean auth(String pw) { return password.equals(pw); }
}|}
        );
        ( {|    User alice = new User("alice", Config.domain, "pw1");
    String[] f = new String[2];
    f[0] = "bob@dest.org";
    f[1] = "carol@other.net";
    alice.setForwardedAddresses(f);
    UserStore.add(alice);|},
          {|    User alice = new User("alice", Config.domain, "pw1");
    EmailAddress[] f = new EmailAddress[2];
    f[0] = new EmailAddress("bob", "dest.org");
    f[1] = new EmailAddress("carol", "other.net");
    alice.setForwardedAddresses(f);
    UserStore.add(alice);|}
        );
        ( {|  void deliverTo(User u, Message m) {
    Mailbox b = MailStore.boxFor(u.username);
    b.add(m, false);
    Stats.deliver();
  }|},
          {|  void deliverTo(User u, Message m) {
    Mailbox b = MailStore.boxFor(u.username);
    b.add(m, false);
    EmailAddress[] fwd = u.getForwardedAddresses();
    for (int i = 0; i < fwd.length; i = i + 1) {
      Log.info("forward to " + fwd[i].render());
    }
    Stats.deliver();
  }|}
        );
      ] );
    (* 1.3.3: body-only delivery fixes *)
    ( "1.3.3",
      [
        ( {|  static User resolve(String rcpt) {
    String[] parts = rcpt.split("@", 2);
    return UserStore.lookup(parts[0]);
  }|},
          {|  static User resolve(String rcpt) {
    String[] parts = rcpt.split("@", 2);
    return UserStore.lookup(parts[0].trim());
  }|}
        );
        ( {|      if (u.auth(line.substring(5, line.length()))) {
        s.authed = true;
        return "+OK authed";
      }
      return "-ERR bad password";|},
          {|      if (u.auth(line.substring(5, line.length()).trim())) {
        s.authed = true;
        return "+OK authed";
      }
      return "-ERR bad password";|}
        );
        ( {|    if (line.startsWith("STAT")) {
      if (!s.authed) { return "-ERR not authed"; }
      Mailbox b = MailStore.boxFor(s.username);
      return "+OK " + b.count();
    }|},
          {|    if (line.startsWith("STAT")) {
      if (!s.authed) { return "-ERR not authed, say PASS first"; }
      Mailbox b = MailStore.boxFor(s.username);
      return "+OK " + b.count();
    }|}
        );
      ] );
    (* 1.3.4: quota fields on User — the run() loops reference User, so
       OSR lifts them again *)
    ( "1.3.4",
      [
        ( {|class User {
  String username;
  String domain;
  String password;
  EmailAddress[] forwardAddresses;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new EmailAddress[0];
  }|},
          {|class User {
  String username;
  String domain;
  String password;
  EmailAddress[] forwardAddresses;
  int quota;
  int used;
  User(String u, String d, String p) {
    username = u; domain = d; password = p;
    forwardAddresses = new EmailAddress[0];
    quota = 1000000;
    used = 0;
  }
  boolean overQuota(int extra) { return used + extra > quota; }|}
        );
        ( {|  void deliverTo(User u, Message m) {
    Mailbox b = MailStore.boxFor(u.username);
    b.add(m, false);
    EmailAddress[] fwd = u.getForwardedAddresses();|},
          {|  void deliverTo(User u, Message m) {
    if (u.overQuota(m.size)) { Stats.bounce(); return; }
    u.used = u.used + m.size;
    Mailbox b = MailStore.boxFor(u.username);
    b.add(m, false);
    EmailAddress[] fwd = u.getForwardedAddresses();|}
        );
      ] );
    (* 1.4: relay controls and housekeeping fields across several classes,
       one signature change *)
    ( "1.4",
      [
        ( {|class Config {
  static int smtpPort = 2525;
  static int popPort = 2110;
  static String domain = "local";
}|},
          {|class Config {
  static int smtpPort = 2525;
  static int popPort = 2110;
  static String domain = "local";
  static int maxRecipients = 8;
  static boolean relayEnabled = false;
}|}
        );
        ( {|  static int bytesIn = 0;
  static void receive() { received = received + 1; }|},
          {|  static int bytesIn = 0;
  static int relayed = 0;
  static int rejected = 0;
  static void receive() { received = received + 1; }|}
        );
        ( {|class Mailbox {
  String owner;
  Message[] msgs;
  int n;
  Mailbox(String o) { owner = o; msgs = new Message[32]; n = 0; }|},
          {|class Mailbox {
  String owner;
  Message[] msgs;
  int n;
  int totalBytes;
  Mailbox(String o) { owner = o; msgs = new Message[32]; n = 0; totalBytes = 0; }|}
        );
        ( {|    if (line.startsWith("RCPT ")) {
      s.rcpt = line.substring(5, line.length());
      return "250 rcpt ok";
    }|},
          {|    if (line.startsWith("RCPT ")) {
      String r = line.substring(5, line.length());
      if (!AddressUtil.wellFormed(r)) { Stats.rejected = Stats.rejected + 1; return "501 bad address"; }
      String dom = AddressUtil.domainPart(r);
      if (!Config.relayEnabled && !dom.equals(Config.domain)
          && !dom.equals("dest.org") && !dom.equals("other.net")) {
        Stats.rejected = Stats.rejected + 1;
        return "550 relaying denied";
      }
      s.rcpt = r;
      return "250 rcpt ok";
    }|}
        );
        ( {|  void add(Message m, boolean front) {
    if (n >= msgs.length) { return; }|},
          {|  void add(Message m, boolean front) {
    if (n >= msgs.length) { return; }
    totalBytes = totalBytes + m.size;|}
        );
      ] );
  ]

let app : Patching.versioned =
  Patching.build ~app_name:"minimail" ~base_version ~base_src ~releases

let failing_update = "1.3"

(* Health probe (fleet orchestration), on the SMTP side: present in every
   version, never touched by release patches. *)
let health_probe = Common.hlth_probe
let health_ok = Common.prefix_ok "250"

(* The customized object transformer for the 1.3.1 -> 1.3.2 update: the
   paper's Figure 3, rebuilding EmailAddress values from the old forwarding
   strings. *)
let user_transformer_132 =
  {|
    to.username = from.username;
    to.domain = from.domain;
    to.password = from.password;
    int len = from.forwardAddresses.length;
    to.forwardAddresses = new EmailAddress[len];
    for (int i = 0; i < len; i = i + 1) {
      String[] parts = from.forwardAddresses[i].split("@", 2);
      to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
    }
|}

(* The rollback direction of the same migration: join each EmailAddress
   back into a forwarding string, so a guard revert of 1.3.2 recomputes
   the 1.3.1 representation from live state. *)
let user_inverse_132 =
  {|
    to.username = from.username;
    to.domain = from.domain;
    to.password = from.password;
    int len = from.forwardAddresses.length;
    to.forwardAddresses = new String[len];
    for (int i = 0; i < len; i = i + 1) {
      to.forwardAddresses[i] =
        from.forwardAddresses[i].username + "@" + from.forwardAddresses[i].host;
    }
|}

(* Per-update customized transformers (class name -> body), keyed by the
   *target* version; everything else uses UPT defaults. *)
let overrides ~to_version =
  match to_version with
  | "1.3.2" ->
      {
        Common.no_overrides with
        Common.ov_object = [ ("User", user_transformer_132) ];
        ov_inverse_object = [ ("User", user_inverse_132) ];
      }
  | _ -> Common.no_overrides
