(* The experience harness: reproduces the paper's §4 methodology.

   "For each version starting at 5.1.0, we ran Jetty under full load.
   After 30 seconds we tried to apply the update to the next version."

   For every consecutive version pair of every application this boots the
   old version on a fresh VM, attaches the app's workload, warms up,
   requests the dynamic update, and records the outcome alongside the UPT
   statistics (Tables 2-4), OSR/barrier usage, and whether a method-body-
   only system could have applied the same update. *)

module VM = Jv_vm
module J = Jvolve_core

type outcome =
  | Applied of J.Updater.timings
  | Aborted of string

type attempt = {
  a_app : string;
  a_from : string;
  a_to : string;
  a_stats : J.Diff.stats;
  a_outcome : outcome;
  a_hotswap_ok : bool; (* supportable by a method-body-only system? *)
  a_osr : int;
  a_barriers : int;
  a_requests_before : int; (* workload progress before the update *)
  a_requests_after : int; (* and after (proof the server still works) *)
  a_errors : int;
}

(* Application descriptors: how to boot and load each app. *)
type app_desc = {
  d_name : string;
  d_versioned : Patching.versioned;
  d_loads : (int * string list * (string -> bool)) list;
      (* (port, script, ok) — one workload per protocol the app serves *)
  d_overrides : to_version:string -> Common.overrides;
      (* custom transformer bodies (both directions) per update step *)
}

let web_desc =
  {
    d_name = "miniweb";
    d_versioned = Miniweb.app;
    d_loads = [ (Miniweb.protocol_port, Workload.web_script, Workload.web_ok) ];
    d_overrides = (fun ~to_version:_ -> Common.no_overrides);
  }

let mail_desc =
  {
    d_name = "minimail";
    d_versioned = Minimail.app;
    d_loads =
      [
        (Minimail.smtp_port, Workload.smtp_script, Workload.default_ok);
        (Minimail.pop_port, Workload.pop_script, Workload.default_ok);
      ];
    d_overrides = (fun ~to_version -> Minimail.overrides ~to_version);
  }

let ftp_desc =
  {
    d_name = "miniftp";
    d_versioned = Miniftp.app;
    d_loads = [ (Miniftp.port, Workload.ftp_script, Workload.default_ok) ];
    d_overrides = (fun ~to_version:_ -> Common.no_overrides);
  }

let store_desc =
  {
    d_name = "ministore";
    d_versioned = Ministore.app;
    d_loads =
      [ (Ministore.port, Workload.store_script, Workload.store_ok) ];
    d_overrides = (fun ~to_version -> Ministore.overrides ~to_version);
  }

let all_apps = [ web_desc; mail_desc; ftp_desc; store_desc ]

(* High opt threshold keeps the per-session run() methods base-compiled
   (in Jikes RVM they are never sample-hot either); the per-request
   handler methods still cross it and exercise the opt compiler. *)
let default_config =
  {
    VM.State.default_config with
    VM.State.heap_words = 1 lsl 19;
    opt_threshold = 150;
  }

let boot_version ?(config = default_config) (d : app_desc) ~version =
  let src = Patching.source d.d_versioned ~version in
  let classes = Jv_lang.Compile.compile_program src in
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm classes;
  (* server responses any of the app's protocols would reject count as
     app-level errors, charged to the code epoch that sent them (the
     guard watchdog's 5xx signal) *)
  VM.Vm.set_response_classifier vm
    (Some (fun s -> List.exists (fun (_, _, ok) -> ok s) d.d_loads));
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  (* let the server boot and open its listeners *)
  VM.Vm.run vm ~rounds:5;
  vm

let attach_loads vm (d : app_desc) ~concurrency =
  List.map
    (fun (port, script, ok) ->
      Workload.attach vm ~port ~script ~ok ~concurrency ())
    d.d_loads

let total_requests loads =
  List.fold_left (fun acc w -> acc + w.Workload.completed_requests) 0 loads

let total_errors loads =
  List.fold_left (fun acc w -> acc + w.Workload.errors) 0 loads

(* Attempt one dynamic update under load (or idle). *)
let run_one ?(config = default_config) ?(concurrency = 4) ?(warmup = 60)
    ?(cooldown = 200) ?(timeout_rounds = 250) ?(loaded = true) (d : app_desc)
    ~from_version ~to_version : attempt =
  let old_src = Patching.source d.d_versioned ~version:from_version in
  let new_src = Patching.source d.d_versioned ~version:to_version in
  let old_program = Jv_lang.Compile.compile_program old_src in
  let new_program = Jv_lang.Compile.compile_program new_src in
  let vm = boot_version ~config d ~version:from_version in
  let loads = if loaded then attach_loads vm d ~concurrency else [] in
  VM.Vm.run vm ~rounds:warmup;
  let before = total_requests loads in
  let spec =
    Common.spec
      ~overrides:(d.d_overrides ~to_version)
      ~version_tag:(Common.version_tag from_version)
      ~old_program ~new_program ()
  in
  let outcome, osr, barriers =
    match J.Jvolve.update_now ~timeout_rounds vm spec with
    | h -> (
        match h.J.Jvolve.h_outcome with
        | J.Jvolve.Applied t ->
            (Applied t, t.J.Updater.u_osr, h.J.Jvolve.h_barriers_installed)
        | J.Jvolve.Aborted a ->
            (Aborted (J.Updater.abort_to_string a), 0,
             h.J.Jvolve.h_barriers_installed)
        | J.Jvolve.Reverted v ->
            (Aborted ("reverted: " ^ J.Guard.verdict_to_string v), 0,
             h.J.Jvolve.h_barriers_installed)
        | J.Jvolve.Pending ->
            (Aborted "still pending after max rounds", 0,
             h.J.Jvolve.h_barriers_installed))
    | exception J.Transformers.Prepare_error e ->
        (Aborted ("prepare: " ^ e), 0, 0)
  in
  VM.Vm.run vm ~rounds:cooldown;
  let after = total_requests loads in
  List.iter (fun w -> Workload.detach vm w) loads;
  {
    a_app = d.d_name;
    a_from = from_version;
    a_to = to_version;
    a_stats = spec.J.Spec.diff.J.Diff.stats;
    a_outcome = outcome;
    a_hotswap_ok = Jv_baseline.Hotswap.supported spec.J.Spec.diff;
    a_osr = osr;
    a_barriers = barriers;
    a_requests_before = before;
    a_requests_after = after;
    a_errors = total_errors loads;
  }

(* Walk an app's whole release history. *)
let run_app ?config ?concurrency ?loaded (d : app_desc) : attempt list =
  Patching.update_pairs d.d_versioned
  |> List.map (fun ((from_v, _), (to_v, _)) ->
         run_one ?config ?concurrency ?loaded d ~from_version:from_v
           ~to_version:to_v)

let run_all ?config ?concurrency ?loaded () : attempt list =
  List.concat_map (fun d -> run_app ?config ?concurrency ?loaded d) all_apps

(* --- reporting ----------------------------------------------------------- *)

let outcome_str = function
  | Applied t ->
      Printf.sprintf "applied (%.1f ms, %d objs, %d OSR)"
        t.J.Updater.u_total_ms t.J.Updater.u_transformed_objects
        t.J.Updater.u_osr
  | Aborted e ->
      let e =
        if String.length e > 60 then String.sub e 0 60 ^ "..." else e
      in
      "ABORTED: " ^ e

let stats_row (s : J.Diff.stats) =
  Printf.sprintf "%3d %3d %3d | %3d %3d %4d/%-3d | %3d %3d"
    s.J.Diff.s_classes_added s.J.Diff.s_classes_deleted
    s.J.Diff.s_classes_changed s.J.Diff.s_methods_added
    s.J.Diff.s_methods_deleted s.J.Diff.s_methods_changed_body
    s.J.Diff.s_methods_changed_sig s.J.Diff.s_fields_added
    s.J.Diff.s_fields_deleted

let print_table ppf (attempts : attempt list) =
  Fmt.pf ppf
    "%-9s %-7s -> %-7s | cls +  -  ~ | mth  +   -    chg   | fld +  - | \
     hotswap | result@."
    "app" "from" "to";
  List.iter
    (fun a ->
      Fmt.pf ppf "%-9s %-7s -> %-7s | %s | %-7s | %s@." a.a_app a.a_from
        a.a_to (stats_row a.a_stats)
        (if a.a_hotswap_ok then "yes" else "no")
        (outcome_str a.a_outcome))
    attempts

let summary (attempts : attempt list) =
  let applied =
    List.length
      (List.filter (fun a -> match a.a_outcome with Applied _ -> true | _ -> false)
         attempts)
  in
  let hotswap = List.length (List.filter (fun a -> a.a_hotswap_ok) attempts) in
  (applied, hotswap, List.length attempts)
