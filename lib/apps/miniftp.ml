(* miniftp: the CrossFTP-server analogue (paper §4.4, Table 4).

   An FTP-ish server in MiniJava: one acceptor loop ([FtpServer.run]) that
   spawns a [RequestHandler] thread per session (exactly CrossFTP's
   structure), a virtual in-memory filesystem, an account table, and a
   command-object registry with virtual dispatch.

   Four versions, 1.05 through 1.08.  Every update adds or deletes fields,
   so none is applicable by a method-body-only system (paper: "simple
   method body updating support on its own would be insufficient").
   The 1.07 -> 1.08 update changes [RequestHandler.run], which is on stack
   for every live session: it applies only when the server is relatively
   idle, as in the paper. *)

let port = 2121

let base_version = "1.05"

let base_src =
  {|
class Config {
  static int port = 2121;
  static String banner = "miniftp ready";
}
class Log {
  static boolean verbose = false;
  static void info(String m) { if (verbose) { Sys.println("[ftp] " + m); } }
}
class Stats {
  static int sessions = 0;
  static int commands = 0;
  static int downloads = 0;
  static void session() { sessions = sessions + 1; }
  static void command() { commands = commands + 1; }
  static void download() { downloads = downloads + 1; }
}
class Accounts {
  static String[] names;
  static String[] passwords;
  static int n;
  static void init(int cap) { names = new String[cap]; passwords = new String[cap]; n = 0; }
  static void add(String u, String p) { names[n] = u; passwords[n] = p; n = n + 1; }
  static boolean check(String u, String p) {
    for (int i = 0; i < n; i = i + 1) {
      if (names[i].equals(u)) { return passwords[i].equals(p); }
    }
    return false;
  }
}
class VirtualFs {
  static String[] names;
  static String[] data;
  static int n;
  static void init(int cap) { names = new String[cap]; data = new String[cap]; n = 0; }
  static void put(String name, String content) {
    for (int i = 0; i < n; i = i + 1) {
      if (names[i].equals(name)) { data[i] = content; return; }
    }
    if (n >= names.length) { return; }
    names[n] = name;
    data[n] = content;
    n = n + 1;
  }
  static String read(String name) {
    for (int i = 0; i < n; i = i + 1) {
      if (names[i].equals(name)) { return data[i]; }
    }
    return null;
  }
  static String listing() {
    String out = "";
    for (int i = 0; i < n; i = i + 1) {
      if (i > 0) { out = out + " "; }
      out = out + names[i];
    }
    return out;
  }
}
class Session {
  int conn;
  String user;
  boolean authed;
  Session(int c) { conn = c; user = null; authed = false; }
}
class PathUtil {
  static String join(String dir, String name) {
    if (dir.length() == 0) { return name; }
    if (dir.endsWith("/")) { return dir + name; }
    return dir + "/" + name;
  }
  static String basename(String path) {
    int slash = path.indexOf("/");
    String rest = path;
    while (slash >= 0) {
      rest = rest.substring(slash + 1, rest.length());
      slash = rest.indexOf("/");
    }
    return rest;
  }
  static boolean sane(String name) {
    return !name.contains("..") && name.length() > 0;
  }
}
class Command {
  boolean handles(String verb) { return false; }
  String execute(Session s, String arg) { return "502 not implemented"; }
}
class UserCmd extends Command {
  boolean handles(String verb) { return verb.equals("USER"); }
  String execute(Session s, String arg) {
    s.user = arg;
    return "331 need password";
  }
}
class PassCmd extends Command {
  boolean handles(String verb) { return verb.equals("PASS"); }
  String execute(Session s, String arg) {
    if (s.user == null) { return "503 need USER first"; }
    if (Accounts.check(s.user, arg)) {
      s.authed = true;
      return "230 logged in";
    }
    return "530 bad login";
  }
}
class ListCmd extends Command {
  boolean handles(String verb) { return verb.equals("LIST"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    return "150 " + VirtualFs.listing();
  }
}
class RetrCmd extends Command {
  boolean handles(String verb) { return verb.equals("RETR"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    String content = VirtualFs.read(arg);
    if (content == null) { return "550 no such file"; }
    Stats.download();
    return "150 " + content;
  }
}
class StorCmd extends Command {
  boolean handles(String verb) { return verb.equals("STOR"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    int sp = arg.indexOf(" ");
    if (sp < 0) { return "501 need name and content"; }
    VirtualFs.put(arg.substring(0, sp), arg.substring(sp + 1, arg.length()));
    return "226 stored";
  }
}
class QuitCmd extends Command {
  boolean handles(String verb) { return verb.equals("QUIT"); }
  String execute(Session s, String arg) { return "221 bye"; }
}
class CommandRegistry {
  static Command[] cmds;
  static void init() {
    cmds = new Command[6];
    cmds[0] = new UserCmd();
    cmds[1] = new PassCmd();
    cmds[2] = new ListCmd();
    cmds[3] = new RetrCmd();
    cmds[4] = new StorCmd();
    cmds[5] = new QuitCmd();
  }
  static Command find(String verb) {
    for (int i = 0; i < cmds.length; i = i + 1) {
      if (cmds[i].handles(verb)) { return cmds[i]; }
    }
    return null;
  }
}
class RequestHandler {
  Session session;
  RequestHandler(int conn) { session = new Session(conn); }
  void run() {
    Stats.session();
    Net.send(session.conn, "220 " + Config.banner);
    while (true) {
      String line = Net.recvLine(session.conn);
      if (line == null) { Net.close(session.conn); return; }
      Stats.command();
      String verb;
      String arg;
      int sp = line.indexOf(" ");
      if (sp < 0) { verb = line; arg = ""; }
      else { verb = line.substring(0, sp); arg = line.substring(sp + 1, line.length()); }
      Command c = CommandRegistry.find(verb);
      String resp;
      if (verb.equals("HLTH")) { resp = "200 healthy"; }
      else {
        if (c == null) { resp = "502 unknown command"; }
        else { resp = c.execute(session, arg); }
      }
      Net.send(session.conn, resp);
      if (resp.startsWith("221")) { Net.close(session.conn); return; }
    }
  }
}
class FtpServer {
  int listener;
  FtpServer() { listener = Net.listen(Config.port); }
  void run() {
    while (true) {
      int conn = Net.accept(listener);
      Thread.spawn(new RequestHandler(conn));
    }
  }
}
class Main {
  static void main() {
    Accounts.init(8);
    Accounts.add("anonymous", "guest");
    Accounts.add("admin", "ftp");
    VirtualFs.init(32);
    VirtualFs.put("motd.txt", "welcome to miniftp");
    VirtualFs.put("readme.txt", "mini ftp server for the jvolve experiments");
    CommandRegistry.init();
    Thread.spawn(new FtpServer());
  }
}
|}

let releases =
  [
    (* 1.06: SITE command class, upload accounting field *)
    ( "1.06",
      [
        ( {|class Stats {
  static int sessions = 0;
  static int commands = 0;
  static int downloads = 0;
  static void session() { sessions = sessions + 1; }
  static void command() { commands = commands + 1; }
  static void download() { downloads = downloads + 1; }
}|},
          {|class Stats {
  static int sessions = 0;
  static int commands = 0;
  static int downloads = 0;
  static int uploads = 0;
  static void session() { sessions = sessions + 1; }
  static void command() { commands = commands + 1; }
  static void download() { downloads = downloads + 1; }
  static void upload() { uploads = uploads + 1; }
}|}
        );
        ( {|class QuitCmd extends Command {|},
          {|class SiteCmd extends Command {
  boolean handles(String verb) { return verb.equals("SITE"); }
  String execute(Session s, String arg) {
    if (arg.equals("STATS")) {
      return "200 sessions=" + Stats.sessions + " commands=" + Stats.commands;
    }
    return "200 ok";
  }
}
class QuitCmd extends Command {|}
        );
        ( {|    cmds = new Command[6];
    cmds[0] = new UserCmd();
    cmds[1] = new PassCmd();
    cmds[2] = new ListCmd();
    cmds[3] = new RetrCmd();
    cmds[4] = new StorCmd();
    cmds[5] = new QuitCmd();|},
          {|    cmds = new Command[7];
    cmds[0] = new UserCmd();
    cmds[1] = new PassCmd();
    cmds[2] = new ListCmd();
    cmds[3] = new RetrCmd();
    cmds[4] = new StorCmd();
    cmds[5] = new QuitCmd();
    cmds[6] = new SiteCmd();|}
        );
        ( {|    VirtualFs.put(arg.substring(0, sp), arg.substring(sp + 1, arg.length()));
    return "226 stored";|},
          {|    VirtualFs.put(arg.substring(0, sp), arg.substring(sp + 1, arg.length()));
    Stats.upload();
    return "226 stored";|}
        );
      ] );
    (* 1.07: per-session working directory and byte accounting — fields on
       Session (referenced by the always-running RequestHandler.run, which
       is lifted by OSR) and many command-body changes *)
    ( "1.07",
      [
        ( {|class Session {
  int conn;
  String user;
  boolean authed;
  Session(int c) { conn = c; user = null; authed = false; }
}|},
          {|class Session {
  int conn;
  String user;
  boolean authed;
  String cwd;
  int bytesDown;
  int bytesUp;
  Session(int c) { conn = c; user = null; authed = false; cwd = ""; bytesDown = 0; bytesUp = 0; }
  String resolve(String name) {
    if (!PathUtil.sane(name)) { return name; }
    return PathUtil.join(cwd, name);
  }
}|}
        );
        ( {|class ListCmd extends Command {
  boolean handles(String verb) { return verb.equals("LIST"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    return "150 " + VirtualFs.listing();
  }
}|},
          {|class CwdCmd extends Command {
  boolean handles(String verb) { return verb.equals("CWD"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    s.cwd = arg;
    return "250 directory changed";
  }
}
class ListCmd extends Command {
  boolean handles(String verb) { return verb.equals("LIST"); }
  String execute(Session s, String arg) {
    if (!s.authed) { return "530 not logged in"; }
    return "150 " + VirtualFs.listing();
  }
}|}
        );
        ( {|    String content = VirtualFs.read(arg);
    if (content == null) { return "550 no such file"; }
    Stats.download();
    return "150 " + content;|},
          {|    String content = VirtualFs.read(s.resolve(arg));
    if (content == null) { content = VirtualFs.read(arg); }
    if (content == null) { return "550 no such file"; }
    Stats.download();
    s.bytesDown = s.bytesDown + content.length();
    return "150 " + content;|}
        );
        ( {|    VirtualFs.put(arg.substring(0, sp), arg.substring(sp + 1, arg.length()));
    Stats.upload();
    return "226 stored";|},
          {|    String name = s.resolve(arg.substring(0, sp));
    String content = arg.substring(sp + 1, arg.length());
    VirtualFs.put(name, content);
    Stats.upload();
    s.bytesUp = s.bytesUp + content.length();
    return "226 stored";|}
        );
        ( {|    cmds = new Command[7];
    cmds[0] = new UserCmd();
    cmds[1] = new PassCmd();
    cmds[2] = new ListCmd();
    cmds[3] = new RetrCmd();
    cmds[4] = new StorCmd();
    cmds[5] = new QuitCmd();
    cmds[6] = new SiteCmd();|},
          {|    cmds = new Command[8];
    cmds[0] = new UserCmd();
    cmds[1] = new PassCmd();
    cmds[2] = new ListCmd();
    cmds[3] = new RetrCmd();
    cmds[4] = new StorCmd();
    cmds[5] = new QuitCmd();
    cmds[6] = new SiteCmd();
    cmds[7] = new CwdCmd();|}
        );
      ] );
    (* 1.08: reworks the session loop itself (RequestHandler.run changes)
       and drops the per-session byte counters — only applicable when the
       server is idle *)
    ( "1.08",
      [
        ( {|  String cwd;
  int bytesDown;
  int bytesUp;
  Session(int c) { conn = c; user = null; authed = false; cwd = ""; bytesDown = 0; bytesUp = 0; }|},
          {|  String cwd;
  Session(int c) { conn = c; user = null; authed = false; cwd = ""; }|}
        );
        ( {|    String content = VirtualFs.read(s.resolve(arg));
    if (content == null) { content = VirtualFs.read(arg); }
    if (content == null) { return "550 no such file"; }
    Stats.download();
    s.bytesDown = s.bytesDown + content.length();
    return "150 " + content;|},
          {|    String content = VirtualFs.read(s.resolve(arg));
    if (content == null) { content = VirtualFs.read(arg); }
    if (content == null) { return "550 no such file"; }
    Stats.download();
    return "150 " + content;|}
        );
        ( {|    VirtualFs.put(name, content);
    Stats.upload();
    s.bytesUp = s.bytesUp + content.length();
    return "226 stored";|},
          {|    VirtualFs.put(name, content);
    Stats.upload();
    return "226 stored";|}
        );
        ( {|  void run() {
    Stats.session();
    Net.send(session.conn, "220 " + Config.banner);
    while (true) {
      String line = Net.recvLine(session.conn);
      if (line == null) { Net.close(session.conn); return; }
      Stats.command();|},
          {|  void run() {
    Stats.session();
    Net.send(session.conn, "220 " + Config.banner + " (" + Stats.sessions + ")");
    while (true) {
      String line = Net.recvLine(session.conn);
      if (line == null) { Net.close(session.conn); return; }
      if (line.length() == 0) { continue; }
      Stats.command();|}
        );
      ] );
  ]

let app : Patching.versioned =
  Patching.build ~app_name:"miniftp" ~base_version ~base_src ~releases

(* The update that only applies when the server is idle. *)
let busy_update = "1.08"

(* Health probe (fleet orchestration).  The probing client may see the
   "220" greeting banner first; the prober accepts any line passing
   [health_ok], so only the "200 healthy" reply satisfies it. *)
let health_probe = Common.hlth_probe
let health_ok = Common.prefix_ok "200"
