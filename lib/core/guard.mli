(** The post-commit guard window: an error-budget watchdog over a freshly
    committed update, comparing new-epoch trap rate, app-level errors,
    health-probe failures and windowed p99 latency against pre-update
    baselines.  Tripping yields a {!verdict}; the driver ([Jvolve]) then
    applies the inverse update, replaying the retained update log.

    Deterministic trip drivers for tests and benches: the [guard.trap],
    [guard.probe], [guard.latency] and [guard.trip] fault points, checked
    each {!tick}. *)

module State = Jv_vm.State

(** {1 The error budget} *)

type budget = {
  b_rounds : int;  (** window length in scheduler rounds *)
  b_max_traps : int;  (** new-epoch traps tolerated (strictly more trips) *)
  b_max_app_errors : int;  (** classifier-rejected responses tolerated *)
  b_max_probe_failures : int;
  b_latency_factor : float;  (** window p99 may exceed baseline by this *)
  b_min_latency_samples : int;  (** don't judge p99 on thin traffic *)
}

val default_budget : budget

val budget_of_string : string -> (budget, string) result
(** Parse a [--guard-budget] string:
    ["rounds=200,traps=0,errors=2,probes=2,latency=3,samples=32"] — any
    subset of keys, the rest keep their defaults.  The empty string is
    {!default_budget}. *)

val budget_to_string : budget -> string

(** {1 Configuration} *)

(** The built-in loopback prober: every [pc_every] rounds connect to the
    app's own port, send [pc_line], and expect a response passing [pc_ok]
    within [pc_deadline] rounds. *)
type probe_config = {
  pc_port : int;
  pc_line : string;
  pc_ok : string -> bool;
  pc_every : int;
  pc_deadline : int;
}

val probe_config :
  ?every:int ->
  ?deadline:int ->
  port:int ->
  line:string ->
  ok:(string -> bool) ->
  unit ->
  probe_config

type config = {
  c_budget : budget;
  c_probe : probe_config option;
  c_latency_metric : string;  (** histogram name in the VM's sink *)
}

val default_latency_metric : string
(** ["app.request_rounds"], observed by the server apps' workloads. *)

val config :
  ?budget:budget -> ?probe:probe_config -> ?latency_metric:string -> unit ->
  config

(** {1 Verdicts} *)

type signal = S_traps | S_app_errors | S_probes | S_latency | S_injected

val signal_to_string : signal -> string

type verdict = {
  v_signal : signal;
  v_detail : string;
  v_round : int;  (** window round at which the budget tripped *)
  v_traps : int;  (** new-epoch traps observed (incl. synthetic) *)
  v_app_errors : int;
  v_probe_failures : int;
  v_p99 : float;  (** window p99 (latency-metric units) *)
  v_baseline_p99 : float;
  mutable v_revert_ms : float;  (** filled in once the revert resolves *)
}

val verdict_to_string : verdict -> string

(** {1 The window} *)

type t

val open_window : config -> State.t -> t
(** Snapshot the latency baseline and start watching the current code
    epoch.  Call immediately after a [Txn.commit_retaining] commit, with
    the world still stopped. *)

val tick : State.t -> t -> [ `Watching | `Trip of verdict | `Close ]
(** One watchdog step, to be called once per scheduler round (the
    [State.guard_tick] hook).  [`Close] means the window expired with the
    budget intact (and keeps being returned thereafter); the caller
    should then release the retained log.  [`Trip v] means a budget was
    exceeded; the window is closed and the caller should revert. *)

val round_of : State.t -> t -> int
(** Rounds elapsed since the window opened. *)

val note_probe_failure : t -> unit
(** Feed in a probe failure observed out-of-band (an orchestrator's
    sidecar prober). *)

val cancel : State.t -> t -> unit
(** Shut the window without a verdict: close any in-flight probe and make
    every further {!tick} return [`Close].  Used when an external driver
    (the fleet orchestrator) takes over the revert decision. *)
