(** The update transaction: snapshot of everything an update mutates
    (registry shape, per-class/per-method mutable fields, the name table,
    the JTOC statics area), exact restoration on abort, and a
    post-rollback audit.  The JTOC snapshot is registered as an extra GC
    root while the transaction is open so its references survive and
    track every collection.  See [Updater.apply]. *)

module State = Jv_vm.State

type t

val capture : State.t -> t
(** Open a transaction.  Registers the statics snapshot as an extra GC
    root; every capture must be paired with exactly one {!commit} or
    {!rollback}. *)

val commit : State.t -> t -> unit
(** The update applied: drop the snapshot root. *)

val commit_retaining : State.t -> t -> update_log:int array -> unit
(** Commit, but keep the update log (still registered in [extra_roots] by
    the updater) alive for a post-commit guard window, published as
    [State.guard_retained].  Its pristine old copies feed the
    inverse-update replay if the guard trips, and the heap verifier's
    [guard_pending] allowance until then.  Pair with
    {!release_retained}. *)

val release_retained : State.t -> unit
(** Close the guard window: unroot the retained log (if any) and run a
    plain collection so the old copies die.  Idempotent. *)

val rollback : ?update_log:int array -> State.t -> t -> unit
(** Restore metadata and statics, then — when [update_log] is non-empty,
    i.e. the transforming collection already ran — undo the heap pass by
    collecting with a redirect built from the log (new object → pristine
    old copy).  The log must hold current addresses: unregister it from
    [extra_roots] immediately before this call, with no collection in
    between. *)

val audit : State.t -> t -> (unit, string) result
(** Is the metadata exactly the snapshot again?  [Error why] names the
    first discrepancy (a half-installed class table). *)
