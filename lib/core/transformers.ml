(* The Update Preparation Tool, part 2: transformer generation and
   compilation (paper §2.3).

   For every class update the UPT emits
   - an *old-class stub*, [v<tag>_Name], holding only the old version's
     (flattened) instance fields — "all methods have been removed since the
     updated program may not call them";
   - a default class transformer [jvolveClass] (empty: unchanged statics
     are carried over by the updater) and a default object transformer
     [jvolveObject] that copies same-name same-type fields and leaves new
     or changed fields at their default values.

   The bundle compiles in the compiler's Transformer mode, which ignores
   access modifiers and allows assignment to final fields — the paper's
   JastAdd extension. *)

module CF = Jv_classfile

let transformer_class_name = "JvolveTransformers"

(* Map an old-program type into the post-update namespace: types of updated
   classes keep their (new) name — after the GC pass, old objects' fields
   point to *transformed* objects; types of deleted classes are renamed to
   their stub. *)
let rec map_old_ty spec (t : CF.Types.ty) : CF.Types.ty =
  match t with
  | CF.Types.TRef c when List.mem c spec.Spec.diff.Diff.deleted_classes ->
      CF.Types.TRef (Spec.old_class_name ~tag:spec.Spec.version_tag c)
  | CF.Types.TArray e -> CF.Types.TArray (map_old_ty spec e)
  | t -> t

(* Flattened instance fields of a class in declaration (= layout) order,
   superclass fields first: exactly the runtime object layout. *)
let flattened_fields (prog : CF.Cls.program) (c : CF.Cls.t) :
    CF.Cls.field list =
  CF.Cls.ancestry prog c [] |> List.rev
  |> List.concat_map (fun (a : CF.Cls.t) ->
         List.filter
           (fun (f : CF.Cls.field) -> not f.CF.Cls.fd_access.CF.Access.is_static)
           a.CF.Cls.c_fields)

(* The stub class file for an old class: fields only, extends Object.  The
   field order matches the old runtime layout, which is what lets the JIT
   resolve stub field references against the renamed old [rt_class]. *)
let old_class_stub spec (oldp : CF.Cls.program) (c : CF.Cls.t) : CF.Cls.t =
  {
    CF.Cls.c_name = Spec.old_class_name ~tag:spec.Spec.version_tag c.CF.Cls.c_name;
    c_super = CF.Types.object_class;
    c_fields =
      List.map
        (fun (f : CF.Cls.field) ->
          { f with CF.Cls.fd_ty = map_old_ty spec f.CF.Cls.fd_ty })
        (flattened_fields oldp c);
    c_methods = [];
  }

let stubs_for spec : CF.Cls.t list =
  let oldp = CF.Cls.program_of_list spec.Spec.old_program in
  spec.Spec.diff.Diff.class_updates_closure
  @ spec.Spec.diff.Diff.deleted_classes
  |> List.filter_map (fun name ->
         Option.map (old_class_stub spec oldp) (CF.Cls.find_class oldp name))

(* --- default transformer source ---------------------------------------- *)

let default_object_body spec ~(cls : string) : string =
  let oldp = CF.Cls.program_of_list spec.Spec.old_program in
  let newp = CF.Cls.program_of_list spec.Spec.new_program in
  match (CF.Cls.find_class oldp cls, CF.Cls.find_class newp cls) with
  | Some oldc, Some newc ->
      let old_fields =
        List.map
          (fun (f : CF.Cls.field) ->
            (f.CF.Cls.fd_name, map_old_ty spec f.CF.Cls.fd_ty))
          (flattened_fields oldp oldc)
      in
      flattened_fields newp newc
      |> List.filter_map (fun (f : CF.Cls.field) ->
             match List.assoc_opt f.CF.Cls.fd_name old_fields with
             | Some oty when CF.Types.equal_ty oty f.CF.Cls.fd_ty ->
                 Some
                   (Printf.sprintf "    to.%s = from.%s;" f.CF.Cls.fd_name
                      f.CF.Cls.fd_name)
             | _ -> None (* new or changed field: keep the default value *))
      |> String.concat "\n"
  | _ -> ""

(* The transformer methods an update's layout closure requires: the
   contract [generate_source] fulfils and admission control checks
   against hand-written transformer sources. *)
let transformer_method_sigs spec : (string * CF.Types.ty list) list =
  let tag = spec.Spec.version_tag in
  List.concat_map
    (fun cls ->
      [
        ("jvolveClass", [ CF.Types.TRef cls ]);
        ( "jvolveObject",
          [ CF.Types.TRef cls; CF.Types.TRef (Spec.old_class_name ~tag cls) ]
        );
      ])
    spec.Spec.diff.Diff.class_updates_closure

let generate_source spec : string =
  let tag = spec.Spec.version_tag in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "class %s {\n" transformer_class_name);
  List.iter
    (fun cls ->
      let class_body =
        match List.assoc_opt cls spec.Spec.class_overrides with
        | Some body -> body
        | None -> ""
      in
      Buffer.add_string b
        (Printf.sprintf "  static void jvolveClass(%s unused) {\n%s\n  }\n"
           cls class_body);
      let obj_body =
        match List.assoc_opt cls spec.Spec.object_overrides with
        | Some body -> body
        | None -> default_object_body spec ~cls
      in
      Buffer.add_string b
        (Printf.sprintf
           "  static void jvolveObject(%s to, %s from) {\n%s\n  }\n" cls
           (Spec.old_class_name ~tag cls)
           obj_body))
    spec.Spec.diff.Diff.class_updates_closure;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- compilation --------------------------------------------------------- *)

type prepared = {
  p_spec : Spec.t;
  p_transformer : CF.Cls.t; (* the compiled JvolveTransformers class *)
  p_stubs : CF.Cls.t list;
  p_source : string;
}

exception Prepare_error of string

let prepare (spec : Spec.t) : prepared =
  (match Spec.unsupported_reason spec with
  | Some r -> raise (Prepare_error r)
  | None -> ());
  (* the new program must verify on its own, strictly *)
  (match
     CF.Verifier.verify_program
       (CF.Builtins.program_with spec.Spec.new_program)
   with
  | [] -> ()
  | errs ->
      raise
        (Prepare_error
           ("new program does not verify:\n  " ^ String.concat "\n  " errs)));
  let stubs = stubs_for spec in
  let src =
    match spec.Spec.transformer_src with
    | Some s -> s
    | None -> generate_source spec
  in
  let extra = spec.Spec.new_program @ stubs in
  let classes =
    try Jv_lang.Compile.compile_program ~mode:Jv_lang.Compile.Transformer
          ~extra src
    with Jv_lang.Compile.Error e ->
      raise (Prepare_error ("transformer compilation failed: " ^ e))
  in
  let transformer =
    match
      List.find_opt
        (fun c -> String.equal c.CF.Cls.c_name transformer_class_name)
        classes
    with
    | Some c -> c
    | None ->
        raise
          (Prepare_error
             ("transformer source does not define " ^ transformer_class_name))
  in
  { p_spec = spec; p_transformer = transformer; p_stubs = stubs; p_source = src }
