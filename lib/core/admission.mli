(** Admission control: lint a prepared update {e before} the VM pauses.

    Static checks over the spec, the compiled transformer bundle and the
    post-update class world — diff consistency, strict verification of
    the new program, stub/layout-closure agreement, Transformer-mode
    verification of the transformer bytecode against new program +
    stubs, presence of every required [jvolveClass]/[jvolveObject], and
    field-mapping type compatibility.  A rejection costs milliseconds of
    preparation time instead of a stop-the-world pause followed by a
    rollback. *)

type severity =
  | Reject  (** always sinks the update *)
  | Warn  (** admitted, unless strict mode promotes it *)

type verdict = { v_severity : severity; v_check : string; v_detail : string }

type report = {
  a_verdicts : verdict list;
  a_checks : int;  (** checks run *)
  a_ms : float;
}

val verdict_to_string : verdict -> string

val review : ?confree:bool -> Transformers.prepared -> report
(** [confree] (default [true]) additionally certifies the con-freeness
    proof set against the bundle: every proof must re-validate its
    recorded obligations and the proven set must be closed under the
    call graph; blacklist entries shadowing a proof are surfaced as
    warnings. *)

val rejections : strict:bool -> report -> string list
(** The rendered verdicts that sink the update: every [Reject], plus
    every [Warn] when [strict]. *)

val ok : strict:bool -> report -> bool
