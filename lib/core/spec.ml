(* Update specifications: the artifact the UPT hands to the VM (paper §2.1,
   Figure 1).  Identifies changed/added classes, carries the full new
   program, the (possibly customized) transformer source, and the user's
   blacklist of additionally-restricted methods (category 3). *)

module CF = Jv_classfile

type t = {
  version_tag : string; (* prepended to old class names, e.g. "131" *)
  diff : Diff.t;
  old_program : CF.Cls.t list;
  new_program : CF.Cls.t list;
  transformer_src : string option; (* None = use generated defaults *)
  (* custom method *bodies* spliced into the generated transformer class,
     keyed by class name — the common way programmers customize the UPT
     output (paper Figure 3) *)
  object_overrides : (string * string) list;
  class_overrides : (string * string) list;
  (* overrides for the *rollback* direction: spliced into the inverse
     spec's generated transformer when a guard window (or orchestrator)
     backs this update out.  A schema migration that reshapes data — a
     field split, an index re-key, an encoding change — supplies both
     directions so the revert recomputes the old representation from live
     state instead of falling back to default-mapped values. *)
  inverse_object_overrides : (string * string) list;
  inverse_class_overrides : (string * string) list;
  blacklist : Diff.mref list;
}

let make ?(transformer_src = None) ?(object_overrides = [])
    ?(class_overrides = []) ?(inverse_object_overrides = [])
    ?(inverse_class_overrides = []) ?(blacklist = []) ~version_tag
    ~old_program ~new_program () =
  {
    version_tag;
    diff = Diff.compute ~old_program ~new_program;
    old_program;
    new_program;
    transformer_src;
    object_overrides;
    class_overrides;
    inverse_object_overrides;
    inverse_class_overrides;
    blacklist;
  }

let old_class_name ~tag name = Printf.sprintf "v%s_%s" tag name

(* The rollback spec: swap old and new programs and re-run the UPT diff.
   If the spec carries inverse overrides (a real schema migration), they
   become the rollback's forward transformers, so the revert recomputes
   the old representation from live state; otherwise the inverse falls
   back to the UPT-generated defaults and fields the forward update
   introduced are simply dropped.  The two override directions swap, so
   the inverse of the inverse is the forward spec again.  The blacklist
   is kept — version-consistency concerns restrict the same methods in
   both directions. *)
let inverse spec =
  make ~blacklist:spec.blacklist
    ~object_overrides:spec.inverse_object_overrides
    ~class_overrides:spec.inverse_class_overrides
    ~inverse_object_overrides:spec.object_overrides
    ~inverse_class_overrides:spec.class_overrides
    ~version_tag:(spec.version_tag ^ "rb")
    ~old_program:spec.new_program ~new_program:spec.old_program ()

(* A spec is structurally applicable if it stays within Jvolve's update
   model.  Hierarchy permutations (changed superclass edges) are not
   supported (paper §2.2). *)
let unsupported_reason spec =
  if spec.diff.Diff.super_changes <> [] then
    Some
      (Printf.sprintf "superclass changes are not supported (classes: %s)"
         (String.concat ", " spec.diff.Diff.super_changes))
  else None

let changed_anything spec =
  spec.diff.Diff.class_updates_closure <> []
  || spec.diff.Diff.body_updates <> []
  || spec.diff.Diff.added_classes <> []
  || spec.diff.Diff.deleted_classes <> []
