(** Transformer generation and compilation — part 2 of the UPT (paper
    §2.3).

    For every class update the UPT emits an {e old-class stub}
    ([v<tag>_Name]: the old version's flattened instance fields, methods
    stripped) and default transformers: [jvolveClass] (statics; empty by
    default since unchanged statics carry over) and [jvolveObject]
    (copies same-name same-type fields, leaves the rest at default
    values).  The bundle compiles in the MiniJava compiler's Transformer
    mode — the paper's JastAdd extension that ignores access modifiers
    and permits assignment to final fields. *)

module CF = Jv_classfile

val transformer_class_name : string
(** ["JvolveTransformers"]. *)

val map_old_ty : Spec.t -> CF.Types.ty -> CF.Types.ty
(** Map an old-program type into the post-update namespace: updated
    classes keep their (new) name — after the transforming collection,
    old objects' fields point to {e transformed} referents — while
    deleted classes are renamed to their stubs. *)

val stubs_for : Spec.t -> CF.Cls.t list
(** Old-class stubs for every class in the update's layout closure and
    every deleted class.  Field order matches the old runtime layout,
    which is what lets the JIT resolve stub references against the
    renamed old class metadata. *)

val flattened_fields : CF.Cls.program -> CF.Cls.t -> CF.Cls.field list
(** Instance fields in runtime layout order (superclass fields first). *)

val transformer_method_sigs : Spec.t -> (string * CF.Types.ty list) list
(** The (name, parameter types) pairs the transformer class must define
    for this update: a [jvolveClass]/[jvolveObject] pair per
    layout-closure class. *)

val generate_source : Spec.t -> string
(** The [JvolveTransformers] MiniJava source: defaults with the spec's
    overrides spliced in. *)

(** A compiled, ready-to-apply update bundle. *)
type prepared = {
  p_spec : Spec.t;
  p_transformer : CF.Cls.t;  (** the compiled JvolveTransformers class *)
  p_stubs : CF.Cls.t list;
  p_source : string;  (** the transformer source actually compiled *)
}

exception Prepare_error of string

val prepare : Spec.t -> prepared
(** Verify the new program, generate (or accept) and compile the
    transformer bundle.  Raises {!Prepare_error} for unsupported updates,
    verification failures, or transformer compile errors. *)
