(** Update specifications: the artifact the UPT hands to the VM (paper
    §2.1, Figure 1). *)

module CF = Jv_classfile

type t = {
  version_tag : string;
      (** prepended to superseded class names: tag "131" renames [User]
          to [v131_User] *)
  diff : Diff.t;
  old_program : CF.Cls.t list;
  new_program : CF.Cls.t list;
  transformer_src : string option;
      (** complete custom [JvolveTransformers] source; [None] uses the
          UPT-generated defaults (possibly with overrides below) *)
  object_overrides : (string * string) list;
      (** per-class custom {e bodies} spliced into the generated
          [jvolveObject] methods — how programmers customize the UPT
          output (paper Figure 3) *)
  class_overrides : (string * string) list;
      (** same, for [jvolveClass] (static-state) transformers *)
  inverse_object_overrides : (string * string) list;
      (** override bodies for the {e rollback} direction: spliced into
          the inverse spec's generated transformer so a guard revert of a
          schema migration recomputes the old representation from live
          state instead of default-mapping it *)
  inverse_class_overrides : (string * string) list;
      (** same, for the rollback's [jvolveClass] transformers *)
  blacklist : Diff.mref list;
      (** user-restricted methods — category (3) of the DSU safe-point
          condition, for version-consistency concerns (paper §3.2) *)
}

(** Build a spec, running the UPT diff. *)
val make :
  ?transformer_src:string option ->
  ?object_overrides:(string * string) list ->
  ?class_overrides:(string * string) list ->
  ?inverse_object_overrides:(string * string) list ->
  ?inverse_class_overrides:(string * string) list ->
  ?blacklist:Diff.mref list ->
  version_tag:string ->
  old_program:CF.Cls.t list ->
  new_program:CF.Cls.t list ->
  unit ->
  t

(** [old_class_name ~tag "User"] is ["v<tag>_User"]. *)
val old_class_name : tag:string -> string -> string

(** The rollback spec: old and new programs swapped, diff recomputed,
    version tag suffixed with ["rb"].  [inverse_object_overrides] /
    [inverse_class_overrides] (if any) become the rollback's forward
    transformers; otherwise the inverse uses UPT-generated defaults.  The
    blacklist carries over.  Used by the guard watchdog and the fleet
    orchestrator to revert updates. *)
val inverse : t -> t

(** [Some reason] if the update falls outside Jvolve's model (currently:
    class-hierarchy permutations, paper §2.2). *)
val unsupported_reason : t -> string option

(** Does the spec change anything at all? *)
val changed_anything : t -> bool
