(* DSU safe points (paper §3.2).

   A DSU safe point is a VM safe point at which no thread's stack contains
   a *restricted* method.  Restricted methods are:

   (1) methods whose bytecode the update changes — method-body updates,
       every method of a class update, and every method of a deleted
       class — plus opt-compiled methods that *inlined* one of those;
   (2) methods whose bytecode is unchanged but whose compiled code is
       stale because it hard-codes offsets of an updated class ("indirect
       method updates") — these block only if opt-compiled: base-compiled
       frames are lifted by OSR;
   (3) methods the user blacklists for version consistency.

   With [config.confree] on, the static con-freeness analysis ([Confree])
   runs first and every changed method it proves [Identical] or
   [Compatible] is subtracted from category (1): its old body may legally
   keep running across the commit, so its frames no longer block the safe
   point.  User blacklist entries always override a proof, and an
   opt-compiled caller that inlined a changed body stays restricted unless
   every body it inlined is itself proven.

   When restricted methods are on stack, Jvolve installs a return barrier
   on the topmost restricted frame of each stuck thread and retries when it
   fires. *)

module IntSet = Set.Make (Int)
module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Machine = Jv_vm.Machine

type restricted = {
  changed : IntSet.t; (* categories (1) and (3) + inline callers: blocking *)
  stale : IntSet.t; (* category (2): OSR-able when base-compiled *)
  proofs : Confree.t option; (* con-freeness verdicts (None: analysis off) *)
  proven_off : int; (* proven methods subtracted from [changed] *)
}

let resolve_mref vm (r : Diff.mref) : int option =
  match Rt.find_class vm.State.reg r.Diff.r_class with
  | None -> None
  | Some rc -> (
      match Rt.resolve_method vm.State.reg rc r.Diff.r_name r.Diff.r_sig with
      | Some m -> Some m.Rt.uid
      | None -> None)

(* Resolve the restricted sets against current runtime metadata.  Must run
   while the update's old classes are still installed under their original
   names (i.e., at request time). *)
let compute vm (spec : Spec.t) : restricted =
  let changed = ref IntSet.empty in
  let add_set setref uid = setref := IntSet.add uid !setref in
  (* all methods of updated (closure) and deleted classes *)
  List.iter
    (fun cname ->
      match Rt.find_class vm.State.reg cname with
      | None -> ()
      | Some rc ->
          Array.iter (fun (m : Rt.rt_method) -> add_set changed m.Rt.uid)
            rc.Rt.methods)
    (spec.Spec.diff.Diff.class_updates_closure
    @ spec.Spec.diff.Diff.deleted_classes);
  (* method body updates *)
  List.iter
    (fun r ->
      match resolve_mref vm r with
      | Some uid -> add_set changed uid
      | None -> ())
    spec.Spec.diff.Diff.body_updates;
  (* Con-freeness subtraction: changed methods proven compatible may keep
     running across the commit.  A user blacklist pin always overrides a
     proof, so blacklisted uids are never subtracted. *)
  let blacklist_uids =
    List.filter_map (resolve_mref vm) spec.Spec.blacklist
    |> List.fold_left (fun s u -> IntSet.add u s) IntSet.empty
  in
  let proofs =
    if vm.State.config.State.confree then Some (Confree.analyze spec)
    else None
  in
  let proven_off = ref 0 in
  (match proofs with
  | None -> ()
  | Some t ->
      List.iter
        (fun r ->
          match resolve_mref vm r with
          | Some uid
            when IntSet.mem uid !changed
                 && not (IntSet.mem uid blacklist_uids) ->
              changed := IntSet.remove uid !changed;
              incr proven_off
          | _ -> ())
        (Confree.proven t));
  (* user blacklist: category (3) *)
  IntSet.iter (add_set changed) blacklist_uids;
  (* category (2) *)
  let stale = ref IntSet.empty in
  List.iter
    (fun r ->
      match resolve_mref vm r with
      | Some uid -> add_set stale uid
      | None -> ())
    spec.Spec.diff.Diff.indirect_methods;
  (* Inline callers: an opt-compiled method that inlined a restricted body
     is running old code.  If the caller's own bytecode changed it is in
     (1) already; otherwise it joins the *stale* set: its active frames
     block unless OSR can replace them — base frames never inlined
     anything, and with the opt-OSR extension an opt frame parked outside
     its inline spans can be wholly replaced (discarding the stale inlined
     copy), while a frame parked *inside* a span is caught by the span
     check in [Jv_vm.Osr.eligible]. *)
  let seed = IntSet.union !changed !stale in
  Rt.iter_methods vm.State.reg (fun m ->
      match m.Rt.opt_code with
      | Some c
        when List.exists (fun u -> IntSet.mem u seed) c.Machine.inlined
             && not (IntSet.mem m.Rt.uid !changed) ->
          add_set stale m.Rt.uid
      | _ -> ());
  (* the seed above is the post-subtraction changed set: an opt caller
     whose every inlined changed body is proven never joins [stale] —
     inlined copies of proven bodies may keep running too *)
  { changed = !changed; stale = !stale; proofs; proven_off = !proven_off }

type check_result =
  | Safe of State.frame list (* base-compiled category-(2) frames to OSR *)
  | Blocked of (State.vthread * State.frame) list
      (* per stuck thread, the topmost restricted frame (barrier site) *)

(* Classify a frame.  [allow_osr:false] (an ablation mode) treats every
   category-(2) frame as blocking, showing how much flexibility OSR buys.
   [Jv_vm.Osr.eligible] admits base-compiled frames and — with the
   [opt_osr] extension — opt-compiled frames parked outside inlined
   regions. *)
let frame_class vm ~allow_osr r (fr : State.frame) =
  let uid = fr.State.f_method in
  if IntSet.mem uid r.changed then `Blocking
  else if IntSet.mem uid r.stale then
    if allow_osr && Jv_vm.Osr.eligible vm fr then `Osr else `Blocking
  else `Clear

(* Check whether the stopped world is at a DSU safe point. *)
let check ?(allow_osr = true) vm (r : restricted) : check_result =
  let osr_frames = ref [] in
  let stuck = ref [] in
  List.iter
    (fun (t : State.vthread) ->
      (* walk from the top of the stack; remember the topmost restricted
         frame in case we must install a barrier *)
      let top_restricted = ref None in
      let blocking = ref false in
      List.iter
        (fun fr ->
          match frame_class vm ~allow_osr r fr with
          | `Blocking ->
              if !top_restricted = None then top_restricted := Some fr;
              blocking := true
          | `Osr ->
              if !top_restricted = None then top_restricted := Some fr;
              osr_frames := fr :: !osr_frames
          | `Clear -> ())
        t.State.frames;
      if !blocking then
        match !top_restricted with
        | Some fr -> stuck := (t, fr) :: !stuck
        | None -> assert false)
    (State.live_threads vm);
  Jv_obs.Obs.incr vm.State.obs "core.safepoint.checks";
  Jv_obs.Obs.set_gauge vm.State.obs "core.safepoint.blocked_threads"
    (float_of_int (List.length !stuck));
  if !stuck = [] then Safe !osr_frames else Blocked (List.rev !stuck)

(* Install return barriers on the topmost restricted frames (paper: "the VM
   installs return-barriers for (1) and (3)").  Returns how many new
   barriers were installed. *)
let install_barriers (stuck : (State.vthread * State.frame) list) : int =
  List.fold_left
    (fun acc (_, fr) ->
      if fr.State.barrier then acc
      else begin
        fr.State.barrier <- true;
        acc + 1
      end)
    0 stuck

let clear_barriers vm =
  List.iter
    (fun (t : State.vthread) ->
      List.iter (fun fr -> fr.State.barrier <- false) t.State.frames)
    vm.State.threads

(* Release every thread parked by a fired return barrier (when the update
   resolves either way). *)
let release_parked vm =
  List.iter
    (fun (t : State.vthread) ->
      if t.State.tstate = State.T_blocked State.B_dsu then
        t.State.tstate <- State.T_runnable)
    vm.State.threads

(* A thread that parked at a barrier but still has restricted frames deeper
   in its stack must keep running (with a fresh barrier) to clear them. *)
let unpark_stuck (stuck : (State.vthread * State.frame) list) =
  List.iter
    (fun ((t : State.vthread), _) ->
      if t.State.tstate = State.T_blocked State.B_dsu then
        t.State.tstate <- State.T_runnable)
    stuck

(* Structured starvation diagnostic: per stuck thread, the topmost
   restricted frame that kept the DSU safe point out of reach.  A timeout
   abort names these instead of reporting a bare timeout. *)
type blocker = {
  b_tid : int;
  b_method : string; (* qualified name of the topmost restricted frame *)
  b_why : string option;
      (* why the frame has no con-freeness proof (timeout diagnostics) *)
}

(* Why a restricted frame could not be proven off the restricted set:
   the analysis's recorded reason, a blacklist override, or the analysis
   being off entirely. *)
let unproven_why vm (r : restricted) (fr : State.frame) : string option =
  let m = Rt.method_by_uid vm.State.reg fr.State.f_method in
  let c = Rt.class_by_id vm.State.reg m.Rt.owner in
  let mref =
    { Diff.r_class = c.Rt.name; r_name = m.Rt.m_name; r_sig = m.Rt.m_sig }
  in
  match r.proofs with
  | None -> Some "con-freeness analysis off"
  | Some t -> (
      match Confree.find t mref with
      | Some res when res.Confree.cr_verdict = Confree.Restricted ->
          Some
            ("no proof: " ^ Confree.reason_to_string res.Confree.cr_reason)
      | Some res ->
          (* proven, yet still blocking: a blacklist pin overrode it *)
          Some
            (Printf.sprintf "blacklisted (overrides its %s proof)"
               (Confree.verdict_to_string res.Confree.cr_verdict))
      | None ->
          if IntSet.mem fr.State.f_method r.stale then
            Some "stale compiled code (indirect update), not OSR-able here"
          else Some "blacklisted"
      )

let blocker_list vm (r : restricted)
    (stuck : (State.vthread * State.frame) list) : blocker list =
  stuck
  |> List.map (fun ((t : State.vthread), (fr : State.frame)) ->
         let m = Rt.method_by_uid vm.State.reg fr.State.f_method in
         let c = Rt.class_by_id vm.State.reg m.Rt.owner in
         {
           b_tid = t.State.tid;
           b_method = Rt.method_qname c m;
           b_why = unproven_why vm r fr;
         })
  |> List.sort_uniq compare

let blocker_to_string b =
  Printf.sprintf "thread %d: %s%s" b.b_tid b.b_method
    (match b.b_why with None -> "" | Some w -> " [" ^ w ^ "]")

(* Human-readable description of what blocks the update (for abort
   messages and the experience tables). *)
let describe_blockers vm (r : restricted)
    (stuck : (State.vthread * State.frame) list) : string =
  blocker_list vm r stuck |> List.map blocker_to_string |> String.concat "; "
