(* The update transaction: snapshot everything an update mutates, restore
   it all on abort, and audit that the restoration is exact.

   The paper's safety claim (§3.3-3.4) is all-or-nothing: an update either
   completes atomically at a DSU safe point or the program keeps running
   the old version.  [Updater.apply] brackets the whole installation in
   one of these transactions, so any mid-flight failure (transformer
   trap, cyclic transformer set, injected fault) rolls the VM back
   instead of leaving a half-installed class table.

   What the snapshot covers, exploiting that updates only *append* to the
   registry and mutate a handful of fields in place:

   - registry shape: [n_classes]/[n_methods] (installation appends new
     class and method ids sequentially, so rollback is truncation) and
     the resolution [epoch];
   - per existing class: [name] and [valid] (renaming superseded classes
     is the only per-class mutation);
   - per existing method: bytecode, locals count, compiled code,
     invocation profile and validity (body swaps + code invalidation);
   - the [by_name] table (re-keyed by renames and installs);
   - the JTOC statics area: [jtoc_n] plus a copy of the live slots.  The
     copy is registered as an {e extra GC root} while the transaction is
     open, so every collection (the transforming one, and any nested
     plain collection the transformer phase triggers) forwards the saved
     references — restoring them later always yields live addresses.

   Heap rollback: the transforming collection replaced every instance of
   an updated class with a new-layout object, keeping the old copy in
   the update log.  Old copies are pristine — transformers read the old
   object and write the new one — so aborting after that collection runs
   a plain GC with a {e redirect} (new addr → old copy, decoded from the
   log): every surviving reference moves back to the old copy and the
   new objects become garbage (see [Gc.collect ?redirect]).

   Outside the transaction, by design: program output already printed,
   and heap mutations performed by application-visible code the update
   itself ran (added-class <clinit>s) — the paper's model (§3.4) gives
   the same answer, as class initializers run before the update commits
   its heap pass. *)

module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Gc = Jv_vm.Gc
module Value = Jv_vm.Value
module Machine = Jv_vm.Machine
module CF = Jv_classfile

type class_snap = { cs_name : string; cs_valid : bool }

type method_snap = {
  ms_bytecode : CF.Instr.t array option;
  ms_max_locals : int;
  ms_base : Machine.compiled option;
  ms_opt : Machine.compiled option;
  ms_invocations : int;
  ms_valid : bool;
}

type t = {
  tx_n_classes : int;
  tx_n_methods : int;
  tx_epoch : int;
  tx_classes : class_snap array; (* index = cid *)
  tx_methods : method_snap array; (* index = uid *)
  tx_by_name : (string, int) Hashtbl.t;
  tx_jtoc : int array; (* live slots; registered as an extra root *)
  tx_jtoc_n : int;
}

let capture (vm : State.t) : t =
  let reg = vm.State.reg in
  let classes =
    Array.init reg.Rt.n_classes (fun cid ->
        let c = reg.Rt.classes.(cid) in
        { cs_name = c.Rt.name; cs_valid = c.Rt.valid })
  in
  let methods =
    Array.init reg.Rt.n_methods (fun uid ->
        let m = reg.Rt.methods.(uid) in
        {
          ms_bytecode = m.Rt.bytecode;
          ms_max_locals = m.Rt.max_locals;
          ms_base = m.Rt.base_code;
          ms_opt = m.Rt.opt_code;
          ms_invocations = m.Rt.invocations;
          ms_valid = m.Rt.m_valid;
        })
  in
  let jtoc = Array.sub vm.State.jtoc 0 vm.State.jtoc_n in
  let txn =
    {
      tx_n_classes = reg.Rt.n_classes;
      tx_n_methods = reg.Rt.n_methods;
      tx_epoch = reg.Rt.epoch;
      tx_classes = classes;
      tx_methods = methods;
      tx_by_name = Hashtbl.copy reg.Rt.by_name;
      tx_jtoc = jtoc;
      tx_jtoc_n = vm.State.jtoc_n;
    }
  in
  (* keep the saved statics' referents alive and their addresses current
     across every collection while the transaction is open *)
  vm.State.extra_roots <- txn.tx_jtoc :: vm.State.extra_roots;
  txn

let release vm txn =
  vm.State.extra_roots <-
    List.filter (fun a -> a != txn.tx_jtoc) vm.State.extra_roots

let commit vm txn = release vm txn

(* Commit, but keep the update log alive for a post-commit guard window:
   the transaction's own root (the JTOC copy) is dropped as usual, while
   the log array — which the updater left registered in [extra_roots] —
   is published as [State.guard_retained].  The pristine old copies in
   its even slots are the inverse-update replay's source should the
   guard's error budget trip; until the window closes they are also the
   heap verifier's [guard_pending] allowance. *)
let commit_retaining vm txn ~update_log =
  release vm txn;
  if Array.length update_log > 0 then
    vm.State.guard_retained <- Some update_log

(* Close the guard window: unroot the retained log and collect, so the
   old copies finally die and subsequent heap verifications see no
   superseded objects at all.

   Lazy-aware: while a lazy update window is still draining, the
   retained log IS the window's live update log — clearing the guard
   publication must neither unroot it (residual transforms still append
   to it and a late abort still replays it) nor collect (the sweeper
   owns the window's lifecycle); the window's own finalize/rollback
   releases the array. *)
let release_retained vm =
  match vm.State.guard_retained with
  | None -> ()
  | Some log -> (
      vm.State.guard_retained <- None;
      match vm.State.lazy_info with
      | Some li when li.State.li_log == log -> ()
      | _ ->
          vm.State.extra_roots <-
            List.filter (fun a -> a != log) vm.State.extra_roots;
          ignore (Gc.collect vm))

(* Exact metadata restoration: truncate the appended ids, put back every
   saved mutable field, rebuild the name table. *)
let restore_metadata (vm : State.t) txn =
  let reg = vm.State.reg in
  for cid = txn.tx_n_classes to reg.Rt.n_classes - 1 do
    reg.Rt.classes.(cid) <- Rt.dummy_class
  done;
  for uid = txn.tx_n_methods to reg.Rt.n_methods - 1 do
    reg.Rt.methods.(uid) <- Rt.dummy_method
  done;
  reg.Rt.n_classes <- txn.tx_n_classes;
  reg.Rt.n_methods <- txn.tx_n_methods;
  Array.iteri
    (fun cid cs ->
      let c = reg.Rt.classes.(cid) in
      c.Rt.name <- cs.cs_name;
      c.Rt.valid <- cs.cs_valid)
    txn.tx_classes;
  Array.iteri
    (fun uid ms ->
      let m = reg.Rt.methods.(uid) in
      m.Rt.bytecode <- ms.ms_bytecode;
      m.Rt.max_locals <- ms.ms_max_locals;
      m.Rt.base_code <- ms.ms_base;
      m.Rt.opt_code <- ms.ms_opt;
      m.Rt.invocations <- ms.ms_invocations;
      m.Rt.m_valid <- ms.ms_valid)
    txn.tx_methods;
  Hashtbl.reset reg.Rt.by_name;
  Hashtbl.iter (Hashtbl.replace reg.Rt.by_name) txn.tx_by_name;
  reg.Rt.epoch <- txn.tx_epoch

let restore_statics (vm : State.t) txn =
  (* the snapshot rode through every GC as an extra root, so these are
     current addresses *)
  Array.blit txn.tx_jtoc 0 vm.State.jtoc 0 txn.tx_jtoc_n;
  for slot = txn.tx_jtoc_n to vm.State.jtoc_n - 1 do
    vm.State.jtoc.(slot) <- 0
  done;
  vm.State.jtoc_n <- txn.tx_jtoc_n

(* Undo the transforming collection: redirect every reference that landed
   on a new-layout object back to its pristine old copy.  [update_log]
   must hold current addresses (it was an extra root until the caller
   unregistered it; no collection may run in between). *)
let rollback_heap (vm : State.t) (update_log : int array) =
  if Array.length update_log > 0 then begin
    let redirect = Hashtbl.create (max 16 (Array.length update_log)) in
    for i = 0 to (Array.length update_log / 2) - 1 do
      let old_copy = Value.to_ref update_log.(2 * i)
      and new_obj = Value.to_ref update_log.((2 * i) + 1) in
      Hashtbl.replace redirect new_obj old_copy
    done;
    ignore (Gc.collect ~redirect vm)
  end

let rollback ?(update_log = [||]) (vm : State.t) txn =
  restore_metadata vm txn;
  restore_statics vm txn;
  release vm txn;
  rollback_heap vm update_log

(* Post-rollback audit: is the metadata bit-for-bit the snapshot again?
   The chaos bench reports this as its "0 half-installed class tables"
   criterion. *)
let audit (vm : State.t) txn : (unit, string) result =
  let reg = vm.State.reg in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if reg.Rt.n_classes <> txn.tx_n_classes then
    err "class table: %d classes, expected %d" reg.Rt.n_classes
      txn.tx_n_classes
  else if reg.Rt.n_methods <> txn.tx_n_methods then
    err "method table: %d methods, expected %d" reg.Rt.n_methods
      txn.tx_n_methods
  else if reg.Rt.epoch <> txn.tx_epoch then
    err "epoch %d, expected %d" reg.Rt.epoch txn.tx_epoch
  else if vm.State.jtoc_n <> txn.tx_jtoc_n then
    err "jtoc: %d slots, expected %d" vm.State.jtoc_n txn.tx_jtoc_n
  else begin
    let bad = ref None in
    Array.iteri
      (fun cid cs ->
        if !bad = None then begin
          let c = reg.Rt.classes.(cid) in
          if not (String.equal c.Rt.name cs.cs_name) then
            bad :=
              Some
                (Printf.sprintf "class %d named %s, expected %s" cid c.Rt.name
                   cs.cs_name)
          else if c.Rt.valid <> cs.cs_valid then
            bad := Some (Printf.sprintf "class %s validity flipped" c.Rt.name)
        end)
      txn.tx_classes;
    Array.iteri
      (fun uid ms ->
        if !bad = None then begin
          let m = reg.Rt.methods.(uid) in
          if m.Rt.bytecode != ms.ms_bytecode then
            bad := Some (Printf.sprintf "method %d bytecode differs" uid)
          else if m.Rt.m_valid <> ms.ms_valid then
            bad := Some (Printf.sprintf "method %d validity flipped" uid)
        end)
      txn.tx_methods;
    if !bad = None && Hashtbl.length reg.Rt.by_name <> Hashtbl.length txn.tx_by_name
    then bad := Some "name table size differs";
    if !bad = None then
      Hashtbl.iter
        (fun name cid ->
          if !bad = None && Hashtbl.find_opt reg.Rt.by_name name <> Some cid
          then bad := Some (Printf.sprintf "name table entry %s differs" name))
        txn.tx_by_name;
    match !bad with None -> Ok () | Some why -> Error why
  end
