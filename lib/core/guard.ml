(* The post-commit guard window: an error-budget watchdog over a freshly
   committed update.

   Admission control, the transformer sandbox and the update transaction
   (PRs 3-4) end their safety story at the commit point; an update that
   passes all of them can still be *semantically* wrong and only show it
   under live traffic.  After a guarded commit the VM keeps the update
   log alive ([Txn.commit_retaining]) and watches, for a bounded number
   of scheduler rounds, three signals against pre-update baselines:

   - trap rate: interpreter traps attributed to the new code epoch
     ([State.traps_at_epoch] — the world is stopped while an update
     installs code, so raise-time epoch equals code epoch);
   - app-level errors: server responses the VM's response classifier
     rejects (the 5xx signal), attributed the same way;
   - health probes: a built-in loopback prober (the sidecar pattern from
     [Fleet.Health]) and/or failures fed in by an orchestrator;
   - p99 latency: the request-latency histogram's windowed quantile
     ([Metrics.since] a snapshot taken when the window opened) against
     the pre-update p99 from the same histogram.

   Tripping any budget yields a [verdict]; the driver ([Jvolve]) then
   applies the inverse update through the normal pipeline, replaying the
   retained log ([Updater.apply ~replay]).  This module owns only the
   watching — it deliberately does not depend on [Jvolve] or [Updater].

   Fault points, for driving every trip deterministically in tests and
   benches: [guard.trap] (synthetic new-epoch trap), [guard.probe]
   (synthetic probe failure), [guard.latency] (condemn the latency
   comparison), [guard.trip] (trip immediately).  [guard.revert] lives in
   the updater, on the revert path itself. *)

module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Simnet = Jv_simnet.Simnet
module Obs = Jv_obs.Obs
module Metrics = Jv_obs.Metrics
module Faults = Jv_faults.Faults

(* --- the error budget --------------------------------------------------- *)

type budget = {
  b_rounds : int; (* window length in scheduler rounds *)
  b_max_traps : int; (* new-epoch traps tolerated (strictly more trips) *)
  b_max_app_errors : int; (* classifier-rejected responses tolerated *)
  b_max_probe_failures : int;
  b_latency_factor : float; (* window p99 may exceed baseline by this *)
  b_min_latency_samples : int; (* don't judge p99 on thin traffic *)
}

let default_budget =
  {
    b_rounds = 200;
    b_max_traps = 0;
    b_max_app_errors = 2;
    b_max_probe_failures = 2;
    b_latency_factor = 3.0;
    b_min_latency_samples = 32;
  }

let budget_to_string b =
  Printf.sprintf "rounds=%d,traps=%d,errors=%d,probes=%d,latency=%g,samples=%d"
    b.b_rounds b.b_max_traps b.b_max_app_errors b.b_max_probe_failures
    b.b_latency_factor b.b_min_latency_samples

(* "rounds=200,traps=0,errors=2,probes=2,latency=3,samples=32" — any
   subset of keys, the rest keep their defaults. *)
let budget_of_string s : (budget, string) result =
  let parse_one acc kv =
    match String.split_on_char '=' (String.trim kv) with
    | [ k; v ] -> (
        let int () =
          match int_of_string_opt v with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "bad value %S for %s" v k)
        in
        match k with
        | "rounds" -> Result.map (fun n -> { acc with b_rounds = n }) (int ())
        | "traps" -> Result.map (fun n -> { acc with b_max_traps = n }) (int ())
        | "errors" ->
            Result.map (fun n -> { acc with b_max_app_errors = n }) (int ())
        | "probes" ->
            Result.map (fun n -> { acc with b_max_probe_failures = n }) (int ())
        | "samples" ->
            Result.map
              (fun n -> { acc with b_min_latency_samples = n })
              (int ())
        | "latency" -> (
            match float_of_string_opt v with
            | Some f when f > 0.0 -> Ok { acc with b_latency_factor = f }
            | _ -> Error (Printf.sprintf "bad value %S for latency" v))
        | _ -> Error (Printf.sprintf "unknown budget key %S" k))
    | _ -> Error (Printf.sprintf "expected key=value, got %S" kv)
  in
  if String.trim s = "" then Ok default_budget
  else
    List.fold_left
      (fun acc kv -> Result.bind acc (fun b -> parse_one b kv))
      (Ok default_budget)
      (String.split_on_char ',' s)

(* --- configuration ------------------------------------------------------ *)

(* The built-in loopback prober: every [pc_every] rounds connect to the
   app's own port, send the health line, and expect a line passing
   [pc_ok] within [pc_deadline] rounds (banner lines are skipped, as in
   [Fleet.Health]). *)
type probe_config = {
  pc_port : int;
  pc_line : string;
  pc_ok : string -> bool;
  pc_every : int;
  pc_deadline : int;
}

let probe_config ?(every = 10) ?(deadline = 20) ~port ~line ~ok () =
  { pc_port = port; pc_line = line; pc_ok = ok; pc_every = every;
    pc_deadline = deadline }

type config = {
  c_budget : budget;
  c_probe : probe_config option;
  c_latency_metric : string; (* histogram name in the VM's sink *)
}

let default_latency_metric = "app.request_rounds"

let config ?(budget = default_budget) ?probe
    ?(latency_metric = default_latency_metric) () =
  { c_budget = budget; c_probe = probe; c_latency_metric = latency_metric }

(* --- verdicts ----------------------------------------------------------- *)

type signal = S_traps | S_app_errors | S_probes | S_latency | S_injected

let signal_to_string = function
  | S_traps -> "trap-rate"
  | S_app_errors -> "app-errors"
  | S_probes -> "probe-failures"
  | S_latency -> "latency"
  | S_injected -> "injected"

type verdict = {
  v_signal : signal;
  v_detail : string;
  v_round : int; (* window round at which the budget tripped *)
  v_traps : int; (* new-epoch traps observed (incl. synthetic) *)
  v_app_errors : int;
  v_probe_failures : int;
  v_p99 : float; (* window p99 (latency-metric units) *)
  v_baseline_p99 : float;
  mutable v_revert_ms : float; (* filled in once the revert resolves *)
}

let verdict_to_string v =
  Printf.sprintf
    "guard tripped on %s at window round %d (%s; traps %d, app errors %d, \
     probe failures %d, p99 %.1f vs baseline %.1f)"
    (signal_to_string v.v_signal)
    v.v_round v.v_detail v.v_traps v.v_app_errors v.v_probe_failures v.v_p99
    v.v_baseline_p99

(* --- the open window ---------------------------------------------------- *)

type t = {
  g_cfg : config;
  g_epoch : int; (* the new code epoch under guard *)
  g_opened_at : int; (* tick *)
  g_baseline : Metrics.snap option; (* latency histogram at open *)
  g_baseline_p99 : float; (* pre-update p99 from that histogram *)
  mutable g_injected_traps : int; (* guard.trap synthetic signal *)
  mutable g_probe_failures : int;
  mutable g_probe_inflight : (int * int) option; (* conn id, sent tick *)
  mutable g_last_probe_at : int;
  mutable g_done : bool;
}

let open_window (cfg : config) (vm : State.t) : t =
  let baseline, baseline_p99 =
    match Obs.find_histogram vm.State.obs cfg.c_latency_metric with
    | Some h -> (Some (Metrics.snapshot h), Metrics.quantile h 0.99)
    | None -> (None, 0.0)
  in
  Obs.incr vm.State.obs "core.guard.windows";
  Obs.emit vm.State.obs ~scope:"core.guard" "guard.opened"
    [
      ("epoch", Obs.Int vm.State.reg.Rt.epoch);
      ("rounds", Obs.Int cfg.c_budget.b_rounds);
      ("baseline_p99", Obs.Float baseline_p99);
      ( "retained_pairs",
        Obs.Int
          (match vm.State.guard_retained with
          | Some log -> Array.length log / 2
          | None -> 0) );
    ];
  {
    g_cfg = cfg;
    g_epoch = vm.State.reg.Rt.epoch;
    g_opened_at = vm.State.ticks;
    g_baseline = baseline;
    g_baseline_p99 = baseline_p99;
    g_injected_traps = 0;
    g_probe_failures = 0;
    g_probe_inflight = None;
    g_last_probe_at = vm.State.ticks;
    g_done = false;
  }

let round_of vm g = vm.State.ticks - g.g_opened_at

(* An orchestrator (or test harness) feeding in probe failures it
   observed out-of-band. *)
let note_probe_failure g =
  g.g_probe_failures <- g.g_probe_failures + 1

let close_probe vm g =
  match g.g_probe_inflight with
  | None -> ()
  | Some (cid, _) ->
      Simnet.client_close vm.State.net ~conn_id:cid;
      Simnet.reap vm.State.net ~conn_id:cid;
      g.g_probe_inflight <- None

let step_probe vm g =
  match g.g_cfg.c_probe with
  | None -> ()
  | Some pc -> (
      let now = vm.State.ticks in
      match g.g_probe_inflight with
      | Some (cid, sent) ->
          let rec drain () =
            match Simnet.client_recv vm.State.net ~conn_id:cid with
            | `Line resp when pc.pc_ok resp -> close_probe vm g
            | `Line _ -> drain () (* banner / sick response: keep waiting *)
            | `Eof ->
                g.g_probe_failures <- g.g_probe_failures + 1;
                close_probe vm g
            | `Wait ->
                if now - sent > pc.pc_deadline then begin
                  g.g_probe_failures <- g.g_probe_failures + 1;
                  close_probe vm g
                end
          in
          drain ()
      | None ->
          if now - g.g_last_probe_at >= pc.pc_every then begin
            g.g_last_probe_at <- now;
            match Simnet.connect vm.State.net ~port:pc.pc_port with
            | None -> g.g_probe_failures <- g.g_probe_failures + 1
            | Some cid ->
                Simnet.client_send vm.State.net ~conn_id:cid pc.pc_line;
                g.g_probe_inflight <- Some (cid, now)
          end)

(* Shut the window without a verdict (an external driver — the fleet
   orchestrator — is taking over, e.g. to force a coordinated revert). *)
let cancel vm g =
  g.g_done <- true;
  close_probe vm g

(* Window-scoped latency: observations since the open-time snapshot. *)
let window_latency vm g : float * int =
  match (Obs.find_histogram vm.State.obs g.g_cfg.c_latency_metric, g.g_baseline)
  with
  | Some h, Some snap ->
      let d = Metrics.since h snap in
      (Metrics.quantile d 0.99, Metrics.count d)
  | Some h, None -> (Metrics.quantile h 0.99, Metrics.count h)
  | None, _ -> (0.0, 0)

let tick (vm : State.t) (g : t) : [ `Watching | `Trip of verdict | `Close ] =
  if g.g_done then `Close
  else begin
    let b = g.g_cfg.c_budget in
    (* deterministic trip drivers *)
    (match Faults.check vm.State.faults "guard.trap" with
    | Some _ -> g.g_injected_traps <- g.g_injected_traps + 1
    | None -> ());
    (match Faults.check vm.State.faults "guard.probe" with
    | Some _ -> g.g_probe_failures <- g.g_probe_failures + 1
    | None -> ());
    let injected_latency =
      Faults.check vm.State.faults "guard.latency" <> None
    in
    let forced = Faults.check vm.State.faults "guard.trip" <> None in
    step_probe vm g;
    let traps = State.traps_at_epoch vm g.g_epoch + g.g_injected_traps in
    let app_errors = State.app_errors_at_epoch vm g.g_epoch in
    let p99, samples = window_latency vm g in
    let latency_over =
      g.g_baseline_p99 > 0.0
      && samples >= b.b_min_latency_samples
      && p99 > g.g_baseline_p99 *. b.b_latency_factor
    in
    let verdict signal detail =
      g.g_done <- true;
      close_probe vm g;
      let v =
        {
          v_signal = signal;
          v_detail = detail;
          v_round = round_of vm g;
          v_traps = traps;
          v_app_errors = app_errors;
          v_probe_failures = g.g_probe_failures;
          v_p99 = p99;
          v_baseline_p99 = g.g_baseline_p99;
          v_revert_ms = 0.0;
        }
      in
      Obs.incr vm.State.obs "core.guard.trips";
      Obs.emit vm.State.obs ~scope:"core.guard" "guard.tripped"
        [
          ("signal", Obs.Str (signal_to_string signal));
          ("detail", Obs.Str detail);
          ("round", Obs.Int v.v_round);
        ];
      `Trip v
    in
    if forced then verdict S_injected "guard.trip fault fired"
    else if injected_latency then
      verdict S_latency "guard.latency fault condemned the p99 comparison"
    else if traps > b.b_max_traps then
      verdict S_traps
        (Printf.sprintf "%d new-epoch trap(s), budget %d" traps b.b_max_traps)
    else if app_errors > b.b_max_app_errors then
      verdict S_app_errors
        (Printf.sprintf "%d app error(s), budget %d" app_errors
           b.b_max_app_errors)
    else if g.g_probe_failures > b.b_max_probe_failures then
      verdict S_probes
        (Printf.sprintf "%d probe failure(s), budget %d" g.g_probe_failures
           b.b_max_probe_failures)
    else if latency_over then
      verdict S_latency
        (Printf.sprintf "window p99 %.1f > %.1fx baseline %.1f" p99
           b.b_latency_factor g.g_baseline_p99)
    else if round_of vm g >= b.b_rounds then begin
      g.g_done <- true;
      close_probe vm g;
      Obs.incr vm.State.obs "core.guard.closed_clean";
      Obs.emit vm.State.obs ~scope:"core.guard" "guard.closed"
        [
          ("rounds", Obs.Int (round_of vm g));
          ("traps", Obs.Int traps);
          ("app_errors", Obs.Int app_errors);
          ("probe_failures", Obs.Int g.g_probe_failures);
        ];
      `Close
    end
    else `Watching
  end
