(** Applying an update at a DSU safe point (paper §3.3-3.4): metadata
    installation, code invalidation, OSR, and the transforming collection
    with its update log. *)

module State = Jv_vm.State
module Rt = Jv_vm.Rt

exception Update_error of string

(** Where the pause went (the split reported in Table 1). *)
type timings = {
  u_load_ms : float;  (** class installation + body swaps + OSR *)
  u_gc_ms : float;  (** the transforming full-heap collection *)
  u_transform_ms : float;  (** running class and object transformers *)
  u_verify_ms : float;  (** post-transform heap integrity walk (0 if off) *)
  u_total_ms : float;
  u_osr : int;  (** frames replaced on stack *)
  u_invalidated_methods : int;  (** compiled bodies thrown away *)
  u_transformed_objects : int;
  u_copied_objects : int;
}

(** Which phase of the update an abort happened in. *)
type phase =
  | P_admit  (** rejected by admission control; the VM never paused *)
  | P_sync  (** never reached [apply]: safe-point timeout, prepare error *)
  | P_load  (** metadata installation, clinits, transformer install *)
  | P_gc  (** the transforming collection *)
  | P_transform  (** class and object transformers *)
  | P_verify  (** the post-transform heap integrity walk *)
  | P_osr  (** on-stack replacement of parked frames *)
  | P_guard
      (** the post-commit guard window: the error budget tripped and the
          automatic inverse-update revert itself failed (the abort wraps
          the revert's own phase; the VM stays on the new version,
          rolled back from the revert attempt) *)

val phase_to_string : phase -> string

(** Where a transformer was executing when it failed. *)
type transformer_site = {
  ts_method : string;  (** qualified transformer method *)
  ts_class : string;  (** class being transformed *)
  ts_object : int;  (** heap address; 0 for class transformers *)
}

val site_desc : transformer_site -> string

(** What, structurally, sank the update (the [a_reason] string renders
    it for humans; this is for policy). *)
type cause =
  | C_generic
  | C_injected of string  (** fault-plan point that fired *)
  | C_transformer_trap of transformer_site * string
  | C_fuel_exhausted of transformer_site * int  (** steps charged *)
  | C_sandbox_violation of transformer_site * string
  | C_heap_verify of string list  (** verifier issues *)
  | C_admission of string list  (** rejecting verdicts *)

val cause_to_string : cause -> string

(** A typed abort: the update did not apply, and — when [a_rolled_back]
    holds — the transaction restored the VM to the pre-update state and
    the post-rollback metadata audit (plus heap verification, when
    enabled) passed. *)
type abort = {
  a_phase : phase;
  a_reason : string;
  a_cause : cause;
  a_rolled_back : bool;
  a_rollback_ms : float;
}

val sync_abort : string -> abort
(** An abort before [apply] ever ran (nothing to roll back). *)

val admission_abort : string list -> abort
(** An update rejected by admission control before the VM paused. *)

val abort_to_string : abort -> string

exception Update_failure of cause * string
(** A failure inside [apply] that carries a typed cause. *)

(** The individual steps, exposed for the baseline updaters (hotswap and
    lazy indirection reuse the metadata phases without the GC pass): *)

val rename_old_classes : State.t -> Spec.t -> (string * Rt.rt_class) list
(** Rename superseded classes to their [v<tag>_] stubs, strip their
    methods, invalidate their compiled code.  Returns (original name,
    runtime class) pairs. *)

val install_new_classes : State.t -> Spec.t -> (string * Rt.rt_class) list
(** Install the new versions of updated classes and all added classes. *)

val carry_over_statics :
  State.t ->
  Spec.t ->
  (string * Rt.rt_class) list ->
  (string * Rt.rt_class) list ->
  unit
(** Unchanged (same name, mapped-same type) static fields keep their
    values; superseded slots are cleared. *)

val swap_method_bodies : State.t -> Spec.t -> unit
(** Method-body updates: replace bytecode in place, invalidate compiled
    code, reset profiles (paper §3.3). *)

val invalidate_stale_code : State.t -> Safepoint.restricted -> int
(** Throw away compiled code with stale offsets (category 2) and opt code
    that inlined any restricted method.  Returns the invalidation count
    and bumps the resolution epoch. *)

val apply :
  ?retain_log:bool ->
  ?replay:int array ->
  State.t ->
  Transformers.prepared ->
  restricted:Safepoint.restricted ->
  osr_frames:State.frame list ->
  (timings, abort) result
(** The full update, to be called with all threads stopped at a DSU safe
    point; [osr_frames] are the category-(2) frames {!Safepoint.check}
    found.  Runs inside a {!Txn}: any failure — transformer trap, cyclic
    transformer dependency (paper §3.4), or an injected fault at the
    [updater.load] / [updater.gc] / [updater.transform] / [updater.osr]
    points — rolls the VM back to the pre-update snapshot and returns
    [Error abort].  A [Faults.Killed] injection additionally marks the VM
    killed ([State.killed]) after the rollback.

    [retain_log] commits through {!Txn.commit_retaining}: the update log
    stays GC-rooted and published as [State.guard_retained] until the
    guard window closes ({!Txn.release_retained}).  [replay] marks this
    application as a guard revert: after the (inverse) transformers run,
    the fields the forward update dropped are restored from the retained
    forward log, and the [guard.revert] fault point is consulted first.

    Transformers run sandboxed: each invocation gets a fresh fuel budget
    ([State.config.transformer_fuel]) and object transformers may only
    write the objects under transformation plus their own fresh
    allocations.  The [transformer.loop] / [transformer.throw] /
    [transformer.badwrite] fault points drive each failure mode through
    the corresponding enforcement path.  With
    [State.config.verify_heap] set, a full {!Jv_vm.Heapverify} walk runs
    after the transform phase ([P_verify]; failure aborts) and again
    after any rollback (failure clears [a_rolled_back]). *)
