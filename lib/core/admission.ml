(* Admission control: lint a prepared update before the VM pauses.

   Everything here is static — it looks only at the spec, the compiled
   transformer bundle, and the post-update class world, never at the
   running heap — so a rejection costs a few milliseconds of UPT time
   instead of a stop-the-world pause followed by a rollback.  The
   checks mirror the ways an update can sink later:

   - the spec must be inside Jvolve's model at all (no hierarchy
     permutations);
   - the spec's recorded diff must agree with a recomputation from its
     own old/new programs: a stale closure or indirect-update set means
     the safe-point restriction and the transforming collection would
     disagree about which classes change;
   - the new program must verify strictly on its own;
   - the stub set must match the layout closure, and no stub name may
     collide with a real class of either version;
   - the transformer bytecode must verify (Transformer mode) against
     the *post-update* world: new program + stubs + transformer;
   - every closure class needs its jvolveClass/jvolveObject pair;
   - same-name instance fields whose types differ between versions are
     flagged: the default copier skips them silently, which is the
     classic silent-data-loss update bug (Warn; strict mode rejects);
   - blacklist entries that resolve to nothing are typos (Warn);
   - the con-freeness proof set must certify against this very bundle
     (every proof re-validates and the set is closed under the call
     graph), and a blacklist entry shadowing a proof is surfaced so the
     operator sees the pin winning instead of silently losing it.

   Warn verdicts admit the update unless strict mode promotes them. *)

module CF = Jv_classfile

type severity = Reject | Warn

type verdict = {
  v_severity : severity;
  v_check : string; (* which check produced this *)
  v_detail : string;
}

type report = {
  a_verdicts : verdict list;
  a_checks : int; (* checks run, for the report line *)
  a_ms : float;
}

let verdict_to_string v =
  Printf.sprintf "%s[%s] %s"
    (match v.v_severity with Reject -> "reject" | Warn -> "warn")
    v.v_check v.v_detail

(* The reasons that sink the update: Reject always, Warn under strict. *)
let rejections ~strict r =
  List.filter_map
    (fun v ->
      match v.v_severity with
      | Reject -> Some (verdict_to_string v)
      | Warn when strict -> Some (verdict_to_string v)
      | Warn -> None)
    r.a_verdicts

let ok ~strict r = rejections ~strict r = []

let same_names a b =
  List.sort compare a = List.sort compare b

let mref_names l = List.map Diff.mref_to_string l

let review ?(confree = true) (p : Transformers.prepared) : report =
  let t0 = Unix.gettimeofday () in
  let spec = p.Transformers.p_spec in
  let verdicts = ref [] in
  let checks = ref 0 in
  let flag severity check fmt =
    Printf.ksprintf
      (fun detail ->
        verdicts :=
          { v_severity = severity; v_check = check; v_detail = detail }
          :: !verdicts)
      fmt
  in
  let check name f =
    incr checks;
    f name
  in
  (* 1: inside the update model at all *)
  check "supported" (fun c ->
      match Spec.unsupported_reason spec with
      | Some r -> flag Reject c "%s" r
      | None -> ());
  (* 2: the recorded diff agrees with a recomputation — the safe-point
     restriction, the GC plan and the transformer set are all derived
     from it, so a stale diff desynchronizes the whole pipeline *)
  check "diff" (fun c ->
      let d = spec.Spec.diff in
      let d' =
        Diff.compute ~old_program:spec.Spec.old_program
          ~new_program:spec.Spec.new_program
      in
      let pair what got want =
        if not (same_names got want) then
          flag Reject c "recorded %s {%s} but the programs diff to {%s}" what
            (String.concat ", " got) (String.concat ", " want)
      in
      pair "added classes" d.Diff.added_classes d'.Diff.added_classes;
      pair "deleted classes" d.Diff.deleted_classes d'.Diff.deleted_classes;
      pair "layout closure" d.Diff.class_updates_closure
        d'.Diff.class_updates_closure;
      pair "body updates"
        (mref_names d.Diff.body_updates)
        (mref_names d'.Diff.body_updates);
      pair "indirect methods"
        (mref_names d.Diff.indirect_methods)
        (mref_names d'.Diff.indirect_methods));
  (* 3: the new program verifies strictly on its own *)
  check "new-program" (fun c ->
      List.iter
        (fun e -> flag Reject c "%s" e)
        (CF.Verifier.verify_program
           (CF.Builtins.program_with spec.Spec.new_program)));
  (* 4: stubs cover exactly the layout closure + deletions, and collide
     with nothing *)
  check "stubs" (fun c ->
      let want =
        List.map
          (Spec.old_class_name ~tag:spec.Spec.version_tag)
          (spec.Spec.diff.Diff.class_updates_closure
          @ spec.Spec.diff.Diff.deleted_classes)
        |> List.filter (fun stub ->
               (* classes present in the diff but absent from the old
                  program produce no stub *)
               List.exists
                 (fun (cl : CF.Cls.t) ->
                   Spec.old_class_name ~tag:spec.Spec.version_tag
                     cl.CF.Cls.c_name = stub)
                 spec.Spec.old_program)
      in
      let got =
        List.map (fun (s : CF.Cls.t) -> s.CF.Cls.c_name) p.Transformers.p_stubs
      in
      if not (same_names got want) then
        flag Reject c "stub set {%s} does not match the layout closure {%s}"
          (String.concat ", " got) (String.concat ", " want);
      List.iter
        (fun stub ->
          let collides prog =
            List.exists
              (fun (cl : CF.Cls.t) -> String.equal cl.CF.Cls.c_name stub)
              prog
          in
          if collides spec.Spec.old_program || collides spec.Spec.new_program
          then flag Reject c "stub %s collides with a program class" stub)
        got);
  (* 5: the transformer bytecode verifies against the post-update world *)
  check "transformer-verify" (fun c ->
      let world =
        spec.Spec.new_program @ p.Transformers.p_stubs
        @ [ p.Transformers.p_transformer ]
      in
      (* errors inside the new program were already reported by check 3;
         only surface the ones this bundle adds *)
      let base =
        CF.Verifier.verify_program
          (CF.Builtins.program_with spec.Spec.new_program)
      in
      CF.Verifier.verify_program ~mode:CF.Verifier.Transformer
        (CF.Builtins.program_with world)
      |> List.iter (fun e ->
             if not (List.mem e base) then flag Reject c "%s" e));
  (* 6: every layout-closure class has its transformer pair *)
  check "transformer-methods" (fun c ->
      let has name params =
        List.exists
          (fun (m : CF.Cls.meth) ->
            String.equal m.CF.Cls.md_name name
            && List.length m.CF.Cls.md_sig.CF.Types.params
               = List.length params
            && List.for_all2 CF.Types.equal_ty m.CF.Cls.md_sig.CF.Types.params
                 params)
          p.Transformers.p_transformer.CF.Cls.c_methods
      in
      List.iter
        (fun (name, params) ->
          if not (has name params) then
            flag Reject c "transformer class lacks %s(%s)" name
              (String.concat ", " (List.map CF.Types.to_string params)))
        (Transformers.transformer_method_sigs spec));
  (* 7: same-name fields that silently change type across the update *)
  check "field-map" (fun c ->
      let oldp = CF.Cls.program_of_list spec.Spec.old_program in
      let newp = CF.Cls.program_of_list spec.Spec.new_program in
      List.iter
        (fun cname ->
          match (CF.Cls.find_class oldp cname, CF.Cls.find_class newp cname)
          with
          | Some oc, Some nc ->
              let old_fields =
                List.map
                  (fun (f : CF.Cls.field) ->
                    ( f.CF.Cls.fd_name,
                      Transformers.map_old_ty spec f.CF.Cls.fd_ty ))
                  (Transformers.flattened_fields oldp oc)
              in
              List.iter
                (fun (f : CF.Cls.field) ->
                  match List.assoc_opt f.CF.Cls.fd_name old_fields with
                  | Some oty
                    when not (CF.Types.equal_ty oty f.CF.Cls.fd_ty) ->
                      flag Warn c
                        "%s.%s changes type %s -> %s: the default \
                         transformer drops its value"
                        cname f.CF.Cls.fd_name (CF.Types.to_string oty)
                        (CF.Types.to_string f.CF.Cls.fd_ty)
                  | _ -> ())
                (Transformers.flattened_fields newp nc)
          | _ -> ())
        spec.Spec.diff.Diff.class_updates_closure);
  (* 8: blacklist entries that resolve to nothing are typos *)
  check "blacklist" (fun c ->
      let oldp = CF.Cls.program_of_list spec.Spec.old_program in
      List.iter
        (fun (r : Diff.mref) ->
          let resolves =
            match CF.Cls.find_class oldp r.Diff.r_class with
            | None -> false
            | Some cl ->
                CF.Cls.find_method cl r.Diff.r_name r.Diff.r_sig <> None
          in
          if not resolves then
            flag Warn c "blacklisted %s does not resolve in the old program"
              (Diff.mref_to_string r))
        spec.Spec.blacklist);
  (* 9: the con-freeness proof set [Safepoint.compute] will subtract from
     the restricted set must be sound against this very bundle: every
     proof re-validates its recorded obligations and the proven set is
     closed under the call graph.  A blacklist entry naming a proven
     method is surfaced: the pin wins, the proof is shadowed. *)
  if confree then
    check "confree" (fun c ->
        let proofs = Confree.analyze spec in
        List.iter
          (fun e -> flag Reject c "%s" e)
          (Confree.audit proofs spec);
        List.iter
          (fun (r : Confree.result) ->
            flag Warn c
              "blacklist pins %s, overriding its %s proof (%s)"
              (Diff.mref_to_string r.Confree.cr_ref)
              (Confree.verdict_to_string r.Confree.cr_verdict)
              (Confree.reason_to_string r.Confree.cr_reason))
          (Confree.shadowed_by_blacklist proofs spec));
  {
    a_verdicts = List.rev !verdicts;
    a_checks = !checks;
    a_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
  }
