(** The Jvolve facade: request a dynamic update on a running VM and let
    the scheduler apply it at the next DSU safe point (paper Figure 1).

    {[
      let spec = Jvolve_core.Spec.make ~version_tag:"131"
                   ~old_program ~new_program () in
      let handle = Jvolve_core.Jvolve.update_now vm spec in
      match handle.h_outcome with
      | Applied timings -> ...
      | Reverted verdict -> ...
      | Aborted reason -> ...
      | Pending -> ...
    ]}

    With [?guard] set, a successful apply is a {e guarded commit}: the
    update log stays alive and a {!Guard} window watches the new code
    epoch for a bounded number of rounds.  Tripping the error budget
    automatically applies the inverse update ([Spec.inverse], replaying
    the retained log) and flips the handle to [Reverted]. *)

module State = Jv_vm.State

type outcome =
  | Pending
  | Applied of Updater.timings
  | Reverted of Guard.verdict
      (** Applied, then the post-commit guard window's error budget
          tripped and the automatic inverse update restored the old
          version ([v_revert_ms] holds the revert's pause). *)
  | Aborted of Updater.abort
      (** A typed abort: [a_phase = P_sync] for pre-apply failures (the
          paper's 15 s timeout, here a round budget); later install
          phases mean the transactional installation failed and rolled
          the VM back ([a_rolled_back]); [P_guard] means the guard
          tripped but the revert itself failed and rolled forward — the
          VM stays on the {e new} version. *)

type handle = {
  h_prepared : Transformers.prepared;
  h_restricted : Safepoint.restricted;
  h_requested_at : int;  (** tick at request time *)
  h_deadline : int;  (** abort tick *)
  h_timeout_rounds : int;
  h_use_osr : bool;  (** ablation: lift category-2 frames by OSR *)
  h_use_barriers : bool;  (** ablation: install return barriers *)
  h_guard : Guard.config option;  (** guarded commit, if set *)
  h_revert_of : (handle * Guard.verdict) option;
      (** this handle is the guard revert of another update *)
  mutable h_outcome : outcome;
  mutable h_attempts : int;
  mutable h_barriers_installed : int;
  mutable h_blockers : string;  (** last observed blocking methods *)
  mutable h_stuck : Safepoint.blocker list;
      (** the threads/frames that last blocked the safe point — a
          timeout abort names the first of these *)
  mutable h_sync_ms : float;
      (** stack-scan time of the successful attempt (paper: "less than a
          millisecond") *)
  mutable h_guard_state : Guard.t option;  (** open window, if any *)
  mutable h_guard_busy : bool;  (** window open or revert in flight *)
}

exception Busy
(** Raised when another update is already pending on this VM. *)

val default_timeout_rounds : int

val request :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  ?guard:Guard.config ->
  State.t ->
  Transformers.prepared ->
  handle
(** Signal the VM: the scheduler will attempt the update at every safe
    point (and immediately whenever a return barrier fires) until it
    applies or times out.

    {!Admission.review} runs first unless [admit] is [false]; a rejected
    update resolves immediately as [Aborted] in phase [P_admit] and the
    VM never pauses.  [admit_strict] promotes [Warn] verdicts (e.g. a
    field silently changing type) to rejections.

    [guard] makes the commit guarded: see {!Guard} and
    {!run_to_guard_close}. *)

val request_spec :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  ?guard:Guard.config ->
  State.t ->
  Spec.t ->
  handle
(** {!Transformers.prepare} + {!request}. *)

val update_now :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  ?guard:Guard.config ->
  ?max_rounds:int ->
  State.t ->
  Spec.t ->
  handle
(** Convenience for tests and benchmarks: request, then drive the
    scheduler until the update resolves (or [max_rounds] elapse).  Note
    this returns at the {e commit}: with [guard] set the window is still
    open — follow with {!run_to_guard_close}. *)

val force_trip : State.t -> handle -> reason:string -> unit
(** Trip an open guard window from outside the budget (a fleet-wide
    coordinated revert): the in-VM revert replays the retained log
    exactly as a budget-driven trip would.  No-op if the window is not
    open. *)

val guard_active : handle -> bool
(** The guard window is open, or a tripped window's revert is still in
    flight. *)

val run_to_guard_close : ?max_rounds:int -> State.t -> handle -> outcome
(** Drive the scheduler until the whole guard cycle resolves: apply (or
    abort), then clean close / trip-and-revert.  Returns the terminal
    outcome ([Applied] with the retained log released, [Reverted], or
    [Aborted]). *)

val run_ladder :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  ?guard:Guard.config ->
  ?max_rounds_each:int ->
  State.t ->
  Spec.t list ->
  (handle list, handle list * handle) result
(** Apply a version ladder hop by hop: each spec goes through the full
    {!update_now} pipeline (admission, transaction, optional guard — the
    window is driven to a clean close before the next hop starts).  Used
    by fleet supervisors to catch a restarted baseline VM up to its
    peers.  [Ok handles] when every hop applied; [Error (applied, h)]
    stops at the first hop that aborted or reverted, with the handles
    that did apply. *)

val outcome_to_string : outcome -> string

(** {1 Attempt outcomes (fleet orchestration)} *)

val resolved : handle -> bool
(** Applied, reverted or aborted (no longer pending). *)

val succeeded : handle -> bool
(** [Applied] — a reverted update does not count as a success. *)

(** A plain-data snapshot of one update attempt, for orchestrators that
    aggregate outcomes across a fleet of VMs. *)
type attempt_report = {
  ar_outcome : outcome;
  ar_attempts : int;
  ar_barriers_installed : int;
  ar_sync_ms : float;
  ar_blockers : string;
  ar_stuck : Safepoint.blocker list;
  ar_waited_rounds : int;  (** ticks from request to resolution (or so far) *)
}

val report : State.t -> handle -> attempt_report
