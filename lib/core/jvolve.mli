(** The Jvolve facade: request a dynamic update on a running VM and let
    the scheduler apply it at the next DSU safe point (paper Figure 1).

    {[
      let spec = Jvolve_core.Spec.make ~version_tag:"131"
                   ~old_program ~new_program () in
      let handle = Jvolve_core.Jvolve.update_now vm spec in
      match handle.h_outcome with
      | Applied timings -> ...
      | Aborted reason -> ...
      | Pending -> ...
    ]} *)

module State = Jv_vm.State

type outcome =
  | Pending
  | Applied of Updater.timings
  | Aborted of Updater.abort
      (** A typed abort: [a_phase = P_sync] for pre-apply failures (the
          paper's 15 s timeout, here a round budget); any later phase
          means the transactional installation failed and rolled the VM
          back ([a_rolled_back]). *)

type handle = {
  h_prepared : Transformers.prepared;
  h_restricted : Safepoint.restricted;
  h_requested_at : int;  (** tick at request time *)
  h_deadline : int;  (** abort tick *)
  h_use_osr : bool;  (** ablation: lift category-2 frames by OSR *)
  h_use_barriers : bool;  (** ablation: install return barriers *)
  mutable h_outcome : outcome;
  mutable h_attempts : int;
  mutable h_barriers_installed : int;
  mutable h_blockers : string;  (** last observed blocking methods *)
  mutable h_sync_ms : float;
      (** stack-scan time of the successful attempt (paper: "less than a
          millisecond") *)
}

exception Busy
(** Raised when another update is already pending on this VM. *)

val default_timeout_rounds : int

val request :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  State.t ->
  Transformers.prepared ->
  handle
(** Signal the VM: the scheduler will attempt the update at every safe
    point (and immediately whenever a return barrier fires) until it
    applies or times out.

    {!Admission.review} runs first unless [admit] is [false]; a rejected
    update resolves immediately as [Aborted] in phase [P_admit] and the
    VM never pauses.  [admit_strict] promotes [Warn] verdicts (e.g. a
    field silently changing type) to rejections. *)

val request_spec :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  State.t ->
  Spec.t ->
  handle
(** {!Transformers.prepare} + {!request}. *)

val update_now :
  ?timeout_rounds:int ->
  ?use_osr:bool ->
  ?use_barriers:bool ->
  ?admit:bool ->
  ?admit_strict:bool ->
  ?max_rounds:int ->
  State.t ->
  Spec.t ->
  handle
(** Convenience for tests and benchmarks: request, then drive the
    scheduler until the update resolves (or [max_rounds] elapse). *)

val outcome_to_string : outcome -> string

(** {1 Attempt outcomes (fleet orchestration)} *)

val resolved : handle -> bool
(** Applied or aborted (no longer pending). *)

val succeeded : handle -> bool

(** A plain-data snapshot of one update attempt, for orchestrators that
    aggregate outcomes across a fleet of VMs. *)
type attempt_report = {
  ar_outcome : outcome;
  ar_attempts : int;
  ar_barriers_installed : int;
  ar_sync_ms : float;
  ar_blockers : string;
  ar_waited_rounds : int;  (** ticks from request to resolution (or so far) *)
}

val report : State.t -> handle -> attempt_report
