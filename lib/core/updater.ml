(* Applying an update once a DSU safe point is reached (paper §3.3-3.4):

   1. rename superseded classes and strip their methods;
   2. install the new class versions (and brand-new classes), carrying
      over unchanged static fields;
   3. swap updated method bodies in place and invalidate all compiled code
      whose resolved offsets the update stales;
   4. OSR the base-compiled category-(2) frames against the new metadata;
   5. run a full-heap collection with the transform plan — every instance
      of an updated class is replaced by a zeroed new-layout object, with
      the old copy kept in the update log;
   6. run class transformers, then object transformers over the log;
   7. discard the transformer class and the log.

   All of this happens with application threads stopped at safe points; the
   log array is registered as a GC root so transformer-phase allocation
   (which may trigger a nested plain collection) stays safe. *)

module CF = Jv_classfile
module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Heap = Jv_vm.Heap
module Value = Jv_vm.Value
module Gc = Jv_vm.Gc
module Interp = Jv_vm.Interp
module Osr = Jv_vm.Osr
module Classloader = Jv_vm.Classloader
module Faults = Jv_faults.Faults

exception Update_error of string

let uerr fmt = Printf.ksprintf (fun s -> raise (Update_error s)) fmt

type timings = {
  u_load_ms : float; (* class installation + body swaps + OSR *)
  u_gc_ms : float;
  u_transform_ms : float;
  u_verify_ms : float; (* post-transform heap integrity walk (0 if off) *)
  u_total_ms : float;
  u_osr : int;
  u_invalidated_methods : int;
  u_transformed_objects : int;
  u_copied_objects : int;
}

(* --- typed aborts -------------------------------------------------------- *)

type phase =
  | P_admit (* rejected by admission control; the VM never paused *)
  | P_sync (* never reached [apply]: safe-point timeout, prepare error *)
  | P_load (* metadata installation, clinits, transformer install *)
  | P_gc (* the transforming collection *)
  | P_transform (* class and object transformers *)
  | P_verify (* the post-transform heap integrity walk *)
  | P_osr (* on-stack replacement of parked frames *)
  | P_guard (* the post-commit guard window: a failed automatic revert *)

let phase_to_string = function
  | P_admit -> "admit"
  | P_sync -> "sync"
  | P_load -> "load"
  | P_gc -> "gc"
  | P_transform -> "transform"
  | P_verify -> "verify"
  | P_osr -> "osr"
  | P_guard -> "guard"

(* Where a transformer was executing when it failed. *)
type transformer_site = {
  ts_method : string; (* qualified transformer method *)
  ts_class : string; (* class being transformed *)
  ts_object : int; (* heap address of the object; 0 for class transformers *)
}

let site_desc s =
  if s.ts_object = 0 then s.ts_class
  else Printf.sprintf "%s@%d" s.ts_class s.ts_object

type cause =
  | C_generic
  | C_injected of string (* fault-plan point that fired *)
  | C_transformer_trap of transformer_site * string
  | C_fuel_exhausted of transformer_site * int (* steps charged *)
  | C_sandbox_violation of transformer_site * string
  | C_heap_verify of string list (* verifier issues *)
  | C_admission of string list (* rejecting verdicts *)

let cause_to_string = function
  | C_generic -> "error"
  | C_injected pt -> "injected at " ^ pt
  | C_transformer_trap (s, msg) ->
      Printf.sprintf "transformer %s trapped on %s: %s" s.ts_method
        (site_desc s) msg
  | C_fuel_exhausted (s, steps) ->
      Printf.sprintf "transformer %s out of fuel (%d steps) on %s"
        s.ts_method steps (site_desc s)
  | C_sandbox_violation (s, msg) ->
      Printf.sprintf "transformer %s on %s: %s" s.ts_method (site_desc s) msg
  | C_heap_verify issues ->
      Printf.sprintf "heap verify: %d issue(s)" (List.length issues)
  | C_admission verdicts ->
      Printf.sprintf "admission: %d rejection(s)" (List.length verdicts)

type abort = {
  a_phase : phase;
  a_reason : string;
  a_cause : cause;
  a_rolled_back : bool;
      (* the transaction rolled back and the post-rollback audit (and
         heap verification, when enabled) passed: the VM is intact on
         the old version *)
  a_rollback_ms : float;
}

let sync_abort reason =
  { a_phase = P_sync; a_reason = reason; a_cause = C_generic;
    a_rolled_back = true; a_rollback_ms = 0.0 }

(* An update rejected before the VM paused: nothing was mutated, so the
   "transaction" is trivially intact. *)
let admission_abort reasons =
  {
    a_phase = P_admit;
    a_reason = "admission: " ^ String.concat "; " reasons;
    a_cause = C_admission reasons;
    a_rolled_back = true;
    a_rollback_ms = 0.0;
  }

let abort_to_string a =
  match a.a_phase with
  | P_sync | P_admit -> a.a_reason
  | _ ->
      Printf.sprintf "[%s] %s%s" (phase_to_string a.a_phase) a.a_reason
        (if a.a_rolled_back then " (rolled back)" else " (ROLLBACK FAILED)")

(* A transformer failure carrying its typed cause through the abort
   machinery (the bare [Update_error] string keeps serving everything
   that has no structure to preserve). *)
exception Update_failure of cause * string

let now () = Unix.gettimeofday ()

(* --- step helpers ------------------------------------------------------- *)

let rename_old_classes vm (spec : Spec.t) : (string * Rt.rt_class) list =
  let tag = spec.Spec.version_tag in
  List.filter_map
    (fun name ->
      match Rt.find_class vm.State.reg name with
      | None -> None
      | Some rc ->
          Hashtbl.remove vm.State.reg.Rt.by_name name;
          let stub_name = Spec.old_class_name ~tag name in
          rc.Rt.name <- stub_name;
          rc.Rt.valid <- false;
          Hashtbl.replace vm.State.reg.Rt.by_name stub_name rc.Rt.cid;
          Array.iter
            (fun (m : Rt.rt_method) ->
              m.Rt.m_valid <- false;
              m.Rt.base_code <- None;
              m.Rt.opt_code <- None)
            rc.Rt.methods;
          Some (name, rc))
    (spec.Spec.diff.Diff.class_updates_closure
    @ spec.Spec.diff.Diff.deleted_classes)

let install_new_classes vm (spec : Spec.t) : (string * Rt.rt_class) list =
  let wanted =
    spec.Spec.diff.Diff.class_updates_closure
    @ spec.Spec.diff.Diff.added_classes
  in
  let classfiles =
    List.filter
      (fun (c : CF.Cls.t) -> List.mem c.CF.Cls.c_name wanted)
      spec.Spec.new_program
  in
  Classloader.install vm ~replace:true classfiles
  |> List.map (fun (rc : Rt.rt_class) -> (rc.Rt.name, rc))

(* Unchanged statics keep their values across the update; everything else
   starts at its default and is the class transformer's job.  Superseded
   classes' static slots are cleared so their referents can be
   collected. *)
let carry_over_statics vm (spec : Spec.t)
    (olds : (string * Rt.rt_class) list) (news : (string * Rt.rt_class) list)
    =
  List.iter
    (fun (name, (old_rc : Rt.rt_class)) ->
      (match List.assoc_opt name news with
      | None -> () (* deleted class *)
      | Some new_rc ->
          Array.iter
            (fun (osi : Rt.static_info) ->
              let mapped_ty = Transformers.map_old_ty spec osi.Rt.si_ty in
              Array.iter
                (fun (nsi : Rt.static_info) ->
                  if
                    String.equal osi.Rt.si_name nsi.Rt.si_name
                    && CF.Types.equal_ty mapped_ty nsi.Rt.si_ty
                  then
                    State.jtoc_set vm nsi.Rt.si_slot
                      (State.jtoc_get vm osi.Rt.si_slot))
                new_rc.Rt.static_fields)
            old_rc.Rt.static_fields);
      (* clear the superseded slots *)
      Array.iter
        (fun (osi : Rt.static_info) -> State.jtoc_set vm osi.Rt.si_slot 0)
        old_rc.Rt.static_fields)
    olds

let swap_method_bodies vm (spec : Spec.t) =
  let newp = CF.Cls.program_of_list spec.Spec.new_program in
  List.iter
    (fun (r : Diff.mref) ->
      match Rt.find_class vm.State.reg r.Diff.r_class with
      | None -> uerr "body update: class %s not loaded" r.Diff.r_class
      | Some rc -> (
          let rm =
            Array.to_seq rc.Rt.methods
            |> Seq.find (fun (m : Rt.rt_method) ->
                   String.equal m.Rt.m_name r.Diff.r_name
                   && CF.Types.equal_msig m.Rt.m_sig r.Diff.r_sig)
          in
          match
            ( rm,
              Option.bind
                (CF.Cls.find_class newp r.Diff.r_class)
                (fun c -> CF.Cls.find_method c r.Diff.r_name r.Diff.r_sig) )
          with
          | Some rm, Some md ->
              rm.Rt.bytecode <- md.CF.Cls.md_code;
              rm.Rt.max_locals <- md.CF.Cls.md_max_locals;
              rm.Rt.base_code <- None;
              rm.Rt.opt_code <- None;
              (* body updates invalidate execution profiles (paper §3.3) *)
              rm.Rt.invocations <- 0
          | _ -> uerr "body update: cannot resolve %s" (Diff.mref_to_string r)))
    spec.Spec.diff.Diff.body_updates

(* Invalidate compiled code with stale offsets: category (2) methods, plus
   any opt code that inlined a method touched by the update. *)
let invalidate_stale_code vm (r : Safepoint.restricted) : int =
  let count = ref 0 in
  Rt.iter_methods vm.State.reg (fun (m : Rt.rt_method) ->
      let stale_direct = Safepoint.IntSet.mem m.Rt.uid r.Safepoint.stale in
      let stale_inline =
        match m.Rt.opt_code with
        | Some c ->
            List.exists
              (fun u ->
                Safepoint.IntSet.mem u r.Safepoint.stale
                || Safepoint.IntSet.mem u r.Safepoint.changed)
              c.Jv_vm.Machine.inlined
        | None -> false
      in
      if stale_direct && (m.Rt.base_code <> None || m.Rt.opt_code <> None)
      then begin
        m.Rt.base_code <- None;
        m.Rt.opt_code <- None;
        incr count
      end
      else if stale_inline then begin
        m.Rt.opt_code <- None;
        incr count
      end);
  vm.State.reg.Rt.epoch <- vm.State.reg.Rt.epoch + 1;
  !count

(* --- transformer phase --------------------------------------------------- *)

type transform_ctx = {
  log : int array; (* flattened (old, new) pairs; registered as GC roots *)
  n_pairs : int;
  status : int array; (* 0 = pending, 1 = in progress, 2 = done *)
  mutable index : (int, int) Hashtbl.t; (* new addr -> pair index *)
  mutable index_gc_count : int;
  transformer_rc : Rt.rt_class;
  (* (new cid, old cid) -> jvolveObject method: the paper's suggested
     "caching the lookup" optimization for the reflective dispatch *)
  method_cache : (int * int, Rt.rt_method) Hashtbl.t;
  carrier : State.vthread; (* reused for every transformer invocation *)
  sandbox : State.sandbox; (* fuel accounting + write restriction *)
}

(* The transformer.* fault points simulate the three ways a bad
   transformer misbehaves, each driven through the real enforcement
   path rather than shortcutting to an abort: [transformer.loop] spends
   the invocation's remaining fuel so the very next instruction trips
   the budget; [transformer.throw] raises the trap a failing body
   would; [transformer.badwrite] pushes a store to a non-writable
   object (the old copy) through the sandbox's write gate. *)
let consult_transformer_faults vm (sb : State.sandbox) ~bad_target =
  (match Faults.check vm.State.faults "transformer.loop" with
  | Some _ -> sb.State.sb_steps <- sb.State.sb_fuel
  | None -> ());
  (match Faults.check vm.State.faults "transformer.throw" with
  | Some _ -> raise (Interp.Trap "injected: transformer.throw")
  | None -> ());
  match bad_target with
  | None -> () (* class transformer: no object to mis-target *)
  | Some addr -> (
      match Faults.check vm.State.faults "transformer.badwrite" with
      | Some _ ->
          let saved = sb.State.sb_guard in
          sb.State.sb_guard <- true;
          Fun.protect
            ~finally:(fun () -> sb.State.sb_guard <- saved)
            (fun () ->
              Interp.guard_write vm ~addr ~what:"putfield (injected)")
      | None -> ())

(* Classify a trapped transformer by the trap message the interpreter's
   enforcement produced, and surface the typed cause. *)
let fail_transformer vm (site : transformer_site) msg =
  (* the failure is re-reported through the typed abort below; drop the
     carrier thread's entry from the VM-wide trap log so a contained
     transformer failure does not read as an app-thread crash *)
  (match vm.State.trap_log with
  | (_, m) :: rest when String.equal m msg ->
      vm.State.trap_log <- rest;
      (* ...and from the per-epoch attribution, or a contained transformer
         failure would spend the guard window's trap budget *)
      State.unrecord_trap_count vm
  | _ -> ());
  let cause, reason =
    if String.starts_with ~prefix:"transformer fuel exhausted" msg then
      let steps =
        match vm.State.sandbox with
        | Some sb -> sb.State.sb_steps
        | None -> 0
      in
      ( C_fuel_exhausted (site, steps),
        Printf.sprintf
          "%s exhausted its fuel budget (%d steps) transforming %s"
          site.ts_method steps (site_desc site) )
    else if String.starts_with ~prefix:"sandbox:" msg then
      ( C_sandbox_violation (site, msg),
        Printf.sprintf "%s transforming %s: %s" site.ts_method
          (site_desc site) msg )
    else
      ( C_transformer_trap (site, msg),
        Printf.sprintf "transformer %s trapped on %s: %s" site.ts_method
          (site_desc site) msg )
  in
  raise (Update_failure (cause, reason))

let build_index ctx vm =
  let h = Hashtbl.create (max 16 ctx.n_pairs) in
  for i = 0 to ctx.n_pairs - 1 do
    Hashtbl.replace h (Value.to_ref ctx.log.((2 * i) + 1)) i
  done;
  ctx.index <- h;
  ctx.index_gc_count <- vm.State.heap.Heap.gc_count

let refresh_index ctx vm =
  if vm.State.heap.Heap.gc_count <> ctx.index_gc_count then build_index ctx vm

let find_transformer_method (transformer_rc : Rt.rt_class) ~name ~params =
  Array.to_seq transformer_rc.Rt.methods
  |> Seq.find (fun (m : Rt.rt_method) ->
         String.equal m.Rt.m_name name
         && List.length m.Rt.m_sig.CF.Types.params = List.length params
         && List.for_all2 CF.Types.equal_ty m.Rt.m_sig.CF.Types.params params)

let rec run_pair vm ctx i =
  match ctx.status.(i) with
  | 2 -> ()
  | 1 ->
      (* a transformer dereferenced a field whose transformation is already
         on the stack: an ill-defined transformer set (paper §3.4) *)
      uerr "cyclic object-transformer dependency detected; aborting update"
  | _ ->
      ctx.status.(i) <- 1;
      let old_addr = Value.to_ref ctx.log.(2 * i)
      and new_addr = Value.to_ref ctx.log.((2 * i) + 1) in
      let new_cid = Heap.class_id vm.State.heap new_addr in
      let old_cid = Heap.class_id vm.State.heap old_addr in
      let m =
        match Hashtbl.find_opt ctx.method_cache (new_cid, old_cid) with
        | Some m -> m
        | None -> (
            let new_cls = Rt.class_by_id vm.State.reg new_cid in
            let old_cls = Rt.class_by_id vm.State.reg old_cid in
            match
              find_transformer_method ctx.transformer_rc ~name:"jvolveObject"
                ~params:
                  [
                    CF.Types.TRef new_cls.Rt.name;
                    CF.Types.TRef old_cls.Rt.name;
                  ]
            with
            | Some m ->
                Hashtbl.replace ctx.method_cache (new_cid, old_cid) m;
                m
            | None ->
                uerr "no jvolveObject(%s, %s) in transformer class"
                  new_cls.Rt.name old_cls.Rt.name)
      in
      let site =
        {
          ts_method = Rt.method_qname ctx.transformer_rc m;
          ts_class = (Rt.class_by_id vm.State.reg new_cid).Rt.name;
          ts_object = new_addr;
        }
      in
      (* reuse the carrier thread when it is free; recursive transforms
         (via the Jvolve.transform native) arrive while the carrier is
         mid-call and need their own thread *)
      let invoke m args =
        if ctx.carrier.State.frames = [] then Interp.call_on vm ctx.carrier m args
        else Interp.call_sync vm m args
      in
      let sb = ctx.sandbox in
      (* fresh fuel per invocation; writes restricted to the object set *)
      let saved_guard = sb.State.sb_guard in
      sb.State.sb_steps <- 0;
      (try
         consult_transformer_faults vm sb ~bad_target:(Some old_addr);
         sb.State.sb_guard <- true;
         ignore
           (invoke m [| Value.of_ref new_addr; Value.of_ref old_addr |]);
         sb.State.sb_guard <- saved_guard
       with
      | Interp.Sync_trap e | Interp.Trap e ->
          sb.State.sb_guard <- saved_guard;
          fail_transformer vm site e
      | e ->
          sb.State.sb_guard <- saved_guard;
          raise e);
      (* the transformer may have allocated and moved the heap *)
      refresh_index ctx vm;
      ctx.status.(i) <- 2

and force_transform vm ctx addr =
  refresh_index ctx vm;
  match Hashtbl.find_opt ctx.index addr with
  | Some i -> run_pair vm ctx i
  | None -> () (* not an object under transformation: no-op *)

(* Class transformers run with a fresh fuel budget but no write guard:
   (re)initializing statics legitimately reaches arbitrary objects. *)
let run_class_transformers vm (spec : Spec.t) ctx =
  List.iter
    (fun cname ->
      match
        find_transformer_method ctx.transformer_rc ~name:"jvolveClass"
          ~params:[ CF.Types.TRef cname ]
      with
      | None -> uerr "no jvolveClass(%s) in transformer class" cname
      | Some m -> (
          let site =
            {
              ts_method = Rt.method_qname ctx.transformer_rc m;
              ts_class = cname;
              ts_object = 0;
            }
          in
          ctx.sandbox.State.sb_steps <- 0;
          try
            consult_transformer_faults vm ctx.sandbox ~bad_target:None;
            ignore (Interp.call_on vm ctx.carrier m [| Value.null |])
          with Interp.Sync_trap e | Interp.Trap e ->
            fail_transformer vm site e))
    spec.Spec.diff.Diff.class_updates_closure

(* --- inverse-update replay (guard revert) -------------------------------

   When a guard window trips, the revert is the inverse update applied
   through this same pipeline.  Its default transformers restore only the
   fields shared between the two layouts (copied from the pristine copies
   of the version being backed out, so in-window mutations survive).
   Fields the forward update *dropped* exist in neither that layout nor
   its copies — their pre-update values live only in the retained forward
   update log.  This step replays them: for every forward pair, copy
   exactly the dropped fields from the forward old copy into the restored
   object.

   The retained log's slots were rewritten by the revert's transforming
   collection: even slots now hold the (forwarded) pre-update copies, odd
   slots the restored new-layout objects — references to the backed-out
   objects were redirected to their replacements like any other root.
   Reference-typed dropped fields are sound for the same reason: the old
   copies were scanned as live objects through both collections, so their
   referents are current addresses of the restored versions. *)
let replay_retained vm (spec : Spec.t) (fwd_log : int array) : int =
  (* [spec] is the inverse spec: its [version_tag] renamed the version
     being backed out aside, so the forward-new layout of class N is the
     runtime class [v<tag>_N] *)
  let heap = vm.State.heap in
  let reg = vm.State.reg in
  let replayed = ref 0 in
  let shared_with_forward (fwd_rc : Rt.rt_class) (nfi : Rt.field_info) =
    Array.exists
      (fun (ffi : Rt.field_info) ->
        String.equal ffi.Rt.fi_name nfi.Rt.fi_name
        && CF.Types.equal_ty
             (Transformers.map_old_ty spec ffi.Rt.fi_ty)
             nfi.Rt.fi_ty)
      fwd_rc.Rt.instance_fields
  in
  for i = 0 to (Array.length fwd_log / 2) - 1 do
    let a = Value.to_ref fwd_log.(2 * i) (* pre-update pristine copy *)
    and c = Value.to_ref fwd_log.((2 * i) + 1) (* restored object *) in
    let c_cls = Rt.class_by_id reg (Heap.class_id heap c) in
    let a_cls = Rt.class_by_id reg (Heap.class_id heap a) in
    if
      c_cls.Rt.valid
      && List.mem c_cls.Rt.name spec.Spec.diff.Diff.class_updates_closure
      (* a custom inverse transformer recomputes the old representation
         from *live* state (so in-window writes survive); replaying the
         pre-update copies over it would roll those writes back *)
      && not (List.mem_assoc c_cls.Rt.name spec.Spec.object_overrides)
    then
      match
        Rt.find_class reg
          (Spec.old_class_name ~tag:spec.Spec.version_tag c_cls.Rt.name)
      with
      | None -> () (* forward layout gone: nothing was dropped *)
      | Some fwd_rc ->
          Array.iter
            (fun (nfi : Rt.field_info) ->
              if not (shared_with_forward fwd_rc nfi) then
                (* dropped by the forward update: restore from the
                   pre-update copy (same source layout as [c_cls]) *)
                Array.iter
                  (fun (ofi : Rt.field_info) ->
                    if
                      String.equal ofi.Rt.fi_name nfi.Rt.fi_name
                      && CF.Types.equal_ty ofi.Rt.fi_ty nfi.Rt.fi_ty
                    then begin
                      Heap.set heap ~addr:c ~off:nfi.Rt.fi_offset
                        (Heap.get heap ~addr:a ~off:ofi.Rt.fi_offset);
                      incr replayed
                    end)
                  a_cls.Rt.instance_fields)
            c_cls.Rt.instance_fields
  done;
  !replayed

let unload_transformer vm (rc : Rt.rt_class) =
  Hashtbl.remove vm.State.reg.Rt.by_name rc.Rt.name;
  rc.Rt.valid <- false;
  Array.iter
    (fun (m : Rt.rt_method) ->
      m.Rt.m_valid <- false;
      m.Rt.base_code <- None;
      m.Rt.opt_code <- None)
    rc.Rt.methods

(* --- the lazy update window ----------------------------------------------

   With [config.lazy_update] the commit pause runs no transforming
   collection at all: metadata is installed, statics carried, the heap
   epoch is bumped, and the world resumes.  Old-epoch objects are then
   transformed on first access — the interpreter's read barrier hands
   every dereferenced reference slot to [transform_slot] — while the
   scheduler's incremental sweeper drains the remainder a bounded number
   of objects per round.

   A transformed original is overwritten with a lazy-forward marker
   ([Heap.make_lazy_fwd]) pointing at its new-layout replacement; its
   verbatim pristine copy carries a copy tag ([Heap.make_copy_tag]) so
   neither the barrier nor the sweeper touches it again, and the (copy,
   replacement) pair goes into the window's update log — the same shape
   the eager transforming collection produces, so [Txn.rollback] and the
   guard window's inverse-update replay work unchanged.

   The commit's [Txn] stays open for the life of the window.  It commits
   when the last pending object has been transformed ([lazy_finalize]);
   a residual transformer failure instead parks the faulting thread
   (B_dsu) and the next scheduler round rolls the whole window back
   ([lazy_rollback]). *)

type lazy_via = L_barrier | L_sweep | L_force

type lazy_ctx = {
  lz_spec : Spec.t; (* for recomputing the restricted set at rollback *)
  lz_txn : Txn.t; (* open until finalize or rollback *)
  lz_transformer_rc : Rt.rt_class;
  lz_method_cache : (int * int, Rt.rt_method) Hashtbl.t;
  lz_carrier : State.vthread;
  lz_sandbox : State.sandbox; (* active only around invocations *)
  lz_scratch : int array; (* one rooted slot for sweeper/force targets *)
  lz_info : State.lazy_info;
  mutable lz_cursor : int; (* sweeper position in to-space *)
  mutable lz_cursor_gc : int; (* gc_count the cursor belongs to *)
  mutable lz_abort : (cause * string) option;
  mutable lz_abort_attempts : int; (* rounds spent waiting to roll back *)
}

(* The window's log grows pair by pair (the eager path gets its size from
   the collection up front).  The grown array replaces the old one both
   as a GC root and, when a guard window already rides on this log, as
   the retained publication. *)
let lazy_log_append vm (ctx : lazy_ctx) ~old_copy ~new_addr =
  let li = ctx.lz_info in
  if li.State.li_log_len + 2 > Array.length li.State.li_log then begin
    let a = Array.make (max 16 (2 * Array.length li.State.li_log)) 0 in
    Array.blit li.State.li_log 0 a 0 li.State.li_log_len;
    vm.State.extra_roots <-
      a :: List.filter (fun x -> x != li.State.li_log) vm.State.extra_roots;
    (match vm.State.guard_retained with
    | Some g when g == li.State.li_log -> vm.State.guard_retained <- Some a
    | _ -> ());
    li.State.li_log <- a
  end;
  li.State.li_log.(li.State.li_log_len) <- Value.of_ref old_copy;
  li.State.li_log.(li.State.li_log_len + 1) <- Value.of_ref new_addr;
  li.State.li_log_len <- li.State.li_log_len + 2

(* The carrier outlives the commit pause (transformers keep running at
   barrier hits for the life of the window), and the scheduler reaps it
   as done between invocations: re-register it so its frames are GC
   roots while the transformer runs.  Recursive transforms arrive while
   the carrier is mid-call and take a fresh temporary thread. *)
let lazy_invoke vm (ctx : lazy_ctx) (m : Rt.rt_method) args =
  if ctx.lz_carrier.State.frames = [] then begin
    if not (List.memq ctx.lz_carrier vm.State.threads) then
      vm.State.threads <- vm.State.threads @ [ ctx.lz_carrier ];
    Interp.call_on vm ctx.lz_carrier m args
  end
  else Interp.call_sync vm m args

(* Run jvolveObject(new, old) for one freshly made pair.  Unlike the
   eager phase the sandbox is installed only for the duration of the
   invocation — app code between barrier hits must not be fuel-charged
   or write-guarded — and the allocation watermark is reset per call so
   the transformer's own temporaries are writable. *)
let lazy_run_transformer vm (ctx : lazy_ctx) ~new_addr ~old_copy =
  let heap = vm.State.heap in
  let new_cid = Heap.class_id heap new_addr in
  let old_cid = Heap.class_id heap old_copy in
  let m =
    match Hashtbl.find_opt ctx.lz_method_cache (new_cid, old_cid) with
    | Some m -> m
    | None -> (
        let new_cls = Rt.class_by_id vm.State.reg new_cid in
        let old_cls = Rt.class_by_id vm.State.reg old_cid in
        match
          find_transformer_method ctx.lz_transformer_rc ~name:"jvolveObject"
            ~params:
              [ CF.Types.TRef new_cls.Rt.name; CF.Types.TRef old_cls.Rt.name ]
        with
        | Some m ->
            Hashtbl.replace ctx.lz_method_cache (new_cid, old_cid) m;
            m
        | None ->
            uerr "no jvolveObject(%s, %s) in transformer class"
              new_cls.Rt.name old_cls.Rt.name)
  in
  let site =
    {
      ts_method = Rt.method_qname ctx.lz_transformer_rc m;
      ts_class = (Rt.class_by_id vm.State.reg new_cid).Rt.name;
      ts_object = new_addr;
    }
  in
  let sb = ctx.lz_sandbox in
  let saved_sandbox = vm.State.sandbox in
  let saved_guard = sb.State.sb_guard in
  let saved_wm = sb.State.sb_watermark in
  let saved_wm_gc = sb.State.sb_watermark_gc in
  vm.State.sandbox <- Some sb;
  sb.State.sb_steps <- 0;
  sb.State.sb_watermark <- heap.Heap.free;
  sb.State.sb_watermark_gc <- heap.Heap.gc_count;
  Fun.protect
    ~finally:(fun () ->
      vm.State.sandbox <- saved_sandbox;
      sb.State.sb_guard <- saved_guard;
      sb.State.sb_watermark <- saved_wm;
      sb.State.sb_watermark_gc <- saved_wm_gc)
    (fun () ->
      try
        consult_transformer_faults vm sb ~bad_target:(Some old_copy);
        sb.State.sb_guard <- true;
        ignore
          (lazy_invoke vm ctx m [| Value.of_ref new_addr; Value.of_ref old_copy |])
      with Interp.Sync_trap e | Interp.Trap e -> (
        (* a nested transform aborted inside this invocation: the carrier
           surfaced it as a generic blocked-call trap — keep the inner
           typed cause instead *)
        match ctx.lz_abort with
        | Some (c, m') -> raise (Update_failure (c, m'))
        | None -> fail_transformer vm site e))

(* Transform the object referenced by [slots.(idx)] if it is still
   pending, chase an already-installed marker, and rewrite the slot.
   [slots] must be a GC root (an operand stack, the scratch root): the
   transformer may allocate and collect. *)
let transform_slot vm (ctx : lazy_ctx) ~via slots idx =
  (match ctx.lz_abort with
  | Some _ -> raise Interp.Lazy_abort
  | None -> ());
  let heap = vm.State.heap in
  let li = ctx.lz_info in
  let addr = Value.to_ref slots.(idx) in
  let gcw = heap.Heap.space.(addr + Heap.off_gc) in
  if Heap.is_lazy_fwd gcw then begin
    let rec chase a =
      let w = heap.Heap.space.(a + Heap.off_gc) in
      if Heap.is_lazy_fwd w then chase (Heap.lazy_fwd_target w) else a
    in
    slots.(idx) <- Value.of_ref (chase (Heap.lazy_fwd_target gcw));
    li.State.li_chases <- li.State.li_chases + 1
  end
  else if Heap.is_copy_tag gcw then () (* pristine update-log copy *)
  else
    let cid = heap.Heap.space.(addr + Heap.off_class) in
    match Hashtbl.find_opt li.State.li_plan cid with
    | None -> ()
    | Some new_cid ->
        let old_cls = Rt.class_by_id vm.State.reg cid in
        let new_cls = Rt.class_by_id vm.State.reg new_cid in
        let old_size =
          if old_cls.Rt.is_array then
            Heap.array_header_words
            + heap.Heap.space.(addr + Heap.off_array_len)
          else old_cls.Rt.size_words
        in
        (* both allocations must land without an intervening collection,
           so the blit source cannot move between them *)
        State.ensure_free vm (new_cls.Rt.size_words + old_size);
        let addr = Value.to_ref slots.(idx) (* the GC may have moved it *) in
        let old_tag = heap.Heap.space.(addr + Heap.off_gc) in
        let new_addr = State.alloc_object vm new_cls in
        let old_copy =
          match Heap.alloc_raw heap ~nwords:old_size with
          | Some a -> a
          | None -> State.fatal "lazy transform: reserved space vanished"
        in
        Array.blit heap.Heap.space addr heap.Heap.space old_copy old_size;
        heap.Heap.space.(old_copy + Heap.off_gc) <- Heap.make_copy_tag old_tag;
        (* marker first: a re-entrant touch of the same object during its
           own transformer (the cyclic case, fatal in the eager path)
           chases the marker and reads the half-written replacement
           instead of recursing *)
        heap.Heap.space.(addr + Heap.off_gc) <- Heap.make_lazy_fwd new_addr;
        lazy_log_append vm ctx ~old_copy ~new_addr;
        State.sandbox_allow vm ctx.lz_sandbox new_addr;
        slots.(idx) <- Value.of_ref new_addr;
        li.State.li_transformed <- li.State.li_transformed + 1;
        (match via with
        | L_barrier ->
            li.State.li_barrier_hits <- li.State.li_barrier_hits + 1
        | L_sweep -> li.State.li_swept <- li.State.li_swept + 1
        | L_force -> ());
        let gc_before = heap.Heap.gc_count in
        (try lazy_run_transformer vm ctx ~new_addr ~old_copy
         with Update_failure (cause, msg) ->
           (* undo the pair when nothing moved, so the failed transform
              leaves no marker behind; after a collection the rollback's
              redirect restores it from the copy instead *)
           if heap.Heap.gc_count = gc_before then begin
             heap.Heap.space.(addr + Heap.off_gc) <- old_tag;
             li.State.li_log_len <- li.State.li_log_len - 2;
             slots.(idx) <- Value.of_ref addr;
             li.State.li_transformed <- li.State.li_transformed - 1;
             match via with
             | L_barrier ->
                 li.State.li_barrier_hits <- li.State.li_barrier_hits - 1
             | L_sweep -> li.State.li_swept <- li.State.li_swept - 1
             | L_force -> ()
           end;
           if ctx.lz_abort = None then ctx.lz_abort <- Some (cause, msg);
           Jv_obs.Obs.emit vm.State.obs ~scope:"core.lazy" "lazy.abort"
             [ ("reason", Jv_obs.Obs.Str msg) ];
           raise Interp.Lazy_abort)

(* The read barrier (State.lazy_barrier).  Fast path: one gc-word load
   and compare against the window's epoch.  Old-epoch objects of
   unchanged classes are stamped current on first touch so they too take
   the fast path from then on. *)
let lazy_barrier_hook (ctx : lazy_ctx) vm slots idx =
  let w = slots.(idx) in
  if Value.is_ref w then begin
    let heap = vm.State.heap in
    let li = ctx.lz_info in
    let addr = Value.to_ref w in
    let gcw = heap.Heap.space.(addr + Heap.off_gc) in
    if gcw = li.State.li_epoch then ()
    else if
      Heap.is_plain_tag gcw
      && not
           (Hashtbl.mem li.State.li_plan
              heap.Heap.space.(addr + Heap.off_class))
    then heap.Heap.space.(addr + Heap.off_gc) <- li.State.li_epoch
    else transform_slot vm ctx ~via:L_barrier slots idx
  end

(* The Jvolve.transform native under an open window: force one object. *)
let lazy_force vm (ctx : lazy_ctx) addr =
  ctx.lz_scratch.(0) <- Value.of_ref addr;
  Fun.protect
    ~finally:(fun () -> ctx.lz_scratch.(0) <- 0)
    (fun () -> transform_slot vm ctx ~via:L_force ctx.lz_scratch 0)

(* One bounded sweep over to-space.  Returns true when the walk reached
   the allocation frontier with no pending object left (and no abort and
   no mid-pass collection): the window has drained. *)
let sweep_pass vm (ctx : lazy_ctx) ~budget =
  let heap = vm.State.heap in
  let li = ctx.lz_info in
  if ctx.lz_cursor_gc <> heap.Heap.gc_count then begin
    (* a collection moved everything: restart the walk in new to-space *)
    ctx.lz_cursor <- 1;
    ctx.lz_cursor_gc <- heap.Heap.gc_count
  end;
  let budget = ref budget in
  while
    !budget > 0
    && ctx.lz_cursor < heap.Heap.free
    && ctx.lz_cursor_gc = heap.Heap.gc_count
    && ctx.lz_abort = None
  do
    let addr = ctx.lz_cursor in
    let cid = heap.Heap.space.(addr + Heap.off_class) in
    let cls = Rt.class_by_id vm.State.reg cid in
    let size =
      if cls.Rt.is_array then
        Heap.array_header_words + heap.Heap.space.(addr + Heap.off_array_len)
      else cls.Rt.size_words
    in
    let gcw = heap.Heap.space.(addr + Heap.off_gc) in
    if Heap.is_plain_tag gcw && Hashtbl.mem li.State.li_plan cid then begin
      ctx.lz_scratch.(0) <- Value.of_ref addr;
      (try transform_slot vm ctx ~via:L_sweep ctx.lz_scratch 0
       with Interp.Lazy_abort -> ());
      ctx.lz_scratch.(0) <- 0
    end;
    (* the budget bounds objects *visited*, not just transformed: each
       round's sweep work stays O(budget) regardless of heap size *)
    decr budget;
    if ctx.lz_cursor_gc = heap.Heap.gc_count then ctx.lz_cursor <- addr + size
  done;
  ctx.lz_abort = None
  && ctx.lz_cursor >= heap.Heap.free
  && ctx.lz_cursor_gc = heap.Heap.gc_count

(* Restore the plain epoch tag on every surviving update-log copy: after
   a rollback the copies ARE the live objects again, and a later window
   must not skip them as pristine copies. *)
let scrub_copy_tags vm =
  let heap = vm.State.heap in
  let scan = ref 1 in
  while !scan < heap.Heap.free do
    let addr = !scan in
    let cid = heap.Heap.space.(addr + Heap.off_class) in
    let cls = Rt.class_by_id vm.State.reg cid in
    let size =
      if cls.Rt.is_array then
        Heap.array_header_words + heap.Heap.space.(addr + Heap.off_array_len)
      else cls.Rt.size_words
    in
    let gcw = heap.Heap.space.(addr + Heap.off_gc) in
    if Heap.is_copy_tag gcw then
      heap.Heap.space.(addr + Heap.off_gc) <- Heap.copy_tag_epoch gcw;
    scan := addr + size
  done

(* Detach the window's hooks and per-window resources (shared by
   finalize and rollback). *)
let lazy_detach vm (ctx : lazy_ctx) =
  vm.State.lazy_barrier <- None;
  vm.State.lazy_sweep <- None;
  vm.State.lazy_drain <- None;
  vm.State.force_transform <- None;
  State.sandbox_dispose vm ctx.lz_sandbox;
  Interp.release_carrier vm ctx.lz_carrier;
  vm.State.extra_roots <-
    List.filter (fun a -> a != ctx.lz_scratch) vm.State.extra_roots

(* Every pending object has been transformed: commit the transaction
   that has been open since the pause.  When a guard window rides on the
   log, hand it the trimmed array — the inverse-update replay iterates
   the whole array, so the growth slack must go. *)
let lazy_finalize vm (ctx : lazy_ctx) =
  let li = ctx.lz_info in
  lazy_detach vm ctx;
  unload_transformer vm ctx.lz_transformer_rc;
  let trimmed = Array.sub li.State.li_log 0 li.State.li_log_len in
  (match vm.State.guard_retained with
  | Some g when g == li.State.li_log ->
      vm.State.extra_roots <-
        trimmed
        :: List.filter (fun a -> a != li.State.li_log) vm.State.extra_roots;
      vm.State.guard_retained <- Some trimmed;
      Txn.commit_retaining vm ctx.lz_txn ~update_log:trimmed
  | _ ->
      vm.State.extra_roots <-
        List.filter (fun a -> a != li.State.li_log) vm.State.extra_roots;
      Txn.commit vm ctx.lz_txn);
  vm.State.lazy_info <- None;
  (* every pending object is transformed, but interior pointers still
     aiming at lazy-forward markers are only rewritten on dereference —
     and the barrier is gone now.  One collection chases them all (the
     GC does it at [forward] entry), after which the markers (and the
     copies, unless a guard window retains the log) are garbage. *)
  ignore (Gc.collect vm);
  let obs = vm.State.obs in
  Jv_obs.Obs.incr obs "core.lazy.drained";
  Jv_obs.Obs.observe_int obs "core.lazy.transformed" li.State.li_transformed;
  Jv_obs.Obs.emit obs ~scope:"core.lazy" "lazy.drained"
    [
      ("transformed", Jv_obs.Obs.Int li.State.li_transformed);
      ("barrier_hits", Jv_obs.Obs.Int li.State.li_barrier_hits);
      ("swept", Jv_obs.Obs.Int li.State.li_swept);
      ("chases", Jv_obs.Obs.Int li.State.li_chases);
    ]

(* Copy same-named fields from each inverse pair's new-layout snapshot
   into its zeroed old-layout replacement — the default inverse
   transformation, applied to objects the app allocated as new-version
   instances during the window (they are in no update log, so the
   rollback's redirect cannot restore them). *)
let lazy_untransform_defaults vm (inv_log : int array) =
  let heap = vm.State.heap in
  let reg = vm.State.reg in
  for i = 0 to (Array.length inv_log / 2) - 1 do
    let snap = Value.to_ref inv_log.(2 * i)
    and restored = Value.to_ref inv_log.((2 * i) + 1) in
    let new_cls = Rt.class_by_id reg (Heap.class_id heap snap) in
    let old_cls = Rt.class_by_id reg (Heap.class_id heap restored) in
    Array.iter
      (fun (ofi : Rt.field_info) ->
        Array.iter
          (fun (nfi : Rt.field_info) ->
            if
              String.equal ofi.Rt.fi_name nfi.Rt.fi_name
              && CF.Types.is_reference ofi.Rt.fi_ty
                 = CF.Types.is_reference nfi.Rt.fi_ty
            then
              Heap.set heap ~addr:restored ~off:ofi.Rt.fi_offset
                (Heap.get heap ~addr:snap ~off:nfi.Rt.fi_offset))
          new_cls.Rt.instance_fields)
      old_cls.Rt.instance_fields
  done

(* Roll the whole window back: the VM resumes on the old version as if
   the update never committed.  Unlike the eager failure path the app
   has been RUNNING on the new version, so this needs a DSU-grade sync:
   the restricted set is recomputed against current (new) metadata — a
   thread inside a changed method cannot survive the metadata swap — and
   a blocked check parks behind return barriers and retries next round.
   [force] overrides that after the retry budget is spent (counted as
   unsafe frames).

   Heap restoration runs as ONE collection doing double duty before the
   metadata swap: the window log's redirects send every reference that
   landed on a transformed replacement back to its pristine copy, and an
   inverse transform plan (new cid -> old cid) replaces app-allocated
   new-version instances with default-untransformed old-layout objects.
   After the metadata swap a plain collection flushes the garbage this
   left behind (its class ids dangle once the registry is truncated). *)
let lazy_rollback vm (ctx : lazy_ctx) ~force : bool =
  let _, reason =
    match ctx.lz_abort with
    | Some (c, r) -> (c, r)
    | None -> (C_generic, "lazy window rollback")
  in
  let restricted = Safepoint.compute vm ctx.lz_spec in
  match Safepoint.check vm restricted with
  | Safepoint.Blocked stuck when not force ->
      ignore (Safepoint.install_barriers stuck : int);
      Safepoint.unpark_stuck stuck;
      false
  | res ->
      let osr_frames, forced_through =
        match res with
        | Safepoint.Safe frames -> (frames, false)
        | Safepoint.Blocked _ -> ([], true)
      in
      let li = ctx.lz_info in
      let obs = vm.State.obs in
      let t0 = now () in
      lazy_detach vm ctx;
      unload_transformer vm ctx.lz_transformer_rc;
      (* the guard window (if any) rode on this log and dies with it *)
      (match vm.State.guard_retained with
      | Some g when g == li.State.li_log ->
          vm.State.guard_retained <- None;
          vm.State.guard_tick <- None
      | _ -> ());
      let trimmed = Array.sub li.State.li_log 0 li.State.li_log_len in
      vm.State.extra_roots <-
        List.filter (fun a -> a != li.State.li_log) vm.State.extra_roots;
      vm.State.lazy_info <- None;
      (* 1: the combined redirect + inverse-transform collection (still
         on new metadata) *)
      let redirect = Hashtbl.create (max 16 (Array.length trimmed)) in
      for i = 0 to (Array.length trimmed / 2) - 1 do
        Hashtbl.replace redirect
          (Value.to_ref trimmed.((2 * i) + 1))
          (Value.to_ref trimmed.(2 * i))
      done;
      let inv_plan = Hashtbl.create 16 in
      Hashtbl.iter
        (fun old_cid new_cid -> Hashtbl.replace inv_plan new_cid old_cid)
        li.State.li_plan;
      let invres = Gc.collect ~plan:inv_plan ~redirect vm in
      lazy_untransform_defaults vm invres.Gc.update_log;
      (* 2: the copies the redirect restored are live again *)
      scrub_copy_tags vm;
      (* 3: metadata + statics back to the snapshot (no heap pass: step 1
         already did it) *)
      let rolled_back, note =
        match Txn.rollback vm ctx.lz_txn with
        | () -> (
            match Txn.audit vm ctx.lz_txn with
            | Ok () -> (true, "")
            | Error why -> (false, "; audit: " ^ why))
        | exception ex ->
            (false, "; rollback raised: " ^ Printexc.to_string ex)
      in
      (* 4: flush the inverse collection's own snapshots (their class ids
         dangle now that the registry is truncated) *)
      ignore (Gc.collect vm);
      (* 5: lift stale-code frames onto the restored metadata *)
      let osr_failures = ref 0 in
      List.iter
        (fun fr ->
          try Osr.replace_frame vm fr
          with Osr.Osr_failed _ -> incr osr_failures)
        osr_frames;
      Safepoint.clear_barriers vm;
      Safepoint.release_parked vm;
      if forced_through then
        Jv_obs.Obs.incr obs "core.lazy.rollback_unsafe_frames";
      let rolled_back, note =
        if rolled_back && vm.State.config.verify_heap then begin
          let rep = Jv_vm.Heapverify.run vm in
          if rep.Jv_vm.Heapverify.hv_ok then (rolled_back, note)
          else
            ( false,
              note
              ^ Printf.sprintf "; post-rollback heap verify found %d issue(s)"
                  rep.Jv_vm.Heapverify.hv_total_issues )
        end
        else (rolled_back, note)
      in
      let ms = (now () -. t0) *. 1000.0 in
      Jv_obs.Obs.incr obs "core.lazy.rollbacks";
      Jv_obs.Obs.observe obs "core.lazy.rollback_ms" ms;
      Jv_obs.Obs.emit obs ~scope:"core.lazy" "lazy.rollback"
        [
          ("reason", Jv_obs.Obs.Str reason);
          ("ok", Jv_obs.Obs.Str (string_of_bool rolled_back));
          ("transformed", Jv_obs.Obs.Int li.State.li_transformed);
          ("forced", Jv_obs.Obs.Str (string_of_bool forced_through));
          ("osr_failures", Jv_obs.Obs.Int !osr_failures);
          ("note", Jv_obs.Obs.Str note);
          ("ms", Jv_obs.Obs.Float ms);
        ];
      true

(* The per-round hook (State.lazy_sweep): roll back if aborting, else
   sweep one budget's worth and finalize on completion. *)
let lazy_round (ctx : lazy_ctx) vm =
  match ctx.lz_abort with
  | Some _ ->
      ctx.lz_abort_attempts <- ctx.lz_abort_attempts + 1;
      ignore
        (lazy_rollback vm ctx ~force:(ctx.lz_abort_attempts > 200) : bool)
  | None ->
      let budget = max 1 vm.State.config.lazy_sweep_budget in
      if sweep_pass vm ctx ~budget then lazy_finalize vm ctx

(* Synchronous drain (State.lazy_drain): force every residual transform
   now — a new update, or the guard's inverse update, needs the window
   resolved before it can install metadata.  Returns false when a
   residual transformer trapped and the window rolled back instead. *)
let rec lazy_drain_now (ctx : lazy_ctx) vm =
  if ctx.lz_abort <> None then begin
    ignore (lazy_rollback vm ctx ~force:true : bool);
    false
  end
  else if sweep_pass vm ctx ~budget:max_int then begin
    lazy_finalize vm ctx;
    true
  end
  else lazy_drain_now ctx vm

(* Class transformers at a lazy commit: same contract as the eager phase
   (fresh fuel, no write guard — statics reinitialization legitimately
   reaches arbitrary objects), but run through [lazy_invoke] with the
   barrier live, since they dereference old-epoch statics and force
   transforms as they go (the paper's eager islands inside the lazy
   window). *)
let run_class_transformers_lazy vm (spec : Spec.t) (ctx : lazy_ctx) =
  List.iter
    (fun cname ->
      match
        find_transformer_method ctx.lz_transformer_rc ~name:"jvolveClass"
          ~params:[ CF.Types.TRef cname ]
      with
      | None -> uerr "no jvolveClass(%s) in transformer class" cname
      | Some m ->
          let site =
            {
              ts_method = Rt.method_qname ctx.lz_transformer_rc m;
              ts_class = cname;
              ts_object = 0;
            }
          in
          let sb = ctx.lz_sandbox in
          let saved_sandbox = vm.State.sandbox in
          vm.State.sandbox <- Some sb;
          sb.State.sb_steps <- 0;
          Fun.protect
            ~finally:(fun () -> vm.State.sandbox <- saved_sandbox)
            (fun () ->
              try
                consult_transformer_faults vm sb ~bad_target:None;
                ignore (lazy_invoke vm ctx m [| Value.null |])
              with Interp.Sync_trap e | Interp.Trap e -> (
                match ctx.lz_abort with
                | Some (c, m') -> raise (Update_failure (c, m'))
                | None -> fail_transformer vm site e)))
    spec.Spec.diff.Diff.class_updates_closure

(* --- the driver ----------------------------------------------------------- *)

(* What OSR mutates per frame, for restoration when a later frame's
   replacement (or an injected fault) aborts the update. *)
type frame_snap = {
  fs_code : Jv_vm.Machine.compiled;
  fs_pc : int;
  fs_locals : int array;
  fs_ostack : int array;
  fs_sp : int;
}

let snap_frame (fr : State.frame) =
  {
    fs_code = fr.State.code;
    fs_pc = fr.State.pc;
    fs_locals = Array.copy fr.State.locals;
    fs_ostack = Array.copy fr.State.ostack;
    fs_sp = fr.State.sp;
  }

let restore_frame (fr : State.frame) s =
  fr.State.code <- s.fs_code;
  fr.State.pc <- s.fs_pc;
  fr.State.locals <- s.fs_locals;
  fr.State.ostack <- s.fs_ostack;
  fr.State.sp <- s.fs_sp

(* The whole installation runs inside a [Txn]: any failure in the load /
   GC / transform / OSR phases — including the armed fault plan's
   [updater.*] injection points — rolls the VM back to the pre-update
   snapshot and reports a typed abort instead of leaving a half-installed
   class table (the paper's all-or-nothing claim, §3.3-3.4).

   Step order differs from the paper's presentation in one way: OSR runs
   {e last}, after the transformer phase.  The world is stopped either
   way, so nothing observes the difference — but every failure before
   OSR then needs no frame surgery to undo, and an OSR failure itself
   restores the frames it touched from snapshots. *)
let apply ?(retain_log = false) ?replay vm (p : Transformers.prepared)
    ~(restricted : Safepoint.restricted)
    ~(osr_frames : State.frame list) : (timings, abort) result =
  (* a still-draining lazy window from a previous update must resolve
     before new metadata can install on top of it; proceed either way —
     a drain-time rollback leaves the VM cleanly on the older version *)
  (match vm.State.lazy_drain with
  | Some drain -> ignore (drain vm : bool)
  | None -> ());
  let spec = p.Transformers.p_spec in
  (* a guard revert must be eager: the inverse replay reads restored
     objects immediately after the transforming collection *)
  let lazy_mode = vm.State.config.lazy_update && replay = None in
  let lazy_ctx_r = ref None in
  let faults = vm.State.faults in
  let obs = vm.State.obs in
  let t0 = now () in
  let txn = Txn.capture vm in
  let phase = ref P_load in
  let update_log = ref [||] in
  let frame_snaps = ref [] in
  let run () =
    (* a guard-window revert: give the chaos plan its deterministic shot
       at the revert path itself (a fire rolls the revert back — the VM
       stays on the version being backed out, heap intact) *)
    if replay <> None then Faults.point faults "guard.revert";
    (* 1-3: metadata installation *)
    let olds = rename_old_classes vm spec in
    let news = install_new_classes vm spec in
    carry_over_statics vm spec olds news;
    swap_method_bodies vm spec;
    let invalidated = invalidate_stale_code vm restricted in
    Faults.point faults "updater.load";
    (* static initializers of brand-new classes *)
    List.iter
      (fun name ->
        match List.assoc_opt name news with
        | Some rc -> (
            try Classloader.run_clinit vm rc
            with Interp.Sync_trap e -> uerr "<clinit> of %s trapped: %s" name e)
        | None -> ())
      spec.Spec.diff.Diff.added_classes;
    (* install the transformer class *)
    let transformer_rc =
      match
        Classloader.install vm ~replace:true [ p.Transformers.p_transformer ]
      with
      | [ rc ] -> rc
      | _ -> uerr "failed to install transformer class"
    in
    let t_load = now () in
    Jv_obs.Obs.incr ~by:invalidated obs "core.update.invalidated_methods";
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.metadata.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_load -. t0) *. 1000.0));
        ("invalidated", Jv_obs.Obs.Int invalidated);
        ("osr_frames", Jv_obs.Obs.Int (List.length osr_frames));
      ];
    (* 5: the transforming collection *)
    phase := P_gc;
    Faults.point faults "updater.gc";
    let plan = Hashtbl.create 16 in
    List.iter
      (fun (name, (old_rc : Rt.rt_class)) ->
        match List.assoc_opt name news with
        | Some new_rc -> Hashtbl.replace plan old_rc.Rt.cid new_rc.Rt.cid
        | None -> () (* deleted classes: instances survive untransformed *))
      olds;
    if lazy_mode then begin
      (* lazy commit: no heap pass at all.  Bump the heap epoch, open the
         window, install the read barrier; old-epoch objects transform on
         first access and the scheduler's sweeper drains the rest. *)
      vm.State.heap.Heap.epoch <- vm.State.heap.Heap.epoch + 1;
      let li =
        {
          State.li_plan = plan;
          li_epoch = vm.State.heap.Heap.epoch;
          li_log = Array.make 16 0;
          li_log_len = 0;
          li_transformed = 0;
          li_barrier_hits = 0;
          li_swept = 0;
          li_chases = 0;
        }
      in
      vm.State.lazy_info <- Some li;
      vm.State.extra_roots <- li.State.li_log :: vm.State.extra_roots;
      let sb =
        State.sandbox_create vm ~fuel:vm.State.config.transformer_fuel
      in
      (* the sandbox is installed only around transformer invocations —
         the app code running between barrier hits is not fuel-charged *)
      vm.State.sandbox <- None;
      let scratch = Array.make 1 0 in
      vm.State.extra_roots <- scratch :: vm.State.extra_roots;
      let carrier = Interp.make_carrier vm in
      (* idle between invocations: marked done so the scheduler never
         slices it; [lazy_invoke] re-registers it per call *)
      carrier.State.tstate <- State.T_done;
      let lctx =
        {
          lz_spec = spec;
          lz_txn = txn;
          lz_transformer_rc = transformer_rc;
          lz_method_cache = Hashtbl.create 8;
          lz_carrier = carrier;
          lz_sandbox = sb;
          lz_scratch = scratch;
          lz_info = li;
          lz_cursor = 1;
          lz_cursor_gc = vm.State.heap.Heap.gc_count;
          lz_abort = None;
          lz_abort_attempts = 0;
        }
      in
      lazy_ctx_r := Some lctx;
      vm.State.lazy_barrier <- Some (lazy_barrier_hook lctx);
      vm.State.force_transform <-
        Some (fun vm addr -> lazy_force vm lctx addr);
      let t_gc = now () in
      Jv_obs.Obs.emit obs ~scope:"core.update" "phase.gc.done"
        [
          ("ms", Jv_obs.Obs.Float ((t_gc -. t_load) *. 1000.0));
          ("transformed", Jv_obs.Obs.Int 0);
          ("copied", Jv_obs.Obs.Int 0);
          ("lazy", Jv_obs.Obs.Str "true");
        ];
      (* 6: class transformers only — they run eagerly even in a lazy
         update (statics must be coherent when the world resumes),
         forcing through the barrier whatever objects they touch *)
      phase := P_transform;
      Faults.point faults "updater.transform";
      run_class_transformers_lazy vm spec lctx;
      let t_transform = now () in
      Jv_obs.Obs.emit obs ~scope:"core.update" "phase.transform.done"
        [
          ("ms", Jv_obs.Obs.Float ((t_transform -. t_gc) *. 1000.0));
          ("pairs", Jv_obs.Obs.Int (li.State.li_log_len / 2));
          ("steps", Jv_obs.Obs.Int sb.State.sb_total_steps);
        ];
      if vm.State.config.verify_heap then begin
        phase := P_verify;
        let old_copies = Hashtbl.create 16 in
        for i = 0 to (li.State.li_log_len / 2) - 1 do
          Hashtbl.replace old_copies (Value.to_ref li.State.li_log.(2 * i)) ()
        done;
        let rep =
          Jv_vm.Heapverify.run ~stale_ok:(Hashtbl.mem old_copies) vm
        in
        Jv_obs.Obs.emit obs ~scope:"core.update" "phase.verify.done"
          [
            ("ms", Jv_obs.Obs.Float rep.Jv_vm.Heapverify.hv_ms);
            ("objects", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_objects);
            ("issues", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_total_issues);
          ];
        if not rep.Jv_vm.Heapverify.hv_ok then begin
          let msgs =
            List.map Jv_vm.Heapverify.issue_to_string
              rep.Jv_vm.Heapverify.hv_issues
          in
          raise
            (Update_failure
               ( C_heap_verify msgs,
                 Printf.sprintf "heap verify found %d issue(s): %s"
                   rep.Jv_vm.Heapverify.hv_total_issues
                   (match msgs with m :: _ -> m | [] -> "?") ))
        end
      end;
      let t_verify = now () in
      phase := P_osr;
      frame_snaps := List.map snap_frame osr_frames;
      Faults.point faults "updater.osr";
      List.iter
        (fun fr ->
          try Osr.replace_frame vm fr
          with Osr.Osr_failed e -> uerr "OSR failed: %s" e)
        osr_frames;
      let t_end = now () in
      {
        u_load_ms = ((t_load -. t0) +. (t_end -. t_verify)) *. 1000.0;
        u_gc_ms = (t_gc -. t_load) *. 1000.0;
        u_transform_ms = (t_transform -. t_gc) *. 1000.0;
        u_verify_ms = (t_verify -. t_transform) *. 1000.0;
        u_total_ms = (t_end -. t0) *. 1000.0;
        u_osr = List.length osr_frames;
        u_invalidated_methods = invalidated;
        u_transformed_objects = li.State.li_transformed;
        u_copied_objects = 0;
      }
    end
    else begin
    let gcres = Gc.collect ~plan vm in
    update_log := gcres.Gc.update_log;
    let t_gc = now () in
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.gc.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_gc -. t_load) *. 1000.0));
        ("transformed", Jv_obs.Obs.Int gcres.Gc.transformed_objects);
        ("copied", Jv_obs.Obs.Int gcres.Gc.copied_objects);
      ];
    (* 6: transformers, sandboxed (fuel + write restriction) *)
    phase := P_transform;
    let sb =
      State.sandbox_create vm ~fuel:vm.State.config.transformer_fuel
    in
    let ctx =
      {
        log = gcres.Gc.update_log;
        n_pairs = Array.length gcres.Gc.update_log / 2;
        status = Array.make (max 1 (Array.length gcres.Gc.update_log / 2)) 0;
        index = Hashtbl.create 16;
        index_gc_count = -1;
        transformer_rc;
        method_cache = Hashtbl.create 8;
        carrier = Interp.make_carrier vm;
        sandbox = sb;
      }
    in
    vm.State.extra_roots <- ctx.log :: vm.State.extra_roots;
    (* every new-layout object in the log is a legitimate write target *)
    for i = 0 to ctx.n_pairs - 1 do
      State.sandbox_allow vm sb (Value.to_ref ctx.log.((2 * i) + 1))
    done;
    vm.State.force_transform <-
      Some (fun vm addr -> force_transform vm ctx addr);
    let finish_transformers ~keep_log () =
      State.sandbox_dispose vm sb;
      vm.State.force_transform <- None;
      Interp.release_carrier vm ctx.carrier;
      (* [keep_log]: a guard window will retain the log past commit, so
         it must stay rooted (the failure path always unroots) *)
      if not keep_log then
        vm.State.extra_roots <-
          List.filter (fun a -> a != ctx.log) vm.State.extra_roots
    in
    (try
       Faults.point faults "updater.transform";
       build_index ctx vm;
       run_class_transformers vm spec ctx;
       for i = 0 to ctx.n_pairs - 1 do
         Faults.point faults "updater.transform";
         run_pair vm ctx i
       done;
       finish_transformers ~keep_log:retain_log ()
     with e ->
       finish_transformers ~keep_log:false ();
       raise e);
    (* 7: drop the transformer class; the log is already unreachable *)
    unload_transformer vm transformer_rc;
    (* 7.25: guard revert only — restore the fields the forward update
       dropped from the retained forward log (see [replay_retained]) *)
    (match replay with
    | Some fwd_log when Array.length fwd_log > 1 ->
        let n = replay_retained vm spec fwd_log in
        Jv_obs.Obs.incr ~by:n obs "core.guard.replayed_fields";
        Jv_obs.Obs.emit obs ~scope:"core.update" "phase.replay.done"
          [
            ("fields", Jv_obs.Obs.Int n);
            ("pairs", Jv_obs.Obs.Int (Array.length fwd_log / 2));
          ]
    | _ -> ());
    let t_transform = now () in
    Jv_obs.Obs.observe_int obs "core.update.transformer_steps"
      sb.State.sb_total_steps;
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.transform.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_transform -. t_gc) *. 1000.0));
        ("pairs", Jv_obs.Obs.Int ctx.n_pairs);
        ("steps", Jv_obs.Obs.Int sb.State.sb_total_steps);
      ];
    (* 7.5: the post-transform heap integrity walk.  The old copies in
       the update log are the one place stale-class instances may
       legally survive. *)
    if vm.State.config.verify_heap then begin
      phase := P_verify;
      let old_copies = Hashtbl.create (max 16 ctx.n_pairs) in
      for i = 0 to ctx.n_pairs - 1 do
        Hashtbl.replace old_copies (Value.to_ref ctx.log.(2 * i)) ()
      done;
      let rep =
        Jv_vm.Heapverify.run ~stale_ok:(Hashtbl.mem old_copies) vm
      in
      Jv_obs.Obs.emit obs ~scope:"core.update" "phase.verify.done"
        [
          ("ms", Jv_obs.Obs.Float rep.Jv_vm.Heapverify.hv_ms);
          ("objects", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_objects);
          ("issues", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_total_issues);
        ];
      if not rep.Jv_vm.Heapverify.hv_ok then begin
        let msgs =
          List.map Jv_vm.Heapverify.issue_to_string
            rep.Jv_vm.Heapverify.hv_issues
        in
        raise
          (Update_failure
             ( C_heap_verify msgs,
               Printf.sprintf "heap verify found %d issue(s): %s"
                 rep.Jv_vm.Heapverify.hv_total_issues
                 (match msgs with m :: _ -> m | [] -> "?") ))
      end
    end;
    let t_verify = now () in
    (* 4 (run last, see above): OSR the parked category-(2) frames *)
    phase := P_osr;
    frame_snaps := List.map snap_frame osr_frames;
    Faults.point faults "updater.osr";
    List.iter
      (fun fr ->
        try Osr.replace_frame vm fr
        with Osr.Osr_failed e -> uerr "OSR failed: %s" e)
      osr_frames;
    let t_end = now () in
    {
      u_load_ms = ((t_load -. t0) +. (t_end -. t_verify)) *. 1000.0;
      u_gc_ms = (t_gc -. t_load) *. 1000.0;
      u_transform_ms = (t_transform -. t_gc) *. 1000.0;
      u_verify_ms = (t_verify -. t_transform) *. 1000.0;
      u_total_ms = (t_end -. t0) *. 1000.0;
      u_osr = List.length osr_frames;
      u_invalidated_methods = invalidated;
      u_transformed_objects = gcres.Gc.transformed_objects;
      u_copied_objects = gcres.Gc.copied_objects;
    }
    end
  in
  match run () with
  | timings ->
      (match !lazy_ctx_r with
      | Some lctx ->
          (* the window stays open (and the txn with it): the scheduler
             sweeps it and finalize/rollback closes it *)
          vm.State.lazy_sweep <- Some (lazy_round lctx);
          vm.State.lazy_drain <- Some (lazy_drain_now lctx);
          if retain_log then
            vm.State.guard_retained <- Some lctx.lz_info.State.li_log;
          Jv_obs.Obs.emit obs ~scope:"core.lazy" "lazy.window.open"
            [ ("epoch", Jv_obs.Obs.Int lctx.lz_info.State.li_epoch) ]
      | None ->
          if retain_log then Txn.commit_retaining vm txn ~update_log:!update_log
          else Txn.commit vm txn);
      Ok timings
  | exception e ->
      let reason, cause, killed_at =
        match e with
        | Update_error m -> (m, C_generic, None)
        | Update_failure (cause, m) -> (m, cause, None)
        | Faults.Injected pt -> ("injected fault at " ^ pt, C_injected pt, None)
        | Faults.Killed pt -> ("VM killed at " ^ pt, C_injected pt, Some pt)
        | Interp.Sync_trap m -> ("transformer trap: " ^ m, C_generic, None)
        | Jv_vm.Jit.Compile_error m -> ("jit: " ^ m, C_generic, None)
        | Classloader.Load_error errs ->
            ("load: " ^ String.concat "; " errs, C_generic, None)
        | e ->
            (* unrecoverable VM conditions (e.g. to-space overflow
               mid-collection) are outside the fault model *)
            Txn.commit vm txn;
            raise e
      in
      let rt0 = now () in
      (* a lazy commit that failed before opening the window: the world
         never resumed, so the pairs made so far roll back exactly like
         an eager log — detach the half-built window first *)
      (match !lazy_ctx_r with
      | Some lctx ->
          let li = lctx.lz_info in
          lazy_detach vm lctx;
          update_log := Array.sub li.State.li_log 0 li.State.li_log_len;
          vm.State.extra_roots <-
            List.filter (fun a -> a != li.State.li_log) vm.State.extra_roots;
          vm.State.lazy_info <- None
      | None -> ());
      (* with [retain_log], the log stayed rooted past the transform phase;
         a verify/OSR failure must unroot it before the rollback's redirect
         collection, or the redirect would rewrite the log's own slots *)
      if retain_log && Array.length !update_log > 0 then
        vm.State.extra_roots <-
          List.filter (fun a -> a != !update_log) vm.State.extra_roots;
      (match !frame_snaps with
      | [] -> ()
      | snaps -> List.iter2 restore_frame osr_frames snaps);
      let rolled_back, rollback_note =
        match Txn.rollback ~update_log:!update_log vm txn with
        | () -> (
            match Txn.audit vm txn with
            | Ok () -> (true, "")
            | Error why -> (false, "; audit: " ^ why))
        | exception ex ->
            (false, "; rollback raised: " ^ Printexc.to_string ex)
      in
      (* the redirect collection restored lazy pairs from their pristine
         copies, which still carry copy tags: make them plain live
         objects again or a later window would skip them *)
      if !lazy_ctx_r <> None && rolled_back && Array.length !update_log > 0
      then scrub_copy_tags vm;
      (* Re-verify the restored heap: a rollback that leaves ill-typed
         references standing is no rollback at all — reporting it as
         unreliable is what routes the instance into the orchestrator's
         quarantine policy. *)
      let rolled_back, rollback_note =
        if rolled_back && vm.State.config.verify_heap then begin
          let rep = Jv_vm.Heapverify.run vm in
          if rep.Jv_vm.Heapverify.hv_ok then (rolled_back, rollback_note)
          else begin
            Jv_obs.Obs.incr obs "core.update.post_rollback_verify_failures";
            ( false,
              rollback_note
              ^ Printf.sprintf "; post-rollback heap verify found %d issue(s): %s"
                  rep.Jv_vm.Heapverify.hv_total_issues
                  (match rep.Jv_vm.Heapverify.hv_issues with
                  | i :: _ -> Jv_vm.Heapverify.issue_to_string i
                  | [] -> "?") )
          end
        end
        else (rolled_back, rollback_note)
      in
      (match killed_at with
      | Some pt -> vm.State.killed <- Some pt
      | None -> ());
      let rollback_ms = (now () -. rt0) *. 1000.0 in
      Jv_obs.Obs.incr obs "core.update.rollbacks";
      Jv_obs.Obs.observe obs "core.update.rollback_ms" rollback_ms;
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.rollback"
        [
          ("phase", Jv_obs.Obs.Str (phase_to_string !phase));
          ("reason", Jv_obs.Obs.Str reason);
          ("ok", Jv_obs.Obs.Str (string_of_bool rolled_back));
          ("ms", Jv_obs.Obs.Float rollback_ms);
        ];
      Error
        {
          a_phase = !phase;
          a_reason = reason ^ rollback_note;
          a_cause = cause;
          a_rolled_back = rolled_back;
          a_rollback_ms = rollback_ms;
        }
