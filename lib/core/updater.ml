(* Applying an update once a DSU safe point is reached (paper §3.3-3.4):

   1. rename superseded classes and strip their methods;
   2. install the new class versions (and brand-new classes), carrying
      over unchanged static fields;
   3. swap updated method bodies in place and invalidate all compiled code
      whose resolved offsets the update stales;
   4. OSR the base-compiled category-(2) frames against the new metadata;
   5. run a full-heap collection with the transform plan — every instance
      of an updated class is replaced by a zeroed new-layout object, with
      the old copy kept in the update log;
   6. run class transformers, then object transformers over the log;
   7. discard the transformer class and the log.

   All of this happens with application threads stopped at safe points; the
   log array is registered as a GC root so transformer-phase allocation
   (which may trigger a nested plain collection) stays safe. *)

module CF = Jv_classfile
module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Heap = Jv_vm.Heap
module Value = Jv_vm.Value
module Gc = Jv_vm.Gc
module Interp = Jv_vm.Interp
module Osr = Jv_vm.Osr
module Classloader = Jv_vm.Classloader
module Faults = Jv_faults.Faults

exception Update_error of string

let uerr fmt = Printf.ksprintf (fun s -> raise (Update_error s)) fmt

type timings = {
  u_load_ms : float; (* class installation + body swaps + OSR *)
  u_gc_ms : float;
  u_transform_ms : float;
  u_verify_ms : float; (* post-transform heap integrity walk (0 if off) *)
  u_total_ms : float;
  u_osr : int;
  u_invalidated_methods : int;
  u_transformed_objects : int;
  u_copied_objects : int;
}

(* --- typed aborts -------------------------------------------------------- *)

type phase =
  | P_admit (* rejected by admission control; the VM never paused *)
  | P_sync (* never reached [apply]: safe-point timeout, prepare error *)
  | P_load (* metadata installation, clinits, transformer install *)
  | P_gc (* the transforming collection *)
  | P_transform (* class and object transformers *)
  | P_verify (* the post-transform heap integrity walk *)
  | P_osr (* on-stack replacement of parked frames *)
  | P_guard (* the post-commit guard window: a failed automatic revert *)

let phase_to_string = function
  | P_admit -> "admit"
  | P_sync -> "sync"
  | P_load -> "load"
  | P_gc -> "gc"
  | P_transform -> "transform"
  | P_verify -> "verify"
  | P_osr -> "osr"
  | P_guard -> "guard"

(* Where a transformer was executing when it failed. *)
type transformer_site = {
  ts_method : string; (* qualified transformer method *)
  ts_class : string; (* class being transformed *)
  ts_object : int; (* heap address of the object; 0 for class transformers *)
}

let site_desc s =
  if s.ts_object = 0 then s.ts_class
  else Printf.sprintf "%s@%d" s.ts_class s.ts_object

type cause =
  | C_generic
  | C_injected of string (* fault-plan point that fired *)
  | C_transformer_trap of transformer_site * string
  | C_fuel_exhausted of transformer_site * int (* steps charged *)
  | C_sandbox_violation of transformer_site * string
  | C_heap_verify of string list (* verifier issues *)
  | C_admission of string list (* rejecting verdicts *)

let cause_to_string = function
  | C_generic -> "error"
  | C_injected pt -> "injected at " ^ pt
  | C_transformer_trap (s, msg) ->
      Printf.sprintf "transformer %s trapped on %s: %s" s.ts_method
        (site_desc s) msg
  | C_fuel_exhausted (s, steps) ->
      Printf.sprintf "transformer %s out of fuel (%d steps) on %s"
        s.ts_method steps (site_desc s)
  | C_sandbox_violation (s, msg) ->
      Printf.sprintf "transformer %s on %s: %s" s.ts_method (site_desc s) msg
  | C_heap_verify issues ->
      Printf.sprintf "heap verify: %d issue(s)" (List.length issues)
  | C_admission verdicts ->
      Printf.sprintf "admission: %d rejection(s)" (List.length verdicts)

type abort = {
  a_phase : phase;
  a_reason : string;
  a_cause : cause;
  a_rolled_back : bool;
      (* the transaction rolled back and the post-rollback audit (and
         heap verification, when enabled) passed: the VM is intact on
         the old version *)
  a_rollback_ms : float;
}

let sync_abort reason =
  { a_phase = P_sync; a_reason = reason; a_cause = C_generic;
    a_rolled_back = true; a_rollback_ms = 0.0 }

(* An update rejected before the VM paused: nothing was mutated, so the
   "transaction" is trivially intact. *)
let admission_abort reasons =
  {
    a_phase = P_admit;
    a_reason = "admission: " ^ String.concat "; " reasons;
    a_cause = C_admission reasons;
    a_rolled_back = true;
    a_rollback_ms = 0.0;
  }

let abort_to_string a =
  match a.a_phase with
  | P_sync | P_admit -> a.a_reason
  | _ ->
      Printf.sprintf "[%s] %s%s" (phase_to_string a.a_phase) a.a_reason
        (if a.a_rolled_back then " (rolled back)" else " (ROLLBACK FAILED)")

(* A transformer failure carrying its typed cause through the abort
   machinery (the bare [Update_error] string keeps serving everything
   that has no structure to preserve). *)
exception Update_failure of cause * string

let now () = Unix.gettimeofday ()

(* --- step helpers ------------------------------------------------------- *)

let rename_old_classes vm (spec : Spec.t) : (string * Rt.rt_class) list =
  let tag = spec.Spec.version_tag in
  List.filter_map
    (fun name ->
      match Rt.find_class vm.State.reg name with
      | None -> None
      | Some rc ->
          Hashtbl.remove vm.State.reg.Rt.by_name name;
          let stub_name = Spec.old_class_name ~tag name in
          rc.Rt.name <- stub_name;
          rc.Rt.valid <- false;
          Hashtbl.replace vm.State.reg.Rt.by_name stub_name rc.Rt.cid;
          Array.iter
            (fun (m : Rt.rt_method) ->
              m.Rt.m_valid <- false;
              m.Rt.base_code <- None;
              m.Rt.opt_code <- None)
            rc.Rt.methods;
          Some (name, rc))
    (spec.Spec.diff.Diff.class_updates_closure
    @ spec.Spec.diff.Diff.deleted_classes)

let install_new_classes vm (spec : Spec.t) : (string * Rt.rt_class) list =
  let wanted =
    spec.Spec.diff.Diff.class_updates_closure
    @ spec.Spec.diff.Diff.added_classes
  in
  let classfiles =
    List.filter
      (fun (c : CF.Cls.t) -> List.mem c.CF.Cls.c_name wanted)
      spec.Spec.new_program
  in
  Classloader.install vm ~replace:true classfiles
  |> List.map (fun (rc : Rt.rt_class) -> (rc.Rt.name, rc))

(* Unchanged statics keep their values across the update; everything else
   starts at its default and is the class transformer's job.  Superseded
   classes' static slots are cleared so their referents can be
   collected. *)
let carry_over_statics vm (spec : Spec.t)
    (olds : (string * Rt.rt_class) list) (news : (string * Rt.rt_class) list)
    =
  List.iter
    (fun (name, (old_rc : Rt.rt_class)) ->
      (match List.assoc_opt name news with
      | None -> () (* deleted class *)
      | Some new_rc ->
          Array.iter
            (fun (osi : Rt.static_info) ->
              let mapped_ty = Transformers.map_old_ty spec osi.Rt.si_ty in
              Array.iter
                (fun (nsi : Rt.static_info) ->
                  if
                    String.equal osi.Rt.si_name nsi.Rt.si_name
                    && CF.Types.equal_ty mapped_ty nsi.Rt.si_ty
                  then
                    State.jtoc_set vm nsi.Rt.si_slot
                      (State.jtoc_get vm osi.Rt.si_slot))
                new_rc.Rt.static_fields)
            old_rc.Rt.static_fields);
      (* clear the superseded slots *)
      Array.iter
        (fun (osi : Rt.static_info) -> State.jtoc_set vm osi.Rt.si_slot 0)
        old_rc.Rt.static_fields)
    olds

let swap_method_bodies vm (spec : Spec.t) =
  let newp = CF.Cls.program_of_list spec.Spec.new_program in
  List.iter
    (fun (r : Diff.mref) ->
      match Rt.find_class vm.State.reg r.Diff.r_class with
      | None -> uerr "body update: class %s not loaded" r.Diff.r_class
      | Some rc -> (
          let rm =
            Array.to_seq rc.Rt.methods
            |> Seq.find (fun (m : Rt.rt_method) ->
                   String.equal m.Rt.m_name r.Diff.r_name
                   && CF.Types.equal_msig m.Rt.m_sig r.Diff.r_sig)
          in
          match
            ( rm,
              Option.bind
                (CF.Cls.find_class newp r.Diff.r_class)
                (fun c -> CF.Cls.find_method c r.Diff.r_name r.Diff.r_sig) )
          with
          | Some rm, Some md ->
              rm.Rt.bytecode <- md.CF.Cls.md_code;
              rm.Rt.max_locals <- md.CF.Cls.md_max_locals;
              rm.Rt.base_code <- None;
              rm.Rt.opt_code <- None;
              (* body updates invalidate execution profiles (paper §3.3) *)
              rm.Rt.invocations <- 0
          | _ -> uerr "body update: cannot resolve %s" (Diff.mref_to_string r)))
    spec.Spec.diff.Diff.body_updates

(* Invalidate compiled code with stale offsets: category (2) methods, plus
   any opt code that inlined a method touched by the update. *)
let invalidate_stale_code vm (r : Safepoint.restricted) : int =
  let count = ref 0 in
  Rt.iter_methods vm.State.reg (fun (m : Rt.rt_method) ->
      let stale_direct = Safepoint.IntSet.mem m.Rt.uid r.Safepoint.stale in
      let stale_inline =
        match m.Rt.opt_code with
        | Some c ->
            List.exists
              (fun u ->
                Safepoint.IntSet.mem u r.Safepoint.stale
                || Safepoint.IntSet.mem u r.Safepoint.changed)
              c.Jv_vm.Machine.inlined
        | None -> false
      in
      if stale_direct && (m.Rt.base_code <> None || m.Rt.opt_code <> None)
      then begin
        m.Rt.base_code <- None;
        m.Rt.opt_code <- None;
        incr count
      end
      else if stale_inline then begin
        m.Rt.opt_code <- None;
        incr count
      end);
  vm.State.reg.Rt.epoch <- vm.State.reg.Rt.epoch + 1;
  !count

(* --- transformer phase --------------------------------------------------- *)

type transform_ctx = {
  log : int array; (* flattened (old, new) pairs; registered as GC roots *)
  n_pairs : int;
  status : int array; (* 0 = pending, 1 = in progress, 2 = done *)
  mutable index : (int, int) Hashtbl.t; (* new addr -> pair index *)
  mutable index_gc_count : int;
  transformer_rc : Rt.rt_class;
  (* (new cid, old cid) -> jvolveObject method: the paper's suggested
     "caching the lookup" optimization for the reflective dispatch *)
  method_cache : (int * int, Rt.rt_method) Hashtbl.t;
  carrier : State.vthread; (* reused for every transformer invocation *)
  sandbox : State.sandbox; (* fuel accounting + write restriction *)
}

(* The transformer.* fault points simulate the three ways a bad
   transformer misbehaves, each driven through the real enforcement
   path rather than shortcutting to an abort: [transformer.loop] spends
   the invocation's remaining fuel so the very next instruction trips
   the budget; [transformer.throw] raises the trap a failing body
   would; [transformer.badwrite] pushes a store to a non-writable
   object (the old copy) through the sandbox's write gate. *)
let consult_transformer_faults vm (sb : State.sandbox) ~bad_target =
  (match Faults.check vm.State.faults "transformer.loop" with
  | Some _ -> sb.State.sb_steps <- sb.State.sb_fuel
  | None -> ());
  (match Faults.check vm.State.faults "transformer.throw" with
  | Some _ -> raise (Interp.Trap "injected: transformer.throw")
  | None -> ());
  match bad_target with
  | None -> () (* class transformer: no object to mis-target *)
  | Some addr -> (
      match Faults.check vm.State.faults "transformer.badwrite" with
      | Some _ ->
          let saved = sb.State.sb_guard in
          sb.State.sb_guard <- true;
          Fun.protect
            ~finally:(fun () -> sb.State.sb_guard <- saved)
            (fun () ->
              Interp.guard_write vm ~addr ~what:"putfield (injected)")
      | None -> ())

(* Classify a trapped transformer by the trap message the interpreter's
   enforcement produced, and surface the typed cause. *)
let fail_transformer vm (site : transformer_site) msg =
  (* the failure is re-reported through the typed abort below; drop the
     carrier thread's entry from the VM-wide trap log so a contained
     transformer failure does not read as an app-thread crash *)
  (match vm.State.trap_log with
  | (_, m) :: rest when String.equal m msg ->
      vm.State.trap_log <- rest;
      (* ...and from the per-epoch attribution, or a contained transformer
         failure would spend the guard window's trap budget *)
      State.unrecord_trap_count vm
  | _ -> ());
  let cause, reason =
    if String.starts_with ~prefix:"transformer fuel exhausted" msg then
      let steps =
        match vm.State.sandbox with
        | Some sb -> sb.State.sb_steps
        | None -> 0
      in
      ( C_fuel_exhausted (site, steps),
        Printf.sprintf
          "%s exhausted its fuel budget (%d steps) transforming %s"
          site.ts_method steps (site_desc site) )
    else if String.starts_with ~prefix:"sandbox:" msg then
      ( C_sandbox_violation (site, msg),
        Printf.sprintf "%s transforming %s: %s" site.ts_method
          (site_desc site) msg )
    else
      ( C_transformer_trap (site, msg),
        Printf.sprintf "transformer %s trapped on %s: %s" site.ts_method
          (site_desc site) msg )
  in
  raise (Update_failure (cause, reason))

let build_index ctx vm =
  let h = Hashtbl.create (max 16 ctx.n_pairs) in
  for i = 0 to ctx.n_pairs - 1 do
    Hashtbl.replace h (Value.to_ref ctx.log.((2 * i) + 1)) i
  done;
  ctx.index <- h;
  ctx.index_gc_count <- vm.State.heap.Heap.gc_count

let refresh_index ctx vm =
  if vm.State.heap.Heap.gc_count <> ctx.index_gc_count then build_index ctx vm

let find_transformer_method ctx ~name ~params =
  Array.to_seq ctx.transformer_rc.Rt.methods
  |> Seq.find (fun (m : Rt.rt_method) ->
         String.equal m.Rt.m_name name
         && List.length m.Rt.m_sig.CF.Types.params = List.length params
         && List.for_all2 CF.Types.equal_ty m.Rt.m_sig.CF.Types.params params)

let rec run_pair vm ctx i =
  match ctx.status.(i) with
  | 2 -> ()
  | 1 ->
      (* a transformer dereferenced a field whose transformation is already
         on the stack: an ill-defined transformer set (paper §3.4) *)
      uerr "cyclic object-transformer dependency detected; aborting update"
  | _ ->
      ctx.status.(i) <- 1;
      let old_addr = Value.to_ref ctx.log.(2 * i)
      and new_addr = Value.to_ref ctx.log.((2 * i) + 1) in
      let new_cid = Heap.class_id vm.State.heap new_addr in
      let old_cid = Heap.class_id vm.State.heap old_addr in
      let m =
        match Hashtbl.find_opt ctx.method_cache (new_cid, old_cid) with
        | Some m -> m
        | None -> (
            let new_cls = Rt.class_by_id vm.State.reg new_cid in
            let old_cls = Rt.class_by_id vm.State.reg old_cid in
            match
              find_transformer_method ctx ~name:"jvolveObject"
                ~params:
                  [
                    CF.Types.TRef new_cls.Rt.name;
                    CF.Types.TRef old_cls.Rt.name;
                  ]
            with
            | Some m ->
                Hashtbl.replace ctx.method_cache (new_cid, old_cid) m;
                m
            | None ->
                uerr "no jvolveObject(%s, %s) in transformer class"
                  new_cls.Rt.name old_cls.Rt.name)
      in
      let site =
        {
          ts_method = Rt.method_qname ctx.transformer_rc m;
          ts_class = (Rt.class_by_id vm.State.reg new_cid).Rt.name;
          ts_object = new_addr;
        }
      in
      (* reuse the carrier thread when it is free; recursive transforms
         (via the Jvolve.transform native) arrive while the carrier is
         mid-call and need their own thread *)
      let invoke m args =
        if ctx.carrier.State.frames = [] then Interp.call_on vm ctx.carrier m args
        else Interp.call_sync vm m args
      in
      let sb = ctx.sandbox in
      (* fresh fuel per invocation; writes restricted to the object set *)
      let saved_guard = sb.State.sb_guard in
      sb.State.sb_steps <- 0;
      (try
         consult_transformer_faults vm sb ~bad_target:(Some old_addr);
         sb.State.sb_guard <- true;
         ignore
           (invoke m [| Value.of_ref new_addr; Value.of_ref old_addr |]);
         sb.State.sb_guard <- saved_guard
       with
      | Interp.Sync_trap e | Interp.Trap e ->
          sb.State.sb_guard <- saved_guard;
          fail_transformer vm site e
      | e ->
          sb.State.sb_guard <- saved_guard;
          raise e);
      (* the transformer may have allocated and moved the heap *)
      refresh_index ctx vm;
      ctx.status.(i) <- 2

and force_transform vm ctx addr =
  refresh_index ctx vm;
  match Hashtbl.find_opt ctx.index addr with
  | Some i -> run_pair vm ctx i
  | None -> () (* not an object under transformation: no-op *)

(* Class transformers run with a fresh fuel budget but no write guard:
   (re)initializing statics legitimately reaches arbitrary objects. *)
let run_class_transformers vm (spec : Spec.t) ctx =
  List.iter
    (fun cname ->
      match
        find_transformer_method ctx ~name:"jvolveClass"
          ~params:[ CF.Types.TRef cname ]
      with
      | None -> uerr "no jvolveClass(%s) in transformer class" cname
      | Some m -> (
          let site =
            {
              ts_method = Rt.method_qname ctx.transformer_rc m;
              ts_class = cname;
              ts_object = 0;
            }
          in
          ctx.sandbox.State.sb_steps <- 0;
          try
            consult_transformer_faults vm ctx.sandbox ~bad_target:None;
            ignore (Interp.call_on vm ctx.carrier m [| Value.null |])
          with Interp.Sync_trap e | Interp.Trap e ->
            fail_transformer vm site e))
    spec.Spec.diff.Diff.class_updates_closure

(* --- inverse-update replay (guard revert) -------------------------------

   When a guard window trips, the revert is the inverse update applied
   through this same pipeline.  Its default transformers restore only the
   fields shared between the two layouts (copied from the pristine copies
   of the version being backed out, so in-window mutations survive).
   Fields the forward update *dropped* exist in neither that layout nor
   its copies — their pre-update values live only in the retained forward
   update log.  This step replays them: for every forward pair, copy
   exactly the dropped fields from the forward old copy into the restored
   object.

   The retained log's slots were rewritten by the revert's transforming
   collection: even slots now hold the (forwarded) pre-update copies, odd
   slots the restored new-layout objects — references to the backed-out
   objects were redirected to their replacements like any other root.
   Reference-typed dropped fields are sound for the same reason: the old
   copies were scanned as live objects through both collections, so their
   referents are current addresses of the restored versions. *)
let replay_retained vm (spec : Spec.t) (fwd_log : int array) : int =
  (* [spec] is the inverse spec: its [version_tag] renamed the version
     being backed out aside, so the forward-new layout of class N is the
     runtime class [v<tag>_N] *)
  let heap = vm.State.heap in
  let reg = vm.State.reg in
  let replayed = ref 0 in
  let shared_with_forward (fwd_rc : Rt.rt_class) (nfi : Rt.field_info) =
    Array.exists
      (fun (ffi : Rt.field_info) ->
        String.equal ffi.Rt.fi_name nfi.Rt.fi_name
        && CF.Types.equal_ty
             (Transformers.map_old_ty spec ffi.Rt.fi_ty)
             nfi.Rt.fi_ty)
      fwd_rc.Rt.instance_fields
  in
  for i = 0 to (Array.length fwd_log / 2) - 1 do
    let a = Value.to_ref fwd_log.(2 * i) (* pre-update pristine copy *)
    and c = Value.to_ref fwd_log.((2 * i) + 1) (* restored object *) in
    let c_cls = Rt.class_by_id reg (Heap.class_id heap c) in
    let a_cls = Rt.class_by_id reg (Heap.class_id heap a) in
    if
      c_cls.Rt.valid
      && List.mem c_cls.Rt.name spec.Spec.diff.Diff.class_updates_closure
      (* a custom inverse transformer recomputes the old representation
         from *live* state (so in-window writes survive); replaying the
         pre-update copies over it would roll those writes back *)
      && not (List.mem_assoc c_cls.Rt.name spec.Spec.object_overrides)
    then
      match
        Rt.find_class reg
          (Spec.old_class_name ~tag:spec.Spec.version_tag c_cls.Rt.name)
      with
      | None -> () (* forward layout gone: nothing was dropped *)
      | Some fwd_rc ->
          Array.iter
            (fun (nfi : Rt.field_info) ->
              if not (shared_with_forward fwd_rc nfi) then
                (* dropped by the forward update: restore from the
                   pre-update copy (same source layout as [c_cls]) *)
                Array.iter
                  (fun (ofi : Rt.field_info) ->
                    if
                      String.equal ofi.Rt.fi_name nfi.Rt.fi_name
                      && CF.Types.equal_ty ofi.Rt.fi_ty nfi.Rt.fi_ty
                    then begin
                      Heap.set heap ~addr:c ~off:nfi.Rt.fi_offset
                        (Heap.get heap ~addr:a ~off:ofi.Rt.fi_offset);
                      incr replayed
                    end)
                  a_cls.Rt.instance_fields)
            c_cls.Rt.instance_fields
  done;
  !replayed

let unload_transformer vm (rc : Rt.rt_class) =
  Hashtbl.remove vm.State.reg.Rt.by_name rc.Rt.name;
  rc.Rt.valid <- false;
  Array.iter
    (fun (m : Rt.rt_method) ->
      m.Rt.m_valid <- false;
      m.Rt.base_code <- None;
      m.Rt.opt_code <- None)
    rc.Rt.methods

(* --- the driver ----------------------------------------------------------- *)

(* What OSR mutates per frame, for restoration when a later frame's
   replacement (or an injected fault) aborts the update. *)
type frame_snap = {
  fs_code : Jv_vm.Machine.compiled;
  fs_pc : int;
  fs_locals : int array;
  fs_ostack : int array;
  fs_sp : int;
}

let snap_frame (fr : State.frame) =
  {
    fs_code = fr.State.code;
    fs_pc = fr.State.pc;
    fs_locals = Array.copy fr.State.locals;
    fs_ostack = Array.copy fr.State.ostack;
    fs_sp = fr.State.sp;
  }

let restore_frame (fr : State.frame) s =
  fr.State.code <- s.fs_code;
  fr.State.pc <- s.fs_pc;
  fr.State.locals <- s.fs_locals;
  fr.State.ostack <- s.fs_ostack;
  fr.State.sp <- s.fs_sp

(* The whole installation runs inside a [Txn]: any failure in the load /
   GC / transform / OSR phases — including the armed fault plan's
   [updater.*] injection points — rolls the VM back to the pre-update
   snapshot and reports a typed abort instead of leaving a half-installed
   class table (the paper's all-or-nothing claim, §3.3-3.4).

   Step order differs from the paper's presentation in one way: OSR runs
   {e last}, after the transformer phase.  The world is stopped either
   way, so nothing observes the difference — but every failure before
   OSR then needs no frame surgery to undo, and an OSR failure itself
   restores the frames it touched from snapshots. *)
let apply ?(retain_log = false) ?replay vm (p : Transformers.prepared)
    ~(restricted : Safepoint.restricted)
    ~(osr_frames : State.frame list) : (timings, abort) result =
  let spec = p.Transformers.p_spec in
  let faults = vm.State.faults in
  let obs = vm.State.obs in
  let t0 = now () in
  let txn = Txn.capture vm in
  let phase = ref P_load in
  let update_log = ref [||] in
  let frame_snaps = ref [] in
  let run () =
    (* a guard-window revert: give the chaos plan its deterministic shot
       at the revert path itself (a fire rolls the revert back — the VM
       stays on the version being backed out, heap intact) *)
    if replay <> None then Faults.point faults "guard.revert";
    (* 1-3: metadata installation *)
    let olds = rename_old_classes vm spec in
    let news = install_new_classes vm spec in
    carry_over_statics vm spec olds news;
    swap_method_bodies vm spec;
    let invalidated = invalidate_stale_code vm restricted in
    Faults.point faults "updater.load";
    (* static initializers of brand-new classes *)
    List.iter
      (fun name ->
        match List.assoc_opt name news with
        | Some rc -> (
            try Classloader.run_clinit vm rc
            with Interp.Sync_trap e -> uerr "<clinit> of %s trapped: %s" name e)
        | None -> ())
      spec.Spec.diff.Diff.added_classes;
    (* install the transformer class *)
    let transformer_rc =
      match
        Classloader.install vm ~replace:true [ p.Transformers.p_transformer ]
      with
      | [ rc ] -> rc
      | _ -> uerr "failed to install transformer class"
    in
    let t_load = now () in
    Jv_obs.Obs.incr ~by:invalidated obs "core.update.invalidated_methods";
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.metadata.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_load -. t0) *. 1000.0));
        ("invalidated", Jv_obs.Obs.Int invalidated);
        ("osr_frames", Jv_obs.Obs.Int (List.length osr_frames));
      ];
    (* 5: the transforming collection *)
    phase := P_gc;
    Faults.point faults "updater.gc";
    let plan = Hashtbl.create 16 in
    List.iter
      (fun (name, (old_rc : Rt.rt_class)) ->
        match List.assoc_opt name news with
        | Some new_rc -> Hashtbl.replace plan old_rc.Rt.cid new_rc.Rt.cid
        | None -> () (* deleted classes: instances survive untransformed *))
      olds;
    let gcres = Gc.collect ~plan vm in
    update_log := gcres.Gc.update_log;
    let t_gc = now () in
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.gc.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_gc -. t_load) *. 1000.0));
        ("transformed", Jv_obs.Obs.Int gcres.Gc.transformed_objects);
        ("copied", Jv_obs.Obs.Int gcres.Gc.copied_objects);
      ];
    (* 6: transformers, sandboxed (fuel + write restriction) *)
    phase := P_transform;
    let sb =
      State.sandbox_create vm ~fuel:vm.State.config.transformer_fuel
    in
    let ctx =
      {
        log = gcres.Gc.update_log;
        n_pairs = Array.length gcres.Gc.update_log / 2;
        status = Array.make (max 1 (Array.length gcres.Gc.update_log / 2)) 0;
        index = Hashtbl.create 16;
        index_gc_count = -1;
        transformer_rc;
        method_cache = Hashtbl.create 8;
        carrier = Interp.make_carrier vm;
        sandbox = sb;
      }
    in
    vm.State.extra_roots <- ctx.log :: vm.State.extra_roots;
    (* every new-layout object in the log is a legitimate write target *)
    for i = 0 to ctx.n_pairs - 1 do
      State.sandbox_allow vm sb (Value.to_ref ctx.log.((2 * i) + 1))
    done;
    vm.State.force_transform <-
      Some (fun vm addr -> force_transform vm ctx addr);
    let finish_transformers ~keep_log () =
      State.sandbox_dispose vm sb;
      vm.State.force_transform <- None;
      Interp.release_carrier vm ctx.carrier;
      (* [keep_log]: a guard window will retain the log past commit, so
         it must stay rooted (the failure path always unroots) *)
      if not keep_log then
        vm.State.extra_roots <-
          List.filter (fun a -> a != ctx.log) vm.State.extra_roots
    in
    (try
       Faults.point faults "updater.transform";
       build_index ctx vm;
       run_class_transformers vm spec ctx;
       for i = 0 to ctx.n_pairs - 1 do
         Faults.point faults "updater.transform";
         run_pair vm ctx i
       done;
       finish_transformers ~keep_log:retain_log ()
     with e ->
       finish_transformers ~keep_log:false ();
       raise e);
    (* 7: drop the transformer class; the log is already unreachable *)
    unload_transformer vm transformer_rc;
    (* 7.25: guard revert only — restore the fields the forward update
       dropped from the retained forward log (see [replay_retained]) *)
    (match replay with
    | Some fwd_log when Array.length fwd_log > 1 ->
        let n = replay_retained vm spec fwd_log in
        Jv_obs.Obs.incr ~by:n obs "core.guard.replayed_fields";
        Jv_obs.Obs.emit obs ~scope:"core.update" "phase.replay.done"
          [
            ("fields", Jv_obs.Obs.Int n);
            ("pairs", Jv_obs.Obs.Int (Array.length fwd_log / 2));
          ]
    | _ -> ());
    let t_transform = now () in
    Jv_obs.Obs.observe_int obs "core.update.transformer_steps"
      sb.State.sb_total_steps;
    Jv_obs.Obs.emit obs ~scope:"core.update" "phase.transform.done"
      [
        ("ms", Jv_obs.Obs.Float ((t_transform -. t_gc) *. 1000.0));
        ("pairs", Jv_obs.Obs.Int ctx.n_pairs);
        ("steps", Jv_obs.Obs.Int sb.State.sb_total_steps);
      ];
    (* 7.5: the post-transform heap integrity walk.  The old copies in
       the update log are the one place stale-class instances may
       legally survive. *)
    if vm.State.config.verify_heap then begin
      phase := P_verify;
      let old_copies = Hashtbl.create (max 16 ctx.n_pairs) in
      for i = 0 to ctx.n_pairs - 1 do
        Hashtbl.replace old_copies (Value.to_ref ctx.log.(2 * i)) ()
      done;
      let rep =
        Jv_vm.Heapverify.run ~stale_ok:(Hashtbl.mem old_copies) vm
      in
      Jv_obs.Obs.emit obs ~scope:"core.update" "phase.verify.done"
        [
          ("ms", Jv_obs.Obs.Float rep.Jv_vm.Heapverify.hv_ms);
          ("objects", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_objects);
          ("issues", Jv_obs.Obs.Int rep.Jv_vm.Heapverify.hv_total_issues);
        ];
      if not rep.Jv_vm.Heapverify.hv_ok then begin
        let msgs =
          List.map Jv_vm.Heapverify.issue_to_string
            rep.Jv_vm.Heapverify.hv_issues
        in
        raise
          (Update_failure
             ( C_heap_verify msgs,
               Printf.sprintf "heap verify found %d issue(s): %s"
                 rep.Jv_vm.Heapverify.hv_total_issues
                 (match msgs with m :: _ -> m | [] -> "?") ))
      end
    end;
    let t_verify = now () in
    (* 4 (run last, see above): OSR the parked category-(2) frames *)
    phase := P_osr;
    frame_snaps := List.map snap_frame osr_frames;
    Faults.point faults "updater.osr";
    List.iter
      (fun fr ->
        try Osr.replace_frame vm fr
        with Osr.Osr_failed e -> uerr "OSR failed: %s" e)
      osr_frames;
    let t_end = now () in
    {
      u_load_ms = ((t_load -. t0) +. (t_end -. t_verify)) *. 1000.0;
      u_gc_ms = (t_gc -. t_load) *. 1000.0;
      u_transform_ms = (t_transform -. t_gc) *. 1000.0;
      u_verify_ms = (t_verify -. t_transform) *. 1000.0;
      u_total_ms = (t_end -. t0) *. 1000.0;
      u_osr = List.length osr_frames;
      u_invalidated_methods = invalidated;
      u_transformed_objects = gcres.Gc.transformed_objects;
      u_copied_objects = gcres.Gc.copied_objects;
    }
  in
  match run () with
  | timings ->
      if retain_log then Txn.commit_retaining vm txn ~update_log:!update_log
      else Txn.commit vm txn;
      Ok timings
  | exception e ->
      let reason, cause, killed_at =
        match e with
        | Update_error m -> (m, C_generic, None)
        | Update_failure (cause, m) -> (m, cause, None)
        | Faults.Injected pt -> ("injected fault at " ^ pt, C_injected pt, None)
        | Faults.Killed pt -> ("VM killed at " ^ pt, C_injected pt, Some pt)
        | Interp.Sync_trap m -> ("transformer trap: " ^ m, C_generic, None)
        | Jv_vm.Jit.Compile_error m -> ("jit: " ^ m, C_generic, None)
        | Classloader.Load_error errs ->
            ("load: " ^ String.concat "; " errs, C_generic, None)
        | e ->
            (* unrecoverable VM conditions (e.g. to-space overflow
               mid-collection) are outside the fault model *)
            Txn.commit vm txn;
            raise e
      in
      let rt0 = now () in
      (* with [retain_log], the log stayed rooted past the transform phase;
         a verify/OSR failure must unroot it before the rollback's redirect
         collection, or the redirect would rewrite the log's own slots *)
      if retain_log && Array.length !update_log > 0 then
        vm.State.extra_roots <-
          List.filter (fun a -> a != !update_log) vm.State.extra_roots;
      (match !frame_snaps with
      | [] -> ()
      | snaps -> List.iter2 restore_frame osr_frames snaps);
      let rolled_back, rollback_note =
        match Txn.rollback ~update_log:!update_log vm txn with
        | () -> (
            match Txn.audit vm txn with
            | Ok () -> (true, "")
            | Error why -> (false, "; audit: " ^ why))
        | exception ex ->
            (false, "; rollback raised: " ^ Printexc.to_string ex)
      in
      (* Re-verify the restored heap: a rollback that leaves ill-typed
         references standing is no rollback at all — reporting it as
         unreliable is what routes the instance into the orchestrator's
         quarantine policy. *)
      let rolled_back, rollback_note =
        if rolled_back && vm.State.config.verify_heap then begin
          let rep = Jv_vm.Heapverify.run vm in
          if rep.Jv_vm.Heapverify.hv_ok then (rolled_back, rollback_note)
          else begin
            Jv_obs.Obs.incr obs "core.update.post_rollback_verify_failures";
            ( false,
              rollback_note
              ^ Printf.sprintf "; post-rollback heap verify found %d issue(s): %s"
                  rep.Jv_vm.Heapverify.hv_total_issues
                  (match rep.Jv_vm.Heapverify.hv_issues with
                  | i :: _ -> Jv_vm.Heapverify.issue_to_string i
                  | [] -> "?") )
          end
        end
        else (rolled_back, rollback_note)
      in
      (match killed_at with
      | Some pt -> vm.State.killed <- Some pt
      | None -> ());
      let rollback_ms = (now () -. rt0) *. 1000.0 in
      Jv_obs.Obs.incr obs "core.update.rollbacks";
      Jv_obs.Obs.observe obs "core.update.rollback_ms" rollback_ms;
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.rollback"
        [
          ("phase", Jv_obs.Obs.Str (phase_to_string !phase));
          ("reason", Jv_obs.Obs.Str reason);
          ("ok", Jv_obs.Obs.Str (string_of_bool rolled_back));
          ("ms", Jv_obs.Obs.Float rollback_ms);
        ];
      Error
        {
          a_phase = !phase;
          a_reason = reason ^ rollback_note;
          a_cause = cause;
          a_rolled_back = rolled_back;
          a_rollback_ms = rollback_ms;
        }
