(* The Jvolve facade: the public API of the DSU system.

   Usage, mirroring the paper's Figure 1 workflow:
   {[
     (* offline: the UPT *)
     let spec = Jvolve.Spec.make ~version_tag:"131"
                  ~old_program ~new_program () in
     let prepared = Jvolve.Transformers.prepare spec in
     (* online: signal the running VM *)
     let handle = Jvolve.request vm prepared in
     (* ... keep running the scheduler; poll [handle] ... *)
   ]}

   [request] installs the DSU attempt hook; the scheduler invokes it at
   safe points (every round, and immediately when a return barrier fires).
   Each attempt re-checks the stacks; if restricted methods are on stack it
   installs return barriers and waits, up to a timeout, after which the
   update aborts (paper: 15 seconds, configurable). *)

module State = Jv_vm.State

type outcome =
  | Pending
  | Applied of Updater.timings
  | Aborted of Updater.abort

type handle = {
  h_prepared : Transformers.prepared;
  h_restricted : Safepoint.restricted;
  h_requested_at : int; (* tick *)
  h_deadline : int; (* tick *)
  h_use_osr : bool; (* ablation: lift category-2 frames by OSR *)
  h_use_barriers : bool; (* ablation: install return barriers *)
  mutable h_outcome : outcome;
  mutable h_attempts : int;
  mutable h_barriers_installed : int;
  mutable h_blockers : string; (* last observed blocking methods *)
  mutable h_sync_ms : float; (* stack-scan time of the successful attempt *)
}

exception Busy

let default_timeout_rounds = 1500

let version_tag h = h.h_prepared.Transformers.p_spec.Spec.version_tag

(* Record the resolved attempt into the VM's sink: the Fig. 5 numbers
   (pause, stack-scan, per-phase times) live in these histograms, and the
   applied/aborted event closes the flight-recorder timeline. *)
let record_outcome vm h outcome =
  let obs = vm.State.obs in
  let waited = vm.State.ticks - h.h_requested_at in
  match outcome with
  | Pending -> ()
  | Applied (t : Updater.timings) ->
      Jv_obs.Obs.incr obs "core.update.applied";
      Jv_obs.Obs.observe obs "core.update.pause_ms" t.Updater.u_total_ms;
      Jv_obs.Obs.observe obs "core.update.stack_scan_ms" h.h_sync_ms;
      Jv_obs.Obs.observe obs "core.update.load_ms" t.Updater.u_load_ms;
      Jv_obs.Obs.observe obs "core.update.gc_ms" t.Updater.u_gc_ms;
      Jv_obs.Obs.observe obs "core.update.transform_ms"
        t.Updater.u_transform_ms;
      Jv_obs.Obs.observe obs "core.update.verify_ms" t.Updater.u_verify_ms;
      Jv_obs.Obs.observe_int obs "core.update.wait_rounds" waited;
      Jv_obs.Obs.observe_int obs "core.update.osr_frames" t.Updater.u_osr;
      Jv_obs.Obs.observe_int obs "core.update.transformed_objects"
        t.Updater.u_transformed_objects;
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.applied"
        [
          ("version", Jv_obs.Obs.Str (version_tag h));
          ("pause_ms", Jv_obs.Obs.Float t.Updater.u_total_ms);
          ("stack_scan_ms", Jv_obs.Obs.Float h.h_sync_ms);
          ("waited_rounds", Jv_obs.Obs.Int waited);
          ("attempts", Jv_obs.Obs.Int h.h_attempts);
          ("osr", Jv_obs.Obs.Int t.Updater.u_osr);
          ("transformed", Jv_obs.Obs.Int t.Updater.u_transformed_objects);
        ]
  | Aborted (a : Updater.abort) ->
      Jv_obs.Obs.incr obs "core.update.aborted";
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.aborted"
        [
          ("version", Jv_obs.Obs.Str (version_tag h));
          ("phase", Jv_obs.Obs.Str (Updater.phase_to_string a.Updater.a_phase));
          ("reason", Jv_obs.Obs.Str a.Updater.a_reason);
          ("rolled_back",
           Jv_obs.Obs.Str (string_of_bool a.Updater.a_rolled_back));
          ("waited_rounds", Jv_obs.Obs.Int waited);
          ("attempts", Jv_obs.Obs.Int h.h_attempts);
        ]

let finish vm h outcome =
  h.h_outcome <- outcome;
  Safepoint.clear_barriers vm;
  Safepoint.release_parked vm;
  vm.State.dsu_attempt <- None;
  record_outcome vm h outcome

let attempt h vm =
  match h.h_outcome with
  | Applied _ | Aborted _ -> vm.State.dsu_attempt <- None
  | Pending -> (
      h.h_attempts <- h.h_attempts + 1;
      Jv_obs.Obs.incr vm.State.obs "core.update.attempts";
      let t0 = Unix.gettimeofday () in
      match Safepoint.check ~allow_osr:h.h_use_osr vm h.h_restricted with
      | Safepoint.Safe osr_frames -> (
          h.h_sync_ms <- (Unix.gettimeofday () -. t0) *. 1000.0;
          match
            Updater.apply vm h.h_prepared ~restricted:h.h_restricted
              ~osr_frames
          with
          | Ok timings -> finish vm h (Applied timings)
          | Error a -> finish vm h (Aborted a))
      | Safepoint.Blocked stuck ->
          let blockers = Safepoint.describe_blockers vm stuck in
          if blockers <> h.h_blockers then
            Jv_obs.Obs.emit vm.State.obs ~scope:"core.update" "update.blocked"
              [
                ("version", Jv_obs.Obs.Str (version_tag h));
                ("blockers", Jv_obs.Obs.Str blockers);
              ];
          h.h_blockers <- blockers;
          if vm.State.ticks > h.h_deadline then
            finish vm h
              (Aborted
                 (Updater.sync_abort
                    (Printf.sprintf
                       "timeout: restricted methods still on stack (%s)"
                       h.h_blockers)))
          else if h.h_use_barriers then begin
            let installed = Safepoint.install_barriers stuck in
            if installed > 0 then begin
              Jv_obs.Obs.incr ~by:installed vm.State.obs
                "core.update.barriers_installed";
              Jv_obs.Obs.emit vm.State.obs ~scope:"core.update"
                "update.barriers"
                [
                  ("version", Jv_obs.Obs.Str (version_tag h));
                  ("installed", Jv_obs.Obs.Int installed);
                ]
            end;
            h.h_barriers_installed <- h.h_barriers_installed + installed;
            (* threads parked at a fired barrier that still have deeper
               restricted frames must run on to clear them *)
            Safepoint.unpark_stuck stuck
          end)

(* Signal the VM that an update is available.  The update is applied by the
   scheduler at the next DSU safe point.  Raises [Busy] if another update
   is already pending.

   Admission control runs first (unless [admit] is false): a rejected
   update resolves immediately as [Aborted] in phase [P_admit] — the
   attempt hook is never installed, so the VM never pauses. *)
let request ?(timeout_rounds = default_timeout_rounds) ?(use_osr = true)
    ?(use_barriers = true) ?(admit = true) ?(admit_strict = false) vm
    (prepared : Transformers.prepared) : handle =
  if vm.State.dsu_attempt <> None then raise Busy;
  let h =
    {
      h_prepared = prepared;
      h_restricted = Safepoint.compute vm prepared.Transformers.p_spec;
      h_requested_at = vm.State.ticks;
      h_deadline = vm.State.ticks + timeout_rounds;
      h_use_osr = use_osr;
      h_use_barriers = use_barriers;
      h_outcome = Pending;
      h_attempts = 0;
      h_barriers_installed = 0;
      h_blockers = "";
      h_sync_ms = 0.0;
    }
  in
  Jv_obs.Obs.incr vm.State.obs "core.update.requests";
  Jv_obs.Obs.emit vm.State.obs ~scope:"core.update" "update.requested"
    [
      ( "version",
        Jv_obs.Obs.Str prepared.Transformers.p_spec.Spec.version_tag );
      ("timeout_rounds", Jv_obs.Obs.Int timeout_rounds);
    ];
  let rejected =
    if not admit then []
    else begin
      let rep = Admission.review prepared in
      let obs = vm.State.obs in
      Jv_obs.Obs.incr obs "core.admission.reviews";
      Jv_obs.Obs.observe obs "core.admission.ms" rep.Admission.a_ms;
      let warns =
        List.length
          (List.filter
             (fun v -> v.Admission.v_severity = Admission.Warn)
             rep.Admission.a_verdicts)
      in
      Jv_obs.Obs.incr ~by:warns obs "core.admission.warns";
      let rej = Admission.rejections ~strict:admit_strict rep in
      Jv_obs.Obs.incr ~by:(List.length rej) obs "core.admission.rejections";
      if rej <> [] then
        Jv_obs.Obs.emit obs ~scope:"core.admission" "admission.rejected"
          [
            ( "version",
              Jv_obs.Obs.Str prepared.Transformers.p_spec.Spec.version_tag );
            ("verdicts", Jv_obs.Obs.Str (String.concat "; " rej));
            ("strict", Jv_obs.Obs.Str (string_of_bool admit_strict));
          ];
      rej
    end
  in
  (match rejected with
  | [] -> vm.State.dsu_attempt <- Some (attempt h)
  | reasons ->
      h.h_outcome <- Aborted (Updater.admission_abort reasons);
      record_outcome vm h h.h_outcome);
  h

(* Convenience: prepare from a spec and request in one step. *)
let request_spec ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
    vm (spec : Spec.t) : handle =
  request ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict vm
    (Transformers.prepare spec)

(* Convenience for tests and benchmarks: request the update and drive the
   scheduler until it resolves (or [max_rounds] elapses). *)
let update_now ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
    ?(max_rounds = 10_000) vm spec : handle =
  let h =
    request_spec ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
      vm spec
  in
  let n = ref 0 in
  while h.h_outcome = Pending && !n < max_rounds do
    Jv_vm.Sched.round vm;
    incr n
  done;
  h

let resolved h =
  match h.h_outcome with Pending -> false | Applied _ | Aborted _ -> true

let succeeded h =
  match h.h_outcome with Applied _ -> true | Pending | Aborted _ -> false

(* A plain-data snapshot of one update attempt, for orchestrators that
   aggregate outcomes across a fleet of VMs. *)
type attempt_report = {
  ar_outcome : outcome;
  ar_attempts : int;
  ar_barriers_installed : int;
  ar_sync_ms : float;
  ar_blockers : string;
  ar_waited_rounds : int; (* ticks from request to resolution (or so far) *)
}

let report vm h =
  {
    ar_outcome = h.h_outcome;
    ar_attempts = h.h_attempts;
    ar_barriers_installed = h.h_barriers_installed;
    ar_sync_ms = h.h_sync_ms;
    ar_blockers = h.h_blockers;
    ar_waited_rounds = vm.State.ticks - h.h_requested_at;
  }

let outcome_to_string = function
  | Pending -> "pending"
  | Applied t ->
      Printf.sprintf
        "applied (load %.2fms, gc %.2fms, transform %.2fms, total %.2fms, \
         %d objects transformed, %d OSRs)"
        t.Updater.u_load_ms t.Updater.u_gc_ms t.Updater.u_transform_ms
        t.Updater.u_total_ms t.Updater.u_transformed_objects t.Updater.u_osr
  | Aborted a -> "aborted: " ^ Updater.abort_to_string a
