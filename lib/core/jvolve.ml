(* The Jvolve facade: the public API of the DSU system.

   Usage, mirroring the paper's Figure 1 workflow:
   {[
     (* offline: the UPT *)
     let spec = Jvolve.Spec.make ~version_tag:"131"
                  ~old_program ~new_program () in
     let prepared = Jvolve.Transformers.prepare spec in
     (* online: signal the running VM *)
     let handle = Jvolve.request vm prepared in
     (* ... keep running the scheduler; poll [handle] ... *)
   ]}

   [request] installs the DSU attempt hook; the scheduler invokes it at
   safe points (every round, and immediately when a return barrier fires).
   Each attempt re-checks the stacks; if restricted methods are on stack it
   installs return barriers and waits, up to a timeout, after which the
   update aborts (paper: 15 seconds, configurable).

   Guarded commits: with [?guard] set, a successful apply commits through
   [Txn.commit_retaining] and opens a [Guard] window — the scheduler then
   drives [Guard.tick] once per round via the [State.guard_tick] hook.  A
   clean close releases the retained update log; a trip launches the
   inverse update ([Spec.inverse]) through this same attempt machinery,
   replaying the retained log, and flips the original handle's outcome to
   [Reverted].  A failure *during* the revert rolls forward to [Aborted]
   in phase [P_guard] (the revert's own transaction rolled the VM back to
   the new version, which keeps running). *)

module State = Jv_vm.State

type outcome =
  | Pending
  | Applied of Updater.timings
  | Reverted of Guard.verdict
  | Aborted of Updater.abort

type handle = {
  h_prepared : Transformers.prepared;
  h_restricted : Safepoint.restricted;
  h_requested_at : int; (* tick *)
  h_deadline : int; (* tick *)
  h_timeout_rounds : int;
  h_use_osr : bool; (* ablation: lift category-2 frames by OSR *)
  h_use_barriers : bool; (* ablation: install return barriers *)
  h_guard : Guard.config option; (* watch the commit, revert on trip *)
  h_revert_of : (handle * Guard.verdict) option;
      (* this handle IS the guard revert of another update *)
  mutable h_outcome : outcome;
  mutable h_attempts : int;
  mutable h_barriers_installed : int;
  mutable h_blockers : string; (* last observed blocking methods *)
  mutable h_stuck : Safepoint.blocker list; (* structured blocker list *)
  mutable h_sync_ms : float; (* stack-scan time of the successful attempt *)
  mutable h_guard_state : Guard.t option; (* open window, if any *)
  mutable h_guard_busy : bool; (* window open or revert in flight *)
}

exception Busy

let default_timeout_rounds = 1500

let version_tag h = h.h_prepared.Transformers.p_spec.Spec.version_tag

(* Record the resolved attempt into the VM's sink: the Fig. 5 numbers
   (pause, stack-scan, per-phase times) live in these histograms, and the
   applied/aborted event closes the flight-recorder timeline. *)
let record_outcome vm h outcome =
  let obs = vm.State.obs in
  let waited = vm.State.ticks - h.h_requested_at in
  match outcome with
  | Pending -> ()
  | Applied (t : Updater.timings) ->
      Jv_obs.Obs.incr obs "core.update.applied";
      Jv_obs.Obs.observe obs "core.update.pause_ms" t.Updater.u_total_ms;
      Jv_obs.Obs.observe obs "core.update.stack_scan_ms" h.h_sync_ms;
      Jv_obs.Obs.observe obs "core.update.load_ms" t.Updater.u_load_ms;
      Jv_obs.Obs.observe obs "core.update.gc_ms" t.Updater.u_gc_ms;
      Jv_obs.Obs.observe obs "core.update.transform_ms"
        t.Updater.u_transform_ms;
      Jv_obs.Obs.observe obs "core.update.verify_ms" t.Updater.u_verify_ms;
      Jv_obs.Obs.observe_int obs "core.update.wait_rounds" waited;
      Jv_obs.Obs.observe_int obs "core.update.osr_frames" t.Updater.u_osr;
      Jv_obs.Obs.observe_int obs "core.update.transformed_objects"
        t.Updater.u_transformed_objects;
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.applied"
        [
          ("version", Jv_obs.Obs.Str (version_tag h));
          ("pause_ms", Jv_obs.Obs.Float t.Updater.u_total_ms);
          ("stack_scan_ms", Jv_obs.Obs.Float h.h_sync_ms);
          ("waited_rounds", Jv_obs.Obs.Int waited);
          ("attempts", Jv_obs.Obs.Int h.h_attempts);
          ("osr", Jv_obs.Obs.Int t.Updater.u_osr);
          ("transformed", Jv_obs.Obs.Int t.Updater.u_transformed_objects);
        ]
  | Reverted (v : Guard.verdict) ->
      Jv_obs.Obs.incr obs "core.update.reverted";
      Jv_obs.Obs.observe obs "core.guard.revert_ms" v.Guard.v_revert_ms;
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.reverted"
        [
          ("version", Jv_obs.Obs.Str (version_tag h));
          ("signal", Jv_obs.Obs.Str (Guard.signal_to_string v.Guard.v_signal));
          ("detail", Jv_obs.Obs.Str v.Guard.v_detail);
          ("window_round", Jv_obs.Obs.Int v.Guard.v_round);
          ("revert_ms", Jv_obs.Obs.Float v.Guard.v_revert_ms);
        ]
  | Aborted (a : Updater.abort) ->
      Jv_obs.Obs.incr obs "core.update.aborted";
      Jv_obs.Obs.emit obs ~scope:"core.update" "update.aborted"
        [
          ("version", Jv_obs.Obs.Str (version_tag h));
          ("phase", Jv_obs.Obs.Str (Updater.phase_to_string a.Updater.a_phase));
          ("reason", Jv_obs.Obs.Str a.Updater.a_reason);
          ("rolled_back",
           Jv_obs.Obs.Str (string_of_bool a.Updater.a_rolled_back));
          ("waited_rounds", Jv_obs.Obs.Int waited);
          ("attempts", Jv_obs.Obs.Int h.h_attempts);
        ]

let finish vm h outcome =
  h.h_outcome <- outcome;
  Safepoint.clear_barriers vm;
  Safepoint.release_parked vm;
  vm.State.dsu_attempt <- None;
  record_outcome vm h outcome

(* The guard cycle resolved against the original update's handle: a trip
   whose revert failed rolls forward to a typed [P_guard] abort — the
   revert's transaction already restored the NEW version, which keeps
   running. *)
let guard_abort vm (orig : handle) (v : Guard.verdict) ~rolled_back
    ~rollback_ms reason =
  orig.h_guard_busy <- false;
  Txn.release_retained vm;
  let a =
    {
      Updater.a_phase = Updater.P_guard;
      a_reason = Guard.verdict_to_string v ^ "; " ^ reason;
      a_cause = Updater.C_generic;
      a_rolled_back = rolled_back;
      a_rollback_ms = rollback_ms;
    }
  in
  orig.h_outcome <- Aborted a;
  record_outcome vm orig orig.h_outcome

(* The revert applied: the original update is now [Reverted]. *)
let guard_reverted vm (orig : handle) (v : Guard.verdict)
    (t : Updater.timings) =
  orig.h_guard_busy <- false;
  Txn.release_retained vm;
  v.Guard.v_revert_ms <- t.Updater.u_total_ms;
  orig.h_outcome <- Reverted v;
  record_outcome vm orig orig.h_outcome

let rec attempt h vm =
  match h.h_outcome with
  | Applied _ | Reverted _ | Aborted _ -> vm.State.dsu_attempt <- None
  | Pending -> (
      h.h_attempts <- h.h_attempts + 1;
      Jv_obs.Obs.incr vm.State.obs "core.update.attempts";
      (* per attempt: the restricted-set size the safe-point check feeds
         on (post con-freeness subtraction), for --metrics and table1 *)
      Jv_obs.Obs.set_gauge vm.State.obs "core.restricted_set.size"
        (float_of_int
           (Safepoint.IntSet.cardinal h.h_restricted.Safepoint.changed
           + Safepoint.IntSet.cardinal h.h_restricted.Safepoint.stale));
      let t0 = Unix.gettimeofday () in
      match Safepoint.check ~allow_osr:h.h_use_osr vm h.h_restricted with
      | Safepoint.Safe osr_frames -> (
          h.h_sync_ms <- (Unix.gettimeofday () -. t0) *. 1000.0;
          (* time-to-safe-point, in scheduler rounds since the request *)
          Jv_obs.Obs.observe_int vm.State.obs "core.safepoint.rounds"
            (vm.State.ticks - h.h_requested_at);
          let replay =
            match h.h_revert_of with
            | Some _ -> vm.State.guard_retained
            | None -> None
          in
          match
            Updater.apply
              ~retain_log:(h.h_guard <> None)
              ?replay vm h.h_prepared ~restricted:h.h_restricted ~osr_frames
          with
          | Ok timings -> (
              finish vm h (Applied timings);
              match h.h_revert_of with
              | Some (orig, v) -> guard_reverted vm orig v timings
              | None -> open_guard vm h)
          | Error a -> (
              finish vm h (Aborted a);
              match h.h_revert_of with
              | Some (orig, v) ->
                  guard_abort vm orig v ~rolled_back:a.Updater.a_rolled_back
                    ~rollback_ms:a.Updater.a_rollback_ms
                    (Printf.sprintf "revert failed [%s]: %s"
                       (Updater.phase_to_string a.Updater.a_phase)
                       a.Updater.a_reason)
              | None -> ()))
      | Safepoint.Blocked stuck ->
          h.h_stuck <- Safepoint.blocker_list vm h.h_restricted stuck;
          let blockers = Safepoint.describe_blockers vm h.h_restricted stuck in
          if blockers <> h.h_blockers then
            Jv_obs.Obs.emit vm.State.obs ~scope:"core.update" "update.blocked"
              [
                ("version", Jv_obs.Obs.Str (version_tag h));
                ("blockers", Jv_obs.Obs.Str blockers);
              ];
          h.h_blockers <- blockers;
          if vm.State.ticks > h.h_deadline then begin
            (* name the culprit, not just "timeout" (starvation diag) *)
            let reason =
              match h.h_stuck with
              | [] -> "timeout: restricted methods still on stack"
              | b :: rest ->
                  Printf.sprintf
                    "timeout: thread %d blocked the DSU safe point in \
                     restricted frame %s%s%s"
                    b.Safepoint.b_tid b.Safepoint.b_method
                    (match b.Safepoint.b_why with
                    | None -> ""
                    | Some w -> " [" ^ w ^ "]")
                    (match rest with
                    | [] -> ""
                    | _ ->
                        Printf.sprintf " (+%d more: %s)" (List.length rest)
                          (String.concat ", "
                             (List.map Safepoint.blocker_to_string rest)))
            in
            let a = Updater.sync_abort reason in
            finish vm h (Aborted a);
            match h.h_revert_of with
            | Some (orig, v) ->
                guard_abort vm orig v ~rolled_back:false ~rollback_ms:0.0
                  ("revert failed [sync]: " ^ reason)
            | None -> ()
          end
          else if h.h_use_barriers then begin
            let installed = Safepoint.install_barriers stuck in
            if installed > 0 then begin
              Jv_obs.Obs.incr ~by:installed vm.State.obs
                "core.update.barriers_installed";
              Jv_obs.Obs.emit vm.State.obs ~scope:"core.update"
                "update.barriers"
                [
                  ("version", Jv_obs.Obs.Str (version_tag h));
                  ("installed", Jv_obs.Obs.Int installed);
                ]
            end;
            h.h_barriers_installed <- h.h_barriers_installed + installed;
            (* threads parked at a fired barrier that still have deeper
               restricted frames must run on to clear them *)
            Safepoint.unpark_stuck stuck
          end)

(* A guarded update just applied: retain-commit already happened inside
   [Updater.apply]; open the watch window and hand its tick to the
   scheduler. *)
and open_guard vm h =
  match h.h_guard with
  | None -> ()
  | Some cfg ->
      let g = Guard.open_window cfg vm in
      h.h_guard_state <- Some g;
      h.h_guard_busy <- true;
      vm.State.guard_tick <- Some (guard_step h g)

and guard_step h g vm =
  match Guard.tick vm g with
  | `Watching -> ()
  | `Close ->
      vm.State.guard_tick <- None;
      h.h_guard_state <- None;
      h.h_guard_busy <- false;
      Txn.release_retained vm
  | `Trip v ->
      vm.State.guard_tick <- None;
      h.h_guard_state <- None;
      start_revert vm h v

(* The budget tripped: build the inverse update and push it through the
   normal pipeline at this very safe point (the scheduler calls the guard
   tick between rounds, with no thread mid-slice).  Failures that prevent
   the revert from even starting roll forward to a [P_guard] abort. *)
and start_revert vm h v =
  Jv_obs.Obs.emit vm.State.obs ~scope:"core.guard" "guard.reverting"
    [
      ("version", Jv_obs.Obs.Str (version_tag h));
      ("signal", Jv_obs.Obs.Str (Guard.signal_to_string v.Guard.v_signal));
    ];
  match vm.State.lazy_drain with
  | Some drain when not (drain vm) ->
      (* the guarded update committed lazily and a residual transformer
         trapped during the forced drain: the window's own rollback just
         restored the old version — that IS the revert *)
      h.h_guard_busy <- false;
      Txn.release_retained vm;
      h.h_outcome <- Reverted v;
      record_outcome vm h h.h_outcome
  | _ -> start_revert_eager vm h v

(* The inverse update needs every object on the new layout before its
   transforming collection runs, so a still-draining lazy window is
   forced to completion first (the [lazy_drain] branch above). *)
and start_revert_eager vm h v =
  let inv_spec = Spec.inverse h.h_prepared.Transformers.p_spec in
  match Transformers.prepare inv_spec with
  | exception Transformers.Prepare_error msg ->
      guard_abort vm h v ~rolled_back:false ~rollback_ms:0.0
        ("inverse prepare failed: " ^ msg)
  | prepared ->
      if vm.State.dsu_attempt <> None then
        guard_abort vm h v ~rolled_back:false ~rollback_ms:0.0
          "revert blocked: another update is pending"
      else begin
        let rh =
          {
            h_prepared = prepared;
            h_restricted = Safepoint.compute vm prepared.Transformers.p_spec;
            h_requested_at = vm.State.ticks;
            h_deadline = vm.State.ticks + h.h_timeout_rounds;
            h_timeout_rounds = h.h_timeout_rounds;
            h_use_osr = h.h_use_osr;
            h_use_barriers = h.h_use_barriers;
            h_guard = None; (* reverts are not themselves guarded *)
            h_revert_of = Some (h, v);
            h_outcome = Pending;
            h_attempts = 0;
            h_barriers_installed = 0;
            h_blockers = "";
            h_stuck = [];
            h_sync_ms = 0.0;
            h_guard_state = None;
            h_guard_busy = false;
          }
        in
        vm.State.dsu_attempt <- Some (attempt rh);
        (* the world is stopped between rounds: try right now, so a clean
           revert lands without running another request round on the bad
           version *)
        attempt rh vm
      end

(* An external driver (the fleet orchestrator) forcing an open window to
   trip: the in-VM revert replays the retained log exactly as a
   budget-driven trip would, so a fleet-wide coordinated revert restores
   forward-dropped field values instead of defaulting them. *)
let force_trip vm (h : handle) ~reason =
  match h.h_guard_state with
  | None -> ()
  | Some g ->
      vm.State.guard_tick <- None;
      Guard.cancel vm g;
      h.h_guard_state <- None;
      let v =
        {
          Guard.v_signal = Guard.S_injected;
          v_detail = reason;
          v_round = Guard.round_of vm g;
          v_traps = 0;
          v_app_errors = 0;
          v_probe_failures = 0;
          v_p99 = 0.0;
          v_baseline_p99 = 0.0;
          v_revert_ms = 0.0;
        }
      in
      start_revert vm h v

(* Signal the VM that an update is available.  The update is applied by the
   scheduler at the next DSU safe point.  Raises [Busy] if another update
   is already pending.

   Admission control runs first (unless [admit] is false): a rejected
   update resolves immediately as [Aborted] in phase [P_admit] — the
   attempt hook is never installed, so the VM never pauses. *)
let request ?(timeout_rounds = default_timeout_rounds) ?(use_osr = true)
    ?(use_barriers = true) ?(admit = true) ?(admit_strict = false) ?guard vm
    (prepared : Transformers.prepared) : handle =
  if vm.State.dsu_attempt <> None then raise Busy;
  let h =
    {
      h_prepared = prepared;
      h_restricted = Safepoint.compute vm prepared.Transformers.p_spec;
      h_requested_at = vm.State.ticks;
      h_deadline = vm.State.ticks + timeout_rounds;
      h_timeout_rounds = timeout_rounds;
      h_use_osr = use_osr;
      h_use_barriers = use_barriers;
      h_guard = guard;
      h_revert_of = None;
      h_outcome = Pending;
      h_attempts = 0;
      h_barriers_installed = 0;
      h_blockers = "";
      h_stuck = [];
      h_sync_ms = 0.0;
      h_guard_state = None;
      h_guard_busy = false;
    }
  in
  Jv_obs.Obs.incr vm.State.obs "core.update.requests";
  Jv_obs.Obs.emit vm.State.obs ~scope:"core.update" "update.requested"
    [
      ( "version",
        Jv_obs.Obs.Str prepared.Transformers.p_spec.Spec.version_tag );
      ("timeout_rounds", Jv_obs.Obs.Int timeout_rounds);
      ("guarded", Jv_obs.Obs.Str (string_of_bool (guard <> None)));
    ];
  (match h.h_restricted.Safepoint.proofs with
  | None -> ()
  | Some t ->
      Jv_obs.Obs.set_gauge vm.State.obs "core.confree.proven"
        (float_of_int h.h_restricted.Safepoint.proven_off);
      Jv_obs.Obs.observe vm.State.obs "core.confree.analyze_ms"
        t.Confree.analyzed_ms;
      Jv_obs.Obs.emit vm.State.obs ~scope:"core.update" "update.confree"
        [
          ( "version",
            Jv_obs.Obs.Str prepared.Transformers.p_spec.Spec.version_tag );
          ("summary", Jv_obs.Obs.Str (Confree.summary t));
          ("proven_off", Jv_obs.Obs.Int h.h_restricted.Safepoint.proven_off);
        ]);
  let rejected =
    if not admit then []
    else begin
      let rep =
        Admission.review ~confree:vm.State.config.State.confree prepared
      in
      let obs = vm.State.obs in
      Jv_obs.Obs.incr obs "core.admission.reviews";
      Jv_obs.Obs.observe obs "core.admission.ms" rep.Admission.a_ms;
      let warns =
        List.length
          (List.filter
             (fun v -> v.Admission.v_severity = Admission.Warn)
             rep.Admission.a_verdicts)
      in
      Jv_obs.Obs.incr ~by:warns obs "core.admission.warns";
      let rej = Admission.rejections ~strict:admit_strict rep in
      Jv_obs.Obs.incr ~by:(List.length rej) obs "core.admission.rejections";
      if rej <> [] then
        Jv_obs.Obs.emit obs ~scope:"core.admission" "admission.rejected"
          [
            ( "version",
              Jv_obs.Obs.Str prepared.Transformers.p_spec.Spec.version_tag );
            ("verdicts", Jv_obs.Obs.Str (String.concat "; " rej));
            ("strict", Jv_obs.Obs.Str (string_of_bool admit_strict));
          ];
      rej
    end
  in
  (match rejected with
  | [] -> vm.State.dsu_attempt <- Some (attempt h)
  | reasons ->
      h.h_outcome <- Aborted (Updater.admission_abort reasons);
      record_outcome vm h h.h_outcome);
  h

(* Convenience: prepare from a spec and request in one step. *)
let request_spec ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
    ?guard vm (spec : Spec.t) : handle =
  request ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict ?guard
    vm
    (Transformers.prepare spec)

(* Convenience for tests and benchmarks: request the update and drive the
   scheduler until it resolves (or [max_rounds] elapses). *)
let update_now ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
    ?guard ?(max_rounds = 10_000) vm spec : handle =
  let h =
    request_spec ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
      ?guard vm spec
  in
  let n = ref 0 in
  while h.h_outcome = Pending && !n < max_rounds do
    Jv_vm.Sched.round vm;
    incr n
  done;
  h

let guard_active h = h.h_guard_busy

(* Drive the scheduler until the whole guard cycle resolves: the update
   applies (or aborts), then the window either closes clean or trips and
   the revert lands.  The terminal outcome is the handle's. *)
let run_to_guard_close ?(max_rounds = 10_000) vm (h : handle) =
  let n = ref 0 in
  while (h.h_outcome = Pending || h.h_guard_busy) && !n < max_rounds do
    Jv_vm.Sched.round vm;
    incr n
  done;
  h.h_outcome

(* Replay a version ladder: apply each spec in order through the normal
   request pipeline — admission, the update transaction and any guard
   window all apply to every rung, exactly as they would have when the
   releases originally shipped.  This is how a restarted fleet instance
   catches up from its boot version to the fleet's current epoch.  Stops
   at the first rung that fails to land (abort, revert or timeout);
   [Error] carries the handles that did apply plus the failing one. *)
let run_ladder ?timeout_rounds ?use_osr ?use_barriers ?admit ?admit_strict
    ?guard ?(max_rounds_each = 10_000) vm (specs : Spec.t list) :
    (handle list, handle list * handle) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        let h =
          update_now ?timeout_rounds ?use_osr ?use_barriers ?admit
            ?admit_strict ?guard ~max_rounds:max_rounds_each vm spec
        in
        let outcome =
          if h.h_guard_busy then
            run_to_guard_close ~max_rounds:max_rounds_each vm h
          else h.h_outcome
        in
        match outcome with
        | Applied _ -> go (h :: acc) rest
        | Pending | Reverted _ | Aborted _ -> Error (List.rev acc, h))
  in
  go [] specs

let resolved h =
  match h.h_outcome with
  | Pending -> false
  | Applied _ | Reverted _ | Aborted _ -> true

let succeeded h =
  match h.h_outcome with
  | Applied _ -> true
  | Pending | Reverted _ | Aborted _ -> false

(* A plain-data snapshot of one update attempt, for orchestrators that
   aggregate outcomes across a fleet of VMs. *)
type attempt_report = {
  ar_outcome : outcome;
  ar_attempts : int;
  ar_barriers_installed : int;
  ar_sync_ms : float;
  ar_blockers : string;
  ar_stuck : Safepoint.blocker list;
  ar_waited_rounds : int; (* ticks from request to resolution (or so far) *)
}

let report vm h =
  {
    ar_outcome = h.h_outcome;
    ar_attempts = h.h_attempts;
    ar_barriers_installed = h.h_barriers_installed;
    ar_sync_ms = h.h_sync_ms;
    ar_blockers = h.h_blockers;
    ar_stuck = h.h_stuck;
    ar_waited_rounds = vm.State.ticks - h.h_requested_at;
  }

let outcome_to_string = function
  | Pending -> "pending"
  | Applied t ->
      Printf.sprintf
        "applied (load %.2fms, gc %.2fms, transform %.2fms, total %.2fms, \
         %d objects transformed, %d OSRs)"
        t.Updater.u_load_ms t.Updater.u_gc_ms t.Updater.u_transform_ms
        t.Updater.u_total_ms t.Updater.u_transformed_objects t.Updater.u_osr
  | Reverted v -> "reverted: " ^ Guard.verdict_to_string v
  | Aborted a -> "aborted: " ^ Updater.abort_to_string a
