(* Static con-freeness / backward-compatibility analysis (admission time).

   Under heavy traffic the dominant DSU failure is reachability: a
   restricted method is always on some thread's stack, so the safe point
   never arrives (the paper's §5.1.3 [acceptSocket] story).  Following the
   direction of Shen & Bazzi's formal study of backward-compatible DSU and
   the Lounas et al. bytecode-transformation framework, this module proves
   — per update, before the VM ever pauses — which of the diff's "changed"
   methods may legally remain on stack across the commit.
   [Safepoint.compute] subtracts the proven set from the restricted set.

   The proof obligation comes from what the machine actually burns into
   running frames.  A frame keeps executing its own (old) code after the
   commit; bytecode references are symbolic, but the compiled code the
   frame holds resolved them against the *old* world: instance-field word
   offsets, static JTOC slots, TIB vslot indices, method uids, class ids.
   An old body is safe to keep running iff every such burned resolution is
   still the right answer in the post-update world:

   - [Get_field]/[Put_field]: the field must resolve in both worlds to the
     same word offset with the same type.  Layout is append-only per class
     (inherited fields first, declared fields after, in declaration
     order), so a field *appended* to a class leaves existing offsets
     stable while a deletion or a superclass insertion shifts them.
   - [Get_static]/[Put_static]: the declaring class must be outside the
     update (updated classes get fresh JTOC slots and their old slots are
     zeroed at commit).
   - [Invoke_virtual]: dispatch goes through the receiver's *current* TIB,
     so post-commit it lands on live new-world code — provided the vslot
     index burned for the mangled name+signature is the same in both
     worlds.  Per the con-freeness fixpoint, a target that is itself a
     changed method must also be proven compatible.
   - [Invoke_static]/[Invoke_direct]: the burned uid of a method of an
     updated (layout-closure) or deleted class is invalidated at commit
     and the interpreter traps on invoking it — unconditionally
     restricted.  A body-updated callee keeps its uid (the body is swapped
     in place), so the call stays valid iff the callee is itself proven.
   - [New_obj]/[Check_cast]/[Instance_of]/array ops: a burned class id of
     an updated or deleted class is superseded (allocation traps, subtype
     tests go stale) — restricted.

   Verdicts form the lattice Identical < Compatible < Restricted:
   [Identical] means the old and new bytecode are structurally equal
   (references are symbolic, so equality already quotients out constant
   renumbering and the offset shifts the update causes) *and* every burned
   resolution is stable; [Compatible] means the bodies differ but the old
   body's burned resolutions are stable and every outgoing call lands on
   an unchanged or itself-proven method (a greatest fixpoint over the call
   graph, so mutually recursive clean methods prove each other);
   [Restricted] carries the first failed obligation.  Every verdict comes
   with a machine-checkable reason: [audit] re-validates each proof
   against the programs and checks the proof set is closed under the call
   graph, so admission control can reject a proof set that does not
   certify. *)

module CF = Jv_classfile
module StrSet = Set.Make (String)

type verdict = Identical | Compatible | Restricted

(* The machine-checkable reason attached to every verdict.  For the two
   proof verdicts it records how many burned resolutions were re-checked;
   for [Restricted] it names the first obligation that failed. *)
type reason =
  | R_bytecode_identical of int (* stable resolutions re-checked *)
  | R_body_compatible of int
  | R_class_deleted of string
  | R_method_deleted
  | R_native
  | R_field_unstable of string * string (* field ref, detail *)
  | R_static_unstable of string * string
  | R_class_ref_unstable of string * string (* class, instruction *)
  | R_vslot_moved of string * string (* call ref, detail *)
  | R_callee_restricted of string * string (* call ref, callee *)
  | R_unresolved of string

let reason_to_string = function
  | R_bytecode_identical n ->
      Printf.sprintf "bytecode identical, %d burned resolution(s) stable" n
  | R_body_compatible n ->
      Printf.sprintf
        "body differs, %d burned resolution(s) stable, all calls proven" n
  | R_class_deleted c -> Printf.sprintf "class %s is deleted" c
  | R_method_deleted -> "method absent from the new version"
  | R_native -> "native method: no bytecode to compare"
  | R_field_unstable (f, why) -> Printf.sprintf "field %s: %s" f why
  | R_static_unstable (f, why) -> Printf.sprintf "static %s: %s" f why
  | R_class_ref_unstable (c, instr) ->
      Printf.sprintf "%s names updated/deleted class %s" instr c
  | R_vslot_moved (m, why) -> Printf.sprintf "virtual call %s: %s" m why
  | R_callee_restricted (m, callee) ->
      Printf.sprintf "call %s lands on unproven changed method %s" m callee
  | R_unresolved what -> Printf.sprintf "cannot resolve %s" what

type result = {
  cr_ref : Diff.mref;
  cr_verdict : verdict;
  cr_reason : reason;
}

type t = {
  results : result list; (* every changed method, verdict + reason *)
  analyzed_ms : float;
}

let verdict_to_string = function
  | Identical -> "identical"
  | Compatible -> "compatible"
  | Restricted -> "restricted"

let result_to_string r =
  Printf.sprintf "%s: %s (%s)"
    (Diff.mref_to_string r.cr_ref)
    (verdict_to_string r.cr_verdict)
    (reason_to_string r.cr_reason)

let proven t =
  List.filter_map
    (fun r ->
      match r.cr_verdict with
      | Identical | Compatible -> Some r.cr_ref
      | Restricted -> None)
    t.results

let find t (mref : Diff.mref) =
  List.find_opt (fun r -> Diff.mref_to_string r.cr_ref = Diff.mref_to_string mref) t.results

(* --- static mirrors of the runtime's burned resolutions ------------------- *)

type ctx = {
  oldp : CF.Cls.program; (* old program + builtins *)
  newp : CF.Cls.program; (* new program + builtins *)
  unstable : StrSet.t; (* layout closure + deleted classes *)
  universe : (string, Diff.mref) Hashtbl.t; (* all changed methods, by key *)
}

let mref_key (r : Diff.mref) =
  r.Diff.r_class ^ "." ^ r.Diff.r_name
  ^ CF.Types.msig_descriptor r.Diff.r_sig

let meth_mref cname (m : CF.Cls.meth) =
  { Diff.r_class = cname; r_name = m.CF.Cls.md_name; r_sig = m.CF.Cls.md_sig }

(* Instance-field layout, mirroring [Rt.install_class]: inherited fields
   first (root-most ancestor first), then declared fields in declaration
   order.  The word offset of a field is a constant plus its index here. *)
let flat_fields p (c : CF.Cls.t) : (string * CF.Cls.field) list =
  CF.Cls.ancestry p c [] |> List.rev
  |> List.concat_map (fun (a : CF.Cls.t) ->
         a.CF.Cls.c_fields
         |> List.filter (fun (f : CF.Cls.field) ->
                not f.CF.Cls.fd_access.CF.Access.is_static)
         |> List.map (fun f -> (a.CF.Cls.c_name, f)))

(* Resolve an instance field the way the JIT burns it: position of the
   most-derived declaration in the flattened layout. *)
let field_slot p cname fname : (int * CF.Cls.field) option =
  match CF.Cls.find_class p cname with
  | None -> None
  | Some c ->
      let flat = flat_fields p c in
      let best = ref None in
      List.iteri
        (fun i (_, (f : CF.Cls.field)) ->
          if String.equal f.CF.Cls.fd_name fname then best := Some (i, f))
        flat;
      !best

(* Declaring class of a static field (hierarchy walk, most-derived
   declaration wins), mirroring [Rt.find_static_info]. *)
let static_decl p cname fname : string option =
  match CF.Cls.find_class p cname with
  | None -> None
  | Some c ->
      CF.Cls.ancestry p c []
      |> List.find_map (fun (a : CF.Cls.t) ->
             if
               List.exists
                 (fun (f : CF.Cls.field) ->
                   String.equal f.CF.Cls.fd_name fname
                   && f.CF.Cls.fd_access.CF.Access.is_static)
                 a.CF.Cls.c_fields
             then Some a.CF.Cls.c_name
             else None)

let is_virtual (m : CF.Cls.meth) =
  (not m.CF.Cls.md_access.CF.Access.is_static)
  && m.CF.Cls.md_name <> CF.Cls.ctor_name
  && m.CF.Cls.md_access.CF.Access.visibility <> CF.Access.Private

(* The vslot table a class would get from [Rt.install_class]: the
   superclass's table, then each declared virtual method either overrides
   an inherited slot or appends a new one.  Superclass tables are prefixes
   of subclass tables, so the slot of a key is the same for every class
   that inherits it — checking the static receiver class suffices. *)
let rec vslot_table p (c : CF.Cls.t) : (string * int) list =
  let base =
    if String.equal c.CF.Cls.c_name CF.Types.object_class then []
    else
      match CF.Cls.find_class p c.CF.Cls.c_super with
      | Some s -> vslot_table p s
      | None -> []
  in
  List.fold_left
    (fun acc (m : CF.Cls.meth) ->
      if is_virtual m then
        let key = CF.Cls.method_key m in
        if List.mem_assoc key acc then acc
        else acc @ [ (key, List.length acc) ]
      else acc)
    base c.CF.Cls.c_methods

let vslot_of p cname key : int option =
  match CF.Cls.find_class p cname with
  | None -> None
  | Some c -> List.assoc_opt key (vslot_table p c)

(* All old-world override targets a virtual call on static class [cname]
   can dispatch to: the base resolution plus every subclass override. *)
let virtual_targets p cname mname msig : (string * CF.Cls.meth) list =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  Hashtbl.iter
    (fun _ (c : CF.Cls.t) ->
      if CF.Cls.is_subclass p ~sub:c.CF.Cls.c_name ~super:cname then
        match CF.Cls.resolve_method p c.CF.Cls.c_name mname msig with
        | Some ((d : CF.Cls.t), m) ->
            if not (Hashtbl.mem seen d.CF.Cls.c_name) then begin
              Hashtbl.add seen d.CF.Cls.c_name ();
              out := (d.CF.Cls.c_name, m) :: !out
            end
        | None -> ())
    p;
  !out

(* --- the per-body obligation walk ---------------------------------------- *)

(* Check one old body under [assume] (which changed methods are currently
   assumed proven).  Returns the number of burned resolutions re-checked,
   or the first failed obligation. *)
let check_body ctx ~assume cname (code : CF.Instr.t array) :
    (int, reason) Either.t =
  let stable = ref 0 in
  let fail = ref None in
  let bad r = if !fail = None then fail := Some r in
  let unstable_class c = StrSet.mem c ctx.unstable in
  let changed_callee decl mname msig =
    let r = { Diff.r_class = decl; r_name = mname; r_sig = msig } in
    if Hashtbl.mem ctx.universe (mref_key r) then Some r else None
  in
  let check_call instr_name (m : CF.Instr.method_ref) ~virt =
    let ref_str = CF.Instr.method_ref_to_string m in
    match CF.Cls.resolve_method ctx.oldp m.CF.Instr.m_class m.CF.Instr.m_name
            m.CF.Instr.m_sig
    with
    | None -> bad (R_unresolved (instr_name ^ " " ^ ref_str))
    | Some ((decl : CF.Cls.t), _) ->
        if virt then begin
          (* vslot burned against the static class must keep its index *)
          let key =
            m.CF.Instr.m_name ^ CF.Types.msig_descriptor m.CF.Instr.m_sig
          in
          (match
             ( vslot_of ctx.oldp m.CF.Instr.m_class key,
               vslot_of ctx.newp m.CF.Instr.m_class key )
           with
          | Some o, Some n when o = n -> incr stable
          | Some _, None ->
              bad (R_vslot_moved (ref_str, "no such virtual slot in the new world"))
          | Some o, Some n ->
              bad
                (R_vslot_moved
                   (ref_str, Printf.sprintf "slot %d moved to %d" o n))
          | None, _ -> bad (R_unresolved ("vslot of " ^ ref_str)));
          (* the fixpoint edge: every old-world target that is itself a
             changed method must be proven *)
          List.iter
            (fun (dname, (tm : CF.Cls.meth)) ->
              match
                changed_callee dname tm.CF.Cls.md_name tm.CF.Cls.md_sig
              with
              | Some r when not (assume (mref_key r)) ->
                  bad (R_callee_restricted (ref_str, Diff.mref_to_string r))
              | _ -> ())
            (virtual_targets ctx.oldp m.CF.Instr.m_class m.CF.Instr.m_name
               m.CF.Instr.m_sig)
        end
        else if unstable_class decl.CF.Cls.c_name then
          (* the burned uid is invalidated at commit: invoking it traps *)
          bad
            (R_callee_restricted
               ( ref_str,
                 decl.CF.Cls.c_name ^ " (updated class, uid invalidated)" ))
        else
          match
            changed_callee decl.CF.Cls.c_name m.CF.Instr.m_name
              m.CF.Instr.m_sig
          with
          | Some r when not (assume (mref_key r)) ->
              bad (R_callee_restricted (ref_str, Diff.mref_to_string r))
          | _ -> incr stable
  in
  let check_field (f : CF.Instr.field_ref) =
    let ref_str = CF.Instr.field_ref_to_string f in
    match
      ( field_slot ctx.oldp f.CF.Instr.f_class f.CF.Instr.f_name,
        field_slot ctx.newp f.CF.Instr.f_class f.CF.Instr.f_name )
    with
    | Some (o, of_), Some (n, nf) ->
        if o <> n then
          bad
            (R_field_unstable
               (ref_str, Printf.sprintf "word offset %d moved to %d" o n))
        else if not (CF.Types.equal_ty of_.CF.Cls.fd_ty nf.CF.Cls.fd_ty) then
          bad (R_field_unstable (ref_str, "type changed across the update"))
        else incr stable
    | Some _, None ->
        bad (R_field_unstable (ref_str, "deleted from the new layout"))
    | None, _ -> bad (R_unresolved ("field " ^ ref_str))
  in
  let check_static (f : CF.Instr.field_ref) =
    let ref_str = CF.Instr.field_ref_to_string f in
    match static_decl ctx.oldp f.CF.Instr.f_class f.CF.Instr.f_name with
    | None -> bad (R_unresolved ("static " ^ ref_str))
    | Some decl ->
        if unstable_class decl then
          bad
            (R_static_unstable
               (ref_str, "declared by an updated class: JTOC slot renumbered"))
        else incr stable
  in
  let check_ty instr_name ty =
    List.iter
      (fun c ->
        if unstable_class c then bad (R_class_ref_unstable (c, instr_name)))
      (CF.Types.classes_of_ty [] ty)
  in
  Array.iter
    (fun (i : CF.Instr.t) ->
      if !fail = None then
        match i with
        | CF.Instr.Get_field f | CF.Instr.Put_field f -> check_field f
        | CF.Instr.Get_static f | CF.Instr.Put_static f -> check_static f
        | CF.Instr.Invoke_virtual m -> check_call "invokevirtual" m ~virt:true
        | CF.Instr.Invoke_static m -> check_call "invokestatic" m ~virt:false
        | CF.Instr.Invoke_direct m -> check_call "invokedirect" m ~virt:false
        | CF.Instr.New_obj c ->
            if unstable_class c then bad (R_class_ref_unstable (c, "new"))
            else incr stable
        | CF.Instr.New_array ty -> check_ty "newarray" ty
        | CF.Instr.Array_load ty -> check_ty "aload" ty
        | CF.Instr.Array_store ty -> check_ty "astore" ty
        | CF.Instr.Check_cast ty -> check_ty "checkcast" ty
        | CF.Instr.Instance_of ty -> check_ty "instanceof" ty
        | _ -> ())
    code;
  ignore cname;
  match !fail with Some r -> Either.Right r | None -> Either.Left !stable

(* --- the analysis --------------------------------------------------------- *)

(* Changed-method universe: every body update, plus every method of every
   layout-closure class present in the old program, plus every method of
   every deleted class. *)
let universe_of (spec : Spec.t) :
    (Diff.mref * [ `Body of string * CF.Instr.t array | `Native | `Deleted of string | `Gone ])
    list =
  let oldp = CF.Cls.program_of_list spec.Spec.old_program in
  let newp = CF.Cls.program_of_list spec.Spec.new_program in
  let body_of cname (m : CF.Cls.meth) =
    match m.CF.Cls.md_code with
    | None -> `Native
    | Some code -> `Body (cname, code)
  in
  let of_class kind cname =
    match CF.Cls.find_class oldp cname with
    | None -> []
    | Some c ->
        List.map
          (fun (m : CF.Cls.meth) ->
            let shape =
              match kind with
              | `Deleted -> `Deleted cname
              | `Closure -> (
                  (* a method dropped from a surviving class can never be
                     re-entered or proven: it has no new-world counterpart *)
                  match CF.Cls.find_class newp cname with
                  | Some nc
                    when CF.Cls.find_method nc m.CF.Cls.md_name
                           m.CF.Cls.md_sig
                         = None ->
                      `Gone
                  | _ -> body_of cname m)
            in
            (meth_mref cname m, shape))
          c.CF.Cls.c_methods
  in
  let closure =
    List.concat_map (of_class `Closure)
      spec.Spec.diff.Diff.class_updates_closure
  in
  let deleted =
    List.concat_map (of_class `Deleted) spec.Spec.diff.Diff.deleted_classes
  in
  let bodies =
    List.filter_map
      (fun (r : Diff.mref) ->
        match CF.Cls.find_class oldp r.Diff.r_class with
        | None -> None
        | Some c -> (
            match CF.Cls.find_method c r.Diff.r_name r.Diff.r_sig with
            | None -> None
            | Some m -> Some (r, body_of r.Diff.r_class m)))
      spec.Spec.diff.Diff.body_updates
  in
  closure @ deleted @ bodies

let bytecode_identical (spec : Spec.t) (r : Diff.mref) =
  let newp = CF.Cls.program_of_list spec.Spec.new_program in
  let oldp = CF.Cls.program_of_list spec.Spec.old_program in
  match
    ( CF.Cls.find_class oldp r.Diff.r_class,
      CF.Cls.find_class newp r.Diff.r_class )
  with
  | Some oc, Some nc -> (
      match
        ( CF.Cls.find_method oc r.Diff.r_name r.Diff.r_sig,
          CF.Cls.find_method nc r.Diff.r_name r.Diff.r_sig )
      with
      | Some om, Some nm -> CF.Cls.equal_meth_code om nm
      | _ -> false)
  | _ -> false

let analyze (spec : Spec.t) : t =
  let t0 = Unix.gettimeofday () in
  let entries = universe_of spec in
  let ctx =
    {
      oldp = CF.Builtins.program_with spec.Spec.old_program;
      newp = CF.Builtins.program_with spec.Spec.new_program;
      unstable =
        StrSet.of_list
          (spec.Spec.diff.Diff.class_updates_closure
          @ spec.Spec.diff.Diff.deleted_classes);
      universe = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (r, _) -> Hashtbl.replace ctx.universe (mref_key r) r)
    entries;
  (* Optimistic (greatest) fixpoint: assume every changed method proven,
     demote on a failed local obligation or a demoted callee, iterate to
     stability.  Mutually recursive clean methods stay proven. *)
  let state : (string, reason option) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (r, _) -> Hashtbl.replace state (mref_key r) None) entries;
  let assume key =
    match Hashtbl.find_opt state key with Some None -> true | _ -> false
  in
  let pass () =
    List.fold_left
      (fun demoted (r, shape) ->
        let key = mref_key r in
        if not (assume key) then demoted
        else
          let verdict =
            match shape with
            | `Deleted c -> Either.Right (R_class_deleted c)
            | `Gone -> Either.Right R_method_deleted
            | `Native -> Either.Right R_native
            | `Body (cname, code) -> check_body ctx ~assume cname code
          in
          match verdict with
          | Either.Left _ -> demoted
          | Either.Right why ->
              Hashtbl.replace state key (Some why);
              demoted + 1)
      0 entries
  in
  let rec fix () = if pass () > 0 then fix () in
  fix ();
  let results =
    List.map
      (fun (r, shape) ->
        let key = mref_key r in
        match Hashtbl.find_opt state key with
        | Some (Some why) ->
            { cr_ref = r; cr_verdict = Restricted; cr_reason = why }
        | _ ->
            let stable =
              match shape with
              | `Body (cname, code) -> (
                  match check_body ctx ~assume cname code with
                  | Either.Left n -> n
                  | Either.Right _ -> 0 (* unreachable: proven above *))
              | _ -> 0
            in
            if bytecode_identical spec r then
              {
                cr_ref = r;
                cr_verdict = Identical;
                cr_reason = R_bytecode_identical stable;
              }
            else
              {
                cr_ref = r;
                cr_verdict = Compatible;
                cr_reason = R_body_compatible stable;
              })
      entries
  in
  { results; analyzed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

(* --- proof certification --------------------------------------------------- *)

(* Re-validate a proof set against the spec: every [Identical]/[Compatible]
   result must re-pass its local obligations with the proof set itself as
   the assumption (i.e., the set must be closed under the call graph), and
   [Identical] claims must really have structurally equal bytecode.
   Returns the violations (empty = the proof set certifies). *)
let audit (t : t) (spec : Spec.t) : string list =
  let entries = universe_of spec in
  let ctx =
    {
      oldp = CF.Builtins.program_with spec.Spec.old_program;
      newp = CF.Builtins.program_with spec.Spec.new_program;
      unstable =
        StrSet.of_list
          (spec.Spec.diff.Diff.class_updates_closure
          @ spec.Spec.diff.Diff.deleted_classes);
      universe = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (r, _) -> Hashtbl.replace ctx.universe (mref_key r) r)
    entries;
  let proven_keys =
    proven t |> List.map mref_key |> List.fold_left (fun s k -> StrSet.add k s) StrSet.empty
  in
  let assume key = StrSet.mem key proven_keys in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun r ->
      match r.cr_verdict with
      | Restricted -> ()
      | Identical | Compatible -> (
          let key = mref_key r.cr_ref in
          let shape =
            List.find_opt (fun (e, _) -> mref_key e = key) entries
          in
          (match shape with
          | None ->
              err "proof for %s names a method the diff does not mark changed"
                (Diff.mref_to_string r.cr_ref)
          | Some (_, `Body (cname, code)) -> (
              match check_body ctx ~assume cname code with
              | Either.Left _ -> ()
              | Either.Right why ->
                  err "proof for %s does not certify: %s"
                    (Diff.mref_to_string r.cr_ref)
                    (reason_to_string why))
          | Some (_, (`Native | `Deleted _ | `Gone)) ->
              err "proof for %s claims compatibility without a comparable body"
                (Diff.mref_to_string r.cr_ref));
          if
            r.cr_verdict = Identical
            && not (bytecode_identical spec r.cr_ref)
          then
            err "proof for %s claims identical bytecode but the bodies differ"
              (Diff.mref_to_string r.cr_ref)))
    t.results;
  List.rev !errs

(* Blacklist entries that shadow a proof: the pin wins, but the operator
   should see the conflict instead of silently losing the proof. *)
let shadowed_by_blacklist (t : t) (spec : Spec.t) : result list =
  List.filter
    (fun r ->
      r.cr_verdict <> Restricted
      && List.exists
           (fun b -> Diff.mref_to_string b = Diff.mref_to_string r.cr_ref)
           spec.Spec.blacklist)
    t.results

let summary (t : t) =
  let count v =
    List.length (List.filter (fun r -> r.cr_verdict = v) t.results)
  in
  Printf.sprintf
    "confree: %d changed method(s): %d identical, %d compatible, %d \
     restricted (%.2f ms)"
    (List.length t.results) (count Identical) (count Compatible)
    (count Restricted) t.analyzed_ms
