(** DSU safe points (paper §3.2): a VM safe point at which no thread's
    stack holds a restricted method. *)

module IntSet : Set.S with type elt = int

module State = Jv_vm.State

(** The restricted sets, resolved to runtime method uids. *)
type restricted = {
  changed : IntSet.t;
      (** categories (1) and (3): changed bytecode, methods of updated or
          deleted classes, user blacklist — blocking wherever on stack.
          With [config.confree] on, changed methods the static analysis
          proves backward-compatible are subtracted (blacklist pins
          always override a proof). *)
  stale : IntSet.t;
      (** category (2): unchanged bytecode with stale compiled code, plus
          unchanged-bytecode inline callers of restricted methods —
          blocking unless OSR can replace the frame *)
  proofs : Confree.t option;
      (** the con-freeness verdicts this computation used ([None] when
          the analysis is off) *)
  proven_off : int;
      (** how many changed methods the proofs subtracted from [changed] *)
}

val resolve_mref : State.t -> Diff.mref -> int option

val compute : State.t -> Spec.t -> restricted
(** Resolve the spec's restricted methods against current metadata.  Must
    run while the old classes are still installed under their original
    names (i.e. at request time). *)

type check_result =
  | Safe of State.frame list
      (** at a DSU safe point; the listed category-(2) frames must be
          OSR'd as part of applying the update *)
  | Blocked of (State.vthread * State.frame) list
      (** per stuck thread, its topmost restricted frame (the return-
          barrier installation site) *)

val check : ?allow_osr:bool -> State.t -> restricted -> check_result
(** Scan all live threads' stacks.  [allow_osr:false] is the ablation
    mode that treats every category-(2) frame as blocking. *)

val install_barriers : (State.vthread * State.frame) list -> int
(** Install return barriers on the given frames; returns how many were
    newly installed. *)

val clear_barriers : State.t -> unit

val release_parked : State.t -> unit
(** Release every thread parked by a fired return barrier (called when
    the update resolves either way). *)

val unpark_stuck : (State.vthread * State.frame) list -> unit
(** A thread that parked at a barrier but still has restricted frames
    deeper in its stack must keep running (with a fresh barrier) to clear
    them. *)

(** Structured starvation diagnostic: per stuck thread, the topmost
    restricted frame that kept the DSU safe point out of reach. *)
type blocker = {
  b_tid : int;
  b_method : string;  (** qualified name of the topmost restricted frame *)
  b_why : string option;
      (** why the frame has no con-freeness proof: the analysis's
          recorded reason, a blacklist override, stale compiled code, or
          the analysis being off *)
}

val unproven_why : State.t -> restricted -> State.frame -> string option
(** Why a restricted frame could not be proven off the restricted set. *)

val blocker_list :
  State.t -> restricted -> (State.vthread * State.frame) list -> blocker list
(** Deduplicated, sorted (thread, topmost restricted frame) pairs — what
    a safe-point timeout abort names instead of a bare timeout. *)

val blocker_to_string : blocker -> string

val describe_blockers :
  State.t -> restricted -> (State.vthread * State.frame) list -> string
