(** Seeded, deterministic fault injection.

    A {e fault plan} arms named injection points spread through the stack
    (updater phases, the simulated network, the fleet orchestrator) to
    raise, kill the VM, drop a message or delay it.  All probabilistic
    decisions draw from one seeded xorshift stream owned by the plan, so
    a (plan, seed) pair replays the same fault schedule on every run.

    Plan syntax ([parse]):
    {v
    PLAN   := RULE { ',' RULE }
    RULE   := POINT '=' ACTION [ '@' RATE ] [ 'x' COUNT ]
    ACTION := 'raise' | 'kill' | 'drop' | 'delay:' TICKS
    v}
    e.g. ["updater.transform=raise@0.2"], ["updater.load=kill x1"],
    ["net.link=delay:3@0.1,net.connect=drop@0.05"].  A POINT with a
    trailing ['*'] matches by prefix. *)

type action =
  | Raise  (** raise {!Injected} at the point *)
  | Kill  (** raise {!Killed}: the VM dies, as in a process crash *)
  | Drop  (** network: discard the message / refuse the connection *)
  | Delay of int  (** network: hold the message for N ticks *)

exception Injected of string  (** payload: the point that fired *)

exception Killed of string

type t

val create : ?seed:int -> unit -> t
val seed : t -> int

val set_obs : t -> Jv_obs.Obs.t -> unit
(** Every fire emits a [fault.fired] event (scope ["faults"]) and bumps
    the [faults.fired] counter on this sink. *)

val arm : t -> point:string -> ?rate:float -> ?max_fires:int -> action -> unit
(** Append a rule.  [rate] defaults to 1.0 (always), [max_fires] to
    unlimited. *)

val clear : t -> unit

(** {1 The seeded stream}

    Deterministic harness schedules (gossip fanout, partition splits)
    draw from the same xorshift stream the plan's rate checks use, so a
    seed fixes faults and schedules together. *)

val draw : t -> float
(** One draw in [0, 1). *)

val draw_int : t -> int -> int
(** One draw in [0, bound); raises [Invalid_argument] if [bound <= 0]. *)

val parse : ?seed:int -> string -> (t, string) result
(** Parse a plan string (syntax above) into a fresh plan. *)

val to_string : t -> string
(** Round-trip a plan back to its string form. *)

(** {1 Consultation}

    All consultations take a [t option] so call sites need no match on
    "faults configured at all". *)

val check : t option -> string -> action option
(** First matching, non-exhausted rule whose rate check passes fires and
    is recorded; [None] when nothing fires. *)

val point : t option -> string -> unit
(** Execution-path point: [Raise]/[Kill] become {!Injected}/{!Killed};
    network-only actions are ignored. *)

val link : t option -> string -> [ `Ok | `Drop | `Delay of int ]
(** Network point: never raises; [Raise]/[Kill] armed on a link behave
    like a drop. *)

(** {1 Accounting (assertions in chaos tests)} *)

val fired : t -> int
val fired_at : t -> string -> int
