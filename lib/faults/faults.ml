(* Seeded, deterministic fault injection.

   The paper's safety claim (§3.3-3.4) is all-or-nothing: an update either
   completes atomically at a DSU safe point or the program keeps running
   the old version.  Nothing exercises the failure half of that claim
   unless something actually fails, so this module provides the failures:
   a *fault plan* arms named injection points scattered through the stack
   (the updater phases, the simulated network, the fleet orchestrator) to
   raise, kill the VM, drop a message, or delay it.

   Plans are deterministic: every probabilistic decision draws from one
   seeded xorshift stream owned by the plan, so a (plan string, seed) pair
   replays the same fault schedule on every run — chaos tests and the
   chaos bench depend on this.

   Plan syntax (see also README):

     PLAN   := RULE { ',' RULE }
     RULE   := POINT '=' ACTION [ '@' RATE ] [ 'x' COUNT ]
     ACTION := 'raise' | 'kill' | 'drop' | 'delay:' TICKS
     RATE   := probability in [0,1], e.g. 0.2 (default 1.0)
     COUNT  := max times the rule may fire (default unlimited)

   A POINT is matched exactly, or by prefix when the rule's point ends in
   '*' (e.g. "updater.*").  Examples:

     updater.transform=raise@0.2       20% of transformer pairs throw
     updater.load=kill x1              first load phase kills the VM
     net.link=delay:3@0.1,net.connect=drop@0.05 *)

type action =
  | Raise (* raise [Injected] at the point *)
  | Kill (* raise [Killed]: the VM is dead, as in a process crash *)
  | Drop (* network: discard the message / refuse the connection *)
  | Delay of int (* network: hold the message for N ticks *)

exception Injected of string (* the point that fired *)
exception Killed of string

type rule = {
  ru_point : string; (* exact name, or prefix when ru_prefix *)
  ru_prefix : bool; (* the plan spelled a trailing '*' *)
  ru_action : action;
  ru_rate : float;
  ru_max_fires : int; (* max_int = unlimited *)
  mutable ru_fired : int;
}

type t = {
  seed : int;
  mutable rng : int;
  mutable rules : rule list; (* in plan order; first match that fires wins *)
  fired_at : (string, int) Hashtbl.t; (* point -> fire count *)
  mutable obs : Jv_obs.Obs.t option;
}

let create ?(seed = 42) () =
  {
    seed;
    rng = (seed lxor 0x2545F49) lor 1;
    rules = [];
    fired_at = Hashtbl.create 8;
    obs = None;
  }

let seed t = t.seed
let set_obs t sink = t.obs <- Some sink

let arm t ~point ?(rate = 1.0) ?(max_fires = max_int) action =
  let prefix = String.length point > 0 && point.[String.length point - 1] = '*' in
  let name =
    if prefix then String.sub point 0 (String.length point - 1) else point
  in
  t.rules <-
    t.rules
    @ [
        {
          ru_point = name;
          ru_prefix = prefix;
          ru_action = action;
          ru_rate = rate;
          ru_max_fires = max_fires;
          ru_fired = 0;
        };
      ]

let clear t =
  t.rules <- [];
  Hashtbl.reset t.fired_at

(* Deterministic xorshift, same recipe as the VM's [State.next_random]. *)
let next_unit t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x land max_int;
  float_of_int (t.rng mod 1_000_000) /. 1_000_000.0

(* Public draws from the plan's stream: gossip peer selection and the
   simnet partition chooser pull their randomness from here, so one
   (plan, seed) pair fixes the fault schedule AND every schedule built
   on top of it — gossip rounds replay byte-identically. *)
let draw t = next_unit t

let draw_int t bound =
  if bound <= 0 then invalid_arg "Faults.draw_int: bound must be > 0";
  int_of_float (next_unit t *. float_of_int bound) mod bound

let matches r point =
  if r.ru_prefix then
    String.length point >= String.length r.ru_point
    && String.equal (String.sub point 0 (String.length r.ru_point)) r.ru_point
  else String.equal r.ru_point point

let action_to_string = function
  | Raise -> "raise"
  | Kill -> "kill"
  | Drop -> "drop"
  | Delay n -> Printf.sprintf "delay:%d" n

let record_fire t r point =
  r.ru_fired <- r.ru_fired + 1;
  Hashtbl.replace t.fired_at point
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.fired_at point));
  match t.obs with
  | None -> ()
  | Some o ->
      Jv_obs.Obs.incr o "faults.fired";
      Jv_obs.Obs.emit o ~scope:"faults" "fault.fired"
        [
          ("point", Jv_obs.Obs.Str point);
          ("action", Jv_obs.Obs.Str (action_to_string r.ru_action));
          ("nth", Jv_obs.Obs.Int r.ru_fired);
        ]

(* Consult the plan at [point]: the first matching, non-exhausted rule
   whose rate check passes fires.  Every matching rule consumes one draw
   from the stream even when it does not fire, so schedules stay aligned
   across runs regardless of which earlier rules already hit their caps. *)
let check (t : t option) point : action option =
  match t with
  | None -> None
  | Some t ->
      let rec go = function
        | [] -> None
        | r :: rest ->
            if not (matches r point) then go rest
            else
              let draw = next_unit t in
              if r.ru_fired >= r.ru_max_fires then go rest
              else if draw < r.ru_rate then begin
                record_fire t r point;
                Some r.ru_action
              end
              else go rest
      in
      go t.rules

(* Execution-path points: [Raise]/[Kill] become exceptions; network-only
   actions are meaningless here and are ignored. *)
let point (t : t option) name =
  match check t name with
  | Some Raise -> raise (Injected name)
  | Some Kill -> raise (Killed name)
  | Some (Drop | Delay _) | None -> ()

(* Network points: never raise into harness drivers; a [Raise]/[Kill]
   armed on a link behaves like a drop. *)
let link (t : t option) name : [ `Ok | `Drop | `Delay of int ] =
  match check t name with
  | None -> `Ok
  | Some (Drop | Raise | Kill) -> `Drop
  | Some (Delay n) -> `Delay (max 1 n)

let fired t =
  Hashtbl.fold (fun _ n acc -> acc + n) t.fired_at 0

let fired_at t point =
  Option.value ~default:0 (Hashtbl.find_opt t.fired_at point)

(* --- the plan DSL -------------------------------------------------------- *)

let rule_to_string r =
  Printf.sprintf "%s%s=%s%s%s" r.ru_point
    (if r.ru_prefix then "*" else "")
    (action_to_string r.ru_action)
    (if r.ru_rate >= 1.0 then "" else Printf.sprintf "@%g" r.ru_rate)
    (if r.ru_max_fires = max_int then ""
     else Printf.sprintf "x%d" r.ru_max_fires)

let to_string t = String.concat "," (List.map rule_to_string t.rules)

let parse_rule t s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "rule %S: expected POINT=ACTION" s)
  | Some eq -> (
      let point = String.trim (String.sub s 0 eq) in
      let rhs = String.sub s (eq + 1) (String.length s - eq - 1) in
      (* peel xCOUNT, then @RATE, leaving the action *)
      let rhs, max_fires =
        match String.rindex_opt rhs 'x' with
        | Some i
          when i > 0
               && int_of_string_opt
                    (String.sub rhs (i + 1) (String.length rhs - i - 1))
                  <> None ->
            ( String.trim (String.sub rhs 0 i),
              int_of_string (String.sub rhs (i + 1) (String.length rhs - i - 1))
            )
        | _ -> (String.trim rhs, max_int)
      in
      let rhs, rate =
        match String.rindex_opt rhs '@' with
        | Some i -> (
            let r = String.sub rhs (i + 1) (String.length rhs - i - 1) in
            match float_of_string_opt r with
            | Some f when f >= 0.0 && f <= 1.0 ->
                (String.trim (String.sub rhs 0 i), f)
            | _ -> ("", -1.0))
        | None -> (rhs, 1.0)
      in
      if rate < 0.0 then Error (Printf.sprintf "rule %S: bad rate" s)
      else if point = "" then Error (Printf.sprintf "rule %S: empty point" s)
      else
        let action =
          match String.trim rhs with
          | "raise" -> Some Raise
          | "kill" -> Some Kill
          | "drop" -> Some Drop
          | a when String.length a > 6 && String.sub a 0 6 = "delay:" -> (
              match
                int_of_string_opt (String.sub a 6 (String.length a - 6))
              with
              | Some n when n > 0 -> Some (Delay n)
              | _ -> None)
          | _ -> None
        in
        match action with
        | None -> Error (Printf.sprintf "rule %S: unknown action %S" s rhs)
        | Some a ->
            arm t ~point ~rate ~max_fires a;
            Ok ())

let parse ?seed plan : (t, string) result =
  let t = create ?seed () in
  let rules =
    String.split_on_char ',' plan
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if rules = [] then Error "empty fault plan"
  else
    let rec go = function
      | [] -> Ok t
      | r :: rest -> (
          match parse_rule t r with Ok () -> go rest | Error e -> Error e)
    in
    go rules
