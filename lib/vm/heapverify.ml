(* The post-update heap integrity verifier.

   A linear walk of the allocated prefix of to-space (the same traversal
   order as the collector's Cheney scan) that re-derives object boundaries
   from class metadata and checks, object by object:

   - every header resolves to an installed class: the class id is in
     range and the object's size keeps the walk aligned with the bump
     allocator;
   - no instance of a *superseded* class (one renamed aside by an update
     that installed a valid replacement under the original name) exists
     outside the caller-supplied allowance — during an update that
     allowance is exactly the update log's old copies, after a rollback
     it is empty;
   - every reference-typed field holds null or a reference to a live
     object whose class is compatible with the declared type, and never
     an int-tagged word (and vice versa for int/bool fields);
   - no reference field reaches a superseded object: the update log must
     be the only path to old-version metadata;
   - array elements that look like references point at object starts;
   - every valid class's static slots are well-typed the same way.

   Classes that are invalid but have no valid replacement (deleted
   classes, the unloaded transformer class) are tolerated: their
   surviving instances are legal, if unusual, post-update state.

   While a lazy update window is open ([State.lazy_info]) the heap is
   legitimately mixed-epoch: instances of the classes in the window's
   plan are still awaiting transformation, so both they and references
   to them are allowed (and exempt from the declared-type check — their
   layout is the old version's until the barrier or sweeper gets to
   them).  The allowance is keyed by class id, not address, so it needs
   no walk of its own.

   The verifier's checking passes only read; but when every issue found
   is an instance of a superseded class that nothing references — the
   signature of stale update-log copies lingering as garbage after an
   unguarded commit, which no collection has erased yet — [run] collects
   once and re-verifies instead of reporting a false failure
   ([hv_collected] records that it did).  Callers that verify
   mid-update pass [stale_ok] and are never collected under; open guard
   or lazy windows also suppress it. *)

module CF = Jv_classfile

type issue = { i_addr : int; i_class : string; i_what : string }

type report = {
  hv_ok : bool;
  hv_objects : int;
  hv_refs : int; (* reference slots checked (fields, elements, statics) *)
  hv_statics : int;
  hv_issues : issue list; (* first [max_issues] only *)
  hv_total_issues : int;
  hv_ms : float;
  hv_collected : bool; (* a stale-copy collection ran before the verdict *)
}

let max_issues = 16

let issue_to_string i =
  Printf.sprintf "%s@%d: %s" i.i_class i.i_addr i.i_what

(* The [guard_pending] allowance mirrors [stale_ok]: while a post-commit
   guard window holds the update log alive (for a possible inverse-update
   replay), the log's old copies are legitimate superseded objects even
   though the update has committed.  It defaults from the VM's retained
   log so every call site — post-rollback audits, the gauntlet, tests —
   is guard-aware without threading the allowance around. *)
let default_guard_pending (vm : State.t) =
  match vm.State.guard_retained with
  | None -> fun (_ : int) -> false
  | Some log ->
      let olds = Hashtbl.create (max 16 (Array.length log / 2)) in
      let i = ref 0 in
      while !i + 1 < Array.length log do
        (* even slots: the pristine old copies *)
        if Value.is_ref log.(!i) then
          Hashtbl.replace olds (Value.to_ref log.(!i)) ();
        i := !i + 2
      done;
      Hashtbl.mem olds

(* One full verification pass.  Returns the report plus the number of
   issues that were unreferenced superseded instances — the only kind a
   plain collection can erase. *)
let run_once ~stale_ok ~guard_pending ~lazy_pending (vm : State.t) :
    report * int =
  let t0 = Unix.gettimeofday () in
  let stale_ok a = stale_ok a || guard_pending a in
  let heap = vm.State.heap in
  let reg = vm.State.reg in
  let issues = ref [] in
  let n_issues = ref 0 in
  let n_stale_instances = ref 0 in
  let objects = ref 0 in
  let refs = ref 0 in
  let statics = ref 0 in
  let flag addr cls fmt =
    Printf.ksprintf
      (fun what ->
        incr n_issues;
        if !n_issues <= max_issues then
          issues := { i_addr = addr; i_class = cls; i_what = what } :: !issues)
      fmt
  in
  (* A renamed-aside class is *superseded* when a valid class owns its
     original (load-time) name: instances of it must only survive inside
     the update log.  Invalid classes whose original name is gone were
     deleted; their instances are tolerated. *)
  let superseded = Array.make (max 1 reg.Rt.n_classes) false in
  for cid = 0 to reg.Rt.n_classes - 1 do
    let c = reg.Rt.classes.(cid) in
    if not c.Rt.valid then
      match c.Rt.defn with
      | Some d -> (
          match Rt.find_class reg d.CF.Cls.c_name with
          | Some r when r.Rt.valid && r.Rt.cid <> cid ->
              superseded.(cid) <- true
          | _ -> ())
      | None -> ()
  done;
  (* pass 1: re-derive object boundaries *)
  let starts = Hashtbl.create 1024 in
  let scan = ref 1 in
  let aligned = ref true in
  while !aligned && !scan < heap.Heap.free do
    let addr = !scan in
    let cid = Heap.class_id heap addr in
    if cid < 0 || cid >= reg.Rt.n_classes then begin
      flag addr "?" "header class id %d out of range (0..%d)" cid
        (reg.Rt.n_classes - 1);
      aligned := false (* cannot size this object; stop the walk *)
    end
    else begin
      let cls = reg.Rt.classes.(cid) in
      let size =
        if cls.Rt.is_array then
          Heap.array_header_words + Heap.array_length heap addr
        else cls.Rt.size_words
      in
      if size < Heap.header_words || addr + size > heap.Heap.free then begin
        flag addr cls.Rt.name "object size %d words breaks the heap walk"
          size;
        aligned := false
      end
      else begin
        Hashtbl.replace starts addr cid;
        incr objects;
        scan := addr + size
      end
    end
  done;
  (* One typed slot: [declared] is None for erased array elements. *)
  let check_slot ~home ~home_cls ~what ~declared w =
    let ref_expected =
      match declared with
      | None -> true
      | Some ty -> CF.Types.is_reference ty
    in
    if Value.is_null w then ()
    else if not ref_expected then begin
      if Value.is_ref w then
        flag home home_cls "%s holds a reference word %d but is declared %s"
          what (Value.to_ref w)
          (match declared with
          | Some ty -> CF.Types.to_string ty
          | None -> "?")
    end
    else if Value.is_int w then begin
      match declared with
      | None -> () (* erased array slot holding an int: legal *)
      | Some ty ->
          flag home home_cls "%s : %s holds an int-tagged word" what
            (CF.Types.to_string ty)
    end
    else begin
      incr refs;
      let ta = Value.to_ref w in
      match Hashtbl.find_opt starts ta with
      | None ->
          flag home home_cls "%s points at %d, which is not an object start"
            what ta
      | Some tcid ->
          let tcls = reg.Rt.classes.(tcid) in
          if lazy_pending tcid then
            () (* awaiting lazy transformation: old layout, old type *)
          else if superseded.(tcid) && not (stale_ok ta) then
            flag home home_cls
              "%s reaches superseded object %s@%d outside the update log"
              what tcls.Rt.name ta
          else (
            match declared with
            | None -> ()
            | Some (CF.Types.TArray _) ->
                if not tcls.Rt.is_array then
                  flag home home_cls "%s : array field holds a %s" what
                    tcls.Rt.name
            | Some (CF.Types.TRef cname) -> (
                match Rt.find_class reg cname with
                | None -> () (* declared class no longer loaded: erased *)
                | Some dc ->
                    if
                      not
                        (Rt.is_subclass_id reg ~sub:tcid ~super:dc.Rt.cid)
                    then
                      flag home home_cls "%s : %s holds a %s" what cname
                        tcls.Rt.name)
            | Some _ -> ())
    end
  in
  (* pass 2: typed checks per object *)
  if !aligned then
    Hashtbl.iter
      (fun addr cid ->
        let cls = reg.Rt.classes.(cid) in
        if superseded.(cid) && (not (lazy_pending cid)) && not (stale_ok addr)
        then begin
          incr n_stale_instances;
          flag addr cls.Rt.name
            "instance of superseded class outside the update log"
        end;
        if cls.Rt.is_array then begin
          let len = Heap.array_length heap addr in
          for i = 0 to len - 1 do
            check_slot ~home:addr ~home_cls:cls.Rt.name
              ~what:(Printf.sprintf "element %d" i)
              ~declared:None
              (Heap.get heap ~addr ~off:(Heap.array_header_words + i))
          done
        end
        else
          Array.iter
            (fun (fi : Rt.field_info) ->
              check_slot ~home:addr ~home_cls:cls.Rt.name
                ~what:(Printf.sprintf "field %s" fi.Rt.fi_name)
                ~declared:(Some fi.Rt.fi_ty)
                (Heap.get heap ~addr ~off:fi.Rt.fi_offset))
            cls.Rt.instance_fields)
      starts;
  (* pass 3: statics of valid classes *)
  if !aligned then
    Rt.iter_classes reg (fun (c : Rt.rt_class) ->
        if c.Rt.valid then
          Array.iter
            (fun (si : Rt.static_info) ->
              incr statics;
              if si.Rt.si_slot < 0 || si.Rt.si_slot >= vm.State.jtoc_n then
                flag 0 c.Rt.name "static %s has JTOC slot %d out of range"
                  si.Rt.si_name si.Rt.si_slot
              else
                check_slot ~home:0 ~home_cls:c.Rt.name
                  ~what:(Printf.sprintf "static %s" si.Rt.si_name)
                  ~declared:(Some si.Rt.si_ty)
                  (State.jtoc_get vm si.Rt.si_slot))
            c.Rt.static_fields);
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let obs = vm.State.obs in
  Jv_obs.Obs.incr obs "vm.heapverify.runs";
  Jv_obs.Obs.observe obs "vm.heapverify.ms" ms;
  Jv_obs.Obs.incr ~by:!n_issues obs "vm.heapverify.issues";
  if !n_issues > 0 then
    Jv_obs.Obs.emit obs ~scope:"vm.heapverify" "verify.failed"
      [
        ("issues", Jv_obs.Obs.Int !n_issues);
        ( "first",
          Jv_obs.Obs.Str
            (match List.rev !issues with
            | i :: _ -> issue_to_string i
            | [] -> "") );
      ];
  ( {
      hv_ok = !n_issues = 0;
      hv_objects = !objects;
      hv_refs = !refs;
      hv_statics = !statics;
      hv_issues = List.rev !issues;
      hv_total_issues = !n_issues;
      hv_ms = ms;
      hv_collected = false;
    },
    !n_stale_instances )

let run ?stale_ok ?guard_pending ?(collect_stale = true) (vm : State.t) :
    report =
  let explicit_stale = stale_ok <> None in
  let stale_ok =
    match stale_ok with Some f -> f | None -> fun (_ : int) -> false
  in
  let guard_pending =
    match guard_pending with
    | Some f -> f
    | None -> default_guard_pending vm
  in
  let lazy_pending =
    match vm.State.lazy_info with
    | None -> fun (_ : int) -> false
    | Some li -> fun cid -> Hashtbl.mem li.State.li_plan cid
  in
  let rep, n_stale = run_once ~stale_ok ~guard_pending ~lazy_pending vm in
  if
    rep.hv_ok || (not collect_stale) || explicit_stale
    || vm.State.guard_retained <> None
    || vm.State.lazy_info <> None
    || n_stale <> rep.hv_total_issues
  then rep
  else begin
    (* every issue is an unreferenced stale copy: garbage a collection
       erases, not corruption — collect once and take the second verdict *)
    ignore (Gc.collect vm);
    Jv_obs.Obs.incr vm.State.obs "vm.heapverify.stale_collections";
    let rep, _ = run_once ~stale_ok ~guard_pending ~lazy_pending vm in
    { rep with hv_collected = true }
  end
