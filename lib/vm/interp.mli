(** The execution engine: runs machine code in time slices that end only
    at VM safe points (yield points, returns, native-call blocking), so
    every parked thread is always at a safe point — the invariant GC,
    scheduling, and DSU all build on. *)

exception Trap of string
(** Runtime faults (null dereference, division by zero, bounds, failed
    casts, Sys.fail) are terminal per-thread, never per-VM. *)

exception Lazy_abort
(** Raised by the lazy-update read barrier when the open window is
    aborting: the current instruction has not executed, so [run_slice]
    parks the thread at its safe point to re-execute it once the
    window's rollback has restored the old version. *)

type slice_end = S_parked | S_blocked | S_finished | S_trapped of string

val run_slice : State.t -> State.vthread -> fuel:int -> slice_end

val guard_write : State.t -> addr:int -> what:string -> unit
(** Raise {!Trap} when a sandbox with the write guard armed forbids a
    store to [addr] (exposed so the updater's fault injection can push a
    simulated bad write through the same gate). *)

val retry_pending : State.t -> State.vthread -> unit
(** Re-run the native call a blocked thread is parked on (called by the
    scheduler once the block reason looks ready). *)

val do_return : State.t -> State.vthread -> value:int option -> bool
(** Complete a method return (pop frame, deliver result, advance caller);
    returns whether a DSU return barrier fired. *)

exception Sync_trap of string

val make_carrier : State.t -> State.vthread
(** A registered thread reusable across many synchronous calls (the
    updater makes one transformer call per transformed object). *)

val release_carrier : State.t -> State.vthread -> unit
val call_on : State.t -> State.vthread -> Rt.rt_method -> int array -> int

val call_sync : State.t -> Rt.rt_method -> int array -> int
(** Run a method to completion on a temporary thread; used for [<clinit>]
    at boot and Jvolve transformer functions during updates. *)
