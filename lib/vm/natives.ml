(* Native method implementations.

   GC-safety rule for natives: decode every reference argument into OCaml
   data *before* the first heap allocation, and when allocating several
   objects, [State.ensure_free] the total size up front so later
   allocations in the sequence cannot trigger a collection that moves the
   earlier ones.  (Native frames are invisible to the collector, exactly as
   in a real VM without handle support.) *)

module Simnet = Jv_simnet.Simnet

let str vm w =
  if Value.is_null w then None
  else Some (State.string_of_obj vm (Value.to_ref w))

let str_exn vm w what =
  match str vm w with
  | Some s -> s
  | None -> raise (Interp.Trap (Printf.sprintf "null string in %s" what))

let ret_string vm s = State.N_val (Value.of_ref (State.alloc_string vm s))

(* --- String ---------------------------------------------------------- *)

let string_natives vm0 =
  ignore vm0;
  [
    ( "String.length()I",
      fun vm _t args ->
        State.N_val (Value.of_int (String.length (str_exn vm args.(0) "length")))
    );
    ( "String.concat(LString;)LString;",
      fun vm _t args ->
        let a = str_exn vm args.(0) "concat" in
        let b = str_exn vm args.(1) "concat" in
        ret_string vm (a ^ b) );
    ( "String.equals(LString;)Z",
      fun vm _t args ->
        let a = str_exn vm args.(0) "equals" in
        match str vm args.(1) with
        | None -> State.N_val Value.false_w
        | Some b -> State.N_val (Value.of_bool (String.equal a b)) );
    ( "String.substring(II)LString;",
      fun vm _t args ->
        let s = str_exn vm args.(0) "substring" in
        let a = Value.to_int args.(1) and b = Value.to_int args.(2) in
        if a < 0 || b > String.length s || a > b then
          State.N_trap
            (Printf.sprintf "substring(%d,%d) out of range (length %d)" a b
               (String.length s))
        else ret_string vm (String.sub s a (b - a)) );
    ( "String.indexOf(LString;)I",
      fun vm _t args ->
        let s = str_exn vm args.(0) "indexOf" in
        let p = str_exn vm args.(1) "indexOf" in
        let n = String.length s and m = String.length p in
        let rec go i =
          if i + m > n then -1
          else if String.sub s i m = p then i
          else go (i + 1)
        in
        State.N_val (Value.of_int (go 0)) );
    ( "String.charAt(I)I",
      fun vm _t args ->
        let s = str_exn vm args.(0) "charAt" in
        let i = Value.to_int args.(1) in
        if i < 0 || i >= String.length s then
          State.N_trap (Printf.sprintf "charAt(%d) out of range" i)
        else State.N_val (Value.of_int (Char.code s.[i])) );
    ( "String.split(LString;I)[LString;",
      fun vm _t args ->
        let s = str_exn vm args.(0) "split" in
        let sep = str_exn vm args.(1) "split" in
        let limit = Value.to_int args.(2) in
        let parts =
          if String.length sep = 0 then [ s ]
          else begin
            let out = ref [] and start = ref 0 and count = ref 1 in
            let n = String.length s and m = String.length sep in
            let i = ref 0 in
            let continue_ = ref true in
            while !continue_ && !i + m <= n do
              if (limit <= 0 || !count < limit) && String.sub s !i m = sep
              then begin
                out := String.sub s !start (!i - !start) :: !out;
                incr count;
                start := !i + m;
                i := !i + m
              end
              else incr i;
              if limit > 0 && !count >= limit then continue_ := false
            done;
            List.rev (String.sub s !start (n - !start) :: !out)
          end
        in
        (* reserve everything up front: the array, then one String object
           per part (see the GC-safety rule above) *)
        let nparts = List.length parts in
        let words =
          Heap.array_header_words + nparts
          + (nparts * (Heap.header_words + 1))
        in
        State.ensure_free vm words;
        let arr = State.alloc_array vm ~len:nparts in
        List.iteri
          (fun i p ->
            let sobj = State.alloc_string vm p in
            Heap.set vm.State.heap ~addr:arr
              ~off:(Heap.array_header_words + i)
              (Value.of_ref sobj))
          parts;
        State.N_val (Value.of_ref arr) );
    ( "String.startsWith(LString;)Z",
      fun vm _t args ->
        let s = str_exn vm args.(0) "startsWith" in
        let p = str_exn vm args.(1) "startsWith" in
        State.N_val
          (Value.of_bool
             (String.length p <= String.length s
             && String.sub s 0 (String.length p) = p)) );
    ( "String.endsWith(LString;)Z",
      fun vm _t args ->
        let s = str_exn vm args.(0) "endsWith" in
        let p = str_exn vm args.(1) "endsWith" in
        let n = String.length s and m = String.length p in
        State.N_val (Value.of_bool (m <= n && String.sub s (n - m) m = p)) );
    ( "String.trim()LString;",
      fun vm _t args -> ret_string vm (String.trim (str_exn vm args.(0) "trim"))
    );
    ( "String.contains(LString;)Z",
      fun vm _t args ->
        let s = str_exn vm args.(0) "contains" in
        let p = str_exn vm args.(1) "contains" in
        let n = String.length s and m = String.length p in
        let rec go i =
          if i + m > n then false
          else String.sub s i m = p || go (i + 1)
        in
        State.N_val (Value.of_bool (go 0)) );
    ( "String.toInt()I",
      fun vm _t args ->
        let s = String.trim (str_exn vm args.(0) "toInt") in
        match int_of_string_opt s with
        | Some i -> State.N_val (Value.of_int i)
        | None -> State.N_val (Value.of_int 0) );
    ( "String.toLowerCase()LString;",
      fun vm _t args ->
        ret_string vm
          (String.lowercase_ascii (str_exn vm args.(0) "toLowerCase")) );
    ( "String.ofInt(I)LString;",
      fun vm _t args -> ret_string vm (string_of_int (Value.to_int args.(0)))
    );
  ]

(* --- Sys -------------------------------------------------------------- *)

let sys_natives =
  [
    ( "Sys.print(LString;)V",
      fun vm _t args ->
        Buffer.add_string vm.State.out (str_exn vm args.(0) "print");
        State.N_void );
    ( "Sys.println(LString;)V",
      fun vm _t args ->
        Buffer.add_string vm.State.out (str_exn vm args.(0) "println");
        Buffer.add_char vm.State.out '\n';
        State.N_void );
    ("Sys.time()I", fun vm _t _args -> State.N_val (Value.of_int vm.State.ticks));
    ( "Sys.fail(LString;)V",
      fun vm _t args -> State.N_trap ("Sys.fail: " ^ str_exn vm args.(0) "fail")
    );
    ( "Sys.random(I)I",
      fun vm _t args ->
        State.N_val (Value.of_int (State.next_random vm (Value.to_int args.(0))))
    );
  ]

(* --- Net -------------------------------------------------------------- *)

(* Connection handles: positive = the server side of a connection (from
   [Net.accept]); negative = the client side (from [Net.connectLoopback],
   an in-VM client talking to another service in the same VM). *)
let net_natives =
  [
    ( "Net.listen(I)I",
      fun vm _t args ->
        match Simnet.listen vm.State.net ~port:(Value.to_int args.(0)) with
        | id -> State.N_val (Value.of_int id)
        | exception Simnet.Net_error e -> State.N_trap e );
    ( "Net.accept(I)I",
      fun vm _t args ->
        let lid = Value.to_int args.(0) in
        match Simnet.accept vm.State.net ~listener_id:lid with
        | Some conn -> State.N_val (Value.of_int conn)
        | None -> State.N_block (State.B_accept lid)
        | exception Simnet.Net_error e -> State.N_trap e );
    ( "Net.connectLoopback(I)I",
      fun vm _t args ->
        match Simnet.connect vm.State.net ~port:(Value.to_int args.(0)) with
        | Some cid -> State.N_val (Value.of_int (-cid))
        | None -> State.N_val (Value.of_int 0) );
    ( "Net.recvLine(I)LString;",
      fun vm _t args ->
        let cid = Value.to_int args.(0) in
        let r =
          if cid < 0 then Simnet.client_recv vm.State.net ~conn_id:(-cid)
          else Simnet.recv_line vm.State.net ~conn_id:cid
        in
        match r with
        | `Line s -> ret_string vm s
        | `Eof -> State.N_val Value.null
        | `Wait -> State.N_block (State.B_recv cid)
        | exception Simnet.Net_error e -> State.N_trap e );
    ( "Net.send(ILString;)V",
      fun vm _t args ->
        let cid = Value.to_int args.(0) in
        let s = str_exn vm args.(1) "Net.send" in
        (* server-side responses feed the guard's error budget: a line the
           classifier rejects is an app-level 5xx, charged to the epoch of
           the code that produced it *)
        (match vm.State.response_classifier with
        | Some ok when cid > 0 && not (ok s) -> State.record_app_error vm
        | _ -> ());
        (try
           if cid < 0 then Simnet.client_send vm.State.net ~conn_id:(-cid) s
           else Simnet.send vm.State.net ~conn_id:cid s
         with Simnet.Net_error _ -> ());
        State.N_void );
    ( "Net.close(I)V",
      fun vm _t args ->
        let cid = Value.to_int args.(0) in
        if cid < 0 then Simnet.client_close vm.State.net ~conn_id:(-cid)
        else Simnet.close_server vm.State.net ~conn_id:cid;
        State.N_void );
  ]

(* --- Thread ------------------------------------------------------------ *)

let thread_natives =
  [
    ( "Thread.spawn(LObject;)V",
      fun vm _t args ->
        if Value.is_null args.(0) then State.N_trap "Thread.spawn(null)"
        else begin
          let addr = Value.to_ref args.(0) in
          let cls =
            Rt.class_by_id vm.State.reg (Heap.class_id vm.State.heap addr)
          in
          match Rt.find_vslot cls "run()V" with
          | None ->
              State.N_trap
                (Printf.sprintf "Thread.spawn: %s has no run() method"
                   cls.Rt.name)
          | Some slot ->
              let m = Rt.method_by_uid vm.State.reg cls.Rt.tib.(slot) in
              let code =
                try Jit.best_code vm m
                with Jit.Compile_error e ->
                  raise (Interp.Trap ("jit: " ^ e))
              in
              m.Rt.invocations <- m.Rt.invocations + 1;
              let fr = State.make_frame m code [| args.(0) |] in
              ignore (State.new_thread vm [ fr ]);
              State.N_void
        end );
    ( "Thread.yieldNow()V",
      fun vm t _args ->
        (* yield = sleep until the next scheduler round; on retry
           ([pending] set) the call completes *)
        if t.State.pending <> None then State.N_void
        else State.N_block (State.B_sleep (vm.State.ticks + 1)) );
    ( "Thread.sleep(I)V",
      fun vm t args ->
        if t.State.pending <> None then State.N_void
        else
          State.N_block
            (State.B_sleep (vm.State.ticks + max 1 (Value.to_int args.(0)))) );
  ]

(* --- Jvolve ------------------------------------------------------------- *)

let jvolve_natives =
  [
    ( "Jvolve.transform(LObject;)V",
      fun vm _t args ->
        (if not (Value.is_null args.(0)) then
           match vm.State.force_transform with
           | Some f -> f vm (Value.to_ref args.(0))
           | None -> ());
        State.N_void );
  ]

let install vm =
  List.iter
    (fun (k, f) -> Hashtbl.replace vm.State.natives k f)
    (string_natives vm @ sys_natives @ net_natives @ thread_natives
   @ jvolve_natives)
