(* The execution engine: runs machine code in time slices.

   A slice ends only at VM safe points — yield points (method entry / loop
   back edge), returns, or native-call blocking — so every parked thread is
   always at a safe point, exactly the invariant Jikes RVM maintains for
   GC, scheduling and (in Jvolve) dynamic updates.

   Runtime faults (null dereference, division by zero, array bounds, failed
   casts) trap: the offending thread dies and the fault is logged.  MiniJava
   has no exception handling, so traps are terminal per-thread, never
   per-VM. *)

module CF = Jv_classfile
open Machine

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type slice_end = S_parked | S_blocked | S_finished | S_trapped of string

let max_frames = 4096

(* Per-dereference indirection check (the JDrums/DVM baseline; paper §5).
   Translates the reference *in place* on the operand stack so that it
   remains a GC root while the lazy hook possibly allocates a replacement
   object.  In normal (Jvolve) mode this code never runs: the whole point
   of the paper's eager GC-based update is that steady-state execution
   pays no per-dereference tax. *)
let deref_check_slot vm (fr : State.frame) idx =
  if vm.State.config.indirection_mode && idx >= 0 then begin
    vm.State.deref_checks <- vm.State.deref_checks + 1;
    let w = fr.State.ostack.(idx) in
    if Value.is_ref w then
      match vm.State.lazy_hook with
      | Some hook -> hook vm fr idx
      | None -> (
          if Hashtbl.length vm.State.handle_table > 0 then
            match Hashtbl.find_opt vm.State.handle_table (Value.to_ref w) with
            | Some n -> fr.State.ostack.(idx) <- Value.of_ref n
            | None -> ())
  end

(* Raised by the lazy-update read barrier when the window is aborting (a
   residual transformer trapped): the current instruction has not
   executed, so the thread parks at its safe point and re-executes it
   once the window's rollback has restored the old version. *)
exception Lazy_abort

(* Lazy-update read barrier.  While a lazy update window is open every
   dereference site consults the hook, which chases lazy-forward markers
   and transforms still-pending old-epoch objects on first access,
   rewriting the operand-stack slot in place (the slot stays a GC root
   while the transformer allocates).  With no window open the cost is a
   single [None] check — steady state still pays no per-dereference tax,
   unlike the JDrums-style [indirection_mode] baseline above. *)
let lazy_check_slot vm (fr : State.frame) idx =
  match vm.State.lazy_barrier with
  | None -> ()
  | Some hook ->
      if idx >= 0 && Value.is_ref fr.State.ostack.(idx) then
        hook vm fr.State.ostack idx

let ref_addr what w =
  if Value.is_null w then trap "null dereference in %s" what
  else Value.to_ref w

(* Transformer-sandbox write guard: while the updater runs object
   transformers, heap stores may only target the objects under
   transformation or fresh allocations.  Exposed so the updater's
   [transformer.badwrite] fault point can drive the same gate. *)
let guard_write vm ~addr ~what =
  match vm.State.sandbox with
  | Some sb when sb.State.sb_guard ->
      if not (State.sandbox_may_write vm sb addr) then
        trap "sandbox: %s to object %d outside the transformed object set"
          what addr
  | _ -> ()

(* Charge one instruction against the active sandbox's fuel budget. *)
let charge_fuel vm =
  match vm.State.sandbox with
  | None -> ()
  | Some sb ->
      sb.State.sb_steps <- sb.State.sb_steps + 1;
      sb.State.sb_total_steps <- sb.State.sb_total_steps + 1;
      if sb.State.sb_steps > sb.State.sb_fuel then
        trap "transformer fuel exhausted after %d steps" sb.State.sb_steps

(* Complete a method return: pop the frame, deliver the result, advance the
   caller, fire any installed return barrier. *)
let do_return vm (t : State.vthread) ~(value : int option) =
  match t.State.frames with
  | [] -> assert false
  | fr :: rest ->
      let fired = fr.State.barrier in
      t.State.frames <- rest;
      (match rest with
      | caller :: _ ->
          (match value with
          | Some v -> State.push_op caller v
          | None -> ());
          caller.State.pc <- caller.State.pc + 1
      | [] ->
          t.State.last_result <- Option.value value ~default:0;
          t.State.tstate <- State.T_done);
      if fired then begin
        vm.State.barrier_fired <- true;
        Jv_obs.Obs.incr vm.State.obs "vm.dsu.return_barrier_hits";
        Jv_obs.Obs.emit vm.State.obs ~scope:"vm.dsu" "barrier.fired"
          [ ("tid", Jv_obs.Obs.Int t.State.tid) ]
      end;
      fired

let run_native vm (t : State.vthread) (m : Rt.rt_method) (args : int array) :
    [ `Done | `Blocked ] =
  let key = Option.get m.Rt.native_key in
  let fn =
    match Hashtbl.find_opt vm.State.natives key with
    | Some f -> f
    | None -> trap "unlinked native method %s" key
  in
  let has_ret = not (CF.Types.equal_ty m.Rt.m_sig.CF.Types.ret CF.Types.TVoid) in
  match fn vm t args with
  | State.N_val v ->
      (match t.State.frames with
      | fr :: _ ->
          if has_ret then State.push_op fr v;
          fr.State.pc <- fr.State.pc + 1
      | [] -> ());
      `Done
  | State.N_void ->
      (match t.State.frames with
      | fr :: _ -> fr.State.pc <- fr.State.pc + 1
      | [] -> ());
      `Done
  | State.N_block reason ->
      t.State.pending <-
        Some { State.pn_key = key; pn_args = args; pn_ret = has_ret };
      t.State.tstate <- State.T_blocked reason;
      `Blocked
  | State.N_trap msg -> trap "%s" msg

(* Invoke [m] with [argc] words popped from [fr]'s operand stack.  The
   caller's pc is left pointing at the invoke instruction; [do_return]
   advances it, which keeps parked caller frames relocatable by OSR. *)
let do_call vm (t : State.vthread) (fr : State.frame) (m : Rt.rt_method) argc :
    [ `Done | `Blocked ] =
  if not m.Rt.m_valid then
    trap "invocation of invalidated method %s" m.Rt.m_name;
  let args = Array.make argc 0 in
  for i = argc - 1 downto 0 do
    args.(i) <- State.pop_op fr
  done;
  if m.Rt.native_key <> None then run_native vm t m args
  else begin
    if List.length t.State.frames >= max_frames then trap "stack overflow";
    m.Rt.invocations <- m.Rt.invocations + 1;
    (try Jit.maybe_opt vm m
     with Jit.Compile_error e -> trap "opt compilation failed: %s" e);
    let code =
      try Jit.best_code vm m
      with Jit.Compile_error e -> trap "compilation failed: %s" e
    in
    let callee = State.make_frame m code args in
    t.State.frames <- callee :: t.State.frames;
    `Done
  end

(* Execute one thread for up to [fuel] instructions, stopping only at safe
   points.  Returns how the slice ended. *)
let run_slice vm (t : State.vthread) ~fuel : slice_end =
  Jv_obs.Obs.incr vm.State.obs "vm.interp.slices";
  let heap = vm.State.heap in
  let reg = vm.State.reg in
  let fuel = ref fuel in
  let result = ref None in
  (try
     while !result = None do
       match t.State.frames with
       | [] ->
           t.State.tstate <- State.T_done;
           result := Some S_finished
       | fr :: _ -> (
           let code = fr.State.code.code in
           if fr.State.pc < 0 || fr.State.pc >= Array.length code then
             trap "pc %d out of range" fr.State.pc;
           let ins = code.(fr.State.pc) in
           vm.State.instr_count <- vm.State.instr_count + 1;
           decr fuel;
           charge_fuel vm;
           let next () = fr.State.pc <- fr.State.pc + 1 in
           match ins with
           | M_const w ->
               State.push_op fr w;
               next ()
           | M_str sid ->
               let addr = State.alloc_string_sid vm sid in
               State.push_op fr (Value.of_ref addr);
               next ()
           | M_load i ->
               State.push_op fr fr.State.locals.(i);
               next ()
           | M_store i ->
               fr.State.locals.(i) <- State.pop_op fr;
               next ()
           | M_dup ->
               let v = State.pop_op fr in
               State.push_op fr v;
               State.push_op fr v;
               next ()
           | M_pop ->
               ignore (State.pop_op fr);
               next ()
           | M_swap ->
               let a = State.pop_op fr in
               let b = State.pop_op fr in
               State.push_op fr a;
               State.push_op fr b;
               next ()
           | M_add | M_sub | M_mul | M_div | M_rem ->
               let b = Value.to_int (State.pop_op fr) in
               let a = Value.to_int (State.pop_op fr) in
               let r =
                 match ins with
                 | M_add -> a + b
                 | M_sub -> a - b
                 | M_mul -> a * b
                 | M_div ->
                     if b = 0 then trap "division by zero" else a / b
                 | M_rem -> if b = 0 then trap "division by zero" else a mod b
                 | _ -> assert false
               in
               State.push_op fr (Value.of_int r);
               next ()
           | M_neg ->
               let a = Value.to_int (State.pop_op fr) in
               State.push_op fr (Value.of_int (-a));
               next ()
           | M_icmp c ->
               let b = Value.to_int (State.pop_op fr) in
               let a = Value.to_int (State.pop_op fr) in
               let r =
                 match c with
                 | CF.Instr.Eq -> a = b
                 | CF.Instr.Ne -> a <> b
                 | CF.Instr.Lt -> a < b
                 | CF.Instr.Le -> a <= b
                 | CF.Instr.Gt -> a > b
                 | CF.Instr.Ge -> a >= b
               in
               State.push_op fr (Value.of_bool r);
               next ()
           | M_bnot ->
               let a = Value.to_bool (State.pop_op fr) in
               State.push_op fr (Value.of_bool (not a));
               next ()
           | M_acmp eq ->
               (* identity compares must see through lazy-forward
                  markers, or an original and its replacement would
                  compare unequal mid-window *)
               lazy_check_slot vm fr (fr.State.sp - 1);
               lazy_check_slot vm fr (fr.State.sp - 2);
               let b = State.pop_op fr in
               let a = State.pop_op fr in
               State.push_op fr (Value.of_bool (if eq then a = b else a <> b));
               next ()
           | M_if_true target ->
               let c = Value.to_bool (State.pop_op fr) in
               fr.State.pc <- (if c then target else fr.State.pc + 1)
           | M_if_false target ->
               let c = Value.to_bool (State.pop_op fr) in
               fr.State.pc <- (if c then fr.State.pc + 1 else target)
           | M_goto target -> fr.State.pc <- target
           | M_getfield off ->
               deref_check_slot vm fr (fr.State.sp - 1);
               lazy_check_slot vm fr (fr.State.sp - 1);
               let addr = ref_addr "getfield" (State.pop_op fr) in
               State.push_op fr (Heap.get heap ~addr ~off);
               next ()
           | M_putfield off ->
               deref_check_slot vm fr (fr.State.sp - 2);
               lazy_check_slot vm fr (fr.State.sp - 2);
               let v = State.pop_op fr in
               let addr = ref_addr "putfield" (State.pop_op fr) in
               guard_write vm ~addr ~what:"putfield";
               Heap.set heap ~addr ~off v;
               next ()
           | M_getstatic slot ->
               State.push_op fr (State.jtoc_get vm slot);
               next ()
           | M_putstatic slot ->
               State.jtoc_set vm slot (State.pop_op fr);
               next ()
           | M_invokevirtual (slot, argc) ->
               let recv_idx = fr.State.sp - argc in
               if recv_idx < 0 then trap "operand stack underflow at call";
               deref_check_slot vm fr recv_idx;
               lazy_check_slot vm fr recv_idx;
               let addr = ref_addr "virtual call" fr.State.ostack.(recv_idx) in
               let cls = Rt.class_by_id reg (Heap.class_id heap addr) in
               if slot >= Array.length cls.Rt.tib then
                 trap "no TIB slot %d in class %s" slot cls.Rt.name;
               let m = Rt.method_by_uid reg cls.Rt.tib.(slot) in
               if do_call vm t fr m argc = `Blocked then
                 result := Some S_blocked
           | M_invokestatic (uid, argc) ->
               let m = Rt.method_by_uid reg uid in
               if do_call vm t fr m argc = `Blocked then
                 result := Some S_blocked
           | M_invokedirect (uid, argc) ->
               let recv_idx = fr.State.sp - argc in
               if recv_idx < 0 then trap "operand stack underflow at call";
               if Value.is_null fr.State.ostack.(recv_idx) then
                 trap "null dereference in direct call";
               let m = Rt.method_by_uid reg uid in
               if do_call vm t fr m argc = `Blocked then
                 result := Some S_blocked
           | M_new cid ->
               let cls = Rt.class_by_id reg cid in
               if not cls.Rt.valid then
                 trap "new of superseded class %s" cls.Rt.name;
               let addr = State.alloc_object vm cls in
               State.push_op fr (Value.of_ref addr);
               next ()
           | M_newarray _ ->
               let len = Value.to_int (State.pop_op fr) in
               if len < 0 then trap "negative array size %d" len;
               let addr = State.alloc_array vm ~len in
               State.push_op fr (Value.of_ref addr);
               next ()
           | M_aload ->
               let idx = Value.to_int (State.pop_op fr) in
               let addr = ref_addr "array load" (State.pop_op fr) in
               let len = Heap.array_length heap addr in
               if idx < 0 || idx >= len then
                 trap "array index %d out of bounds (length %d)" idx len;
               State.push_op fr
                 (Heap.get heap ~addr ~off:(Heap.array_header_words + idx));
               next ()
           | M_astore ->
               let v = State.pop_op fr in
               let idx = Value.to_int (State.pop_op fr) in
               let addr = ref_addr "array store" (State.pop_op fr) in
               let len = Heap.array_length heap addr in
               if idx < 0 || idx >= len then
                 trap "array index %d out of bounds (length %d)" idx len;
               guard_write vm ~addr ~what:"array store";
               Heap.set heap ~addr ~off:(Heap.array_header_words + idx) v;
               next ()
           | M_alen ->
               let addr = ref_addr "arraylength" (State.pop_op fr) in
               State.push_op fr (Value.of_int (Heap.array_length heap addr));
               next ()
           | M_checkcast cid ->
               (* the class-id read below must see the current-epoch
                  object, or a pending old-epoch instance would fail a
                  cast its replacement passes *)
               lazy_check_slot vm fr (fr.State.sp - 1);
               let w = State.pop_op fr in
               if Value.is_null w then State.push_op fr w
               else begin
                 let ocid = Heap.class_id heap (Value.to_ref w) in
                 if Rt.is_subclass_id reg ~sub:ocid ~super:cid then
                   State.push_op fr w
                 else
                   trap "class cast: %s is not a %s"
                     (Rt.class_by_id reg ocid).Rt.name
                     (Rt.class_by_id reg cid).Rt.name
               end;
               next ()
           | M_instanceof cid ->
               lazy_check_slot vm fr (fr.State.sp - 1);
               let w = State.pop_op fr in
               let r =
                 (not (Value.is_null w))
                 && Rt.is_subclass_id reg
                      ~sub:(Heap.class_id heap (Value.to_ref w))
                      ~super:cid
               in
               State.push_op fr (Value.of_bool r);
               next ()
           | M_return ->
               let fired = do_return vm t ~value:None in
               if t.State.tstate = State.T_done then
                 result := Some S_finished
               else if fired then begin
                 (* the thread blocks at its safe point until the pending
                    update resolves (paper §3.2) *)
                 t.State.tstate <- State.T_blocked State.B_dsu;
                 result := Some S_blocked
               end
               else if !fuel <= 0 then result := Some S_parked
           | M_return_val ->
               let v = State.pop_op fr in
               let fired = do_return vm t ~value:(Some v) in
               if t.State.tstate = State.T_done then
                 result := Some S_finished
               else if fired then begin
                 t.State.tstate <- State.T_blocked State.B_dsu;
                 result := Some S_blocked
               end
               else if !fuel <= 0 then result := Some S_parked
           | M_yield _ ->
               next ();
               if !fuel <= 0 then result := Some S_parked)
     done
   with
  | Lazy_abort ->
      (* the lazy update window is rolling back: the instruction whose
         barrier raised has not executed, so the thread parks at its
         safe point and re-executes it on the restored old version *)
      t.State.tstate <- State.T_blocked State.B_dsu;
      result := Some S_blocked
  | Trap msg ->
      t.State.tstate <- State.T_trapped msg;
      State.record_trap vm t msg;
      result := Some (S_trapped msg)
  | Jit.Compile_error msg ->
      let msg = "jit: " ^ msg in
      t.State.tstate <- State.T_trapped msg;
      State.record_trap vm t msg;
      result := Some (S_trapped msg));
  match !result with
  | Some r -> r
  | None -> S_finished

(* Re-run the native call a blocked thread is parked on.  Called by the
   scheduler once the block reason looks ready. *)
let retry_pending vm (t : State.vthread) =
  try
    match (t.State.pending, t.State.frames) with
    | Some pn, fr :: _ -> (
      let fn =
        match Hashtbl.find_opt vm.State.natives pn.State.pn_key with
        | Some f -> f
        | None -> State.fatal "unlinked native %s on retry" pn.State.pn_key
      in
      match fn vm t pn.State.pn_args with
      | State.N_val v ->
          t.State.pending <- None;
          if pn.State.pn_ret then State.push_op fr v;
          fr.State.pc <- fr.State.pc + 1;
          t.State.tstate <- State.T_runnable
      | State.N_void ->
          t.State.pending <- None;
          fr.State.pc <- fr.State.pc + 1;
          t.State.tstate <- State.T_runnable
      | State.N_block reason -> t.State.tstate <- State.T_blocked reason
        | State.N_trap msg ->
            t.State.pending <- None;
            t.State.tstate <- State.T_trapped msg;
            State.record_trap vm t msg)
    | _ -> ()
  with Trap msg ->
    t.State.pending <- None;
    t.State.tstate <- State.T_trapped msg;
    State.record_trap vm t msg

(* Run a method synchronously to completion on a temporary thread.  Used
   for <clinit> at boot and for Jvolve transformer functions during an
   update (the paper executes transformers "normally, because they are
   otherwise standard Java").  The temporary thread is registered so its
   frames are GC roots. *)
exception Sync_trap of string

(* A carrier thread can be reused across many synchronous calls (the
   updater makes one [jvolveObject] call per transformed object, so the
   per-call thread set-up cost matters — Table 1's transformer column). *)
let make_carrier vm : State.vthread = State.new_thread vm []

let release_carrier vm (t : State.vthread) =
  vm.State.threads <- List.filter (fun x -> x != t) vm.State.threads

let call_on vm (t : State.vthread) (m : Rt.rt_method) (args : int array) : int
    =
  let code =
    try Jit.best_code vm m
    with Jit.Compile_error e -> raise (Sync_trap ("jit: " ^ e))
  in
  t.State.frames <- [ State.make_frame m code args ];
  t.State.tstate <- State.T_runnable;
  t.State.last_result <- 0;
  let rec loop () =
    match run_slice vm t ~fuel:max_int with
    | S_finished -> t.State.last_result
    | S_parked -> loop ()
    | S_blocked ->
        t.State.frames <- [];
        t.State.tstate <- State.T_done;
        raise (Sync_trap "synchronous VM call blocked on I/O")
    | S_trapped msg ->
        t.State.frames <- [];
        raise (Sync_trap msg)
  in
  loop ()

let call_sync vm (m : Rt.rt_method) (args : int array) : int =
  let t = make_carrier vm in
  Fun.protect
    ~finally:(fun () -> release_carrier vm t)
    (fun () -> call_on vm t m args)
