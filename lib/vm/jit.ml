(* The JIT: translates verified bytecode into resolved machine code.

   Like Jikes RVM, the VM is compile-only — methods never run from
   bytecode.  The *base* compiler is a 1:1 translation that resolves every
   symbolic reference against current class metadata: field names become
   hard word offsets, statics become JTOC slots, virtual calls become TIB
   slot indices, static/direct calls become method uids.  Because the
   translation is 1:1, a base-compiled method's [bc_map] is the identity,
   which is what makes OSR of category-(2) methods trivial to re-locate.

   The *opt* compiler additionally inlines small static/direct callees
   (transitively, up to a depth budget).  Inlined regions map back to the
   call-site bytecode pc and are recorded in [compiled.inlined] so the DSU
   safe-point analysis can restrict inline *callers* of restricted methods
   (paper §3.2).

   Lazy updates: the read barrier lives at the dereference *machine
   instructions* (M_getfield/M_putfield/M_invokevirtual/M_checkcast/
   M_instanceof/M_acmp in [Interp]), and both compilers emit exactly
   those instructions for every dereference — inlining rewrites call
   structure, never field access — so base and opt code participate in
   the barrier identically and no compiled path can reach an old-epoch
   object's fields around it.  Offsets baked into compiled code are
   always current-epoch: an update invalidates every method whose
   resolved offsets it stales before any new-epoch code runs. *)

module CF = Jv_classfile
open Machine

exception Compile_error of string

let cerr fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* growable emission buffer *)
type buf = {
  mutable code : minstr array;
  mutable bc : int array;
  mutable n : int;
}

let new_buf () = { code = Array.make 64 M_return; bc = Array.make 64 0; n = 0 }

let emit b i ~bc =
  if b.n >= Array.length b.code then begin
    let c = Array.make (2 * Array.length b.code) M_return in
    Array.blit b.code 0 c 0 b.n;
    b.code <- c;
    let m = Array.make (2 * Array.length b.bc) 0 in
    Array.blit b.bc 0 m 0 b.n;
    b.bc <- m
  end;
  b.code.(b.n) <- i;
  b.bc.(b.n) <- bc;
  b.n <- b.n + 1

let resolve_class vm name =
  match Rt.find_class vm.State.reg name with
  | Some c -> c
  | None -> cerr "unresolved class %s" name

let resolve_field vm (f : CF.Instr.field_ref) =
  let cls = resolve_class vm f.CF.Instr.f_class in
  match Rt.find_field_info cls f.CF.Instr.f_name with
  | Some fi -> fi
  | None -> cerr "unresolved field %s" (CF.Instr.field_ref_to_string f)

let resolve_static vm (f : CF.Instr.field_ref) =
  let cls = resolve_class vm f.CF.Instr.f_class in
  match Rt.find_static_info vm.State.reg cls f.CF.Instr.f_name with
  | Some si -> si
  | None -> cerr "unresolved static %s" (CF.Instr.field_ref_to_string f)

let resolve_callee vm (m : CF.Instr.method_ref) =
  let cls = resolve_class vm m.CF.Instr.m_class in
  match Rt.resolve_method vm.State.reg cls m.CF.Instr.m_name m.CF.Instr.m_sig with
  | Some rm -> rm
  | None -> cerr "unresolved method %s" (CF.Instr.method_ref_to_string m)

let cid_of_ty vm = function
  | CF.Types.TRef c -> (resolve_class vm c).Rt.cid
  | CF.Types.TArray _ -> vm.State.array_cid
  | t -> cerr "non-reference type in cast: %s" (CF.Types.to_string t)

(* Decide whether a callee may be inlined at this site. *)
let inlinable vm ~depth ~chain (callee : Rt.rt_method) =
  depth > 0
  && (not (List.mem callee.Rt.uid chain))
  && callee.Rt.m_valid
  &&
  match callee.Rt.bytecode with
  | None -> false
  | Some code -> Array.length code <= vm.State.config.inline_max_code

(* Emit the body of [code] into [b].

   [base_local]  — slot offset applied to every Load/Store (0 for the outer
                   method, fresh slots for inlined bodies).
   [bc_of]       — maps a local bytecode pc to the pc recorded in [bc_map]
                   (identity for the outer method; the call-site pc,
                   constantly, for inlined bodies).
   [depth]/[chain] — inlining budget and cycle guard.
   [opt]         — whether inlining is enabled at all.
   [ret_patches] — for inlined bodies: indices of placeholder gotos that
                   must be patched to the block end.  [None] for the outer
                   body, where returns are real returns.
   Returns the inlined-method uids encountered. *)
let rec emit_body vm b (code : CF.Instr.t array) ~base_local ~bc_of ~depth
    ~chain ~opt ~next_local ~spans
    ~(ret_patches : int list ref option) : int list =
  let n = Array.length code in
  let bc2mc = Array.make n (-1) in
  let patches = ref [] (* (machine idx, local bytecode target) *) in
  let inlined = ref [] in
  let placeholder_branch idx target =
    patches := (idx, target) :: !patches;
    ignore idx
  in
  let emit_call_or_inline bc_pc (mr : CF.Instr.method_ref) kind =
    let callee = resolve_callee vm mr in
    let argc =
      List.length mr.CF.Instr.m_sig.CF.Types.params
      + match kind with `Static -> 0 | `Direct -> 1
    in
    if opt && callee.Rt.native_key = None && inlinable vm ~depth ~chain callee
    then begin
      inlined := callee.Rt.uid :: !inlined;
      let callee_code = Option.get callee.Rt.bytecode in
      let span_start = b.n in
      (* give the callee fresh local slots *)
      let base = !next_local in
      next_local := base + max callee.Rt.max_locals argc;
      (* pop arguments into the callee's parameter slots, last arg first *)
      for i = argc - 1 downto 0 do
        emit b (M_store (base + i)) ~bc:(bc_of bc_pc)
      done;
      let inner_rets = ref [] in
      let sub =
        emit_body vm b callee_code ~base_local:base
          ~bc_of:(fun _ -> bc_of bc_pc)
          ~depth:(depth - 1)
          ~chain:(callee.Rt.uid :: chain)
          ~opt ~next_local ~spans ~ret_patches:(Some inner_rets)
      in
      inlined := sub @ !inlined;
      (* patch the inlined body's returns to land here (the block end) *)
      let land_pc = b.n in
      List.iter
        (fun idx ->
          b.code.(idx) <-
            (match b.code.(idx) with
            | M_goto _ -> M_goto land_pc
            | other -> other))
        !inner_rets;
      spans := (span_start, b.n) :: !spans
    end
    else
      let mi =
        match kind with
        | `Static -> M_invokestatic (callee.Rt.uid, argc)
        | `Direct -> M_invokedirect (callee.Rt.uid, argc)
      in
      emit b mi ~bc:(bc_of bc_pc)
  in
  Array.iteri
    (fun bc_pc (ins : CF.Instr.t) ->
      bc2mc.(bc_pc) <- b.n;
      let bc = bc_of bc_pc in
      match ins with
      | Const_int i -> emit b (M_const (Value.of_int i)) ~bc
      | Const_bool v -> emit b (M_const (Value.of_bool v)) ~bc
      | Const_str s -> emit b (M_str (State.intern_string vm s)) ~bc
      | Const_null -> emit b (M_const Value.null) ~bc
      | Load i -> emit b (M_load (base_local + i)) ~bc
      | Store i -> emit b (M_store (base_local + i)) ~bc
      | Dup -> emit b M_dup ~bc
      | Pop -> emit b M_pop ~bc
      | Swap -> emit b M_swap ~bc
      | Binop Add -> emit b M_add ~bc
      | Binop Sub -> emit b M_sub ~bc
      | Binop Mul -> emit b M_mul ~bc
      | Binop Div -> emit b M_div ~bc
      | Binop Rem -> emit b M_rem ~bc
      | Neg -> emit b M_neg ~bc
      | Icmp c -> emit b (M_icmp c) ~bc
      | Bnot -> emit b M_bnot ~bc
      | Acmp_eq -> emit b (M_acmp true) ~bc
      | Acmp_ne -> emit b (M_acmp false) ~bc
      | If_true t ->
          placeholder_branch b.n t;
          emit b (M_if_true (-1)) ~bc
      | If_false t ->
          placeholder_branch b.n t;
          emit b (M_if_false (-1)) ~bc
      | Goto t ->
          placeholder_branch b.n t;
          emit b (M_goto (-1)) ~bc
      | Get_field f -> emit b (M_getfield (resolve_field vm f).Rt.fi_offset) ~bc
      | Put_field f -> emit b (M_putfield (resolve_field vm f).Rt.fi_offset) ~bc
      | Get_static f ->
          emit b (M_getstatic (resolve_static vm f).Rt.si_slot) ~bc
      | Put_static f ->
          emit b (M_putstatic (resolve_static vm f).Rt.si_slot) ~bc
      | Invoke_virtual mr ->
          let cls = resolve_class vm mr.CF.Instr.m_class in
          let key = Rt.mangle mr.CF.Instr.m_name mr.CF.Instr.m_sig in
          let slot =
            match Rt.find_vslot cls key with
            | Some s -> s
            | None -> cerr "no virtual slot for %s in %s" key cls.Rt.name
          in
          let argc = 1 + List.length mr.CF.Instr.m_sig.CF.Types.params in
          emit b (M_invokevirtual (slot, argc)) ~bc
      | Invoke_static mr -> emit_call_or_inline bc_pc mr `Static
      | Invoke_direct mr -> emit_call_or_inline bc_pc mr `Direct
      | New_obj c -> emit b (M_new (resolve_class vm c).Rt.cid) ~bc
      | New_array _ -> emit b (M_newarray vm.State.array_cid) ~bc
      | Array_load _ -> emit b M_aload ~bc
      | Array_store _ -> emit b M_astore ~bc
      | Array_len -> emit b M_alen ~bc
      | Check_cast t -> emit b (M_checkcast (cid_of_ty vm t)) ~bc
      | Instance_of t -> emit b (M_instanceof (cid_of_ty vm t)) ~bc
      | Return -> (
          match ret_patches with
          | None -> emit b M_return ~bc
          | Some acc ->
              acc := b.n :: !acc;
              emit b (M_goto (-1)) ~bc)
      | Return_val -> (
          match ret_patches with
          | None -> emit b M_return_val ~bc
          | Some acc ->
              (* the return value is already on the operand stack; just jump
                 past the inlined block *)
              acc := b.n :: !acc;
              emit b (M_goto (-1)) ~bc)
      | Yield CF.Instr.Y_entry ->
          (* inlined bodies lose their entry yield point, like real
             inlining elides the callee prologue *)
          if ret_patches = None then emit b (M_yield CF.Instr.Y_entry) ~bc
      | Yield CF.Instr.Y_backedge -> emit b (M_yield CF.Instr.Y_backedge) ~bc)
    code;
  (* patch local branches *)
  List.iter
    (fun (idx, target) ->
      if target < 0 || target >= n || bc2mc.(target) < 0 then
        cerr "branch target %d unresolved" target;
      let t = bc2mc.(target) in
      b.code.(idx) <-
        (match b.code.(idx) with
        | M_if_true _ -> M_if_true t
        | M_if_false _ -> M_if_false t
        | M_goto _ -> M_goto t
        | _ -> assert false))
    !patches;
  !inlined

let compile vm (m : Rt.rt_method) (level : level) : compiled =
  match m.Rt.bytecode with
  | None -> cerr "cannot compile native method %s" m.Rt.m_name
  | Some code ->
      let b = new_buf () in
      let next_local = ref m.Rt.max_locals in
      let opt = level = Opt in
      let spans = ref [] in
      let inlined =
        emit_body vm b code ~base_local:0
          ~bc_of:(fun pc -> pc)
          ~depth:(if opt then vm.State.config.inline_depth else 0)
          ~chain:[ m.Rt.uid ] ~opt ~next_local ~spans ~ret_patches:None
      in
      let mcode = Array.sub b.code 0 b.n in
      let bc_map = Array.sub b.bc 0 b.n in
      if level = Base then begin
        (* the base compiler must be exactly 1:1 — OSR relies on it *)
        assert (Array.length mcode = Array.length code);
        Array.iteri (fun i bcpc -> assert (bcpc = i)) bc_map
      end;
      (match level with
      | Base ->
          vm.State.compile_count <- vm.State.compile_count + 1;
          Jv_obs.Obs.incr vm.State.obs "vm.jit.base_compiles"
      | Opt ->
          vm.State.opt_compile_count <- vm.State.opt_compile_count + 1;
          Jv_obs.Obs.incr vm.State.obs "vm.jit.opt_compiles");
      {
        code = mcode;
        bc_map;
        level;
        inlined = List.sort_uniq compare inlined;
        inline_spans = List.rev !spans;
        owner_uid = m.Rt.uid;
        epoch = vm.State.reg.Rt.epoch;
        max_stack = compute_max_stack mcode;
        frame_locals = !next_local;
      }

(* Compile-on-demand entry points used by the interpreter. *)
let ensure_base vm (m : Rt.rt_method) : compiled =
  match m.Rt.base_code with
  | Some c -> c
  | None ->
      let c = compile vm m Base in
      m.Rt.base_code <- Some c;
      c

let best_code vm (m : Rt.rt_method) : compiled =
  match m.Rt.opt_code with Some c -> c | None -> ensure_base vm m

(* Adaptive recompilation: called by the interpreter when a method crosses
   the hotness threshold. *)
let maybe_opt vm (m : Rt.rt_method) =
  if
    m.Rt.opt_code = None
    && m.Rt.bytecode <> None
    && m.Rt.invocations >= vm.State.config.opt_threshold
  then m.Rt.opt_code <- Some (compile vm m Opt)
