(** The semi-space copying collector with the Jvolve extension (paper
    §3.4).

    A normal collection is a Cheney scan.  Given a {e transform plan}
    (old class id → new class id), each first-touched instance of an
    updated class is replaced by a zeroed new-layout object, a verbatim
    copy of the old object is kept, the forwarding pointer targets the
    NEW object, and the (old copy, new object) pair is appended to the
    update log.  Both land ahead of the scan pointer, so the old copy's
    reference fields are forwarded to {e transformed} referents — the
    invariant Jvolve's transformer model relies on. *)

type transform_plan = (int, int) Hashtbl.t

type result = {
  gc_ms : float;
  copied_objects : int;
  transformed_objects : int;
  copied_words : int;
  update_log : int array;
      (** flattened (old copy, new object) pairs as {e encoded reference
          words}, so the log can be registered as an extra-roots array
          while transformers run *)
}

val collect :
  ?plan:transform_plan -> ?redirect:(int, int) Hashtbl.t -> State.t -> result
(** Roots: the JTOC, every thread frame's locals and live operand stack,
    pending native arguments, [State.extra_roots] arrays (rewritten in
    place), and the indirection baseline's handle table.

    [redirect] (new addr → old-copy addr, decoded from an update log) is
    the updater's transaction rollback: forwarding chases the redirect
    first, so every reference that landed on a half-transformed
    new-layout object moves back to its pristine old copy, and the new
    objects die with this collection. *)
