(** Public facade over the VM substrate.

    {[
      let vm = Vm.create () in
      Vm.boot vm classes;
      ignore (Vm.spawn_main vm ~main_class:"Main");
      Vm.run vm ~rounds:100;
      print_string (Vm.output vm)
    ]} *)

type t = State.t

val create : ?config:State.config -> unit -> t

val boot : t -> Jv_classfile.Cls.t list -> unit
(** Verify and load a program (builtins injected); raises
    {!Classloader.Load_error}. *)

val spawn_main : t -> main_class:string -> State.vthread
val run : t -> rounds:int -> unit

val run_to_quiescence :
  ?max_rounds:int -> t -> [ `All_done | `Deadlocked | `Max_rounds ]

val output : t -> string
(** Everything the program printed via [Sys.print]/[Sys.println]. *)

val ticks : t -> int
val net : t -> Jv_simnet.Simnet.t

val obs : t -> Jv_obs.Obs.t
(** The VM's observability sink: flight-recorder events and metrics,
    tick-stamped by this VM's logical clock. *)

val gc : t -> Gc.result
(** Force a plain full collection. *)

val add_poller : t -> (State.t -> unit) -> unit
(** Register a harness hook run at the start of every scheduler round
    (workload drivers pumping the simulated network). *)

val clear_pollers : t -> unit
val live_threads : t -> State.vthread list

val set_faults : t -> Jv_faults.Faults.t option -> unit
(** Arm (or disarm, with [None]) a chaos plan on this VM: the updater's
    injection points and this VM's simnet links consult it, and its
    fires are reported to this VM's sink. *)

val faults : t -> Jv_faults.Faults.t option

val killed : t -> string option
(** [Some point] once a [kill] fault fired: the VM is dead (the
    scheduler no-ops), as after a process crash before the update
    transaction committed. *)

val epoch : t -> int
(** The current code epoch (bumped once per applied update or revert). *)

val set_response_classifier : t -> (string -> bool) option -> unit
(** When set, every server-side [Net.send] line is classified; lines the
    predicate rejects count as app-level errors charged to the current
    code epoch (the guard watchdog's 5xx signal). *)

val traps_at_epoch : t -> int -> int
(** Interpreter traps raised while the given epoch's code was installed. *)

val app_errors_at_epoch : t -> int -> int
(** Classifier-rejected responses sent under the given epoch's code. *)

type stats = {
  instr_count : int;
  compile_count : int;
  opt_compile_count : int;
  osr_count : int;
  gc_count : int;
  deref_checks : int;
  heap_used_words : int;
  traps : (int * string) list;  (** (thread id, message) *)
}

val stats : t -> stats
