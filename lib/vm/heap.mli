(** The semi-space heap: two equal word arrays, bump allocation, flipped
    by the collector.

    Object layout (word-addressed):
    {v
      scalar object:  [class id | gc word | field 0 | field 1 | ...]
      array:          [class id | gc word | length  | elem 0  | ...]
    v}
    The gc word doubles as the epoch tag: negative values are
    collection-time forwarding pointers ([-(new_addr + 1)]); small
    non-negative values are the live object's epoch tag;
    [lazy_fwd_flag]-range values mark lazily-forwarded originals whose
    replacement lives at [lazy_fwd_target gcw]; [copy_flag]-range values
    mark pristine pre-update copies retained in an update log.
    Addresses start at 1 (0 encodes null). *)

val header_words : int
val array_header_words : int
val off_class : int
val off_gc : int
val off_array_len : int

val lazy_fwd_flag : int
val copy_flag : int
val is_plain_tag : int -> bool
val is_lazy_fwd : int -> bool
val lazy_fwd_target : int -> int
val make_lazy_fwd : int -> int
val is_copy_tag : int -> bool
val copy_tag_epoch : int -> int
val make_copy_tag : int -> int

type t = {
  mutable space : int array;  (** active (to-)space *)
  mutable other : int array;  (** idle (from-)space after a flip *)
  mutable free : int;  (** next free word in [space] *)
  size_words : int;  (** per semi-space *)
  mutable gc_count : int;
  mutable allocations : int;
  mutable epoch : int;
      (** stamped into fresh allocations' gc words once nonzero; bumped
          by each lazy update commit *)
}

val create : words:int -> t
val words_free : t -> int
val words_used : t -> int

val alloc_raw : t -> nwords:int -> int option
(** Bump-allocate; [None] means a collection is needed.  Words are
    pre-zeroed, giving default field values for free. *)

val get : t -> addr:int -> off:int -> int
val set : t -> addr:int -> off:int -> int -> unit
val class_id : t -> int -> int
val array_length : t -> int -> int

val flip : t -> int array
(** Swap spaces for a collection; returns the new from-space. *)

val scrub_other : t -> unit
(** Zero the idle space after a collection (keeps the pre-zeroed
    allocation guarantee). *)
