(* The semi-space copying collector, with the Jvolve extension (paper §3.4).

   A normal collection is a Cheney scan: forward the roots, then sweep a
   scan pointer through to-space forwarding every reference field.

   During an update the collector additionally receives a *transform plan*
   mapping old class ids to new class ids.  When it first encounters an
   object whose class is in the plan it:

     1. allocates an object of the *new* class in to-space (zeroed fields,
        new TIB/class id — possibly a different size),
     2. allocates a verbatim *copy of the old object* in to-space,
     3. installs the forwarding pointer to the NEW object (so every
        surviving reference lands on the new version), and
     4. appends the (old copy, new object) pair to the update log.

   Both to-space allocations sit ahead of the scan pointer, so the old
   copy's fields are forwarded by the normal sweep ("the collector
   continues scanning the old copy") while the new object's zeroed fields
   contribute nothing.  After the collection, [Jvolve_core.Updater] runs
   the object transformers over the log; dropping the log then makes the
   old copies unreachable, and the next collection reclaims them. *)

type transform_plan = (int, int) Hashtbl.t (* old cid -> new cid *)

type result = {
  gc_ms : float;
  copied_objects : int;
  transformed_objects : int;
  copied_words : int;
  update_log : int array; (* flattened pairs: old-copy addr, new addr *)
}

let obj_size (vm : State.t) space addr =
  let cid = space.(addr + Heap.off_class) in
  let cls = Rt.class_by_id vm.State.reg cid in
  if cls.Rt.is_array then
    Heap.array_header_words + space.(addr + Heap.off_array_len)
  else cls.Rt.size_words

(* [redirect] (new addr -> old-copy addr, decoded from an update log) is
   the updater's transaction-rollback mechanism: forwarding chases the
   redirect first, so every reference that landed on a half-transformed
   new-layout object is moved back to its pristine old copy and the new
   objects die with this collection. *)
let collect ?plan ?redirect (vm : State.t) : result =
  let t0 = Unix.gettimeofday () in
  let heap = vm.State.heap in
  let from = Heap.flip heap in
  let copied = ref 0 in
  let transformed = ref 0 in
  let log = Buffer.create 64 in
  (* the log is built as ints in a resizable buffer-of-pairs *)
  let log_old = ref [] in
  ignore log;
  let bump nwords =
    match Heap.alloc_raw heap ~nwords with
    | Some a -> a
    | None ->
        State.fatal
          "to-space overflow during GC (%d words needed, %d free): updates \
           temporarily duplicate transformed objects; grow the heap"
          nwords (Heap.words_free heap)
  in
  let space () = heap.Heap.space in
  let rec forward addr =
    let addr =
      match redirect with
      | None -> addr
      | Some r -> Option.value ~default:addr (Hashtbl.find_opt r addr)
    in
    let gcw = from.(addr + Heap.off_gc) in
    if gcw < 0 then -(gcw + 1) (* already forwarded *)
    else if Heap.is_lazy_fwd gcw then begin
      (* lazily transformed original: every surviving reference lands on
         its new-layout replacement.  [forward] (not a raw chase) so a
         rollback's redirect applies at the hop, and memoized so the
         marker behaves like an ordinary forwarding pointer from here. *)
      let target = forward (Heap.lazy_fwd_target gcw) in
      from.(addr + Heap.off_gc) <- -(target + 1);
      target
    end
    else begin
      let cid = from.(addr + Heap.off_class) in
      let cls = Rt.class_by_id vm.State.reg cid in
      let size =
        if cls.Rt.is_array then
          Heap.array_header_words + from.(addr + Heap.off_array_len)
        else cls.Rt.size_words
      in
      match
        match plan with
        | None -> None
        | Some p -> Hashtbl.find_opt p cid
      with
      | Some new_cid ->
          let new_cls = Rt.class_by_id vm.State.reg new_cid in
          let new_addr = bump new_cls.Rt.size_words in
          (space ()).(new_addr + Heap.off_class) <- new_cid;
          (* fields stay zero until the transformer runs; the new object
             carries the current heap epoch tag *)
          (space ()).(new_addr + Heap.off_gc) <- heap.Heap.epoch;
          let old_copy = bump size in
          Array.blit from addr (space ()) old_copy size;
          (* the blit carried the original's epoch tag into the copy *)
          from.(addr + Heap.off_gc) <- -(new_addr + 1);
          incr transformed;
          incr copied;
          log_old := (old_copy, new_addr) :: !log_old;
          new_addr
      | None ->
          let new_addr = bump size in
          Array.blit from addr (space ()) new_addr size;
          (* preserve the gc word: the epoch tag, and the copy marker on
             retained update-log copies (the blit already carried it; the
             explicit store documents that nothing is cleared) *)
          (space ()).(new_addr + Heap.off_gc) <- gcw;
          from.(addr + Heap.off_gc) <- -(new_addr + 1);
          incr copied;
          new_addr
    end
  and forward_word w =
    if Value.is_ref w then Value.of_ref (forward (Value.to_ref w)) else w
  in
  let forward_array (a : int array) lo hi =
    for i = lo to hi - 1 do
      a.(i) <- forward_word a.(i)
    done
  in
  (* --- roots --- *)
  forward_array vm.State.jtoc 0 vm.State.jtoc_n;
  List.iter
    (fun (t : State.vthread) ->
      List.iter
        (fun (fr : State.frame) ->
          forward_array fr.State.locals 0 (Array.length fr.State.locals);
          forward_array fr.State.ostack 0 fr.State.sp)
        t.State.frames;
      match t.State.pending with
      | Some pn ->
          forward_array pn.State.pn_args 0 (Array.length pn.State.pn_args)
      | None -> ())
    vm.State.threads;
  List.iter (fun a -> forward_array a 0 (Array.length a)) vm.State.extra_roots;
  (* the indirection baseline's handle table maps addresses to addresses *)
  if Hashtbl.length vm.State.handle_table > 0 then begin
    let pairs =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) vm.State.handle_table []
    in
    Hashtbl.reset vm.State.handle_table;
    List.iter
      (fun (k, v) ->
        Hashtbl.replace vm.State.handle_table (forward k) (forward v))
      pairs
  end;
  (* --- Cheney scan --- *)
  let scan = ref 1 in
  while !scan < heap.Heap.free do
    let addr = !scan in
    let size = obj_size vm (space ()) addr in
    let cid = (space ()).(addr + Heap.off_class) in
    let cls = Rt.class_by_id vm.State.reg cid in
    let field_lo =
      if cls.Rt.is_array then addr + Heap.array_header_words
      else addr + Heap.header_words
    in
    for i = field_lo to addr + size - 1 do
      (space ()).(i) <- forward_word (space ()).(i)
    done;
    scan := addr + size
  done;
  Heap.scrub_other heap;
  let update_log =
    (* pairs are stored as *encoded reference words* so the log can be
       registered as an ordinary extra-roots array: transformer-phase
       allocation may trigger a nested collection that must relocate
       these (the old copies are reachable from nowhere else) *)
    let pairs = List.rev !log_old in
    let arr = Array.make (2 * List.length pairs) 0 in
    List.iteri
      (fun i (o, n) ->
        arr.(2 * i) <- Value.of_ref o;
        arr.((2 * i) + 1) <- Value.of_ref n)
      pairs;
    arr
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  vm.State.last_gc_ms <- ms;
  let obs = vm.State.obs in
  Jv_obs.Obs.incr obs "vm.gc.collections";
  Jv_obs.Obs.observe obs "vm.gc.ms" ms;
  Jv_obs.Obs.observe_int obs "vm.gc.copied_objects" !copied;
  Jv_obs.Obs.observe_int obs "vm.gc.copied_words" (Heap.words_used heap);
  if plan <> None then begin
    Jv_obs.Obs.incr obs "vm.gc.update_collections";
    Jv_obs.Obs.observe_int obs "vm.gc.transformed_objects" !transformed
  end;
  Jv_obs.Obs.emit obs ~scope:"vm.gc"
    (if plan = None then "gc.done" else "gc.transform.done")
    [
      ("ms", Jv_obs.Obs.Float ms);
      ("copied", Jv_obs.Obs.Int !copied);
      ("transformed", Jv_obs.Obs.Int !transformed);
      ("live_words", Jv_obs.Obs.Int (Heap.words_used heap));
    ];
  {
    gc_ms = ms;
    copied_objects = !copied;
    transformed_objects = !transformed;
    copied_words = Heap.words_used heap;
    update_log;
  }

(* Plain collection for allocation pressure. *)
let () = State.gc_hook := fun vm -> ignore (collect vm)
