(* The green-thread scheduler.

   One [round] = one logical clock tick: harness pollers run (simulated
   network clients), blocked threads whose conditions cleared are resumed,
   then every runnable thread executes one quantum.  Threads park only at
   VM safe points (see [Interp]), so between slices the whole world is
   stopped at safe points — which is when the DSU attempt hook runs
   (paper §3.2: "once application threads on all processors have reached VM
   safe points, Jvolve checks the paused threads' stacks"). *)

module Simnet = Jv_simnet.Simnet

let block_ready vm = function
  | State.B_sleep wake -> vm.State.ticks >= wake
  | State.B_accept lid -> Simnet.has_pending vm.State.net ~listener_id:lid
  | State.B_recv cid ->
      (* negative handles are the client side of a loopback connection *)
      if cid < 0 then Simnet.client_can_recv vm.State.net ~conn_id:(-cid)
      else Simnet.can_recv vm.State.net ~conn_id:cid
  | State.B_dsu -> false (* released explicitly when the update resolves *)

let wake_blocked vm =
  List.iter
    (fun (t : State.vthread) ->
      match t.State.tstate with
      | State.T_blocked reason when block_ready vm reason ->
          Interp.retry_pending vm t
      | _ -> ())
    vm.State.threads

(* Drop finished/trapped threads whose frames are gone, to keep root scans
   and scheduling cheap on long runs. *)
let reap vm =
  vm.State.threads <-
    List.filter
      (fun (t : State.vthread) ->
        match t.State.tstate with
        | State.T_done | State.T_trapped _ -> false
        | _ -> true)
      vm.State.threads

(* Steady-state crash point: an armed [vm.crash] rule turns this round
   into the VM's last.  The kill is recorded directly (no exception
   escapes into the harness) so a fleet supervisor can observe the corpse
   via [State.killed] and restart it.  Plans without a matching rule
   consume no RNG draws here, so existing seeded schedules are
   unperturbed. *)
let crash_check vm =
  if vm.State.killed = None then
    match Jv_faults.Faults.check vm.State.faults "vm.crash" with
    | Some (Jv_faults.Faults.Kill | Jv_faults.Faults.Raise) ->
        vm.State.killed <- Some "fault injected: vm.crash"
    | Some (Jv_faults.Faults.Drop | Jv_faults.Faults.Delay _) | None -> ()

let round vm =
  crash_check vm;
  if vm.State.killed <> None then ()
  else begin
  vm.State.ticks <- vm.State.ticks + 1;
  List.iter (fun f -> f vm) vm.State.pollers;
  wake_blocked vm;
  let runnable = State.runnable_threads vm in
  Jv_obs.Obs.incr vm.State.obs "vm.sched.rounds";
  Jv_obs.Obs.set_gauge vm.State.obs "vm.sched.runnable"
    (float_of_int (List.length runnable));
  List.iter
    (fun (t : State.vthread) ->
      if t.State.tstate = State.T_runnable then begin
        ignore (Interp.run_slice vm t ~fuel:vm.State.config.quantum);
        (* a return barrier fired: give the DSU machinery a chance to
           re-check for a safe point right away *)
        if vm.State.barrier_fired then begin
          vm.State.barrier_fired <- false;
          match vm.State.dsu_attempt with Some f -> f vm | None -> ()
        end
      end)
    runnable;
  (* all threads parked at safe points: attempt any pending update *)
  (match vm.State.dsu_attempt with Some f -> f vm | None -> ());
  (* an open lazy update window sweeps a bounded number of pending
     objects per round (and drives its own rollback when aborting) *)
  (match vm.State.lazy_sweep with Some f -> f vm | None -> ());
  (* the post-commit guard watchdog ticks once per round, after the
     slices it is judging (and after any revert the DSU hook ran) *)
  (match vm.State.guard_tick with Some f -> f vm | None -> ());
  reap vm
  end

let run_rounds vm n =
  for _ = 1 to n do
    round vm
  done

(* Can any thread still make progress without outside help?  True when some
   thread is runnable, or blocked on a condition that is already (or will
   become) ready.  Sleepers always become ready as ticks advance. *)
let progress_possible vm =
  vm.State.killed = None
  && (vm.State.dsu_attempt <> None
  || vm.State.guard_tick <> None (* an open guard window still needs rounds *)
  || vm.State.lazy_sweep <> None (* an open lazy window still drains *)
  || List.exists
       (fun (t : State.vthread) ->
         match t.State.tstate with
         | State.T_runnable -> true
         | State.T_blocked (State.B_sleep _) -> true
         | State.T_blocked r -> block_ready vm r
         | _ -> false)
       vm.State.threads)

(* Run until no thread can make progress (all done/trapped, or everything
   blocked on I/O with no poller to unblock it), or until [max_rounds]. *)
let run_to_quiescence ?(max_rounds = 100_000) vm =
  let rec go n =
    if n >= max_rounds then `Max_rounds
    else begin
      round vm;
      match State.live_threads vm with
      | [] -> `All_done
      | _ ->
          if (not (progress_possible vm)) && vm.State.pollers = [] then
            `Deadlocked
          else go (n + 1)
    end
  in
  go 0
