(* The semi-space heap.

   Two equal-sized spaces of words; allocation bumps a free pointer in the
   active space.  [Gc] flips the spaces and copies live objects (Cheney
   scan).  Object layout, word-addressed:

     scalar object:  [class id | gc word | field 0 | field 1 | ...]
     array:          [class id | gc word | length  | elem 0  | ...]

   The gc word doubles as the epoch tag.  Encodings, all disjoint:

     gcw < 0                          collection-time forwarding pointer,
                                      [-(new_addr + 1)]
     0 <= gcw < lazy_fwd_flag         live object, epoch tag (0 until the
                                      first lazy update commits)
     lazy_fwd_flag <= gcw < copy_flag lazily-forwarded original: the object
                                      was transformed on first access and
                                      [gcw - lazy_fwd_flag] is the address
                                      of its new-layout replacement
     copy_flag <= gcw                 pristine pre-update copy retained in
                                      the update log (must never be
                                      re-transformed or swept)

   Addresses start at 1 so that address 0 can never be handed out (0
   encodes null). *)

let header_words = 2
let array_header_words = 3 (* class id, gc word, length *)

let off_class = 0
let off_gc = 1
let off_array_len = 2

(* Epoch tags and heap addresses are both far below 2^40, so the flag
   ranges cannot collide with either. *)
let lazy_fwd_flag = 1 lsl 40
let copy_flag = 1 lsl 41

let is_plain_tag gcw = gcw >= 0 && gcw < lazy_fwd_flag
let is_lazy_fwd gcw = gcw >= lazy_fwd_flag && gcw < copy_flag
let lazy_fwd_target gcw = gcw - lazy_fwd_flag
let make_lazy_fwd addr = lazy_fwd_flag + addr
let is_copy_tag gcw = gcw >= copy_flag
let copy_tag_epoch gcw = gcw - copy_flag
let make_copy_tag epoch = copy_flag + epoch

type t = {
  mutable space : int array; (* active (to-)space *)
  mutable other : int array; (* idle (from-)space after a flip *)
  mutable free : int; (* next free word in [space] *)
  size_words : int; (* per semi-space *)
  mutable gc_count : int;
  mutable allocations : int; (* objects allocated since creation *)
  mutable epoch : int;
      (* current heap epoch: stamped into the gc word of fresh
         allocations once nonzero (bumped by each lazy update commit) *)
}

let create ~words =
  if words < 64 then invalid_arg "Heap.create: heap too small";
  {
    space = Array.make words 0;
    other = Array.make words 0;
    free = 1 (* keep address 0 unused: 0 is null *);
    size_words = words;
    gc_count = 0;
    allocations = 0;
    epoch = 0;
  }

let words_free h = h.size_words - h.free
let words_used h = h.free - 1

(* Raw allocation: returns the base address or [None] when a collection is
   needed.  Words are pre-zeroed (spaces start zeroed and the collector
   re-zeroes the idle space on flip), giving default field values for
   free. *)
let alloc_raw h ~nwords =
  if nwords <= 0 then invalid_arg "Heap.alloc_raw";
  if h.free + nwords > h.size_words then None
  else begin
    let addr = h.free in
    h.free <- h.free + nwords;
    h.allocations <- h.allocations + 1;
    Some addr
  end

let get h ~addr ~off = h.space.(addr + off)
let set h ~addr ~off v = h.space.(addr + off) <- v

let class_id h addr = h.space.(addr + off_class)
let array_length h addr = h.space.(addr + off_array_len)

(* Flip for GC: the current space becomes from-space, the idle one becomes
   the (empty) to-space.  Returns the new from-space for the collector to
   read evacuated objects from. *)
let flip h =
  let from = h.space in
  h.space <- h.other;
  h.other <- from;
  h.free <- 1;
  h.gc_count <- h.gc_count + 1;
  from

(* After a collection the old from-space contents are dead; zero it so the
   next flip starts from a clean space (keeps default-initialization
   guarantees). *)
let scrub_other h = Array.fill h.other 0 (Array.length h.other) 0
