(* The VM: central state shared by the class loader, JIT, interpreter,
   scheduler, garbage collector and the DSU machinery.

   One [t] value is one virtual machine.  Green threads are interleaved by
   [Sched]; all state is single-OS-thread. *)

module CF = Jv_classfile
module Simnet = Jv_simnet.Simnet
module Obs = Jv_obs.Obs

type config = {
  heap_words : int; (* words per semi-space *)
  opt_threshold : int; (* invocations before opt recompilation *)
  quantum : int; (* machine instructions per scheduler slice *)
  indirection_mode : bool; (* baseline: per-dereference handle checks *)
  inline_max_code : int; (* max callee bytecode length to inline *)
  inline_depth : int; (* max nesting of inlined bodies *)
  opt_osr : bool;
      (* extension (paper future work §3.2/§5, cf. UpStare): allow OSR of
         opt-compiled category-(2) frames when they are parked outside any
         inlined region.  Off by default: the paper's Jvolve only OSRs
         base-compiled frames *)
  trace : bool;
  transformer_fuel : int;
      (* machine-instruction budget per transformer invocation; a
         transformer that exceeds it traps and the update aborts *)
  verify_heap : bool;
      (* walk the whole heap after the transform phase (and again after a
         rollback) checking headers, reference-field types and statics *)
  lazy_update : bool;
      (* commit updates lazily: no transforming collection at the pause;
         old-epoch objects are transformed on first access by a read
         barrier and drained by the scheduler's incremental sweeper *)
  lazy_sweep_budget : int;
      (* objects the background sweeper may transform per scheduler round
         while a lazy update window is open *)
  confree : bool;
      (* run the static con-freeness / backward-compatibility analysis at
         admission time and let proven-compatible changed methods stay on
         stack across the commit, shrinking the restricted set the DSU
         safe-point check feeds on *)
}

let default_config =
  {
    heap_words = 1 lsl 20;
    opt_threshold = 50;
    quantum = 2000;
    indirection_mode = false;
    inline_max_code = 24;
    inline_depth = 3;
    opt_osr = false;
    trace = false;
    transformer_fuel = 200_000;
    verify_heap = false;
    lazy_update = false;
    lazy_sweep_budget = 64;
    confree = true;
  }

(* --- threads --- *)

type block_reason =
  | B_accept of int (* listener id *)
  | B_recv of int (* connection id *)
  | B_sleep of int (* wake at tick *)
  | B_dsu
      (* parked by a fired DSU return barrier: the thread stays stopped at
         its safe point until the pending update is applied or aborted
         (paper §3.2: "when a restricted method returns, the thread will
         block and Jvolve will restart the update process") *)

type thread_state =
  | T_runnable
  | T_blocked of block_reason
  | T_done
  | T_trapped of string

type frame = {
  f_method : int; (* uid *)
  mutable code : Machine.compiled;
  mutable pc : int;
  mutable locals : int array; (* encoded words *)
  mutable ostack : int array;
  mutable sp : int;
  mutable barrier : bool; (* a DSU return barrier is installed here *)
}

(* A blocked native call: dispatch key + already-popped argument words,
   re-executed when the block reason clears.  [pn_ret] records whether the
   call pushes a result on completion. *)
type pending_native = { pn_key : string; pn_args : int array; pn_ret : bool }

type vthread = {
  tid : int;
  mutable frames : frame list; (* top of stack first *)
  mutable tstate : thread_state;
  mutable pending : pending_native option;
  mutable last_result : int; (* bottom-frame return value, for sync calls *)
}

type native_result =
  | N_val of int
  | N_void
  | N_block of block_reason
  | N_trap of string

(* The transformer sandbox (installed by the updater for the transform
   phase).  While one is active the interpreter charges every executed
   instruction against [sb_fuel] and, when [sb_guard] is set, refuses heap
   writes whose target is not in the allowed set — the objects under
   transformation plus anything freshly allocated by the transformers
   themselves.  The objects under transformation are kept as encoded
   references in a word array registered as an extra GC root (they are
   rooted through the update log anyway), so a nested collection forwards
   the entries and membership stays exact.  Fresh allocations are NOT
   added to that set — a root there would retain every transformer
   temporary and defeat nested collections — but are recognized by an
   allocation watermark: anything at or above the first allocation of the
   current GC epoch is fresh.  The one approximation: a temporary
   allocated before a nested collection loses write permission after it
   (the transformed objects themselves never do). *)
type sandbox = {
  mutable sb_fuel : int; (* budget per transformer invocation *)
  mutable sb_steps : int; (* steps charged to the current invocation *)
  mutable sb_total_steps : int; (* accounting across the whole phase *)
  mutable sb_guard : bool; (* writes restricted (object transformers) *)
  mutable sb_allowed : int array; (* encoded refs; lives in extra_roots *)
  mutable sb_n_allowed : int;
  mutable sb_index : (int, unit) Hashtbl.t; (* decoded addr set cache *)
  mutable sb_index_gc : int; (* heap gc_count the cache was built at *)
  mutable sb_watermark : int; (* first fresh allocation of this epoch *)
  mutable sb_watermark_gc : int; (* gc_count the watermark belongs to *)
}

(* Bookkeeping for an open lazy update window: the commit flipped
   metadata and bumped the heap epoch but left old-epoch objects in
   place, to be transformed on first access (read barrier) or by the
   background sweeper.  Plain data so the verifier and tests can key
   mixed-epoch allowances off it without depending on the updater. *)
type lazy_info = {
  li_plan : (int, int) Hashtbl.t; (* old cid -> new cid *)
  li_epoch : int; (* the heap epoch this window installed *)
  mutable li_log : int array;
      (* flattened (old copy, new object) pairs, log_len valid entries;
         registered as an extra GC root while the window is open *)
  mutable li_log_len : int;
  mutable li_transformed : int; (* objects transformed so far *)
  mutable li_barrier_hits : int; (* barrier-triggered transforms *)
  mutable li_swept : int; (* sweeper-triggered transforms *)
  mutable li_chases : int; (* barrier chases of lazy-forward markers *)
}

type t = {
  config : config;
  reg : Rt.registry;
  heap : Heap.t;
  (* JTOC: the statics area (Jikes RVM's Java Table of Contents) *)
  mutable jtoc : int array;
  mutable jtoc_n : int;
  (* interned string table *)
  mutable strings : string array;
  mutable n_strings : int;
  string_ids : (string, int) Hashtbl.t;
  natives : (string, native_fn) Hashtbl.t;
  net : Simnet.t;
  mutable threads : vthread list; (* spawn order *)
  mutable next_tid : int;
  mutable ticks : int; (* logical clock: one tick per scheduler round *)
  mutable rng : int; (* Sys.random state (deterministic) *)
  (* cached well-known class ids, set at boot *)
  mutable object_cid : int;
  mutable string_cid : int;
  mutable array_cid : int;
  (* --- DSU coordination ------------------------------------------- *)
  (* installed by Jvolve_core: called by the scheduler at safe points
     while an update is pending *)
  mutable dsu_attempt : (t -> unit) option;
  mutable barrier_fired : bool;
  (* installed during the transformer phase so the [Jvolve.transform]
     native can force an object's transformer to run *)
  mutable force_transform : (t -> int -> unit) option;
  (* lazy-update baseline (JDrums-style): consulted on every dereference
     when [indirection_mode] is set.  Receives the frame and operand-stack
     slot index holding the reference and rewrites the slot to the
     up-to-date reference, transforming the object on first touch.  Slot-
     based so the reference stays a GC root while the hook allocates. *)
  mutable lazy_hook : (t -> frame -> int -> unit) option;
  (* --- lazy update window (epoch-tagged heap) ----------------------- *)
  (* read barrier, installed while a lazy update window is open: receives
     a rooted word array (an operand stack or a scratch root) and the
     index of a reference slot; chases lazy-forward markers and
     transforms pending old-epoch objects in place, rewriting the slot *)
  mutable lazy_barrier : (t -> int array -> int -> unit) option;
  (* background sweeper: visits up to [lazy_sweep_budget] heap objects
     per scheduler round, transforming the pending ones *)
  mutable lazy_sweep : (t -> unit) option;
  (* synchronously drain the open window (force every residual
     transform); returns false when the window was rolled back instead
     of drained (a residual transformer trapped) *)
  mutable lazy_drain : (t -> bool) option;
  mutable lazy_info : lazy_info option;
  (* word arrays that the GC must treat as extra roots and rewrite
     (e.g. the update log while transformers run) *)
  mutable extra_roots : int array list;
  (* active transformer sandbox, if the updater installed one *)
  mutable sandbox : sandbox option;
  (* --- fault injection --------------------------------------------- *)
  (* armed chaos plan, consulted at the updater's injection points *)
  mutable faults : Jv_faults.Faults.t option;
  (* a [Faults.Kill] fired: the VM is dead, as after a process crash.
     The scheduler stops running rounds; the payload names the point *)
  mutable killed : string option;
  (* --- statistics --------------------------------------------------- *)
  mutable compile_count : int;
  mutable opt_compile_count : int;
  mutable osr_count : int;
  mutable instr_count : int;
  mutable deref_checks : int; (* indirection-baseline trap count *)
  handle_table : (int, int) Hashtbl.t; (* indirection-baseline redirects *)
  mutable trap_log : (int * string) list;
  (* --- per-epoch error attribution (post-commit guard window) ------- *)
  (* every interpreter trap / app-level error response is charged to the
     code epoch current when it was raised.  The world is stopped while an
     update installs code and bumps the epoch, so raise-time epoch equals
     the epoch of the code that raised. *)
  traps_by_epoch : (int, int) Hashtbl.t;
  app_errors_by_epoch : (int, int) Hashtbl.t;
  (* when set, every server-side [Net.send] line is classified; lines the
     predicate rejects (an app-level 5xx) count as app errors *)
  mutable response_classifier : (string -> bool) option;
  (* update log retained past commit while a guard window is open
     (flattened (old copy, new object) pairs; also in [extra_roots]) *)
  mutable guard_retained : int array option;
  (* installed by the guard watchdog: called at the end of every
     scheduler round while a guard window is open *)
  mutable guard_tick : (t -> unit) option;
  out : Buffer.t; (* program output (Sys.print) *)
  mutable last_gc_ms : float;
  (* flight recorder + metrics; clock = this VM's [ticks] *)
  obs : Obs.t;
  (* harness hooks run at the start of every scheduler round (workload
     drivers pumping the simulated network) *)
  mutable pollers : (t -> unit) list;
}

and native_fn = t -> vthread -> int array -> native_result

exception Vm_fatal of string

let fatal fmt = Printf.ksprintf (fun s -> raise (Vm_fatal s)) fmt

(* Set by [Gc] at link time: collect with no transform plan.  Breaking the
   recursion between allocation (here) and the collector module. *)
let gc_hook : (t -> unit) ref =
  ref (fun _ -> failwith "Gc not linked")

let create ?(config = default_config) () =
  let vm =
  {
    config;
    reg = Rt.create_registry ();
    heap = Heap.create ~words:config.heap_words;
    jtoc = Array.make 256 0;
    jtoc_n = 0;
    strings = Array.make 256 "";
    n_strings = 0;
    string_ids = Hashtbl.create 256;
    natives = Hashtbl.create 64;
    net = Simnet.create ();
    threads = [];
    next_tid = 1;
    ticks = 0;
    rng = 123456789;
    object_cid = -1;
    string_cid = -1;
    array_cid = -1;
    dsu_attempt = None;
    barrier_fired = false;
    force_transform = None;
    lazy_hook = None;
    lazy_barrier = None;
    lazy_sweep = None;
    lazy_drain = None;
    lazy_info = None;
    extra_roots = [];
    sandbox = None;
    faults = None;
    killed = None;
    compile_count = 0;
    opt_compile_count = 0;
    osr_count = 0;
    instr_count = 0;
    deref_checks = 0;
    handle_table = Hashtbl.create 64;
    trap_log = [];
    traps_by_epoch = Hashtbl.create 8;
    app_errors_by_epoch = Hashtbl.create 8;
    response_classifier = None;
    guard_retained = None;
    guard_tick = None;
    out = Buffer.create 1024;
    last_gc_ms = 0.0;
    obs = Obs.create ();
    pollers = [];
  }
  in
  Obs.set_clock vm.obs (fun () -> vm.ticks);
  Obs.set_wall vm.obs Unix.gettimeofday;
  Simnet.set_obs vm.net vm.obs;
  vm

(* --- JTOC ---------------------------------------------------------- *)

let alloc_jtoc_slot vm =
  if vm.jtoc_n >= Array.length vm.jtoc then begin
    let a = Array.make (2 * Array.length vm.jtoc) 0 in
    Array.blit vm.jtoc 0 a 0 vm.jtoc_n;
    vm.jtoc <- a
  end;
  let slot = vm.jtoc_n in
  vm.jtoc_n <- slot + 1;
  slot

let jtoc_get vm slot = vm.jtoc.(slot)
let jtoc_set vm slot v = vm.jtoc.(slot) <- v

(* --- string table -------------------------------------------------- *)

let intern_string vm s =
  match Hashtbl.find_opt vm.string_ids s with
  | Some sid -> sid
  | None ->
      if vm.n_strings >= Array.length vm.strings then begin
        let a = Array.make (2 * Array.length vm.strings) "" in
        Array.blit vm.strings 0 a 0 vm.n_strings;
        vm.strings <- a
      end;
      let sid = vm.n_strings in
      vm.strings.(sid) <- s;
      vm.n_strings <- sid + 1;
      Hashtbl.replace vm.string_ids s sid;
      sid

let string_of_sid vm sid =
  if sid < 0 || sid >= vm.n_strings then fatal "bad string id %d" sid;
  vm.strings.(sid)

(* --- transformer sandbox -------------------------------------------- *)

let sandbox_create vm ~fuel : sandbox =
  let sb =
    {
      sb_fuel = fuel;
      sb_steps = 0;
      sb_total_steps = 0;
      sb_guard = false;
      sb_allowed = Array.make 64 0;
      sb_n_allowed = 0;
      sb_index = Hashtbl.create 64;
      sb_index_gc = -1;
      sb_watermark = vm.heap.Heap.free;
      sb_watermark_gc = vm.heap.Heap.gc_count;
    }
  in
  vm.extra_roots <- sb.sb_allowed :: vm.extra_roots;
  vm.sandbox <- Some sb;
  sb

let sandbox_dispose vm sb =
  vm.sandbox <- None;
  vm.extra_roots <- List.filter (fun a -> a != sb.sb_allowed) vm.extra_roots

(* Admit [addr] as a legitimate write target. *)
let sandbox_allow vm sb addr =
  if sb.sb_n_allowed >= Array.length sb.sb_allowed then begin
    let a = Array.make (2 * Array.length sb.sb_allowed) 0 in
    Array.blit sb.sb_allowed 0 a 0 sb.sb_n_allowed;
    vm.extra_roots <-
      a :: List.filter (fun x -> x != sb.sb_allowed) vm.extra_roots;
    sb.sb_allowed <- a
  end;
  sb.sb_allowed.(sb.sb_n_allowed) <- Value.of_ref addr;
  sb.sb_n_allowed <- sb.sb_n_allowed + 1;
  if sb.sb_index_gc = vm.heap.Heap.gc_count then
    Hashtbl.replace sb.sb_index addr ()

(* A fresh allocation: advance the watermark into the current GC epoch
   if a collection has happened since it was set. *)
let sandbox_note_alloc vm sb addr =
  if sb.sb_watermark_gc <> vm.heap.Heap.gc_count then begin
    sb.sb_watermark <- addr;
    sb.sb_watermark_gc <- vm.heap.Heap.gc_count
  end

let sandbox_may_write vm sb addr =
  (sb.sb_watermark_gc = vm.heap.Heap.gc_count && addr >= sb.sb_watermark)
  ||
  begin
    if sb.sb_index_gc <> vm.heap.Heap.gc_count then begin
      (* a collection moved the allowed objects; the root array was
         forwarded with them, so rebuild the address cache from it *)
      let h = Hashtbl.create (max 16 sb.sb_n_allowed) in
      for i = 0 to sb.sb_n_allowed - 1 do
        Hashtbl.replace h (Value.to_ref sb.sb_allowed.(i)) ()
      done;
      sb.sb_index <- h;
      sb.sb_index_gc <- vm.heap.Heap.gc_count
    end;
    Hashtbl.mem sb.sb_index addr
  end

(* --- allocation ----------------------------------------------------- *)

(* Guarantee [words] of free space, collecting if necessary. *)
let ensure_free vm words =
  if Heap.words_free vm.heap < words then begin
    !gc_hook vm;
    if Heap.words_free vm.heap < words then
      fatal "out of memory: need %d words, %d free after GC" words
        (Heap.words_free vm.heap)
  end

let alloc_object vm (cls : Rt.rt_class) =
  let n = cls.Rt.size_words in
  let addr =
    match Heap.alloc_raw vm.heap ~nwords:n with
    | Some a -> a
    | None ->
        ensure_free vm n;
        (match Heap.alloc_raw vm.heap ~nwords:n with
        | Some a -> a
        | None -> fatal "allocation failed after GC")
  in
  Heap.set vm.heap ~addr ~off:Heap.off_class cls.Rt.cid;
  (* remaining words are pre-zeroed: gc word 0, fields default; once a
     lazy update has bumped the heap epoch, fresh objects are stamped
     with the current epoch tag *)
  if vm.heap.Heap.epoch <> 0 then
    Heap.set vm.heap ~addr ~off:Heap.off_gc vm.heap.Heap.epoch;
  (match vm.sandbox with
  | Some sb -> sandbox_note_alloc vm sb addr (* fresh allocation: writable *)
  | None -> ());
  addr

let alloc_array vm ~len =
  if len < 0 then fatal "negative array size %d" len;
  let n = Heap.array_header_words + len in
  let addr =
    match Heap.alloc_raw vm.heap ~nwords:n with
    | Some a -> a
    | None ->
        ensure_free vm n;
        (match Heap.alloc_raw vm.heap ~nwords:n with
        | Some a -> a
        | None -> fatal "allocation failed after GC")
  in
  Heap.set vm.heap ~addr ~off:Heap.off_class vm.array_cid;
  Heap.set vm.heap ~addr ~off:Heap.off_array_len len;
  if vm.heap.Heap.epoch <> 0 then
    Heap.set vm.heap ~addr ~off:Heap.off_gc vm.heap.Heap.epoch;
  (match vm.sandbox with
  | Some sb -> sandbox_note_alloc vm sb addr
  | None -> ());
  addr

(* Strings are ordinary heap objects of class String with one int field:
   the string-table index. *)
let alloc_string_sid vm sid =
  let cls = Rt.class_by_id vm.reg vm.string_cid in
  let addr = alloc_object vm cls in
  Heap.set vm.heap ~addr ~off:Heap.header_words (Value.of_int sid);
  addr

let alloc_string vm s = alloc_string_sid vm (intern_string vm s)

let string_of_obj vm addr =
  let sid = Value.to_int (Heap.get vm.heap ~addr ~off:Heap.header_words) in
  string_of_sid vm sid

(* --- threads -------------------------------------------------------- *)

let new_thread vm frames =
  let t =
    {
      tid = vm.next_tid;
      frames;
      tstate = T_runnable;
      pending = None;
      last_result = 0;
    }
  in
  vm.next_tid <- vm.next_tid + 1;
  vm.threads <- vm.threads @ [ t ];
  t

let live_threads vm =
  List.filter
    (fun t -> match t.tstate with T_runnable | T_blocked _ -> true | _ -> false)
    vm.threads

let runnable_threads vm =
  List.filter (fun t -> t.tstate = T_runnable) vm.threads

(* --- frames --------------------------------------------------------- *)

let make_frame (m : Rt.rt_method) (code : Machine.compiled) args =
  let locals =
    Array.make
      (max 1 (max code.Machine.frame_locals (Array.length args)))
      0
  in
  Array.blit args 0 locals 0 (Array.length args);
  {
    f_method = m.Rt.uid;
    code;
    pc = 0;
    locals;
    ostack = Array.make (max code.Machine.max_stack 4) 0;
    sp = 0;
    barrier = false;
  }

let push_op fr v =
  if fr.sp >= Array.length fr.ostack then begin
    (* operand stacks are sized by the JIT; growth indicates invoke-result
       slack, so double rather than fail *)
    let a = Array.make (2 * Array.length fr.ostack) 0 in
    Array.blit fr.ostack 0 a 0 fr.sp;
    fr.ostack <- a
  end;
  fr.ostack.(fr.sp) <- v;
  fr.sp <- fr.sp + 1

let pop_op fr =
  if fr.sp <= 0 then fatal "operand stack underflow";
  fr.sp <- fr.sp - 1;
  fr.ostack.(fr.sp)

(* --- misc ----------------------------------------------------------- *)

let next_random vm bound =
  (* xorshift; deterministic across runs for reproducible benchmarks *)
  let x = vm.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  vm.rng <- x land max_int;
  if bound <= 0 then 0 else vm.rng mod bound

let output vm = Buffer.contents vm.out

(* --- per-epoch error attribution ------------------------------------ *)

let bump_epoch_count tbl epoch by =
  let v = match Hashtbl.find_opt tbl epoch with Some v -> v | None -> 0 in
  Hashtbl.replace tbl epoch (max 0 (v + by))

let traps_at_epoch vm epoch =
  match Hashtbl.find_opt vm.traps_by_epoch epoch with Some v -> v | None -> 0

let app_errors_at_epoch vm epoch =
  match Hashtbl.find_opt vm.app_errors_by_epoch epoch with
  | Some v -> v
  | None -> 0

let record_trap vm t msg =
  vm.trap_log <- (t.tid, msg) :: vm.trap_log;
  bump_epoch_count vm.traps_by_epoch vm.reg.Rt.epoch 1

(* Used by the updater when it scrubs a sandboxed transformer trap from
   the carrier's log: the typed abort is the report, so the trap must not
   count against the current epoch's error budget either. *)
let unrecord_trap_count vm =
  bump_epoch_count vm.traps_by_epoch vm.reg.Rt.epoch (-1)

let record_app_error vm =
  bump_epoch_count vm.app_errors_by_epoch vm.reg.Rt.epoch 1
