(* Public facade over the VM substrate.

   Typical use:
   {[
     let vm = Vm.create () in
     Vm.boot vm classes;
     ignore (Vm.spawn_main vm ~main_class:"Main");
     Vm.run vm ~rounds:100;
     print_string (Vm.output vm)
   ]} *)

type t = State.t

let create ?config () = State.create ?config ()
let boot = Classloader.boot
let spawn_main = Classloader.spawn_main
let run vm ~rounds = Sched.run_rounds vm rounds
let run_to_quiescence = Sched.run_to_quiescence
let output = State.output
let ticks (vm : t) = vm.State.ticks
let net (vm : t) = vm.State.net
let obs (vm : t) = vm.State.obs
let gc vm = Gc.collect vm

let add_poller (vm : t) f = vm.State.pollers <- vm.State.pollers @ [ f ]
let clear_pollers (vm : t) = vm.State.pollers <- []

(* Arm a chaos plan on this VM: the updater's injection points, and the
   VM's own simnet links, consult it.  [None] disarms. *)
let set_faults (vm : t) f =
  vm.State.faults <- f;
  Jv_simnet.Simnet.set_faults vm.State.net f;
  Option.iter (fun p -> Jv_faults.Faults.set_obs p vm.State.obs) f

let faults (vm : t) = vm.State.faults
let killed (vm : t) = vm.State.killed

(* --- per-epoch error attribution (guard window) --------------------- *)

let epoch (vm : t) = vm.State.reg.Rt.epoch

let set_response_classifier (vm : t) ok =
  vm.State.response_classifier <- ok

let traps_at_epoch = State.traps_at_epoch
let app_errors_at_epoch = State.app_errors_at_epoch

let live_threads = State.live_threads

type stats = {
  instr_count : int;
  compile_count : int;
  opt_compile_count : int;
  osr_count : int;
  gc_count : int;
  deref_checks : int;
  heap_used_words : int;
  traps : (int * string) list;
}

let stats (vm : t) =
  {
    instr_count = vm.State.instr_count;
    compile_count = vm.State.compile_count;
    opt_compile_count = vm.State.opt_compile_count;
    osr_count = vm.State.osr_count;
    gc_count = vm.State.heap.Heap.gc_count;
    deref_checks = vm.State.deref_checks;
    heap_used_words = Heap.words_used vm.State.heap;
    traps = vm.State.trap_log;
  }
