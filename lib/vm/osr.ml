(* On-stack replacement.

   Jvolve uses OSR to lift category-(2) restrictions: a method whose
   bytecode is unchanged but whose compiled code hard-codes offsets of an
   updated class is recompiled *while on stack*, and the frame's pc is
   re-located in the fresh code via the bc_map (paper §3.2, "Lifting
   category (2) restrictions").

   As in the paper, only base-compiled frames are eligible: base code is
   1:1 with bytecode, so a machine pc always has a unique bytecode pc and
   the local-variable layout is the bytecode's own.  Opt-compiled frames
   may be parked inside an inlined region whose interior has no bytecode pc
   of its own, so they are not replaceable (the paper leaves opt-OSR to
   future work). *)

exception Osr_failed of string

(* Base-compiled frames are always replaceable.  With the [opt_osr]
   extension enabled, an opt-compiled frame is also replaceable when its
   pc lies outside every inlined region: there the locals and operand
   stack coincide with the base layout for the same bytecode pc (our opt
   compiler is base + inlining).  Inside an inlined region the interior
   has no bytecode pc of its own — exactly why the paper restricts OSR to
   base-compiled code. *)
let eligible vm (fr : State.frame) =
  match fr.State.code.Machine.level with
  | Machine.Base -> true
  | Machine.Opt ->
      vm.State.config.State.opt_osr
      && not (Machine.pc_in_inlined_span fr.State.code fr.State.pc)

(* Replace [fr]'s code with a freshly base-compiled body resolved against
   *current* class metadata.  Must be called after the updated classes are
   installed (paper: "the exact timing of OSR for DSU requires the VM to
   first load modified classes").  The frame's bytecode is unchanged, so
   the new code has the same shape; we still go through the bc_map on both
   sides rather than assuming it. *)
let replace_frame vm (fr : State.frame) =
  if not (eligible vm fr) then
    raise (Osr_failed "cannot OSR an opt-compiled frame");
  let m = Rt.method_by_uid vm.State.reg fr.State.f_method in
  let bc_pc = fr.State.code.Machine.bc_map.(fr.State.pc) in
  let fresh =
    try Jit.compile vm m Machine.Base
    with Jit.Compile_error e -> raise (Osr_failed ("recompile: " ^ e))
  in
  m.Rt.base_code <- Some fresh;
  (* find the machine pc whose bytecode pc matches; base code is 1:1 so
     this is exact *)
  let new_pc =
    let n = Array.length fresh.Machine.bc_map in
    let rec go i =
      if i >= n then raise (Osr_failed "no pc mapping in fresh code")
      else if fresh.Machine.bc_map.(i) = bc_pc then i
      else go (i + 1)
    in
    go 0
  in
  (* base-compiled frames keep the bytecode's local layout; grow the slots
     array if the fresh code wants more (it cannot want fewer) *)
  if fresh.Machine.frame_locals > Array.length fr.State.locals then begin
    let l = Array.make fresh.Machine.frame_locals 0 in
    Array.blit fr.State.locals 0 l 0 (Array.length fr.State.locals);
    fr.State.locals <- l
  end;
  fr.State.code <- fresh;
  fr.State.pc <- new_pc;
  vm.State.osr_count <- vm.State.osr_count + 1;
  Jv_obs.Obs.incr vm.State.obs "vm.osr.replacements";
  Jv_obs.Obs.emit vm.State.obs ~scope:"vm.osr" "osr.replace"
    [
      ( "method",
        Jv_obs.Obs.Str
          (Rt.method_qname (Rt.class_by_id vm.State.reg m.Rt.owner) m) );
      ("bc_pc", Jv_obs.Obs.Int bc_pc);
    ]
