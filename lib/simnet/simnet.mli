(** The in-memory network substrate standing in for the paper's real
    sockets (see DESIGN.md, "Substitutions"): line-oriented bidirectional
    connections between servers running on the VM (via the [Net.*]
    natives) and workload drivers in the benchmark harness. *)

type t

val create : unit -> t

val set_obs : t -> Jv_obs.Obs.t -> unit
(** Attach an observability sink: per-connection open/close events (scope
    ["net"]), byte counters, and connection lifetime/byte histograms. *)

val set_faults : t -> Jv_faults.Faults.t option -> unit
(** Arm (or disarm) a chaos plan on this network.  Armed points:
    ["net.connect"] — a firing rule refuses the connection ([connect]
    returns [None], as across a partition); ["net.link"] — consulted
    once per sent line in either direction: [drop] discards the line,
    [delay:N] holds it for N ticks of the attached sink's clock;
    ["simnet.partition"] — consulted by {!tick_faults}: a fire splits
    the listening ports into two random islands for a while.
    Delay and timed-partition faults require a sink ({!set_obs}) whose
    clock advances. *)

(** {1 Partitions}

    A partition assigns ports to islands: connections cannot be opened
    across islands ([connect ~from] returns [None]) and lines sent on
    established cross-island connections are silently dropped.  Ports
    not named in any group share the implicit island [-1] — anonymous
    clients ([connect] without [~from]) live there too. *)

val set_partition : t -> groups:int list list -> unit
(** Split the network: each [groups] element is one island of ports.
    Replaces any previous partition; stays until {!heal} (or the timer
    installed by a [simnet.partition] fault fires). *)

val heal : t -> unit
(** Remove the partition. *)

val partitioned : t -> a:int -> b:int -> bool
(** Are ports [a] and [b] currently on different islands? *)

val tick_faults : t -> unit
(** Consult the ["simnet.partition"] chaos point once (call once per
    owner round): a fire installs a seeded random two-way split of the
    listening ports, healing after [delay:N] ticks (other actions use a
    default window).  Also heals any expired timed partition. *)

exception Net_error of string

(** {1 Server side (used by the VM natives)} *)

val listen : t -> port:int -> int
(** Bind a port; returns the listener id.  Raises {!Net_error} if the
    port is taken. *)

val accept : t -> listener_id:int -> int option
(** Non-blocking: [None] means the VM thread must block. *)

val has_pending : t -> listener_id:int -> bool

val pending_count : t -> listener_id:int -> int
(** Accepted-queue depth on a listener (load-balancer backlog pressure). *)

val recv_line : t -> conn_id:int -> [ `Line of string | `Eof | `Wait ]
val send : t -> conn_id:int -> string -> unit
val close_server : t -> conn_id:int -> unit
val can_recv : t -> conn_id:int -> bool

(** {1 Client side (used by workload drivers)} *)

val connect : ?from:int -> t -> port:int -> int option
(** [None] if nothing listens on [port] (or a partition separates
    [from] and [port]).  [from] is the client's own port identity for
    partition checks; default [-1] (anonymous). *)

val client_send : t -> conn_id:int -> string -> unit
val client_recv : t -> conn_id:int -> [ `Line of string | `Eof | `Wait ]
val client_close : t -> conn_id:int -> unit
val client_can_recv : t -> conn_id:int -> bool
val server_closed : t -> conn_id:int -> bool

val reap : t -> conn_id:int -> unit
(** Drop a fully-closed connection's storage. *)

(** {1 Accounting (throughput figures)} *)

val stats : t -> int * int
(** (bytes to server, bytes to client), newline included per line. *)

val reset_stats : t -> unit

(** {1 Load-balancer endpoints (fleet orchestration)} *)

val conn_stats : t -> conn_id:int -> (int * int) option
(** Per-connection (bytes to server, bytes to client); [None] once the
    connection has been reaped. *)

val active_conns : t -> int
(** Connections not yet fully closed by both sides — what a draining
    load balancer waits to reach zero. *)

val set_listener_admit : t -> port:int -> bool -> unit
(** Pause/resume admitting new connections on a port ([connect] returns
    [None] while paused; established connections are untouched).  Raises
    {!Net_error} if no listener is bound to [port]. *)

val listener_admits : t -> port:int -> bool
(** Is the port bound and currently admitting? *)

val listening_ports : t -> int list
