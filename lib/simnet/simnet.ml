(* An in-memory network substrate.

   The paper evaluates Jvolve on socket servers (Jetty, JavaEmailServer,
   CrossFTP) driven by external clients (httperf).  This repository has no
   real network, so servers running on the VM talk to benchmark-harness
   clients through this module: line-oriented, bidirectional, in-memory
   connections.  See DESIGN.md ("Substitutions").

   The server side is used by the VM's [Net.*] native methods; the client
   side by OCaml workload drivers.  Everything is single-threaded (the VM
   scheduler interleaves server threads; harness code pumps clients between
   scheduler rounds), so no locking is needed. *)

type conn = {
  conn_id : int;
  c_port : int; (* server port this connection landed on *)
  c_from : int; (* client's claimed source port; -1 = anonymous *)
  mutable to_server : string list; (* queued lines, oldest first *)
  mutable to_server_back : string list;
  mutable to_client : string list;
  mutable to_client_back : string list;
  mutable closed_by_client : bool;
  mutable closed_by_server : bool;
  (* per-connection accounting, for load-balancer endpoints that need to
     bill traffic to individual backends *)
  mutable c_bytes_to_server : int;
  mutable c_bytes_to_client : int;
  c_opened_at : int; (* sink tick at connect, for lifetime histograms *)
  mutable c_close_emitted : bool;
  (* lines held back by a delay fault: (deliver-at tick, line), in send
     order; flushed into the main queue by the receive paths *)
  mutable c_delayed_to_server : (int * string) list;
  mutable c_delayed_to_client : (int * string) list;
}

type listener = {
  port : int;
  mutable backlog : conn list; (* pending, oldest first *)
  mutable backlog_back : conn list;
  mutable open_ : bool;
}

type t = {
  mutable listeners : (int * listener) list; (* port -> listener *)
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable next_listener : int;
  listener_ids : (int, listener) Hashtbl.t;
  mutable bytes_to_client : int; (* throughput accounting *)
  mutable bytes_to_server : int;
  mutable obs : Jv_obs.Obs.t option; (* per-connection events and meters *)
  (* armed chaos plan: the [net.connect], [net.link] and
     [simnet.partition] points live here.  Delay faults are timed on the
     attached sink's clock *)
  mutable faults : Jv_faults.Faults.t option;
  (* network partition: port -> island id.  Ports in different islands
     cannot connect to each other, and lines on established
     cross-island connections are silently dropped (as across a real
     split).  Ports absent from the map share island -1. *)
  mutable islands : (int, int) Hashtbl.t option;
  mutable partition_until : int; (* heal at this sink tick; max_int = manual *)
}

let create () =
  {
    listeners = [];
    conns = Hashtbl.create 64;
    next_conn = 1;
    next_listener = 1;
    listener_ids = Hashtbl.create 8;
    bytes_to_client = 0;
    bytes_to_server = 0;
    obs = None;
    faults = None;
    islands = None;
    partition_until = max_int;
  }

(* Attach the owning VM's (or fleet's) sink; connection open/close events
   land in scope "net". *)
let set_obs t sink = t.obs <- Some sink
let set_faults t f = t.faults <- f

let obs_tick t = match t.obs with None -> 0 | Some o -> Jv_obs.Obs.now o

let obs_incr t ?by name =
  match t.obs with None -> () | Some o -> Jv_obs.Obs.incr ?by o name

(* A connection's close event fires once, when the second side closes. *)
let emit_close t c =
  if c.closed_by_client && c.closed_by_server && not c.c_close_emitted then begin
    c.c_close_emitted <- true;
    match t.obs with
    | None -> ()
    | Some o ->
        let life = Jv_obs.Obs.now o - c.c_opened_at in
        Jv_obs.Obs.incr o "net.conns_closed";
        Jv_obs.Obs.observe_int o "net.conn_lifetime_ticks" life;
        Jv_obs.Obs.observe_int o "net.conn_bytes"
          (c.c_bytes_to_server + c.c_bytes_to_client);
        Jv_obs.Obs.emit o ~scope:"net" "conn.close"
          [
            ("conn", Jv_obs.Obs.Int c.conn_id);
            ("ticks", Jv_obs.Obs.Int life);
            ("bytes_in", Jv_obs.Obs.Int c.c_bytes_to_server);
            ("bytes_out", Jv_obs.Obs.Int c.c_bytes_to_client);
          ]
  end

(* --- queue helpers (two-list FIFO) --- *)

let push_q front back v = (front, v :: back)

let pop_q front back =
  match front with
  | v :: rest -> Some (v, rest, back)
  | [] -> (
      match List.rev back with
      | [] -> None
      | v :: rest -> Some (v, rest, []))

(* --- partitions -------------------------------------------------------- *)

let heal t =
  t.islands <- None;
  t.partition_until <- max_int

let set_partition t ~groups =
  let m = Hashtbl.create 16 in
  List.iteri
    (fun island ports -> List.iter (fun p -> Hashtbl.replace m p island) ports)
    groups;
  t.islands <- Some m;
  t.partition_until <- max_int;
  obs_incr t "net.partitions";
  match t.obs with
  | None -> ()
  | Some o ->
      Jv_obs.Obs.emit o ~scope:"net" "partition.set"
        [ ("islands", Jv_obs.Obs.Int (List.length groups)) ]

(* Lazily heal a timed partition once its deadline passes. *)
let check_heal t =
  if t.islands <> None && obs_tick t >= t.partition_until then begin
    heal t;
    obs_incr t "net.partition_heals";
    match t.obs with
    | None -> ()
    | Some o -> Jv_obs.Obs.emit o ~scope:"net" "partition.heal" []
  end

let island t port =
  match t.islands with
  | None -> -1
  | Some m -> Option.value ~default:(-1) (Hashtbl.find_opt m port)

let partitioned t ~a ~b =
  check_heal t;
  t.islands <> None && island t a <> island t b

(* The [simnet.partition] chaos point: consulted once per owner round
   (the fleet's gossip layer ticks it).  A fire splits the currently
   listening ports into two random islands; [delay:N] heals after N
   ticks of the sink's clock, any other action uses a default window.
   The split is drawn from the plan's own xorshift stream, so a seed
   fixes which ports land on which side. *)
let default_partition_ticks = 32

let tick_faults t =
  check_heal t;
  match Jv_faults.Faults.check t.faults "simnet.partition" with
  | None -> ()
  | Some action -> (
      match t.faults with
      | None -> ()
      | Some plan ->
          let ports = List.map fst t.listeners in
          let left, right =
            List.partition (fun _ -> Jv_faults.Faults.draw plan < 0.5) ports
          in
          (* a one-sided draw is no partition at all: force a split *)
          let left, right =
            match (left, right) with
            | [], p :: rest -> ([ p ], rest)
            | p :: rest, [] -> (rest, [ p ])
            | lr -> lr
          in
          set_partition t ~groups:[ left; right ];
          t.partition_until <-
            obs_tick t
            + (match action with
              | Jv_faults.Faults.Delay n -> max 1 n
              | _ -> default_partition_ticks))

(* --- link faults ------------------------------------------------------- *)

(* What a send must do under the armed plan.  One consultation per line. *)
let link_verdict t = Jv_faults.Faults.link t.faults "net.link"

let note_dropped t =
  obs_incr t "net.fault_dropped_lines";
  match t.obs with
  | None -> ()
  | Some o -> Jv_obs.Obs.emit o ~scope:"net" "line.dropped" []

(* Move delay-held lines whose deliver-at tick has passed into the real
   queue, preserving hold order. *)
let flush_to_server t c =
  match c.c_delayed_to_server with
  | [] -> ()
  | held ->
      let tick = obs_tick t in
      let ready, still = List.partition (fun (at, _) -> at <= tick) held in
      c.c_delayed_to_server <- still;
      List.iter
        (fun (_, line) ->
          let front, back = push_q c.to_server c.to_server_back line in
          c.to_server <- front;
          c.to_server_back <- back)
        ready

let flush_to_client t c =
  match c.c_delayed_to_client with
  | [] -> ()
  | held ->
      let tick = obs_tick t in
      let ready, still = List.partition (fun (at, _) -> at <= tick) held in
      c.c_delayed_to_client <- still;
      List.iter
        (fun (_, line) ->
          let front, back = push_q c.to_client c.to_client_back line in
          c.to_client <- front;
          c.to_client_back <- back)
        ready

(* --- server side (used by VM natives) --- *)

exception Net_error of string

let listen t ~port =
  if List.mem_assoc port t.listeners then
    raise (Net_error (Printf.sprintf "port %d already bound" port));
  let l = { port; backlog = []; backlog_back = []; open_ = true } in
  t.listeners <- (port, l) :: t.listeners;
  let id = t.next_listener in
  t.next_listener <- id + 1;
  Hashtbl.replace t.listener_ids id l;
  id

let listener_by_id t id = Hashtbl.find_opt t.listener_ids id

(* Non-blocking accept: [None] means the VM thread must block. *)
let accept t ~listener_id =
  match listener_by_id t listener_id with
  | None -> raise (Net_error "accept on unknown listener")
  | Some l -> (
      match pop_q l.backlog l.backlog_back with
      | None -> None
      | Some (c, front, back) ->
          l.backlog <- front;
          l.backlog_back <- back;
          Some c.conn_id)

let has_pending t ~listener_id =
  match listener_by_id t listener_id with
  | None -> false
  | Some l -> l.backlog <> [] || l.backlog_back <> []

(* Accepted-queue depth: what an LB reads as backlog pressure. *)
let pending_count t ~listener_id =
  match listener_by_id t listener_id with
  | None -> 0
  | Some l -> List.length l.backlog + List.length l.backlog_back

let conn t id =
  match Hashtbl.find_opt t.conns id with
  | None -> raise (Net_error (Printf.sprintf "unknown connection %d" id))
  | Some c -> c

(* Non-blocking receive of one line from the client.  [`Line s] for data,
   [`Eof] when the client closed and the queue drained, [`Wait] when the VM
   thread must block. *)
let recv_line t ~conn_id =
  let c = conn t conn_id in
  flush_to_server t c;
  match pop_q c.to_server c.to_server_back with
  | Some (s, front, back) ->
      c.to_server <- front;
      c.to_server_back <- back;
      `Line s
  | None -> if c.closed_by_client then `Eof else `Wait

let can_recv t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> true (* let the native re-run and fail loudly *)
  | Some c ->
      flush_to_server t c;
      c.to_server <> [] || c.to_server_back <> [] || c.closed_by_client

let send t ~conn_id line =
  let c = conn t conn_id in
  if not c.closed_by_server then begin
    (match
       if partitioned t ~a:c.c_port ~b:c.c_from then `Drop
       else link_verdict t
     with
    | `Drop -> note_dropped t
    | `Delay n ->
        c.c_delayed_to_client <-
          c.c_delayed_to_client @ [ (obs_tick t + n, line) ]
    | `Ok ->
        let front, back = push_q c.to_client c.to_client_back line in
        c.to_client <- front;
        c.to_client_back <- back);
    t.bytes_to_client <- t.bytes_to_client + String.length line + 1;
    c.c_bytes_to_client <- c.c_bytes_to_client + String.length line + 1;
    obs_incr t ~by:(String.length line + 1) "net.bytes_to_client"
  end

let close_server t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> ()
  | Some c ->
      c.closed_by_server <- true;
      emit_close t c

(* --- client side (used by workload drivers) --- *)

(* Connect to a port; [None] if nothing is listening.  [from] is the
   client's own port identity (a gossip peer's listener), used by the
   partition check; anonymous clients (-1) share island -1. *)
let connect ?(from = -1) t ~port =
  match List.assoc_opt port t.listeners with
  | None -> None
  | Some _ when partitioned t ~a:from ~b:port ->
      (* the split is between us and the server: refused *)
      obs_incr t "net.partition_refused_conns";
      None
  | Some l when not l.open_ -> None
  | Some _
    when Jv_faults.Faults.link t.faults "net.connect" <> `Ok ->
      (* connection refused by an armed fault (partition) *)
      obs_incr t "net.fault_refused_conns";
      None
  | Some l ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      let c =
        {
          conn_id = id;
          c_port = port;
          c_from = from;
          to_server = [];
          to_server_back = [];
          to_client = [];
          to_client_back = [];
          closed_by_client = false;
          closed_by_server = false;
          c_bytes_to_server = 0;
          c_bytes_to_client = 0;
          c_opened_at = obs_tick t;
          c_close_emitted = false;
          c_delayed_to_server = [];
          c_delayed_to_client = [];
        }
      in
      Hashtbl.replace t.conns id c;
      let front, back = push_q l.backlog l.backlog_back c in
      l.backlog <- front;
      l.backlog_back <- back;
      obs_incr t "net.conns_opened";
      (match t.obs with
      | None -> ()
      | Some o ->
          Jv_obs.Obs.emit o ~scope:"net" "conn.open"
            [
              ("conn", Jv_obs.Obs.Int id); ("port", Jv_obs.Obs.Int port);
            ]);
      Some id

let client_send t ~conn_id line =
  let c = conn t conn_id in
  if not c.closed_by_client then begin
    (match
       if partitioned t ~a:c.c_from ~b:c.c_port then `Drop
       else link_verdict t
     with
    | `Drop -> note_dropped t
    | `Delay n ->
        c.c_delayed_to_server <-
          c.c_delayed_to_server @ [ (obs_tick t + n, line) ]
    | `Ok ->
        let front, back = push_q c.to_server c.to_server_back line in
        c.to_server <- front;
        c.to_server_back <- back);
    t.bytes_to_server <- t.bytes_to_server + String.length line + 1;
    c.c_bytes_to_server <- c.c_bytes_to_server + String.length line + 1;
    obs_incr t ~by:(String.length line + 1) "net.bytes_to_server"
  end

let client_recv t ~conn_id =
  let c = conn t conn_id in
  flush_to_client t c;
  match pop_q c.to_client c.to_client_back with
  | Some (s, front, back) ->
      c.to_client <- front;
      c.to_client_back <- back;
      `Line s
  | None -> if c.closed_by_server then `Eof else `Wait

let client_close t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> ()
  | Some c ->
      c.closed_by_client <- true;
      emit_close t c

let client_can_recv t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> true (* let the native re-run and fail loudly *)
  | Some c ->
      flush_to_client t c;
      c.to_client <> [] || c.to_client_back <> [] || c.closed_by_server

let server_closed t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> true
  | Some c -> c.closed_by_server

(* Drop a fully-closed connection's storage. *)
let reap t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | Some c when c.closed_by_client && c.closed_by_server ->
      Hashtbl.remove t.conns conn_id
  | _ -> ()

let stats t = (t.bytes_to_server, t.bytes_to_client)
let reset_stats t =
  t.bytes_to_server <- 0;
  t.bytes_to_client <- 0

(* --- load-balancer endpoints ------------------------------------------ *)

(* Per-connection byte counts; [None] once the connection is reaped. *)
let conn_stats t ~conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> None
  | Some c -> Some (c.c_bytes_to_server, c.c_bytes_to_client)

(* Connections not yet fully closed: the in-flight count a drain waits on. *)
let active_conns t =
  Hashtbl.fold
    (fun _ c n ->
      if c.closed_by_client && c.closed_by_server then n else n + 1)
    t.conns 0

(* Stop/resume admitting new connections on a port (connection draining at
   the listener: [connect] returns [None] while paused, established
   connections are untouched). *)
let set_listener_admit t ~port admit =
  match List.assoc_opt port t.listeners with
  | None -> raise (Net_error (Printf.sprintf "no listener on port %d" port))
  | Some l -> l.open_ <- admit

let listener_admits t ~port =
  match List.assoc_opt port t.listeners with
  | None -> false
  | Some l -> l.open_

let listening_ports t = List.map fst t.listeners
