(* The lazy, indirection-based baseline, modeled on JDrums and the Dynamic
   Virtual Machine (paper §5).

   Instead of Jvolve's eager stop-the-world GC pass, objects are migrated
   *on first dereference*: every getfield/putfield/invokevirtual consults a
   handle table (and, while an update is pending, transforms stale objects
   on the fly).  The per-dereference check is the cost the paper's design
   eliminates: it persists during steady-state execution even when no
   update is in flight, whereas Jvolve's updated programs run at full
   speed.

   Requires a VM created with [indirection_mode = true]; the [overhead]
   benchmark contrasts the two modes.  Lazy transformation applies the
   *default* field-copying transformer (lazy custom transformers are
   unsound in general — stateful program actions after the update can
   invalidate transformer assumptions, one of the drawbacks the paper
   notes in §3.5). *)

module CF = Jv_classfile
module State = Jv_vm.State
module Rt = Jv_vm.Rt
module Heap = Jv_vm.Heap
module Value = Jv_vm.Value
module J = Jvolve_core

type lazy_state = {
  pending : (int, int) Hashtbl.t; (* old cid -> new cid *)
  field_map : (int, (int * int) list) Hashtbl.t;
      (* old cid -> (old offset, new offset) pairs for same-name same-type
         fields *)
  max_new_words : int; (* reservation bound so transforms never move [addr] *)
  mutable transformed : int;
}

exception Lazy_error of string

(* Build the old->new field copy map for one class pair. *)
let build_field_map spec (old_rc : Rt.rt_class) (new_rc : Rt.rt_class) =
  Array.to_list old_rc.Rt.instance_fields
  |> List.filter_map (fun (ofi : Rt.field_info) ->
         let mapped = J.Transformers.map_old_ty spec ofi.Rt.fi_ty in
         Array.to_list new_rc.Rt.instance_fields
         |> List.find_map (fun (nfi : Rt.field_info) ->
                if
                  String.equal ofi.Rt.fi_name nfi.Rt.fi_name
                  && CF.Types.equal_ty mapped nfi.Rt.fi_ty
                then Some (ofi.Rt.fi_offset, nfi.Rt.fi_offset)
                else None))

(* Transform [fr.ostack.(idx)]'s object to its new class, registering the
   redirect in the handle table.  The reference lives in a root slot, so
   the up-front reservation below may collect safely. *)
let transform_slot vm st (fr : State.frame) idx =
  (* reserve before decoding the address: ensure_free may collect and move
     the object, but the slot is a root and gets rewritten *)
  State.ensure_free vm st.max_new_words;
  let addr = Value.to_ref fr.State.ostack.(idx) in
  let cid = Heap.class_id vm.State.heap addr in
  match Hashtbl.find_opt st.pending cid with
  | None -> ()
  | Some new_cid ->
      let new_rc = Rt.class_by_id vm.State.reg new_cid in
      let new_addr = State.alloc_object vm new_rc in
      (match Hashtbl.find_opt st.field_map cid with
      | Some pairs ->
          List.iter
            (fun (o, n) ->
              Heap.set vm.State.heap ~addr:new_addr ~off:n
                (Heap.get vm.State.heap ~addr ~off:o))
            pairs
      | None -> ());
      Hashtbl.replace vm.State.handle_table addr new_addr;
      st.transformed <- st.transformed + 1;
      fr.State.ostack.(idx) <- Value.of_ref new_addr

let make_hook st : State.t -> State.frame -> int -> unit =
 fun vm fr idx ->
  let w = fr.State.ostack.(idx) in
  match Hashtbl.find_opt vm.State.handle_table (Value.to_ref w) with
  | Some n -> fr.State.ostack.(idx) <- Value.of_ref n
  | None -> transform_slot vm st fr idx

(* Apply an update lazily.  Class metadata is installed eagerly (that part
   is unavoidable in any design); object migration happens on demand via
   the dereference hook.  The caller is responsible for quiescence of
   *changed methods* — like Jvolve, lazy systems still must not run old
   code against new signatures — so this uses the same safe-point check,
   but needs no GC pause. *)
let apply vm (prepared : J.Transformers.prepared) : (lazy_state, string) result
    =
  if not vm.State.config.indirection_mode then
    Error "VM was not created with indirection_mode (no handle checks)"
  else
    let spec = prepared.J.Transformers.p_spec in
    let restricted = J.Safepoint.compute vm spec in
    match J.Safepoint.check vm restricted with
    | J.Safepoint.Blocked stuck ->
        Error
          ("restricted methods on stack: "
          ^ J.Safepoint.describe_blockers vm restricted stuck)
    | J.Safepoint.Safe osr_frames ->
        let olds = J.Updater.rename_old_classes vm spec in
        let news = J.Updater.install_new_classes vm spec in
        J.Updater.carry_over_statics vm spec olds news;
        J.Updater.swap_method_bodies vm spec;
        ignore (J.Updater.invalidate_stale_code vm restricted);
        List.iter
          (fun fr ->
            try Jv_vm.Osr.replace_frame vm fr
            with Jv_vm.Osr.Osr_failed e -> raise (Lazy_error e))
          osr_frames;
        let st =
          {
            pending = Hashtbl.create 16;
            field_map = Hashtbl.create 16;
            max_new_words = 64;
            transformed = 0;
          }
        in
        let max_words = ref 64 in
        List.iter
          (fun (name, (old_rc : Rt.rt_class)) ->
            match List.assoc_opt name news with
            | Some new_rc ->
                Hashtbl.replace st.pending old_rc.Rt.cid new_rc.Rt.cid;
                Hashtbl.replace st.field_map old_rc.Rt.cid
                  (build_field_map spec old_rc new_rc);
                if new_rc.Rt.size_words > !max_words then
                  max_words := new_rc.Rt.size_words
            | None -> ())
          olds;
        let st = { st with max_new_words = !max_words } in
        vm.State.lazy_hook <- Some (make_hook st);
        Ok st

(* Steady-state instrumentation: how many dereference checks has this VM
   paid for?  (Nonzero even with no update in flight — that is the
   baseline's tax.) *)
let deref_checks vm = vm.State.deref_checks
