(* Application profiles: everything the fleet needs to know to run one of
   the benchmark servers as a load-balanced backend — which port the load
   balancer fronts, the scripted client session, the response classifier,
   and the health probe added for orchestration (apps answer it in every
   version, so it works across an update).

   minimail serves SMTP and POP3; the fleet fronts the SMTP side only
   (one load-balancer endpoint per fleet), and the health probe goes to
   the same port. *)

module CF = Jv_classfile
module Apps = Jv_apps

type t = {
  pr_name : string;
  pr_versioned : Apps.Patching.versioned;
  pr_port : int; (* backend port the load balancer connects to *)
  pr_script : string list; (* one client session *)
  pr_ok : string -> bool; (* is this response healthy? *)
  pr_health_probe : string;
  pr_health_ok : string -> bool;
  pr_overrides : to_version:string -> Apps.Common.overrides;
  (* Optional durability hooks for stateful apps: serialize the live
     state of a running VM, and replay a serialized snapshot into a
     freshly booted base-version VM (the supervisor migrates the data
     forward through missed schema hops afterwards).  The serialized
     form is opaque to the fleet layer. *)
  pr_snapshot : (Jv_vm.Vm.t -> (string, string) result) option;
  pr_restore : (Jv_vm.Vm.t -> string -> (unit, string) result) option;
}

let miniweb =
  {
    pr_name = "miniweb";
    pr_versioned = Apps.Miniweb.app;
    pr_port = Apps.Miniweb.protocol_port;
    pr_script = Apps.Workload.web_script;
    pr_ok = Apps.Workload.web_ok;
    pr_health_probe = Apps.Miniweb.health_probe;
    pr_health_ok = Apps.Miniweb.health_ok;
    pr_overrides = (fun ~to_version:_ -> Apps.Common.no_overrides);
    pr_snapshot = None;
    pr_restore = None;
  }

let minimail =
  {
    pr_name = "minimail";
    pr_versioned = Apps.Minimail.app;
    pr_port = Apps.Minimail.smtp_port;
    pr_script = Apps.Workload.smtp_script;
    pr_ok = Apps.Workload.default_ok;
    pr_health_probe = Apps.Minimail.health_probe;
    pr_health_ok = Apps.Minimail.health_ok;
    pr_overrides = (fun ~to_version -> Apps.Minimail.overrides ~to_version);
    pr_snapshot = None;
    pr_restore = None;
  }

let miniftp =
  {
    pr_name = "miniftp";
    pr_versioned = Apps.Miniftp.app;
    pr_port = Apps.Miniftp.port;
    pr_script = Apps.Workload.ftp_script;
    pr_ok = Apps.Workload.default_ok;
    pr_health_probe = Apps.Miniftp.health_probe;
    pr_health_ok = Apps.Miniftp.health_ok;
    pr_overrides = (fun ~to_version:_ -> Apps.Common.no_overrides);
    pr_snapshot = None;
    pr_restore = None;
  }

let ministore =
  {
    pr_name = "ministore";
    pr_versioned = Apps.Ministore.app;
    pr_port = Apps.Ministore.port;
    pr_script = Apps.Workload.store_script;
    pr_ok = Apps.Workload.store_ok;
    pr_health_probe = Apps.Ministore.health_probe;
    pr_health_ok = Apps.Ministore.health_ok;
    pr_overrides = (fun ~to_version -> Apps.Ministore.overrides ~to_version);
    pr_snapshot =
      Some
        (fun vm ->
          Result.map Apps.Ministore.snapshot_to_string
            (Apps.Ministore.scrape vm));
    pr_restore =
      Some
        (fun vm str ->
          Result.bind (Apps.Ministore.snapshot_of_string str)
            (Apps.Ministore.restore vm));
  }

let all = [ miniweb; minimail; miniftp; ministore ]

let by_name name =
  List.find_opt (fun p -> p.pr_name = name) all

let versions p = List.map fst p.pr_versioned.Apps.Patching.versions

let source p ~version = Apps.Patching.source p.pr_versioned ~version

let compile p ~version =
  Jv_lang.Compile.compile_program (source p ~version)

(* Version tag for renamed old classes, per-instance so a fleet never
   collides: "514i3" = from-version 5.1.4 on instance 3. *)
let version_tag ~from_version ~instance_id =
  Printf.sprintf "%si%d" (Apps.Common.version_tag from_version) instance_id
