(* Scripted client load against the load balancer's front simnet — the
   fleet-level analogue of [Jv_apps.Workload], which drives a single
   VM's own network.  Sessions send one line, await one response line,
   and open a fresh connection after completing the script (up to
   [max_sessions]); the fleet pumps every driver once per fleet round.

   [dropped_in_flight] counts sessions severed while a request was
   outstanding — the "dropped connection" number a rollout must keep at
   zero.

   A closed-loop client never sends the next line until the previous one
   is answered, so a request (or response) swallowed by a lossy link
   ([net.link=drop] on an instance net) would wedge the session — and
   its balancer route — forever.  [request_timeout] is the client-side
   recovery: an unanswered request past the budget closes the connection
   (counted in [timed_out_requests], separate from [dropped_in_flight]:
   fault-induced loss is not an update-window sever) and frees the slot
   for a fresh session. *)

module Simnet = Jv_simnet.Simnet

type conn_state = {
  cid : int;
  mutable remaining : string list;
  mutable sent_at : int;
  mutable awaiting : bool;
}

type t = {
  net : Simnet.t; (* the balancer's front net *)
  port : int;
  script : string list;
  ok : string -> bool;
  concurrency : int;
  max_sessions : int;
  request_timeout : int; (* rounds an unanswered request may wait *)
  mutable launched : int;
  mutable active : conn_state list;
  mutable completed_sessions : int;
  mutable completed_requests : int;
  mutable errors : int;
  mutable dropped_in_flight : int;
  mutable severed_sessions : int; (* EOF between requests, script unfinished *)
  mutable timed_out_requests : int; (* gave up waiting (lossy link) *)
  mutable latency_rounds : int;
}

let default_request_timeout = 200

let create ~net ~port ~script ?(ok = Jv_apps.Workload.default_ok)
    ~concurrency ?(max_sessions = max_int)
    ?(request_timeout = default_request_timeout) () =
  {
    net;
    port;
    script;
    ok;
    concurrency;
    max_sessions;
    request_timeout;
    launched = 0;
    active = [];
    completed_sessions = 0;
    completed_requests = 0;
    errors = 0;
    dropped_in_flight = 0;
    severed_sessions = 0;
    timed_out_requests = 0;
    latency_rounds = 0;
  }

let close_conn t (c : conn_state) =
  Simnet.client_close t.net ~conn_id:c.cid;
  Simnet.reap t.net ~conn_id:c.cid

let pump_conn t ~tick (c : conn_state) : bool (* keep? *) =
  if not c.awaiting then true
  else
    match Simnet.client_recv t.net ~conn_id:c.cid with
    | `Wait ->
        if tick - c.sent_at > t.request_timeout then begin
          (* the request or its response was lost in transit: close, so
             the balancer reaps the wedged route, and move on *)
          t.timed_out_requests <- t.timed_out_requests + 1;
          close_conn t c;
          false
        end
        else true
    | `Eof ->
        (* active sessions always have a request outstanding (the next
           line is sent as soon as a response arrives), so EOF here is a
           sever mid-request *)
        t.dropped_in_flight <- t.dropped_in_flight + 1;
        if c.remaining <> [] then
          t.severed_sessions <- t.severed_sessions + 1;
        close_conn t c;
        false
    | `Line resp -> (
        c.awaiting <- false;
        t.completed_requests <- t.completed_requests + 1;
        t.latency_rounds <- t.latency_rounds + (tick - c.sent_at);
        if not (t.ok resp) then t.errors <- t.errors + 1;
        match c.remaining with
        | [] ->
            close_conn t c;
            t.completed_sessions <- t.completed_sessions + 1;
            false
        | line :: rest ->
            Simnet.client_send t.net ~conn_id:c.cid line;
            c.remaining <- rest;
            c.sent_at <- tick;
            c.awaiting <- true;
            true)

let launch t ~tick =
  if t.launched < t.max_sessions && List.length t.active < t.concurrency
  then
    match Simnet.connect t.net ~port:t.port with
    | None -> ()
    | Some cid -> (
        t.launched <- t.launched + 1;
        match t.script with
        | [] -> Simnet.client_close t.net ~conn_id:cid
        | line :: rest ->
            Simnet.client_send t.net ~conn_id:cid line;
            t.active <-
              { cid; remaining = rest; sent_at = tick; awaiting = true }
              :: t.active)

let step t ~tick =
  t.active <- List.filter (pump_conn t ~tick) t.active;
  (* staggered arrivals: at most one new session per round, like httperf *)
  if List.length t.active < t.concurrency then launch t ~tick

(* Close whatever is still open (end of an experiment). *)
let detach t =
  List.iter (close_conn t) t.active;
  t.active <- []

let in_flight t = List.length t.active

let mean_latency_rounds t =
  if t.completed_requests = 0 then 0.0
  else float_of_int t.latency_rounds /. float_of_int t.completed_requests
