(* The rollout orchestrator: drives a dynamic software update across a
   fleet of VM instances, one wave at a time.

   Per wave:  drain (stop routing new sessions, wait for in-flight to
   reach zero) -> request the DSU on each VM and keep the fleet running
   until every attempt resolves at a safe point -> health-probe the
   updated instances -> readmit them.  A canary rollout makes the first
   wave small, readmits it, then watches load-balancer health signals
   for an observation window before promoting the rest.

   Any failure — an update abort (safe-point timeout, transformer
   cycle), a failed health probe, a lost canary gate — halts the rollout
   and rolls every already-updated instance back by applying the inverse
   update spec ({!Jvolve_core.Spec.inverse}).  The orchestrator never
   kills a connection: instances that abort keep serving the old
   version, and the result records the whole story. *)

module J = Jvolve_core
module VM = Jv_vm

type mode =
  | Rolling of { batch_size : int }
  | Canary of { canaries : int; observe_rounds : int; promote_batch : int }

type params = {
  mode : mode;
  drain_timeout : int; (* rounds to wait for in-flight connections *)
  update_timeout : int; (* DSU abort budget in ticks (paper: 15 s) *)
  probe_deadline : int; (* rounds one health probe may take *)
  probes_required : int; (* consecutive healthy probes per instance *)
  gate : Health.gate_params; (* canary vs. stable comparison *)
  use_osr : bool;
  use_barriers : bool;
  admit_strict : bool; (* promote admission Warn verdicts to rejections *)
  max_rounds : int; (* hard stop for the whole rollout *)
  max_retries : int; (* re-attempts per instance after a clean abort *)
  backoff_base : int; (* rounds before retry #1; doubles per attempt *)
  on_exhausted : [ `Halt | `Quarantine ];
      (* retries spent: halt + roll everything back (default), or
         quarantine the instance and finish the rollout on survivors *)
  guard : J.Guard.config option;
      (* guarded commits: every forward update opens an in-VM guard
         window; a trip auto-reverts that instance AND fences the
         rollout with a fleet-wide coordinated revert.  A config without
         a probe gets the profile's health probe on each instance's own
         port. *)
}

let default_params mode =
  {
    mode;
    drain_timeout = 300;
    update_timeout = 400;
    probe_deadline = 80;
    probes_required = 2;
    gate = Health.default_gate;
    use_osr = true;
    use_barriers = true;
    admit_strict = false;
    max_rounds = 50_000;
    max_retries = 0;
    backoff_base = 40;
    on_exhausted = `Halt;
    guard = None;
  }

(* --- results ----------------------------------------------------------- *)

type result = {
  r_ok : bool;
  r_halted : string option; (* why the rollout stopped early *)
  r_updated : int list; (* instances on the new version at the end *)
  r_rolled_back : int list;
  r_aborted : (int * string) list; (* forward update aborts *)
  r_unhealthy : (int * string) list; (* failed health checks / gates *)
  r_rollback_failed : (int * string) list;
  r_quarantined : (int * string) list;
      (* removed from the fleet: VM killed, rollback failed, or retries
         spent under [`Quarantine] — and not (yet) recovered *)
  r_recovered : int list;
      (* instances a supervisor restarted and readmitted after this
         rollout quarantined them (see [reconcile]): their capacity came
         back, so SLO accounting must not count them as lost *)
  r_guard_tripped : (int * string) list;
      (* per-instance guard verdicts: in-VM auto-reverts (and failed
         reverts, which also land in [r_rollback_failed]) *)
  r_retries : int; (* per-instance update re-attempts performed *)
  r_rounds : int;
  r_mixed_window : int; (* rounds the fleet ran mixed versions *)
  r_drain_timeouts : int;
  r_reports : (int * J.Jvolve.attempt_report) list;
}

let pp_result ppf r =
  Fmt.pf ppf
    "%s: %d updated, %d rolled back, %d aborted, %d unhealthy%s | %d \
     rounds, mixed-version window %d rounds%s"
    (if r.r_ok then "ROLLOUT OK" else "ROLLOUT HALTED")
    (List.length r.r_updated)
    (List.length r.r_rolled_back)
    (List.length r.r_aborted)
    (List.length r.r_unhealthy)
    (match r.r_halted with None -> "" | Some why -> " (" ^ why ^ ")")
    r.r_rounds r.r_mixed_window
    ((if r.r_retries = 0 then ""
      else Printf.sprintf ", %d retries" r.r_retries)
    ^ (if r.r_quarantined = [] then ""
       else
         Printf.sprintf ", %d quarantined" (List.length r.r_quarantined))
    ^ (if r.r_recovered = [] then ""
       else Printf.sprintf ", %d recovered" (List.length r.r_recovered))
    ^ (if r.r_guard_tripped = [] then ""
       else
         Printf.sprintf ", %d guard trip(s)" (List.length r.r_guard_tripped))
    ^
    if r.r_rollback_failed = [] then ""
    else
      Printf.sprintf ", ROLLBACK FAILED on %d instance(s)"
        (List.length r.r_rollback_failed))

(* Fold supervisor recoveries back into a rollout result: instances the
   rollout quarantined but a supervisor later restarted and readmitted
   move from [r_quarantined] to [r_recovered], so restored capacity is
   not double-counted as lost. *)
let reconcile r ~recovered =
  let rec_q, still_q =
    List.partition (fun (id, _) -> List.mem id recovered) r.r_quarantined
  in
  {
    r with
    r_quarantined = still_q;
    r_recovered =
      List.sort_uniq compare (List.map fst rec_q @ r.r_recovered);
  }

(* --- the state machine ------------------------------------------------- *)

type direction = Forward | Rollback of string (* the halt reason *)

type stage =
  | Drain of { until : int }
  | Update of { handles : (int * J.Jvolve.handle) list }
  | Probe of {
      mutable live : (int * Health.probe) list; (* one active probe per id *)
      mutable needed : (int * int) list; (* id -> healthy probes still due *)
    }
  | Observe of { until : int; canaries : int list }
  | Backoff of { until : int } (* waiting out a retry's backoff delay *)

type wave = {
  w_ids : int list;
  w_observe : int option;
  w_not_before : int; (* retry waves: earliest tick to start (backoff) *)
}

type t = {
  fleet : Fleet.t;
  params : params;
  from_version : string;
  to_version : string;
  fwd_specs : (int * J.Spec.t) list; (* per instance *)
  mutable waves : wave list; (* not yet started *)
  mutable wave : wave option; (* in flight *)
  mutable stage : stage option;
  mutable direction : direction;
  mutable updated : int list;
  mutable rolled_back : int list;
  mutable aborted : (int * string) list;
  mutable unhealthy : (int * string) list;
  mutable rollback_failed : (int * string) list;
  mutable quarantined : (int * string) list;
  attempts : (int, int) Hashtbl.t; (* id -> failed forward attempts *)
  mutable guarding : (int * J.Jvolve.handle) list; (* open guard windows *)
  mutable guard_trips : (int * string) list;
  mutable fence : string option; (* pending fleet-wide revert reason *)
  mutable retries : int;
  mutable reports : (int * J.Jvolve.attempt_report) list;
  mutable drain_timeouts : int;
  mutable first_mixed : int option; (* tick of the first version change *)
  mutable last_change : int; (* tick of the latest version change *)
  started_at : int;
  mutable wave_started : int; (* tick the in-flight wave began *)
  mutable stage_started : int; (* tick the current stage began *)
  mutable result : result option;
}

(* Rollout telemetry goes to the fleet's sink under scope "fleet.rollout":
   the --trace timeline is exactly these events. *)
let emit_ev t name fields =
  Jv_obs.Obs.emit (Fleet.obs t.fleet) ~scope:"fleet.rollout" name fields

let ids_field ids =
  Jv_obs.Obs.Str (String.concat "," (List.map string_of_int ids))

let chunk k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = k then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let make_waves mode ids =
  let plain b = { w_ids = b; w_observe = None; w_not_before = 0 } in
  match mode with
  | Rolling { batch_size } -> List.map plain (chunk (max 1 batch_size) ids)
  | Canary { canaries; observe_rounds; promote_batch } ->
      let k = max 1 (min canaries (List.length ids - 1)) in
      let cs = List.filteri (fun i _ -> i < k) ids in
      let rest = List.filteri (fun i _ -> i >= k) ids in
      { w_ids = cs; w_observe = Some observe_rounds; w_not_before = 0 }
      :: List.map plain (chunk (max 1 promote_batch) rest)

let create ?(mutate_spec = fun _id spec -> spec) ~params ~fleet ~to_version
    () =
  let profile = fleet.Fleet.profile in
  let insts = Fleet.instances fleet in
  let from_version =
    match Fleet.uniform_version fleet with
    | Some v -> v
    | None -> invalid_arg "Orchestrator.create: fleet not on one version"
  in
  let new_program = Profile.compile profile ~version:to_version in
  let fwd_specs =
    List.map
      (fun (i : Instance.t) ->
        let spec =
          Jv_apps.Common.spec
            ~overrides:(profile.Profile.pr_overrides ~to_version)
            ~version_tag:
              (Profile.version_tag ~from_version ~instance_id:i.Instance.i_id)
            ~old_program:i.Instance.i_program ~new_program ()
        in
        (i.Instance.i_id, mutate_spec i.Instance.i_id spec))
      insts
  in
  let ids = List.map (fun (i : Instance.t) -> i.Instance.i_id) insts in
  Jv_obs.Obs.emit (Fleet.obs fleet) ~scope:"fleet.rollout" "rollout.start"
    [
      ("from", Jv_obs.Obs.Str from_version);
      ("to", Jv_obs.Obs.Str to_version);
      ("size", Jv_obs.Obs.Int (List.length ids));
      ( "mode",
        Jv_obs.Obs.Str
          (match params.mode with
          | Rolling { batch_size } ->
              Printf.sprintf "rolling(batch=%d)" batch_size
          | Canary { canaries; observe_rounds; _ } ->
              Printf.sprintf "canary(%d, observe=%d)" canaries observe_rounds)
      );
    ];
  {
    fleet;
    params;
    from_version;
    to_version;
    fwd_specs;
    waves = make_waves params.mode ids;
    wave = None;
    stage = None;
    direction = Forward;
    updated = [];
    rolled_back = [];
    aborted = [];
    unhealthy = [];
    rollback_failed = [];
    quarantined = [];
    attempts = Hashtbl.create 16;
    guarding = [];
    guard_trips = [];
    fence = None;
    retries = 0;
    reports = [];
    drain_timeouts = 0;
    first_mixed = None;
    last_change = 0;
    started_at = Fleet.ticks fleet;
    wave_started = Fleet.ticks fleet;
    stage_started = Fleet.ticks fleet;
    result = None;
  }

(* --- helpers ----------------------------------------------------------- *)

let now t = Fleet.ticks t.fleet
let lb t = Fleet.lb t.fleet
let inst t id = Fleet.instance t.fleet id
let fwd_spec t id = List.assoc id t.fwd_specs

let spec_for t id =
  match t.direction with
  | Forward -> fwd_spec t id
  | Rollback _ -> J.Spec.inverse (fwd_spec t id)

let note_version_change t =
  if t.first_mixed = None then t.first_mixed <- Some (now t);
  t.last_change <- now t

let set_status t ids status =
  List.iter (fun id -> (inst t id).Instance.i_status <- status) ids

let set_admit t ids admit =
  List.iter (fun id -> Lb.set_admit (lb t) ~id admit) ids

(* Park an instance out of the fleet: its VM was killed, its rollback
   failed (state not trusted), or its retries are spent under
   [`Quarantine].  The rollout itself never readmits it — only a
   [Supervisor] restart (fresh VM, snapshot restore, ladder catch-up,
   health probes) brings it back, and [reconcile] then moves it from
   [r_quarantined] to [r_recovered]. *)
let quarantine t id ~why =
  t.quarantined <- (id, why) :: t.quarantined;
  (inst t id).Instance.i_status <- Instance.Out_of_service;
  Lb.set_admit (lb t) ~id false;
  Jv_obs.Obs.incr (Fleet.obs t.fleet) "fleet.rollout.quarantined";
  emit_ev t "instance.quarantine"
    [ ("instance", Jv_obs.Obs.Int id); ("why", Jv_obs.Obs.Str why) ]

(* --- stage entry ------------------------------------------------------- *)

(* Forward updates are guarded when [params.guard] is set; a config
   without a probe gets the profile's health probe on the instance's own
   port.  Rollbacks are never guarded. *)
let guard_for t (i : Instance.t) =
  match (t.direction, t.params.guard) with
  | Rollback _, _ | _, None -> None
  | Forward, Some cfg ->
      Some
        (match cfg.J.Guard.c_probe with
        | Some _ -> cfg
        | None ->
            let p = t.fleet.Fleet.profile in
            {
              cfg with
              J.Guard.c_probe =
                Some
                  (J.Guard.probe_config ~every:20
                     ~deadline:t.params.probe_deadline
                     ~port:i.Instance.i_port
                     ~line:p.Profile.pr_health_probe
                     ~ok:p.Profile.pr_health_ok ());
            })

let start_updates t ids =
  emit_ev t "update.begin"
    [
      ("instances", ids_field ids);
      ( "direction",
        Jv_obs.Obs.Str
          (match t.direction with
          | Forward -> "forward"
          | Rollback _ -> "rollback") );
    ];
  t.stage_started <- now t;
  set_status t ids
    (match t.direction with
    | Forward -> Instance.Updating
    | Rollback _ -> Instance.Rolling_back);
  let handles =
    List.filter_map
      (fun id ->
        let i = inst t id in
        match
          J.Jvolve.request_spec ~timeout_rounds:t.params.update_timeout
            ~use_osr:t.params.use_osr ~use_barriers:t.params.use_barriers
            ~admit_strict:t.params.admit_strict
            ?guard:(guard_for t i) i.Instance.i_vm
            (spec_for t id)
        with
        | h -> Some (id, h)
        | exception J.Transformers.Prepare_error e ->
            (* never reached the VM: treat like an immediate abort *)
            (match t.direction with
            | Forward -> t.aborted <- (id, "prepare: " ^ e) :: t.aborted
            | Rollback _ ->
                t.rollback_failed <-
                  (id, "prepare: " ^ e) :: t.rollback_failed);
            None)
      ids
  in
  t.stage <- Some (Update { handles })

let enter_wave t (w : wave) =
  emit_ev t "wave.start" [ ("instances", ids_field w.w_ids) ];
  match t.direction with
  | Forward ->
      set_admit t w.w_ids false;
      set_status t w.w_ids Instance.Draining;
      emit_ev t "drain.begin"
        [
          ("instances", ids_field w.w_ids);
          ("timeout", Jv_obs.Obs.Int t.params.drain_timeout);
        ];
      t.stage_started <- now t;
      t.stage <- Some (Drain { until = now t + t.params.drain_timeout })
  | Rollback _ ->
      (* reverting: skip the drain, halt exposure as fast as possible *)
      start_updates t w.w_ids

let start_wave t (w : wave) =
  (* A supervisor may have recovered instances under our feet: skip wave
     members already on the target version (their catch-up beat us —
     count them updated) and members that are out of service
     (quarantined, or mid-recovery on the base version).  An emptied
     wave is simply not started; the driver's next step advances. *)
  let w =
    match t.direction with
    | Rollback _ -> w
    | Forward ->
        let keep =
          List.filter
            (fun id ->
              let i = inst t id in
              if i.Instance.i_version = t.to_version then begin
                if not (List.mem id t.updated) then
                  t.updated <- id :: t.updated;
                false
              end
              else i.Instance.i_status <> Instance.Out_of_service)
            w.w_ids
        in
        { w with w_ids = keep }
  in
  if w.w_ids = [] then begin
    t.wave <- None;
    t.stage <- None
  end
  else begin
  t.wave <- Some w;
  t.wave_started <- now t;
  if w.w_not_before > now t then begin
    (* a retry wave still inside its backoff window: the instance keeps
       serving the old version until the delay elapses *)
    emit_ev t "backoff.wait"
      [
        ("instances", ids_field w.w_ids);
        ("until", Jv_obs.Obs.Int w.w_not_before);
      ];
    t.stage_started <- now t;
    t.stage <- Some (Backoff { until = w.w_not_before })
  end
  else enter_wave t w
  end

let start_probes t ids =
  emit_ev t "probe.begin"
    [
      ("instances", ids_field ids);
      ("required", Jv_obs.Obs.Int t.params.probes_required);
    ];
  t.stage_started <- now t;
  t.stage <-
    Some
      (Probe
         {
           live =
             List.map
               (fun id ->
                 let i = inst t id in
                 ( id,
                   Health.start ~net:(Instance.net i)
                     ~port:i.Instance.i_port
                     ~line:t.fleet.Fleet.profile.Profile.pr_health_probe
                     ~ok:t.fleet.Fleet.profile.Profile.pr_health_ok
                     ~now:(now t) ~deadline_rounds:t.params.probe_deadline ))
               ids;
           needed = List.map (fun id -> (id, t.params.probes_required)) ids;
         })

(* --- finishing --------------------------------------------------------- *)

let finish ?(force = false) t =
  (* open guard windows (or in-flight in-VM reverts) keep the rollout
     alive: the per-round guard watch drains [guarding], then this runs *)
  if t.guarding <> [] && not force then ()
  else begin
  let halted =
    match t.direction with Forward -> None | Rollback why -> Some why
  in
  let mixed =
    match t.first_mixed with
    | None -> 0
    | Some t0 ->
        (* still mixed at the end (failed rollback): window stays open *)
        if Fleet.uniform_version t.fleet = None then now t - t0
        else t.last_change - t0
  in
  let rounds = now t - t.started_at in
  let obs = Fleet.obs t.fleet in
  Jv_obs.Obs.observe_int obs "fleet.rollout.rounds" rounds;
  Jv_obs.Obs.observe_int obs "fleet.rollout.mixed_window" mixed;
  (* exact last-rollout figures, for reports that must not round through
     histogram buckets *)
  Jv_obs.Obs.set_gauge obs "fleet.rollout.last_rounds" (float_of_int rounds);
  Jv_obs.Obs.set_gauge obs "fleet.rollout.last_mixed_window"
    (float_of_int mixed);
  emit_ev t "rollout.done"
    [
      ( "ok",
        Jv_obs.Obs.Str
          (string_of_bool (halted = None && t.rollback_failed = [])) );
      ("rounds", Jv_obs.Obs.Int rounds);
      ("mixed_window", Jv_obs.Obs.Int mixed);
      ("updated", Jv_obs.Obs.Int (List.length t.updated));
      ("rolled_back", Jv_obs.Obs.Int (List.length t.rolled_back));
      ("quarantined", Jv_obs.Obs.Int (List.length t.quarantined));
      ("retries", Jv_obs.Obs.Int t.retries);
    ];
  t.result <-
    Some
      {
        r_ok = (halted = None && t.rollback_failed = []);
        r_halted = halted;
        r_updated = List.sort compare t.updated;
        r_rolled_back = List.sort compare t.rolled_back;
        r_aborted = List.rev t.aborted;
        r_unhealthy = List.rev t.unhealthy;
        r_rollback_failed = List.rev t.rollback_failed;
        r_quarantined = List.rev t.quarantined;
        r_recovered = [];
        r_guard_tripped = List.rev t.guard_trips;
        r_retries = t.retries;
        r_rounds = rounds;
        r_mixed_window = mixed;
        r_drain_timeouts = t.drain_timeouts;
        r_reports = List.rev t.reports;
      }
  end

(* Halt the rollout: every already-updated instance is reverted, in one
   coordinated wave.  Instances whose guard window is still open revert
   in-VM (forced trip, replaying the retained update log so
   forward-dropped field values are restored); the rest get the plain
   inverse spec through the normal update pipeline. *)
let begin_rollback t ~why =
  let in_vm =
    List.filter (fun (_, h) -> J.Jvolve.guard_active h) t.guarding
  in
  List.iter
    (fun (id, h) ->
      emit_ev t "guard.fence"
        [ ("instance", Jv_obs.Obs.Int id); ("why", Jv_obs.Obs.Str why) ];
      J.Jvolve.force_trip (inst t id).Instance.i_vm h
        ~reason:("rollout fenced: " ^ why))
    in_vm;
  let in_vm_ids = List.map fst in_vm in
  emit_ev t "rollback.begin"
    [
      ("why", Jv_obs.Obs.Str why);
      ("instances", ids_field (List.sort compare t.updated));
      ("in_vm_reverts", ids_field (List.sort compare in_vm_ids));
    ];
  (* a wave caught mid-drain is abandoned here: its members never
     updated, so put them back in service before the wave record is
     dropped — otherwise they are left unadmitted forever *)
  (match t.wave with
  | Some w ->
      List.iter
        (fun id ->
          let i = inst t id in
          if i.Instance.i_status = Instance.Draining then begin
            i.Instance.i_status <- Instance.In_service;
            Lb.set_admit (lb t) ~id true
          end)
        w.w_ids
  | None -> ());
  t.direction <- Rollback why;
  t.wave <- None;
  t.stage <- None;
  t.waves <-
    (match
       List.filter (fun id -> not (List.mem id in_vm_ids)) t.updated
     with
    | [] -> []
    | ids ->
        [
          {
            w_ids = List.sort compare ids;
            w_observe = None;
            w_not_before = 0;
          };
        ])

(* A supervisor may recover a quarantined instance mid-rollout, after
   its wave has already passed: In_service again, but still on the old
   version.  Sweep such stragglers into one more wave through the
   normal pipeline rather than finishing with a split fleet.
   (Recoveries that complete after the rollout are covered by the
   supervisor's own ladder catch-up, which by then targets the updated
   plurality.) *)
let stragglers t =
  match t.direction with
  | Rollback _ -> []
  | Forward ->
      if t.fence <> None then []
      else
        List.filter_map
          (fun (i : Instance.t) ->
            if
              i.Instance.i_status = Instance.In_service
              && i.Instance.i_version <> t.to_version
              && (not (List.mem i.Instance.i_id t.updated))
              && VM.Vm.killed i.Instance.i_vm = None
            then Some i.Instance.i_id
            else None)
          (Fleet.instances t.fleet)

let next_wave t =
  t.wave <- None;
  t.stage <- None;
  match t.waves with
  | [] -> (
      match stragglers t with
      | [] -> finish t
      | ids ->
          start_wave t
            { w_ids = List.sort compare ids; w_observe = None; w_not_before = 0 })
  | w :: rest ->
      t.waves <- rest;
      start_wave t w

(* --- per-round step ---------------------------------------------------- *)

(* Scan the open guard windows once per round.  A clean close just drops
   off the watch list; a trip means the instance already reverted itself
   in-VM (it is back on the known-good version and keeps serving) and the
   rollout must be fenced; a trip whose revert failed leaves the instance
   stuck on the new version — quarantined, like a failed rollback. *)
let guard_watch t =
  if t.guarding <> [] then begin
    let still = ref [] in
    List.iter
      (fun (id, (h : J.Jvolve.handle)) ->
        if J.Jvolve.guard_active h then begin
          if VM.Vm.killed (inst t id).Instance.i_vm <> None then begin
            (* the VM died with its window open: nothing in-VM can close
               or revert it now.  Force-close the watch, quarantine the
               corpse, and fence the rollout — the suspect version lost
               its witness, so the survivors revert, and a supervisor
               restart catches the instance up to the *reverted* epoch *)
            let why = "vm killed during guard window" in
            t.guard_trips <- (id, why) :: t.guard_trips;
            t.updated <- List.filter (( <> ) id) t.updated;
            quarantine t id ~why;
            match (t.direction, t.fence) with
            | Forward, None ->
                t.fence <-
                  Some
                    (Printf.sprintf "instance %d killed during guard window"
                       id)
            | _ -> ()
          end
          else still := (id, h) :: !still
        end
        else
          let i = inst t id in
          match h.J.Jvolve.h_outcome with
          | J.Jvolve.Applied _ ->
              emit_ev t "guard.closed" [ ("instance", Jv_obs.Obs.Int id) ]
          | J.Jvolve.Reverted v ->
              let why = J.Guard.verdict_to_string v in
              Jv_obs.Obs.incr (Fleet.obs t.fleet)
                "fleet.rollout.guard_trips";
              emit_ev t "guard.reverted"
                [
                  ("instance", Jv_obs.Obs.Int id);
                  ("why", Jv_obs.Obs.Str why);
                  ( "revert_ms",
                    Jv_obs.Obs.Float v.J.Guard.v_revert_ms );
                ];
              t.guard_trips <- (id, why) :: t.guard_trips;
              i.Instance.i_version <- t.from_version;
              i.Instance.i_program <- (fwd_spec t id).J.Spec.old_program;
              t.updated <- List.filter (( <> ) id) t.updated;
              t.rolled_back <- id :: t.rolled_back;
              note_version_change t;
              (* back on the known-good version: keep it serving *)
              i.Instance.i_status <- Instance.In_service;
              Lb.set_admit (lb t) ~id true;
              (match (t.direction, t.fence) with
              | Forward, None ->
                  t.fence <-
                    Some
                      (Printf.sprintf "guard tripped on instance %d: %s" id
                         why)
              | _ -> ())
          | J.Jvolve.Aborted a ->
              (* tripped, and the revert itself rolled forward to an
                 abort: the VM stays on the new version — not trusted *)
              let why =
                "guard revert failed: " ^ J.Updater.abort_to_string a
              in
              t.guard_trips <- (id, why) :: t.guard_trips;
              t.updated <- List.filter (( <> ) id) t.updated;
              t.rollback_failed <- (id, why) :: t.rollback_failed;
              quarantine t id ~why;
              (match (t.direction, t.fence) with
              | Forward, None ->
                  t.fence <-
                    Some
                      (Printf.sprintf
                         "guard tripped on instance %d (revert failed)" id)
              | _ -> ())
          | J.Jvolve.Pending -> ())
      t.guarding;
    t.guarding <- List.rev !still
  end

let update_resolved t (w : wave) handles =
  let waited = now t - t.stage_started in
  Jv_obs.Obs.observe_int (Fleet.obs t.fleet) "fleet.rollout.update_rounds"
    waited;
  let failures = ref [] in
  List.iter
    (fun (id, (h : J.Jvolve.handle)) ->
      let i = inst t id in
      let rep = J.Jvolve.report i.Instance.i_vm h in
      t.reports <- (id, rep) :: t.reports;
      emit_ev t "update.done"
        [
          ("instance", Jv_obs.Obs.Int id);
          ( "outcome",
            Jv_obs.Obs.Str
              (match h.J.Jvolve.h_outcome with
              | J.Jvolve.Applied _ -> "applied"
              | J.Jvolve.Reverted _ -> "reverted"
              | J.Jvolve.Aborted _ -> "aborted"
              | J.Jvolve.Pending -> "pending") );
          ("ticks", Jv_obs.Obs.Int waited);
          ("sync_ms", Jv_obs.Obs.Float rep.J.Jvolve.ar_sync_ms);
          ( "waited_rounds",
            Jv_obs.Obs.Int rep.J.Jvolve.ar_waited_rounds );
        ];
      match (h.J.Jvolve.h_outcome, t.direction) with
      | J.Jvolve.Applied _, Forward ->
          i.Instance.i_version <- t.to_version;
          i.Instance.i_program <- (fwd_spec t id).J.Spec.new_program;
          t.updated <- id :: t.updated;
          note_version_change t;
          (* guarded commit: keep watching the window *)
          if J.Jvolve.guard_active h then
            t.guarding <- (id, h) :: t.guarding
      | J.Jvolve.Applied _, Rollback _ ->
          i.Instance.i_version <- t.from_version;
          i.Instance.i_program <- (fwd_spec t id).J.Spec.old_program;
          t.updated <- List.filter (( <> ) id) t.updated;
          t.rolled_back <- id :: t.rolled_back;
          note_version_change t
      | J.Jvolve.Reverted v, Forward ->
          (* the window tripped before this resolution scan even saw the
             apply: the instance visited the new version and is already
             back on the old one *)
          let why = J.Guard.verdict_to_string v in
          Jv_obs.Obs.incr (Fleet.obs t.fleet) "fleet.rollout.guard_trips";
          t.guard_trips <- (id, why) :: t.guard_trips;
          t.rolled_back <- id :: t.rolled_back;
          note_version_change t;
          i.Instance.i_status <- Instance.In_service;
          Lb.set_admit (lb t) ~id true;
          (match t.fence with
          | None ->
              t.fence <-
                Some
                  (Printf.sprintf "guard tripped on instance %d: %s" id why)
          | Some _ -> ())
      | J.Jvolve.Reverted v, Rollback _ ->
          (* cannot happen: rollbacks are never guarded *)
          let e = "guard reverted the rollback: " ^ J.Guard.verdict_to_string v in
          t.rollback_failed <- (id, e) :: t.rollback_failed;
          quarantine t id ~why:e
      | (J.Jvolve.Aborted _ | J.Jvolve.Pending), _ -> (
          let e =
            match h.J.Jvolve.h_outcome with
            | J.Jvolve.Aborted a -> J.Updater.abort_to_string a
            | _ -> "still pending"
          in
          match t.direction with
          | Forward ->
              t.aborted <- (id, e) :: t.aborted;
              (* a killed VM, or an abort whose rollback did not restore
                 the old version, cannot be trusted to serve or retry *)
              let unreliable =
                VM.Vm.killed i.Instance.i_vm <> None
                || (match h.J.Jvolve.h_outcome with
                   | J.Jvolve.Aborted a -> not a.J.Updater.a_rolled_back
                   | _ -> false)
              in
              if unreliable then quarantine t id ~why:e
              else begin
                let n =
                  (Option.value ~default:0 (Hashtbl.find_opt t.attempts id))
                  + 1
                in
                Hashtbl.replace t.attempts id n;
                if n <= t.params.max_retries then begin
                  (* rolled back cleanly: serve the old version while the
                     backoff elapses, then try again in its own wave *)
                  i.Instance.i_status <- Instance.In_service;
                  Lb.set_admit (lb t) ~id true;
                  t.retries <- t.retries + 1;
                  Jv_obs.Obs.incr (Fleet.obs t.fleet)
                    "fleet.rollout.retries";
                  let delay = t.params.backoff_base * (1 lsl (n - 1)) in
                  emit_ev t "update.retry"
                    [
                      ("instance", Jv_obs.Obs.Int id);
                      ("attempt", Jv_obs.Obs.Int n);
                      ("backoff", Jv_obs.Obs.Int delay);
                      ("reason", Jv_obs.Obs.Str e);
                    ];
                  t.waves <-
                    {
                      w_ids = [ id ];
                      w_observe = None;
                      w_not_before = now t + delay;
                    }
                    :: t.waves
                end
                else
                  match t.params.on_exhausted with
                  | `Quarantine ->
                      quarantine t id ~why:("retries exhausted: " ^ e)
                  | `Halt ->
                      failures := id :: !failures;
                      (* the instance never left the old version:
                         readmit it *)
                      i.Instance.i_status <- Instance.In_service;
                      Lb.set_admit (lb t) ~id true
              end
          | Rollback _ ->
              (* stuck on the new version: keep it out of service *)
              t.rollback_failed <- (id, e) :: t.rollback_failed;
              quarantine t id ~why:e))
    handles;
  match t.direction with
  | Forward when !failures <> [] ->
      begin_rollback t
        ~why:
          (Printf.sprintf "update aborted on instance %s"
             (String.concat ", "
                (List.map string_of_int (List.rev !failures))));
      (* instances of this wave that did apply are in [updated] and will
         be reverted with the rest *)
      next_wave t
  | _ ->
      (* every applied instance gets probed before being readmitted *)
      let ids =
        List.filter
          (fun id ->
            match t.direction with
            | Forward -> List.mem id t.updated
            | Rollback _ -> List.mem id t.rolled_back)
          w.w_ids
      in
      if ids = [] then next_wave t else start_probes t ids

let probe_step t (w : wave) ~live ~needed set_live set_needed =
  (* A VM that died while being probed is a crash, not evidence against
     the new version: an unhealthy *response* indicts the code, a dead
     process indicts the process.  Quarantine the corpse for the
     supervisor instead of halting the whole rollout — and drop it from
     [updated] so a later fence never tries to revert a dead VM. *)
  let dead, live =
    List.partition
      (fun (id, _) -> VM.Vm.killed (inst t id).Instance.i_vm <> None)
      live
  in
  List.iter
    (fun (id, _) ->
      t.updated <- List.filter (fun u -> u <> id) t.updated;
      quarantine t id ~why:"vm killed during health probe")
    dead;
  (* advance every live probe; collect verdicts *)
  List.iter (fun (_, p) -> Health.step p ~now:(now t)) live;
  let still_live = ref [] and failed = ref [] in
  List.iter
    (fun (id, p) ->
      match Health.outcome p with
      | Health.Pending -> still_live := (id, p) :: !still_live
      | Health.Unhealthy why ->
          emit_ev t "probe.unhealthy"
            [
              ("instance", Jv_obs.Obs.Int id); ("why", Jv_obs.Obs.Str why);
            ];
          failed := (id, why) :: !failed
      | Health.Healthy latency -> (
          emit_ev t "probe.healthy"
            [
              ("instance", Jv_obs.Obs.Int id);
              ("latency", Jv_obs.Obs.Int latency);
            ];
          match List.assoc_opt id needed with
          | Some n when n > 1 ->
              set_needed (id, n - 1);
              let i = inst t id in
              still_live :=
                ( id,
                  Health.start ~net:(Instance.net i) ~port:i.Instance.i_port
                    ~line:t.fleet.Fleet.profile.Profile.pr_health_probe
                    ~ok:t.fleet.Fleet.profile.Profile.pr_health_ok
                    ~now:(now t) ~deadline_rounds:t.params.probe_deadline )
                :: !still_live
          | _ -> set_needed (id, 0)))
    live;
  set_live !still_live;
  match !failed with
  | (id, why) :: _ -> (
      let why = Printf.sprintf "health check failed on instance %d: %s" id why in
      match t.direction with
      | Forward ->
          t.unhealthy <- (id, why) :: t.unhealthy;
          begin_rollback t ~why;
          next_wave t
      | Rollback _ ->
          (* reverted but sick: take it out of the fleet *)
          List.iter
            (fun (id, why) ->
              t.rollback_failed <- (id, why) :: t.rollback_failed;
              quarantine t id ~why)
            !failed;
          if !still_live = [] then next_wave t)
  | [] ->
      if !still_live = [] then begin
        (* every instance of the wave is healthy: readmit *)
        Jv_obs.Obs.observe_int (Fleet.obs t.fleet)
          "fleet.rollout.probe_rounds"
          (now t - t.stage_started);
        (* never readmit what was quarantined out of this wave (killed
           VM, failed rollback, exhausted retries) *)
        let back =
          List.filter
            (fun id ->
              (inst t id).Instance.i_status <> Instance.Out_of_service)
            w.w_ids
        in
        set_status t back Instance.In_service;
        set_admit t back true;
        emit_ev t "readmit"
          [
            ("instances", ids_field back);
            ("wave_ticks", Jv_obs.Obs.Int (now t - t.wave_started));
          ];
        match (t.direction, w.w_observe) with
        | Forward, Some rounds ->
            (* watch the canaries take real traffic before promoting *)
            Lb.reset_window (lb t);
            emit_ev t "observe.begin"
              [
                ("canaries", ids_field w.w_ids);
                ("rounds", Jv_obs.Obs.Int rounds);
              ];
            t.stage_started <- now t;
            t.stage <-
              Some (Observe { until = now t + rounds; canaries = w.w_ids })
        | _ -> next_wave t
      end

let observe_done t ~canaries =
  let all_ids =
    List.map (fun (i : Instance.t) -> i.Instance.i_id)
      (Fleet.instances t.fleet)
  in
  let stable = List.filter (fun id -> not (List.mem id canaries)) all_ids in
  let cw = Lb.window (lb t) ~ids:canaries in
  let sw = Lb.window (lb t) ~ids:stable in
  let verdict = Health.judge t.params.gate ~canary:cw ~stable:sw in
  emit_ev t "observe.done"
    [
      ("canaries", ids_field canaries);
      ( "verdict",
        Jv_obs.Obs.Str
          (match verdict with None -> "pass" | Some why -> why) );
    ];
  match verdict with
  | None -> next_wave t
  | Some why ->
      let why = "canary gate: " ^ why in
      List.iter (fun id -> t.unhealthy <- (id, why) :: t.unhealthy) canaries;
      begin_rollback t ~why;
      next_wave t

(* Consume a pending fence (a guard trip demanding a fleet-wide revert).
   Mid-[Update] waves must first resolve — their VMs have DSU attempts in
   flight — so the fence waits for the next safe stage boundary. *)
let consume_fence t =
  match (t.fence, t.direction) with
  | None, _ -> false
  | Some _, Rollback _ ->
      t.fence <- None;
      false
  | Some why, Forward -> (
      match t.stage with
      | Some (Update _) -> false
      | None | Some (Drain _ | Probe _ | Observe _ | Backoff _) ->
          t.fence <- None;
          begin_rollback t ~why;
          next_wave t;
          true)

let step t =
  guard_watch t;
  match (t.result, t.wave, t.stage) with
  | Some _, _, _ -> ()
  | None, None, _ ->
      if now t - t.started_at > t.params.max_rounds then begin
        begin_rollback t ~why:"rollout exceeded max_rounds";
        t.guarding <- [];
        finish ~force:true t
      end
      else if not (consume_fence t) then next_wave t
  | None, Some w, Some stage -> (
      if now t - t.started_at > t.params.max_rounds then begin
        (* hard stop: report whatever state we reached *)
        t.direction <-
          (match t.direction with
          | Forward -> Rollback "rollout exceeded max_rounds"
          | d -> d);
        t.guarding <- [];
        finish ~force:true t
      end
      else if consume_fence t then ()
      else
        match stage with
        | Drain { until } ->
            let remaining =
              List.fold_left
                (fun n id -> n + Lb.in_flight (lb t) ~id)
                0 w.w_ids
            in
            let drain_done ~timed_out =
              let waited = now t - t.stage_started in
              Jv_obs.Obs.observe_int (Fleet.obs t.fleet)
                "fleet.rollout.drain_rounds" waited;
              emit_ev t "drain.done"
                [
                  ("instances", ids_field w.w_ids);
                  ("ticks", Jv_obs.Obs.Int waited);
                  ("timed_out", Jv_obs.Obs.Str (string_of_bool timed_out));
                  ("in_flight", Jv_obs.Obs.Int remaining);
                ];
              start_updates t w.w_ids
            in
            if remaining = 0 then drain_done ~timed_out:false
            else if now t >= until then begin
              (* drain timed out: update anyway — the DSU never kills
                 connections, the survivors just pause at the safe point *)
              t.drain_timeouts <- t.drain_timeouts + 1;
              drain_done ~timed_out:true
            end
        | Update { handles } ->
            (* a VM killed while its request is pending can never reach
               a safe point: count it resolved so the wave proceeds (the
               resolution scan sees the corpse and quarantines it) *)
            if
              List.for_all
                (fun (id, h) ->
                  J.Jvolve.resolved h
                  || VM.Vm.killed (inst t id).Instance.i_vm <> None)
                handles
            then update_resolved t w handles
        | Probe p ->
            probe_step t w ~live:p.live ~needed:p.needed
              (fun l -> p.live <- l)
              (fun (id, n) ->
                p.needed <-
                  (id, n) :: List.remove_assoc id p.needed)
        | Observe { until; canaries } ->
            if now t >= until then observe_done t ~canaries
        | Backoff { until } -> if now t >= until then enter_wave t w)
  | None, Some _, None -> next_wave t

let result t = t.result

let describe t =
  match (t.result, t.wave, t.stage) with
  | Some r, _, _ -> Fmt.str "%a" pp_result r
  | None, None, _ -> "starting"
  | None, Some w, stage ->
      let ids = String.concat "," (List.map string_of_int w.w_ids) in
      let dir =
        match t.direction with
        | Forward -> "update"
        | Rollback _ -> "rollback"
      in
      let st =
        match stage with
        | Some (Drain _) -> "draining"
        | Some (Update _) -> "awaiting safe points"
        | Some (Probe _) -> "health probing"
        | Some (Observe _) -> "observing canaries"
        | Some (Backoff _) -> "backing off before retry"
        | None -> "starting"
      in
      Fmt.str "%s wave [%s]: %s" dir ids st

(* Convenience: create the orchestrator and drive the fleet until the
   rollout resolves. *)
let run ?mutate_spec ~params ~fleet ~to_version () =
  let t = create ?mutate_spec ~params ~fleet ~to_version () in
  let rec go () =
    match t.result with
    | Some r -> r
    | None ->
        Fleet.round fleet;
        step t;
        go ()
  in
  go ()
