(* The fleet facade: N independent VM instances of one server app behind
   a load balancer, stepped in lockstep rounds.

   One fleet round = one scheduler round on every in-service VM, one
   balancer pump (lines move client<->backend), one step of every
   attached workload driver.  The orchestrator (see [Orchestrator]) is
   stepped by its own driver loop on top of this. *)

module VM = Jv_vm

let default_lb_port = 80

type t = {
  profile : Profile.t;
  config : VM.State.config;
  instances : Instance.t array;
  lb : Lb.t;
  mutable drivers : Driver.t list;
  mutable ticks : int;
  obs : Jv_obs.Obs.t; (* fleet-level sink, clocked by fleet rounds *)
  mutable faults : Jv_faults.Faults.t option; (* plan armed by [set_faults] *)
}

let create ?(config = Instance.default_config) ?(policy = Lb.Round_robin)
    ?(lb_port = default_lb_port) ~profile ~version ~size () =
  if size < 1 then invalid_arg "Fleet.create: size must be >= 1";
  let instances =
    Array.init size (fun id -> Instance.boot ~config profile ~id ~version)
  in
  let obs = Jv_obs.Obs.create () in
  Jv_obs.Obs.set_wall obs Unix.gettimeofday;
  let lb = Lb.create ~policy ~ok:profile.Profile.pr_ok ~obs ~port:lb_port () in
  Array.iter
    (fun (inst : Instance.t) ->
      Lb.register lb ~id:inst.Instance.i_id ~net:(Instance.net inst)
        ~backend_port:inst.Instance.i_port)
    instances;
  let t =
    { profile; config; instances; lb; drivers = []; ticks = 0; obs;
      faults = None }
  in
  Jv_obs.Obs.set_clock obs (fun () -> t.ticks);
  t

let size t = Array.length t.instances
let instance t id = t.instances.(id)
let instances t = Array.to_list t.instances
let lb t = t.lb
let ticks t = t.ticks
let obs t = t.obs
let profile t = t.profile
let config t = t.config
let faults t = t.faults

let attach_load ?(concurrency = 4) ?max_sessions ?request_timeout t =
  let d =
    Driver.create ~net:(Lb.front t.lb) ~port:t.lb.Lb.port
      ~script:t.profile.Profile.pr_script ~ok:t.profile.Profile.pr_ok
      ~concurrency ?max_sessions ?request_timeout ()
  in
  t.drivers <- t.drivers @ [ d ];
  d

let detach_loads t =
  List.iter Driver.detach t.drivers;
  t.drivers <- []

(* Arm (or disarm) one chaos plan across the whole fleet: every instance
   VM (its [updater.*] points and scheduler kill switch) and every
   instance network (the LB-to-backend links cross each instance's own
   simnet, so [net.*] faults partition exactly that path). *)
let set_faults t f =
  t.faults <- f;
  Array.iter
    (fun (i : Instance.t) -> VM.Vm.set_faults i.Instance.i_vm f)
    t.instances;
  Option.iter (fun p -> Jv_faults.Faults.set_obs p t.obs) f

let round t =
  t.ticks <- t.ticks + 1;
  Array.iter Instance.round t.instances;
  Lb.pump t.lb ~tick:t.ticks;
  Jv_obs.Obs.set_gauge t.obs "fleet.lb.in_flight"
    (float_of_int (Lb.total_in_flight t.lb));
  List.iter (fun d -> Driver.step d ~tick:t.ticks) t.drivers

let run t ~rounds =
  for _ = 1 to rounds do
    round t
  done

(* --- fleet-wide invariant helpers (tests, results) -------------------- *)

let versions t =
  Array.to_list (Array.map (fun i -> i.Instance.i_version) t.instances)

(* [Some v] iff every instance still in service runs version [v]. *)
let uniform_version t =
  let vs =
    List.filter_map
      (fun (i : Instance.t) ->
        if i.Instance.i_status = Instance.Out_of_service then None
        else Some i.Instance.i_version)
      (instances t)
  in
  match vs with
  | [] -> None
  | v :: rest -> if List.for_all (( = ) v) rest then Some v else None

let total_requests t =
  List.fold_left (fun n d -> n + d.Driver.completed_requests) 0 t.drivers

let total_errors t =
  List.fold_left (fun n d -> n + d.Driver.errors) 0 t.drivers

let dropped_in_flight t =
  Lb.dropped t.lb
  + List.fold_left (fun n d -> n + d.Driver.dropped_in_flight) 0 t.drivers
