(* The fleet's front door: a load balancer at the simnet level.

   Clients connect to the balancer's own front simnet; every accepted
   connection is proxied line-by-line onto a backend connection into one
   instance's simnet, chosen round-robin or least-connections among the
   backends currently admitting traffic.  Setting a backend to
   non-admitting implements connection draining: established sessions
   keep flowing, new ones go elsewhere, and [in_flight] reports what the
   drain still waits on.

   The balancer also keeps the per-backend health signals the canary
   gate compares (responses, failed responses, request latency in fleet
   rounds) and counts dropped in-flight connections: a backend closing a
   proxied connection while a forwarded request is still unanswered.

   Bookkeeping is incremental so fleets of hundreds of backends spend
   their rounds proxying, not scanning: backends live in an array with a
   by-id index, the admitting count and total in-flight are maintained
   counters, and round-robin picking is a cursor walk that skips
   non-admitting backends (amortised O(1); least-connections stays a
   full scan by nature of the policy). *)

module Simnet = Jv_simnet.Simnet

type policy = Round_robin | Least_conns

type backend = {
  b_id : int;
  b_net : Simnet.t;
  b_port : int;
  mutable b_admit : bool;
  mutable b_active : int; (* live proxied connections *)
  mutable b_sessions : int; (* ever routed *)
  (* observation-window signals, reset by [reset_window] *)
  mutable b_responses : int;
  mutable b_errors : int;
  mutable b_latency_rounds : int; (* summed over responses *)
}

type route = {
  rt_front : int; (* front conn id (balancer is the server side) *)
  rt_back : int; (* backend conn id (balancer is the client side) *)
  rt_backend : backend;
  mutable rt_outstanding : int; (* forwarded requests not yet answered *)
  mutable rt_sent_at : int; (* tick of the oldest outstanding request *)
  mutable rt_front_closed : bool;
  mutable rt_back_closed : bool;
}

type t = {
  front : Simnet.t;
  port : int;
  listener : int;
  policy : policy;
  ok : string -> bool;
  mutable backends : backend array; (* registration order *)
  mutable n_backends : int; (* used prefix of [backends] *)
  by_id : (int, backend) Hashtbl.t;
  routes : (int, route) Hashtbl.t; (* front conn id -> route *)
  mutable rr_next : int;
  mutable admit_count : int; (* backends currently admitting *)
  mutable in_flight_count : int; (* sum of b_active, maintained *)
  mutable dropped : int;
  mutable rejected : int; (* accepted with no backend admitting *)
  mutable obs : Jv_obs.Obs.t option; (* routing decisions + latency *)
}

let create ?(policy = Round_robin) ?(ok = fun _ -> true) ?obs ~port () =
  let front = Simnet.create () in
  let listener = Simnet.listen front ~port in
  (match obs with Some o -> Simnet.set_obs front o | None -> ());
  {
    front;
    port;
    listener;
    policy;
    ok;
    backends = [||];
    n_backends = 0;
    by_id = Hashtbl.create 64;
    routes = Hashtbl.create 64;
    rr_next = 0;
    admit_count = 0;
    in_flight_count = 0;
    dropped = 0;
    rejected = 0;
    obs;
  }

let obs_incr t name =
  match t.obs with None -> () | Some o -> Jv_obs.Obs.incr o name

let obs_emit t name fields =
  match t.obs with
  | None -> ()
  | Some o -> Jv_obs.Obs.emit o ~scope:"fleet.lb" name fields

let front t = t.front

let register t ~id ~net ~backend_port =
  let b =
    {
      b_id = id;
      b_net = net;
      b_port = backend_port;
      b_admit = true;
      b_active = 0;
      b_sessions = 0;
      b_responses = 0;
      b_errors = 0;
      b_latency_rounds = 0;
    }
  in
  if t.n_backends = Array.length t.backends then begin
    let grown =
      Array.make (max 8 (2 * Array.length t.backends)) b
    in
    Array.blit t.backends 0 grown 0 t.n_backends;
    t.backends <- grown
  end;
  t.backends.(t.n_backends) <- b;
  t.n_backends <- t.n_backends + 1;
  Hashtbl.replace t.by_id id b;
  t.admit_count <- t.admit_count + 1

let backend t id = Hashtbl.find_opt t.by_id id

(* Swap a backend's simnet after a supervisor reboot.  A fresh record is
   installed (not admitting) so the new VM starts with clean counters;
   routes still proxying into the dead VM keep their reference to the
   orphaned record and unwind through the normal EOF/timeout path, which
   keeps the maintained in-flight total balanced. *)
let replace t ~id ~net ~backend_port =
  let idx = ref (-1) in
  for i = 0 to t.n_backends - 1 do
    if t.backends.(i).b_id = id then idx := i
  done;
  if !idx < 0 then invalid_arg "Lb.replace: unknown backend"
  else begin
    let old = t.backends.(!idx) in
    if old.b_admit then begin
      old.b_admit <- false;
      t.admit_count <- t.admit_count - 1
    end;
    let b =
      {
        b_id = id;
        b_net = net;
        b_port = backend_port;
        b_admit = false;
        b_active = 0;
        b_sessions = old.b_sessions;
        b_responses = 0;
        b_errors = 0;
        b_latency_rounds = 0;
      }
    in
    t.backends.(!idx) <- b;
    Hashtbl.replace t.by_id id b
  end

let set_admit t ~id admit =
  match backend t id with
  | None -> invalid_arg "Lb.set_admit: unknown backend"
  | Some b ->
      if b.b_admit <> admit then begin
        b.b_admit <- admit;
        t.admit_count <- t.admit_count + (if admit then 1 else -1)
      end

let admitting t ~id =
  match backend t id with None -> false | Some b -> b.b_admit

let in_flight t ~id =
  match backend t id with None -> 0 | Some b -> b.b_active

let total_in_flight t = t.in_flight_count
let dropped t = t.dropped
let rejected t = t.rejected

type window = {
  w_sessions : int;
  w_responses : int;
  w_errors : int;
  w_latency_rounds : int;
}

let window_of_backends bs =
  List.fold_left
    (fun w b ->
      {
        w_sessions = w.w_sessions + b.b_sessions;
        w_responses = w.w_responses + b.b_responses;
        w_errors = w.w_errors + b.b_errors;
        w_latency_rounds = w.w_latency_rounds + b.b_latency_rounds;
      })
    { w_sessions = 0; w_responses = 0; w_errors = 0; w_latency_rounds = 0 }
    bs

(* O(|ids|): by-id lookups, not a scan of every backend. *)
let window t ~ids = window_of_backends (List.filter_map (backend t) ids)

let error_rate w =
  if w.w_responses = 0 then 0.0
  else float_of_int w.w_errors /. float_of_int w.w_responses

let mean_latency w =
  if w.w_responses = 0 then 0.0
  else float_of_int w.w_latency_rounds /. float_of_int w.w_responses

let reset_window t =
  for i = 0 to t.n_backends - 1 do
    let b = t.backends.(i) in
    b.b_responses <- 0;
    b.b_errors <- 0;
    b.b_latency_rounds <- 0
  done

(* --- routing ---------------------------------------------------------- *)

let pick t : backend option =
  if t.admit_count = 0 then None
  else
    match t.policy with
    | Round_robin ->
        (* cursor walk skipping drained backends; admit_count > 0
           guarantees termination within one lap *)
        let n = t.n_backends in
        let rec go steps =
          let b = t.backends.(t.rr_next mod n) in
          t.rr_next <- (t.rr_next + 1) mod n;
          if b.b_admit then Some b
          else if steps >= n then None
          else go (steps + 1)
        in
        go 1
    | Least_conns ->
        let best = ref None in
        for i = 0 to t.n_backends - 1 do
          let b = t.backends.(i) in
          if b.b_admit then
            match !best with
            | Some c when c.b_active <= b.b_active -> ()
            | _ -> best := Some b
        done;
        !best

let accept_new t =
  let rec go () =
    (* nothing admitting (e.g. the whole fleet drains at once): leave new
       connections in the listener backlog — the accept queue of a real
       balancer — rather than accepting and hanging up on them *)
    if t.admit_count = 0 then ()
    else
      match Simnet.accept t.front ~listener_id:t.listener with
      | None -> ()
      | Some fcid ->
          (match pick t with
          | None -> assert false (* some backend admits: pick finds it *)
          | Some b -> (
              match Simnet.connect b.b_net ~port:b.b_port with
              | None ->
                  t.rejected <- t.rejected + 1;
                  obs_incr t "fleet.lb.rejected";
                  obs_emit t "lb.reject" [ ("backend", Jv_obs.Obs.Int b.b_id) ];
                  Simnet.close_server t.front ~conn_id:fcid
              | Some bcid ->
                  b.b_active <- b.b_active + 1;
                  t.in_flight_count <- t.in_flight_count + 1;
                  b.b_sessions <- b.b_sessions + 1;
                  obs_incr t "fleet.lb.sessions";
                  Hashtbl.replace t.routes fcid
                    {
                      rt_front = fcid;
                      rt_back = bcid;
                      rt_backend = b;
                      rt_outstanding = 0;
                      rt_sent_at = 0;
                      rt_front_closed = false;
                      rt_back_closed = false;
                    }));
          go ()
  in
  go ()

let pump_route t ~tick (r : route) : bool (* keep? *) =
  let b = r.rt_backend in
  (* The driver (the front net's client) reaps once both sides are
     closed, which can remove the connection before we observe its EOF;
     treat a vanished front connection as closed. *)
  if
    (not r.rt_front_closed)
    && Simnet.conn_stats t.front ~conn_id:r.rt_front = None
  then begin
    r.rt_front_closed <- true;
    Simnet.client_close b.b_net ~conn_id:r.rt_back
  end;
  (* client -> backend *)
  let rec fwd () =
    if not r.rt_front_closed then
      match Simnet.recv_line t.front ~conn_id:r.rt_front with
      | `Line l ->
          if r.rt_outstanding = 0 then r.rt_sent_at <- tick;
          r.rt_outstanding <- r.rt_outstanding + 1;
          Simnet.client_send b.b_net ~conn_id:r.rt_back l;
          fwd ()
      | `Eof ->
          r.rt_front_closed <- true;
          Simnet.client_close b.b_net ~conn_id:r.rt_back
      | `Wait -> ()
  in
  fwd ();
  (* backend -> client *)
  let rec bwd () =
    if not r.rt_back_closed then
      match Simnet.client_recv b.b_net ~conn_id:r.rt_back with
      | `Line l ->
          if r.rt_outstanding > 0 then begin
            r.rt_outstanding <- r.rt_outstanding - 1;
            b.b_responses <- b.b_responses + 1;
            b.b_latency_rounds <- b.b_latency_rounds + (tick - r.rt_sent_at);
            obs_incr t "fleet.lb.responses";
            (match t.obs with
            | Some o ->
                Jv_obs.Obs.observe_int o "fleet.lb.request_latency_rounds"
                  (tick - r.rt_sent_at)
            | None -> ());
            if r.rt_outstanding > 0 then r.rt_sent_at <- tick;
            if not (t.ok l) then begin
              b.b_errors <- b.b_errors + 1;
              obs_incr t "fleet.lb.errors"
            end
          end;
          Simnet.send t.front ~conn_id:r.rt_front l;
          bwd ()
      | `Eof ->
          (* backend hung up; a still-unanswered request means the
             connection was dropped in flight — unless the client already
             abandoned the route (request timeout on a lossy link), in
             which case this EOF is just the echo of our own close *)
          r.rt_back_closed <- true;
          if r.rt_outstanding > 0 && not r.rt_front_closed then begin
            t.dropped <- t.dropped + 1;
            obs_incr t "fleet.lb.dropped";
            obs_emit t "lb.drop"
              [
                ("backend", Jv_obs.Obs.Int b.b_id);
                ("outstanding", Jv_obs.Obs.Int r.rt_outstanding);
              ]
          end;
          Simnet.close_server t.front ~conn_id:r.rt_front
      | `Wait -> ()
  in
  bwd ();
  if r.rt_front_closed && r.rt_back_closed then begin
    Simnet.reap b.b_net ~conn_id:r.rt_back;
    Simnet.reap t.front ~conn_id:r.rt_front;
    b.b_active <- b.b_active - 1;
    t.in_flight_count <- t.in_flight_count - 1;
    false
  end
  else true

let pump t ~tick =
  (match t.obs with
  | Some o ->
      Jv_obs.Obs.observe_int o "fleet.lb.backlog"
        (Simnet.pending_count t.front ~listener_id:t.listener)
  | None -> ());
  accept_new t;
  let dead = ref [] in
  Hashtbl.iter
    (fun fcid r -> if not (pump_route t ~tick r) then dead := fcid :: !dead)
    t.routes;
  List.iter (Hashtbl.remove t.routes) !dead
