(* One fleet member: a whole [Jv_vm] running one version of the server
   app, plus the bookkeeping the orchestrator needs (current version,
   lifecycle status, the classfiles it is running — the "old program" of
   the next update spec). *)

module VM = Jv_vm
module CF = Jv_classfile

type status =
  | In_service (* taking new connections through the LB *)
  | Draining (* no new connections; in-flight completing *)
  | Updating (* a DSU request is pending on the VM *)
  | Rolling_back (* reverting to the previous version *)
  | Out_of_service (* permanently removed (failed rollback) *)

let status_to_string = function
  | In_service -> "in-service"
  | Draining -> "draining"
  | Updating -> "updating"
  | Rolling_back -> "rolling-back"
  | Out_of_service -> "out-of-service"

type t = {
  i_id : int;
  mutable i_vm : VM.Vm.t; (* swapped wholesale when the supervisor reboots *)
  i_port : int; (* backend port inside this VM's simnet *)
  i_base_version : string; (* what a fresh boot of this instance runs *)
  mutable i_version : string;
  mutable i_status : status;
  mutable i_program : CF.Cls.t list; (* classfiles currently running *)
}

(* Fleet boot mirrors the experience harness: a high opt threshold keeps
   the per-session run() loops base-compiled, as in the paper's setup. *)
let default_config =
  {
    VM.State.default_config with
    VM.State.heap_words = 1 lsl 19;
    opt_threshold = 150;
  }

let boot_vm ~config (profile : Profile.t) program =
  let vm = VM.Vm.create ~config () in
  VM.Vm.boot vm program;
  (* responses the profile's protocol rejects count as app-level errors,
     charged to the sending code epoch (the guard watchdog's 5xx feed) *)
  VM.Vm.set_response_classifier vm (Some profile.Profile.pr_ok);
  ignore (VM.Vm.spawn_main vm ~main_class:"Main");
  (* let the server open its listeners before the LB registers it *)
  VM.Vm.run vm ~rounds:5;
  vm

let boot ?(config = default_config) (profile : Profile.t) ~id ~version : t =
  let program = Profile.compile profile ~version in
  let vm = boot_vm ~config profile program in
  {
    i_id = id;
    i_vm = vm;
    i_port = profile.Profile.pr_port;
    i_base_version = version;
    i_version = version;
    i_status = In_service;
    i_program = program;
  }

(* Replace a dead (or parked) instance's VM with a fresh boot at
   [version] (the base version by default; a supervisor restoring a
   state snapshot boots at the snapshot's own schema rung).  The record
   identity survives — the LB id, the port and any closures capturing
   [t] keep working — but the simnet, heap and code world are brand
   new, so the caller must re-register the net with the LB and drive
   version catch-up before readmitting. *)
let reboot ?(config = default_config) ?version (profile : Profile.t) inst =
  let version = Option.value ~default:inst.i_base_version version in
  let program = Profile.compile profile ~version in
  let vm = boot_vm ~config profile program in
  inst.i_vm <- vm;
  inst.i_version <- version;
  inst.i_program <- program;
  inst.i_status <- Draining (* running and probe-able, but not admitted *)

let net inst = VM.Vm.net inst.i_vm

let round inst =
  if inst.i_status <> Out_of_service then VM.Sched.round inst.i_vm
