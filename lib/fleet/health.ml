(* Asynchronous health probes and the canary health gate.

   A probe is a tiny scripted client run directly against one instance's
   simnet (bypassing the load balancer, like a sidecar health checker):
   connect, send the app's health-probe line, and wait — stepping once
   per fleet round — until a line passing [ok] arrives (some servers
   greet with a banner first, which is skipped) or the deadline passes.

   The canary gate compares load-balancer observation windows between
   the canary pool and the stable pool. *)

module Simnet = Jv_simnet.Simnet

type outcome = Pending | Healthy of int (* latency in rounds *) | Unhealthy of string

type probe = {
  p_net : Simnet.t;
  p_port : int;
  p_line : string;
  p_ok : string -> bool;
  p_started : int;
  p_deadline : int;
  mutable p_conn : int option;
  mutable p_outcome : outcome;
}

let start ~net ~port ~line ~ok ~now ~deadline_rounds =
  {
    p_net = net;
    p_port = port;
    p_line = line;
    p_ok = ok;
    p_started = now;
    p_deadline = now + deadline_rounds;
    p_conn = None;
    p_outcome = Pending;
  }

let finish p outcome =
  p.p_outcome <- outcome;
  match p.p_conn with
  | None -> ()
  | Some cid ->
      Simnet.client_close p.p_net ~conn_id:cid;
      Simnet.reap p.p_net ~conn_id:cid;
      p.p_conn <- None

let step p ~now =
  match p.p_outcome with
  | Healthy _ | Unhealthy _ -> ()
  | Pending -> (
      (match p.p_conn with
      | Some _ -> ()
      | None -> (
          match Simnet.connect p.p_net ~port:p.p_port with
          | None -> () (* not listening (yet); keep trying until deadline *)
          | Some cid ->
              p.p_conn <- Some cid;
              Simnet.client_send p.p_net ~conn_id:cid p.p_line));
      (match p.p_conn with
      | None -> ()
      | Some cid ->
          let rec drain () =
            match Simnet.client_recv p.p_net ~conn_id:cid with
            | `Line resp when p.p_ok resp ->
                finish p (Healthy (now - p.p_started))
            | `Line _ -> drain () (* banner or sick response: keep waiting *)
            | `Eof -> finish p (Unhealthy "connection closed by server")
            | `Wait -> ()
          in
          drain ());
      if p.p_outcome = Pending && now > p.p_deadline then
        finish p
          (if p.p_conn = None then Unhealthy "not accepting connections"
           else Unhealthy "no healthy response before deadline"))

let outcome p = p.p_outcome

(* --- the canary gate --------------------------------------------------- *)

type gate_params = {
  g_min_responses : int;
      (* don't judge before both pools served this many *)
  g_max_error_rate : float; (* absolute ceiling on the canary pool *)
  g_max_error_delta : float; (* vs. the stable pool *)
  g_max_latency_factor : float; (* canary latency vs. stable latency *)
}

let default_gate =
  {
    g_min_responses = 20;
    g_max_error_rate = 0.05;
    g_max_error_delta = 0.02;
    g_max_latency_factor = 3.0;
  }

(* [None] = pass (or not enough signal yet: judged only when called after
   the observation window, so thin traffic counts as a pass with a note),
   [Some reason] = the canaries are sicker than the stable pool. *)
let judge gate ~(canary : Lb.window) ~(stable : Lb.window) : string option =
  let ce = Lb.error_rate canary and se = Lb.error_rate stable in
  let cl = Lb.mean_latency canary and sl = Lb.mean_latency stable in
  if canary.Lb.w_responses < gate.g_min_responses then
    if canary.Lb.w_responses = 0 && canary.Lb.w_sessions > 0 then
      Some "canaries answered none of the routed requests"
    else None (* not enough traffic to condemn the canaries *)
  else if ce > gate.g_max_error_rate then
    Some
      (Printf.sprintf "canary error rate %.1f%% above ceiling %.1f%%"
         (100. *. ce)
         (100. *. gate.g_max_error_rate))
  else if ce -. se > gate.g_max_error_delta then
    Some
      (Printf.sprintf "canary error rate %.1f%% vs stable %.1f%%"
         (100. *. ce) (100. *. se))
  else if
    stable.Lb.w_responses >= gate.g_min_responses
    && sl > 0.0
    && cl > sl *. gate.g_max_latency_factor
  then
    Some
      (Printf.sprintf "canary latency %.1f rounds vs stable %.1f"
         cl sl)
  else None
