(* The self-healing layer: crash-restart supervision for a fleet.

   The paper's VM keeps one process alive across updates; at fleet scale
   the dual problem appears — processes die (chaos kills, failed
   rollbacks, quarantines) and without a supervisor the fleet
   monotonically shrinks.  This module watches every instance and drives
   the recovery arc:

     Watching -> (death detected) -> Waiting (exponential backoff)
       -> restart: fresh VM at the base version
            + state restore from the last snapshot (stateful apps)
            + epoch catch-up: replay the version ladder through the
              normal [Jvolve] request pipeline (admission, txn, guard)
              until the instance matches the fleet's current version
       -> Probing (health probes against the new VM)
       -> readmit to the LB -> Watching

   A flapping instance burns one restart attempt per death with doubled
   backoff each time; past [s_max_restarts] it is Parked permanently
   rather than hot-looped.  Every step is deterministic: the only
   randomness is the fleet's own seeded fault plan, consulted at the
   [supervisor.restart] point so restart failures are injectable.

   Catch-up targets the *plurality* version among alive in-service
   peers (ties break toward the earlier rung).  Catching up "too little"
   is safe — a still-running rollout wave updates the instance like any
   other — and after a fence/revert the plurality is exactly the
   reverted epoch, so a corpse killed mid-guard-window comes back on the
   old version, not the suspect one. *)

module VM = Jv_vm
module J = Jvolve_core
module Apps = Jv_apps
module Faults = Jv_faults.Faults
module Obs = Jv_obs.Obs

type params = {
  s_backoff_base : int; (* rounds before restart 1; doubles per attempt *)
  s_max_restarts : int; (* per instance; beyond -> parked *)
  s_snapshot_every : int; (* rounds between state snapshots; 0 disables *)
  s_probe_deadline : int;
  s_probes_required : int; (* consecutive healthy probes before readmit *)
  s_catchup_timeout : int; (* safe-point budget per ladder rung *)
  s_catchup_max_rounds : int; (* scheduler budget per ladder rung *)
  s_catchup_guard : J.Guard.config option; (* guard window on catch-up *)
}

let default_params =
  {
    s_backoff_base = 40;
    s_max_restarts = 5;
    s_snapshot_every = 200;
    s_probe_deadline = 80;
    s_probes_required = 2;
    s_catchup_timeout = 400;
    s_catchup_max_rounds = 10_000;
    s_catchup_guard = None;
  }

type istate =
  | Watching
  | Waiting of { until : int } (* backoff before the next restart try *)
  | Probing of { mutable probe : Health.probe; mutable needed : int }
  | Parked of string (* crash loop / restart budget spent: permanent *)

type t = {
  fleet : Fleet.t;
  params : params;
  states : istate array;
  snapshots : string option array; (* last serialized snapshot, per id *)
  attempts : int array; (* restarts consumed, per id *)
  detected_at : int array; (* tick the current outage was noticed *)
  mutable restarts : int; (* reboots actually performed *)
  mutable recovered : int list; (* ids readmitted at least once *)
  mutable below_capacity_rounds : int;
  mutable on_restarted : (int -> unit) option; (* gossip rejoin hook *)
}

let create ?(params = default_params) ~fleet () =
  let n = Fleet.size fleet in
  {
    fleet;
    params;
    states = Array.make n Watching;
    snapshots = Array.make n None;
    attempts = Array.make n 0;
    detected_at = Array.make n 0;
    restarts = 0;
    recovered = [];
    below_capacity_rounds = 0;
    on_restarted = None;
  }

let set_on_restarted t f = t.on_restarted <- Some f
let restarts t = t.restarts
let recovered t = List.rev t.recovered
let below_capacity_rounds t = t.below_capacity_rounds

let parked t =
  let acc = ref [] in
  Array.iteri
    (fun id st ->
      match st with Parked why -> acc := (id, why) :: !acc | _ -> ())
    t.states;
  List.rev !acc

let obs t = Fleet.obs t.fleet
let now t = Fleet.ticks t.fleet
let inst t id = Fleet.instance t.fleet id

(* Events land in the rollout scope so `--trace` timelines show the full
   down -> up arc next to the quarantine that opened it. *)
let emit_ev t name fields = Obs.emit (obs t) ~scope:"fleet.rollout" name fields

let dead t id =
  VM.Vm.killed (inst t id).Instance.i_vm <> None
  || (inst t id).Instance.i_status = Instance.Out_of_service

(* Serving capacity right now: a live VM the LB is admitting. *)
let alive t =
  List.fold_left
    (fun n (i : Instance.t) ->
      if
        VM.Vm.killed i.Instance.i_vm = None
        && i.Instance.i_status = Instance.In_service
        && Lb.admitting (Fleet.lb t.fleet) ~id:i.Instance.i_id
      then n + 1
      else n)
    0 (Fleet.instances t.fleet)

(* --- catch-up target --------------------------------------------------- *)

let ladder_index t v =
  let rec go i = function
    | [] -> -1
    | x :: rest -> if x = v then i else go (i + 1) rest
  in
  go 0 (Profile.versions (Fleet.profile t.fleet))

(* Plurality version among alive in-service peers; ties break toward the
   earlier rung (catching up too little is recoverable, too much is
   not).  Falls back to the instance's own base version. *)
let target_version t ~excluding =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (i : Instance.t) ->
      if
        i.Instance.i_id <> excluding
        && VM.Vm.killed i.Instance.i_vm = None
        && i.Instance.i_status = Instance.In_service
      then
        Hashtbl.replace tally i.Instance.i_version
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally i.Instance.i_version)))
    (Fleet.instances t.fleet);
  let best = ref None in
  Hashtbl.iter
    (fun v n ->
      match !best with
      | None -> best := Some (v, n)
      | Some (bv, bn) ->
          if n > bn || (n = bn && ladder_index t v < ladder_index t bv) then
            best := Some (v, n))
    tally;
  match !best with
  | Some (v, _) -> v
  | None -> (inst t excluding).Instance.i_base_version

(* --- snapshots --------------------------------------------------------- *)

let take_snapshot t id =
  let i = inst t id in
  match (Fleet.profile t.fleet).Profile.pr_snapshot with
  | None -> ()
  | Some scrape -> (
      match scrape i.Instance.i_vm with
      | Ok s ->
          t.snapshots.(id) <- Some s;
          Obs.incr (obs t) "fleet.supervisor.snapshots"
      | Error why ->
          Obs.incr (obs t) "fleet.supervisor.snapshot_failures";
          emit_ev t "snapshot.failed"
            [ ("instance", Obs.Int id); ("why", Obs.Str why) ])

let maybe_snapshot t =
  if
    t.params.s_snapshot_every > 0
    && (Fleet.profile t.fleet).Profile.pr_snapshot <> None
    && now t mod t.params.s_snapshot_every = 0
  then
    Array.iteri
      (fun id st ->
        let i = inst t id in
        if
          st = Watching
          && VM.Vm.killed i.Instance.i_vm = None
          && i.Instance.i_status = Instance.In_service
        then take_snapshot t id)
      t.states

(* --- the recovery arc -------------------------------------------------- *)

let park t id ~why =
  t.states.(id) <- Parked why;
  (inst t id).Instance.i_status <- Instance.Out_of_service;
  Obs.incr (obs t) "fleet.supervisor.parked";
  emit_ev t "instance.parked" [ ("instance", Obs.Int id); ("why", Obs.Str why) ]

(* One more restart attempt is owed; either schedule it or park. *)
let schedule_restart t id =
  let n = t.attempts.(id) + 1 in
  if n > t.params.s_max_restarts then
    park t id
      ~why:(Printf.sprintf "crash loop: %d restarts exhausted" t.params.s_max_restarts)
  else begin
    t.attempts.(id) <- n;
    let backoff = t.params.s_backoff_base * (1 lsl (n - 1)) in
    emit_ev t "restart.scheduled"
      [
        ("instance", Obs.Int id);
        ("attempt", Obs.Int n);
        ("backoff", Obs.Int backoff);
      ];
    t.states.(id) <- Waiting { until = now t + backoff }
  end

let detect t id =
  let i = inst t id in
  let why =
    match VM.Vm.killed i.Instance.i_vm with
    | Some w -> w
    | None -> "quarantined"
  in
  t.detected_at.(id) <- now t;
  emit_ev t "instance.down" [ ("instance", Obs.Int id); ("why", Obs.Str why) ];
  schedule_restart t id

let start_probe t id =
  let i = inst t id in
  Health.start ~net:(Instance.net i) ~port:i.Instance.i_port
    ~line:(Fleet.profile t.fleet).Profile.pr_health_probe
    ~ok:(Fleet.profile t.fleet).Profile.pr_health_ok ~now:(now t)
    ~deadline_rounds:t.params.s_probe_deadline

(* Ladder rungs from the instance's (freshly rebooted) version up to the
   fleet's current one. *)
let catchup_path t id ~target =
  let i = inst t id in
  let versions = Profile.versions (Fleet.profile t.fleet) in
  let rec hops from = function
    | [] -> []
    | v :: rest ->
        if ladder_index t v <= ladder_index t from then hops from rest
        else if ladder_index t v > ladder_index t target then []
        else (from, v) :: hops v rest
  in
  hops i.Instance.i_version versions

let catch_up t id ~target : (unit, string) result =
  let i = inst t id in
  let profile = Fleet.profile t.fleet in
  let rec go = function
    | [] -> Ok ()
    | (from_v, to_v) :: rest -> (
        let spec =
          Apps.Common.spec
            ~overrides:(profile.Profile.pr_overrides ~to_version:to_v)
            ~version_tag:
              (Profile.version_tag ~from_version:from_v ~instance_id:id)
            ~old_program:i.Instance.i_program
            ~new_program:(Profile.compile profile ~version:to_v)
            ()
        in
        match
          J.Jvolve.run_ladder ~timeout_rounds:t.params.s_catchup_timeout
            ?guard:t.params.s_catchup_guard
            ~max_rounds_each:t.params.s_catchup_max_rounds i.Instance.i_vm
            [ spec ]
        with
        | Ok _ ->
            i.Instance.i_version <- to_v;
            i.Instance.i_program <- spec.J.Spec.new_program;
            Obs.incr (obs t) "fleet.supervisor.catchup_hops";
            go rest
        | Error (_, h) ->
            Error
              (Printf.sprintf "catch-up %s->%s failed: %s" from_v to_v
                 (J.Jvolve.outcome_to_string h.J.Jvolve.h_outcome)))
  in
  go (catchup_path t id ~target)

let try_restart t id =
  (* injectable restart failure: any armed action at this point means
     the replacement process did not come up *)
  match Faults.check (Fleet.faults t.fleet) "supervisor.restart" with
  | Some _ ->
      Obs.incr (obs t) "fleet.supervisor.restart_failures";
      emit_ev t "restart.failed"
        [ ("instance", Obs.Int id); ("why", Obs.Str "fault injected") ];
      schedule_restart t id
  | None -> (
      let i = inst t id in
      Instance.reboot ~config:(Fleet.config t.fleet) (Fleet.profile t.fleet) i;
      VM.Vm.set_faults i.Instance.i_vm (Fleet.faults t.fleet);
      t.restarts <- t.restarts + 1;
      Obs.incr (obs t) "fleet.restarts";
      emit_ev t "instance.restart"
        [ ("instance", Obs.Int id); ("attempt", Obs.Int t.attempts.(id)) ];
      Lb.replace (Fleet.lb t.fleet) ~id ~net:(Instance.net i)
        ~backend_port:i.Instance.i_port;
      (* restore first, then catch up: the snapshot replays through the
         version-stable wire protocol into the base-version boot, and the
         ladder migrations reinterpret the restored heap exactly as they
         would have live data *)
      let restored =
        match ((Fleet.profile t.fleet).Profile.pr_restore, t.snapshots.(id)) with
        | Some replay, Some snap -> (
            match replay i.Instance.i_vm snap with
            | Ok () ->
                Obs.incr (obs t) "fleet.supervisor.restores";
                Ok ()
            | Error why -> Error ("restore failed: " ^ why))
        | _ -> Ok ()
      in
      let target = target_version t ~excluding:id in
      match
        Result.bind restored (fun () -> catch_up t id ~target)
      with
      | Ok () ->
          (match t.on_restarted with Some f -> f id | None -> ());
          t.states.(id) <-
            Probing { probe = start_probe t id; needed = t.params.s_probes_required }
      | Error why ->
          emit_ev t "restart.failed"
            [ ("instance", Obs.Int id); ("why", Obs.Str why) ];
          i.Instance.i_status <- Instance.Out_of_service;
          schedule_restart t id)

let readmit t id =
  let i = inst t id in
  i.Instance.i_status <- Instance.In_service;
  Lb.set_admit (Fleet.lb t.fleet) ~id true;
  let mttr = now t - t.detected_at.(id) in
  Obs.incr (obs t) "fleet.rollout.readmitted";
  Obs.observe_int (obs t) "fleet.mttr_rounds" mttr;
  (* the mirror of [instance.quarantine]: timelines get the up edge *)
  emit_ev t "instance.readmit"
    [ ("instance", Obs.Int id); ("mttr_rounds", Obs.Int mttr) ];
  if not (List.mem id t.recovered) then t.recovered <- id :: t.recovered;
  t.states.(id) <- Watching

let step_instance t id =
  match t.states.(id) with
  | Parked _ -> ()
  | Watching ->
      if dead t id then begin
        let st = (inst t id).Instance.i_status in
        (* leave instances mid-orchestration alone: the orchestrator (or
           gossip node) resolves a killed VM to a quarantine, which lands
           here as Out_of_service *)
        if
          st <> Instance.Draining && st <> Instance.Updating
          && st <> Instance.Rolling_back
        then detect t id
      end
  | Waiting { until } -> if now t >= until then try_restart t id
  | Probing p -> (
      (* the replacement can die while still being probed *)
      if VM.Vm.killed (inst t id).Instance.i_vm <> None then
        schedule_restart t id
      else begin
        Health.step p.probe ~now:(now t);
        match Health.outcome p.probe with
        | Health.Pending -> ()
        | Health.Unhealthy why ->
            emit_ev t "probe.unhealthy"
              [ ("instance", Obs.Int id); ("why", Obs.Str why) ];
            (inst t id).Instance.i_status <- Instance.Out_of_service;
            schedule_restart t id
        | Health.Healthy _ ->
            p.needed <- p.needed - 1;
            if p.needed <= 0 then readmit t id
            else p.probe <- start_probe t id
      end)

let step t =
  maybe_snapshot t;
  Array.iteri (fun id _ -> step_instance t id) t.states;
  let a = alive t in
  Obs.set_gauge (obs t) "fleet.alive" (float_of_int a);
  if a < Fleet.size t.fleet then begin
    t.below_capacity_rounds <- t.below_capacity_rounds + 1;
    Obs.incr (obs t) "fleet.below_capacity_rounds"
  end

(* All-clear: every instance is either serving at full health or parked
   for good — nothing is still mid-recovery. *)
let settled t =
  let ok = ref true in
  Array.iteri
    (fun id st ->
      match st with
      | Parked _ -> ()
      | Watching -> if dead t id then ok := false
      | Waiting _ | Probing _ -> ok := false)
    t.states;
  !ok

let describe t =
  Printf.sprintf "supervisor: %d alive, %d restarts, %d recovered, %d parked"
    (alive t) t.restarts (List.length t.recovered) (List.length (parked t))
