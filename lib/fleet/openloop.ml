(* Open-loop load against the balancer's front simnet.

   [Driver] is closed-loop: a fixed concurrency, a new request only when
   the previous one answers — so a slow fleet quietly sheds offered load
   and latency numbers flatter the system.  An open-loop generator (in
   the style of httperf's open mode) arrives at a fixed *rate* whether or
   not earlier requests have finished: a fractional credit accumulates
   [rate] arrivals per fleet round and every whole credit opens a fresh
   one-request session immediately.  Queueing then shows up where it
   should — in the latency tail — which is what the rollout SLOs
   (p99 latency, zero dropped connections) are judged against.

   Each arrival opens its own connection, sends one request line, awaits
   one response, closes.  Per-request latency in fleet rounds is pushed
   into the ["fleet.openloop.request_rounds"] histogram on the attached
   sink, so p50/p99 come from the same DDSketch-style metric the rest of
   the bench reports. *)

module Simnet = Jv_simnet.Simnet

type pending = { cid : int; sent_at : int }

type t = {
  net : Simnet.t; (* the balancer's front net *)
  port : int;
  line : string; (* the one request each arrival sends *)
  ok : string -> bool;
  rate : float; (* arrivals per fleet round *)
  obs : Jv_obs.Obs.t option;
  mutable credit : float;
  mutable active : pending list;
  mutable offered : int; (* arrivals generated *)
  mutable served : int; (* responses received *)
  mutable errors : int; (* responses failing [ok] *)
  mutable dropped_in_flight : int; (* EOF while awaiting the response *)
  mutable refused : int; (* connect returned None *)
  mutable latency_rounds : int;
  mutable max_in_flight : int; (* high-water mark, for the report *)
}

let histogram_name = "fleet.openloop.request_rounds"

let create ~net ~port ~line ?(ok = Jv_apps.Workload.default_ok) ~rate ?obs ()
    =
  {
    net;
    port;
    line;
    ok;
    rate;
    obs;
    credit = 0.0;
    active = [];
    offered = 0;
    served = 0;
    errors = 0;
    dropped_in_flight = 0;
    refused = 0;
    latency_rounds = 0;
    max_in_flight = 0;
  }

let close_conn t (p : pending) =
  Simnet.client_close t.net ~conn_id:p.cid;
  Simnet.reap t.net ~conn_id:p.cid

let pump_conn t ~tick (p : pending) : bool (* keep? *) =
  match Simnet.client_recv t.net ~conn_id:p.cid with
  | `Wait -> true
  | `Eof ->
      t.dropped_in_flight <- t.dropped_in_flight + 1;
      close_conn t p;
      false
  | `Line resp ->
      t.served <- t.served + 1;
      let d = tick - p.sent_at in
      t.latency_rounds <- t.latency_rounds + d;
      (match t.obs with
      | Some o -> Jv_obs.Obs.observe_int o histogram_name d
      | None -> ());
      if not (t.ok resp) then t.errors <- t.errors + 1;
      close_conn t p;
      false

let launch t ~tick =
  t.offered <- t.offered + 1;
  match Simnet.connect t.net ~port:t.port with
  | None -> t.refused <- t.refused + 1
  | Some cid ->
      Simnet.client_send t.net ~conn_id:cid t.line;
      t.active <- { cid; sent_at = tick } :: t.active

let step t ~tick =
  t.active <- List.filter (pump_conn t ~tick) t.active;
  t.credit <- t.credit +. t.rate;
  while t.credit >= 1.0 do
    t.credit <- t.credit -. 1.0;
    launch t ~tick
  done;
  let n = List.length t.active in
  if n > t.max_in_flight then t.max_in_flight <- n

(* Let the tail drain after the arrival process stops (end of a bench
   run): pump without generating until quiet or [patience] rounds pass.
   Returns the number of rounds spent draining. *)
let drain t ~tick ~round ~patience =
  let tick0 = tick in
  let rec go tick spent =
    t.active <- List.filter (pump_conn t ~tick) t.active;
    if t.active = [] || spent >= patience then spent
    else begin
      round ();
      go (tick + 1) (spent + 1)
    end
  in
  go tick0 0

let detach t =
  List.iter (close_conn t) t.active;
  t.active <- []

let in_flight t = List.length t.active
let offered t = t.offered
let served t = t.served
let errors t = t.errors
let dropped_in_flight t = t.dropped_in_flight
let refused t = t.refused
let max_in_flight t = t.max_in_flight

let mean_latency_rounds t =
  if t.served = 0 then 0.0
  else float_of_int t.latency_rounds /. float_of_int t.served

(* Quantile over everything this driver observed, from the sink's
   histogram (0.0 when no sink or nothing served). *)
let latency_quantile t q =
  match t.obs with
  | None -> 0.0
  | Some o -> (
      match Jv_obs.Obs.find_histogram o histogram_name with
      | None -> 0.0
      | Some h -> Jv_obs.Metrics.quantile h q)
