(* Live-updating a busy web server (the paper's Jetty scenario, §4.2).

     dune exec examples/web_live_update.exe

   miniweb 5.1.4 runs under saturating load; we apply the big 5.1.5
   release (new fields on HttpConnection and Stats, keep-alive limits,
   byte accounting).  The pool threads' run() loops reference
   HttpConnection, so their compiled code hard-codes stale offsets: Jvolve
   recompiles them *on stack* via OSR while return barriers park each
   worker as it finishes its current connection.  The server never stops
   serving. *)

module VM = Jv_vm
module J = Jvolve_core
module A = Jv_apps

let () =
  let vm = A.Experience.boot_version A.Experience.web_desc ~version:"5.1.4" in
  let w =
    A.Workload.attach vm ~port:A.Miniweb.protocol_port
      ~script:A.Workload.web_script ~ok:A.Workload.web_ok ~concurrency:8 ()
  in
  VM.Vm.run vm ~rounds:80;
  let before = w.A.Workload.completed_requests in
  Printf.printf "running miniweb 5.1.4 under load: %d requests served\n"
    before;

  let spec =
    J.Spec.make ~version_tag:"514"
      ~old_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Miniweb.app ~version:"5.1.4"))
      ~new_program:
        (Jv_lang.Compile.compile_program
           (A.Patching.source A.Miniweb.app ~version:"5.1.5"))
      ()
  in
  Printf.printf "\nUPT: %s\n" (J.Diff.summary spec.J.Spec.diff);
  Printf.printf "restricted methods on stack at request time:\n";
  let restricted = J.Safepoint.compute vm spec in
  (match J.Safepoint.check vm restricted with
  | J.Safepoint.Blocked stuck ->
      Printf.printf "  %s\n" (J.Safepoint.describe_blockers vm restricted stuck)
  | J.Safepoint.Safe frames ->
      Printf.printf "  none blocking; %d category-(2) frames need OSR\n"
        (List.length frames));

  let h = J.Jvolve.update_now vm spec in
  (match h.J.Jvolve.h_outcome with
  | J.Jvolve.Applied t ->
      Printf.printf
        "\nupdate applied after %d attempts: %d return barriers installed, \
         %d frames OSR'd,\n%.2f ms total pause, %d heap objects transformed\n"
        h.J.Jvolve.h_attempts h.J.Jvolve.h_barriers_installed
        t.J.Updater.u_osr t.J.Updater.u_total_ms
        t.J.Updater.u_transformed_objects
  | o -> failwith (J.Jvolve.outcome_to_string o));

  VM.Vm.run vm ~rounds:120;
  let after = w.A.Workload.completed_requests in
  Printf.printf
    "\nafter the update the same server (same connections, same listener) \
     served %d more requests\nwith %d protocol errors — zero downtime.\n"
    (after - before) w.A.Workload.errors;
  let stats = VM.Vm.stats vm in
  Printf.printf
    "VM: %d base compiles, %d opt compiles, %d GCs, %d OSRs, %d traps\n"
    stats.VM.Vm.compile_count stats.VM.Vm.opt_compile_count
    stats.VM.Vm.gc_count stats.VM.Vm.osr_count
    (List.length stats.VM.Vm.traps)
